package vida_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs enforces the documentation floor the architecture doc
// relies on: every package in the module — the public API, sqldriver,
// every internal/* package and the commands — carries a package
// comment. CI's docs job runs this alongside go vet; it fails the build
// the moment a new package lands undocumented.
func TestPackageDocs(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var pkgDirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if len(pkgDirs) == 0 || pkgDirs[len(pkgDirs)-1] != dir {
			pkgDirs = append(pkgDirs, dir)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range pkgDirs {
		if !packageHasDoc(t, dir) {
			rel, _ := filepath.Rel(root, dir)
			t.Errorf("package %s has no package comment (add one, e.g. in doc.go)", rel)
		}
	}
}

// packageHasDoc reports whether any non-test file in dir carries a
// package comment.
func packageHasDoc(t *testing.T, dir string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}
