// Package vida is a just-in-time data virtualization engine: it runs
// queries directly over raw heterogeneous data files — CSV, JSON, binary
// arrays, spreadsheets — with no loading step, adapting its access paths,
// caches and operators to each query. It is a from-scratch reproduction of
// "Just-In-Time Data Virtualization: Lightweight Data Management with
// ViDa" (Karpathiotakis et al., CIDR 2015).
//
// Queries are written in the monoid comprehension language the paper
// introduces (SQL translation is available via QuerySQL):
//
//	eng := vida.New()
//	eng.RegisterCSV("Patients", "patients.csv",
//	    "Record(Att(id, int), Att(age, int), Att(city, string))", nil)
//	res, err := eng.Query(`for { p <- Patients, p.age > 40 } yield count p`)
//
// The first query against a file pays for raw access and, as a side
// effect, builds positional structures and caches; subsequent queries
// touching the same fields run at loaded-database speed.
package vida

import (
	"context"
	"fmt"
	"sync"

	"vida/internal/clean"
	"vida/internal/core"
	"vida/internal/mcl"
	"vida/internal/sched"
	"vida/internal/sdg"
	"vida/internal/sqlfront"
	"vida/internal/values"
)

// Engine is one virtual database instance over registered raw sources.
type Engine struct {
	inner *core.Engine
}

// Option configures an Engine.
type Option func(*core.Options)

// WithStaticExecutor selects the pre-cooked channel-pipelined executor
// instead of the default just-in-time generated one.
func WithStaticExecutor() Option {
	return func(o *core.Options) { o.Mode = core.ModeStatic }
}

// WithReferenceExecutor selects the slow reference executor (testing).
func WithReferenceExecutor() Option {
	return func(o *core.Options) { o.Mode = core.ModeReference }
}

// WithCacheBudget bounds the data caches to n bytes.
func WithCacheBudget(n int64) Option {
	return func(o *core.Options) { o.CacheBudgetBytes = n }
}

// WithCacheHotBytes bounds the cache's hot (decoded vector) tier to n
// bytes: past it, least-recently-used columnar entries are held as
// dictionary/delta-encoded blocks in memory and decoded per block on
// demand, fitting several times more rows under the same byte budget.
func WithCacheHotBytes(n int64) Option {
	return func(o *core.Options) { o.CacheHotBytes = n }
}

// WithCacheDir persists encoded cache blocks and positional maps under
// dir, so a restarted engine serves its first query from rehydrated
// cache state instead of re-scanning the raw files.
func WithCacheDir(dir string) Option {
	return func(o *core.Options) { o.CacheDir = dir }
}

// WithoutCaching disables the data caches (experiments).
func WithoutCaching() Option {
	return func(o *core.Options) { o.DisableCaching = true }
}

// WithAdaptiveOptimizer enables the runtime sampling re-optimization
// round (paper §5).
func WithAdaptiveOptimizer() Option {
	return func(o *core.Options) { o.Adaptive = true }
}

// WithMemoryBudget bounds the engine's tracked execution memory
// (collection results, join build sides, dedup tables, in-flight cache
// harvests) across all queries to n bytes. Under pressure the engine
// sheds cache harvesting first; at the ceiling queries abort with a
// typed memory-budget error instead of OOM-ing the process.
func WithMemoryBudget(n int64) Option {
	return func(o *core.Options) { o.MemoryBudgetBytes = n }
}

// WithQueryMemoryBudget bounds each single query's tracked execution
// memory to n bytes.
func WithQueryMemoryBudget(n int64) Option {
	return func(o *core.Options) { o.QueryMemoryBudgetBytes = n }
}

// WithScheduler runs the engine's parallel scans on the given morsel
// worker pool. Engines sharing one pool (a query server's engines, or
// several engines in one process) bound their total scan parallelism to
// the pool's workers instead of each fanning out GOMAXPROCS goroutines.
// The default is the process-wide shared pool.
func WithScheduler(p *sched.Pool) Option {
	return func(o *core.Options) { o.Pool = p }
}

// WithWorkers bounds each query's morsel fan-out to n (1 forces serial
// execution; 0 restores the GOMAXPROCS default). The scheduler pool's
// own size still bounds actual concurrency — this option controls how
// finely one query's scans split, which is how benchmarks compare
// serial and parallel plans on the same pool.
func WithWorkers(n int) Option {
	return func(o *core.Options) { o.Workers = n }
}

// WithJoinPartitions overrides the radix partition count of the
// parallel hash-join build (0 keeps the engine default; values round up
// to a power of two). Results are identical across partition counts —
// this is a performance knob, not a semantic one.
func WithJoinPartitions(n int) Option {
	return func(o *core.Options) { o.JoinPartitions = n }
}

// New creates an engine.
func New(opts ...Option) *Engine {
	var o core.Options
	for _, fn := range opts {
		fn(&o)
	}
	return &Engine{inner: core.NewEngine(o)}
}

// Internal exposes the underlying engine to sibling packages (the
// experiment harness); applications should not need it.
func (e *Engine) Internal() *core.Engine { return e.inner }

// RegisterCSV registers a raw CSV file. The schema is written in the
// source description grammar, either a Record(...) row type or a
// collection of one. Options: delim, header, null, onerror (see rawcsv).
func (e *Engine) RegisterCSV(name, path, schema string, options map[string]string) error {
	t, err := sdg.ParseSchema(schema)
	if err != nil {
		return err
	}
	if t.Kind == sdg.TRecord {
		t = sdg.Bag(t)
	}
	desc := sdg.DefaultDescription(name, sdg.FormatCSV, path, t)
	desc.Options = options
	return e.inner.Register(desc)
}

// RegisterJSON registers a raw JSON file (top-level array of objects or
// newline-delimited objects). Schema may be empty for open-schema files.
func (e *Engine) RegisterJSON(name, path, schema string) error {
	t := sdg.Bag(sdg.Unknown)
	if schema != "" {
		parsed, err := sdg.ParseSchema(schema)
		if err != nil {
			return err
		}
		if parsed.Kind == sdg.TRecord {
			parsed = sdg.Bag(parsed)
		}
		t = parsed
	}
	desc := sdg.DefaultDescription(name, sdg.FormatJSON, path, t)
	return e.inner.Register(desc)
}

// RegisterArray registers a binary array file (rawarr format). The schema
// uses the paper's Array(Dim(i,int), ..., Att(val)) form.
func (e *Engine) RegisterArray(name, path, schema string) error {
	t, err := sdg.ParseSchema(schema)
	if err != nil {
		return err
	}
	desc := sdg.DefaultDescription(name, sdg.FormatArray, path, t)
	return e.inner.Register(desc)
}

// RegisterXLS registers a binary spreadsheet file (rawxls format).
func (e *Engine) RegisterXLS(name, path, schema string) error {
	t, err := sdg.ParseSchema(schema)
	if err != nil {
		return err
	}
	if t.Kind == sdg.TRecord {
		t = sdg.Bag(t)
	}
	desc := sdg.DefaultDescription(name, sdg.FormatXLS, path, t)
	return e.inner.Register(desc)
}

// RegisterValues registers an in-memory collection (tests, glue).
func (e *Engine) RegisterValues(name string, rows []Value, schema string) error {
	t := sdg.Bag(sdg.Unknown)
	if schema != "" {
		parsed, err := sdg.ParseSchema(schema)
		if err != nil {
			return err
		}
		if parsed.Kind == sdg.TRecord {
			parsed = sdg.Bag(parsed)
		}
		t = parsed
	}
	desc := sdg.DefaultDescription(name, sdg.FormatTable, "", t)
	raw := make([]values.Value, len(rows))
	for i, r := range rows {
		raw[i] = r.raw
	}
	return e.inner.RegisterSource(desc, &sliceSource{name: name, rows: raw})
}

type sliceSource struct {
	name string
	rows []values.Value
}

func (s *sliceSource) Name() string { return s.name }
func (s *sliceSource) Iterate(fields []string, yield func(values.Value) error) error {
	for _, r := range s.rows {
		if len(fields) > 0 {
			fs := make([]values.Field, len(fields))
			for i, f := range fields {
				v, _ := r.Get(f)
				fs[i] = values.Field{Name: f, Val: v}
			}
			r = values.NewRecord(fs...)
		}
		if err := yield(r); err != nil {
			return err
		}
	}
	return nil
}

// Query runs a comprehension query and returns its buffered result.
// Positional args bind $1..$n parameters; NamedArg values bind $name.
// For results too large to buffer, use QueryRows instead.
func (e *Engine) Query(src string, args ...any) (*Result, error) {
	return e.QueryCtx(context.Background(), src, args...)
}

// QueryCtx runs a comprehension query under a cancellation context:
// cancelling ctx (or its deadline passing) aborts the query mid-scan —
// including a cold first touch of a large raw file — and returns the
// context's error.
func (e *Engine) QueryCtx(ctx context.Context, src string, args ...any) (*Result, error) {
	p, err := e.PrepareCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	return p.RunCtx(ctx, args...)
}

// QuerySQL translates a SQL query to the comprehension calculus (the
// "syntactic sugar" layer of paper §3.2) and runs it.
func (e *Engine) QuerySQL(src string, args ...any) (*Result, error) {
	return e.QuerySQLCtx(context.Background(), src, args...)
}

// QuerySQLCtx is QuerySQL under a cancellation context.
func (e *Engine) QuerySQLCtx(ctx context.Context, src string, args ...any) (*Result, error) {
	comp, err := sqlfront.Translate(src)
	if err != nil {
		return nil, err
	}
	return e.QueryCtx(ctx, comp.String(), args...)
}

// Prepared is a compiled query ready for repeated (concurrent) execution.
type Prepared struct {
	inner *core.Prepared
}

// Prepare runs the query frontend (parse, type-check, normalize,
// translate, optimize) without executing. The result is safe for
// concurrent Run/RunCtx calls.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	return e.PrepareCtx(context.Background(), src)
}

// PrepareCtx is Prepare with a cancellation context.
func (e *Engine) PrepareCtx(ctx context.Context, src string) (*Prepared, error) {
	p, err := e.inner.PrepareCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	return &Prepared{inner: p}, nil
}

// Run executes the prepared query with the given parameter bindings.
func (p *Prepared) Run(args ...any) (*Result, error) {
	return p.RunCtx(context.Background(), args...)
}

// RunCtx executes the prepared query under a cancellation context.
// Bag and set results run as a thin collect over the streaming cursor —
// the buffered and cursor APIs share one execution path, and bag/set
// canonicalization makes the unordered parallel stream deterministic.
// List results keep the reduce path: it merges morsel partials in
// order, so large ordered results stay parallel (the cursor streams
// lists serially to preserve order row-by-row). Scalar aggregates fold
// directly.
func (p *Prepared) RunCtx(ctx context.Context, args ...any) (*Result, error) {
	params, err := argsToParams(args)
	if err != nil {
		return nil, err
	}
	if p.inner.Streamable() && (p.inner.OrderedResult() || p.inner.MonoidName() != "list") {
		rows, err := p.inner.RowsCtx(ctx, params)
		if err != nil {
			return nil, err
		}
		monoidName := p.inner.MonoidName()
		if p.inner.OrderedResult() {
			// ORDER BY results are ordered lists; bag/set canonicalization
			// would destroy the sort.
			monoidName = "list"
		}
		v, err := collectValue(rows, monoidName)
		if err != nil {
			return nil, err
		}
		return &Result{val: Value{raw: v}}, nil
	}
	v, err := p.inner.RunParamsCtx(ctx, params)
	if err != nil {
		return nil, err
	}
	return &Result{val: Value{raw: v}}, nil
}

// Close marks the engine closed and waits for in-flight queries to
// finish; later queries fail with an engine-closed error. It is the
// graceful-shutdown hook for servers built on the engine.
func (e *Engine) Close() error { return e.inner.Close() }

// Ping reports whether the engine accepts queries (an engine-closed
// error after Close). The database/sql driver builds its Pinger on it.
func (e *Engine) Ping() error { return e.inner.Ping() }

// TranslateSQL returns the comprehension a SQL query maps to, without
// running it.
func (e *Engine) TranslateSQL(src string) (string, error) {
	comp, err := sqlfront.Translate(src)
	if err != nil {
		return "", err
	}
	return comp.String(), nil
}

// Explain returns the optimized physical plan of a query.
func (e *Engine) Explain(src string) (string, error) {
	return e.inner.Explain(src)
}

// CleanPolicy selects how an invalid field is repaired.
type CleanPolicy string

// The cleaning policies (paper §7).
const (
	CleanSkipRow   CleanPolicy = "skip"    // drop the whole row
	CleanNullField CleanPolicy = "null"    // null the offending field
	CleanNearest   CleanPolicy = "nearest" // snap to nearest valid value
)

// CleanRule validates one attribute of a source: a dictionary of valid
// strings and/or a numeric range, with the chosen repair policy.
type CleanRule struct {
	Attr       string
	Policy     CleanPolicy
	Dictionary []string
	Min, Max   *float64
}

// CleanFloat is a helper for rule bounds.
func CleanFloat(f float64) *float64 { return &f }

// AttachCleaner installs data-cleaning rules on a registered source
// (paper §7): invalid entries are skipped, nulled, or snapped to the
// nearest acceptable value (Hamming/edit distance for dictionaries,
// clamping for ranges) as the raw data streams in.
func (e *Engine) AttachCleaner(source string, rules ...CleanRule) error {
	converted := make([]clean.Rule, len(rules))
	for i, r := range rules {
		cr := clean.Rule{Attr: r.Attr, Dictionary: r.Dictionary, Min: r.Min, Max: r.Max}
		switch r.Policy {
		case CleanNullField:
			cr.Policy = clean.NullField
		case CleanNearest:
			cr.Policy = clean.Nearest
		default:
			cr.Policy = clean.SkipRow
		}
		converted[i] = cr
	}
	return e.inner.AttachCleaner(source, clean.New(converted...))
}

// Refresh re-checks registered files for modification, dropping affected
// auxiliary structures and caches.
func (e *Engine) Refresh() error { return e.inner.Refresh() }

// Stats returns engine activity counters.
func (e *Engine) Stats() core.Stats { return e.inner.StatsSnapshot() }

// Sources lists registered sources.
func (e *Engine) Sources() []string { return e.inner.Sources() }

// Catalog renders the source descriptions.
func (e *Engine) Catalog() string { return e.inner.DescribeCatalog() }

// ---------------------------------------------------------------------------
// Public value facade
// ---------------------------------------------------------------------------

// Value is a query result datum: a scalar, record, collection or array.
type Value struct {
	raw values.Value
}

// Result is the outcome of one query.
type Result struct {
	val Value

	// rows memoizes the []Value facade Rows builds over the collection:
	// results are shared (result caches serve one *Result to many
	// requests), so the conversion is done once, concurrency-safely.
	rowsOnce sync.Once
	rows     []Value
}

// Value returns the result datum.
func (r *Result) Value() Value { return r.val }

// String renders the result in the engine's literal syntax.
func (r *Result) String() string { return r.val.String() }

// Rows returns the result's elements when it is a collection, or the
// result itself as a single row otherwise. The conversion is memoized:
// calling Rows (or Len) repeatedly is free after the first call.
func (r *Result) Rows() []Value {
	r.rowsOnce.Do(func() {
		if r.val.IsCollection() {
			r.rows = r.val.Elems()
		} else {
			r.rows = []Value{r.val}
		}
	})
	return r.rows
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows()) }

// Field is a named record component.
type Field struct {
	Name string
	Val  Value
}

// NewInt builds an int value (for RegisterValues rows).
func NewInt(i int64) Value { return Value{raw: values.NewInt(i)} }

// NewFloat builds a float value.
func NewFloat(f float64) Value { return Value{raw: values.NewFloat(f)} }

// NewString builds a string value.
func NewString(s string) Value { return Value{raw: values.NewString(s)} }

// NewBool builds a bool value.
func NewBool(b bool) Value { return Value{raw: values.NewBool(b)} }

// NewRecord builds a record value.
func NewRecord(fields ...Field) Value {
	fs := make([]values.Field, len(fields))
	for i, f := range fields {
		fs[i] = values.Field{Name: f.Name, Val: f.Val.raw}
	}
	return Value{raw: values.NewRecord(fs...)}
}

// NewList builds a list value.
func NewList(elems ...Value) Value {
	es := make([]values.Value, len(elems))
	for i, e := range elems {
		es[i] = e.raw
	}
	return Value{raw: values.NewList(es...)}
}

// Null is the null value.
var Null = Value{raw: values.Null}

// Kind returns the value's kind name: "null", "bool", "int", "float",
// "string", "record", "list", "bag", "set" or "array".
func (v Value) Kind() string { return v.raw.Kind().String() }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.raw.IsNull() }

// Bool returns the boolean payload (panics on other kinds).
func (v Value) Bool() bool { return v.raw.Bool() }

// Int returns the integer payload (panics on other kinds).
func (v Value) Int() int64 { return v.raw.Int() }

// Float returns the numeric payload widened to float64.
func (v Value) Float() float64 { return v.raw.Float() }

// Str returns the string payload (panics on other kinds).
func (v Value) Str() string { return v.raw.Str() }

// IsCollection reports whether the value is a list, bag, set or array.
func (v Value) IsCollection() bool {
	return v.raw.IsCollection() || v.raw.Kind() == values.KindArray
}

// Len returns the element/field count of containers.
func (v Value) Len() int { return v.raw.Len() }

// Elems returns collection elements.
func (v Value) Elems() []Value {
	es := v.raw.Elems()
	out := make([]Value, len(es))
	for i, e := range es {
		out[i] = Value{raw: e}
	}
	return out
}

// Field returns the named record field (Null when absent).
func (v Value) Field(name string) Value {
	f, _ := v.raw.Get(name)
	return Value{raw: f}
}

// Fields returns all record fields in order.
func (v Value) Fields() []Field {
	fs := v.raw.Fields()
	out := make([]Field, len(fs))
	for i, f := range fs {
		out[i] = Field{Name: f.Name, Val: Value{raw: f.Val}}
	}
	return out
}

// String renders the value in literal syntax.
func (v Value) String() string { return v.raw.String() }

// Equal reports deep equality.
func (v Value) Equal(o Value) bool { return values.Equal(v.raw, o.raw) }

// ParseQuery checks a query's syntax without running it, returning a
// normalized rendering. Useful for tooling.
func ParseQuery(src string) (string, error) {
	e, err := mcl.Parse(src)
	if err != nil {
		return "", err
	}
	return mcl.Normalize(e).String(), nil
}

// Version is the library version.
const Version = "0.9.0"

var _ = fmt.Sprintf // keep fmt for doc examples
