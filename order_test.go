package vida

import (
	"fmt"
	"strings"
	"testing"

	"vida/internal/algebra"
	"vida/internal/sched"
	"vida/internal/sdg"
	"vida/internal/values"
)

// TestOrderByLimitAcrossAPIs runs the same ranked query through the
// buffered API, the cursor API and the SQL front-end and demands
// identical ordered output (acceptance criterion: `SELECT ... ORDER BY
// ... LIMIT k` works identically through every surface).
func TestOrderByLimitAcrossAPIs(t *testing.T) {
	e := setupBig(t, 20000) // above the parallel threshold
	const mclQ = `for { p <- People } yield bag (id := p.id, age := p.age) order by p.age desc, p.id limit 5 offset 2`
	const sqlQ = `SELECT id, age FROM People ORDER BY age DESC, id LIMIT 5 OFFSET 2`

	// Warm the caches so the parallel range path is exercised too.
	if _, err := e.Query(`for { p <- People } yield count p.id`); err != nil {
		t.Fatal(err)
	}

	collectIDs := func(rows *Rows) []int64 {
		t.Helper()
		defer rows.Close()
		var ids []int64
		for rows.Next() {
			var id, age int64
			if err := rows.Scan(&id, &age); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return ids
	}

	res, err := e.Query(mclQ)
	if err != nil {
		t.Fatal(err)
	}
	// ages cycle 20..79; age 79 has rows id=59,119,...; ordered desc by
	// age then asc by id, skipping the first two.
	var fromQuery []int64
	for _, r := range res.Rows() {
		fromQuery = append(fromQuery, r.Field("id").Int())
	}
	want := []int64{179, 239, 299, 359, 419}
	if fmt.Sprint(fromQuery) != fmt.Sprint(want) {
		t.Fatalf("Query order = %v, want %v", fromQuery, want)
	}

	sqlRes, err := e.QuerySQL(sqlQ)
	if err != nil {
		t.Fatal(err)
	}
	var fromSQL []int64
	for _, r := range sqlRes.Rows() {
		fromSQL = append(fromSQL, r.Field("id").Int())
	}
	if fmt.Sprint(fromSQL) != fmt.Sprint(want) {
		t.Fatalf("QuerySQL order = %v, want %v", fromSQL, want)
	}

	rows, err := e.QueryRows(mclQ)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectIDs(rows); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("QueryRows order = %v, want %v", got, want)
	}

	sqlRows, err := e.QuerySQLRows(sqlQ)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectIDs(sqlRows); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("QuerySQLRows order = %v, want %v", got, want)
	}
}

// TestOrderByDeterministicAcrossWorkerCounts runs a warm parallel top-k
// under different scheduler widths and demands byte-identical results
// (acceptance criterion: parallel top-k results are deterministic across
// worker counts).
func TestOrderByDeterministicAcrossWorkerCounts(t *testing.T) {
	const q = `SELECT id, age FROM People ORDER BY age DESC, id LIMIT 20`
	var baseline string
	for _, workers := range []int{1, 2, 8} {
		pool := sched.NewPool(workers)
		e := setupBigOpts(t, 30000, WithScheduler(pool))
		if _, err := e.Query(`for { p <- People } yield count p.id`); err != nil {
			t.Fatal(err)
		}
		res, err := e.QuerySQL(q)
		if err != nil {
			t.Fatal(err)
		}
		rendered := res.String()
		if baseline == "" {
			baseline = rendered
		} else if rendered != baseline {
			t.Fatalf("workers=%d: result differs:\n%s\nvs\n%s", workers, rendered, baseline)
		}
		pool.Close()
	}
}

// TestOrderByLimitParams proves LIMIT $1 stays plan-cache-friendly: one
// prepared statement serves different bounds.
func TestOrderByLimitParams(t *testing.T) {
	e := setupBig(t, 1000)
	p, err := e.Prepare(`for { p <- People } yield bag p.id order by p.id limit $n`)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{1, 3, 7} {
		res, err := p.Run(Named("n", n))
		if err != nil {
			t.Fatal(err)
		}
		if int64(res.Len()) != n {
			t.Fatalf("limit $n=%d returned %d rows", n, res.Len())
		}
		for i, r := range res.Rows() {
			if r.Int() != int64(i+1) {
				t.Fatalf("limit $n=%d row %d = %d", n, i, r.Int())
			}
		}
	}
}

// countingSource counts how many rows its Iterate actually yielded, so
// tests can prove a LIMIT stopped the scan mid-source.
type countingSource struct {
	name    string
	n       int
	yielded int
}

func (s *countingSource) Name() string { return s.name }

func (s *countingSource) Iterate(fields []string, yield func(values.Value) error) error {
	for i := 0; i < s.n; i++ {
		s.yielded++
		row := values.NewRecord(
			values.Field{Name: "id", Val: values.NewInt(int64(i))},
			values.Field{Name: "age", Val: values.NewInt(int64(20 + i%60))},
		)
		if err := yield(row); err != nil {
			return err
		}
	}
	return nil
}

// TestBareLimitStopsProducerMidScan is the early-stop proof: LIMIT 10
// over a 300k-row source must abandon the scan after a handful of
// batches, not read the source to the end.
func TestBareLimitStopsProducerMidScan(t *testing.T) {
	const total = 300_000
	src := &countingSource{name: "Big", n: total}
	e := New()
	typ, err := sdg.ParseSchema("Record(Att(id, int), Att(age, int))")
	if err != nil {
		t.Fatal(err)
	}
	desc := sdg.DefaultDescription("Big", sdg.FormatTable, "", sdg.Bag(typ))
	if err := e.Internal().RegisterSource(desc, src); err != nil {
		t.Fatal(err)
	}

	res, err := e.Query(`for { p <- Big } yield bag p.id limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Fatalf("limit 10 returned %d rows", res.Len())
	}
	if src.yielded >= total/10 {
		t.Fatalf("producer yielded %d of %d rows — limit did not stop the scan", src.yielded, total)
	}

	// The cursor path stops producers the same way.
	src2 := &countingSource{name: "Big2", n: total}
	desc2 := sdg.DefaultDescription("Big2", sdg.FormatTable, "", sdg.Bag(typ))
	if err := e.Internal().RegisterSource(desc2, src2); err != nil {
		t.Fatal(err)
	}
	rows, err := e.QueryRows(`for { p <- Big2 } yield bag p.id limit 7`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if n != 7 {
		t.Fatalf("cursor limit 7 returned %d rows", n)
	}
	if src2.yielded >= total/10 {
		t.Fatalf("cursor producer yielded %d of %d rows — limit did not stop the scan", src2.yielded, total)
	}
}

// TestBareLimitColdCSVEarlyStop drives the real cold-CSV path: the
// first-touch scan of a 300k-row file must stop mid-file under LIMIT.
func TestBareLimitColdCSVEarlyStop(t *testing.T) {
	e := setupBig(t, 300_000)
	res, err := e.QuerySQL(`SELECT id FROM People LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Fatalf("limit 10 returned %d rows", res.Len())
	}
	// The aborted first touch must not have poisoned the cache: a full
	// count still sees every row.
	cnt, err := e.Query(`for { p <- People } yield count p.id`)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Value().Int() != 300_000 {
		t.Fatalf("count after aborted scan = %d", cnt.Value().Int())
	}
}

// TestOrderedSetStream checks DISTINCT + ORDER BY + LIMIT end to end:
// dedup applies before the bound, order survives the cursor.
func TestOrderedSetStream(t *testing.T) {
	e := setupBig(t, 5000)
	rows, err := e.QuerySQLRows(`SELECT DISTINCT age FROM People ORDER BY age DESC LIMIT 4`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var ages []int64
	for rows.Next() {
		var age int64
		if err := rows.Scan(&age); err != nil {
			t.Fatal(err)
		}
		ages = append(ages, age)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ages) != fmt.Sprint([]int64{79, 78, 77, 76}) {
		t.Fatalf("distinct ordered ages = %v", ages)
	}
}

// TestOrderedMatchesReferenceExecutor cross-checks the JIT ordered fold
// against the reference executor on the same data.
func TestOrderedMatchesReferenceExecutor(t *testing.T) {
	rowsData := make([]Value, 0, 500)
	for i := 0; i < 500; i++ {
		rowsData = append(rowsData, NewRecord(
			Field{Name: "id", Val: NewInt(int64(i))},
			Field{Name: "age", Val: NewInt(int64(i * 37 % 83))},
		))
	}
	const q = `for { p <- People } yield bag (id := p.id) order by p.age, p.id desc limit 9 offset 4`
	var outs []string
	for _, opt := range [][]Option{nil, {WithReferenceExecutor()}, {WithStaticExecutor()}} {
		e := New(opt...)
		if err := e.RegisterValues("People", rowsData, "Record(Att(id, int), Att(age, int))"); err != nil {
			t.Fatal(err)
		}
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, res.String())
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("executors disagree:\njit:       %s\nreference: %s\nstatic:    %s", outs[0], outs[1], outs[2])
	}
	if !strings.Contains(outs[0], "id := ") {
		t.Fatalf("unexpected result shape: %s", outs[0])
	}
}

var _ algebra.Source = (*countingSource)(nil)
