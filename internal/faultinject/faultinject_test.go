package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	Reset()
	if err := Hit(CSVRead); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	if v := Value(AllocSpike); v != 0 {
		t.Fatalf("disarmed Value = %d", v)
	}
	if n := Hits(CSVRead); n != 0 {
		t.Fatalf("disarmed Hits = %d", n)
	}
}

func TestSetHitClear(t *testing.T) {
	Reset()
	defer Reset()
	Set(CSVRead, Always(ErrInjected))
	if err := Hit(CSVRead); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Hit = %v, want ErrInjected", err)
	}
	if n := Hits(CSVRead); n != 1 {
		t.Fatalf("Hits = %d, want 1", n)
	}
	// Unarmed points still pass while the package is armed.
	if err := Hit(JSONRead); err != nil {
		t.Fatalf("unarmed point Hit = %v", err)
	}
	Clear(CSVRead)
	if err := Hit(CSVRead); err != nil {
		t.Fatalf("cleared Hit = %v", err)
	}
}

func TestValuePoint(t *testing.T) {
	Reset()
	defer Reset()
	SetValue(AllocSpike, 1<<20)
	if v := Value(AllocSpike); v != 1<<20 {
		t.Fatalf("Value = %d", v)
	}
}

func TestAfter(t *testing.T) {
	Reset()
	defer Reset()
	Set(CSVRead, After(2, Always(ErrInjected)))
	for i := 0; i < 2; i++ {
		if err := Hit(CSVRead); err != nil {
			t.Fatalf("hit %d failed early: %v", i, err)
		}
	}
	if err := Hit(CSVRead); !errors.Is(err, ErrInjected) {
		t.Fatalf("third hit = %v, want ErrInjected", err)
	}
}

func TestProbDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	count := func() int {
		f := Prob(0.5, 7, Always(ErrInjected))
		n := 0
		for i := 0; i < 100; i++ {
			if f() != nil {
				n++
			}
		}
		return n
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("same seed produced different schedules: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("p=0.5 fired %d/100 times", a)
	}
}

func TestChainAndSleep(t *testing.T) {
	Reset()
	defer Reset()
	start := time.Now()
	f := Chain(Sleep(5*time.Millisecond), Always(ErrInjected))
	if err := f(); !errors.Is(err, ErrInjected) {
		t.Fatalf("chain = %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("chain skipped the sleep")
	}
}
