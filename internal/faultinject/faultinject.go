// Package faultinject provides named failure points for chaos testing:
// hooks compiled into the engine's scan loops, the morsel scheduler and
// the cache-harvest path that are no-ops in production (one relaxed
// atomic load) and, when armed by a test, inject read errors, delays,
// concurrent refreshes or allocation spikes at exactly the places where
// a hostile environment would. The chaos suite arms randomized schedules
// over every registered point and asserts the engine's containment
// invariants: no crash, no goroutine leak, no leaked admission slot, no
// poisoned cache entry.
//
// The package is deliberately tiny and dependency-free so any layer may
// call Hit without import cycles. Points are identified by the string
// constants below; call sites pay a single atomic bool load while the
// package is disarmed, so leaving the hooks in production builds is
// free in practice.
package faultinject

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// The registered failure points. Each names one call site class in the
// engine; tests arm a subset with Set and the chaos suite iterates
// Points() to cover all of them.
const (
	// CSVRead fires once per CSV batch/row-group scanned — a failure
	// here models a read error mid-scan (truncated file, I/O fault).
	CSVRead = "rawcsv.read"
	// CSVSlowRead fires alongside CSVRead and is meant for delay
	// faults: a slow disk or a cold page cache mid-scan.
	CSVSlowRead = "rawcsv.slow_read"
	// JSONRead fires once per JSON object scanned.
	JSONRead = "rawjson.read"
	// RefreshDuringScan fires inside the raw-scan cache-harvest loop;
	// arming it with a callback that rewrites and refreshes the source
	// reproduces the file-changed-mid-scan race the harvest guard must
	// contain.
	RefreshDuringScan = "core.refresh_during_scan"
	// PoolStall fires before each morsel executes on a scheduler
	// worker; delay faults here model a stalled worker.
	PoolStall = "sched.pool_stall"
	// JoinBuildStall fires once per build-side batch a hash join
	// retains (serial and morsel-parallel builds alike); delay faults
	// here hold the join's build barrier open, error faults model a
	// build-side scan failing mid-join.
	JoinBuildStall = "jit.join_build_stall"
	// AllocSpike is a value point (SetValue/Value): the harvest path
	// adds its value to every memory reservation, simulating an
	// allocation spike that drives the engine into budget pressure.
	AllocSpike = "core.alloc_spike"
)

// Points returns every registered point name (the chaos suite's
// iteration domain).
func Points() []string {
	return []string{CSVRead, CSVSlowRead, JSONRead, RefreshDuringScan, PoolStall, JoinBuildStall, AllocSpike}
}

// ErrInjected is the conventional error returned by failure faults; the
// chaos suite matches it to tell injected failures from real ones.
var ErrInjected = errors.New("faultinject: injected failure")

// Fault is the action taken when an armed point is hit: return an error
// to fail the operation, sleep to delay it, or run arbitrary code (e.g.
// trigger a concurrent Refresh) and return nil.
type Fault func() error

var (
	armed  atomic.Bool
	mu     sync.Mutex
	faults = map[string]Fault{}
	vals   = map[string]*atomic.Int64{}
	hits   = map[string]*atomic.Int64{}
)

// Set arms a fault at the named point (and arms the package). Replacing
// an existing fault is allowed; the fault may be invoked concurrently
// and must be safe for concurrent calls.
func Set(point string, f Fault) {
	mu.Lock()
	faults[point] = f
	if hits[point] == nil {
		hits[point] = &atomic.Int64{}
	}
	mu.Unlock()
	armed.Store(true)
}

// SetValue arms a numeric injection at the named point (used by value
// points such as AllocSpike).
func SetValue(point string, v int64) {
	mu.Lock()
	c := vals[point]
	if c == nil {
		c = &atomic.Int64{}
		vals[point] = c
	}
	c.Store(v)
	mu.Unlock()
	armed.Store(true)
}

// Clear disarms one point.
func Clear(point string) {
	mu.Lock()
	delete(faults, point)
	delete(vals, point)
	mu.Unlock()
}

// Reset disarms every point and zeroes hit counters; the package
// returns to its free no-op state. Tests defer this.
func Reset() {
	mu.Lock()
	faults = map[string]Fault{}
	vals = map[string]*atomic.Int64{}
	hits = map[string]*atomic.Int64{}
	mu.Unlock()
	armed.Store(false)
}

// Hit fires the named point: a no-op (single atomic load) while the
// package is disarmed, otherwise the armed fault's outcome. Call sites
// propagate a non-nil error as the operation's failure.
func Hit(point string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	f := faults[point]
	h := hits[point]
	mu.Unlock()
	if h != nil {
		h.Add(1)
	}
	if f == nil {
		return nil
	}
	return f()
}

// Value returns the numeric injection armed at a value point (0 while
// disarmed).
func Value(point string) int64 {
	if !armed.Load() {
		return 0
	}
	mu.Lock()
	c := vals[point]
	mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Hits reports how many times an armed point fired since the last Reset.
func Hits(point string) int64 {
	mu.Lock()
	h := hits[point]
	mu.Unlock()
	if h == nil {
		return 0
	}
	return h.Load()
}

// Always returns a fault that fails every hit with err.
func Always(err error) Fault { return func() error { return err } }

// Sleep returns a delay fault.
func Sleep(d time.Duration) Fault {
	return func() error { time.Sleep(d); return nil }
}

// After returns a fault that passes the first n hits then delegates to f
// — "fail mid-scan" is After(k, Always(ErrInjected)).
func After(n int64, f Fault) Fault {
	var seen atomic.Int64
	return func() error {
		if seen.Add(1) <= n {
			return nil
		}
		return f()
	}
}

// Prob returns a fault that delegates to f with probability p per hit,
// deterministically seeded — the randomized schedules of the chaos
// suite stay reproducible.
func Prob(p float64, seed int64, f Fault) Fault {
	var rmu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func() error {
		rmu.Lock()
		fire := rng.Float64() < p
		rmu.Unlock()
		if fire {
			return f()
		}
		return nil
	}
}

// Chain returns a fault running each fault in order, stopping at the
// first error (delay-then-maybe-fail schedules).
func Chain(fs ...Fault) Fault {
	return func() error {
		for _, f := range fs {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	}
}
