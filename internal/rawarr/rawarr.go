// Package rawarr implements ViDa's binary array access path. The paper's
// prototype queries "files containing binary arrays" (§6) — the data shape
// of scientific formats like ROOT, FITS and NetCDF (§3.1). This package
// defines a compact binary matrix format (the simulation substitute for
// those proprietary formats, per DESIGN.md) and a reader that exposes the
// access units the paper enumerates: single elements, rows, columns and
// n×m chunks.
//
// File layout (little-endian):
//
//	magic "VARR" | version u16 | ndims u8 | nfields u8
//	dims   : ndims  × u32
//	fields : nfields × { nameLen u8, name, type u8 (0=int64, 1=float64) }
//	data   : Π(dims) cells × nfields × 8 bytes, row-major, field-major
package rawarr

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"vida/internal/sdg"
	"vida/internal/values"
)

const magic = "VARR"

// FieldType is the storage type of one cell field.
type FieldType uint8

// The cell field types.
const (
	FieldInt FieldType = iota
	FieldFloat
)

// Header describes the array stored in a file.
type Header struct {
	Dims       []int
	FieldNames []string
	FieldTypes []FieldType
}

// Cells returns the total number of cells.
func (h *Header) Cells() int {
	n := 1
	for _, d := range h.Dims {
		n *= d
	}
	return n
}

func (h *Header) cellBytes() int { return len(h.FieldNames) * 8 }

// Write creates an array file with the given header and cell data
// supplied by next, called once per cell in row-major order; each call
// returns the field values for one cell.
func Write(path string, h *Header, next func(cell int) ([]values.Value, error)) error {
	if len(h.FieldNames) != len(h.FieldTypes) {
		return fmt.Errorf("rawarr: field names/types mismatch")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 0, 256)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, 1)
	buf = append(buf, byte(len(h.Dims)), byte(len(h.FieldNames)))
	for _, d := range h.Dims {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	for i, name := range h.FieldNames {
		if len(name) > 255 {
			return fmt.Errorf("rawarr: field name too long")
		}
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
		buf = append(buf, byte(h.FieldTypes[i]))
	}
	if _, err := f.Write(buf); err != nil {
		return err
	}
	cells := h.Cells()
	row := make([]byte, h.cellBytes())
	for c := 0; c < cells; c++ {
		vals, err := next(c)
		if err != nil {
			return err
		}
		if len(vals) != len(h.FieldNames) {
			return fmt.Errorf("rawarr: cell %d has %d fields, want %d", c, len(vals), len(h.FieldNames))
		}
		for i, v := range vals {
			var u uint64
			switch h.FieldTypes[i] {
			case FieldInt:
				u = uint64(v.Int())
			case FieldFloat:
				u = math.Float64bits(v.Float())
			}
			binary.LittleEndian.PutUint64(row[i*8:], u)
		}
		if _, err := f.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// Reader provides access-unit reads over one array file. It implements
// algebra.Source: iteration yields one record per cell carrying the dim
// indices plus the cell fields.
type Reader struct {
	desc     *sdg.Description
	hdr      Header
	data     []byte // cell payload only
	dimNames []string
	colIdx   map[string]int
}

// Open loads the array file described by desc. Dimension names come from
// the description's Array schema when present (d0, d1, ... otherwise).
func Open(desc *sdg.Description) (*Reader, error) {
	raw, err := os.ReadFile(desc.Path)
	if err != nil {
		return nil, fmt.Errorf("rawarr: %s: %w", desc.Name, err)
	}
	if len(raw) < 8 || string(raw[:4]) != magic {
		return nil, fmt.Errorf("rawarr: %s: bad magic", desc.Name)
	}
	pos := 4
	version := binary.LittleEndian.Uint16(raw[pos:])
	if version != 1 {
		return nil, fmt.Errorf("rawarr: %s: unsupported version %d", desc.Name, version)
	}
	pos += 2
	ndims := int(raw[pos])
	nfields := int(raw[pos+1])
	pos += 2
	var h Header
	if len(raw) < pos+4*ndims {
		return nil, fmt.Errorf("rawarr: %s: truncated dims", desc.Name)
	}
	for i := 0; i < ndims; i++ {
		h.Dims = append(h.Dims, int(binary.LittleEndian.Uint32(raw[pos:])))
		pos += 4
	}
	for i := 0; i < nfields; i++ {
		if pos >= len(raw) {
			return nil, fmt.Errorf("rawarr: %s: truncated fields", desc.Name)
		}
		n := int(raw[pos])
		pos++
		if pos+n+1 > len(raw) {
			return nil, fmt.Errorf("rawarr: %s: truncated field name", desc.Name)
		}
		h.FieldNames = append(h.FieldNames, string(raw[pos:pos+n]))
		pos += n
		h.FieldTypes = append(h.FieldTypes, FieldType(raw[pos]))
		pos++
	}
	want := h.Cells() * h.cellBytes()
	if len(raw)-pos != want {
		return nil, fmt.Errorf("rawarr: %s: payload is %d bytes, want %d", desc.Name, len(raw)-pos, want)
	}
	r := &Reader{desc: desc, hdr: h, data: raw[pos:], colIdx: map[string]int{}}
	if desc.Schema != nil && desc.Schema.Kind == sdg.TArray {
		for _, d := range desc.Schema.Dims {
			r.dimNames = append(r.dimNames, d.Name)
		}
	}
	for len(r.dimNames) < ndims {
		r.dimNames = append(r.dimNames, fmt.Sprintf("d%d", len(r.dimNames)))
	}
	for i, n := range h.FieldNames {
		r.colIdx[n] = i
	}
	return r, nil
}

// Name implements algebra.Source.
func (r *Reader) Name() string { return r.desc.Name }

// Header returns the parsed file header.
func (r *Reader) Header() Header { return r.hdr }

// DimNames returns the dimension variable names.
func (r *Reader) DimNames() []string { return r.dimNames }

// field reads field f of flattened cell c.
func (r *Reader) field(c, f int) values.Value {
	off := c*r.hdr.cellBytes() + f*8
	u := binary.LittleEndian.Uint64(r.data[off:])
	if r.hdr.FieldTypes[f] == FieldInt {
		return values.NewInt(int64(u))
	}
	return values.NewFloat(math.Float64frombits(u))
}

// Cell returns the record of one cell's fields at the given indices
// (UnitElement access).
func (r *Reader) Cell(idx ...int) (values.Value, error) {
	c, err := r.flatten(idx)
	if err != nil {
		return values.Null, err
	}
	fields := make([]values.Field, len(r.hdr.FieldNames))
	for f, n := range r.hdr.FieldNames {
		fields[f] = values.Field{Name: n, Val: r.field(c, f)}
	}
	return values.NewRecord(fields...), nil
}

func (r *Reader) flatten(idx []int) (int, error) {
	if len(idx) != len(r.hdr.Dims) {
		return 0, fmt.Errorf("rawarr: index rank %d != array rank %d", len(idx), len(r.hdr.Dims))
	}
	c := 0
	for d, i := range idx {
		if i < 0 || i >= r.hdr.Dims[d] {
			return 0, fmt.Errorf("rawarr: index %d out of range for dim %d", i, d)
		}
		c = c*r.hdr.Dims[d] + i
	}
	return c, nil
}

// Row returns all cells of row i of a 2-D array (UnitRow access).
func (r *Reader) Row(i int) ([]values.Value, error) {
	if len(r.hdr.Dims) != 2 {
		return nil, fmt.Errorf("rawarr: Row needs a 2-D array")
	}
	if i < 0 || i >= r.hdr.Dims[0] {
		return nil, fmt.Errorf("rawarr: row %d out of range", i)
	}
	out := make([]values.Value, r.hdr.Dims[1])
	for j := range out {
		v, err := r.Cell(i, j)
		if err != nil {
			return nil, err
		}
		out[j] = v
	}
	return out, nil
}

// Column returns all cells of column j of a 2-D array (UnitColumn access).
func (r *Reader) Column(j int) ([]values.Value, error) {
	if len(r.hdr.Dims) != 2 {
		return nil, fmt.Errorf("rawarr: Column needs a 2-D array")
	}
	if j < 0 || j >= r.hdr.Dims[1] {
		return nil, fmt.Errorf("rawarr: column %d out of range", j)
	}
	out := make([]values.Value, r.hdr.Dims[0])
	for i := range out {
		v, err := r.Cell(i, j)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Chunk yields cells [lo,hi) in flattened row-major order (UnitChunk
// access, the customary unit for array stores).
func (r *Reader) Chunk(lo, hi int, yield func(cell int, v values.Value) error) error {
	if lo < 0 || hi > r.hdr.Cells() || lo > hi {
		return fmt.Errorf("rawarr: chunk [%d,%d) out of range", lo, hi)
	}
	for c := lo; c < hi; c++ {
		fields := make([]values.Field, len(r.hdr.FieldNames))
		for f, n := range r.hdr.FieldNames {
			fields[f] = values.Field{Name: n, Val: r.field(c, f)}
		}
		if err := yield(c, values.NewRecord(fields...)); err != nil {
			return err
		}
	}
	return nil
}

// Iterate implements algebra.Source: every cell becomes a record of dim
// indices plus cell fields, optionally projected.
func (r *Reader) Iterate(fields []string, yield func(values.Value) error) error {
	type colSel struct {
		name  string
		dim   int // >= 0: dimension index; -1: data field
		field int
	}
	var sel []colSel
	if len(fields) == 0 {
		for d, n := range r.dimNames {
			sel = append(sel, colSel{name: n, dim: d})
		}
		for f, n := range r.hdr.FieldNames {
			sel = append(sel, colSel{name: n, dim: -1, field: f})
		}
	} else {
		for _, f := range fields {
			if fi, ok := r.colIdx[f]; ok {
				sel = append(sel, colSel{name: f, dim: -1, field: fi})
				continue
			}
			found := false
			for d, n := range r.dimNames {
				if n == f {
					sel = append(sel, colSel{name: f, dim: d})
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("rawarr: %s has no field %q", r.desc.Name, f)
			}
		}
	}
	cells := r.hdr.Cells()
	idx := make([]int, len(r.hdr.Dims))
	for c := 0; c < cells; c++ {
		recFields := make([]values.Field, len(sel))
		for i, s := range sel {
			if s.dim >= 0 {
				recFields[i] = values.Field{Name: s.name, Val: values.NewInt(int64(idx[s.dim]))}
			} else {
				recFields[i] = values.Field{Name: s.name, Val: r.field(c, s.field)}
			}
		}
		if err := yield(values.NewRecord(recFields...)); err != nil {
			return err
		}
		// Advance the multi-dimensional index.
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < r.hdr.Dims[d] {
				break
			}
			idx[d] = 0
		}
	}
	return nil
}

// SizeBytes returns the file payload size.
func (r *Reader) SizeBytes() int64 { return int64(len(r.data)) }
