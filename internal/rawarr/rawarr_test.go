package rawarr

import (
	"os"
	"path/filepath"
	"testing"

	"vida/internal/sdg"
	"vida/internal/values"
)

// writeTestArray writes a 3x4 elevation/temperature matrix — the paper's
// §3.1 example schema — where elevation(i,j) = 100*i+j and
// temperature(i,j) = float(i+j)/2.
func writeTestArray(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.varr")
	h := &Header{
		Dims:       []int{3, 4},
		FieldNames: []string{"elevation", "temperature"},
		FieldTypes: []FieldType{FieldInt, FieldFloat},
	}
	err := Write(path, h, func(c int) ([]values.Value, error) {
		i, j := c/4, c%4
		return []values.Value{
			values.NewInt(int64(100*i + j)),
			values.NewFloat(float64(i+j) / 2),
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func paperDesc(path string) *sdg.Description {
	schema := sdg.Array(
		[]sdg.Dim{{Name: "i", Type: sdg.Int}, {Name: "j", Type: sdg.Int}},
		sdg.Record(
			sdg.Attr{Name: "elevation", Type: sdg.Int},
			sdg.Attr{Name: "temperature", Type: sdg.Float},
		),
	)
	return sdg.DefaultDescription("M", sdg.FormatArray, path, schema)
}

func TestCellAccess(t *testing.T) {
	r, err := Open(paperDesc(writeTestArray(t)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Cell(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.MustGet("elevation").Int() != 203 {
		t.Fatalf("cell(2,3) = %v", v)
	}
	if v.MustGet("temperature").Float() != 2.5 {
		t.Fatalf("cell(2,3) = %v", v)
	}
	if _, err := r.Cell(3, 0); err == nil {
		t.Fatal("out of range cell should fail")
	}
	if _, err := r.Cell(1); err == nil {
		t.Fatal("rank mismatch should fail")
	}
}

func TestRowColumnChunkUnits(t *testing.T) {
	r, err := Open(paperDesc(writeTestArray(t)))
	if err != nil {
		t.Fatal(err)
	}
	row, err := r.Row(1)
	if err != nil || len(row) != 4 {
		t.Fatalf("Row = %v, %v", row, err)
	}
	if row[2].MustGet("elevation").Int() != 102 {
		t.Fatalf("row[2] = %v", row[2])
	}
	col, err := r.Column(0)
	if err != nil || len(col) != 3 {
		t.Fatalf("Column = %v, %v", col, err)
	}
	if col[2].MustGet("elevation").Int() != 200 {
		t.Fatalf("col[2] = %v", col[2])
	}
	var chunk []values.Value
	if err := r.Chunk(5, 8, func(c int, v values.Value) error {
		chunk = append(chunk, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(chunk) != 3 || chunk[0].MustGet("elevation").Int() != 101 {
		t.Fatalf("chunk = %v", chunk)
	}
	if err := r.Chunk(10, 14, func(int, values.Value) error { return nil }); err == nil {
		t.Fatal("out-of-range chunk should fail")
	}
}

func TestIterateWithDims(t *testing.T) {
	r, err := Open(paperDesc(writeTestArray(t)))
	if err != nil {
		t.Fatal(err)
	}
	var rows []values.Value
	if err := r.Iterate(nil, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("cells = %d", len(rows))
	}
	// Row-major: cell 5 is (i=1, j=1).
	if rows[5].MustGet("i").Int() != 1 || rows[5].MustGet("j").Int() != 1 {
		t.Fatalf("cell 5 dims = %v", rows[5])
	}
	if rows[5].MustGet("elevation").Int() != 101 {
		t.Fatalf("cell 5 = %v", rows[5])
	}
}

func TestIterateProjection(t *testing.T) {
	r, err := Open(paperDesc(writeTestArray(t)))
	if err != nil {
		t.Fatal(err)
	}
	var rows []values.Value
	if err := r.Iterate([]string{"temperature", "i"}, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows[0].Len() != 2 {
		t.Fatalf("projected cell = %v", rows[0])
	}
	if err := r.Iterate([]string{"nope"}, func(values.Value) error { return nil }); err == nil {
		t.Fatal("unknown field should fail")
	}
}

func TestDimNamesDefaultWithoutSchema(t *testing.T) {
	path := writeTestArray(t)
	d := &sdg.Description{Name: "M", Format: sdg.FormatArray, Path: path}
	r, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	names := r.DimNames()
	if len(names) != 2 || names[0] != "d0" || names[1] != "d1" {
		t.Fatalf("default dim names = %v", names)
	}
}

func TestOpenRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"short.varr":   []byte("VA"),
		"badmag.varr":  []byte("NOPE0000"),
		"truncd.varr":  append([]byte("VARR"), 1, 0, 2, 1),
		"version.varr": append([]byte("VARR"), 9, 0, 1, 1, 4, 0, 0, 0),
	}
	for name, data := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(&sdg.Description{Name: name, Format: sdg.FormatArray, Path: path}); err == nil {
			t.Fatalf("%s should fail to open", name)
		}
	}
	// Payload size mismatch.
	path := writeTestArray(t)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(paperDesc(path)); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

func TestWriteValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.varr")
	h := &Header{Dims: []int{2}, FieldNames: []string{"a"}, FieldTypes: []FieldType{FieldInt, FieldFloat}}
	if err := Write(path, h, nil); err == nil {
		t.Fatal("mismatched header should fail")
	}
	h = &Header{Dims: []int{2}, FieldNames: []string{"a"}, FieldTypes: []FieldType{FieldInt}}
	err := Write(path, h, func(c int) ([]values.Value, error) {
		return []values.Value{values.NewInt(1), values.NewInt(2)}, nil
	})
	if err == nil {
		t.Fatal("wrong cell arity should fail")
	}
}
