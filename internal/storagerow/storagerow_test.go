package storagerow

import (
	"fmt"
	"testing"

	"vida/internal/basequery"
	"vida/internal/sdg"
	"vida/internal/values"
)

func attrs4() []sdg.Attr {
	return []sdg.Attr{
		{Name: "id", Type: sdg.Int},
		{Name: "name", Type: sdg.String},
		{Name: "score", Type: sdg.Float},
		{Name: "active", Type: sdg.Bool},
	}
}

func row(id int64, name string, score float64, active bool) []values.Value {
	return []values.Value{
		values.NewInt(id), values.NewString(name), values.NewFloat(score), values.NewBool(active),
	}
}

func loadTable(t *testing.T, n int) (*Store, *Table) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable("T", attrs4())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tbl.Insert(row(int64(i), fmt.Sprintf("n%d", i), float64(i)/2, i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

func TestInsertScanRoundTrip(t *testing.T) {
	_, tbl := loadTable(t, 1000)
	var rows []values.Value
	if err := tbl.Scan(nil, nil, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1000 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[7].MustGet("name").Str() != "n7" || rows[7].MustGet("score").Float() != 3.5 {
		t.Fatalf("row 7 = %v", rows[7])
	}
}

func TestScanProjectionAndPredicates(t *testing.T) {
	_, tbl := loadTable(t, 100)
	var rows []values.Value
	preds := []basequery.Pred{{Col: "score", Op: basequery.OpGe, Val: values.NewFloat(45)}}
	if err := tbl.Scan([]string{"id"}, preds, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// score = i/2 >= 45 → i >= 90 → 10 rows.
	if len(rows) != 10 {
		t.Fatalf("filtered rows = %d", len(rows))
	}
	if rows[0].Len() != 1 {
		t.Fatalf("projection leaked: %v", rows[0])
	}
}

func TestNullsRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable("N", attrs4())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]values.Value{values.NewInt(1), values.Null, values.Null, values.True}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	var got values.Value
	if err := tbl.Scan(nil, nil, func(v values.Value) error {
		got = v
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !got.MustGet("name").IsNull() || !got.MustGet("score").IsNull() {
		t.Fatalf("nulls lost: %v", got)
	}
	if got.MustGet("id").Int() != 1 || !got.MustGet("active").Bool() {
		t.Fatalf("values lost: %v", got)
	}
}

func TestVerticalPartitioning(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// 4000 int columns exceed both the column limit and the page tuple
	// capacity: several vertical partitions must result, each narrow
	// enough that a full row fits one page.
	wide := make([]sdg.Attr, 4000)
	for i := range wide {
		wide[i] = sdg.Attr{Name: fmt.Sprintf("c%d", i), Type: sdg.Int}
	}
	tbl, err := s.CreateTable("Wide", wide)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Partitions() < 4 {
		t.Fatalf("partitions = %d, want >= 4 for 4000 int columns", tbl.Partitions())
	}
	for r := 0; r < 20; r++ {
		row := make([]values.Value, 4000)
		for i := range row {
			row[i] = values.NewInt(int64(r*10000 + i))
		}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	// Project columns from different partitions: stitched by row position.
	var rows []values.Value
	if err := tbl.Scan([]string{"c0", "c2000", "c3999"}, nil, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d", len(rows))
	}
	r7 := rows[7]
	if r7.MustGet("c0").Int() != 70000 || r7.MustGet("c2000").Int() != 72000 || r7.MustGet("c3999").Int() != 73999 {
		t.Fatalf("cross-partition stitch broken: %v", r7)
	}
}

func TestMultiPageSpill(t *testing.T) {
	// Rows big enough that 1000 of them exceed one page.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable("Big", []sdg.Attr{
		{Name: "id", Type: sdg.Int},
		{Name: "payload", Type: sdg.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := string(make([]byte, 500))
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert([]values.Value{values.NewInt(int64(i)), values.NewString(payload)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	if tbl.SizeBytes() <= PageSize {
		t.Fatalf("expected multi-page heap, size = %d", tbl.SizeBytes())
	}
	count := 0
	last := int64(-1)
	if err := tbl.Scan([]string{"id"}, nil, func(v values.Value) error {
		id := v.MustGet("id").Int()
		if id != last+1 {
			return fmt.Errorf("row order broken: %d after %d", id, last)
		}
		last = id
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Fatalf("count = %d", count)
	}
}

func TestOversizeTupleRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	tbl, _ := s.CreateTable("X", []sdg.Attr{{Name: "s", Type: sdg.String}})
	big := string(make([]byte, PageSize))
	if err := tbl.Insert([]values.Value{values.NewString(big)}); err == nil {
		t.Fatal("oversize tuple accepted")
	}
}

func TestDuplicateTableRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.CreateTable("T", attrs4()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("T", attrs4()); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestUnknownColumnRejected(t *testing.T) {
	_, tbl := loadTable(t, 5)
	if err := tbl.Scan([]string{"nope"}, nil, func(values.Value) error { return nil }); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestBufferPoolReuse(t *testing.T) {
	s, tbl := loadTable(t, 5000)
	for i := 0; i < 3; i++ {
		if err := tbl.Scan([]string{"id"}, nil, func(values.Value) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := s.BufferPoolStats()
	if hits == 0 {
		t.Fatalf("no buffer pool hits (hits=%d misses=%d)", hits, misses)
	}
}

func TestInsertRecordMatchesByName(t *testing.T) {
	s, _ := Open(t.TempDir())
	tbl, _ := s.CreateTable("R", attrs4())
	rec := values.NewRecord(
		values.Field{Name: "score", Val: values.NewFloat(9)},
		values.Field{Name: "id", Val: values.NewInt(3)},
	)
	if err := tbl.InsertRecord(rec); err != nil {
		t.Fatal(err)
	}
	if err := tbl.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	var got values.Value
	_ = tbl.Scan(nil, nil, func(v values.Value) error { got = v; return nil })
	if got.MustGet("id").Int() != 3 || got.MustGet("score").Float() != 9 || !got.MustGet("name").IsNull() {
		t.Fatalf("record insert = %v", got)
	}
}
