package storagerow

import (
	"fmt"
	"os"
	"sync"
)

// heapFile is a file-backed sequence of pages accessed through the
// store's shared buffer pool.
type heapFile struct {
	path   string
	f      *os.File
	npages int
}

func createHeap(path string) (*heapFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &heapFile{path: path, f: f}, nil
}

func (h *heapFile) readPage(idx int, p *page) error {
	_, err := h.f.ReadAt(p.buf[:], int64(idx)*PageSize)
	return err
}

func (h *heapFile) writePage(idx int, p *page) error {
	_, err := h.f.WriteAt(p.buf[:], int64(idx)*PageSize)
	return err
}

func (h *heapFile) close() error { return h.f.Close() }

// bufferPool caches pages across all heap files of a store with a simple
// clock eviction policy; dirty pages write back on eviction and Flush.
type bufferPool struct {
	mu       sync.Mutex
	capacity int
	frames   []frame
	index    map[frameKey]int
	hand     int
	hits     int64
	misses   int64
}

type frameKey struct {
	file *heapFile
	page int
}

type frame struct {
	key   frameKey
	pg    *page
	used  bool
	valid bool
	pins  int
}

func newBufferPool(capacity int) *bufferPool {
	if capacity < 4 {
		capacity = 4
	}
	return &bufferPool{
		capacity: capacity,
		frames:   make([]frame, capacity),
		index:    map[frameKey]int{},
	}
}

// get returns the page PINNED: callers must unpin when done. Pinned
// frames are never evicted, so the pointer stays valid across later gets.
func (bp *bufferPool) get(h *heapFile, idx int) (*page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	key := frameKey{file: h, page: idx}
	if fi, ok := bp.index[key]; ok {
		bp.hits++
		bp.frames[fi].used = true
		bp.frames[fi].pins++
		return bp.frames[fi].pg, nil
	}
	bp.misses++
	fi, err := bp.evictLocked()
	if err != nil {
		return nil, err
	}
	fr := &bp.frames[fi]
	if fr.valid {
		delete(bp.index, fr.key)
	}
	if fr.pg == nil {
		fr.pg = &page{}
	}
	if err := h.readPage(idx, fr.pg); err != nil {
		fr.valid = false
		return nil, err
	}
	fr.pg.dirty = false
	fr.key = key
	fr.used = true
	fr.valid = true
	fr.pins = 1
	bp.index[key] = fi
	return fr.pg, nil
}

// unpin releases a page returned by get.
func (bp *bufferPool) unpin(h *heapFile, idx int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fi, ok := bp.index[frameKey{file: h, page: idx}]; ok && bp.frames[fi].pins > 0 {
		bp.frames[fi].pins--
	}
}

// evictLocked finds an unpinned victim frame (clock), writing it back
// when dirty.
func (bp *bufferPool) evictLocked() (int, error) {
	for spins := 0; spins < 2*bp.capacity+1; spins++ {
		fr := &bp.frames[bp.hand]
		idx := bp.hand
		bp.hand = (bp.hand + 1) % bp.capacity
		if !fr.valid {
			return idx, nil
		}
		if fr.pins > 0 {
			continue
		}
		if fr.used {
			fr.used = false
			continue
		}
		if fr.pg.dirty {
			if err := fr.key.file.writePage(fr.key.page, fr.pg); err != nil {
				return 0, err
			}
			fr.pg.dirty = false
		}
		return idx, nil
	}
	return 0, fmt.Errorf("storagerow: buffer pool exhausted (all frames pinned)")
}

// flush writes back every dirty page.
func (bp *bufferPool) flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		fr := &bp.frames[i]
		if fr.valid && fr.pg.dirty {
			if err := fr.key.file.writePage(fr.key.page, fr.pg); err != nil {
				return err
			}
			fr.pg.dirty = false
		}
	}
	return nil
}

// invalidate drops all frames of a file (table drop).
func (bp *bufferPool) invalidate(h *heapFile) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		if bp.frames[i].valid && bp.frames[i].key.file == h {
			delete(bp.index, bp.frames[i].key)
			bp.frames[i].valid = false
		}
	}
}
