package storagerow

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vida/internal/basequery"
	"vida/internal/sdg"
	"vida/internal/values"
)

// MaxColumns is the per-table attribute limit; wider relations are
// vertically partitioned at load, like PostgreSQL forced on the paper's
// Genetics relation (§6).
const MaxColumns = 1600

// Store is a row-store database instance rooted in a directory.
type Store struct {
	mu     sync.Mutex
	dir    string
	pool   *bufferPool
	tables map[string]*Table
}

// Table is one logical relation, possibly spread over vertical partitions.
type Table struct {
	store  *Store
	Name   string
	Attrs  []sdg.Attr
	parts  []*partition
	colLoc map[string]colLoc // attr name -> partition+index
	rows   int
}

type partition struct {
	attrs []sdg.Attr
	heap  *heapFile
	// writer state during load
	cur *page
}

type colLoc struct {
	part int
	idx  int
}

// Open creates (or reuses) a store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, pool: newBufferPool(256), tables: map[string]*Table{}}, nil
}

// Close flushes and closes all heaps.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.pool.flush(); err != nil {
		return err
	}
	for _, t := range s.tables {
		for _, p := range t.parts {
			if err := p.heap.close(); err != nil {
				return err
			}
		}
	}
	s.tables = map[string]*Table{}
	return nil
}

// estFieldBytes is the worst-case fixed encoding per attribute used when
// sizing partitions (strings estimated; genuinely huge strings can still
// overflow and are rejected at insert).
func estFieldBytes(t *sdg.Type) int {
	switch t.Kind {
	case sdg.TInt, sdg.TFloat:
		return 8
	case sdg.TBool:
		return 1
	default:
		return 64
	}
}

// CreateTable registers a relation, vertically partitioning schemas that
// exceed either the column limit (PostgreSQL's 1600) or the page tuple
// capacity — both constraints the paper's Genetics relation (17 832
// attributes) runs into.
func (s *Store) CreateTable(name string, attrs []sdg.Attr) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("storagerow: table %q exists", name)
	}
	t := &Table{store: s, Name: name, Attrs: attrs, colLoc: map[string]colLoc{}}
	budget := PageSize - 512 // leave slack for slot directory and header
	start := 0
	for start < len(attrs) {
		end := start
		bytes := 0
		for end < len(attrs) && end-start < MaxColumns {
			fb := estFieldBytes(attrs[end].Type) + 1 // +bitmap amortized
			if bytes+fb > budget && end > start {
				break
			}
			bytes += fb
			end++
		}
		pIdx := len(t.parts)
		path := filepath.Join(s.dir, fmt.Sprintf("%s.p%d.heap", sanitize(name), pIdx))
		h, err := createHeap(path)
		if err != nil {
			return nil, err
		}
		part := &partition{attrs: attrs[start:end], heap: h, cur: &page{}}
		t.parts = append(t.parts, part)
		for i, a := range part.attrs {
			t.colLoc[a.Name] = colLoc{part: pIdx, idx: i}
		}
		start = end
	}
	s.tables[name] = t
	return t, nil
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, name)
}

// Table returns a registered relation.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	return t, ok
}

// Tables lists relations.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Partitions reports the vertical partition count (1 for narrow tables).
func (t *Table) Partitions() int { return len(t.parts) }

// NumRows returns the loaded row count.
func (t *Table) NumRows() int { return t.rows }

// Insert appends one row (values in schema order). Rows are synchronously
// split across partitions; row order is identical in every partition, so
// a row is re-assembled by position.
func (t *Table) Insert(row []values.Value) error {
	if len(row) != len(t.Attrs) {
		return fmt.Errorf("storagerow: row arity %d != schema %d", len(row), len(t.Attrs))
	}
	off := 0
	for _, p := range t.parts {
		part := row[off : off+len(p.attrs)]
		tuple, err := encodeTuple(p.attrs, part, nil)
		if err != nil {
			return err
		}
		if len(tuple) > PageSize-pageHeader-4 {
			return fmt.Errorf("storagerow: tuple of %d bytes exceeds page capacity", len(tuple))
		}
		if _, ok := p.cur.insert(tuple); !ok {
			// Page full: persist and start a fresh one.
			if err := p.heap.writePage(p.heap.npages, p.cur); err != nil {
				return err
			}
			p.heap.npages++
			p.cur = &page{}
			if _, ok := p.cur.insert(tuple); !ok {
				return fmt.Errorf("storagerow: tuple does not fit an empty page")
			}
		}
		off += len(p.attrs)
	}
	t.rows++
	return nil
}

// FinishLoad flushes partial pages; must be called after the last Insert.
func (t *Table) FinishLoad() error {
	for _, p := range t.parts {
		if p.cur != nil && p.cur.nslots() > 0 {
			if err := p.heap.writePage(p.heap.npages, p.cur); err != nil {
				return err
			}
			p.heap.npages++
			p.cur = &page{}
		}
	}
	return nil
}

// InsertRecord appends a record value, matching fields by name (missing
// fields become null).
func (t *Table) InsertRecord(rec values.Value) error {
	row := make([]values.Value, len(t.Attrs))
	for i, a := range t.Attrs {
		v, _ := rec.Get(a.Name)
		row[i] = v
	}
	return t.Insert(row)
}

// Scan streams rows tuple-at-a-time through the buffer pool, projecting
// the requested fields (nil = all) and applying the predicates. Vertical
// partitions are stitched back together by row position — the re-join
// cost the paper notes for partitioned wide tables.
func (t *Table) Scan(fields []string, preds []basequery.Pred, yield func(values.Value) error) error {
	// Work out which partitions and columns we need.
	needed := map[int]map[int]bool{} // part -> col idx set
	var outFields []string
	if fields == nil {
		outFields = make([]string, len(t.Attrs))
		for i, a := range t.Attrs {
			outFields[i] = a.Name
		}
	} else {
		outFields = fields
	}
	colOf := map[string]colLoc{}
	addCol := func(name string) error {
		loc, ok := t.colLoc[name]
		if !ok {
			return fmt.Errorf("storagerow: %s has no column %q", t.Name, name)
		}
		if needed[loc.part] == nil {
			needed[loc.part] = map[int]bool{}
		}
		needed[loc.part][loc.idx] = true
		colOf[name] = loc
		return nil
	}
	for _, f := range outFields {
		if err := addCol(f); err != nil {
			return err
		}
	}
	for _, p := range preds {
		if err := addCol(p.Col); err != nil {
			return err
		}
	}

	// Open cursors on every needed partition.
	type cursor struct {
		part    *partition
		partIdx int
		want    map[int]bool
		// decoded values of the needed columns, keyed by col idx, for
		// the current row
		colIdxs []int
		pageIdx int
		slotIdx int
		pg      *page
	}
	var cursors []*cursor
	for pi, p := range t.parts {
		if needed[pi] == nil {
			continue
		}
		idxs := make([]int, 0, len(needed[pi]))
		for i := range needed[pi] {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		cursors = append(cursors, &cursor{part: p, partIdx: pi, want: needed[pi], colIdxs: idxs})
	}
	if len(cursors) == 0 {
		return nil
	}

	// Iterate row positions; each cursor advances in lockstep. Cursors
	// keep their current page pinned; unpin on advance and on exit.
	defer func() {
		for _, c := range cursors {
			if c.pg != nil {
				t.store.pool.unpin(c.part.heap, c.pageIdx)
			}
		}
	}()
	current := map[string]values.Value{}
	scratch := make([]values.Value, 0, 16)
	for row := 0; row < t.rows; row++ {
		for _, c := range cursors {
			// Advance to the page containing this row if needed.
			for {
				if c.pg == nil {
					if c.pageIdx >= c.part.heap.npages {
						return fmt.Errorf("storagerow: %s: row %d beyond heap", t.Name, row)
					}
					pg, err := t.store.pool.get(c.part.heap, c.pageIdx)
					if err != nil {
						return err
					}
					c.pg = pg
					c.slotIdx = 0
				}
				if c.slotIdx < c.pg.nslots() {
					break
				}
				t.store.pool.unpin(c.part.heap, c.pageIdx)
				c.pageIdx++
				c.pg = nil
			}
			scratch = scratch[:0]
			decoded, err := decodeTuple(c.part.attrs, c.pg.tuple(c.slotIdx), c.want, scratch)
			if err != nil {
				return err
			}
			for k, idx := range c.colIdxs {
				current[c.part.attrs[idx].Name] = decoded[k]
			}
			c.slotIdx++
		}
		ok := true
		for _, p := range preds {
			if !p.Eval(current[p.Col]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out := make([]values.Field, len(outFields))
		for i, f := range outFields {
			out[i] = values.Field{Name: f, Val: current[f]}
		}
		if err := yield(values.NewRecord(out...)); err != nil {
			return err
		}
	}
	return nil
}

// SizeBytes reports the on-disk footprint of the table.
func (t *Table) SizeBytes() int64 {
	var total int64
	for _, p := range t.parts {
		total += int64(p.heap.npages) * PageSize
	}
	return total
}

// BufferPoolStats reports pool hits/misses.
func (s *Store) BufferPoolStats() (hits, misses int64) {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	return s.pool.hits, s.pool.misses
}
