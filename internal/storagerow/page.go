// Package storagerow implements the row-store baseline of the paper's
// evaluation (its stand-in for PostgreSQL, DESIGN.md substitutions): a
// disk-resident heap of 8 KB slotted pages behind a small buffer pool,
// tables limited to MaxColumns attributes with automatic vertical
// partitioning above that (PostgreSQL's 250–1600 attribute limit forced
// the paper to partition the 17 832-column Genetics relation, §6), and a
// tuple-at-a-time Volcano executor. Loading converts and copies all data
// up front — the cost ViDa avoids.
package storagerow

import (
	"encoding/binary"
	"fmt"
	"math"

	"vida/internal/sdg"
	"vida/internal/values"
)

// PageSize is the fixed page size.
const PageSize = 8192

// page layout:
//
//	header : u16 nslots | u16 freeStart (offset of next tuple write)
//	slots  : nslots × { u16 offset, u16 length } growing from byte 4
//	tuples : grow from the END of the page downward
type page struct {
	buf   [PageSize]byte
	dirty bool
}

const pageHeader = 4

func (p *page) nslots() int { return int(binary.LittleEndian.Uint16(p.buf[0:])) }
func (p *page) setNslots(n int) {
	binary.LittleEndian.PutUint16(p.buf[0:], uint16(n))
}

// freeEnd is where the last-written tuple begins (tuples grow downward).
func (p *page) freeEnd() int {
	v := int(binary.LittleEndian.Uint16(p.buf[2:]))
	if v == 0 {
		return PageSize
	}
	return v
}

func (p *page) setFreeEnd(off int) {
	binary.LittleEndian.PutUint16(p.buf[2:], uint16(off))
}

func (p *page) slot(i int) (off, length int) {
	base := pageHeader + i*4
	return int(binary.LittleEndian.Uint16(p.buf[base:])), int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p *page) setSlot(i, off, length int) {
	base := pageHeader + i*4
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// freeSpace returns the bytes available for one more tuple+slot.
func (p *page) freeSpace() int {
	slotEnd := pageHeader + p.nslots()*4
	return p.freeEnd() - slotEnd - 4
}

// insert adds a tuple, returning its slot index or false when full.
func (p *page) insert(tuple []byte) (int, bool) {
	if len(tuple) > p.freeSpace() {
		return 0, false
	}
	off := p.freeEnd() - len(tuple)
	copy(p.buf[off:], tuple)
	i := p.nslots()
	p.setSlot(i, off, len(tuple))
	p.setNslots(i + 1)
	p.setFreeEnd(off)
	p.dirty = true
	return i, true
}

// tuple returns the raw bytes of slot i.
func (p *page) tuple(i int) []byte {
	off, length := p.slot(i)
	return p.buf[off : off+length]
}

// ---------------------------------------------------------------------------
// Tuple codec: null bitmap + fixed-width/varlen fields per schema
// ---------------------------------------------------------------------------

// encodeTuple serializes a row per the attribute schema: a null bitmap
// followed by the non-null values (int/float: 8 bytes; bool: 1; string:
// u32 length + bytes).
func encodeTuple(attrs []sdg.Attr, row []values.Value, buf []byte) ([]byte, error) {
	if len(row) != len(attrs) {
		return nil, fmt.Errorf("storagerow: row arity %d != schema %d", len(row), len(attrs))
	}
	nb := (len(attrs) + 7) / 8
	start := len(buf)
	buf = append(buf, make([]byte, nb)...)
	for i, v := range row {
		if v.IsNull() {
			buf[start+i/8] |= 1 << (i % 8)
			continue
		}
		switch attrs[i].Type.Kind {
		case sdg.TInt:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
		case sdg.TFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
		case sdg.TBool:
			if v.Bool() {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		default: // strings and anything else stored as text
			s := v.Str()
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf, nil
}

// decodeTuple deserializes selected columns (nil cols = all), appending
// values in schema order for requested columns.
func decodeTuple(attrs []sdg.Attr, data []byte, want map[int]bool, out []values.Value) ([]values.Value, error) {
	nb := (len(attrs) + 7) / 8
	if len(data) < nb {
		return nil, fmt.Errorf("storagerow: truncated tuple")
	}
	pos := nb
	for i, a := range attrs {
		isNull := data[i/8]&(1<<(i%8)) != 0
		include := want == nil || want[i]
		if isNull {
			if include {
				out = append(out, values.Null)
			}
			continue
		}
		switch a.Type.Kind {
		case sdg.TInt:
			if pos+8 > len(data) {
				return nil, fmt.Errorf("storagerow: truncated int")
			}
			if include {
				out = append(out, values.NewInt(int64(binary.LittleEndian.Uint64(data[pos:]))))
			}
			pos += 8
		case sdg.TFloat:
			if pos+8 > len(data) {
				return nil, fmt.Errorf("storagerow: truncated float")
			}
			if include {
				out = append(out, values.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))))
			}
			pos += 8
		case sdg.TBool:
			if pos+1 > len(data) {
				return nil, fmt.Errorf("storagerow: truncated bool")
			}
			if include {
				out = append(out, values.NewBool(data[pos] != 0))
			}
			pos++
		default:
			if pos+4 > len(data) {
				return nil, fmt.Errorf("storagerow: truncated string header")
			}
			n := int(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
			if pos+n > len(data) {
				return nil, fmt.Errorf("storagerow: truncated string")
			}
			if include {
				out = append(out, values.NewString(string(data[pos:pos+n])))
			}
			pos += n
		}
	}
	return out, nil
}
