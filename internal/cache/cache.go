package cache

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vida/internal/colenc"
	"vida/internal/values"
	"vida/internal/vec"
)

// Layout enumerates the cache representations of Figure 4 plus the
// columnar re-shaping of §5.
type Layout uint8

// The cache layouts.
const (
	LayoutColumns Layout = iota // typed column vectors (tabular re-shape)
	LayoutRows                  // record values in row order ("C++ object" analogue, Fig 4c)
	LayoutBSON                  // binary JSON documents (Fig 4b)
	LayoutSpans                 // (start,end) byte positions into the raw file (Fig 4d)
)

// String returns the layout name.
func (l Layout) String() string {
	switch l {
	case LayoutColumns:
		return "columns"
	case LayoutRows:
		return "rows"
	case LayoutBSON:
		return "bson"
	case LayoutSpans:
		return "spans"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// Span is a byte range into a raw file.
type Span struct{ Start, End int64 }

// Entry is one cached representation of (part of) a dataset.
type Entry struct {
	Dataset string
	Layout  Layout
	N       int // row/object count

	// Cols holds the columnar layout: one vector per attribute, kept in
	// the typed representation the harvesting scan produced (boxed only
	// for mixed-type or generic columns). Published columns are
	// immutable — scans serve slice windows of them zero-copy.
	Cols  map[string]vec.Col // LayoutColumns
	Rows  []values.Value     // LayoutRows
	Docs  [][]byte           // LayoutBSON
	Spans []Span             // LayoutSpans

	// Enc is the second-tier representation: when non-nil the entry holds
	// encoded blocks instead of flat vectors (Cols is then nil) and size
	// accounts the encoded bytes, so one budget holds far more rows. Scans
	// decode windows on demand through ColumnsSource.
	Enc *colenc.Table

	size int64
	tick uint64
	hits int64
}

// SizeBytes returns the entry's estimated memory footprint.
func (e *Entry) SizeBytes() int64 { return e.size }

// Hits returns how many lookups this entry served.
func (e *Entry) Hits() int64 { return e.hits }

// Encoded reports whether the entry lives in the encoded tier.
func (e *Entry) Encoded() bool { return e.Enc != nil }

// HasColumns reports whether the entry covers all the given fields.
func (e *Entry) HasColumns(fields []string) bool {
	if e.Layout != LayoutColumns {
		return false
	}
	if e.Enc != nil {
		return e.Enc.HasColumns(fields)
	}
	for _, f := range fields {
		if _, ok := e.Cols[f]; !ok {
			return false
		}
	}
	return true
}

// Stats aggregates cache activity for the experiments (E4: cache-hit
// ratio over the 150-query workload).
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Insertions int64
	BytesUsed  int64
	BytesLimit int64
	Entries    int
	// Tier accounting: flat-vector bytes vs encoded-block bytes, and the
	// traffic between the tiers and the spill directory.
	HotBytes         int64
	EncodedBytes     int64
	Encodes          int64
	DecodedBlocks    int64
	SpillWrites      int64
	RehydratedBlocks int64
	SpillCorrupt     int64
}

// Config parameterizes a Manager beyond the byte budget.
type Config struct {
	// BudgetBytes bounds all resident entries, both tiers (<=0: unlimited).
	BudgetBytes int64
	// HotBytes bounds the flat-vector tier: once exceeded, the coldest
	// columnar entries transition to encoded blocks in memory (<=0:
	// tiering disabled, everything stays hot).
	HotBytes int64
	// SpillDir, when set, persists encoded columnar entries as generation
	// keyed spill files so a restarted engine rehydrates instead of
	// re-scanning raw files.
	SpillDir string
}

// Manager owns all cache entries under one byte budget.
type Manager struct {
	mu      sync.Mutex
	cfg     Config
	budget  int64
	used    int64 // hotUsed + encodedUsed: every resident entry's size
	tick    uint64
	entries map[string]*Entry
	hits    int64
	misses  int64
	evicted int64
	puts    int64

	hotUsed     int64
	encodedUsed int64
	encodes     int64
	spillWrites int64
	rehydrated  int64
	corrupt     int64
	// spillKeys maps a dataset to its current raw-file generation (the
	// spill key); registered by the engine when a spill dir is active.
	spillKeys map[string]func() string
	// decodedBlocks is written by concurrent scans outside mu.
	decodedBlocks atomic.Int64
}

// New creates a Manager with the given byte budget (<=0 means unlimited).
func New(budgetBytes int64) *Manager {
	return NewWithConfig(Config{BudgetBytes: budgetBytes})
}

// NewWithConfig creates a Manager with tiering and spill configured.
func NewWithConfig(cfg Config) *Manager {
	return &Manager{cfg: cfg, budget: cfg.BudgetBytes, entries: map[string]*Entry{}, spillKeys: map[string]func() string{}}
}

// SetSpillKey registers the generation provider of a dataset: spill
// files are keyed by its value so a raw-file change strands (and the
// cache then deletes) the stale spill.
func (m *Manager) SetSpillKey(dataset string, gen func() string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spillKeys[dataset] = gen
}

func key(dataset string, layout Layout) string {
	return dataset + "\x00" + layout.String()
}

// EstimateValueBytes approximates the in-memory footprint of a value; it
// is deliberately cheap rather than exact.
func EstimateValueBytes(v values.Value) int64 {
	const base = 56 // tagged struct overhead
	switch v.Kind() {
	case values.KindNull, values.KindBool, values.KindInt, values.KindFloat:
		return base
	case values.KindString:
		return base + int64(v.Len())
	case values.KindRecord:
		total := int64(base)
		for _, f := range v.Fields() {
			total += int64(len(f.Name)) + EstimateValueBytes(f.Val)
		}
		return total
	default:
		total := int64(base)
		for _, e := range v.Elems() {
			total += EstimateValueBytes(e)
		}
		return total
	}
}

// EstimateColBytes approximates the in-memory footprint of a cached
// column: the physical payload for typed vectors, a per-value deep
// estimate for boxed ones. This is what eviction accounts against, so a
// typed entry charges the budget its true (much smaller) size.
func EstimateColBytes(c *vec.Col) int64 {
	if c.Tag == vec.Boxed {
		var sz int64
		for _, v := range c.Boxed {
			sz += EstimateValueBytes(v)
		}
		return sz + int64(len(c.Nulls))
	}
	return c.SizeBytes()
}

// PutColumnVectors installs (or extends) the columnar entry of a
// dataset with typed column vectors. All columns must hold n rows.
// Existing columns are kept, so the entry accumulates attributes across
// queries — exactly how ViDa's caches grow with the workload. Extension
// is copy-on-write: scans hold Entry pointers outside the manager lock,
// so a published entry is never mutated — a grown replacement entry
// (sharing the column storage) takes its place instead. Ownership of
// the column storage transfers to the cache; callers must not retain
// mutable references.
func (m *Manager) PutColumnVectors(dataset string, n int, cols map[string]vec.Col) error {
	for name, col := range cols {
		if col.Len() != n {
			return fmt.Errorf("cache: column %q has %d values, want %d", name, col.Len(), n)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := key(dataset, LayoutColumns)
	old := m.entries[k]
	if old != nil && old.N != n {
		// Shape changed (file grew): replace wholesale.
		m.removeLocked(k)
		old = nil
	}
	e := &Entry{Dataset: dataset, Layout: LayoutColumns, N: n, Cols: make(map[string]vec.Col, len(cols))}
	if old != nil {
		e.tick, e.hits = old.tick, old.hits
		oldCols := old.Cols
		if old.Enc != nil {
			// The entry sits in the encoded tier: materialize it so the
			// fresh columns merge into one hot entry (which may transition
			// right back below if the hot tier is over budget).
			dec, err := old.Enc.DecodeAll()
			if err != nil {
				// Unreachable for blocks we encoded; drop the old entry
				// rather than serve questionable data.
				dec = nil
			}
			oldCols = dec
		}
		for name, col := range oldCols {
			e.Cols[name] = col
		}
		m.removeLocked(k)
	} else {
		m.puts++
	}
	for name, col := range cols {
		if _, exists := e.Cols[name]; exists {
			continue
		}
		e.Cols[name] = col
	}
	// Recomputing from the live columns (rather than trusting the old
	// entry's incremental sum) keeps tracked bytes drift-free across
	// merge, decode and replace churn.
	for name := range e.Cols {
		col := e.Cols[name]
		e.size += EstimateColBytes(&col)
	}
	m.entries[k] = e
	m.used += e.size
	m.hotUsed += e.size
	m.touchLocked(e)
	m.maybeEncodeLocked()
	m.spillLocked(e)
	m.evictLocked()
	return nil
}

// maybeEncodeLocked transitions the coldest columnar entries from flat
// vectors to encoded blocks while the hot tier is over its budget. The
// swap is copy-on-write: in-flight scans keep reading the flat entry
// they resolved; new lookups see the encoded one.
func (m *Manager) maybeEncodeLocked() {
	if m.cfg.HotBytes <= 0 {
		return
	}
	for m.hotUsed > m.cfg.HotBytes {
		var coldestKey string
		var coldest *Entry
		for k, e := range m.entries {
			if e.Layout != LayoutColumns || e.Enc != nil || e.Cols == nil {
				continue
			}
			if coldest == nil || e.tick < coldest.tick {
				coldest, coldestKey = e, k
			}
		}
		if coldest == nil {
			return
		}
		tab, err := colenc.EncodeColumns(coldest.Cols, coldest.N)
		if err != nil {
			// Should not happen; leave the tier as is rather than loop.
			return
		}
		enc := &Entry{
			Dataset: coldest.Dataset, Layout: LayoutColumns, N: coldest.N,
			Enc: tab, size: tab.SizeBytes(), tick: coldest.tick, hits: coldest.hits,
		}
		m.entries[coldestKey] = enc
		m.used += enc.size - coldest.size
		m.hotUsed -= coldest.size
		m.encodedUsed += enc.size
		m.encodes++
	}
}

// PutColumns is the boxed-compatibility form of PutColumnVectors: each
// column is installed under the boxed fallback layout. Row-at-a-time
// harvest paths (record and slot scans) use it; the vectorized harvest
// installs typed vectors directly.
func (m *Manager) PutColumns(dataset string, n int, cols map[string][]values.Value) error {
	vcols := make(map[string]vec.Col, len(cols))
	for name, col := range cols {
		vcols[name] = vec.Col{Tag: vec.Boxed, Boxed: col}
	}
	return m.PutColumnVectors(dataset, n, vcols)
}

// PutRows installs the row-layout entry for a dataset.
func (m *Manager) PutRows(dataset string, rows []values.Value) {
	var sz int64
	for _, r := range rows {
		sz += EstimateValueBytes(r)
	}
	m.put(&Entry{Dataset: dataset, Layout: LayoutRows, N: len(rows), Rows: rows, size: sz})
}

// PutBSON installs the binary-JSON entry for a dataset.
func (m *Manager) PutBSON(dataset string, docs [][]byte) {
	var sz int64
	for _, d := range docs {
		sz += int64(len(d))
	}
	m.put(&Entry{Dataset: dataset, Layout: LayoutBSON, N: len(docs), Docs: docs, size: sz})
}

// PutSpans installs the positional entry for a dataset.
func (m *Manager) PutSpans(dataset string, spans []Span) {
	m.put(&Entry{Dataset: dataset, Layout: LayoutSpans, N: len(spans), Spans: spans, size: int64(len(spans) * 16)})
}

func (m *Manager) put(e *Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := key(e.Dataset, e.Layout)
	m.removeLocked(k)
	m.entries[k] = e
	m.used += e.size
	m.hotUsed += e.size
	m.puts++
	m.touchLocked(e)
	m.evictLocked()
}

// Get returns the entry of a dataset in a specific layout.
func (m *Manager) Get(dataset string, layout Layout) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key(dataset, layout)]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	e.hits++
	m.touchLocked(e)
	return e, true
}

// GetColumns returns the columnar entry if it covers all fields.
func (m *Manager) GetColumns(dataset string, fields []string) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key(dataset, LayoutColumns)]
	if !ok || !e.HasColumns(fields) {
		m.misses++
		return nil, false
	}
	m.hits++
	e.hits++
	m.touchLocked(e)
	return e, true
}

// Touch records a served lookup (hit + LRU bump) for an entry that was
// resolved via Peek — the deferred-accounting path range scans use so
// that probing for parallelizability does not double-count hits.
func (m *Manager) Touch(dataset string, layout Layout) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[key(dataset, layout)]; ok {
		m.hits++
		e.hits++
		m.touchLocked(e)
	}
}

// Peek is Get without statistics or LRU effects (used by the optimizer's
// cost model to probe residency without distorting hit rates).
func (m *Manager) Peek(dataset string, layout Layout) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key(dataset, layout)]
	return e, ok
}

// PeekColumns probes columnar coverage without statistics effects.
func (m *Manager) PeekColumns(dataset string, fields []string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key(dataset, LayoutColumns)]
	return ok && e.HasColumns(fields)
}

// Invalidate drops every entry of a dataset (file changed), along with
// any spill files: their generation no longer exists.
func (m *Manager) Invalidate(dataset string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, e := range m.entries {
		if e.Dataset == dataset {
			m.removeLocked(k)
		}
	}
	m.removeSpillFilesLocked(dataset)
}

// Clear drops everything.
func (m *Manager) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.entries {
		m.removeLocked(k)
	}
}

// Stats returns an activity snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Hits:             m.hits,
		Misses:           m.misses,
		Evictions:        m.evicted,
		Insertions:       m.puts,
		BytesUsed:        m.used,
		BytesLimit:       m.budget,
		Entries:          len(m.entries),
		HotBytes:         m.hotUsed,
		EncodedBytes:     m.encodedUsed,
		Encodes:          m.encodes,
		DecodedBlocks:    m.decodedBlocks.Load(),
		SpillWrites:      m.spillWrites,
		RehydratedBlocks: m.rehydrated,
		SpillCorrupt:     m.corrupt,
	}
}

// Describe lists the resident entries, for the CLI's \caches command.
func (m *Manager) Describe() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		e := m.entries[k]
		fmt.Fprintf(&sb, "%s [%s] n=%d size=%dB hits=%d", e.Dataset, e.Layout, e.N, e.size, e.hits)
		if e.Encoded() {
			fmt.Fprintf(&sb, " tier=encoded blocks=%d", e.Enc.NumBlocks())
		}
		if e.Layout == LayoutColumns && e.Cols != nil {
			cols := make([]string, 0, len(e.Cols))
			for c := range e.Cols {
				col := e.Cols[c]
				cols = append(cols, c+":"+col.Tag.String())
			}
			sort.Strings(cols)
			fmt.Fprintf(&sb, " cols=%v", cols)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (m *Manager) touchLocked(e *Entry) {
	m.tick++
	e.tick = m.tick
}

func (m *Manager) removeLocked(k string) {
	if e, ok := m.entries[k]; ok {
		m.used -= e.size
		if e.Encoded() {
			m.encodedUsed -= e.size
		} else {
			m.hotUsed -= e.size
		}
		delete(m.entries, k)
	}
}

// evictLocked drops least-recently-used entries until under budget.
func (m *Manager) evictLocked() {
	if m.budget <= 0 {
		return
	}
	for m.used > m.budget && len(m.entries) > 0 {
		var oldestKey string
		var oldest *Entry
		for k, e := range m.entries {
			if oldest == nil || e.tick < oldest.tick {
				oldest, oldestKey = e, k
			}
		}
		m.removeLocked(oldestKey)
		m.evicted++
	}
}
