package cache

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vida/internal/values"
	"vida/internal/vec"
)

// Layout enumerates the cache representations of Figure 4 plus the
// columnar re-shaping of §5.
type Layout uint8

// The cache layouts.
const (
	LayoutColumns Layout = iota // typed column vectors (tabular re-shape)
	LayoutRows                  // record values in row order ("C++ object" analogue, Fig 4c)
	LayoutBSON                  // binary JSON documents (Fig 4b)
	LayoutSpans                 // (start,end) byte positions into the raw file (Fig 4d)
)

// String returns the layout name.
func (l Layout) String() string {
	switch l {
	case LayoutColumns:
		return "columns"
	case LayoutRows:
		return "rows"
	case LayoutBSON:
		return "bson"
	case LayoutSpans:
		return "spans"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// Span is a byte range into a raw file.
type Span struct{ Start, End int64 }

// Entry is one cached representation of (part of) a dataset.
type Entry struct {
	Dataset string
	Layout  Layout
	N       int // row/object count

	// Cols holds the columnar layout: one vector per attribute, kept in
	// the typed representation the harvesting scan produced (boxed only
	// for mixed-type or generic columns). Published columns are
	// immutable — scans serve slice windows of them zero-copy.
	Cols  map[string]vec.Col // LayoutColumns
	Rows  []values.Value     // LayoutRows
	Docs  [][]byte           // LayoutBSON
	Spans []Span             // LayoutSpans

	size int64
	tick uint64
	hits int64
}

// SizeBytes returns the entry's estimated memory footprint.
func (e *Entry) SizeBytes() int64 { return e.size }

// Hits returns how many lookups this entry served.
func (e *Entry) Hits() int64 { return e.hits }

// HasColumns reports whether the entry covers all the given fields.
func (e *Entry) HasColumns(fields []string) bool {
	if e.Layout != LayoutColumns {
		return false
	}
	for _, f := range fields {
		if _, ok := e.Cols[f]; !ok {
			return false
		}
	}
	return true
}

// Stats aggregates cache activity for the experiments (E4: cache-hit
// ratio over the 150-query workload).
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Insertions int64
	BytesUsed  int64
	BytesLimit int64
	Entries    int
}

// Manager owns all cache entries under one byte budget.
type Manager struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	tick    uint64
	entries map[string]*Entry
	hits    int64
	misses  int64
	evicted int64
	puts    int64
}

// New creates a Manager with the given byte budget (<=0 means unlimited).
func New(budgetBytes int64) *Manager {
	return &Manager{budget: budgetBytes, entries: map[string]*Entry{}}
}

func key(dataset string, layout Layout) string {
	return dataset + "\x00" + layout.String()
}

// EstimateValueBytes approximates the in-memory footprint of a value; it
// is deliberately cheap rather than exact.
func EstimateValueBytes(v values.Value) int64 {
	const base = 56 // tagged struct overhead
	switch v.Kind() {
	case values.KindNull, values.KindBool, values.KindInt, values.KindFloat:
		return base
	case values.KindString:
		return base + int64(v.Len())
	case values.KindRecord:
		total := int64(base)
		for _, f := range v.Fields() {
			total += int64(len(f.Name)) + EstimateValueBytes(f.Val)
		}
		return total
	default:
		total := int64(base)
		for _, e := range v.Elems() {
			total += EstimateValueBytes(e)
		}
		return total
	}
}

// EstimateColBytes approximates the in-memory footprint of a cached
// column: the physical payload for typed vectors, a per-value deep
// estimate for boxed ones. This is what eviction accounts against, so a
// typed entry charges the budget its true (much smaller) size.
func EstimateColBytes(c *vec.Col) int64 {
	if c.Tag == vec.Boxed {
		var sz int64
		for _, v := range c.Boxed {
			sz += EstimateValueBytes(v)
		}
		return sz + int64(len(c.Nulls))
	}
	return c.SizeBytes()
}

// PutColumnVectors installs (or extends) the columnar entry of a
// dataset with typed column vectors. All columns must hold n rows.
// Existing columns are kept, so the entry accumulates attributes across
// queries — exactly how ViDa's caches grow with the workload. Extension
// is copy-on-write: scans hold Entry pointers outside the manager lock,
// so a published entry is never mutated — a grown replacement entry
// (sharing the column storage) takes its place instead. Ownership of
// the column storage transfers to the cache; callers must not retain
// mutable references.
func (m *Manager) PutColumnVectors(dataset string, n int, cols map[string]vec.Col) error {
	for name, col := range cols {
		if col.Len() != n {
			return fmt.Errorf("cache: column %q has %d values, want %d", name, col.Len(), n)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := key(dataset, LayoutColumns)
	old := m.entries[k]
	if old != nil && old.N != n {
		// Shape changed (file grew): replace wholesale.
		m.removeLocked(k)
		old = nil
	}
	e := &Entry{Dataset: dataset, Layout: LayoutColumns, N: n, Cols: make(map[string]vec.Col, len(cols))}
	if old != nil {
		e.size, e.tick, e.hits = old.size, old.tick, old.hits
		for name, col := range old.Cols {
			e.Cols[name] = col
		}
	} else {
		m.puts++
	}
	for name, col := range cols {
		if _, exists := e.Cols[name]; exists {
			continue
		}
		sz := EstimateColBytes(&col)
		e.Cols[name] = col
		e.size += sz
		m.used += sz
	}
	m.entries[k] = e
	m.touchLocked(e)
	m.evictLocked()
	return nil
}

// PutColumns is the boxed-compatibility form of PutColumnVectors: each
// column is installed under the boxed fallback layout. Row-at-a-time
// harvest paths (record and slot scans) use it; the vectorized harvest
// installs typed vectors directly.
func (m *Manager) PutColumns(dataset string, n int, cols map[string][]values.Value) error {
	vcols := make(map[string]vec.Col, len(cols))
	for name, col := range cols {
		vcols[name] = vec.Col{Tag: vec.Boxed, Boxed: col}
	}
	return m.PutColumnVectors(dataset, n, vcols)
}

// PutRows installs the row-layout entry for a dataset.
func (m *Manager) PutRows(dataset string, rows []values.Value) {
	var sz int64
	for _, r := range rows {
		sz += EstimateValueBytes(r)
	}
	m.put(&Entry{Dataset: dataset, Layout: LayoutRows, N: len(rows), Rows: rows, size: sz})
}

// PutBSON installs the binary-JSON entry for a dataset.
func (m *Manager) PutBSON(dataset string, docs [][]byte) {
	var sz int64
	for _, d := range docs {
		sz += int64(len(d))
	}
	m.put(&Entry{Dataset: dataset, Layout: LayoutBSON, N: len(docs), Docs: docs, size: sz})
}

// PutSpans installs the positional entry for a dataset.
func (m *Manager) PutSpans(dataset string, spans []Span) {
	m.put(&Entry{Dataset: dataset, Layout: LayoutSpans, N: len(spans), Spans: spans, size: int64(len(spans) * 16)})
}

func (m *Manager) put(e *Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := key(e.Dataset, e.Layout)
	m.removeLocked(k)
	m.entries[k] = e
	m.used += e.size
	m.puts++
	m.touchLocked(e)
	m.evictLocked()
}

// Get returns the entry of a dataset in a specific layout.
func (m *Manager) Get(dataset string, layout Layout) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key(dataset, layout)]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	e.hits++
	m.touchLocked(e)
	return e, true
}

// GetColumns returns the columnar entry if it covers all fields.
func (m *Manager) GetColumns(dataset string, fields []string) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key(dataset, LayoutColumns)]
	if !ok || !e.HasColumns(fields) {
		m.misses++
		return nil, false
	}
	m.hits++
	e.hits++
	m.touchLocked(e)
	return e, true
}

// Touch records a served lookup (hit + LRU bump) for an entry that was
// resolved via Peek — the deferred-accounting path range scans use so
// that probing for parallelizability does not double-count hits.
func (m *Manager) Touch(dataset string, layout Layout) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[key(dataset, layout)]; ok {
		m.hits++
		e.hits++
		m.touchLocked(e)
	}
}

// Peek is Get without statistics or LRU effects (used by the optimizer's
// cost model to probe residency without distorting hit rates).
func (m *Manager) Peek(dataset string, layout Layout) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key(dataset, layout)]
	return e, ok
}

// PeekColumns probes columnar coverage without statistics effects.
func (m *Manager) PeekColumns(dataset string, fields []string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key(dataset, LayoutColumns)]
	return ok && e.HasColumns(fields)
}

// Invalidate drops every entry of a dataset (file changed).
func (m *Manager) Invalidate(dataset string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, e := range m.entries {
		if e.Dataset == dataset {
			m.removeLocked(k)
		}
	}
}

// Clear drops everything.
func (m *Manager) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.entries {
		m.removeLocked(k)
	}
}

// Stats returns an activity snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Hits:       m.hits,
		Misses:     m.misses,
		Evictions:  m.evicted,
		Insertions: m.puts,
		BytesUsed:  m.used,
		BytesLimit: m.budget,
		Entries:    len(m.entries),
	}
}

// Describe lists the resident entries, for the CLI's \caches command.
func (m *Manager) Describe() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		e := m.entries[k]
		fmt.Fprintf(&sb, "%s [%s] n=%d size=%dB hits=%d", e.Dataset, e.Layout, e.N, e.size, e.hits)
		if e.Layout == LayoutColumns {
			cols := make([]string, 0, len(e.Cols))
			for c := range e.Cols {
				col := e.Cols[c]
				cols = append(cols, c+":"+col.Tag.String())
			}
			sort.Strings(cols)
			fmt.Fprintf(&sb, " cols=%v", cols)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (m *Manager) touchLocked(e *Entry) {
	m.tick++
	e.tick = m.tick
}

func (m *Manager) removeLocked(k string) {
	if e, ok := m.entries[k]; ok {
		m.used -= e.size
		delete(m.entries, k)
	}
}

// evictLocked drops least-recently-used entries until under budget.
func (m *Manager) evictLocked() {
	if m.budget <= 0 {
		return
	}
	for m.used > m.budget && len(m.entries) > 0 {
		var oldestKey string
		var oldest *Entry
		for k, e := range m.entries {
			if oldest == nil || e.tick < oldest.tick {
				oldest, oldestKey = e, k
			}
		}
		m.removeLocked(oldestKey)
		m.evicted++
	}
}
