package cache

import (
	"fmt"
	"testing"

	"vida/internal/bsonlite"
	"vida/internal/values"
	"vida/internal/vec"
)

func intCol(n int, f func(int) int64) []values.Value {
	out := make([]values.Value, n)
	for i := range out {
		out[i] = values.NewInt(f(i))
	}
	return out
}

func TestColumnsPutGetAndAccumulate(t *testing.T) {
	m := New(0)
	if err := m.PutColumns("p", 3, map[string][]values.Value{
		"id": intCol(3, func(i int) int64 { return int64(i) }),
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.GetColumns("p", []string{"id"}); !ok {
		t.Fatal("columns miss")
	}
	if _, ok := m.GetColumns("p", []string{"id", "age"}); ok {
		t.Fatal("should miss: age not cached")
	}
	// Accumulate a second column; both must now be served.
	if err := m.PutColumns("p", 3, map[string][]values.Value{
		"age": intCol(3, func(i int) int64 { return int64(30 + i) }),
	}); err != nil {
		t.Fatal(err)
	}
	e, ok := m.GetColumns("p", []string{"id", "age"})
	if !ok {
		t.Fatal("accumulated columns miss")
	}
	if len(e.Cols) != 2 {
		t.Fatalf("cols = %d", len(e.Cols))
	}
}

func TestColumnsLengthMismatchRejected(t *testing.T) {
	m := New(0)
	err := m.PutColumns("p", 3, map[string][]values.Value{
		"id": intCol(2, func(i int) int64 { return 0 }),
	})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestColumnsShapeChangeReplaces(t *testing.T) {
	m := New(0)
	_ = m.PutColumns("p", 3, map[string][]values.Value{"id": intCol(3, func(i int) int64 { return 0 })})
	_ = m.PutColumns("p", 5, map[string][]values.Value{"id": intCol(5, func(i int) int64 { return 0 })})
	e, ok := m.GetColumns("p", []string{"id"})
	if !ok || e.N != 5 {
		t.Fatalf("entry after shape change: %+v, %v", e, ok)
	}
}

func TestRowsBSONSpans(t *testing.T) {
	m := New(0)
	rows := []values.Value{
		values.NewRecord(values.Field{Name: "a", Val: values.NewInt(1)}),
	}
	m.PutRows("r", rows)
	if e, ok := m.Get("r", LayoutRows); !ok || e.N != 1 {
		t.Fatal("rows entry missing")
	}
	doc, _ := bsonlite.Marshal(rows[0])
	m.PutBSON("b", [][]byte{doc})
	if e, ok := m.Get("b", LayoutBSON); !ok || e.N != 1 {
		t.Fatal("bson entry missing")
	}
	m.PutSpans("s", []Span{{0, 10}, {10, 25}})
	if e, ok := m.Get("s", LayoutSpans); !ok || e.N != 2 {
		t.Fatal("spans entry missing")
	}
}

func TestInvalidate(t *testing.T) {
	m := New(0)
	_ = m.PutColumns("p", 1, map[string][]values.Value{"id": intCol(1, func(i int) int64 { return 0 })})
	m.PutSpans("p", []Span{{0, 5}})
	m.PutSpans("q", []Span{{0, 5}})
	m.Invalidate("p")
	if _, ok := m.Peek("p", LayoutColumns); ok {
		t.Fatal("columns survived invalidation")
	}
	if _, ok := m.Peek("p", LayoutSpans); ok {
		t.Fatal("spans survived invalidation")
	}
	if _, ok := m.Peek("q", LayoutSpans); !ok {
		t.Fatal("unrelated dataset invalidated")
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	m := New(400)
	m.PutSpans("a", make([]Span, 10)) // 160 bytes
	m.PutSpans("b", make([]Span, 10))
	// Touch "a" so "b" is the LRU victim.
	m.Get("a", LayoutSpans)
	m.PutSpans("c", make([]Span, 10)) // pushes over 400
	if _, ok := m.Peek("b", LayoutSpans); ok {
		t.Fatal("LRU victim b survived")
	}
	if _, ok := m.Peek("a", LayoutSpans); !ok {
		t.Fatal("recently used a evicted")
	}
	if m.Stats().Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

func TestStatsCounting(t *testing.T) {
	m := New(0)
	m.PutSpans("a", []Span{{0, 1}})
	m.Get("a", LayoutSpans)
	m.Get("nope", LayoutSpans)
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesUsed <= 0 {
		t.Fatal("bytes used not tracked")
	}
}

func TestPeekDoesNotDistortStats(t *testing.T) {
	m := New(0)
	m.PutSpans("a", []Span{{0, 1}})
	m.Peek("a", LayoutSpans)
	m.PeekColumns("a", []string{"x"})
	st := m.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peek distorted stats: %+v", st)
	}
}

func TestColumnsSourceIterate(t *testing.T) {
	m := New(0)
	_ = m.PutColumns("p", 3, map[string][]values.Value{
		"id":  intCol(3, func(i int) int64 { return int64(i + 1) }),
		"age": intCol(3, func(i int) int64 { return int64(30 + i) }),
	})
	e, _ := m.GetColumns("p", []string{"id", "age"})
	src := &ColumnsSource{Entry: e, Dataset: "p"}
	var rows []values.Value
	if err := src.Iterate([]string{"age"}, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[2].MustGet("age").Int() != 32 {
		t.Fatalf("rows = %v", rows)
	}
	// Unprojected iteration serves all columns.
	var all []values.Value
	if err := src.Iterate(nil, func(v values.Value) error {
		all = append(all, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if all[0].Len() != 2 {
		t.Fatalf("full row = %v", all[0])
	}
	if err := src.Iterate([]string{"zzz"}, func(values.Value) error { return nil }); err == nil {
		t.Fatal("missing column should error")
	}
}

func TestRowsSourceProjection(t *testing.T) {
	rows := []values.Value{
		values.NewRecord(
			values.Field{Name: "a", Val: values.NewInt(1)},
			values.Field{Name: "b", Val: values.NewString("x")},
		),
	}
	m := New(0)
	m.PutRows("r", rows)
	e, _ := m.Get("r", LayoutRows)
	src := &RowsSource{Entry: e, Dataset: "r"}
	var out []values.Value
	if err := src.Iterate([]string{"b"}, func(v values.Value) error {
		out = append(out, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if out[0].Len() != 1 || out[0].MustGet("b").Str() != "x" {
		t.Fatalf("projected = %v", out[0])
	}
}

func TestBSONSourceFieldDecode(t *testing.T) {
	v := values.NewRecord(
		values.Field{Name: "big", Val: values.NewString(string(make([]byte, 1000)))},
		values.Field{Name: "id", Val: values.NewInt(9)},
	)
	doc, err := bsonlite.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	m := New(0)
	m.PutBSON("d", [][]byte{doc})
	e, _ := m.Get("d", LayoutBSON)
	src := &BSONSource{Entry: e, Dataset: "d"}
	var out []values.Value
	if err := src.Iterate([]string{"id"}, func(v values.Value) error {
		out = append(out, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if out[0].MustGet("id").Int() != 9 {
		t.Fatalf("bson projection = %v", out[0])
	}
	// Full decode path.
	var full []values.Value
	if err := src.Iterate(nil, func(v values.Value) error {
		full = append(full, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if full[0].Len() != 2 {
		t.Fatalf("full bson decode = %v", full[0])
	}
}

func TestDescribe(t *testing.T) {
	m := New(0)
	_ = m.PutColumns("p", 1, map[string][]values.Value{"id": intCol(1, func(i int) int64 { return 0 })})
	m.PutSpans("q", []Span{{0, 5}})
	s := m.Describe()
	for _, want := range []string{"p [columns]", "q [spans]", "cols=[id:boxed]"} {
		if !contains(s, want) {
			t.Fatalf("Describe missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || fmt.Sprintf("%s", s) != "" && stringsContains(s, sub))
}

func stringsContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestEstimateValueBytes(t *testing.T) {
	small := EstimateValueBytes(values.NewInt(1))
	big := EstimateValueBytes(values.NewString(string(make([]byte, 10_000))))
	if big <= small {
		t.Fatal("size estimate ignores payload")
	}
	nested := EstimateValueBytes(values.NewRecord(
		values.Field{Name: "xs", Val: values.NewList(values.NewInt(1), values.NewInt(2))},
	))
	if nested <= small {
		t.Fatal("nested estimate too small")
	}
}

func TestColumnsSourceBatches(t *testing.T) {
	m := New(0)
	n := 37
	cols := map[string][]values.Value{"a": nil, "b": nil}
	for i := 0; i < n; i++ {
		cols["a"] = append(cols["a"], values.NewInt(int64(i)))
		cols["b"] = append(cols["b"], values.NewString("x"))
	}
	if err := m.PutColumns("D", n, cols); err != nil {
		t.Fatal(err)
	}
	e, ok := m.GetColumns("D", []string{"a", "b"})
	if !ok {
		t.Fatal("miss")
	}
	src := &ColumnsSource{Entry: e, Dataset: "D"}
	var got []int64
	batches := 0
	err := src.IterateBatches([]string{"a", "b"}, 16, func(b *vec.Batch) error {
		batches++
		if !b.Stable {
			t.Fatal("cache batches must be marked stable")
		}
		for k := 0; k < b.Len(); k++ {
			got = append(got, b.Cols[0].Value(b.Index(k)).Int())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n || batches != 3 {
		t.Fatalf("rows=%d batches=%d", len(got), batches)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
	scan, total, ok := src.OpenRange([]string{"a"})
	if !ok || total != n {
		t.Fatalf("OpenRange ok=%v n=%d", ok, total)
	}
	var ranged []int64
	if err := scan(10, 20, 4, func(b *vec.Batch) error {
		for k := 0; k < b.Len(); k++ {
			ranged = append(ranged, b.Cols[0].Value(b.Index(k)).Int())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ranged) != 10 || ranged[0] != 10 || ranged[9] != 19 {
		t.Fatalf("ranged = %v", ranged)
	}
}

func TestManagerTouch(t *testing.T) {
	m := New(0)
	if err := m.PutColumns("D", 1, map[string][]values.Value{"a": {values.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	before := m.Stats().Hits
	m.Touch("D", LayoutColumns)
	if got := m.Stats().Hits; got != before+1 {
		t.Fatalf("hits = %d, want %d", got, before+1)
	}
}
