package cache

import (
	"testing"

	"vida/internal/values"
	"vida/internal/vec"
)

func typedCols(n int) map[string]vec.Col {
	ints := make([]int64, n)
	strs := make([]string, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(i)
		strs[i] = "row"
	}
	return map[string]vec.Col{
		"id":   {Tag: vec.Int64, Ints: ints},
		"name": {Tag: vec.Str, Strs: strs},
	}
}

// TestTypedColumnsServedZeroCopy checks batch scans over a typed entry
// keep the typed representation and alias the cached storage (no copy,
// no boxing).
func TestTypedColumnsServedZeroCopy(t *testing.T) {
	m := New(0)
	cols := typedCols(40)
	if err := m.PutColumnVectors("D", 40, cols); err != nil {
		t.Fatal(err)
	}
	e, ok := m.GetColumns("D", []string{"id", "name"})
	if !ok {
		t.Fatal("miss")
	}
	src := &ColumnsSource{Entry: e, Dataset: "D"}
	rows := 0
	err := src.IterateBatches([]string{"id", "name"}, 16, func(b *vec.Batch) error {
		if !b.Stable {
			t.Fatal("cache batches must be stable")
		}
		if b.Cols[0].Tag != vec.Int64 || b.Cols[1].Tag != vec.Str {
			t.Fatalf("tags = %v/%v, want typed", b.Cols[0].Tag, b.Cols[1].Tag)
		}
		if &b.Cols[0].Ints[0] != &cols["id"].Ints[rows] {
			t.Fatal("batch must alias cached storage (zero-copy)")
		}
		rows += b.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 40 {
		t.Fatalf("rows = %d", rows)
	}
	// Row-oriented access boxes on demand.
	var first values.Value
	if err := src.Iterate([]string{"id"}, func(v values.Value) error {
		if first.IsNull() {
			first = v
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first.MustGet("id").Int() != 0 {
		t.Fatalf("boxed row = %v", first)
	}
}

// TestTypedEvictionAccounting checks eviction sizes typed entries by
// their physical payload, not the boxed estimate.
func TestTypedEvictionAccounting(t *testing.T) {
	m := New(0)
	n := 100
	if err := m.PutColumnVectors("typed", n, map[string]vec.Col{
		"id": {Tag: vec.Int64, Ints: make([]int64, n)},
	}); err != nil {
		t.Fatal(err)
	}
	boxed := make([]values.Value, n)
	for i := range boxed {
		boxed[i] = values.NewInt(0)
	}
	if err := m.PutColumns("boxed", n, map[string][]values.Value{"id": boxed}); err != nil {
		t.Fatal(err)
	}
	te, _ := m.Peek("typed", LayoutColumns)
	be, _ := m.Peek("boxed", LayoutColumns)
	if te.SizeBytes() != int64(n*8) {
		t.Fatalf("typed size = %d, want %d", te.SizeBytes(), n*8)
	}
	if be.SizeBytes() <= te.SizeBytes()*5 {
		t.Fatalf("boxed size %d should dwarf typed %d", be.SizeBytes(), te.SizeBytes())
	}
	if used := m.Stats().BytesUsed; used != te.SizeBytes()+be.SizeBytes() {
		t.Fatalf("BytesUsed = %d, want %d", used, te.SizeBytes()+be.SizeBytes())
	}

	// A budget that holds the typed entry but not both evicts LRU-wise
	// using the typed sizes.
	m2 := New(te.SizeBytes() + 100)
	if err := m2.PutColumnVectors("a", n, map[string]vec.Col{
		"id": {Tag: vec.Int64, Ints: make([]int64, n)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Peek("a", LayoutColumns); !ok {
		t.Fatal("typed entry should fit its budget")
	}
	if err := m2.PutColumnVectors("b", n, map[string]vec.Col{
		"id": {Tag: vec.Int64, Ints: make([]int64, n)},
	}); err != nil {
		t.Fatal(err)
	}
	st := m2.Stats()
	if st.Evictions == 0 || st.BytesUsed > te.SizeBytes()+100 {
		t.Fatalf("eviction accounting off: %+v", st)
	}
}

// TestTypedEntryExtensionKeepsStorage checks copy-on-write extension
// shares the already-cached typed columns and only charges the new one.
func TestTypedEntryExtensionKeepsStorage(t *testing.T) {
	m := New(0)
	n := 10
	ids := make([]int64, n)
	if err := m.PutColumnVectors("D", n, map[string]vec.Col{"id": {Tag: vec.Int64, Ints: ids}}); err != nil {
		t.Fatal(err)
	}
	e1, _ := m.Peek("D", LayoutColumns)
	if err := m.PutColumnVectors("D", n, map[string]vec.Col{
		"age": {Tag: vec.Int64, Ints: make([]int64, n)},
	}); err != nil {
		t.Fatal(err)
	}
	e2, _ := m.Peek("D", LayoutColumns)
	if e1 == e2 {
		t.Fatal("extension must publish a new entry (copy-on-write)")
	}
	if len(e2.Cols) != 2 {
		t.Fatalf("cols = %d", len(e2.Cols))
	}
	idCol := e2.Cols["id"]
	if &idCol.Ints[0] != &ids[0] {
		t.Fatal("extension must share existing column storage")
	}
	if e2.SizeBytes() != int64(2*n*8) {
		t.Fatalf("size = %d", e2.SizeBytes())
	}
}

// TestNullMaskRoundTrip checks masked typed columns serve nulls through
// both the batch and boxed access paths.
func TestNullMaskRoundTrip(t *testing.T) {
	m := New(0)
	col := vec.Col{Tag: vec.Int64, Ints: []int64{1, 0, 3}, Nulls: []bool{false, true, false}}
	if err := m.PutColumnVectors("D", 3, map[string]vec.Col{"v": col}); err != nil {
		t.Fatal(err)
	}
	e, _ := m.GetColumns("D", []string{"v"})
	src := &ColumnsSource{Entry: e, Dataset: "D"}
	var got []values.Value
	if err := src.IterateBatches([]string{"v"}, 2, func(b *vec.Batch) error {
		for k := 0; k < b.Len(); k++ {
			got = append(got, b.Cols[0].Value(b.Index(k)))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !got[1].IsNull() || got[2].Int() != 3 {
		t.Fatalf("got = %v", got)
	}
}
