package cache

import (
	"fmt"
	"hash/fnv"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"vida/internal/colenc"
)

// This file connects the cache's encoded tier to the spill directory:
// columnar entries are persisted as generation-keyed spill files at
// harvest time, a restarting engine rehydrates them back into the
// encoded tier (the first post-restart query then decodes blocks
// instead of re-scanning the raw file), and anything unreadable is
// quarantined as <file>.bad rather than trusted or crashed on.

// spillPrefix returns the filename prefix of a dataset's spill files:
// a hash keeps arbitrary dataset names filesystem-safe, the generation
// suffix varies with the raw file's content.
func spillPrefix(dataset string) string {
	h := fnv.New64a()
	h.Write([]byte(dataset))
	return fmt.Sprintf("c-%016x-", h.Sum64())
}

func (m *Manager) spillPath(dataset, generation string) string {
	return filepath.Join(m.cfg.SpillDir, spillPrefix(dataset)+generation+".vspill")
}

// spillLocked persists a hot or encoded columnar entry to the spill
// directory. Failures only cost the warm restart, so they log and move
// on; the entry stays served from memory either way.
func (m *Manager) spillLocked(e *Entry) {
	if m.cfg.SpillDir == "" {
		return
	}
	gen, ok := m.spillKeys[e.Dataset]
	if !ok || gen == nil {
		return
	}
	tab := e.Enc
	if tab == nil {
		t, err := colenc.EncodeColumns(e.Cols, e.N)
		if err != nil {
			slog.Warn("cache: encoding for spill failed", "dataset", e.Dataset, "err", err)
			return
		}
		tab = t
		m.encodes++
	}
	generation := gen()
	path := m.spillPath(e.Dataset, generation)
	if err := os.MkdirAll(m.cfg.SpillDir, 0o755); err != nil {
		slog.Warn("cache: creating spill dir failed", "dir", m.cfg.SpillDir, "err", err)
		return
	}
	meta := colenc.SpillMeta{Dataset: e.Dataset, Generation: generation}
	if err := colenc.WriteSpillFile(path, meta, tab); err != nil {
		slog.Warn("cache: spill write failed", "dataset", e.Dataset, "path", path, "err", err)
		return
	}
	m.spillWrites++
}

// removeSpillFilesLocked deletes every spill file of a dataset (its
// generation changed or the source was invalidated).
func (m *Manager) removeSpillFilesLocked(dataset string) {
	if m.cfg.SpillDir == "" {
		return
	}
	matches, err := filepath.Glob(filepath.Join(m.cfg.SpillDir, spillPrefix(dataset)+"*.vspill"))
	if err != nil {
		return
	}
	for _, p := range matches {
		os.Remove(p)
	}
}

// quarantineLocked renames an unreadable spill file out of the way so
// rehydration never retries (or trusts) it.
func (m *Manager) quarantineLocked(path string, err error) {
	m.corrupt++
	bad := path + ".bad"
	if rerr := os.Rename(path, bad); rerr != nil {
		slog.Warn("cache: quarantining corrupt spill file failed", "path", path, "read_err", err, "rename_err", rerr)
		return
	}
	slog.Warn("cache: corrupt spill file quarantined", "path", path, "renamed_to", bad, "err", err)
}

// Rehydrate loads a dataset's spill file into the encoded tier, keyed
// to the given raw-file generation. Stale-generation files are deleted,
// corrupt ones quarantined; neither aborts startup. Returns the number
// of encoded blocks brought back (0 when nothing usable was found).
func (m *Manager) Rehydrate(dataset, generation string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.SpillDir == "" {
		return 0
	}
	matches, err := filepath.Glob(filepath.Join(m.cfg.SpillDir, spillPrefix(dataset)+"*.vspill"))
	if err != nil || len(matches) == 0 {
		return 0
	}
	blocks := 0
	for _, path := range matches {
		if !strings.HasSuffix(path, generation+".vspill") {
			os.Remove(path) // stale generation: the raw file moved on
			continue
		}
		meta, tab, rerr := colenc.ReadSpillFile(path)
		if rerr != nil {
			m.quarantineLocked(path, rerr)
			continue
		}
		if meta.Dataset != dataset || meta.Generation != generation {
			m.quarantineLocked(path, fmt.Errorf("cache: spill header names %q@%q, want %q@%q",
				meta.Dataset, meta.Generation, dataset, generation))
			continue
		}
		k := key(dataset, LayoutColumns)
		m.removeLocked(k)
		e := &Entry{Dataset: dataset, Layout: LayoutColumns, N: tab.N, Enc: tab, size: tab.SizeBytes()}
		m.entries[k] = e
		m.used += e.size
		m.encodedUsed += e.size
		m.touchLocked(e)
		nb := tab.NumBlocks()
		m.rehydrated += int64(nb)
		blocks += nb
		slog.Info("cache: rehydrated spilled entry", "dataset", dataset, "rows", tab.N, "cols", len(tab.Cols), "blocks", nb, "bytes", e.size)
	}
	m.evictLocked()
	return blocks
}

// noteDecodedBlocks tallies on-demand block decodes from scans (called
// without the manager lock).
func (m *Manager) noteDecodedBlocks(n int64) {
	if m == nil {
		return
	}
	m.decodedBlocks.Add(n)
}
