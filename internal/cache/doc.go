// Package cache implements ViDa's data caches: previously-accessed raw
// data kept in memory under query-appropriate layouts (paper §2.1 "ViDa
// also maintains caches of previously accessed data", §5 "Re-using and
// re-shaping results"). The same dataset may be cached simultaneously in
// several layouts — typed columns for analytical scans, parsed objects
// for hierarchical access, binary JSON for RESTful result serving, and
// bare byte spans that defer object assembly to projection time
// (Figure 4).
//
// # Entry layouts
//
// Each (dataset, layout) pair owns at most one Entry:
//
//   - LayoutColumns — one vec.Col per attribute. Columns stay in the
//     typed representation the harvesting scan produced (int64/float64/
//     string payload slices with optional validity masks); attributes
//     whose rows mix types, or that arrive from row-at-a-time access
//     paths, fall back to boxed []values.Value payloads. Warm scans are
//     served as slice windows of these vectors — zero copies, marked
//     vec.Batch.Stable so consumers may retain them header-only.
//   - LayoutRows — record values in row order (the "C++ object"
//     analogue, Fig 4c), for whole-record access without a schema.
//   - LayoutBSON — binary JSON documents (Fig 4b): field projection
//     decodes only the requested attributes.
//   - LayoutSpans — (start, end) byte positions into the raw file
//     (Fig 4d), deferring all parsing to access time.
//
// Columnar entries grow with the workload: a later scan touching new
// attributes extends the entry copy-on-write (published entries are
// never mutated — readers hold Entry pointers outside the manager
// lock), sharing the already-cached column storage.
//
// # Eviction policy
//
// The Manager owns every entry under one byte budget. Entry sizes are
// estimated per column from the physical layout — 8 bytes per int64/
// float64 row, string header plus payload per string row, a deep
// estimated walk for boxed values, one byte per validity-mask row — so
// typed entries charge the budget roughly 7-14x less than their boxed
// equivalents and the same budget holds proportionally more data.
// Eviction is strict LRU over entries (not columns): every Get/Touch
// bumps the entry's logical tick and the lowest tick is dropped until
// the budget holds. File changes invalidate all of a dataset's entries
// wholesale.
//
// # Encoded tier
//
// Columnar entries live in two tiers. The hot tier holds decoded
// vec.Col vectors served as zero-copy windows. When Config.HotBytes is
// set and hot usage exceeds it, least-recently-used columnar entries
// are re-encoded in place as colenc block tables (dictionary-coded
// strings, delta/zig-zag varint ints, checksummed 4096-row blocks) —
// typically 5x+ smaller than the flat vectors they replace, so the same
// budget holds proportionally more data at the price of per-batch
// decode on access. ColumnsSource decodes one block at a time into
// reused buffers (batches are not Stable); low-cardinality string
// columns decode to dictionary-coded windows the JIT filter kernels
// compare as integer codes. Tier membership is part of the accounting:
// Stats splits BytesUsed into HotBytes and EncodedBytes, and the
// encode/decode traffic is counted.
//
// # Disk spill and rehydration
//
// With Config.SpillDir set, every columnar put also writes the encoded
// table to a spill file named by the dataset and a caller-provided
// generation key (a content hash — see SetSpillKey), so a process
// restart can Rehydrate the entry from disk instead of re-scanning the
// raw source. Files from stale generations are deleted; truncated or
// checksum-failing files are quarantined (renamed *.bad) and counted,
// never served. Invalidate removes a dataset's spill files along with
// its entries.
package cache
