package cache

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vida/internal/colenc"
	"vida/internal/values"
	"vida/internal/vec"
)

// tierCols builds a typed columnar payload representative of the demo
// data: a sequential int column and a low-cardinality string column.
func tierCols(n int, salt int64) map[string]vec.Col {
	conds := []string{"healthy", "mild", "severe", "chronic", "acute"}
	ic := vec.Col{Tag: vec.Int64}
	sc := vec.Col{Tag: vec.Str}
	for i := 0; i < n; i++ {
		ic.AppendInt(int64(i) + salt)
		sc.AppendStr(conds[i%len(conds)])
	}
	return map[string]vec.Col{"id": ic, "cond": sc}
}

func TestHotTierTransitionToEncoded(t *testing.T) {
	m := NewWithConfig(Config{HotBytes: 1}) // everything past the first put must encode
	n := 10_000
	if err := m.PutColumnVectors("D", n, tierCols(n, 0)); err != nil {
		t.Fatal(err)
	}
	e, ok := m.GetColumns("D", []string{"id", "cond"})
	if !ok {
		t.Fatal("columns miss after encode")
	}
	if !e.Encoded() || e.Cols != nil {
		t.Fatalf("entry not in encoded tier: enc=%v cols=%v", e.Encoded(), e.Cols != nil)
	}
	st := m.Stats()
	if st.Encodes != 1 || st.HotBytes != 0 || st.EncodedBytes != e.SizeBytes() || st.BytesUsed != e.SizeBytes() {
		t.Fatalf("tier stats = %+v (entry size %d)", st, e.SizeBytes())
	}

	// Decode-on-demand serves identical rows, as StrDict windows for the
	// dictionary column, and tallies decoded blocks.
	src := &ColumnsSource{Entry: e, Dataset: "D", Mgr: m}
	rows := 0
	sawDict := false
	err := src.IterateBatches([]string{"id", "cond"}, 512, func(b *vec.Batch) error {
		if b.Cols[1].Tag == vec.StrDict {
			sawDict = true
		}
		for k := 0; k < b.Len(); k++ {
			i := b.Index(k)
			if got := b.Cols[0].Value(i).Int(); got != int64(rows+k) {
				t.Fatalf("row %d: id = %d", rows+k, got)
			}
			want := []string{"healthy", "mild", "severe", "chronic", "acute"}[(rows+k)%5]
			if got := b.Cols[1].StrAt(i); got != want {
				t.Fatalf("row %d: cond = %q want %q", rows+k, got, want)
			}
		}
		rows += b.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("rows = %d, want %d", rows, n)
	}
	if !sawDict {
		t.Fatal("dictionary column did not decode to StrDict")
	}
	if m.Stats().DecodedBlocks == 0 {
		t.Fatal("decoded blocks not counted")
	}

	// Merging new columns into an encoded entry decodes, merges, and
	// re-encodes without losing data.
	extra := vec.Col{Tag: vec.Float64}
	for i := 0; i < n; i++ {
		extra.AppendFloat(float64(i) * 0.5)
	}
	if err := m.PutColumnVectors("D", n, map[string]vec.Col{"score": extra}); err != nil {
		t.Fatal(err)
	}
	e2, ok := m.GetColumns("D", []string{"id", "cond", "score"})
	if !ok {
		t.Fatal("merged columns miss")
	}
	if !e2.Encoded() {
		t.Fatal("merged entry fell out of the encoded tier despite HotBytes=1")
	}
}

// TestTrackedBytesNoDriftUnderChurn asserts the manager's accounting
// invariant across randomized put/touch/evict/encode churn over both
// tiers: tracked bytes always equal the sum of live entry sizes, split
// exactly into the hot and encoded tiers.
func TestTrackedBytesNoDriftUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewWithConfig(Config{BudgetBytes: 600_000, HotBytes: 150_000})
	datasets := []string{"A", "B", "C", "D", "E"}
	check := func(step int) {
		t.Helper()
		m.mu.Lock()
		defer m.mu.Unlock()
		var total, hot, enc int64
		for _, e := range m.entries {
			total += e.size
			if e.Encoded() {
				enc += e.size
			} else {
				hot += e.size
			}
		}
		if m.used != total || m.hotUsed != hot || m.encodedUsed != enc {
			t.Fatalf("step %d: tracked used=%d hot=%d enc=%d, live sums used=%d hot=%d enc=%d",
				step, m.used, m.hotUsed, m.encodedUsed, total, hot, enc)
		}
	}
	for step := 0; step < 400; step++ {
		ds := datasets[rng.Intn(len(datasets))]
		switch rng.Intn(5) {
		case 0, 1: // grow/replace columnar entry (can trigger encode + evict)
			n := 500 + rng.Intn(3000)
			if err := m.PutColumnVectors(ds, n, tierCols(n, int64(step))); err != nil {
				t.Fatal(err)
			}
		case 2: // row-layout put
			m.PutRows(ds, []values.Value{values.NewInt(int64(step))})
		case 3: // LRU touch
			m.GetColumns(ds, []string{"id"})
		case 4: // invalidate
			m.Invalidate(ds)
		}
		check(step)
	}
	// Drain everything: all gauges must return to zero.
	m.Clear()
	st := m.Stats()
	if st.BytesUsed != 0 || st.HotBytes != 0 || st.EncodedBytes != 0 {
		t.Fatalf("nonzero gauges after Clear: %+v", st)
	}
}

// TestEncodedTierCapacity is the acceptance criterion on representative
// demo data: under the same byte budget the encoded tier must fit at
// least 5x more rows than the flat vectors the eviction accounting
// (EstimateColBytes) would charge for them.
func TestEncodedTierCapacity(t *testing.T) {
	n := 100_000
	cols := tierCols(n, 0)
	var flat int64
	for name := range cols {
		c := cols[name]
		flat += EstimateColBytes(&c)
	}
	tab, err := colenc.EncodeColumns(cols, n)
	if err != nil {
		t.Fatal(err)
	}
	if enc := tab.SizeBytes(); enc*5 > flat {
		t.Fatalf("encoded %dB vs flat %dB: less than 5x densier", enc, flat)
	}
}

func TestSpillAndRehydrate(t *testing.T) {
	dir := t.TempDir()
	gen := func() string { return "g1" }
	n := 9000

	m1 := NewWithConfig(Config{SpillDir: dir})
	m1.SetSpillKey("D", gen)
	if err := m1.PutColumnVectors("D", n, tierCols(n, 0)); err != nil {
		t.Fatal(err)
	}
	if st := m1.Stats(); st.SpillWrites != 1 {
		t.Fatalf("spill writes = %d", st.SpillWrites)
	}

	// A fresh manager (restarted process) rehydrates the encoded entry.
	m2 := NewWithConfig(Config{SpillDir: dir})
	blocks := m2.Rehydrate("D", "g1")
	if blocks == 0 {
		t.Fatal("nothing rehydrated")
	}
	if st := m2.Stats(); st.RehydratedBlocks != int64(blocks) {
		t.Fatalf("rehydrated counter = %d, want %d", st.RehydratedBlocks, blocks)
	}
	e, ok := m2.GetColumns("D", []string{"id", "cond"})
	if !ok || !e.Encoded() || e.N != n {
		t.Fatalf("rehydrated entry: ok=%v enc=%v n=%d", ok, e.Encoded(), e.N)
	}
	src := &ColumnsSource{Entry: e, Dataset: "D", Mgr: m2}
	rows := 0
	if err := src.Iterate([]string{"id"}, func(v values.Value) error {
		if got := v.MustGet("id").Int(); got != int64(rows) {
			t.Fatalf("row %d: id = %d", rows, got)
		}
		rows++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("rows = %d", rows)
	}

	// A stale generation is deleted, never served.
	m3 := NewWithConfig(Config{SpillDir: dir})
	if got := m3.Rehydrate("D", "g2"); got != 0 {
		t.Fatalf("stale generation rehydrated %d blocks", got)
	}
	if _, ok := m3.Peek("D", LayoutColumns); ok {
		t.Fatal("stale entry installed")
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*.vspill"))
	if len(left) != 0 {
		t.Fatalf("stale spill files survived: %v", left)
	}
}

// TestRehydrateQuarantinesCorruptSpills is the robustness satellite:
// truncated or bit-flipped spill files must be quarantined (renamed
// .bad), counted, and logged — never crash rehydration or install data.
func TestRehydrateQuarantinesCorruptSpills(t *testing.T) {
	n := 5000
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/3] }},
		{"bad magic", func(b []byte) []byte { b = append([]byte(nil), b...); b[0] ^= 0xff; return b }},
		{"flipped header bit", func(b []byte) []byte { b = append([]byte(nil), b...); b[12] ^= 0x01; return b }},
		{"flipped body bit", func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)-2] ^= 0x20; return b }},
		{"empty", func(b []byte) []byte { return nil }},
		{"wrong header identity", nil}, // valid file, wrong dataset inside
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			m1 := NewWithConfig(Config{SpillDir: dir})
			m1.SetSpillKey("D", func() string { return "g1" })
			if err := m1.PutColumnVectors("D", n, tierCols(n, 0)); err != nil {
				t.Fatal(err)
			}
			path := m1.spillPath("D", "g1")
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if tc.mutate != nil {
				if err := os.WriteFile(path, tc.mutate(good), 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				// Re-key a valid file for another dataset under D's name:
				// the header identity check must reject it.
				other := NewWithConfig(Config{SpillDir: t.TempDir()})
				other.SetSpillKey("X", func() string { return "g1" })
				if err := other.PutColumnVectors("X", n, tierCols(n, 1)); err != nil {
					t.Fatal(err)
				}
				raw, err := os.ReadFile(other.spillPath("X", "g1"))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			m2 := NewWithConfig(Config{SpillDir: dir})
			if got := m2.Rehydrate("D", "g1"); got != 0 {
				t.Fatalf("corrupt spill rehydrated %d blocks", got)
			}
			if _, ok := m2.Peek("D", LayoutColumns); ok {
				t.Fatal("corrupt spill installed an entry")
			}
			if st := m2.Stats(); st.SpillCorrupt != 1 {
				t.Fatalf("SpillCorrupt = %d", st.SpillCorrupt)
			}
			bad, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
			if len(bad) != 1 || !strings.HasSuffix(bad[0], ".vspill.bad") {
				t.Fatalf("quarantine files = %v", bad)
			}
			if left, _ := filepath.Glob(filepath.Join(dir, "*.vspill")); len(left) != 0 {
				t.Fatalf("corrupt spill left in place: %v", left)
			}
		})
	}
}
