package cache

import (
	"fmt"

	"vida/internal/bsonlite"
	"vida/internal/values"
	"vida/internal/vec"
)

// ColumnsSource adapts a columnar cache entry to algebra.Source: batch
// scans serve slice windows of the typed column vectors zero-copy (the
// cheapest access path in the engine), and the row-oriented contracts
// box rows on demand for the fallback executors.
type ColumnsSource struct {
	Entry   *Entry
	Dataset string
}

// Name implements algebra.Source.
func (s *ColumnsSource) Name() string { return s.Dataset }

// Iterate implements algebra.Source.
func (s *ColumnsSource) Iterate(fields []string, yield func(values.Value) error) error {
	cols, fields, err := s.resolveCols(fields)
	if err != nil {
		return err
	}
	for row := 0; row < s.Entry.N; row++ {
		rec := make([]values.Field, len(fields))
		for i, f := range fields {
			rec[i] = values.Field{Name: f, Val: cols[i].Value(row)}
		}
		if err := yield(values.NewRecord(rec...)); err != nil {
			return err
		}
	}
	return nil
}

// IterateSlots is the specialized row access path for the JIT executor:
// slot rows are boxed straight from the column vectors.
func (s *ColumnsSource) IterateSlots(fields []string, yield func([]values.Value) error) error {
	cols, fields, err := s.resolveCols(fields)
	if err != nil {
		return err
	}
	buf := make([]values.Value, len(fields))
	for row := 0; row < s.Entry.N; row++ {
		for i := range cols {
			buf[i] = cols[i].Value(row)
		}
		if err := yield(buf); err != nil {
			return err
		}
	}
	return nil
}

// resolveCols maps requested fields (all cached fields when empty, in
// sorted order) to the entry's column vectors.
func (s *ColumnsSource) resolveCols(fields []string) ([]vec.Col, []string, error) {
	e := s.Entry
	if len(fields) == 0 {
		for f := range e.Cols {
			fields = append(fields, f)
		}
		sortStrings(fields)
	}
	cols := make([]vec.Col, len(fields))
	for i, f := range fields {
		col, ok := e.Cols[f]
		if !ok {
			return nil, nil, fmt.Errorf("cache: column %q not resident for %s", f, s.Dataset)
		}
		cols[i] = col
	}
	return cols, fields, nil
}

// IterateBatches implements the JIT's BatchSource contract: batches are
// slice windows into the cached typed vectors — zero copies, no boxing.
// Consumers must treat column storage as immutable (they do: filters
// refine the selection vector instead of compacting).
func (s *ColumnsSource) IterateBatches(fields []string, batchSize int, yield func(*vec.Batch) error) error {
	cols, _, err := s.resolveCols(fields)
	if err != nil {
		return err
	}
	return s.rangeScan(cols)(0, s.Entry.N, batchSize, yield)
}

// OpenRange implements the JIT's RangeBatchSource contract. Columnar
// entries can always serve arbitrary row ranges.
func (s *ColumnsSource) OpenRange(fields []string) (func(lo, hi, batchSize int, yield func(*vec.Batch) error) error, int, bool) {
	cols, _, err := s.resolveCols(fields)
	if err != nil {
		return nil, 0, false
	}
	return s.rangeScan(cols), s.Entry.N, true
}

func (s *ColumnsSource) rangeScan(cols []vec.Col) func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
	return func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
		if batchSize <= 0 {
			batchSize = vec.DefaultBatchSize
		}
		b := &vec.Batch{Cols: make([]vec.Col, len(cols)), Stable: true}
		for o := lo; o < hi; o += batchSize {
			end := o + batchSize
			if end > hi {
				end = hi
			}
			for i := range cols {
				b.Cols[i] = cols[i].Slice(o, end)
			}
			b.N = end - o
			b.Sel = nil
			if err := yield(b); err != nil {
				return err
			}
		}
		return nil
	}
}

// RowsSource adapts a row-layout entry to algebra.Source.
type RowsSource struct {
	Entry   *Entry
	Dataset string
}

// Name implements algebra.Source.
func (s *RowsSource) Name() string { return s.Dataset }

// Iterate implements algebra.Source.
func (s *RowsSource) Iterate(fields []string, yield func(values.Value) error) error {
	for _, r := range s.Entry.Rows {
		if len(fields) > 0 {
			rec := make([]values.Field, len(fields))
			for i, f := range fields {
				v, _ := r.Get(f)
				rec[i] = values.Field{Name: f, Val: v}
			}
			r = values.NewRecord(rec...)
		}
		if err := yield(r); err != nil {
			return err
		}
	}
	return nil
}

// BSONSource adapts a binary-JSON entry to algebra.Source, decoding only
// the projected fields of each document.
type BSONSource struct {
	Entry   *Entry
	Dataset string
}

// Name implements algebra.Source.
func (s *BSONSource) Name() string { return s.Dataset }

// Iterate implements algebra.Source.
func (s *BSONSource) Iterate(fields []string, yield func(values.Value) error) error {
	for _, doc := range s.Entry.Docs {
		var rec values.Value
		if len(fields) == 0 {
			v, err := bsonlite.Unmarshal(doc)
			if err != nil {
				return err
			}
			rec = v
		} else {
			fs := make([]values.Field, len(fields))
			for i, f := range fields {
				v, _, err := bsonlite.GetField(doc, f)
				if err != nil {
					return err
				}
				fs[i] = values.Field{Name: f, Val: v}
			}
			rec = values.NewRecord(fs...)
		}
		if err := yield(rec); err != nil {
			return err
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
