package cache

import (
	"fmt"

	"vida/internal/bsonlite"
	"vida/internal/colenc"
	"vida/internal/values"
	"vida/internal/vec"
)

// MemReserver is the slice of the engine's memory governor the decode
// path needs: encoded scans reserve their decode scratch against the
// budget for the duration of the scan.
type MemReserver interface {
	Reserve(n int64) error
	Release(n int64)
}

// ColumnsSource adapts a columnar cache entry to algebra.Source: batch
// scans serve slice windows of the typed column vectors zero-copy (the
// cheapest access path in the engine), and the row-oriented contracts
// box rows on demand for the fallback executors. Encoded-tier entries
// decode per block on demand instead: dictionary string columns come
// back as vec.StrDict windows, which the JIT filters on codes.
type ColumnsSource struct {
	Entry   *Entry
	Dataset string
	// Mgr, when set, tallies decoded blocks into the manager's counters.
	Mgr *Manager
	// Mem, when set, charges decode scratch to the memory governor.
	Mem MemReserver
}

// Name implements algebra.Source.
func (s *ColumnsSource) Name() string { return s.Dataset }

// Iterate implements algebra.Source.
func (s *ColumnsSource) Iterate(fields []string, yield func(values.Value) error) error {
	if s.Entry.Enc != nil {
		fields = s.fieldList(fields)
		return s.IterateBatches(fields, vec.DefaultBatchSize, func(b *vec.Batch) error {
			for row := 0; row < b.N; row++ {
				rec := make([]values.Field, len(fields))
				for i, f := range fields {
					rec[i] = values.Field{Name: f, Val: b.Cols[i].Value(row)}
				}
				if err := yield(values.NewRecord(rec...)); err != nil {
					return err
				}
			}
			return nil
		})
	}
	cols, fields, err := s.resolveCols(fields)
	if err != nil {
		return err
	}
	for row := 0; row < s.Entry.N; row++ {
		rec := make([]values.Field, len(fields))
		for i, f := range fields {
			rec[i] = values.Field{Name: f, Val: cols[i].Value(row)}
		}
		if err := yield(values.NewRecord(rec...)); err != nil {
			return err
		}
	}
	return nil
}

// IterateSlots is the specialized row access path for the JIT executor:
// slot rows are boxed straight from the column vectors.
func (s *ColumnsSource) IterateSlots(fields []string, yield func([]values.Value) error) error {
	if s.Entry.Enc != nil {
		buf := make([]values.Value, len(fields))
		return s.IterateBatches(fields, vec.DefaultBatchSize, func(b *vec.Batch) error {
			for row := 0; row < b.N; row++ {
				for i := range b.Cols {
					buf[i] = b.Cols[i].Value(row)
				}
				if err := yield(buf); err != nil {
					return err
				}
			}
			return nil
		})
	}
	cols, fields, err := s.resolveCols(fields)
	if err != nil {
		return err
	}
	buf := make([]values.Value, len(fields))
	for row := 0; row < s.Entry.N; row++ {
		for i := range cols {
			buf[i] = cols[i].Value(row)
		}
		if err := yield(buf); err != nil {
			return err
		}
	}
	return nil
}

// fieldList defaults empty field requests to every resident column, in
// sorted order.
func (s *ColumnsSource) fieldList(fields []string) []string {
	if len(fields) > 0 {
		return fields
	}
	if s.Entry.Enc != nil {
		for f := range s.Entry.Enc.Cols {
			fields = append(fields, f)
		}
	} else {
		for f := range s.Entry.Cols {
			fields = append(fields, f)
		}
	}
	sortStrings(fields)
	return fields
}

// resolveCols maps requested fields (all cached fields when empty, in
// sorted order) to the entry's column vectors.
func (s *ColumnsSource) resolveCols(fields []string) ([]vec.Col, []string, error) {
	e := s.Entry
	fields = s.fieldList(fields)
	cols := make([]vec.Col, len(fields))
	for i, f := range fields {
		col, ok := e.Cols[f]
		if !ok {
			return nil, nil, fmt.Errorf("cache: column %q not resident for %s", f, s.Dataset)
		}
		cols[i] = col
	}
	return cols, fields, nil
}

// resolveEnc maps requested fields to the entry's encoded columns.
func (s *ColumnsSource) resolveEnc(fields []string) ([]*colenc.Col, error) {
	fields = s.fieldList(fields)
	cols := make([]*colenc.Col, len(fields))
	for i, f := range fields {
		col, ok := s.Entry.Enc.Cols[f]
		if !ok {
			return nil, fmt.Errorf("cache: column %q not resident for %s", f, s.Dataset)
		}
		cols[i] = col
	}
	return cols, nil
}

// IterateBatches implements the JIT's BatchSource contract: batches are
// slice windows into the cached typed vectors — zero copies, no boxing.
// Consumers must treat column storage as immutable (they do: filters
// refine the selection vector instead of compacting). Encoded entries
// serve decoded block windows instead.
func (s *ColumnsSource) IterateBatches(fields []string, batchSize int, yield func(*vec.Batch) error) error {
	if s.Entry.Enc != nil {
		cols, err := s.resolveEnc(fields)
		if err != nil {
			return err
		}
		return s.encodedScan(cols)(0, s.Entry.N, batchSize, yield)
	}
	cols, _, err := s.resolveCols(fields)
	if err != nil {
		return err
	}
	return s.rangeScan(cols)(0, s.Entry.N, batchSize, yield)
}

// OpenRange implements the JIT's RangeBatchSource contract. Columnar
// entries can always serve arbitrary row ranges; morsels over encoded
// entries decode only the blocks their range touches.
func (s *ColumnsSource) OpenRange(fields []string) (func(lo, hi, batchSize int, yield func(*vec.Batch) error) error, int, bool) {
	if s.Entry.Enc != nil {
		cols, err := s.resolveEnc(fields)
		if err != nil {
			return nil, 0, false
		}
		return s.encodedScan(cols), s.Entry.N, true
	}
	cols, _, err := s.resolveCols(fields)
	if err != nil {
		return nil, 0, false
	}
	return s.rangeScan(cols), s.Entry.N, true
}

// encodedScan returns a range scanner over encoded columns. Each call
// of the returned function owns its decode buffers (morsel workers scan
// disjoint ranges concurrently), decodes each touched block once, and
// yields sliced windows. Batches are not Stable: the buffers are reused
// when the scan moves to the next block, so consumers that retain rows
// copy them — exactly the contract raw-file scans already impose.
func (s *ColumnsSource) encodedScan(cols []*colenc.Col) func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
	return func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
		if batchSize <= 0 {
			batchSize = vec.DefaultBatchSize
		}
		dec := make([]vec.Col, len(cols))
		b := &vec.Batch{Cols: make([]vec.Col, len(cols))}
		cur := -1
		var reserved int64
		if s.Mem != nil {
			defer func() { s.Mem.Release(reserved) }()
		}
		for o := lo; o < hi; {
			bi := o / colenc.BlockRows
			blkStart := bi * colenc.BlockRows
			blkEnd := blkStart + colenc.BlockRows
			if blkEnd > s.Entry.N {
				blkEnd = s.Entry.N
			}
			if bi != cur {
				for i, c := range cols {
					if err := c.DecodeBlock(bi, &dec[i]); err != nil {
						return err
					}
				}
				cur = bi
				s.Mgr.noteDecodedBlocks(int64(len(cols)))
				if s.Mem != nil {
					var sz int64
					for i := range dec {
						sz += dec[i].SizeBytes()
					}
					if sz > reserved {
						if err := s.Mem.Reserve(sz - reserved); err != nil {
							return err
						}
						reserved = sz
					}
				}
			}
			end := o + batchSize
			if end > blkEnd {
				end = blkEnd
			}
			if end > hi {
				end = hi
			}
			for i := range dec {
				b.Cols[i] = dec[i].Slice(o-blkStart, end-blkStart)
			}
			b.N = end - o
			b.Sel = nil
			if err := yield(b); err != nil {
				return err
			}
			o = end
		}
		return nil
	}
}

func (s *ColumnsSource) rangeScan(cols []vec.Col) func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
	return func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
		if batchSize <= 0 {
			batchSize = vec.DefaultBatchSize
		}
		b := &vec.Batch{Cols: make([]vec.Col, len(cols)), Stable: true}
		for o := lo; o < hi; o += batchSize {
			end := o + batchSize
			if end > hi {
				end = hi
			}
			for i := range cols {
				b.Cols[i] = cols[i].Slice(o, end)
			}
			b.N = end - o
			b.Sel = nil
			if err := yield(b); err != nil {
				return err
			}
		}
		return nil
	}
}

// RowsSource adapts a row-layout entry to algebra.Source.
type RowsSource struct {
	Entry   *Entry
	Dataset string
}

// Name implements algebra.Source.
func (s *RowsSource) Name() string { return s.Dataset }

// Iterate implements algebra.Source.
func (s *RowsSource) Iterate(fields []string, yield func(values.Value) error) error {
	for _, r := range s.Entry.Rows {
		if len(fields) > 0 {
			rec := make([]values.Field, len(fields))
			for i, f := range fields {
				v, _ := r.Get(f)
				rec[i] = values.Field{Name: f, Val: v}
			}
			r = values.NewRecord(rec...)
		}
		if err := yield(r); err != nil {
			return err
		}
	}
	return nil
}

// BSONSource adapts a binary-JSON entry to algebra.Source, decoding only
// the projected fields of each document.
type BSONSource struct {
	Entry   *Entry
	Dataset string
}

// Name implements algebra.Source.
func (s *BSONSource) Name() string { return s.Dataset }

// Iterate implements algebra.Source.
func (s *BSONSource) Iterate(fields []string, yield func(values.Value) error) error {
	for _, doc := range s.Entry.Docs {
		var rec values.Value
		if len(fields) == 0 {
			v, err := bsonlite.Unmarshal(doc)
			if err != nil {
				return err
			}
			rec = v
		} else {
			fs := make([]values.Field, len(fields))
			for i, f := range fields {
				v, _, err := bsonlite.GetField(doc, f)
				if err != nil {
					return err
				}
				fs[i] = values.Field{Name: f, Val: v}
			}
			rec = values.NewRecord(fs...)
		}
		if err := yield(rec); err != nil {
			return err
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
