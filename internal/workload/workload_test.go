package workload

import (
	"os"
	"testing"

	"vida/internal/mcl"
	"vida/internal/rawcsv"
	"vida/internal/rawjson"
	"vida/internal/sdg"
	"vida/internal/values"
)

func smallScale() Scale {
	return Scale{
		PatientsRows:   200,
		PatientsCols:   20,
		GeneticsRows:   250,
		GeneticsCols:   15,
		RegionsObjects: 100,
	}
}

func TestGenerateAllAndReadBack(t *testing.T) {
	dir := t.TempDir()
	sc := smallScale()
	paths, err := GenerateAll(dir, sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Patients parses under its schema.
	pt, err := sdg.ParseSchema(PatientsSchema(sc))
	if err != nil {
		t.Fatal(err)
	}
	pd := sdg.DefaultDescription("Patients", sdg.FormatCSV, paths.Patients, sdg.Bag(pt))
	pr, err := rawcsv.Open(pd)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := pr.Iterate(nil, func(v values.Value) error {
		if v.MustGet("age").Int() < 18 {
			t.Fatalf("age domain violated: %v", v.MustGet("age"))
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != sc.PatientsRows {
		t.Fatalf("patients rows = %d, want %d (skipped: %v)", n, sc.PatientsRows, pr.StatsSnapshot())
	}
	// Genetics parses under its schema.
	gt, err := sdg.ParseSchema(GeneticsSchema(sc))
	if err != nil {
		t.Fatal(err)
	}
	gd := sdg.DefaultDescription("Genetics", sdg.FormatCSV, paths.Genetics, sdg.Bag(gt))
	gr, err := rawcsv.Open(gd)
	if err != nil {
		t.Fatal(err)
	}
	gn, err := gr.NumRows()
	if err != nil || gn != sc.GeneticsRows {
		t.Fatalf("genetics rows = %d, %v", gn, err)
	}
	// Regions JSON parses and has the expected object count + structure.
	rd, err := rawjson.Open(sdg.DefaultDescription("BrainRegions", sdg.FormatJSON, paths.Regions, sdg.Bag(sdg.Unknown)))
	if err != nil {
		t.Fatal(err)
	}
	rn, err := rd.NumObjects()
	if err != nil || rn != sc.RegionsObjects {
		t.Fatalf("regions objects = %d, %v", rn, err)
	}
	obj, err := rd.ParseObject(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"id", "region", "volume", "pipeline", "voxels", "coords"} {
		if _, ok := obj.Get(field); !ok {
			t.Fatalf("region object missing %q: %v", field, obj)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	sc := smallScale()
	if err := GeneratePatients(dir+"/a.csv", sc, 7); err != nil {
		t.Fatal(err)
	}
	if err := GeneratePatients(dir+"/b.csv", sc, 7); err != nil {
		t.Fatal(err)
	}
	if FileSize(dir+"/a.csv") != FileSize(dir+"/b.csv") {
		t.Fatal("same seed produced different files")
	}
	if err := GeneratePatients(dir+"/c.csv", sc, 8); err != nil {
		t.Fatal(err)
	}
	// Different seed: near-certainly different bytes (sizes may match,
	// compare content prefix).
	a, _ := osReadFile(dir + "/a.csv")
	c, _ := osReadFile(dir + "/c.csv")
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical files")
	}
}

func TestSchemasMatchColumnCounts(t *testing.T) {
	sc := smallScale()
	pt, err := sdg.ParseSchema(PatientsSchema(sc))
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Attrs) != sc.PatientsCols {
		t.Fatalf("patients schema cols = %d, want %d", len(pt.Attrs), sc.PatientsCols)
	}
	gt, err := sdg.ParseSchema(GeneticsSchema(sc))
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.Attrs) != sc.GeneticsCols {
		t.Fatalf("genetics schema cols = %d, want %d", len(gt.Attrs), sc.GeneticsCols)
	}
}

func TestFactorScaling(t *testing.T) {
	sc := Factor(0.01)
	if sc.PatientsRows < 200 || sc.GeneticsCols < 60 {
		t.Fatalf("minimums not applied: %+v", sc)
	}
	if sc.PatientsCols != FullScale.PatientsCols {
		t.Fatalf("patients width should stay at full scale: %+v", sc)
	}
	full := Factor(1.0)
	if full != FullScale {
		t.Fatalf("Factor(1) = %+v", full)
	}
}

func TestGenerateQueriesShape(t *testing.T) {
	sc := smallScale()
	w := Generate(150, sc, 42)
	if len(w.Queries) != 150 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	explore, interactive, threeWay := 0, 0, 0
	for _, q := range w.Queries {
		switch q.Kind {
		case Exploration:
			explore++
			if q.Agg == nil {
				t.Fatalf("exploration query %d has no aggregate", q.ID)
			}
		case Interactive:
			interactive++
			if len(q.Project) < 1 || len(q.Project) > 5 {
				t.Fatalf("query %d projects %d attrs", q.ID, len(q.Project))
			}
		}
		if q.Joins3Way {
			threeWay++
		}
	}
	if explore != 50 || interactive != 100 {
		t.Fatalf("mix = %d exploration, %d interactive", explore, interactive)
	}
	// "Most queries access all three datasets" (§6).
	if threeWay < 75 {
		t.Fatalf("three-way queries = %d of 150, want most", threeWay)
	}
}

func TestQueriesRenderAndParse(t *testing.T) {
	sc := smallScale()
	w := Generate(150, sc, 42)
	for _, q := range w.Queries {
		text := q.Comprehension()
		if _, err := mcl.Parse(text); err != nil {
			t.Fatalf("query %d unparseable: %v\n%s", q.ID, err, text)
		}
		jq := q.JoinQuery()
		if q.Joins3Way && len(jq.Joins) != 2 {
			t.Fatalf("query %d join edges = %d", q.ID, len(jq.Joins))
		}
		if q.Agg == nil && len(jq.Project) == 0 {
			t.Fatalf("query %d has neither agg nor projection", q.ID)
		}
	}
}

func TestWorkloadLocality(t *testing.T) {
	// After some warmup prefix, most queries should touch only columns
	// already seen — the property that yields the ~80% cache-hit rate.
	sc := Factor(0.02)
	w := Generate(150, sc, 42)
	seen := map[string]bool{}
	touch := func(q *Query) []string {
		var keys []string
		for _, p := range q.Preds {
			keys = append(keys, p.Dataset+"."+p.Col)
		}
		for _, pc := range q.Project {
			keys = append(keys, pc[0]+"."+pc[1])
		}
		if q.Agg != nil {
			keys = append(keys, q.Agg.Dataset+"."+q.Agg.Col)
		}
		return keys
	}
	warm := 30
	hits := 0
	for i, q := range w.Queries {
		fresh := false
		for _, k := range touch(&q) {
			if !seen[k] {
				fresh = true
			}
			seen[k] = true
		}
		if i >= warm && !fresh {
			hits++
		}
	}
	rate := float64(hits) / float64(len(w.Queries)-warm)
	if rate < 0.6 {
		t.Fatalf("workload locality too low: %.2f of post-warmup queries reuse columns", rate)
	}
}

func TestTouchedColumns(t *testing.T) {
	sc := Factor(0.02) // realistic widths: locality only shows at scale
	w := Generate(50, sc, 1)
	tc := w.TouchedColumns()
	if !tc["Patients"]["id"] || !tc["Patients"]["age"] {
		t.Fatalf("touched columns missing basics: %v", tc["Patients"])
	}
	// The workload must touch far fewer columns than exist — that is
	// what makes raw access + caching beat full loading.
	if len(tc["Genetics"]) >= sc.GeneticsCols/2 {
		t.Fatalf("workload touches too many genetics columns: %d", len(tc["Genetics"]))
	}
}

func osReadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
