package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"vida/internal/basequery"
	"vida/internal/values"
)

// QueryKind distinguishes the two analysis phases of the paper's workload
// (§6): epidemiological exploration, then interactive analysis joining
// patient data with the imaging products.
type QueryKind uint8

// The query kinds.
const (
	Exploration QueryKind = iota
	Interactive
)

// Pred is one filter predicate of a workload query.
type Pred struct {
	Dataset string // "Patients", "Genetics", "Regions"
	Col     string
	Op      string // "<", "<=", ">", ">=", "=", "!="
	Val     values.Value
}

// Agg describes the aggregate of an exploration query.
type Agg struct {
	Kind    string // "count", "avg", "sum", "min", "max"
	Dataset string
	Col     string
}

// Query is one workload query in neutral form; adapters render it for
// ViDa (comprehension) and for the baselines (JoinQuery).
type Query struct {
	ID    int
	Kind  QueryKind
	Preds []Pred
	// Project lists (dataset, column) pairs for interactive queries
	// (1–5 attributes, per the paper).
	Project [][2]string
	// Agg is set for exploration queries.
	Agg *Agg
	// Joins3Way reports whether the query touches all three datasets.
	Joins3Way bool
}

// Comprehension renders the ViDa query text. Variables: p (Patients),
// g (Genetics), b (Regions).
func (q *Query) Comprehension() string {
	var sb strings.Builder
	sb.WriteString("for { p <- Patients")
	if q.Joins3Way {
		sb.WriteString(", g <- Genetics, b <- BrainRegions, p.id = g.id, g.id = b.id")
	}
	varOf := map[string]string{"Patients": "p", "Genetics": "g", "Regions": "b"}
	for _, pr := range q.Preds {
		fmt.Fprintf(&sb, ", %s.%s %s %s", varOf[pr.Dataset], pr.Col, opText(pr.Op), literal(pr.Val))
	}
	sb.WriteString(" } yield ")
	if q.Agg != nil {
		switch q.Agg.Kind {
		case "count":
			sb.WriteString("sum 1")
		default:
			fmt.Fprintf(&sb, "%s %s.%s", q.Agg.Kind, varOf[q.Agg.Dataset], q.Agg.Col)
		}
		return sb.String()
	}
	sb.WriteString("bag (")
	for i, pc := range q.Project {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s_%s := %s.%s", strings.ToLower(pc[0][:1]), pc[1], varOf[pc[0]], pc[1])
	}
	sb.WriteString(")")
	return sb.String()
}

func opText(op string) string {
	if op == "!=" {
		return "!="
	}
	return op
}

func literal(v values.Value) string {
	if v.Kind() == values.KindString {
		return fmt.Sprintf("%q", v.Str())
	}
	return v.String()
}

// JoinQuery renders the baseline form. Table names are the warehouse
// names ("Patients", "Genetics", "Regions" — the flattened JSON relation
// is registered as "Regions" in the stores).
func (q *Query) JoinQuery() *basequery.JoinQuery {
	predOf := func(p Pred) basequery.Pred {
		var op basequery.Op
		switch p.Op {
		case "=":
			op = basequery.OpEq
		case "!=":
			op = basequery.OpNe
		case "<":
			op = basequery.OpLt
		case "<=":
			op = basequery.OpLe
		case ">":
			op = basequery.OpGt
		default:
			op = basequery.OpGe
		}
		return basequery.Pred{Col: p.Col, Op: op, Val: p.Val}
	}
	byDS := map[string][]basequery.Pred{}
	for _, p := range q.Preds {
		byDS[p.Dataset] = append(byDS[p.Dataset], predOf(p))
	}
	out := &basequery.JoinQuery{}
	if q.Joins3Way {
		out.Tables = []basequery.TableTerm{
			{Table: "Patients", Preds: byDS["Patients"]},
			{Table: "Genetics", Preds: byDS["Genetics"]},
			{Table: "Regions", Preds: byDS["Regions"]},
		}
		out.Joins = []basequery.JoinOn{
			{LTable: "Patients", LCol: "id", RTable: "Genetics", RCol: "id"},
			{LTable: "Genetics", LCol: "id", RTable: "Regions", RCol: "id"},
		}
	} else {
		out.Tables = []basequery.TableTerm{{Table: "Patients", Preds: byDS["Patients"]}}
	}
	if q.Agg != nil {
		spec := &basequery.AggSpec{}
		switch q.Agg.Kind {
		case "count":
			spec.Kind = basequery.AggCount
		case "avg":
			spec.Kind = basequery.AggAvg
		case "sum":
			spec.Kind = basequery.AggSum
		case "min":
			spec.Kind = basequery.AggMin
		default:
			spec.Kind = basequery.AggMax
		}
		spec.Table = warehouseTable(q.Agg.Dataset)
		spec.Col = q.Agg.Col
		out.Agg = spec
		return out
	}
	for _, pc := range q.Project {
		out.Project = append(out.Project, basequery.ProjCol{
			Table: warehouseTable(pc[0]),
			Col:   pc[1],
			As:    strings.ToLower(pc[0][:1]) + "_" + pc[1],
		})
	}
	return out
}

func warehouseTable(ds string) string {
	if ds == "Regions" {
		return "Regions"
	}
	return ds
}

// Datasets returns the datasets a query touches.
func (q *Query) Datasets() []string {
	if q.Joins3Way {
		return []string{"Patients", "Genetics", "Regions"}
	}
	return []string{"Patients"}
}

// Workload is the generated query sequence plus its locality pools.
type Workload struct {
	Queries []Query
	Scale   Scale
}

// Generate builds an n-query workload (the paper runs 150): roughly the
// first third explores (filters + aggregates over Patients, some joined
// with Genetics/Regions), the rest interactively joins all three datasets
// projecting 1–5 attributes. Column locality is tuned so that once the
// hot columns have been touched, about 80% of queries need no new raw
// field (the cache-hit ratio the paper reports).
func Generate(n int, sc Scale, seed int64) *Workload {
	r := rand.New(rand.NewSource(seed + 7))
	pCols := PatientsColumns(sc)
	gCols := GeneticsColumns(sc)

	// Hot pools: small sets of measurement columns that most queries
	// draw from. Cold picks (20%) sample outside the pool.
	hotP := pickCols(r, pCols[len(demographics):], 6)
	hotG := pickCols(r, gCols[1:], 8)
	regionScalars := []string{"volume", "intensity"}

	// 0.9 per column pick compounds over multi-column queries to the
	// ~80% whole-query reuse rate the paper reports.
	pickHotCold := func(hot, all []string) string {
		if r.Float64() < 0.9 || len(all) == 0 {
			return hot[r.Intn(len(hot))]
		}
		return all[r.Intn(len(all))]
	}

	var queries []Query
	nExplore := n / 3
	for i := 0; i < n; i++ {
		q := Query{ID: i + 1}
		if i < nExplore {
			q.Kind = Exploration
			// Demographic + geographic filters (the paper's
			// "epidemiological exploration ... geographical, demographic,
			// and age criteria").
			q.Preds = append(q.Preds, Pred{
				Dataset: "Patients", Col: "age", Op: pickOp(r),
				Val: values.NewInt(int64(30 + r.Intn(40))),
			})
			if r.Float64() < 0.5 {
				q.Preds = append(q.Preds, Pred{
					Dataset: "Patients", Col: "city", Op: "=",
					Val: values.NewString(cities[r.Intn(len(cities))]),
				})
			}
			col := pickHotCold(hotP, pCols[len(demographics):])
			switch r.Intn(3) {
			case 0:
				q.Agg = &Agg{Kind: "count", Dataset: "Patients", Col: "id"}
			case 1:
				q.Agg = &Agg{Kind: "avg", Dataset: "Patients", Col: col}
			default:
				q.Agg = &Agg{Kind: "max", Dataset: "Patients", Col: col}
			}
			// A share of exploration queries already joins all datasets
			// ("Most queries access all three datasets", §6).
			if r.Float64() < 0.5 {
				q.Joins3Way = true
				q.Preds = append(q.Preds, Pred{
					Dataset: "Genetics", Col: pickHotCold(hotG, gCols[1:]), Op: "=",
					Val: values.NewInt(int64(r.Intn(3))),
				})
			}
		} else {
			q.Kind = Interactive
			q.Joins3Way = true
			q.Preds = append(q.Preds, Pred{
				Dataset: "Patients", Col: "age", Op: pickOp(r),
				Val: values.NewInt(int64(30 + r.Intn(40))),
			})
			q.Preds = append(q.Preds, Pred{
				Dataset: "Genetics", Col: pickHotCold(hotG, gCols[1:]), Op: "=",
				Val: values.NewInt(int64(r.Intn(3))),
			})
			if r.Float64() < 0.6 {
				q.Preds = append(q.Preds, Pred{
					Dataset: "Regions", Col: "volume", Op: ">",
					Val: values.NewFloat(500 + r.Float64()*3000),
				})
			}
			// Project 1–5 attributes (paper: "project out 1-5
			// attributes").
			nproj := 1 + r.Intn(5)
			seen := map[string]bool{}
			for len(q.Project) < nproj {
				var pc [2]string
				switch r.Intn(3) {
				case 0:
					pc = [2]string{"Patients", pickHotCold(hotP, pCols[len(demographics):])}
				case 1:
					pc = [2]string{"Genetics", pickHotCold(hotG, gCols[1:])}
				default:
					pc = [2]string{"Regions", regionScalars[r.Intn(len(regionScalars))]}
				}
				key := pc[0] + "." + pc[1]
				if !seen[key] {
					seen[key] = true
					q.Project = append(q.Project, pc)
				}
			}
		}
		queries = append(queries, q)
	}
	return &Workload{Queries: queries, Scale: sc}
}

func pickOp(r *rand.Rand) string {
	ops := []string{"<", "<=", ">", ">="}
	return ops[r.Intn(len(ops))]
}

func pickCols(r *rand.Rand, pool []string, n int) []string {
	if n > len(pool) {
		n = len(pool)
	}
	perm := r.Perm(len(pool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

// TouchedColumns reports the distinct (dataset, column) pairs the whole
// workload references — the field universe the caches converge to.
func (w *Workload) TouchedColumns() map[string]map[string]bool {
	out := map[string]map[string]bool{}
	touch := func(ds, col string) {
		if out[ds] == nil {
			out[ds] = map[string]bool{}
		}
		out[ds][col] = true
	}
	for _, q := range w.Queries {
		for _, p := range q.Preds {
			touch(p.Dataset, p.Col)
		}
		for _, pc := range q.Project {
			touch(pc[0], pc[1])
		}
		if q.Agg != nil {
			touch(q.Agg.Dataset, q.Agg.Col)
		}
		if q.Joins3Way {
			touch("Patients", "id")
			touch("Genetics", "id")
			touch("Regions", "id")
		}
	}
	return out
}
