// Package workload generates the Human Brain Project evaluation workload
// of the paper (§6, Table 2): the Patients and Genetics CSV relations, the
// BrainRegions JSON hierarchy, and the 150-query sequence mixing
// epidemiological exploration (filter + aggregate) with interactive
// analysis (three-way joins projecting 1–5 attributes). Real patient data
// is unobtainable (the paper's very premise is that it cannot leave the
// hospitals); the generators are deterministic synthetic equivalents that
// preserve the *shapes* the experiments exercise: a wide tabular relation,
// an extremely wide genetics matrix (17 832 columns at full scale —
// forcing vertical partitioning in the row store), a nested JSON
// hierarchy, shared join keys, and workload locality high enough that
// ~80% of queries touch previously-accessed fields (the cache-hit ratio
// behind Figure 5).
package workload

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
)

// Scale sizes the datasets. The paper's full scale is
// {41718, 156, 51858, 17832, 17000}; Factor scales it down
// proportionally so the suite runs on a laptop.
type Scale struct {
	PatientsRows   int
	PatientsCols   int // total columns incl. id and demographics
	GeneticsRows   int
	GeneticsCols   int // total columns incl. id
	RegionsObjects int
}

// FullScale is the paper's Table 2.
var FullScale = Scale{
	PatientsRows:   41718,
	PatientsCols:   156,
	GeneticsRows:   51858,
	GeneticsCols:   17832,
	RegionsObjects: 17000,
}

// Factor returns the paper's scale multiplied by f (rows and the
// genetics width scale; the patients width is kept so projectivity
// behaviour is preserved). Minimums keep the shapes meaningful.
func Factor(f float64) Scale {
	max := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	return Scale{
		PatientsRows:   max(int(float64(FullScale.PatientsRows)*f), 200),
		PatientsCols:   FullScale.PatientsCols,
		GeneticsRows:   max(int(float64(FullScale.GeneticsRows)*f), 250),
		GeneticsCols:   max(int(float64(FullScale.GeneticsCols)*f), 60),
		RegionsObjects: max(int(float64(FullScale.RegionsObjects)*f), 100),
	}
}

// Demographic columns of Patients (the first columns; the rest are
// protein-level measurements p0..pN).
var demographics = []string{"id", "age", "gender", "city", "visits", "bmi"}

// PatientsColumns returns the full ordered column list.
func PatientsColumns(sc Scale) []string {
	cols := append([]string{}, demographics...)
	for i := 0; len(cols) < sc.PatientsCols; i++ {
		cols = append(cols, fmt.Sprintf("p%d", i))
	}
	return cols
}

// GeneticsColumns returns the full ordered column list: id then SNPs.
func GeneticsColumns(sc Scale) []string {
	cols := []string{"id"}
	for i := 0; len(cols) < sc.GeneticsCols; i++ {
		cols = append(cols, fmt.Sprintf("snp%d", i))
	}
	return cols
}

// PatientsSchema renders the source description grammar for Patients.
func PatientsSchema(sc Scale) string {
	var sb strings.Builder
	sb.WriteString("Record(Att(id, int), Att(age, int), Att(gender, string), Att(city, string), Att(visits, int), Att(bmi, float)")
	for _, c := range PatientsColumns(sc)[len(demographics):] {
		fmt.Fprintf(&sb, ", Att(%s, float)", c)
	}
	sb.WriteString(")")
	return sb.String()
}

// GeneticsSchema renders the source description grammar for Genetics.
func GeneticsSchema(sc Scale) string {
	var sb strings.Builder
	sb.WriteString("Record(Att(id, int)")
	for _, c := range GeneticsColumns(sc)[1:] {
		fmt.Fprintf(&sb, ", Att(%s, int)", c)
	}
	sb.WriteString(")")
	return sb.String()
}

// cities is the demographic domain.
var cities = []string{"lausanne", "geneva", "zurich", "bern", "basel", "lyon", "milan", "munich"}

// GeneratePatients writes the Patients CSV.
func GeneratePatients(path string, sc Scale, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cols := PatientsColumns(sc)
	var sb strings.Builder
	sb.WriteString(strings.Join(cols, ","))
	sb.WriteByte('\n')
	for i := 0; i < sc.PatientsRows; i++ {
		fmt.Fprintf(&sb, "%d,%d,%s,%s,%d,%.1f",
			i,
			18+r.Intn(80),
			pick(r, "m", "f"),
			cities[r.Intn(len(cities))],
			r.Intn(40),
			16+r.Float64()*24,
		)
		for c := len(demographics); c < len(cols); c++ {
			fmt.Fprintf(&sb, ",%.3f", r.Float64()*100)
		}
		sb.WriteByte('\n')
		if sb.Len() > 1<<20 {
			if _, err := f.WriteString(sb.String()); err != nil {
				return err
			}
			sb.Reset()
		}
	}
	_, err = f.WriteString(sb.String())
	return err
}

func pick(r *rand.Rand, a, b string) string {
	if r.Intn(2) == 0 {
		return a
	}
	return b
}

// GenerateGenetics writes the Genetics CSV. Row i's id is i%PatientsRows
// so most genetics rows join a patient (the paper's datasets share the
// patient key space).
func GenerateGenetics(path string, sc Scale, seed int64) error {
	r := rand.New(rand.NewSource(seed + 1))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cols := GeneticsColumns(sc)
	var sb strings.Builder
	sb.WriteString(strings.Join(cols, ","))
	sb.WriteByte('\n')
	for i := 0; i < sc.GeneticsRows; i++ {
		fmt.Fprintf(&sb, "%d", i%sc.PatientsRows)
		for c := 1; c < len(cols); c++ {
			fmt.Fprintf(&sb, ",%d", r.Intn(3)) // SNP genotype 0/1/2
		}
		sb.WriteByte('\n')
		if sb.Len() > 1<<20 {
			if _, err := f.WriteString(sb.String()); err != nil {
				return err
			}
			sb.Reset()
		}
	}
	_, err = f.WriteString(sb.String())
	return err
}

// brainRegionNames is the anatomical domain of the JSON hierarchy.
var brainRegionNames = []string{
	"hippocampus", "amygdala", "thalamus", "putamen", "caudate",
	"cerebellum", "precuneus", "insula", "cingulate", "fusiform",
}

// GenerateBrainRegions writes the BrainRegions JSON file: one object per
// processed MRI result with scalar measurements, a nested pipeline
// record and a voxel-sample array — the hierarchy whose flattening is so
// expensive for the warehouse baselines.
func GenerateBrainRegions(path string, sc Scale, seed int64) error {
	r := rand.New(rand.NewSource(seed + 2))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var sb strings.Builder
	sb.WriteString("[\n")
	for i := 0; i < sc.RegionsObjects; i++ {
		if i > 0 {
			sb.WriteString(",\n")
		}
		region := brainRegionNames[r.Intn(len(brainRegionNames))]
		fmt.Fprintf(&sb, `{"id": %d, "region": "%s", "volume": %.2f, "intensity": %.3f, "laterality": "%s"`,
			i%sc.PatientsRows, region, 100+r.Float64()*5000, r.Float64(), pick(r, "left", "right"))
		fmt.Fprintf(&sb, `, "pipeline": {"algo": "seg-v%d", "pass": %d, "quality": %.2f}`,
			1+r.Intn(3), 1+r.Intn(4), r.Float64())
		sb.WriteString(`, "voxels": [`)
		nv := 4 + r.Intn(8)
		for v := 0; v < nv; v++ {
			if v > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%.1f", r.Float64()*255)
		}
		fmt.Fprintf(&sb, `], "coords": {"x": %.1f, "y": %.1f, "z": %.1f}}`,
			r.Float64()*180, r.Float64()*220, r.Float64()*180)
		if sb.Len() > 1<<20 {
			if _, err := f.WriteString(sb.String()); err != nil {
				return err
			}
			sb.Reset()
		}
	}
	sb.WriteString("\n]\n")
	_, err = f.WriteString(sb.String())
	return err
}

// Paths bundles the generated file locations.
type Paths struct {
	Patients string
	Genetics string
	Regions  string
}

// GenerateAll writes the three datasets under dir and returns their
// paths.
func GenerateAll(dir string, sc Scale, seed int64) (*Paths, error) {
	p := &Paths{
		Patients: dir + "/patients.csv",
		Genetics: dir + "/genetics.csv",
		Regions:  dir + "/brainregions.json",
	}
	if err := GeneratePatients(p.Patients, sc, seed); err != nil {
		return nil, err
	}
	if err := GenerateGenetics(p.Genetics, sc, seed); err != nil {
		return nil, err
	}
	if err := GenerateBrainRegions(p.Regions, sc, seed); err != nil {
		return nil, err
	}
	return p, nil
}

// FileSize returns a file's size in bytes (Table 2 reporting).
func FileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
