package rawcsv

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vida/internal/sdg"
	"vida/internal/values"
)

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func desc(t *testing.T, path string, opts map[string]string) *sdg.Description {
	t.Helper()
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "name", Type: sdg.String},
		sdg.Attr{Name: "score", Type: sdg.Float},
		sdg.Attr{Name: "active", Type: sdg.Bool},
	))
	d := sdg.DefaultDescription("t", sdg.FormatCSV, path, schema)
	d.Options = opts
	return d
}

const sample = `id,name,score,active
1,ada,9.5,true
2,bob,8.0,false
3,eve,7.25,true
`

func collect(t *testing.T, r *Reader, fields []string) []values.Value {
	t.Helper()
	var out []values.Value
	if err := r.Iterate(fields, func(v values.Value) error {
		out = append(out, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIterateAllFields(t *testing.T) {
	r, err := Open(desc(t, writeFile(t, sample), nil))
	if err != nil {
		t.Fatal(err)
	}
	rows := collect(t, r, nil)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	r0 := rows[0]
	if r0.MustGet("id").Int() != 1 || r0.MustGet("name").Str() != "ada" ||
		r0.MustGet("score").Float() != 9.5 || !r0.MustGet("active").Bool() {
		t.Fatalf("row 0 = %v", r0)
	}
}

func TestProjection(t *testing.T) {
	r, err := Open(desc(t, writeFile(t, sample), nil))
	if err != nil {
		t.Fatal(err)
	}
	rows := collect(t, r, []string{"score"})
	if len(rows) != 3 || rows[0].Len() != 1 {
		t.Fatalf("projected rows = %v", rows)
	}
	if rows[2].MustGet("score").Float() != 7.25 {
		t.Fatalf("row 2 = %v", rows[2])
	}
}

func TestPosmapPopulatedAndUsed(t *testing.T) {
	r, err := Open(desc(t, writeFile(t, sample), nil))
	if err != nil {
		t.Fatal(err)
	}
	// First scan: full tokenization, posmap side effect.
	first := collect(t, r, []string{"score"})
	if got := r.StatsSnapshot()["full_scans"]; got != 1 {
		t.Fatalf("full_scans = %d", got)
	}
	if !r.PosMap().HasRows() || !r.PosMap().HasCol(2) {
		t.Fatal("posmap not populated")
	}
	// Second scan of the same column: served by posmap jumps.
	second := collect(t, r, []string{"score"})
	st := r.StatsSnapshot()
	if st["posmap_scans"] != 1 {
		t.Fatalf("posmap_scans = %d (stats %v)", st["posmap_scans"], st)
	}
	for i := range first {
		if !values.Equal(first[i], second[i]) {
			t.Fatalf("posmap scan diverged at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestPosmapDifferentColumnFallsBack(t *testing.T) {
	r, err := Open(desc(t, writeFile(t, sample), nil))
	if err != nil {
		t.Fatal(err)
	}
	collect(t, r, []string{"id"})
	// name column not recorded yet: full scan again, then recorded.
	collect(t, r, []string{"name"})
	st := r.StatsSnapshot()
	if st["full_scans"] != 2 {
		t.Fatalf("full_scans = %d", st["full_scans"])
	}
	collect(t, r, []string{"name", "id"})
	st = r.StatsSnapshot()
	if st["posmap_scans"] != 1 {
		t.Fatalf("posmap_scans = %d", st["posmap_scans"])
	}
}

func TestIterateRow(t *testing.T) {
	r, err := Open(desc(t, writeFile(t, sample), nil))
	if err != nil {
		t.Fatal(err)
	}
	row, err := r.IterateRow(1, []string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	if row.MustGet("name").Str() != "bob" {
		t.Fatalf("row 1 = %v", row)
	}
	if _, err := r.IterateRow(99, nil); err == nil {
		t.Fatal("out-of-range row should fail")
	}
}

func TestMalformedRowsSkipped(t *testing.T) {
	content := `id,name,score,active
1,ada,9.5,true
oops,bad,row,xx
3,eve,7.25,true
2,bob
`
	r, err := Open(desc(t, writeFile(t, content), nil))
	if err != nil {
		t.Fatal(err)
	}
	rows := collect(t, r, nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (bad rows skipped)", len(rows))
	}
	if got := r.StatsSnapshot()["rows_skipped"]; got != 2 {
		t.Fatalf("rows_skipped = %d", got)
	}
	// Posmap must stay consistent despite the skips: re-scan and compare.
	again := collect(t, r, nil)
	if len(again) != 2 || !values.Equal(rows[0], again[0]) || !values.Equal(rows[1], again[1]) {
		t.Fatalf("re-scan diverged: %v vs %v", rows, again)
	}
}

func TestFailOnBadRowsPolicy(t *testing.T) {
	content := "id,name,score,active\nbad,row,here,x\n"
	d := desc(t, writeFile(t, content), map[string]string{"onerror": "fail"})
	r, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Iterate(nil, func(values.Value) error { return nil }); err == nil {
		t.Fatal("fail policy should surface malformed rows")
	}
}

func TestCustomDelimiterAndNull(t *testing.T) {
	content := "id|name|score|active\n1|ada|NULL|true\n"
	d := desc(t, writeFile(t, content), map[string]string{"delim": "|", "null": "NULL"})
	r, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	rows := collect(t, r, nil)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[0].MustGet("score").IsNull() {
		t.Fatalf("NULL token not honored: %v", rows[0])
	}
}

func TestNoHeader(t *testing.T) {
	content := "1,ada,9.5,true\n2,bob,8.0,false\n"
	d := desc(t, writeFile(t, content), map[string]string{"header": "false"})
	r, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	if rows := collect(t, r, nil); len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestRefreshInvalidatesOnChange(t *testing.T) {
	path := writeFile(t, sample)
	r, err := Open(desc(t, path, nil))
	if err != nil {
		t.Fatal(err)
	}
	collect(t, r, []string{"id"})
	if !r.PosMap().HasCol(0) {
		t.Fatal("posmap missing after scan")
	}
	invalidated := false
	r.SetInvalidateHook(func() { invalidated = true })

	// Rewrite the file with different content and a new mtime (bumped
	// explicitly: filesystem mtime granularity can be coarse).
	newContent := sample + "4,zed,1.0,false\n"
	if err := os.WriteFile(path, []byte(newContent), 0o644); err != nil {
		t.Fatal(err)
	}
	bumped := fileTimePlus(t, path)
	if err := os.Chtimes(path, bumped, bumped); err != nil {
		t.Fatal(err)
	}
	changed, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("Refresh did not detect the change")
	}
	if !invalidated {
		t.Fatal("invalidate hook not fired")
	}
	if r.PosMap().HasRows() {
		t.Fatal("posmap survived invalidation")
	}
	if rows := collect(t, r, nil); len(rows) != 4 {
		t.Fatalf("rows after refresh = %d", len(rows))
	}
}

func TestRefreshNoChange(t *testing.T) {
	path := writeFile(t, sample)
	r, err := Open(desc(t, path, nil))
	if err != nil {
		t.Fatal(err)
	}
	changed, err := r.Refresh()
	if err != nil || changed {
		t.Fatalf("Refresh = %v, %v; want false, nil", changed, err)
	}
}

func TestNumRowsWithoutScan(t *testing.T) {
	r, err := Open(desc(t, writeFile(t, sample), nil))
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.NumRows()
	if err != nil || n != 3 {
		t.Fatalf("NumRows = %d, %v", n, err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(desc(t, "/nonexistent/nope.csv", nil)); err == nil {
		t.Fatal("missing file should fail")
	}
	d := desc(t, writeFile(t, sample), nil)
	d.Format = sdg.FormatJSON
	if _, err := Open(d); err == nil {
		t.Fatal("non-CSV format should fail")
	}
}

// TestPosmapEquivalenceProperty: for random files, scanning any projection
// via posmap yields byte-identical results to a full scan.
func TestPosmapEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		nRows := 1 + r.Intn(40)
		var sb strings.Builder
		sb.WriteString("id,name,score,active\n")
		for i := 0; i < nRows; i++ {
			fmt.Fprintf(&sb, "%d,n%d,%g,%v\n", i, r.Intn(100), float64(r.Intn(1000))/8, r.Intn(2) == 0)
		}
		rd, err := Open(desc(t, writeFile(t, sb.String()), nil))
		if err != nil {
			t.Fatal(err)
		}
		projections := [][]string{{"id"}, {"score"}, {"name", "active"}, nil}
		baseline := map[string][]values.Value{}
		for _, p := range projections {
			key := strings.Join(p, ",")
			baseline[key] = collect(t, rd, p)
		}
		// All columns now recorded; repeat scans must match exactly.
		for _, p := range projections {
			key := strings.Join(p, ",")
			again := collect(t, rd, p)
			if len(again) != len(baseline[key]) {
				t.Fatalf("row count drift for %q", key)
			}
			for i := range again {
				if !values.Equal(again[i], baseline[key][i]) {
					t.Fatalf("posmap drift for %q row %d: %v vs %v", key, i, again[i], baseline[key][i])
				}
			}
		}
		if rd.StatsSnapshot()["posmap_scans"] == 0 {
			t.Fatal("expected posmap scans in second pass")
		}
	}
}

func fileTimePlus(t *testing.T, path string) time.Time {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.ModTime().Add(2 * time.Second)
}
