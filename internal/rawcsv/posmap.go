// Package rawcsv implements ViDa's CSV access path: a scanner that treats
// raw CSV files as first-class query inputs, backed by NoDB-style
// positional maps (paper §5, [Alagiannis et al., SIGMOD 2012]). The first
// touch of a file records row-start offsets; the first touch of an
// attribute records the byte position of that attribute in every row.
// Later queries jump straight to the bytes they need instead of
// re-tokenizing the prefix of each row, which is what makes repeated raw
// access competitive with a loaded store.
package rawcsv

import "sync"

// PosMap is the positional map of one CSV file: row starts plus per-column
// field offsets (relative to row start) for the columns queries have
// touched so far. It grows adaptively as a side effect of scans and is
// dropped wholesale when the underlying file changes (paper §2.1).
type PosMap struct {
	mu   sync.RWMutex
	rows []int64         // byte offset of each data row start
	cols map[int][]int32 // column index -> per-row offset of field start, relative to row start
	ends map[int][]int32 // column index -> per-row offset one past field end
}

// NewPosMap returns an empty positional map.
func NewPosMap() *PosMap {
	return &PosMap{cols: map[int][]int32{}, ends: map[int][]int32{}}
}

// HasRows reports whether row starts have been recorded.
func (m *PosMap) HasRows() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rows) > 0
}

// NumRows returns the number of recorded rows.
func (m *PosMap) NumRows() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rows)
}

// SetRows installs the row-start offsets (first full scan).
func (m *PosMap) SetRows(rows []int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = rows
}

// Row returns the byte offset of row i.
func (m *PosMap) Row(i int) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rows[i]
}

// HasCol reports whether column j's positions are recorded.
func (m *PosMap) HasCol(j int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cols[j] != nil
}

// SetCol installs the per-row [start,end) offsets of column j.
func (m *PosMap) SetCol(j int, starts, ends []int32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cols[j] = starts
	m.ends[j] = ends
}

// Col returns the per-row offsets of column j (nil when absent).
func (m *PosMap) Col(j int) (starts, ends []int32) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cols[j], m.ends[j]
}

// Cols returns the indexes of all recorded columns.
func (m *PosMap) Cols() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, 0, len(m.cols))
	for j := range m.cols {
		out = append(out, j)
	}
	return out
}

// NearestAnchor returns the largest recorded column index <= j together
// with whether one exists. Scanning for column j can start tokenizing from
// the anchor instead of the row start, which is the "distance" term in the
// optimizer's CSV cost model (paper §5).
func (m *PosMap) NearestAnchor(j int) (int, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	best := -1
	for k := range m.cols {
		if k <= j && k > best {
			best = k
		}
	}
	return best, best >= 0
}

// Snapshot is an immutable view of a PosMap taken at one instant: scan
// loops read it without taking the map's lock per row. The row and
// column slices are shared with the map (they are replaced wholesale,
// never mutated in place), so a snapshot stays internally consistent
// even if the map grows or is dropped concurrently.
type Snapshot struct {
	Rows []int64
	Cols map[int][]int32
	Ends map[int][]int32
}

// HasCols reports whether every listed column is present in the snapshot.
func (s *Snapshot) HasCols(cols []int) bool {
	for _, j := range cols {
		if s.Cols[j] == nil {
			return false
		}
	}
	return true
}

// Snapshot captures the current rows and columns under one lock
// acquisition. Hot scan paths call it once per scan instead of locking
// per row (the maps are shallow-copied; the slices are shared).
func (m *PosMap) Snapshot() Snapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cols := make(map[int][]int32, len(m.cols))
	for j, c := range m.cols {
		cols[j] = c
	}
	ends := make(map[int][]int32, len(m.ends))
	for j, c := range m.ends {
		ends[j] = c
	}
	return Snapshot{Rows: m.rows, Cols: cols, Ends: ends}
}

// Drop discards everything; used when the file's mtime changes.
func (m *PosMap) Drop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = nil
	m.cols = map[int][]int32{}
	m.ends = map[int][]int32{}
}

// MemoryBytes estimates the map's footprint, reported by the engine's
// statistics (auxiliary structures trade memory for raw-access speed).
func (m *PosMap) MemoryBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := int64(len(m.rows) * 8)
	for _, c := range m.cols {
		total += int64(len(c) * 4)
	}
	for _, c := range m.ends {
		total += int64(len(c) * 4)
	}
	return total
}
