package rawcsv

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestGenerationTracksContent(t *testing.T) {
	path := writeFile(t, sample)
	r, err := Open(desc(t, path, nil))
	if err != nil {
		t.Fatal(err)
	}
	g1 := r.Generation()
	if g1 == "" {
		t.Fatal("empty generation")
	}
	// Identical bytes at a different path/mtime share the generation —
	// this is what lets a regenerated demo dataset rehydrate.
	path2 := writeFile(t, sample)
	r2, err := Open(desc(t, path2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Generation() != g1 {
		t.Fatalf("same content, different generations: %q vs %q", g1, r2.Generation())
	}
	// Changed bytes change the generation.
	if err := os.WriteFile(path, []byte(sample+"4,zed,1.0,false\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if r.Generation() == g1 {
		t.Fatal("generation unchanged after content change")
	}
}

func TestSaveLoadAuxRoundTrip(t *testing.T) {
	path := writeFile(t, sample)
	r, err := Open(desc(t, path, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Build the positional map for two columns via a scan.
	collect(t, r, []string{"id", "score"})
	if !r.PosMap().HasRows() {
		t.Fatal("scan did not build the posmap")
	}
	aux := filepath.Join(t.TempDir(), "t.posmap")
	if err := r.SaveAux(aux); err != nil {
		t.Fatal(err)
	}

	// A fresh reader (restarted process) loads it back and serves the
	// scan via posmap jumps, no rebuild.
	r2, err := Open(desc(t, path, nil))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := r2.LoadAux(aux)
	if err != nil || !ok {
		t.Fatalf("LoadAux = %v, %v", ok, err)
	}
	if got, want := r2.PosMap().NumRows(), r.PosMap().NumRows(); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	rows := collect(t, r2, []string{"id", "score"})
	if len(rows) != 3 || rows[2].MustGet("score").Float() != 7.25 {
		t.Fatalf("rows = %v", rows)
	}
	if r2.StatsSnapshot()["posmap_scans"] != 1 || r2.StatsSnapshot()["full_scans"] != 0 {
		t.Fatalf("loaded posmap not used: %v", r2.StatsSnapshot())
	}
}

func TestLoadAuxRejectsStaleAndCorrupt(t *testing.T) {
	path := writeFile(t, sample)
	r, err := Open(desc(t, path, nil))
	if err != nil {
		t.Fatal(err)
	}
	collect(t, r, []string{"id"})
	aux := filepath.Join(t.TempDir(), "t.posmap")
	if err := r.SaveAux(aux); err != nil {
		t.Fatal(err)
	}

	// File rewritten after the sidecar: mtime/size mismatch → clean miss.
	if err := os.WriteFile(path, []byte(sample+"4,zed,1.0,false\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(desc(t, path, nil))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := r2.LoadAux(aux); ok || err != nil {
		t.Fatalf("stale sidecar: ok=%v err=%v (want clean miss)", ok, err)
	}
	if r2.PosMap().HasRows() {
		t.Fatal("stale sidecar installed rows")
	}

	// Corrupt sidecar bytes → error (callers log and rebuild), no panic.
	good, err := os.ReadFile(aux)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"bit flip":    func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 0x10; return b },
		"bad magic":   func(b []byte) []byte { b = append([]byte(nil), b...); b[0] ^= 0xff; return b },
		"nearly zero": func(b []byte) []byte { return b[:5] },
	} {
		bad := filepath.Join(t.TempDir(), "bad.posmap")
		if err := os.WriteFile(bad, mutate(good), 0o644); err != nil {
			t.Fatal(err)
		}
		r3, err := Open(desc(t, path, nil))
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := r3.LoadAux(bad); ok || err == nil {
			t.Fatalf("%s: ok=%v err=%v (want rejection error)", name, ok, err)
		}
	}

	// Absent sidecar is a clean miss, not an error.
	if ok, err := r2.LoadAux(filepath.Join(t.TempDir(), "absent.posmap")); ok || err != nil {
		t.Fatalf("absent sidecar: ok=%v err=%v", ok, err)
	}
}
