package rawcsv

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"vida/internal/sdg"
	"vida/internal/values"
)

// ErrorPolicy selects what happens when a row fails to parse (paper §7,
// data cleaning): skip it silently (recording it in Stats) or abort.
type ErrorPolicy uint8

// The error policies.
const (
	SkipBadRows ErrorPolicy = iota
	FailOnBadRows
)

// Stats counts the work a reader has done; the optimizer's CSV wrapper and
// the experiment harness read these.
type Stats struct {
	FullScans       atomic.Int64 // scans that tokenized whole rows
	PosmapScans     atomic.Int64 // scans served via positional map jumps
	FieldsTokenized atomic.Int64 // individual fields tokenized
	FieldsJumped    atomic.Int64 // individual fields located via posmap
	RowsSkipped     atomic.Int64 // malformed rows skipped
	BytesRead       atomic.Int64
	Builds          atomic.Int64 // tokenizing first-touch builds of the positional map
	BuildNanos      atomic.Int64 // wall time spent in those builds
}

// fileState is one immutable generation of the file: its bytes, their
// modification time and the positional map built over exactly those
// bytes. Scans load the pointer once and use a single generation
// throughout, so a concurrent Refresh can never hand a scan offsets
// into bytes they were not computed from.
type fileState struct {
	data  []byte
	mtime time.Time
	pm    *PosMap
}

// Reader provides query access to one raw CSV file. It implements
// algebra.Source. Readers are safe for concurrent scans and for scans
// concurrent with Refresh.
type Reader struct {
	desc    *sdg.Description
	rowType *sdg.Type
	delim   byte
	header  bool
	policy  ErrorPolicy
	nullTok string
	state   atomic.Pointer[fileState]
	// buildMu single-flights the tokenizing first-touch scan of the
	// vectorized path: concurrent cold queries wait for one build and
	// then jump through the freshly installed positional map instead of
	// each re-tokenizing the whole file.
	buildMu sync.Mutex
	stats   Stats
	colIdx  map[string]int
	// onInvalidate is called when Refresh detects a file change.
	onInvalidate func()
}

// Open loads the CSV file described by desc. Options honored (from
// desc.Options): "delim" (single character, default ","), "header"
// ("true"/"false", default "true"), "null" (token treated as null,
// default empty string), "onerror" ("skip"/"fail", default "skip").
func Open(desc *sdg.Description) (*Reader, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if desc.Format != sdg.FormatCSV {
		return nil, fmt.Errorf("rawcsv: %s is not a CSV source", desc.Name)
	}
	data, err := os.ReadFile(desc.Path)
	if err != nil {
		return nil, fmt.Errorf("rawcsv: %s: %w", desc.Name, err)
	}
	fi, err := os.Stat(desc.Path)
	if err != nil {
		return nil, err
	}
	r := &Reader{
		desc:    desc,
		rowType: desc.RowType(),
		delim:   ',',
		header:  true,
		nullTok: "",
		colIdx:  map[string]int{},
	}
	r.state.Store(&fileState{data: data, mtime: fi.ModTime(), pm: NewPosMap()})
	if d := desc.Option("delim", ","); len(d) == 1 {
		r.delim = d[0]
	}
	if desc.Option("header", "true") == "false" {
		r.header = false
	}
	r.nullTok = desc.Option("null", "")
	if desc.Option("onerror", "skip") == "fail" {
		r.policy = FailOnBadRows
	}
	for i, a := range r.rowType.Attrs {
		r.colIdx[a.Name] = i
	}
	return r, nil
}

// Name implements algebra.Source.
func (r *Reader) Name() string { return r.desc.Name }

// PosMap exposes the positional map (for the optimizer's cost model and
// the experiments). It belongs to the current file generation; Refresh
// replaces it wholesale.
func (r *Reader) PosMap() *PosMap { return r.state.Load().pm }

// StatsSnapshot returns a copy of the counters.
func (r *Reader) StatsSnapshot() map[string]int64 {
	return map[string]int64{
		"full_scans":       r.stats.FullScans.Load(),
		"posmap_scans":     r.stats.PosmapScans.Load(),
		"fields_tokenized": r.stats.FieldsTokenized.Load(),
		"fields_jumped":    r.stats.FieldsJumped.Load(),
		"rows_skipped":     r.stats.RowsSkipped.Load(),
		"bytes_read":       r.stats.BytesRead.Load(),
		"builds":           r.stats.Builds.Load(),
		"build_nanos":      r.stats.BuildNanos.Load(),
	}
}

// BuildStats returns the cumulative count and wall time of tokenizing
// first-touch builds. The engine's tracer diffs it around a scan to
// attribute positional-map construction to the query that paid for it.
func (r *Reader) BuildStats() (builds, nanos int64) {
	return r.stats.Builds.Load(), r.stats.BuildNanos.Load()
}

// SizeBytes returns the raw file size.
func (r *Reader) SizeBytes() int64 { return int64(len(r.state.Load().data)) }

// SetInvalidateHook registers a callback fired when Refresh drops state.
func (r *Reader) SetInvalidateHook(fn func()) { r.onInvalidate = fn }

// Refresh re-checks the file; if it changed, the data is re-read and all
// auxiliary structures are dropped (paper §2.1: "Updates to the underlying
// files result in dropping the auxiliary structures affected").
func (r *Reader) Refresh() (changed bool, err error) {
	st := r.state.Load()
	fi, err := os.Stat(r.desc.Path)
	if err != nil {
		return false, err
	}
	if fi.ModTime().Equal(st.mtime) && fi.Size() == int64(len(st.data)) {
		return false, nil
	}
	data, err := os.ReadFile(r.desc.Path)
	if err != nil {
		return false, err
	}
	// A new generation with a fresh (empty) positional map; scans
	// holding the old generation keep a consistent data+map pair.
	r.state.Store(&fileState{data: data, mtime: fi.ModTime(), pm: NewPosMap()})
	if r.onInvalidate != nil {
		r.onInvalidate()
	}
	return true, nil
}

// Iterate implements algebra.Source: it streams one record per CSV row,
// containing only the requested fields (all schema fields when fields is
// empty). The first scan tokenizes rows fully and installs row starts plus
// the touched columns in the positional map; subsequent scans jump.
func (r *Reader) Iterate(fields []string, yield func(values.Value) error) error {
	cols, err := r.resolveFields(fields)
	if err != nil {
		return err
	}
	st := r.state.Load()
	if snap := st.pm.Snapshot(); len(snap.Rows) > 0 && snap.HasCols(cols) {
		return r.iteratePosmap(st, &snap, cols, yield)
	}
	return r.iterateFull(st, cols, yield)
}

// IterateRow reads a single row by index through the positional map
// (PathRowID access). It requires a prior full scan.
func (r *Reader) IterateRow(rowIdx int, fields []string) (values.Value, error) {
	st := r.state.Load()
	if !st.pm.HasRows() {
		// Force the row index build with a cheap pass that tokenizes
		// nothing but newlines.
		if err := r.buildRowIndex(st); err != nil {
			return values.Null, err
		}
	}
	if rowIdx < 0 || rowIdx >= st.pm.NumRows() {
		return values.Null, fmt.Errorf("rawcsv: row %d out of range", rowIdx)
	}
	cols, err := r.resolveFields(fields)
	if err != nil {
		return values.Null, err
	}
	start := st.pm.Row(rowIdx)
	line := lineAt(st.data, start)
	rec, ok := r.parseRow(line, cols, nil, nil)
	if !ok {
		return values.Null, fmt.Errorf("rawcsv: row %d is malformed", rowIdx)
	}
	return rec, nil
}

func (r *Reader) resolveFields(fields []string) ([]int, error) {
	if len(fields) == 0 {
		cols := make([]int, len(r.rowType.Attrs))
		for i := range cols {
			cols[i] = i
		}
		return cols, nil
	}
	cols := make([]int, len(fields))
	for i, f := range fields {
		j, ok := r.colIdx[f]
		if !ok {
			return nil, fmt.Errorf("rawcsv: %s has no attribute %q", r.desc.Name, f)
		}
		cols[i] = j
	}
	return cols, nil
}

// lineAt returns the line starting at offset (without trailing newline).
func lineAt(data []byte, off int64) []byte {
	end := bytes.IndexByte(data[off:], '\n')
	if end < 0 {
		return data[off:]
	}
	return data[off : off+int64(end)]
}

// buildRowIndex records row starts without tokenizing fields.
func (r *Reader) buildRowIndex(st *fileState) error {
	var rows []int64
	off := int64(0)
	first := true
	for off < int64(len(st.data)) {
		end := bytes.IndexByte(st.data[off:], '\n')
		var next int64
		if end < 0 {
			next = int64(len(st.data))
		} else {
			next = off + int64(end) + 1
		}
		if first && r.header {
			first = false
		} else {
			if next-off > 1 || (next-off == 1 && st.data[off] != '\n') {
				rows = append(rows, off)
			}
			first = false
		}
		off = next
	}
	st.pm.SetRows(rows)
	r.stats.BytesRead.Add(int64(len(st.data)))
	return nil
}

// iterateFull tokenizes every row, yielding projected records and
// populating the positional map for the touched columns as a side effect.
func (r *Reader) iterateFull(st *fileState, cols []int, yield func(values.Value) error) error {
	r.stats.FullScans.Add(1)
	buildRows := !st.pm.HasRows()
	var rowStarts []int64
	colStarts := make(map[int][]int32, len(cols))
	colEnds := make(map[int][]int32, len(cols))
	for _, j := range cols {
		if !st.pm.HasCol(j) {
			colStarts[j] = nil
			colEnds[j] = nil
		}
	}

	recordCols := make([]int, 0, len(colStarts))
	for j := range colStarts {
		recordCols = append(recordCols, j)
	}

	off := int64(0)
	first := true
	rowIdx := 0
	scratch := make([]fieldSpan, len(recordCols))
	data := st.data
	for off < int64(len(data)) {
		nl := bytes.IndexByte(data[off:], '\n')
		var next int64
		var lineEnd int64
		if nl < 0 {
			next = int64(len(data))
			lineEnd = next
		} else {
			next = off + int64(nl) + 1
			lineEnd = next - 1
		}
		line := data[off:lineEnd]
		if first && r.header {
			first = false
			off = next
			continue
		}
		first = false
		if len(line) == 0 {
			off = next
			continue
		}
		// The row index covers every data line — a row malformed for this
		// column set is still a row (other columns may parse fine), so it
		// is indexed even when skipped from the yield.
		if buildRows {
			rowStarts = append(rowStarts, off)
		}
		rec, ok := r.parseRow(line, cols, recordCols, scratch)
		if !ok {
			r.stats.RowsSkipped.Add(1)
			if r.policy == FailOnBadRows {
				return fmt.Errorf("rawcsv: %s: malformed row at byte %d", r.desc.Name, off)
			}
			off = next
			continue
		}
		// Commit positions only after the whole row parsed cleanly, so a
		// malformed row can never leave a partial entry in the map.
		for i, j := range recordCols {
			colStarts[j] = append(colStarts[j], scratch[i].start)
			colEnds[j] = append(colEnds[j], scratch[i].end)
		}
		if err := yield(rec); err != nil {
			return err
		}
		rowIdx++
		off = next
	}
	r.stats.BytesRead.Add(int64(len(data)))
	if buildRows {
		st.pm.SetRows(rowStarts)
	}
	// Install a column only when its offsets cover every indexed row —
	// misaligned offsets would silently corrupt later posmap jumps. (The
	// record path records spans only for fully-parsed rows, so any
	// skipped row blocks installation; the batch scans are finer-grained.)
	for j, starts := range colStarts {
		if len(starts) == st.pm.NumRows() {
			st.pm.SetCol(j, starts, colEnds[j])
		}
	}
	return nil
}

// fieldSpan is the [start,end) byte range of a field within its row.
type fieldSpan struct{ start, end int32 }

// parseRow tokenizes a row, converting only the requested columns.
// recordCols lists columns whose spans must be captured into scratch
// (parallel to recordCols). ok=false flags a malformed row (wrong arity or
// conversion failure); scratch contents are then meaningless.
func (r *Reader) parseRow(line []byte, cols, recordCols []int, scratch []fieldSpan) (values.Value, bool) {
	need := make(map[int]int, len(cols)) // col -> position in output
	maxCol := -1
	for i, j := range cols {
		need[j] = i
		if j > maxCol {
			maxCol = j
		}
	}
	recIdx := make(map[int]int, len(recordCols))
	for i, j := range recordCols {
		recIdx[j] = i
		if j > maxCol {
			maxCol = j
		}
	}
	fields := make([]values.Field, len(cols))
	found := 0
	col := 0
	start := 0
	for i := 0; i <= len(line); i++ {
		if i != len(line) && line[i] != r.delim {
			continue
		}
		if col < len(r.rowType.Attrs) {
			if k, ok := recIdx[col]; ok {
				scratch[k] = fieldSpan{start: int32(start), end: int32(i)}
			}
			if outIdx, ok := need[col]; ok {
				r.stats.FieldsTokenized.Add(1)
				v, ok := r.convert(col, line[start:i])
				if !ok {
					return values.Null, false
				}
				fields[outIdx] = values.Field{Name: r.rowType.Attrs[col].Name, Val: v}
				found++
			}
		}
		col++
		start = i + 1
		if col > maxCol {
			break
		}
	}
	if found < len(cols) {
		// Row has fewer fields than the needed columns.
		return values.Null, false
	}
	return values.NewRecord(fields...), true
}

// iteratePosmap serves a scan entirely from recorded positions: no row
// tokenization, just direct jumps to the needed fields. It reads the
// positional map through a snapshot taken once per scan — the hot loop
// never touches the map's lock.
func (r *Reader) iteratePosmap(st *fileState, snap *Snapshot, cols []int, yield func(values.Value) error) error {
	r.stats.PosmapScans.Add(1)
	data := st.data
	n := len(snap.Rows)
	type colRef struct {
		out    int
		starts []int32
		ends   []int32
		name   string
		col    int
	}
	refs := make([]colRef, len(cols))
	for i, j := range cols {
		refs[i] = colRef{out: i, starts: snap.Cols[j], ends: snap.Ends[j], name: r.rowType.Attrs[j].Name, col: j}
	}
	for row := 0; row < n; row++ {
		base := snap.Rows[row]
		fields := make([]values.Field, len(cols))
		bad := false
		for _, ref := range refs {
			s := base + int64(ref.starts[row])
			e := base + int64(ref.ends[row])
			r.stats.FieldsJumped.Add(1)
			v, ok := r.convert(ref.col, data[s:e])
			if !ok {
				bad = true
				break
			}
			fields[ref.out] = values.Field{Name: ref.name, Val: v}
		}
		if bad {
			r.stats.RowsSkipped.Add(1)
			if r.policy == FailOnBadRows {
				return fmt.Errorf("rawcsv: %s: malformed row %d", r.desc.Name, row)
			}
			continue
		}
		if err := yield(values.NewRecord(fields...)); err != nil {
			return err
		}
	}
	return nil
}

// convert parses the raw bytes of column col per its schema type. It
// allocates only for string columns (the value must outlive the scan);
// numeric and boolean conversions work on the bytes in place.
func (r *Reader) convert(col int, raw []byte) (values.Value, bool) {
	if string(raw) == r.nullTok { // comparison only: no allocation
		return values.Null, true
	}
	switch r.rowType.Attrs[col].Type.Kind {
	case sdg.TInt:
		n, ok := parseIntBytes(raw)
		if !ok {
			return values.Null, false
		}
		return values.NewInt(n), true
	case sdg.TFloat:
		f, ok := parseFloatBytes(raw)
		if !ok {
			return values.Null, false
		}
		return values.NewFloat(f), true
	case sdg.TBool:
		switch string(raw) {
		case "true", "TRUE", "1", "t":
			return values.True, true
		case "false", "FALSE", "0", "f":
			return values.False, true
		}
		return values.Null, false
	default:
		return values.NewString(string(raw)), true
	}
}

// parseIntBytes parses a base-10 int64 from raw bytes with the same
// accepted syntax as strconv.ParseInt(s, 10, 64), without converting to a
// string first.
func parseIntBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	switch b[0] {
	case '+':
		b = b[1:]
	case '-':
		neg = true
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		d := c - '0'
		if d > 9 {
			return 0, false
		}
		if n > (math.MaxUint64-uint64(d))/10 {
			return 0, false
		}
		n = n*10 + uint64(d)
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n), true
	}
	if n > 1<<63-1 {
		return 0, false
	}
	return int64(n), true
}

// parseFloatBytes parses a float64 from raw bytes without copying them
// into a string: the unsafe view never escapes strconv, and the file
// buffer is only ever replaced wholesale, never mutated in place.
func parseFloatBytes(b []byte) (float64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	f, err := strconv.ParseFloat(unsafe.String(&b[0], len(b)), 64)
	return f, err == nil
}

// IterateSlots is the specialized access path used by the JIT executor:
// it fills a reused slot buffer (one slot per requested field, in request
// order) with converted values, skipping record construction entirely.
// When the positional map covers the fields it jumps straight to their
// bytes; otherwise it falls back to a full scan (which installs the map
// for next time).
func (r *Reader) IterateSlots(fields []string, yield func([]values.Value) error) error {
	cols, err := r.resolveFields(fields)
	if err != nil {
		return err
	}
	st := r.state.Load()
	if snap := st.pm.Snapshot(); len(snap.Rows) > 0 && snap.HasCols(cols) {
		r.stats.PosmapScans.Add(1)
		data := st.data
		n := len(snap.Rows)
		starts := make([][]int32, len(cols))
		ends := make([][]int32, len(cols))
		for i, j := range cols {
			starts[i], ends[i] = snap.Cols[j], snap.Ends[j]
		}
		buf := make([]values.Value, len(cols))
		for row := 0; row < n; row++ {
			base := snap.Rows[row]
			bad := false
			for i, j := range cols {
				s := base + int64(starts[i][row])
				e := base + int64(ends[i][row])
				r.stats.FieldsJumped.Add(1)
				v, ok := r.convert(j, data[s:e])
				if !ok {
					bad = true
					break
				}
				buf[i] = v
			}
			if bad {
				r.stats.RowsSkipped.Add(1)
				if r.policy == FailOnBadRows {
					return fmt.Errorf("rawcsv: %s: malformed row %d", r.desc.Name, row)
				}
				continue
			}
			if err := yield(buf); err != nil {
				return err
			}
		}
		return nil
	}
	// Full scan fallback: reuse the record path and explode. Field order
	// in the emitted record matches the request, so extraction is
	// positional.
	buf := make([]values.Value, len(cols))
	return r.iterateFull(st, cols, func(v values.Value) error {
		for i, f := range v.Fields() {
			buf[i] = f.Val
		}
		return yield(buf)
	})
}

// NumRows returns the row count, building the row index if needed.
func (r *Reader) NumRows() (int, error) {
	st := r.state.Load()
	if !st.pm.HasRows() {
		if err := r.buildRowIndex(st); err != nil {
			return 0, err
		}
	}
	return st.pm.NumRows(), nil
}
