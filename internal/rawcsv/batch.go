package rawcsv

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"vida/internal/faultinject"
	"vida/internal/sdg"
	"vida/internal/values"
	"vida/internal/vec"
)

// This file implements the vectorized access path of the CSV plugin: the
// JIT executor's BatchSource and RangeBatchSource contracts. Once the
// positional map covers the requested columns, a scan fills whole column
// vectors per batch — int/float/string fields parse straight from the
// file bytes into typed slices, with no values.Value boxing anywhere on
// the path — and arbitrary row ranges can be served concurrently, which
// is what the JIT's morsel-parallel scheduler partitions over.

// colTag maps a schema kind to its batch column representation.
func colTag(k sdg.TypeKind) vec.Tag {
	switch k {
	case sdg.TInt:
		return vec.Int64
	case sdg.TFloat:
		return vec.Float64
	case sdg.TString:
		return vec.Str
	default:
		return vec.Boxed // bools and exotic kinds stay boxed
	}
}

// rowConverter is the shared per-row conversion scratch of the
// vectorized scan loops (full, anchored and range): the caller fills
// raws — one byte slice per requested column — then convert parses them
// per the column tags and commit appends the row to a batch. A row is
// committed only when every field converted, so malformed rows never
// leave partial column entries.
type rowConverter struct {
	rd     *Reader
	cols   []int
	tags   []vec.Tag
	raws   [][]byte
	ints   []int64
	floats []float64
	strs   []string
	boxed  []values.Value
	nulls  []bool
}

func (r *Reader) newRowConverter(cols []int, tags []vec.Tag) *rowConverter {
	return &rowConverter{
		rd: r, cols: cols, tags: tags,
		raws:   make([][]byte, len(cols)),
		ints:   make([]int64, len(cols)),
		floats: make([]float64, len(cols)),
		strs:   make([]string, len(cols)),
		boxed:  make([]values.Value, len(cols)),
		nulls:  make([]bool, len(cols)),
	}
}

// convert parses the filled raws; false flags a malformed row (the
// scratch is then meaningless and nothing may be committed).
func (c *rowConverter) convert() bool {
	for i, j := range c.cols {
		raw := c.raws[i]
		if string(raw) == c.rd.nullTok { // comparison only: no allocation
			c.nulls[i] = true
			continue
		}
		c.nulls[i] = false
		switch c.tags[i] {
		case vec.Int64:
			v, ok := parseIntBytes(raw)
			if !ok {
				return false
			}
			c.ints[i] = v
		case vec.Float64:
			v, ok := parseFloatBytes(raw)
			if !ok {
				return false
			}
			c.floats[i] = v
		case vec.Str:
			c.strs[i] = string(raw)
		default:
			v, ok := c.rd.convert(j, raw)
			if !ok {
				return false
			}
			c.boxed[i] = v
		}
	}
	return true
}

// commit appends the converted row across the batch's columns and
// advances its row count (valid only after convert returned true).
func (c *rowConverter) commit(b *vec.Batch) {
	for i := range c.cols {
		col := &b.Cols[i]
		if c.nulls[i] {
			col.AppendNull()
			continue
		}
		switch c.tags[i] {
		case vec.Int64:
			col.AppendInt(c.ints[i])
		case vec.Float64:
			col.AppendFloat(c.floats[i])
		case vec.Str:
			col.AppendStr(c.strs[i])
		default:
			col.AppendValue(c.boxed[i])
		}
	}
	b.N++
}

// IterateBatches implements the JIT's BatchSource contract. With the
// positional map built it runs the typed vectorized scan over all rows;
// on first touch it falls back to the tokenizing full scan (which
// installs the map as a side effect), packing slot rows into boxed
// batches.
func (r *Reader) IterateBatches(fields []string, batchSize int, yield func(*vec.Batch) error) error {
	cols, err := r.resolveFields(fields)
	if err != nil {
		return err
	}
	if batchSize <= 0 {
		batchSize = vec.DefaultBatchSize
	}
	st := r.state.Load()
	if scan, n, ok := r.openRangeCols(st, cols); ok {
		return scan(0, n, batchSize, yield)
	}
	// Cold or partially mapped: single-flight the tokenizing build.
	// Concurrent first touches of the same columns wait here, then jump
	// through the positional map the winner installed instead of each
	// re-tokenizing the file. (Within one query a source is never
	// scanned re-entrantly mid-scan — build sides materialize fully
	// before probes — so the lock cannot self-deadlock.)
	r.buildMu.Lock()
	st = r.state.Load() // the build we waited for may be a newer generation
	if scan, n, ok := r.openRangeCols(st, cols); ok {
		r.buildMu.Unlock()
		return scan(0, n, batchSize, yield)
	}
	defer r.buildMu.Unlock()
	yield = injectCSVFaults(yield)
	// This scan pays the tokenizing build (it installs the positional map
	// as a side effect); record its cost so tracing can attribute it.
	start := time.Now()
	defer func() {
		r.stats.Builds.Add(1)
		r.stats.BuildNanos.Add(int64(time.Since(start)))
	}()
	if snap := st.pm.Snapshot(); len(snap.Rows) > 0 {
		return r.iterateAnchoredBatches(st, &snap, cols, batchSize, yield)
	}
	return r.iterateFullBatches(st, cols, batchSize, yield)
}

// injectCSVFaults interposes the chaos points on a batch yield:
// CSVSlowRead (delay faults — a slow disk mid-scan) and CSVRead (read
// errors — a truncated file, an I/O fault) fire once per delivered
// batch. Both are single disarmed atomic loads in production.
func injectCSVFaults(yield func(*vec.Batch) error) func(*vec.Batch) error {
	return func(b *vec.Batch) error {
		if err := faultinject.Hit(faultinject.CSVSlowRead); err != nil {
			return err
		}
		if err := faultinject.Hit(faultinject.CSVRead); err != nil {
			return err
		}
		return yield(b)
	}
}

// iterateAnchoredBatches serves a scan whose rows are indexed but whose
// columns are only partly mapped: mapped columns jump straight to their
// bytes, unmapped ones tokenize forward from the nearest anchor — the
// nearest mapped column to their left, or a just-parsed requested column
// — instead of from the row start (the positional map's "distance" term,
// paper §5 / NoDB). Newly located columns are installed in the map, so
// the next scan jumps everywhere.
func (r *Reader) iterateAnchoredBatches(st *fileState, snap *Snapshot, cols []int, batchSize int, yield func(*vec.Batch) error) error {
	r.stats.PosmapScans.Add(1)
	type colPlan struct {
		col          int
		out          int     // position in cols / batch
		starts       []int32 // non-nil: mapped, jump directly
		ends         []int32
		anchorStarts []int32 // for unmapped: nearest mapped anchor's starts (nil = row start)
		anchorCol    int     // field index of that anchor (0 with nil starts = row start)
	}
	// Process columns in ascending file order so the tokenizing cursor
	// only ever moves forward within a row.
	order := make([]int, len(cols))
	for i := range order {
		order[i] = i
	}
	sortByCol(order, cols)
	plans := make([]colPlan, 0, len(cols))
	record := make([]bool, len(cols))
	for _, i := range order {
		j := cols[i]
		p := colPlan{col: j, out: i}
		if s := snap.Cols[j]; s != nil {
			p.starts, p.ends = s, snap.Ends[j]
		} else {
			record[i] = true
			best := -1
			for a, s := range snap.Cols {
				if a < j && a > best && s != nil {
					best = a
				}
			}
			if best >= 0 {
				p.anchorCol, p.anchorStarts = best, snap.Cols[best]
			}
		}
		plans = append(plans, p)
	}
	tags := make([]vec.Tag, len(cols))
	for i, j := range cols {
		tags[i] = colTag(r.rowType.Attrs[j].Type.Kind)
	}
	b := vec.NewTyped(tags, min(batchSize, len(snap.Rows)))

	newStarts := make([][]int32, len(cols))
	newEnds := make([][]int32, len(cols))
	spanS := make([]int32, len(cols))
	spanE := make([]int32, len(cols))
	rc := r.newRowConverter(cols, tags)

	data := st.data
	delim := r.delim
	committed := 0
	tokenized := 0
	for row := 0; row < len(snap.Rows); row++ {
		base := snap.Rows[row]
		// Bound the row by its own newline (indexed rows can skip
		// malformed or blank lines, so the next row start is not enough).
		limit := int64(len(data))
		if row+1 < len(snap.Rows) {
			limit = snap.Rows[row+1]
		}
		lineEnd := limit
		if nl := indexByte(data[base:limit], '\n'); nl >= 0 {
			lineEnd = base + int64(nl)
		}
		bad := false
		// Locate every requested column's span, advancing a forward-only
		// cursor for the unmapped ones.
		curField, curOff := 0, base
		for _, p := range plans {
			if p.starts != nil {
				spanS[p.out] = p.starts[row]
				spanE[p.out] = p.ends[row]
				continue
			}
			f, off := curField, curOff
			if p.anchorStarts != nil && p.anchorCol >= f {
				f, off = p.anchorCol, base+int64(p.anchorStarts[row])
			}
			for f < p.col {
				d := indexByte(data[off:lineEnd], delim)
				if d < 0 {
					bad = true // row ends before the column
					break
				}
				off += int64(d) + 1
				f++
				tokenized++
			}
			if bad {
				break
			}
			end := off
			for end < lineEnd && data[end] != delim {
				end++
			}
			spanS[p.out] = int32(off - base)
			spanE[p.out] = int32(end - base)
			curField, curOff = p.col, off
			tokenized++
		}
		if !bad {
			// Spans are positional: record them for the map even when a
			// value below fails to convert (the row is then skipped from
			// the yield, not from the index).
			for i := range cols {
				if record[i] {
					newStarts[i] = append(newStarts[i], spanS[i])
					newEnds[i] = append(newEnds[i], spanE[i])
				}
				rc.raws[i] = data[base+int64(spanS[i]) : base+int64(spanE[i])]
			}
			bad = !rc.convert()
		}
		if bad {
			r.stats.RowsSkipped.Add(1)
			if r.policy == FailOnBadRows {
				return fmt.Errorf("rawcsv: %s: malformed row %d", r.desc.Name, row)
			}
			continue
		}
		rc.commit(b)
		committed++
		if b.N >= batchSize {
			if err := yield(b); err != nil {
				return err
			}
			b.Reset()
		}
	}
	nMapped := 0
	for _, p := range plans {
		if p.starts != nil {
			nMapped++
		}
	}
	r.stats.FieldsTokenized.Add(int64(tokenized))
	r.stats.FieldsJumped.Add(int64(committed * nMapped))
	// Install only columns whose spans cover every indexed row.
	for i, j := range cols {
		if record[i] && len(newStarts[i]) == len(snap.Rows) {
			st.pm.SetCol(j, newStarts[i], newEnds[i])
		}
	}
	if b.N > 0 {
		return yield(b)
	}
	return nil
}

// sortByCol orders index positions by ascending schema column.
func sortByCol(order, cols []int) {
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && cols[order[k]] < cols[order[k-1]]; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
}

// iterateFullBatches is the vectorized first-touch scan: it tokenizes
// every row once, converts the requested columns straight into typed
// column vectors (no record construction, no per-row maps) and installs
// row starts plus the touched columns in the positional map as a side
// effect — after which openRangeCols serves the same fields with direct
// jumps.
func (r *Reader) iterateFullBatches(st *fileState, cols []int, batchSize int, yield func(*vec.Batch) error) error {
	r.stats.FullScans.Add(1)
	nAttrs := len(r.rowType.Attrs)
	outPos := make([]int, nAttrs) // schema col -> position in cols, -1 when unused
	for i := range outPos {
		outPos[i] = -1
	}
	maxCol := 0
	for i, j := range cols {
		outPos[j] = i
		if j > maxCol {
			maxCol = j
		}
	}
	tags := make([]vec.Tag, len(cols))
	for i, j := range cols {
		tags[i] = colTag(r.rowType.Attrs[j].Type.Kind)
	}
	b := vec.NewTyped(tags, min(batchSize, 128))

	// Positional-map harvest: row starts (when absent) and per-row spans
	// of every requested column not yet mapped.
	buildRows := !st.pm.HasRows()
	var rowStarts []int64
	record := make([]bool, len(cols))
	colStarts := make([][]int32, len(cols))
	colEnds := make([][]int32, len(cols))
	for i, j := range cols {
		record[i] = !st.pm.HasCol(j)
	}

	// Per-row scratch: spans plus converted payloads; a row commits to the
	// batch and the positional map only when every field converts cleanly.
	spanS := make([]int32, len(cols))
	spanE := make([]int32, len(cols))
	rc := r.newRowConverter(cols, tags)

	off := int64(0)
	first := true
	committed := 0
	data := st.data
	for off < int64(len(data)) {
		nl := int64(-1)
		if i := indexByte(data[off:], '\n'); i >= 0 {
			nl = off + int64(i)
		}
		var next, lineEnd int64
		if nl < 0 {
			next = int64(len(data))
			lineEnd = next
		} else {
			next = nl + 1
			lineEnd = nl
		}
		line := data[off:lineEnd]
		if first && r.header {
			first = false
			off = next
			continue
		}
		first = false
		if len(line) == 0 {
			off = next
			continue
		}
		// Tokenize up to the highest requested column.
		found := 0
		col, start := 0, 0
		for i := 0; i <= len(line); i++ {
			if i != len(line) && line[i] != r.delim {
				continue
			}
			if col < nAttrs {
				if p := outPos[col]; p >= 0 {
					spanS[p], spanE[p] = int32(start), int32(i)
					found++
				}
			}
			col++
			start = i + 1
			if col > maxCol {
				break
			}
		}
		// The row index covers every data line — a row malformed for this
		// column set is still a row (other columns may parse fine), so it
		// is indexed but not yielded. Spans are positional and recorded
		// whenever tokenization found the field, independent of whether
		// its value converts.
		if buildRows {
			rowStarts = append(rowStarts, off)
		}
		arityBad := found < len(cols)
		if !arityBad {
			for i := range cols {
				if record[i] {
					colStarts[i] = append(colStarts[i], spanS[i])
					colEnds[i] = append(colEnds[i], spanE[i])
				}
			}
		}
		bad := arityBad
		if !bad {
			for i := range cols {
				rc.raws[i] = line[spanS[i]:spanE[i]]
			}
			bad = !rc.convert()
		}
		if bad {
			r.stats.RowsSkipped.Add(1)
			if r.policy == FailOnBadRows {
				return fmt.Errorf("rawcsv: %s: malformed row at byte %d", r.desc.Name, off)
			}
			off = next
			continue
		}
		rc.commit(b)
		committed++
		if b.N >= batchSize {
			if err := yield(b); err != nil {
				return err
			}
			b.Reset()
		}
		off = next
	}
	r.stats.BytesRead.Add(int64(len(data)))
	r.stats.FieldsTokenized.Add(int64(committed * len(cols)))
	if buildRows {
		st.pm.SetRows(rowStarts)
	}
	// Install a column only when its spans cover every indexed row —
	// misaligned offsets would silently corrupt later posmap jumps.
	for i, j := range cols {
		if record[i] && len(colStarts[i]) == st.pm.NumRows() {
			st.pm.SetCol(j, colStarts[i], colEnds[i])
		}
	}
	if b.N > 0 {
		return yield(b)
	}
	return nil
}

func indexByte(b []byte, c byte) int {
	return bytes.IndexByte(b, c)
}

// OpenRange implements the JIT's RangeBatchSource contract: ok only when
// the positional map already covers the requested columns (a cold file
// must be tokenized sequentially first). The returned scan is safe for
// concurrent calls over disjoint ranges — it reads a one-time snapshot of
// the positional map and each call allocates its own batch.
func (r *Reader) OpenRange(fields []string) (func(lo, hi, batchSize int, yield func(*vec.Batch) error) error, int, bool) {
	cols, err := r.resolveFields(fields)
	if err != nil {
		return nil, 0, false
	}
	return r.openRangeCols(r.state.Load(), cols)
}

func (r *Reader) openRangeCols(st *fileState, cols []int) (func(lo, hi, batchSize int, yield func(*vec.Batch) error) error, int, bool) {
	snap := st.pm.Snapshot()
	if len(snap.Rows) == 0 || !snap.HasCols(cols) {
		return nil, 0, false
	}
	starts := make([][]int32, len(cols))
	ends := make([][]int32, len(cols))
	tags := make([]vec.Tag, len(cols))
	for i, j := range cols {
		starts[i], ends[i] = snap.Cols[j], snap.Ends[j]
		tags[i] = colTag(r.rowType.Attrs[j].Type.Kind)
	}
	data := st.data
	rows := snap.Rows
	var once sync.Once // stats count one logical scan, however many morsels
	scan := func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
		once.Do(func() { r.stats.PosmapScans.Add(1) })
		yield = injectCSVFaults(yield)
		if batchSize <= 0 {
			batchSize = vec.DefaultBatchSize
		}
		capRows := hi - lo
		if capRows > batchSize {
			capRows = batchSize
		}
		b := vec.NewTyped(tags, capRows)
		// Per-row scratch, allocated per scan call so concurrent morsels
		// never share it; a row commits to the column vectors only after
		// every requested field converted.
		rc := r.newRowConverter(cols, tags)
		for row := lo; row < hi; row++ {
			base := rows[row]
			for i := range cols {
				rc.raws[i] = data[base+int64(starts[i][row]) : base+int64(ends[i][row])]
			}
			if !rc.convert() {
				r.stats.RowsSkipped.Add(1)
				if r.policy == FailOnBadRows {
					return fmt.Errorf("rawcsv: %s: malformed row %d", r.desc.Name, row)
				}
				continue
			}
			rc.commit(b)
			if b.N >= batchSize {
				if err := yield(b); err != nil {
					return err
				}
				b.Reset()
			}
		}
		r.stats.FieldsJumped.Add(int64((hi - lo) * len(cols)))
		if b.N > 0 {
			return yield(b)
		}
		return nil
	}
	return scan, len(rows), true
}
