package rawcsv

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"vida/internal/sdg"
	"vida/internal/values"
	"vida/internal/vec"
)

func batchTestReader(t *testing.T, content string) *Reader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "b.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "name", Type: sdg.String},
		sdg.Attr{Name: "score", Type: sdg.Float},
		sdg.Attr{Name: "flag", Type: sdg.Bool},
	))
	desc := sdg.DefaultDescription("B", sdg.FormatCSV, path, schema)
	r, err := Open(desc)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// collectBatches drains IterateBatches, boxing every row for comparison.
func collectBatches(t *testing.T, r *Reader, fields []string, batchSize int) ([][]values.Value, []int) {
	t.Helper()
	var rows [][]values.Value
	var sizes []int
	err := r.IterateBatches(fields, batchSize, func(b *vec.Batch) error {
		sizes = append(sizes, b.Len())
		for k := 0; k < b.Len(); k++ {
			i := b.Index(k)
			row := make([]values.Value, len(b.Cols))
			for c := range b.Cols {
				row[c] = b.Cols[c].Value(i)
			}
			rows = append(rows, row)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, sizes
}

func TestIterateBatchesTypedAndBoundaries(t *testing.T) {
	content := "id,name,score,flag\n" +
		"1,ada,1.5,true\n" +
		"2,bob,2.5,false\n" +
		"3,eve,3.5,true\n" +
		"4,dan,4.5,false\n" +
		"5,zoe,5.5,true\n"
	r := batchTestReader(t, content)
	// Cold pass (tokenizing full scan) then warm pass (posmap jumps):
	// both must chunk [2,2,1] at batchSize 2 and agree on every value.
	for pass := 0; pass < 2; pass++ {
		rows, sizes := collectBatches(t, r, []string{"id", "name", "score", "flag"}, 2)
		if len(rows) != 5 {
			t.Fatalf("pass %d: got %d rows", pass, len(rows))
		}
		if fmt.Sprint(sizes) != "[2 2 1]" {
			t.Fatalf("pass %d: batch sizes %v", pass, sizes)
		}
		if rows[2][0].Int() != 3 || rows[2][1].Str() != "eve" || rows[2][2].Float() != 3.5 || !rows[2][3].Bool() {
			t.Fatalf("pass %d: row 2 = %v", pass, rows[2])
		}
	}
	if r.StatsSnapshot()["posmap_scans"] == 0 {
		t.Fatal("second pass did not use the positional map")
	}
}

func TestIterateBatchesEmptyAndSingle(t *testing.T) {
	empty := batchTestReader(t, "id,name,score,flag\n")
	rows, sizes := collectBatches(t, empty, []string{"id"}, 4)
	if len(rows) != 0 || len(sizes) != 0 {
		t.Fatalf("empty file: rows=%d batches=%d", len(rows), len(sizes))
	}
	single := batchTestReader(t, "id,name,score,flag\n7,solo,9.5,true\n")
	rows, _ = collectBatches(t, single, []string{"id", "score"}, 4)
	if len(rows) != 1 || rows[0][0].Int() != 7 || rows[0][1].Float() != 9.5 {
		t.Fatalf("single row: %v", rows)
	}
}

func TestIterateBatchesNullsAndBadRows(t *testing.T) {
	content := "id,name,score,flag\n" +
		"1,ada,1.5,true\n" +
		",bob,2.5,false\n" + // null id -> typed column null mask
		"oops,eve,3.5,true\n" + // malformed id -> row skipped
		"4,dan,4.5,false\n"
	r := batchTestReader(t, content)
	rows, _ := collectBatches(t, r, []string{"id", "name"}, 8)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (bad row skipped)", len(rows))
	}
	if !rows[1][0].IsNull() || rows[1][1].Str() != "bob" {
		t.Fatalf("null id row = %v", rows[1])
	}
	if got := r.StatsSnapshot()["rows_skipped"]; got != 1 {
		t.Fatalf("rows_skipped = %d", got)
	}
}

// TestAnchoredScan: after a first scan maps columns {0,2}, a scan asking
// for columns {1,3} must serve correct values by tokenizing forward from
// the recorded anchors, and install the new columns in the map.
func TestAnchoredScan(t *testing.T) {
	content := "id,name,score,flag\n" +
		"1,ada,1.5,true\n" +
		"2,bob,2.5,false\n" +
		"3,eve,3.5,true\n"
	r := batchTestReader(t, content)
	if _, sizes := collectBatches(t, r, []string{"id", "score"}, 8); len(sizes) != 1 {
		t.Fatal("seed scan failed")
	}
	if !r.PosMap().HasCol(0) || !r.PosMap().HasCol(2) {
		t.Fatal("seed scan did not install columns 0 and 2")
	}
	rows, _ := collectBatches(t, r, []string{"name", "flag"}, 8)
	want := [][2]string{{"ada", "true"}, {"bob", "false"}, {"eve", "true"}}
	for i, w := range want {
		if rows[i][0].Str() != w[0] || fmt.Sprint(rows[i][1].Bool()) != w[1] {
			t.Fatalf("anchored row %d = %v, want %v", i, rows[i], w)
		}
	}
	if !r.PosMap().HasCol(1) || !r.PosMap().HasCol(3) {
		t.Fatal("anchored scan did not install the new columns")
	}
}

// TestOpenRangeConcurrent splits the row range across goroutines and
// checks the union of batches covers every row exactly once.
func TestOpenRangeConcurrent(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("id,name,score,flag\n")
	for i := 0; i < 257; i++ {
		fmt.Fprintf(&sb, "%d,n%d,%d.5,true\n", i, i, i)
	}
	r := batchTestReader(t, sb.String())
	if rows, _ := collectBatches(t, r, []string{"id"}, 64); len(rows) != 257 {
		t.Fatalf("seed scan rows = %d", len(rows))
	}
	scan, n, ok := r.OpenRange([]string{"id"})
	if !ok || n != 257 {
		t.Fatalf("OpenRange ok=%v n=%d", ok, n)
	}
	const parts = 4
	seen := make([][]int64, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		lo := p * n / parts
		hi := (p + 1) * n / parts
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			_ = scan(lo, hi, 32, func(b *vec.Batch) error {
				for k := 0; k < b.Len(); k++ {
					seen[p] = append(seen[p], b.Cols[0].Value(b.Index(k)).Int())
				}
				return nil
			})
		}(p, lo, hi)
	}
	wg.Wait()
	var all []int64
	for _, s := range seen {
		all = append(all, s...)
	}
	if len(all) != 257 {
		t.Fatalf("range union has %d rows", len(all))
	}
	for p := 0; p < parts; p++ {
		lo := p * 257 / parts
		for i, v := range seen[p] {
			if v != int64(lo+i) {
				t.Fatalf("part %d row %d = %d, want %d", p, i, v, lo+i)
			}
		}
	}
}

func TestPosMapSnapshot(t *testing.T) {
	m := NewPosMap()
	m.SetRows([]int64{0, 10, 20})
	m.SetCol(1, []int32{2, 2, 2}, []int32{5, 5, 5})
	snap := m.Snapshot()
	if len(snap.Rows) != 3 || !snap.HasCols([]int{1}) || snap.HasCols([]int{0}) {
		t.Fatalf("snapshot state: %+v", snap)
	}
	// Mutating the map afterwards must not disturb the snapshot view.
	m.SetCol(0, []int32{0, 0, 0}, []int32{1, 1, 1})
	m.Drop()
	if len(snap.Rows) != 3 || snap.Cols[1] == nil {
		t.Fatal("snapshot not immune to later map mutations")
	}
}

func TestParseIntBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true}, {"42", 42, true}, {"-7", -7, true}, {"+9", 9, true},
		{"9223372036854775807", 9223372036854775807, true},
		{"-9223372036854775808", -9223372036854775808, true},
		{"9223372036854775808", 0, false},
		{"", 0, false}, {"-", 0, false}, {"1.5", 0, false}, {"x", 0, false},
		{"12 ", 0, false},
	}
	for _, c := range cases {
		got, ok := parseIntBytes([]byte(c.in))
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("parseIntBytes(%q) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestRowIndexIndependentOfScannedColumns is the regression test for a
// latent seed bug the batch fast paths amplified: a row malformed only
// in column A used to be dropped from the shared row index by a scan of
// A, making every later scan of other columns lose that row — and
// column offsets could be installed misaligned against the index. The
// row index must cover every data line; per-scan conversion failures
// only skip yielding.
func TestRowIndexIndependentOfScannedColumns(t *testing.T) {
	content := "id,name,score,flag\n" +
		"1,ada,1.5,true\n" +
		"bad,bob,2.5,false\n" + // malformed id only
		"3,eve,3.5,true\n"
	r := batchTestReader(t, content)
	// Scan id: the malformed row is skipped from the yield but stays in
	// the row index, and id's spans (positional) still cover all rows.
	rows, _ := collectBatches(t, r, []string{"id"}, 8)
	if len(rows) != 2 || r.PosMap().NumRows() != 3 {
		t.Fatalf("id scan: rows=%d indexed=%d, want 2/3", len(rows), r.PosMap().NumRows())
	}
	// Scans of other columns see every row, on the record path...
	var names []string
	if err := r.Iterate([]string{"name"}, func(v values.Value) error {
		f, _ := v.Get("name")
		names = append(names, f.Str())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != "[ada bob eve]" {
		t.Fatalf("record scan names = %v", names)
	}
	// ...and on the batch path (anchored, then posmap-backed).
	for pass := 0; pass < 2; pass++ {
		rows, _ = collectBatches(t, r, []string{"name"}, 8)
		want := []string{"ada", "bob", "eve"}
		for i, w := range want {
			if i >= len(rows) || rows[i][0].Str() != w {
				t.Fatalf("pass %d: batch name scan = %v, want %v", pass, rows, want)
			}
		}
	}
	// The id scan still skips the malformed row on the warm path.
	rows, _ = collectBatches(t, r, []string{"id"}, 8)
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 3 {
		t.Fatalf("warm id scan = %v", rows)
	}
}
