package rawcsv

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// This file persists the per-file auxiliary state across restarts:
//
//   - Generation keys the current file content (a content hash), so
//     spilled cache blocks written against one generation are never
//     trusted for another.
//   - SaveAux/LoadAux write and read a positional-map sidecar. The
//     sidecar is versioned, validated against the file's current
//     mtime+size, and CRC-protected; any mismatch falls back to a
//     fresh first-touch build instead of trusting stale offsets.

var auxMagic = []byte("VAUX")

const auxVersion = 1

var auxCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Generation returns a short hex key for the current file content. Two
// files with identical bytes share a generation regardless of path or
// mtime, which is what lets a regenerated-but-identical demo dataset
// rehydrate spilled cache blocks after a restart.
func (r *Reader) Generation() string {
	st := r.state.Load()
	h := crc32.New(auxCRCTable)
	h.Write(st.data)
	return fmt.Sprintf("%08x-%x", h.Sum32(), len(st.data))
}

// SaveAux writes the current positional map to path (atomically, via
// temp+rename). A map with no recorded rows is not worth persisting and
// saves nothing.
func (r *Reader) SaveAux(path string) error {
	st := r.state.Load()
	snap := st.pm.Snapshot()
	if len(snap.Rows) == 0 {
		return nil
	}
	body := make([]byte, 0, 64+8*len(snap.Rows))
	body = binary.AppendVarint(body, st.mtime.UnixNano())
	body = binary.AppendUvarint(body, uint64(len(st.data)))
	body = binary.AppendUvarint(body, uint64(len(snap.Rows)))
	for _, off := range snap.Rows {
		body = binary.AppendUvarint(body, uint64(off))
	}
	body = binary.AppendUvarint(body, uint64(len(snap.Cols)))
	for j, starts := range snap.Cols {
		ends := snap.Ends[j]
		if len(starts) != len(snap.Rows) || len(ends) != len(snap.Rows) {
			continue // partially built column: skip, rebuild on demand
		}
		body = binary.AppendUvarint(body, uint64(j))
		for i := range starts {
			body = binary.AppendUvarint(body, uint64(uint32(starts[i])))
			body = binary.AppendUvarint(body, uint64(uint32(ends[i])))
		}
	}
	buf := make([]byte, 0, len(auxMagic)+2+len(body)+4)
	buf = append(buf, auxMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, auxVersion)
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, auxCRCTable))

	tmp, err := os.CreateTemp(filepath.Dir(path), ".aux-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadAux installs a previously saved positional map, provided the
// sidecar is intact and still describes the file on disk (same mtime
// and size). Returns false when the sidecar is absent, stale, or
// corrupt — the caller then just rebuilds on first touch; a malformed
// sidecar is also an error so callers can log it.
func (r *Reader) LoadAux(path string) (bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if len(raw) < len(auxMagic)+6 || string(raw[:len(auxMagic)]) != string(auxMagic) {
		return false, fmt.Errorf("rawcsv: %s: not a posmap sidecar", path)
	}
	off := len(auxMagic)
	if v := binary.LittleEndian.Uint16(raw[off:]); v != auxVersion {
		return false, fmt.Errorf("rawcsv: %s: unsupported sidecar version %d", path, v)
	}
	off += 2
	body := raw[off : len(raw)-4]
	if got := binary.LittleEndian.Uint32(raw[len(raw)-4:]); got != crc32.Checksum(body, auxCRCTable) {
		return false, fmt.Errorf("rawcsv: %s: sidecar checksum mismatch", path)
	}

	pos := 0
	uv := func() (uint64, error) {
		v, w := binary.Uvarint(body[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("rawcsv: %s: truncated sidecar", path)
		}
		pos += w
		return v, nil
	}
	mtime, w := binary.Varint(body[pos:])
	if w <= 0 {
		return false, fmt.Errorf("rawcsv: %s: truncated sidecar", path)
	}
	pos += w
	size, err := uv()
	if err != nil {
		return false, err
	}
	st := r.state.Load()
	if st.mtime.UnixNano() != mtime || uint64(len(st.data)) != size {
		return false, nil // file changed since the sidecar was written
	}
	nRows, err := uv()
	if err != nil {
		return false, err
	}
	if nRows > uint64(len(st.data))+1 {
		return false, fmt.Errorf("rawcsv: %s: implausible row count %d", path, nRows)
	}
	rows := make([]int64, nRows)
	for i := range rows {
		v, err := uv()
		if err != nil {
			return false, err
		}
		if v > uint64(len(st.data)) {
			return false, fmt.Errorf("rawcsv: %s: row offset %d out of range", path, v)
		}
		rows[i] = int64(v)
	}
	nCols, err := uv()
	if err != nil {
		return false, err
	}
	if nCols > uint64(len(r.rowType.Attrs)) {
		return false, fmt.Errorf("rawcsv: %s: implausible column count %d", path, nCols)
	}
	type colPair struct {
		j            int
		starts, ends []int32
	}
	var cols []colPair
	for c := uint64(0); c < nCols; c++ {
		j, err := uv()
		if err != nil {
			return false, err
		}
		if j >= uint64(len(r.rowType.Attrs)) {
			return false, fmt.Errorf("rawcsv: %s: column index %d out of range", path, j)
		}
		starts := make([]int32, nRows)
		ends := make([]int32, nRows)
		for i := uint64(0); i < nRows; i++ {
			s, err := uv()
			if err != nil {
				return false, err
			}
			e, err := uv()
			if err != nil {
				return false, err
			}
			starts[i], ends[i] = int32(uint32(s)), int32(uint32(e))
		}
		cols = append(cols, colPair{j: int(j), starts: starts, ends: ends})
	}
	st.pm.SetRows(rows)
	for _, c := range cols {
		st.pm.SetCol(c.j, c.starts, c.ends)
	}
	return true, nil
}
