package core

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// This file implements memory governance: per-query and engine-global
// byte budgets over the places where query execution accumulates
// unbounded state (boxed collection results, retained join build sides,
// streamed-set dedup tables, cache harvests). A query that overruns its
// budget aborts with a typed ErrMemoryBudget error instead of OOM-ing
// the process, and the engine degrades gracefully under global pressure:
// cold-scan cache harvesting is shed first — the query still answers,
// the cache just does not grow — before any query is killed.
//
// Accounting is estimator-based (vec.Batch.MemoryBytes,
// cache.EstimateColBytes and a shallow per-value estimate), charged at
// batch granularity. It bounds the dominant allocators, it does not
// meter every byte.

// ErrMemoryBudget is the sentinel matched by errors.Is for queries
// aborted by memory governance. The concrete error is a
// *MemoryBudgetError carrying the scope and numbers.
var ErrMemoryBudget = errors.New("core: memory budget exceeded")

// MemoryBudgetError reports a query aborted by a memory budget: Scope
// is "query" (this query overran its own limit) or "global" (the engine
// is at its tracked-memory ceiling). The serve layer maps it to 507.
type MemoryBudgetError struct {
	Scope string
	Used  int64
	Limit int64
}

// Error implements error.
func (e *MemoryBudgetError) Error() string {
	return fmt.Sprintf("core: %s memory budget exceeded (%d of %d tracked bytes)", e.Scope, e.Used, e.Limit)
}

// Is matches ErrMemoryBudget.
func (e *MemoryBudgetError) Is(target error) bool { return target == ErrMemoryBudget }

// memGovernor is the engine-global budget: the sum of all live query
// reservations plus in-flight harvest reservations.
type memGovernor struct {
	limit int64 // <=0: unlimited
	used  atomic.Int64
}

// reserve charges delta global bytes, rolling back and failing when the
// ceiling would be crossed.
func (g *memGovernor) reserve(delta int64) error {
	if g.limit <= 0 {
		g.used.Add(delta)
		return nil
	}
	if u := g.used.Add(delta); u > g.limit {
		g.used.Add(-delta)
		return &MemoryBudgetError{Scope: "global", Used: u, Limit: g.limit}
	}
	return nil
}

func (g *memGovernor) release(n int64) { g.used.Add(-n) }

// Reserve and Release export the governor as a cache.MemReserver:
// encoded-tier scans charge their block-decode scratch against the
// global budget for the duration of the scan.
func (g *memGovernor) Reserve(n int64) error { return g.reserve(n) }

// Release implements cache.MemReserver.
func (g *memGovernor) Release(n int64) { g.release(n) }

// harvestPressureNum/Den: above this fraction of the global budget the
// engine is "under pressure" and sheds cache harvesting — the graceful
// step before any query hits the ceiling.
const (
	harvestPressureNum = 3
	harvestPressureDen = 4
)

// underPressure reports whether tracked memory is past the
// harvest-shedding high-water mark.
func (g *memGovernor) underPressure() bool {
	return g.limit > 0 && g.used.Load()*harvestPressureDen >= g.limit*harvestPressureNum
}

// queryMem is one query's reservation ledger. Reserve is handed to the
// JIT as jit.Options.MemReserve and called from the accumulation sites;
// release returns everything to the governor when the query ends
// (success, error or panic). A nil *queryMem reserves nothing.
type queryMem struct {
	gov   *memGovernor
	limit int64 // per-query limit, <=0: unlimited
	used  atomic.Int64
	done  atomic.Bool
}

// newQueryMem builds the per-query ledger, or nil when no budget of
// either scope is configured (the JIT then skips charging entirely).
func (e *Engine) newQueryMem() *queryMem {
	if e.mem.limit <= 0 && e.opts.QueryMemoryBudgetBytes <= 0 {
		return nil
	}
	return &queryMem{gov: &e.mem, limit: e.opts.QueryMemoryBudgetBytes}
}

// Reserve charges delta bytes against the query and global budgets.
// Safe for concurrent calls (morsel workers charge in parallel) and on a
// nil receiver.
func (q *queryMem) Reserve(delta int64) error {
	if q == nil || delta <= 0 {
		return nil
	}
	u := q.used.Add(delta)
	if q.limit > 0 && u > q.limit {
		q.used.Add(-delta)
		return &MemoryBudgetError{Scope: "query", Used: u, Limit: q.limit}
	}
	if err := q.gov.reserve(delta); err != nil {
		q.used.Add(-delta)
		return err
	}
	return nil
}

// reserveFunc returns the charge callback for jit.Options, nil when
// unbudgeted so the hot paths skip the indirection.
func (q *queryMem) reserveFunc() func(int64) error {
	if q == nil {
		return nil
	}
	return q.Reserve
}

// release returns the query's global reservation. Idempotent: the
// producer goroutine and a racing Close may both unwind through it.
func (q *queryMem) release() {
	if q == nil || !q.done.CompareAndSwap(false, true) {
		return
	}
	q.gov.release(q.used.Load())
}

// MemoryStats is the governance slice of the engine stats.
type MemoryStats struct {
	TrackedBytes  int64 // live reservations (queries + harvests)
	BudgetBytes   int64 // global ceiling (0 = unlimited)
	QueryKills    int64 // queries aborted with ErrMemoryBudget
	HarvestSkips  int64 // cache harvests shed under pressure
	UnderPressure bool
}
