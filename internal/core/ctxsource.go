package core

import (
	"context"

	"vida/internal/algebra"
	"vida/internal/jit"
	"vida/internal/sdg"
	"vida/internal/values"
	"vida/internal/vec"
)

// ctxCatalog decorates the engine catalog with cancellation: every
// source it hands out checks the query's context as rows and batches
// stream through, so a cancelled or timed-out query aborts mid-scan —
// including a cold first-touch scan of a large raw file — instead of
// running to completion. It is installed only for cancellable contexts;
// background-context queries keep the undecorated fast path.
type ctxCatalog struct {
	inner jit.SchemaCatalog
	ctx   context.Context
}

// Source implements algebra.Catalog.
func (c ctxCatalog) Source(name string) (algebra.Source, bool) {
	s, ok := c.inner.Source(name)
	if !ok {
		return nil, false
	}
	return &ctxSource{ctx: c.ctx, inner: s}, true
}

// Description implements jit.SchemaCatalog.
func (c ctxCatalog) Description(name string) (*sdg.Description, bool) {
	return c.inner.Description(name)
}

// ctxRowStride bounds how many rows stream between context checks on the
// record/slot paths (batch paths check per batch).
const ctxRowStride = 256

// ctxSource threads context checks into all four scan contracts.
type ctxSource struct {
	ctx   context.Context
	inner algebra.Source
}

// Name implements algebra.Source.
func (s *ctxSource) Name() string { return s.inner.Name() }

// Iterate implements algebra.Source.
func (s *ctxSource) Iterate(fields []string, yield func(values.Value) error) error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	n := 0
	return s.inner.Iterate(fields, func(v values.Value) error {
		if n++; n%ctxRowStride == 0 {
			if err := s.ctx.Err(); err != nil {
				return err
			}
		}
		return yield(v)
	})
}

// IterateSlots implements jit.SlotSource.
func (s *ctxSource) IterateSlots(fields []string, yield func([]values.Value) error) error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	ss, ok := s.inner.(jit.SlotSource)
	if !ok {
		return slotsFromRecords(s, fields, yield)
	}
	n := 0
	return ss.IterateSlots(fields, func(row []values.Value) error {
		if n++; n%ctxRowStride == 0 {
			if err := s.ctx.Err(); err != nil {
				return err
			}
		}
		return yield(row)
	})
}

// IterateBatches implements jit.BatchSource.
func (s *ctxSource) IterateBatches(fields []string, batchSize int, yield func(*vec.Batch) error) error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	bs, ok := s.inner.(jit.BatchSource)
	if !ok {
		return batchesFromSlots(s.IterateSlots, fields, batchSize, yield)
	}
	return bs.IterateBatches(fields, batchSize, func(b *vec.Batch) error {
		if err := s.ctx.Err(); err != nil {
			return err
		}
		return yield(b)
	})
}

// OpenRange implements jit.RangeBatchSource; each morsel's batches check
// the context (the scheduler additionally stops dispatching morsels of a
// done query).
func (s *ctxSource) OpenRange(fields []string) (func(lo, hi, batchSize int, yield func(*vec.Batch) error) error, int, bool) {
	rs, ok := s.inner.(jit.RangeBatchSource)
	if !ok {
		return nil, 0, false
	}
	scan, n, ok := rs.OpenRange(fields)
	if !ok {
		return nil, 0, false
	}
	ctx := s.ctx
	return func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
		return scan(lo, hi, batchSize, func(b *vec.Batch) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return yield(b)
		})
	}, n, true
}
