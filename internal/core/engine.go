// Package core implements the ViDa engine: the catalog of raw data
// sources, the query lifecycle (parse → type-check → normalize →
// translate → optimize → generate/execute), the cache interposition layer
// that makes previously-touched fields nearly free, and the live cost
// model the optimizer consults. This is where the paper's pieces meet:
// "data analysts build databases just-in-time by launching queries as
// opposed to building databases to launch queries" (§2).
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vida/internal/algebra"
	"vida/internal/cache"
	"vida/internal/clean"
	"vida/internal/faultinject"
	"vida/internal/jit"
	"vida/internal/mcl"
	"vida/internal/optimizer"
	"vida/internal/rawarr"
	"vida/internal/rawcsv"
	"vida/internal/rawjson"
	"vida/internal/rawxls"
	"vida/internal/sched"
	"vida/internal/sdg"
	"vida/internal/trace"
	"vida/internal/values"
	"vida/internal/vec"
)

// ErrClosed is returned by queries against a closed engine.
var ErrClosed = errors.New("core: engine closed")

// ExecMode selects the execution engine.
type ExecMode uint8

// The execution modes.
const (
	ModeJIT ExecMode = iota // generated operators (default)
	ModeStatic
	ModeReference
)

// String returns the mode name.
func (m ExecMode) String() string {
	switch m {
	case ModeJIT:
		return "jit"
	case ModeStatic:
		return "static"
	case ModeReference:
		return "reference"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Options configures an Engine.
type Options struct {
	// Mode selects the executor (default ModeJIT).
	Mode ExecMode
	// CacheBudgetBytes bounds the data caches (<=0: unlimited).
	CacheBudgetBytes int64
	// CacheHotBytes bounds the cache's hot (decoded vector) tier; past
	// it, least-recently-used columnar entries are held encoded in
	// memory and decoded per block on demand (<=0: never encode).
	CacheHotBytes int64
	// CacheDir, when set, persists encoded cache blocks and positional
	// maps there so a restarted engine serves its first query from
	// rehydrated cache state instead of re-scanning the raw files.
	CacheDir string
	// Adaptive enables the sampling re-optimization round (paper §5).
	Adaptive bool
	// DisableCaching turns the cache layer off (for experiments).
	DisableCaching bool
	// Pool is the shared morsel scheduler for parallel scans (default
	// sched.Default()). A query server injects one pool so concurrent
	// queries share workers instead of oversubscribing cores.
	Pool *sched.Pool
	// Workers bounds each query's morsel fan-out (0 = GOMAXPROCS; 1
	// forces serial execution). The pool's own size bounds actual
	// concurrency — Workers controls how finely a query's scans split,
	// which is how benchmarks pin serial and parallel plans to the same
	// pool.
	Workers int
	// JoinPartitions overrides the radix partition count of the
	// parallel hash-join build (0 = jit default; rounded up to a power
	// of two).
	JoinPartitions int
	// NoExprKernels disables the JIT's vectorized arithmetic/projection
	// kernels (row-wise fallback) — an A/B switch for benchmarks and
	// fallback-equivalence tests, not for production use.
	NoExprKernels bool
	// MemoryBudgetBytes bounds the engine's tracked execution memory
	// (collection results, join build sides, dedup tables, in-flight
	// cache harvests) across all queries (<=0: unlimited). Under
	// pressure the engine sheds cache harvesting first; at the ceiling
	// queries abort with ErrMemoryBudget instead of OOM-ing the process.
	MemoryBudgetBytes int64
	// QueryMemoryBudgetBytes bounds each single query's tracked bytes
	// (<=0: unlimited).
	QueryMemoryBudgetBytes int64
}

// Stats is a snapshot of engine activity.
type Stats struct {
	Queries           int64
	QueriesFromCache  int64 // every scan served by the cache layer
	QueriesTouchedRaw int64
	RawScans          int64
	CacheScans        int64
	Cache             cache.Stats
	AuxiliaryBytes    int64 // positional maps + semi-indexes
	Memory            MemoryStats
	PanicsRecovered   int64 // execution panics contained as query errors
	// Kernel staging tallies from the JIT compiler: how many pipeline
	// stages (filters, binds, reduce heads) were staged as vectorized
	// kernels vs. row-wise boxed fallbacks, across all queries.
	KernelStagesVectorized int64
	KernelStagesBoxed      int64
	// Grouped-aggregation tallies from the JIT's hash fold: completed
	// grouped folds, total distinct groups built, the largest single
	// group table observed (bytes), and morsel partials merged.
	GroupFolds         int64
	GroupsBuilt        int64
	GroupTableMaxBytes int64
	GroupPartialMerges int64
	// Hash-join tallies from the JIT's partitioned join: sealed build
	// tables, build-side entries indexed, probe matches emitted, and
	// the largest single sealed join table observed (bytes).
	JoinFolds         int64
	JoinBuildRows     int64
	JoinProbeRows     int64
	JoinTableMaxBytes int64
}

// refresher is implemented by readers that can detect file changes.
type refresher interface {
	Refresh() (bool, error)
	SetInvalidateHook(func())
}

type sourceEntry struct {
	desc   *sdg.Description
	src    algebra.Source
	csv    *rawcsv.Reader
	json   *rawjson.Reader
	arr    *rawarr.Reader
	xls    *rawxls.Reader
	isView bool
}

// planShardCount shards the plan cache so concurrent warm Prepare calls
// don't serialize on one mutex (reads take a shard RLock). Must be a
// power of two.
const planShardCount = 16

// planShard is one stripe of the plan cache.
type planShard struct {
	mu sync.RWMutex
	m  map[string]*planEntry
}

// planEntry caches the outcome of the query frontend for one query text.
// Parameterized queries cache like any other: the key is the query text
// with its $n placeholders, so same-shape queries with different
// constants share one frontend run.
type planEntry struct {
	plan   *algebra.Reduce
	typ    *sdg.Type
	params []string
}

// Engine is one just-in-time database instance over raw files.
type Engine struct {
	mu      sync.RWMutex
	opts    Options
	sources map[string]*sourceEntry
	caches  *cache.Manager

	queries      atomic.Int64
	cacheQueries atomic.Int64
	rawQueries   atomic.Int64
	rawScans     atomic.Int64
	cacheScans   atomic.Int64

	mem          memGovernor
	memKills     atomic.Int64
	harvestSkips atomic.Int64
	panics       atomic.Int64

	kernelVec   atomic.Int64
	kernelBoxed atomic.Int64
	// kernelStatsFn is the pre-bound jit.Options.KernelStats hook: bound
	// once here so the per-query Options assignment stays allocation-free
	// (a method value created per query would allocate on the warm path).
	kernelStatsFn func(vectorized, boxed int64)

	groupFolds         atomic.Int64
	groupsBuilt        atomic.Int64
	groupTableBytes    atomic.Int64 // high-water mark of one fold's table
	groupPartialMerges atomic.Int64
	// groupStatsFn is the pre-bound jit.Options.GroupStats hook (same
	// allocation rationale as kernelStatsFn).
	groupStatsFn func(groups, tableBytes, partialMerges int64)

	joinFolds      atomic.Int64
	joinBuildRows  atomic.Int64
	joinProbeRows  atomic.Int64
	joinTableBytes atomic.Int64 // high-water mark of one sealed join table
	// joinStatsFn is the pre-bound jit.Options.JoinStats hook (same
	// allocation rationale as kernelStatsFn). Deltas arrive concurrently
	// from probe morsels.
	joinStatsFn func(folds, buildRows, probeRows, tableBytes int64)

	planShards     [planShardCount]planShard
	planCacheLimit int // per shard

	// epoch counts catalog/data generations: it bumps whenever a source
	// is (de)registered, a cleaner attached, or a file change invalidates
	// caches. Result caches key on it to stay consistent with the data.
	epoch atomic.Int64

	// closeMu gates the query lifecycle for graceful shutdown: queries
	// hold it shared for their whole run, Close takes it exclusively, so
	// Close returns only after in-flight queries drain.
	closeMu sync.RWMutex
	closed  bool
}

// NewEngine creates an engine.
func NewEngine(opts Options) *Engine {
	e := &Engine{
		opts:    opts,
		sources: map[string]*sourceEntry{},
		caches: cache.NewWithConfig(cache.Config{
			BudgetBytes: opts.CacheBudgetBytes,
			HotBytes:    opts.CacheHotBytes,
			SpillDir:    opts.CacheDir,
		}),
		planCacheLimit: 512 / planShardCount,
	}
	e.mem.limit = opts.MemoryBudgetBytes
	if opts.CacheDir != "" {
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			slog.Warn("core: cache dir unusable", "dir", opts.CacheDir, "err", err)
		}
	}
	for i := range e.planShards {
		e.planShards[i].m = map[string]*planEntry{}
	}
	e.kernelStatsFn = func(vectorized, boxed int64) {
		e.kernelVec.Add(vectorized)
		e.kernelBoxed.Add(boxed)
	}
	e.groupStatsFn = func(groups, tableBytes, partialMerges int64) {
		e.groupFolds.Add(1)
		e.groupsBuilt.Add(groups)
		e.groupPartialMerges.Add(partialMerges)
		for {
			cur := e.groupTableBytes.Load()
			if tableBytes <= cur || e.groupTableBytes.CompareAndSwap(cur, tableBytes) {
				break
			}
		}
	}
	e.joinStatsFn = func(folds, buildRows, probeRows, tableBytes int64) {
		e.joinFolds.Add(folds)
		e.joinBuildRows.Add(buildRows)
		e.joinProbeRows.Add(probeRows)
		for tableBytes > 0 {
			cur := e.joinTableBytes.Load()
			if tableBytes <= cur || e.joinTableBytes.CompareAndSwap(cur, tableBytes) {
				break
			}
		}
	}
	return e
}

// Caches exposes the cache manager (CLI, experiments).
func (e *Engine) Caches() *cache.Manager { return e.caches }

// Mode returns the active executor mode.
func (e *Engine) Mode() ExecMode { return e.opts.Mode }

// SetMode switches the executor.
func (e *Engine) SetMode(m ExecMode) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.opts.Mode = m
}

// Register adds a raw source from its description, opening the
// format-appropriate reader.
func (e *Engine) Register(desc *sdg.Description) error {
	if err := desc.Validate(); err != nil {
		return err
	}
	entry := &sourceEntry{desc: desc}
	switch desc.Format {
	case sdg.FormatCSV:
		r, err := rawcsv.Open(desc)
		if err != nil {
			return err
		}
		entry.csv, entry.src = r, r
	case sdg.FormatJSON:
		r, err := rawjson.Open(desc)
		if err != nil {
			return err
		}
		entry.json, entry.src = r, r
	case sdg.FormatArray:
		r, err := rawarr.Open(desc)
		if err != nil {
			return err
		}
		entry.arr, entry.src = r, r
	case sdg.FormatXLS:
		r, err := rawxls.Open(desc)
		if err != nil {
			return err
		}
		entry.xls, entry.src = r, r
	default:
		return fmt.Errorf("core: format %s needs RegisterSource", desc.Format)
	}
	name := desc.Name
	if rf, ok := entry.src.(refresher); ok {
		rf.SetInvalidateHook(func() {
			e.caches.Invalidate(name)
			e.epoch.Add(1)
		})
	}
	e.mu.Lock()
	if _, dup := e.sources[name]; dup {
		e.mu.Unlock()
		return fmt.Errorf("core: source %q already registered", name)
	}
	e.sources[name] = entry
	e.mu.Unlock()
	e.epoch.Add(1)
	// Warm restart: rehydrate spilled cache blocks and the persisted
	// positional map, both keyed so stale state is never trusted (spill
	// files by content generation, the posmap sidecar by mtime+size).
	if entry.csv != nil {
		e.caches.SetSpillKey(name, entry.csv.Generation)
		if e.opts.CacheDir != "" {
			e.caches.Rehydrate(name, entry.csv.Generation())
			if _, err := entry.csv.LoadAux(e.auxPath(name)); err != nil {
				slog.Warn("core: posmap sidecar unusable, rebuilding on demand", "dataset", name, "err", err)
			}
		}
	}
	return nil
}

// auxPath is where a dataset's positional-map sidecar lives inside the
// cache directory (hashed name, like the spill files).
func (e *Engine) auxPath(name string) string {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%s/p-%016x.posmap", e.opts.CacheDir, h)
}

// saveAux persists a CSV source's positional map into the cache
// directory after a harvesting scan built it. Failures only cost the
// next restart's first touch.
func (e *Engine) saveAux(entry *sourceEntry) {
	if e.opts.CacheDir == "" || entry.csv == nil {
		return
	}
	if err := entry.csv.SaveAux(e.auxPath(entry.desc.Name)); err != nil {
		slog.Warn("core: saving posmap sidecar failed", "dataset", entry.desc.Name, "err", err)
	}
}

// RegisterSource adds an arbitrary source (in-memory data, a baseline
// store wrapper, ...) with its description.
func (e *Engine) RegisterSource(desc *sdg.Description, src algebra.Source) error {
	e.mu.Lock()
	if _, dup := e.sources[desc.Name]; dup {
		e.mu.Unlock()
		return fmt.Errorf("core: source %q already registered", desc.Name)
	}
	e.sources[desc.Name] = &sourceEntry{desc: desc, src: src, isView: true}
	e.mu.Unlock()
	e.epoch.Add(1)
	return nil
}

// cleanedSource decorates a source with a data cleaner (paper §7): every
// record passes validation/repair before reaching executors and caches.
type cleanedSource struct {
	inner   algebra.Source
	cleaner *clean.Cleaner
}

// Name implements algebra.Source.
func (s *cleanedSource) Name() string { return s.inner.Name() }

// Iterate implements algebra.Source. Cleaning needs whole records, so the
// projection is applied after repair.
func (s *cleanedSource) Iterate(fields []string, yield func(values.Value) error) error {
	return s.inner.Iterate(nil, func(v values.Value) error {
		out, keep := s.cleaner.Apply(v)
		if !keep {
			return nil
		}
		if len(fields) > 0 {
			fs := make([]values.Field, len(fields))
			for i, f := range fields {
				fv, _ := out.Get(f)
				fs[i] = values.Field{Name: f, Val: fv}
			}
			out = values.NewRecord(fs...)
		}
		return yield(out)
	})
}

// AttachCleaner installs a data cleaner on a registered source. Caches
// for the source are invalidated: previously-promoted values may contain
// uncleaned data.
func (e *Engine) AttachCleaner(name string, c *clean.Cleaner) error {
	e.mu.Lock()
	s, ok := e.sources[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("core: unknown source %q", name)
	}
	s.src = &cleanedSource{inner: s.src, cleaner: c}
	e.mu.Unlock()
	e.caches.Invalidate(name)
	e.dropPlans()
	e.epoch.Add(1)
	return nil
}

// Deregister removes a source and its cached data.
func (e *Engine) Deregister(name string) {
	e.mu.Lock()
	delete(e.sources, name)
	e.mu.Unlock()
	e.caches.Invalidate(name)
	e.dropPlans()
	e.epoch.Add(1)
}

// Sources lists registered source names.
func (e *Engine) Sources() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.sources))
	for n := range e.sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Description returns the catalog entry of a source (jit.SchemaCatalog).
func (e *Engine) Description(name string) (*sdg.Description, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s, ok := e.sources[name]
	if !ok {
		return nil, false
	}
	return s.desc, true
}

// Refresh re-checks every file-backed source; changed files drop their
// auxiliary structures and cache entries (paper §2.1).
func (e *Engine) Refresh() error {
	e.mu.RLock()
	entries := make([]*sourceEntry, 0, len(e.sources))
	for _, s := range e.sources {
		entries = append(entries, s)
	}
	e.mu.RUnlock()
	changed := false
	for _, s := range entries {
		if rf, ok := s.src.(refresher); ok {
			ch, err := rf.Refresh()
			if err != nil {
				return err
			}
			changed = changed || ch
		}
	}
	if changed {
		e.dropPlans()
	}
	return nil
}

// Epoch returns the catalog/data generation counter. It increases
// whenever registered data may have changed (source added or removed,
// cleaner attached, file change detected), so any cache keyed on
// (query, epoch) is invalidated by data movement for free.
func (e *Engine) Epoch() int64 { return e.epoch.Load() }

// Close marks the engine closed and waits for in-flight queries to
// drain. Subsequent queries fail with ErrClosed; sources and caches stay
// readable for inspection.
func (e *Engine) Close() error {
	e.closeMu.Lock()
	e.closed = true
	e.closeMu.Unlock()
	return nil
}

// Ping reports whether the engine accepts queries (ErrClosed after
// Close).
func (e *Engine) Ping() error {
	if err := e.beginQuery(); err != nil {
		return err
	}
	e.endQuery()
	return nil
}

// beginQuery takes a shared slot in the close gate; endQuery releases it.
func (e *Engine) beginQuery() error {
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return ErrClosed
	}
	return nil
}

func (e *Engine) endQuery() { e.closeMu.RUnlock() }

func (e *Engine) planShard(src string) *planShard {
	h := uint32(2166136261)
	for i := 0; i < len(src); i++ {
		h ^= uint32(src[i])
		h *= 16777619
	}
	return &e.planShards[h&(planShardCount-1)]
}

func (e *Engine) dropPlans() {
	for i := range e.planShards {
		sh := &e.planShards[i]
		sh.mu.Lock()
		sh.m = map[string]*planEntry{}
		sh.mu.Unlock()
	}
}

// StatsSnapshot returns engine counters.
func (e *Engine) StatsSnapshot() Stats {
	var aux int64
	e.mu.RLock()
	for _, s := range e.sources {
		if s.csv != nil {
			aux += s.csv.PosMap().MemoryBytes()
		}
		if s.json != nil {
			aux += s.json.SemiIndex().MemoryBytes()
		}
	}
	e.mu.RUnlock()
	return Stats{
		Queries:           e.queries.Load(),
		QueriesFromCache:  e.cacheQueries.Load(),
		QueriesTouchedRaw: e.rawQueries.Load(),
		RawScans:          e.rawScans.Load(),
		CacheScans:        e.cacheScans.Load(),
		Cache:             e.caches.Stats(),
		AuxiliaryBytes:    aux,
		Memory: MemoryStats{
			TrackedBytes:  e.mem.used.Load(),
			BudgetBytes:   e.mem.limit,
			QueryKills:    e.memKills.Load(),
			HarvestSkips:  e.harvestSkips.Load(),
			UnderPressure: e.mem.underPressure(),
		},
		PanicsRecovered:        e.panics.Load(),
		KernelStagesVectorized: e.kernelVec.Load(),
		KernelStagesBoxed:      e.kernelBoxed.Load(),
		GroupFolds:             e.groupFolds.Load(),
		GroupsBuilt:            e.groupsBuilt.Load(),
		GroupTableMaxBytes:     e.groupTableBytes.Load(),
		GroupPartialMerges:     e.groupPartialMerges.Load(),
		JoinFolds:              e.joinFolds.Load(),
		JoinBuildRows:          e.joinBuildRows.Load(),
		JoinProbeRows:          e.joinProbeRows.Load(),
		JoinTableMaxBytes:      e.joinTableBytes.Load(),
	}
}

// ---------------------------------------------------------------------------
// Catalog with cache interposition
// ---------------------------------------------------------------------------

// catalog adapts the engine to algebra.Catalog + jit.SchemaCatalog. Scans
// consult the cache first; raw scans populate it for next time.
type catalog struct {
	e *Engine
}

// Source implements algebra.Catalog.
func (c catalog) Source(name string) (algebra.Source, bool) {
	return c.e.sourceFor(name, nil)
}

// Description implements jit.SchemaCatalog.
func (c catalog) Description(name string) (*sdg.Description, bool) {
	return c.e.Description(name)
}

// tracedCatalog is the armed variant of catalog: the sources it hands
// out record scan spans under sp. It is a separate (heap-allocated)
// type, not a field on catalog, so the disarmed catalog value stays
// pointer-shaped and its interface conversion allocation-free on the
// warm query path.
type tracedCatalog struct {
	e  *Engine
	sp *trace.Span
}

// Source implements algebra.Catalog.
func (c *tracedCatalog) Source(name string) (algebra.Source, bool) {
	return c.e.sourceFor(name, c.sp)
}

// Description implements jit.SchemaCatalog.
func (c *tracedCatalog) Description(name string) (*sdg.Description, bool) {
	return c.e.Description(name)
}

// sourceFor resolves a catalog source, wiring the cache interposition
// layer and the (possibly nil) trace span scans record under.
func (e *Engine) sourceFor(name string, sp *trace.Span) (algebra.Source, bool) {
	e.mu.RLock()
	s, ok := e.sources[name]
	e.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if e.opts.DisableCaching || s.isView {
		return &countingSource{e: e, inner: s.src, raw: true, sp: sp}, true
	}
	return &cachingSource{e: e, entry: s, sp: sp}, true
}

// traceYield wraps a batch yield to account rows/bytes/batches into sp.
// A nil sp returns yield unchanged, so the disarmed path allocates no
// closure.
func traceYield(sp *trace.Span, yield func(*vec.Batch) error) func(*vec.Batch) error {
	if sp == nil {
		return yield
	}
	return func(b *vec.Batch) error {
		sp.AddBatches(1)
		sp.AddRows(int64(b.Len()))
		sp.AddBytes(b.MemoryBytes())
		return yield(b)
	}
}

// countingSource tags scans for the statistics (cache vs raw).
type countingSource struct {
	e     *Engine
	inner algebra.Source
	raw   bool
	sp    *trace.Span // parent for scan spans; nil when disarmed
}

// scanSpan opens a scan span for this source (nil when disarmed). The
// explicit nil check matters: SetAttr's arguments would box to `any` at
// the call site even for a nil receiver, allocating on the disarmed path.
func (s *countingSource) scanSpan() *trace.Span {
	if s.sp == nil {
		return nil
	}
	sp := s.sp.Child("scan")
	sp.SetAttr("source", s.inner.Name())
	if s.raw {
		sp.SetAttr("mode", "raw")
	} else {
		sp.SetAttr("mode", "cache")
	}
	return sp
}

func (s *countingSource) Name() string { return s.inner.Name() }

func (s *countingSource) Iterate(fields []string, yield func(values.Value) error) error {
	s.count()
	return s.inner.Iterate(fields, yield)
}

func (s *countingSource) count() {
	if s.raw {
		s.e.rawScans.Add(1)
	} else {
		s.e.cacheScans.Add(1)
	}
}

// IterateSlots forwards the JIT slot fast path when the wrapped source
// has one (cache-disabled engines still get specialized raw scans) and
// falls back to exploding records otherwise.
func (s *countingSource) IterateSlots(fields []string, yield func([]values.Value) error) error {
	if ss, ok := s.inner.(jit.SlotSource); ok {
		s.count()
		return ss.IterateSlots(fields, yield)
	}
	return slotsFromRecords(s, fields, yield)
}

// IterateBatches forwards the JIT batch fast path when the wrapped
// source has one and packs slot rows into boxed batches otherwise.
func (s *countingSource) IterateBatches(fields []string, batchSize int, yield func(*vec.Batch) error) error {
	if bs, ok := s.inner.(jit.BatchSource); ok {
		s.count()
		sp := s.scanSpan()
		defer sp.End()
		return bs.IterateBatches(fields, batchSize, traceYield(sp, yield))
	}
	return batchesFromSlots(s.IterateSlots, fields, batchSize, yield)
}

// OpenRange forwards range-partitioned scans (morsel parallelism).
func (s *countingSource) OpenRange(fields []string) (func(lo, hi, batchSize int, yield func(*vec.Batch) error) error, int, bool) {
	rs, ok := s.inner.(jit.RangeBatchSource)
	if !ok {
		return nil, 0, false
	}
	scan, n, ok := rs.OpenRange(fields)
	if !ok {
		return nil, 0, false
	}
	var once sync.Once
	return func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
		once.Do(s.count)
		return scan(lo, hi, batchSize, yield)
	}, n, true
}

// cachingSource serves scans from the columnar cache when it covers the
// requested fields; otherwise it reads raw and promotes the touched
// fields into the cache (the paper's access-driven cache growth).
type cachingSource struct {
	e     *Engine
	entry *sourceEntry
	sp    *trace.Span // parent for scan spans; nil when disarmed
}

// scanSpan opens a scan span for this source (nil when disarmed). The
// explicit nil check matters: SetAttr's arguments would box to `any` at
// the call site even for a nil receiver, allocating on the disarmed path.
func (s *cachingSource) scanSpan(mode string) *trace.Span {
	if s.sp == nil {
		return nil
	}
	sp := s.sp.Child("scan")
	sp.SetAttr("source", s.entry.desc.Name)
	sp.SetAttr("mode", mode)
	return sp
}

// buildStats reads the raw reader's cumulative auxiliary-build counters
// (positional map / semi-index). The tracer diffs them around a raw scan
// to attribute a build to the query that paid for it.
func (s *cachingSource) buildStats() (builds, nanos int64, event string) {
	switch {
	case s.entry.csv != nil:
		b, n := s.entry.csv.BuildStats()
		return b, n, "posmap_build"
	case s.entry.json != nil:
		b, n := s.entry.json.BuildStats()
		return b, n, "semiindex_build"
	}
	return 0, 0, ""
}

// recordBuild emits a completed build child span on sp when the scan
// between the buildStats snapshot (b0, n0) and now ran one.
func (s *cachingSource) recordBuild(sp *trace.Span, b0, n0 int64) {
	if sp == nil {
		return
	}
	b1, n1, event := s.buildStats()
	if event != "" && b1 > b0 {
		sp.Event(event, time.Duration(n1-n0), trace.Attr{Key: "builds", Val: b1 - b0})
	}
}

// harvestGuard snapshots the engine epoch before a raw scan whose rows
// will be promoted into the cache. A Refresh racing the scan swaps the
// file generation and invalidates the cache mid-harvest; without the
// guard the scan would then install pre-refresh rows that every later
// query reads as current. put runs the promotion only when the epoch is
// unchanged, and re-checks afterwards (invalidating what it just wrote)
// to close the check-then-put window.
type harvestGuard struct {
	e       *Engine
	dataset string
	epoch   int64
}

func (s *cachingSource) newHarvestGuard() harvestGuard {
	return harvestGuard{e: s.e, dataset: s.entry.desc.Name, epoch: s.e.epoch.Load()}
}

func (g harvestGuard) put(install func() error) error {
	if g.e.epoch.Load() != g.epoch {
		return nil // data moved mid-scan: the harvest is stale, drop it
	}
	if err := install(); err != nil {
		return err
	}
	if g.e.epoch.Load() != g.epoch {
		g.e.caches.Invalidate(g.dataset)
	}
	return nil
}

// cacheScanMode labels a cache-hit scan span by the entry's tier.
func cacheScanMode(e *cache.Entry) string {
	if e.Encoded() {
		return "cache-encoded"
	}
	return "cache"
}

// Name implements algebra.Source.
func (s *cachingSource) Name() string { return s.entry.desc.Name }

// Iterate implements algebra.Source.
func (s *cachingSource) Iterate(fields []string, yield func(values.Value) error) error {
	name := s.entry.desc.Name
	if len(fields) > 0 {
		if entry, ok := s.e.caches.GetColumns(name, fields); ok {
			s.e.cacheScans.Add(1)
			src := &cache.ColumnsSource{Entry: entry, Dataset: name, Mgr: s.e.caches, Mem: &s.e.mem}
			return src.Iterate(fields, yield)
		}
	} else if entry, ok := s.e.caches.Get(name, cache.LayoutRows); ok {
		s.e.cacheScans.Add(1)
		src := &cache.RowsSource{Entry: entry, Dataset: name}
		return src.Iterate(fields, yield)
	}
	// Raw access; harvest the stream into the cache — unless the engine
	// is under memory pressure, in which case the scan still answers but
	// the cache does not grow (harvest shedding, the graceful step before
	// any query hits the budget ceiling).
	s.e.rawScans.Add(1)
	if s.e.mem.underPressure() {
		s.e.harvestSkips.Add(1)
		return s.entry.src.Iterate(fields, yield)
	}
	guard := s.newHarvestGuard()
	if len(fields) > 0 {
		cols := make(map[string][]values.Value, len(fields))
		for _, f := range fields {
			cols[f] = nil
		}
		n := 0
		err := s.entry.src.Iterate(fields, func(v values.Value) error {
			for _, f := range fields {
				fv, _ := v.Get(f)
				cols[f] = append(cols[f], fv)
			}
			n++
			return yield(v)
		})
		if err != nil {
			return err
		}
		return guard.put(func() error { return s.e.caches.PutColumns(name, n, cols) })
	}
	var rows []values.Value
	err := s.entry.src.Iterate(nil, func(v values.Value) error {
		rows = append(rows, v)
		return yield(v)
	})
	if err != nil {
		return err
	}
	return guard.put(func() error { s.e.caches.PutRows(name, rows); return nil })
}

// IterateSlots lets the JIT fast path run against the cache (or the raw
// reader's own slot path) while preserving the harvest-into-cache
// behaviour.
func (s *cachingSource) IterateSlots(fields []string, yield func([]values.Value) error) error {
	name := s.entry.desc.Name
	if len(fields) > 0 {
		if entry, ok := s.e.caches.GetColumns(name, fields); ok {
			s.e.cacheScans.Add(1)
			src := &cache.ColumnsSource{Entry: entry, Dataset: name, Mgr: s.e.caches, Mem: &s.e.mem}
			return src.IterateSlots(fields, yield)
		}
		// Raw slot scan with harvesting (shed under memory pressure).
		if ss, ok := s.entry.src.(jit.SlotSource); ok {
			s.e.rawScans.Add(1)
			if s.e.mem.underPressure() {
				s.e.harvestSkips.Add(1)
				return ss.IterateSlots(fields, yield)
			}
			guard := s.newHarvestGuard()
			cols := make(map[string][]values.Value, len(fields))
			n := 0
			err := ss.IterateSlots(fields, func(row []values.Value) error {
				for i, f := range fields {
					cols[f] = append(cols[f], row[i])
				}
				n++
				return yield(row)
			})
			if err != nil {
				return err
			}
			return guard.put(func() error { return s.e.caches.PutColumns(name, n, cols) })
		}
	}
	// Fall back to the record path, exploding into slots.
	return slotsFromRecords(s, fields, yield)
}

// IterateBatches is the vectorized counterpart of IterateSlots: cache
// hits serve zero-copy column-slice batches, raw scans stream the
// plugin's typed batches while harvesting boxed columns into the cache,
// and everything else packs slot rows into boxed batches.
func (s *cachingSource) IterateBatches(fields []string, batchSize int, yield func(*vec.Batch) error) error {
	name := s.entry.desc.Name
	if len(fields) > 0 {
		if entry, ok := s.e.caches.GetColumns(name, fields); ok {
			s.e.cacheScans.Add(1)
			sp := s.scanSpan(cacheScanMode(entry))
			defer sp.End()
			src := &cache.ColumnsSource{Entry: entry, Dataset: name, Mgr: s.e.caches, Mem: &s.e.mem}
			return src.IterateBatches(fields, batchSize, traceYield(sp, yield))
		}
		if bs, ok := s.entry.src.(jit.BatchSource); ok {
			s.e.rawScans.Add(1)
			sp := s.scanSpan("raw")
			if sp != nil {
				b0, n0, _ := s.buildStats()
				defer func() {
					s.recordBuild(sp, b0, n0)
					sp.End()
				}()
				yield = traceYield(sp, yield)
			}
			guard := s.newHarvestGuard()
			// Pre-size harvest columns when the reader already knows its
			// row count — repeated scans then build cache columns with a
			// single allocation each.
			hint := 0
			if s.entry.csv != nil {
				if pm := s.entry.csv.PosMap(); pm.HasRows() {
					hint = pm.NumRows()
				}
			}
			// Typed harvest: the plugin's column vectors are retained in
			// their typed representation, so the cache entry serves the
			// next scan unboxed. Mixed-type columns demote to boxed
			// inside the builder.
			//
			// Harvesting is the engine's first victim under memory
			// pressure: each harvested batch reserves its estimated bytes
			// against the global budget, and past the high-water mark (or
			// at the ceiling) the harvest is shed — the query still
			// answers from raw, the cache just does not grow — before any
			// query is killed.
			harvest := !s.e.mem.underPressure()
			if !harvest {
				s.e.harvestSkips.Add(1)
			}
			sp.SetAttr("harvest", harvest)
			var builders []*vec.ColBuilder
			if harvest {
				builders = make([]*vec.ColBuilder, len(fields))
				for i := range builders {
					builders[i] = vec.NewColBuilder(hint)
				}
			}
			var reserved int64
			defer func() { s.e.mem.release(reserved) }()
			n := 0
			err := bs.IterateBatches(fields, batchSize, func(b *vec.Batch) error {
				if ferr := faultinject.Hit(faultinject.RefreshDuringScan); ferr != nil {
					return ferr
				}
				if harvest {
					// Harvest before the JIT refines the selection: the cache
					// stores every scanned row, filters apply per query.
					delta := b.MemoryBytes() + faultinject.Value(faultinject.AllocSpike)
					if rerr := s.e.mem.reserve(delta); rerr != nil {
						harvest, builders = false, nil
						s.e.harvestSkips.Add(1)
					} else {
						reserved += delta
						for c := range fields {
							builders[c].Append(&b.Cols[c], b)
						}
					}
				}
				n += b.Len()
				return yield(b)
			})
			if err != nil {
				return err
			}
			if !harvest {
				return nil
			}
			if err := guard.put(func() error {
				cols := make(map[string]vec.Col, len(fields))
				for i, f := range fields {
					cols[f] = builders[i].Finish()
				}
				return s.e.caches.PutColumnVectors(name, n, cols)
			}); err != nil {
				return err
			}
			// The harvesting scan just built (or extended) the positional
			// map as a side effect; persist it so a restart skips the
			// first-touch rebuild.
			s.e.saveAux(s.entry)
			return nil
		}
	}
	return batchesFromSlots(s.IterateSlots, fields, batchSize, yield)
}

// OpenRange serves morsel-parallel scans: from the columnar cache when it
// covers the fields (zero-copy, with deferred hit accounting), else from
// the raw plugin's own range scan. Raw range scans skip cache promotion —
// ranges arrive out of order — but a source only becomes range-capable
// after a sequential first touch, which does promote.
func (s *cachingSource) OpenRange(fields []string) (func(lo, hi, batchSize int, yield func(*vec.Batch) error) error, int, bool) {
	if len(fields) == 0 {
		return nil, 0, false
	}
	name := s.entry.desc.Name
	if entry, ok := s.e.caches.Peek(name, cache.LayoutColumns); ok && entry.HasColumns(fields) {
		src := &cache.ColumnsSource{Entry: entry, Dataset: name, Mgr: s.e.caches, Mem: &s.e.mem}
		scan, n, ok := src.OpenRange(fields)
		if !ok {
			return nil, 0, false
		}
		// The range scan span has no single end point (morsels finish with
		// the job); it is opened on the first morsel and closed by
		// Tracer.Finish. once.Do's memory barrier publishes sp to every
		// morsel worker.
		var sp *trace.Span
		var once sync.Once
		return func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
			once.Do(func() {
				s.e.caches.Touch(name, cache.LayoutColumns)
				s.e.cacheScans.Add(1)
				sp = s.scanSpan(cacheScanMode(entry))
				sp.SetAttr("range", true)
			})
			return scan(lo, hi, batchSize, traceYield(sp, yield))
		}, n, true
	}
	rs, ok := s.entry.src.(jit.RangeBatchSource)
	if !ok {
		return nil, 0, false
	}
	scan, n, ok := rs.OpenRange(fields)
	if !ok {
		return nil, 0, false
	}
	var sp *trace.Span
	var once sync.Once
	return func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
		once.Do(func() {
			s.e.rawScans.Add(1)
			sp = s.scanSpan("raw")
			sp.SetAttr("range", true)
		})
		return scan(lo, hi, batchSize, traceYield(sp, yield))
	}, n, true
}

// slotsFromRecords adapts a record stream to the slot contract.
func slotsFromRecords(src algebra.Source, fields []string, yield func([]values.Value) error) error {
	buf := make([]values.Value, len(fields))
	return src.Iterate(fields, func(v values.Value) error {
		for i, f := range fields {
			fv, _ := v.Get(f)
			buf[i] = fv
		}
		return yield(buf)
	})
}

// batchesFromSlots packs slot rows into boxed batches.
func batchesFromSlots(iter func(fields []string, yield func([]values.Value) error) error, fields []string, batchSize int, yield func(*vec.Batch) error) error {
	if batchSize <= 0 {
		batchSize = vec.DefaultBatchSize
	}
	p := vec.NewPacker(len(fields), batchSize, nil, yield)
	if err := iter(fields, p.Add); err != nil {
		return err
	}
	return p.Flush()
}

// ---------------------------------------------------------------------------
// Live cost model
// ---------------------------------------------------------------------------

// liveCostModel consults reader state: cache residency, positional-map and
// semi-index coverage (paper §5: the wrapper "takes into account any
// auxiliary structures present, and normalizes access costs").
type liveCostModel struct {
	e *Engine
}

// SourceRows implements optimizer.CostModel.
func (m liveCostModel) SourceRows(name string) int64 {
	m.e.mu.RLock()
	s, ok := m.e.sources[name]
	m.e.mu.RUnlock()
	if !ok {
		return 1000
	}
	switch {
	case s.csv != nil:
		if s.csv.PosMap().HasRows() {
			return int64(s.csv.PosMap().NumRows())
		}
		// Estimate from file size: ~64 bytes per row.
		return s.csv.SizeBytes()/64 + 1
	case s.json != nil:
		if s.json.SemiIndex().HasObjects() {
			return int64(s.json.SemiIndex().NumObjects())
		}
		return s.json.SizeBytes()/256 + 1
	case s.arr != nil:
		hdr := s.arr.Header()
		return int64(hdr.Cells())
	case s.xls != nil:
		return int64(s.xls.NumRows())
	default:
		return 1000
	}
}

// PerTupleCost implements optimizer.CostModel.
func (m liveCostModel) PerTupleCost(name string, fields []string) float64 {
	nf := len(fields)
	if nf == 0 {
		nf = 4 // whole-record scans: assume a handful of attributes
	}
	if !m.e.opts.DisableCaching && len(fields) > 0 && m.e.caches.PeekColumns(name, fields) {
		return optimizer.CostCache * float64(nf)
	}
	m.e.mu.RLock()
	s, ok := m.e.sources[name]
	m.e.mu.RUnlock()
	if !ok {
		return float64(nf)
	}
	switch {
	case s.csv != nil:
		per := optimizer.CostCSVCold
		if s.csv.PosMap().HasRows() {
			covered := true
			rt := s.desc.RowType()
			for _, f := range fields {
				idx := -1
				for i, a := range rt.Attrs {
					if a.Name == f {
						idx = i
						break
					}
				}
				if idx < 0 || !s.csv.PosMap().HasCol(idx) {
					covered = false
					break
				}
			}
			if covered && len(fields) > 0 {
				per = optimizer.CostCSVMapped
			}
		}
		return per * float64(nf)
	case s.json != nil:
		per := optimizer.CostJSONCold
		if s.json.SemiIndex().HasObjects() && len(fields) > 0 {
			covered := true
			for _, f := range fields {
				if !s.json.SemiIndex().HasField(f) {
					covered = false
					break
				}
			}
			if covered {
				per = optimizer.CostJSONMapped
			}
		}
		return per * float64(nf)
	case s.arr != nil:
		return optimizer.CostArray * float64(nf)
	case s.xls != nil:
		return optimizer.CostXLS * float64(nf)
	default:
		return optimizer.CostTable * float64(nf)
	}
}

// CheapestField implements optimizer.CostModel.
func (m liveCostModel) CheapestField(name string) (string, bool) {
	m.e.mu.RLock()
	s, ok := m.e.sources[name]
	m.e.mu.RUnlock()
	if !ok {
		return "", false
	}
	rt := s.desc.RowType()
	if rt.Kind == sdg.TRecord && len(rt.Attrs) > 0 {
		return rt.Attrs[0].Name, true
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Query lifecycle
// ---------------------------------------------------------------------------

// Prepared is a compiled query ready for (repeated) execution. Queries
// may contain bind parameters ($name, or $1..$n positionally); they are
// type-checked as holes at prepare time and substituted into a copy of
// the plan at execution time, so one prepared statement serves
// concurrent runs with different bindings without re-running the
// frontend.
type Prepared struct {
	engine *Engine
	plan   *algebra.Reduce
	Type   *sdg.Type
	params []string
}

// ParamNames returns the query's bind-parameter names in
// first-occurrence order (positional parameters are named "1".."n").
func (p *Prepared) ParamNames() []string {
	return append([]string(nil), p.params...)
}

// ParamError reports invalid bind-parameter usage — a missing or
// undeclared value. It is the caller's fault, not the engine's, and
// serving layers map it to a client error.
type ParamError struct{ Msg string }

func (e *ParamError) Error() string { return "core: " + e.Msg }

// boundPlan validates the bindings and substitutes them into a copy of
// the plan. With no parameters declared and none given, the cached plan
// is returned as-is.
func (p *Prepared) boundPlan(params map[string]values.Value) (*algebra.Reduce, error) {
	for _, name := range p.params {
		if _, ok := params[name]; !ok {
			return nil, &ParamError{Msg: fmt.Sprintf("missing value for parameter $%s", name)}
		}
	}
	if len(params) == 0 {
		return p.plan, nil
	}
	declared := map[string]bool{}
	for _, name := range p.params {
		declared[name] = true
	}
	for name := range params {
		if !declared[name] {
			return nil, &ParamError{Msg: fmt.Sprintf("query has no parameter $%s", name)}
		}
	}
	return algebra.BindParams(p.plan, params), nil
}

// Prepare runs the full frontend: parse, type-check, normalize, translate
// and optimize.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	return e.PrepareCtx(context.Background(), src)
}

// PrepareCtx is Prepare with a cancellation context.
func (e *Engine) PrepareCtx(ctx context.Context, src string) (*Prepared, error) {
	fsp := trace.FromContext(ctx).Root().Child("frontend")
	defer fsp.End()
	sh := e.planShard(src)
	sh.mu.RLock()
	cached := sh.m[src]
	sh.mu.RUnlock()
	if cached != nil {
		fsp.SetAttr("plan_cache", "hit")
		return &Prepared{engine: e, plan: cached.plan, Type: cached.typ, params: cached.params}, nil
	}
	fsp.SetAttr("plan_cache", "miss")
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	psp := fsp.Child("parse")
	expr, err := mcl.Parse(src)
	psp.End()
	if err != nil {
		return nil, err
	}
	// Declared parameters come from the source text (pre-normalization),
	// so the contract the user sees is stable even when a rewrite folds a
	// placeholder away.
	params := mcl.Params(expr)
	tsp := fsp.Child("typecheck")
	typ, err := e.typeCheck(expr)
	tsp.End()
	if err != nil {
		return nil, err
	}
	osp := fsp.Child("optimize")
	defer osp.End()
	norm := mcl.Normalize(expr)
	sources := map[string]bool{}
	e.mu.RLock()
	for n := range e.sources {
		sources[n] = true
	}
	e.mu.RUnlock()
	plan, err := algebra.Translate(norm, sources)
	if err != nil {
		return nil, err
	}
	cm := liveCostModel{e: e}
	var opt *algebra.Reduce
	if e.opts.Adaptive {
		opt, err = optimizer.AdaptiveOptimize(plan, catalog{e: e}, cm)
		if err != nil {
			return nil, err
		}
	} else {
		opt = optimizer.Optimize(plan, cm)
	}
	sh.mu.Lock()
	if len(sh.m) < e.planCacheLimit {
		sh.m[src] = &planEntry{plan: opt, typ: typ, params: params}
	}
	sh.mu.Unlock()
	return &Prepared{engine: e, plan: opt, Type: typ, params: params}, nil
}

func (e *Engine) typeCheck(expr mcl.Expr) (*sdg.Type, error) {
	envMap := map[string]*sdg.Type{}
	e.mu.RLock()
	for n, s := range e.sources {
		if s.desc.Schema == nil {
			envMap[n] = sdg.Unknown
			continue
		}
		// Sources type as bags of what their scans actually yield
		// (array sources include dimension attributes).
		envMap[n] = sdg.Bag(s.desc.IterationType())
	}
	e.mu.RUnlock()
	return mcl.Check(expr, mcl.NewTypeEnv(envMap))
}

// Run executes the prepared plan.
func (p *Prepared) Run() (values.Value, error) {
	return p.RunCtx(context.Background())
}

// RunCtx executes the prepared plan under a cancellation context: a done
// ctx stops morsel dispatch in the scheduler and aborts serial scans at
// batch/row-group granularity, so a cancelled query releases its workers
// mid-file instead of running to completion.
func (p *Prepared) RunCtx(ctx context.Context) (values.Value, error) {
	return p.RunParamsCtx(ctx, nil)
}

// RunParamsCtx is RunCtx with bind-parameter values substituted into a
// copy of the plan before execution.
func (p *Prepared) RunParamsCtx(ctx context.Context, params map[string]values.Value) (values.Value, error) {
	plan, err := p.boundPlan(params)
	if err != nil {
		return values.Null, err
	}
	return p.runPlanCtx(ctx, plan)
}

func (p *Prepared) runPlanCtx(ctx context.Context, plan *algebra.Reduce) (values.Value, error) {
	e := p.engine
	if err := e.beginQuery(); err != nil {
		return values.Null, err
	}
	defer e.endQuery()
	e.queries.Add(1)
	rawBefore := e.rawScans.Load()
	e.mu.RLock()
	mode := e.opts.Mode
	e.mu.RUnlock()
	execSp := trace.FromContext(ctx).Root().Child("execute")
	defer execSp.End()
	var cat jit.SchemaCatalog = catalog{e: e}
	if execSp != nil {
		cat = &tracedCatalog{e: e, sp: execSp}
	}
	if ctx.Done() != nil {
		cat = ctxCatalog{inner: cat, ctx: ctx}
	}
	qm := e.newQueryMem()
	defer qm.release()
	v, err := e.execPlan(ctx, mode, plan, cat, qm, execSp)
	if err != nil {
		if errors.Is(err, ErrMemoryBudget) {
			e.memKills.Add(1)
			return values.Null, err
		}
		// Surface cancellation as the ctx error, not a wrapped scan error.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return values.Null, ctxErr
		}
		return values.Null, err
	}
	if e.rawScans.Load() == rawBefore {
		e.cacheQueries.Add(1)
	} else {
		e.rawQueries.Add(1)
	}
	return v, nil
}

// execPlan runs the chosen executor inside a recover barrier: a panic
// anywhere in serial plan execution becomes this query's error (a
// *sched.PanicError) instead of crashing the process. Parallel morsels
// have their own barrier in the scheduler; this one covers the serial
// paths and everything around them.
func (e *Engine) execPlan(ctx context.Context, mode ExecMode, plan *algebra.Reduce, cat jit.SchemaCatalog, qm *queryMem, sp *trace.Span) (v values.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*sched.PanicError); !ok {
				// First recovery of this panic: count and log it once.
				e.panics.Add(1)
				perr := &sched.PanicError{Value: r, Stack: debug.Stack()}
				slog.Error("recovered panic in query execution",
					"component", "core", "panic", fmt.Sprint(r), "stack", string(perr.Stack))
				r = perr
			}
			v, err = values.Null, r.(*sched.PanicError)
		}
	}()
	switch mode {
	case ModeStatic:
		return jit.StaticExecutor{}.Run(plan, cat)
	case ModeReference:
		return algebra.Reference{}.Run(plan, cat)
	default:
		opts := jit.Options{Pool: e.opts.Pool, Workers: e.opts.Workers,
			NoExprKernels: e.opts.NoExprKernels, JoinPartitions: e.opts.JoinPartitions,
			MemReserve: qm.reserveFunc(), Trace: sp, KernelStats: e.kernelStatsFn,
			GroupStats: e.groupStatsFn, JoinStats: e.joinStatsFn}
		return jit.Executor{Opts: opts}.RunCtx(ctx, plan, cat)
	}
}

// Plan returns the optimized plan (EXPLAIN).
func (p *Prepared) Plan() *algebra.Reduce { return p.plan }

// MonoidName returns the root monoid's name ("bag", "count", ...).
func (p *Prepared) MonoidName() string { return p.plan.M.Name() }

// OrderedResult reports whether the query carries ORDER BY keys: its
// result is an ordered list (streamed in order by cursors) regardless of
// the declared collection monoid.
func (p *Prepared) OrderedResult() bool { return p.plan.Order.Ordered() }

// Streamable reports whether the query's results can be served by a
// streaming cursor without materialization (collection-rooted plans
// under the JIT executor).
func (p *Prepared) Streamable() bool {
	p.engine.mu.RLock()
	mode := p.engine.opts.Mode
	p.engine.mu.RUnlock()
	return mode == ModeJIT && jit.CanStream(p.plan)
}

// Query parses, plans and executes in one call.
func (e *Engine) Query(src string) (values.Value, error) {
	return e.QueryCtx(context.Background(), src)
}

// QueryCtx parses, plans and executes in one call under a cancellation
// context.
func (e *Engine) QueryCtx(ctx context.Context, src string) (values.Value, error) {
	return e.QueryParamsCtx(ctx, src, nil)
}

// QueryParamsCtx is QueryCtx with bind-parameter values.
func (e *Engine) QueryParamsCtx(ctx context.Context, src string, params map[string]values.Value) (values.Value, error) {
	p, err := e.PrepareCtx(ctx, src)
	if err != nil {
		return values.Null, err
	}
	return p.RunParamsCtx(ctx, params)
}

// Explain returns the optimized plan rendering.
func (e *Engine) Explain(src string) (string, error) {
	p, err := e.Prepare(src)
	if err != nil {
		return "", err
	}
	return algebra.Format(p.plan), nil
}

// DescribeCatalog renders the catalog for the CLI.
func (e *Engine) DescribeCatalog() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.sources))
	for n := range e.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		sb.WriteString(e.sources[n].desc.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
