package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vida/internal/cache"
	"vida/internal/sdg"
	"vida/internal/values"
	"vida/internal/vec"
)

func writeFiles(t *testing.T) (csvPath, jsonPath string) {
	t.Helper()
	dir := t.TempDir()
	csvPath = filepath.Join(dir, "patients.csv")
	csv := "id,age,city,score\n"
	for i := 0; i < 50; i++ {
		csv += fmt.Sprintf("%d,%d,c%d,%g\n", i, 20+i%50, i%5, float64(i)/2)
	}
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath = filepath.Join(dir, "regions.json")
	jsonData := "["
	for i := 0; i < 20; i++ {
		if i > 0 {
			jsonData += ","
		}
		jsonData += fmt.Sprintf(`{"id": %d, "volume": %g, "meta": {"algo": "a%d"}}`, i%10, float64(i)*1.5, i)
	}
	jsonData += "]"
	if err := os.WriteFile(jsonPath, []byte(jsonData), 0o644); err != nil {
		t.Fatal(err)
	}
	return csvPath, jsonPath
}

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	csvPath, jsonPath := writeFiles(t)
	e := NewEngine(opts)
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "age", Type: sdg.Int},
		sdg.Attr{Name: "city", Type: sdg.String},
		sdg.Attr{Name: "score", Type: sdg.Float},
	))
	if err := e.Register(sdg.DefaultDescription("Patients", sdg.FormatCSV, csvPath, schema)); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(sdg.DefaultDescription("Regions", sdg.FormatJSON, jsonPath, sdg.Bag(sdg.Unknown))); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQueryOverCSV(t *testing.T) {
	e := newEngine(t, Options{})
	got, err := e.Query(`for { p <- Patients, p.age > 40 } yield count p`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(`for { p <- Patients, p.age > 40 } yield sum 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !values.Equal(got, want) || got.Int() == 0 {
		t.Fatalf("count = %v, sum1 = %v", got, want)
	}
}

func TestQueryJoinCSVWithJSON(t *testing.T) {
	e := newEngine(t, Options{})
	got, err := e.Query(`for { p <- Patients, r <- Regions, p.id = r.id, p.age > 21 }
	                     yield bag (city := p.city, vol := r.volume)`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != values.KindBag || got.Len() == 0 {
		t.Fatalf("join result = %v", got)
	}
}

func TestModesAgree(t *testing.T) {
	queries := []string{
		`for { p <- Patients, p.age > 30 } yield sum p.score`,
		`for { p <- Patients, r <- Regions, p.id = r.id } yield count 1`,
		`for { r <- Regions } yield max r.volume`,
		`for { p <- Patients, p.city = "c1" } yield set p.age`,
	}
	for _, q := range queries {
		var results []values.Value
		for _, mode := range []ExecMode{ModeJIT, ModeStatic, ModeReference} {
			e := newEngine(t, Options{Mode: mode})
			v, err := e.Query(q)
			if err != nil {
				t.Fatalf("%s on %q: %v", mode, q, err)
			}
			results = append(results, v)
		}
		if !values.Equal(results[0], results[1]) || !values.Equal(results[0], results[2]) {
			t.Fatalf("modes disagree on %q: jit=%v static=%v ref=%v", q, results[0], results[1], results[2])
		}
	}
}

func TestCachePromotionAndHit(t *testing.T) {
	e := newEngine(t, Options{})
	q := `for { p <- Patients, p.age > 30 } yield sum p.score`
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	s1 := e.StatsSnapshot()
	if s1.QueriesTouchedRaw != 1 {
		t.Fatalf("first query should touch raw: %+v", s1)
	}
	// Same fields again: served from cache.
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	s2 := e.StatsSnapshot()
	if s2.QueriesFromCache != 1 {
		t.Fatalf("second query should be cache-served: %+v", s2)
	}
	if s2.RawScans != s1.RawScans {
		t.Fatalf("raw scans grew on cached query: %+v vs %+v", s2, s1)
	}
	// A different field forces a raw re-scan, then caches too.
	if _, err := e.Query(`for { p <- Patients } yield max p.id`); err != nil {
		t.Fatal(err)
	}
	s3 := e.StatsSnapshot()
	if s3.QueriesTouchedRaw != 2 {
		t.Fatalf("new-field query should touch raw: %+v", s3)
	}
}

func TestDisableCaching(t *testing.T) {
	e := newEngine(t, Options{DisableCaching: true})
	q := `for { p <- Patients } yield sum p.score`
	for i := 0; i < 3; i++ {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	s := e.StatsSnapshot()
	if s.QueriesFromCache != 0 {
		t.Fatalf("caching disabled but queries served from cache: %+v", s)
	}
	if s.RawScans != 3 {
		t.Fatalf("raw scans = %d, want 3", s.RawScans)
	}
}

func TestResultsIdenticalWithAndWithoutCache(t *testing.T) {
	q := `for { p <- Patients, p.age > 30 } yield bag (c := p.city, s := p.score)`
	e1 := newEngine(t, Options{})
	e2 := newEngine(t, Options{DisableCaching: true})
	// Warm e1's cache, then compare a second run against uncached e2.
	if _, err := e1.Query(q); err != nil {
		t.Fatal(err)
	}
	v1, err := e1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !values.Equal(v1, v2) {
		t.Fatalf("cache changed results:\ncached:  %v\nuncached: %v", v1, v2)
	}
}

func TestFileChangeInvalidatesCaches(t *testing.T) {
	csvPath, _ := writeFiles(t)
	e := NewEngine(Options{})
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "age", Type: sdg.Int},
		sdg.Attr{Name: "city", Type: sdg.String},
		sdg.Attr{Name: "score", Type: sdg.Float},
	))
	if err := e.Register(sdg.DefaultDescription("P", sdg.FormatCSV, csvPath, schema)); err != nil {
		t.Fatal(err)
	}
	before, err := e.Query(`for { p <- P } yield count 1`)
	if err != nil {
		t.Fatal(err)
	}
	// Append a row and bump mtime.
	f, err := os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("999,30,cx,1.0\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fi, _ := os.Stat(csvPath)
	bump := fi.ModTime().Add(2 * time.Second)
	if err := os.Chtimes(csvPath, bump, bump); err != nil {
		t.Fatal(err)
	}
	if err := e.Refresh(); err != nil {
		t.Fatal(err)
	}
	after, err := e.Query(`for { p <- P } yield count 1`)
	if err != nil {
		t.Fatal(err)
	}
	if after.Int() != before.Int()+1 {
		t.Fatalf("after refresh count = %v, want %v", after, before.Int()+1)
	}
}

func TestTypeErrorsSurface(t *testing.T) {
	e := newEngine(t, Options{})
	if _, err := e.Query(`for { p <- Patients } yield sum p.nosuch`); err == nil {
		t.Fatal("unknown attribute should fail type checking")
	}
	if _, err := e.Query(`for { p <- NoSuchSource } yield count 1`); err == nil {
		t.Fatal("unknown source should fail")
	}
	if _, err := e.Query(`for { p <- `); err == nil {
		t.Fatal("syntax error should fail")
	}
}

func TestExplain(t *testing.T) {
	e := newEngine(t, Options{})
	s, err := e.Explain(`for { p <- Patients, r <- Regions, p.id = r.id, p.age > 30 } yield count 1`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Reduce[count]", "Join", "Scan(Patients"} {
		if !containsStr(s, want) {
			t.Fatalf("explain missing %q:\n%s", want, s)
		}
	}
}

func TestAdaptiveMode(t *testing.T) {
	e := newEngine(t, Options{Adaptive: true})
	got, err := e.Query(`for { p <- Patients, r <- Regions, p.id = r.id, p.age > 21 } yield count 1`)
	if err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, Options{})
	want, err := e2.Query(`for { p <- Patients, r <- Regions, p.id = r.id, p.age > 21 } yield count 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !values.Equal(got, want) {
		t.Fatalf("adaptive diverged: %v vs %v", got, want)
	}
}

func TestRegisterErrors(t *testing.T) {
	e := newEngine(t, Options{})
	schema := sdg.Bag(sdg.Record(sdg.Attr{Name: "a", Type: sdg.Int}))
	if err := e.Register(sdg.DefaultDescription("Patients", sdg.FormatCSV, "/nope.csv", schema)); err == nil {
		t.Fatal("duplicate/missing registration should fail")
	}
}

func TestDeregister(t *testing.T) {
	e := newEngine(t, Options{})
	if _, err := e.Query(`for { p <- Patients } yield count 1`); err != nil {
		t.Fatal(err)
	}
	e.Deregister("Patients")
	if _, err := e.Query(`for { p <- Patients } yield count 1`); err == nil {
		t.Fatal("query after deregister should fail")
	}
}

func TestAuxiliaryBytesReported(t *testing.T) {
	e := newEngine(t, Options{})
	if _, err := e.Query(`for { p <- Patients } yield sum p.score`); err != nil {
		t.Fatal(err)
	}
	if s := e.StatsSnapshot(); s.AuxiliaryBytes == 0 {
		t.Fatalf("auxiliary structures not accounted: %+v", s)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestConcurrentQueries exercises the engine from many goroutines: the
// caches, positional maps and plan cache are shared mutable state and
// must stay consistent (run under -race in CI).
func TestConcurrentQueries(t *testing.T) {
	e := newEngine(t, Options{})
	queries := []string{
		`for { p <- Patients, p.age > 30 } yield sum p.score`,
		`for { p <- Patients, r <- Regions, p.id = r.id } yield count 1`,
		`for { r <- Regions } yield max r.volume`,
		`for { p <- Patients } yield set p.city`,
	}
	// Sequential ground truth.
	want := make([]values.Value, len(queries))
	for i, q := range queries {
		v, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				qi := (g + i) % len(queries)
				v, err := e.Query(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if !values.Equal(v, want[qi]) {
					errs <- fmt.Errorf("goroutine %d: query %d diverged: %v vs %v", g, qi, v, want[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRefreshMidScanDropsStaleHarvest replaces the file and refreshes
// while a cold harvesting scan is in flight: the scan finishes over its
// own (old) generation, but its rows must NOT be promoted into the
// cache — otherwise every warm query would keep serving the old file's
// data at the new epoch.
func TestRefreshMidScanDropsStaleHarvest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	mkContent := func(v int) string {
		s := "id,v\n"
		for i := 0; i < 100; i++ {
			s += fmt.Sprintf("%d,%d\n", i, v)
		}
		return s
	}
	if err := os.WriteFile(path, []byte(mkContent(1)), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(Options{})
	typ, err := sdg.ParseSchema("Record(Att(id, int), Att(v, int))")
	if err != nil {
		t.Fatal(err)
	}
	desc := sdg.DefaultDescription("T", sdg.FormatCSV, path, sdg.Bag(typ))
	if err := eng.Register(desc); err != nil {
		t.Fatal(err)
	}

	src, ok := catalog{e: eng}.Source("T")
	if !ok {
		t.Fatal("no source")
	}
	n := 0
	err = src.Iterate([]string{"v"}, func(values.Value) error {
		n++
		if n == 50 {
			// Mid-scan: the file changes and Refresh notices.
			if err := os.WriteFile(path, []byte(mkContent(2)), 0o644); err != nil {
				return err
			}
			future := time.Now().Add(2 * time.Second)
			os.Chtimes(path, future, future)
			if err := eng.Refresh(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("scan yielded %d rows, want 100 (old generation)", n)
	}

	// The new generation must be what queries see: sum v == 200, not 100.
	res, err := eng.Query("for { r <- T } yield sum r.v")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int(); got != 200 {
		t.Fatalf("sum after mid-scan refresh = %d, want 200 (stale harvest leaked into the cache)", got)
	}
}

// TestHarvestInstallsTypedColumns checks the cold batch scan promotes
// its typed column vectors into the cache unboxed — int/float/string
// attributes keep their payload representation, bool attributes (no
// typed tag) fall back to boxed — and that the warm scan over the typed
// entry returns identical results.
func TestHarvestInstallsTypedColumns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	csv := "id,score,city,ok\n"
	for i := 0; i < 30; i++ {
		csv += fmt.Sprintf("%d,%g,c%d,%v\n", i, float64(i)/2, i%3, i%2 == 0)
	}
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Options{})
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "score", Type: sdg.Float},
		sdg.Attr{Name: "city", Type: sdg.String},
		sdg.Attr{Name: "ok", Type: sdg.Bool},
	))
	if err := e.Register(sdg.DefaultDescription("T", sdg.FormatCSV, path, schema)); err != nil {
		t.Fatal(err)
	}
	q := `for { x <- T, x.ok = true } yield bag (i := x.id, s := x.score, c := x.city, o := x.ok)`
	cold, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := e.Caches().Peek("T", cache.LayoutColumns)
	if !ok {
		t.Fatal("no columnar entry after cold scan")
	}
	wantTags := map[string]vec.Tag{"id": vec.Int64, "score": vec.Float64, "city": vec.Str, "ok": vec.Boxed}
	for name, want := range wantTags {
		col, ok := entry.Cols[name]
		if !ok {
			t.Fatalf("column %q not harvested", name)
		}
		if col.Tag != want {
			t.Fatalf("column %q tag = %v, want %v", name, col.Tag, want)
		}
	}
	rawBefore := e.StatsSnapshot().RawScans
	warm, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.StatsSnapshot().RawScans != rawBefore {
		// The warm run must come from the cache, not the file.
		t.Fatal("warm query touched raw data")
	}
	if !values.Equal(cold, warm) {
		t.Fatalf("cold %v != warm %v", cold, warm)
	}
}

// TestHarvestNullMaskRoundTrip checks null CSV cells survive the typed
// harvest (validity mask) and that warm results match cold ones.
func TestHarvestNullMaskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "n.csv")
	if err := os.WriteFile(path, []byte("id,v\n1,10\n2,\n3,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Options{})
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "v", Type: sdg.Int},
	))
	if err := e.Register(sdg.DefaultDescription("N", sdg.FormatCSV, path, schema)); err != nil {
		t.Fatal(err)
	}
	q := `for { x <- N, x.v > 5 } yield sum x.v` // null compares false
	cold, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := e.Caches().Peek("N", cache.LayoutColumns)
	if !ok {
		t.Fatal("no columnar entry")
	}
	vcol := entry.Cols["v"]
	if vcol.Tag != vec.Int64 || vcol.Nulls == nil || !vcol.Nulls[1] {
		t.Fatalf("v column = %+v, want typed with mask", vcol)
	}
	warm, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !values.Equal(cold, warm) || cold.Int() != 40 {
		t.Fatalf("cold %v warm %v", cold, warm)
	}
}
