package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync/atomic"

	"vida/internal/algebra"
	"vida/internal/jit"
	"vida/internal/sched"
	"vida/internal/trace"
	"vida/internal/values"
)

// streamChanCap bounds the chunks buffered between a streaming query's
// producers and its consumer. Resident memory of an open cursor is
// O(streamChanCap × batch size) rows regardless of result cardinality:
// once the channel is full, producers block in emit, which stalls morsel
// dispatch in the scheduler.
const streamChanCap = 4

// Rows is a streaming cursor over one query's result elements. Chunks of
// head values are pulled with NextChunk until it returns (nil, nil);
// Close aborts the producers and releases their pool slots, and must be
// called (it is idempotent and safe after exhaustion). A Rows is not
// safe for concurrent use.
type Rows struct {
	// Streaming state: ch carries chunk ownership from the producer
	// goroutine; err is written by the producer before it closes ch, so
	// the channel close is the synchronization point.
	cancel context.CancelFunc
	ch     chan []values.Value
	err    error

	// Materialized state (non-JIT executors, scalar results): the whole
	// result is already in memory and served as a single chunk.
	static    []values.Value
	staticEOF bool

	// closed is atomic so a double Close — including one racing the
	// producer's terminal error — stays safe; NextChunk itself remains
	// single-consumer.
	closed atomic.Bool
}

// RowsCtx opens a streaming cursor over the prepared query. Collection
// results (list/bag/set) under the JIT executor stream batch-at-a-time:
// morsel-parallel producers feed a bounded channel, and the first chunk
// is available as soon as the first batch clears the pipeline — long
// before a full materialization would finish. Everything else (scalar
// aggregates, the static/reference executors) executes eagerly and is
// served as a one-chunk cursor, so the cursor API is uniform across
// query shapes.
//
// Cancelling ctx aborts the stream mid-scan; abandoning a cursor without
// Close leaks its producer until ctx is cancelled, so callers must
// Close.
func (p *Prepared) RowsCtx(ctx context.Context, params map[string]values.Value) (*Rows, error) {
	plan, err := p.boundPlan(params)
	if err != nil {
		return nil, err
	}
	e := p.engine
	e.mu.RLock()
	mode := e.opts.Mode
	e.mu.RUnlock()
	if mode != ModeJIT || !jit.CanStream(plan) {
		v, err := p.runPlanCtx(ctx, plan)
		if err != nil {
			return nil, err
		}
		return materializedRows(v), nil
	}
	return e.streamRows(ctx, plan)
}

// streamRows starts the producer goroutine for a streamable plan. The
// producer holds a query slot in the engine's close gate for the whole
// stream, so Engine.Close drains open cursors like any other query.
func (e *Engine) streamRows(ctx context.Context, plan *algebra.Reduce) (*Rows, error) {
	if err := e.beginQuery(); err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	r := &Rows{cancel: cancel, ch: make(chan []values.Value, streamChanCap)}
	qm := e.newQueryMem()
	emit := jit.StreamSink(func(chunk []values.Value) error {
		select {
		case r.ch <- chunk:
			return nil
		case <-sctx.Done():
			return sctx.Err()
		}
	})
	if plan.M.Name() == "set" && plan.Order == nil {
		// Ordered and bounded set plans dedup inside the JIT root (before
		// the sort/quota applies); only plain set streams dedup here.
		emit = jit.DedupSink(emit, qm.reserveFunc())
	}
	e.queries.Add(1)
	rawBefore := e.rawScans.Load()
	execSp := trace.FromContext(ctx).Root().Child("execute")
	var inner jit.SchemaCatalog = catalog{e: e}
	if execSp != nil {
		inner = &tracedCatalog{e: e, sp: execSp}
	}
	cat := ctxCatalog{inner: inner, ctx: sctx}
	go func() {
		defer e.endQuery()
		defer qm.release()
		defer execSp.End()
		err := e.runStream(sctx, plan, cat, emit, qm, execSp)
		if err != nil {
			if errors.Is(err, ErrMemoryBudget) {
				e.memKills.Add(1)
			} else if ctxErr := sctx.Err(); ctxErr != nil {
				err = ctxErr
			}
		} else if e.rawScans.Load() == rawBefore {
			e.cacheQueries.Add(1)
		} else {
			e.rawQueries.Add(1)
		}
		// The err write happens-before close(ch): consumers that observe
		// the closed channel read a settled error.
		r.err = err
		close(r.ch)
	}()
	return r, nil
}

// runStream executes a streaming plan inside a recover barrier at the
// producer-goroutine boundary: a panic anywhere in the serial stream
// pipeline becomes the cursor's terminal error instead of crashing the
// process (parallel morsels have their own barrier in the scheduler).
func (e *Engine) runStream(ctx context.Context, plan *algebra.Reduce, cat jit.SchemaCatalog, emit jit.StreamSink, qm *queryMem, sp *trace.Span) (err error) {
	defer func() {
		if r := recover(); r != nil {
			perr, ok := r.(*sched.PanicError)
			if !ok {
				e.panics.Add(1)
				perr = &sched.PanicError{Value: r, Stack: debug.Stack()}
				slog.Error("recovered panic in stream producer",
					"component", "core", "panic", fmt.Sprint(r), "stack", string(perr.Stack))
			}
			err = perr
		}
	}()
	opts := jit.Options{Pool: e.opts.Pool, Workers: e.opts.Workers,
		NoExprKernels: e.opts.NoExprKernels, JoinPartitions: e.opts.JoinPartitions,
		MemReserve: qm.reserveFunc(), Trace: sp, KernelStats: e.kernelStatsFn,
		GroupStats: e.groupStatsFn, JoinStats: e.joinStatsFn}
	return jit.Executor{Opts: opts}.RunStream(ctx, plan, cat, emit)
}

// materializedRows wraps an already-computed result value as a cursor:
// collections become their element chunk, scalars a single-row chunk.
func materializedRows(v values.Value) *Rows {
	var chunk []values.Value
	if v.IsCollection() || v.Kind() == values.KindArray {
		chunk = v.Elems()
	} else {
		chunk = []values.Value{v}
	}
	return &Rows{static: chunk}
}

// NextChunk returns the next chunk of result elements, blocking until
// one is available. It returns (nil, nil) once the stream is exhausted
// and (nil, err) when the query failed or was cancelled. The returned
// slice is owned by the caller.
func (r *Rows) NextChunk() ([]values.Value, error) {
	if r.closed.Load() {
		return nil, r.err
	}
	if r.static != nil || r.staticEOF {
		chunk := r.static
		r.static, r.staticEOF = nil, true
		return chunk, nil
	}
	if r.ch == nil {
		return nil, nil
	}
	chunk, ok := <-r.ch
	if !ok {
		return nil, r.err
	}
	return chunk, nil
}

// Close aborts the stream and waits for the producer to exit, releasing
// the engine's query slot and the scheduler's workers. Idempotent and
// safe for concurrent calls (every caller drains until the producer's
// channel close, so each returns with the terminal error settled).
func (r *Rows) Close() error {
	r.closed.Store(true)
	if r.cancel != nil {
		r.cancel()
	}
	if r.ch != nil {
		// Drain until the producer closes the channel: its exit is what
		// releases the close-gate slot.
		for range r.ch {
		}
	}
	return nil
}

// Err returns the terminal stream error, if any. Valid after NextChunk
// returned nil or Close was called.
func (r *Rows) Err() error { return r.err }
