package storagecol

import (
	"fmt"
	"os"
	"testing"

	"vida/internal/basequery"
	"vida/internal/sdg"
	"vida/internal/values"
)

func attrs() []sdg.Attr {
	return []sdg.Attr{
		{Name: "id", Type: sdg.Int},
		{Name: "city", Type: sdg.String},
		{Name: "score", Type: sdg.Float},
		{Name: "ok", Type: sdg.Bool},
	}
}

func load(t *testing.T, n int) (*Store, *Table, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable("T", attrs())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		err := tbl.Insert([]values.Value{
			values.NewInt(int64(i)),
			values.NewString(fmt.Sprintf("c%d", i%7)),
			values.NewFloat(float64(i) / 4),
			values.NewBool(i%3 == 0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.FinishLoad(dir); err != nil {
		t.Fatal(err)
	}
	return s, tbl, dir
}

func TestScanRoundTrip(t *testing.T) {
	_, tbl, _ := load(t, 500)
	var rows []values.Value
	if err := tbl.Scan(nil, nil, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[13].MustGet("city").Str() != "c6" || rows[13].MustGet("score").Float() != 3.25 {
		t.Fatalf("row 13 = %v", rows[13])
	}
}

func TestSelectionVector(t *testing.T) {
	_, tbl, _ := load(t, 100)
	preds := []basequery.Pred{
		{Col: "score", Op: basequery.OpGe, Val: values.NewFloat(20)},
		{Col: "ok", Op: basequery.OpEq, Val: values.True},
	}
	sel, err := tbl.Select(preds)
	if err != nil {
		t.Fatal(err)
	}
	// score >= 20 → i >= 80; ok → i%3==0 → 81, 84, ..., 99 → 7 rows.
	if len(sel) != 7 {
		t.Fatalf("selection = %v", sel)
	}
}

func TestAggregateFastPath(t *testing.T) {
	_, tbl, _ := load(t, 100)
	sum, err := tbl.Aggregate(basequery.AggSum, "score", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < 100; i++ {
		want += float64(i) / 4
	}
	if sum.Float() != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	cnt, err := tbl.Aggregate(basequery.AggCount, "", []basequery.Pred{
		{Col: "id", Op: basequery.OpLt, Val: values.NewInt(10)},
	})
	if err != nil || cnt.Int() != 10 {
		t.Fatalf("count = %v, %v", cnt, err)
	}
	mx, err := tbl.Aggregate(basequery.AggMax, "id", nil)
	if err != nil || mx.Int() != 99 {
		t.Fatalf("max = %v, %v", mx, err)
	}
	avg, err := tbl.Aggregate(basequery.AggAvg, "id", nil)
	if err != nil || avg.Float() != 49.5 {
		t.Fatalf("avg = %v, %v", avg, err)
	}
}

func TestDictionaryEncoding(t *testing.T) {
	_, tbl, _ := load(t, 1000)
	n, err := tbl.DictSize("city")
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("dict size = %d, want 7 (distinct cities)", n)
	}
}

func TestNulls(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tbl, _ := s.CreateTable("N", attrs())
	if err := tbl.Insert([]values.Value{values.Null, values.Null, values.Null, values.Null}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]values.Value{values.NewInt(1), values.NewString("x"), values.NewFloat(2), values.True}); err != nil {
		t.Fatal(err)
	}
	var rows []values.Value
	_ = tbl.Scan(nil, nil, func(v values.Value) error { rows = append(rows, v); return nil })
	if !rows[0].MustGet("id").IsNull() || !rows[0].MustGet("city").IsNull() {
		t.Fatalf("nulls lost: %v", rows[0])
	}
	// Null rows never satisfy predicates.
	sel, err := tbl.Select([]basequery.Pred{{Col: "id", Op: basequery.OpGe, Val: values.NewInt(0)}})
	if err != nil || len(sel) != 1 {
		t.Fatalf("null filtering = %v, %v", sel, err)
	}
	// Aggregates skip nulls.
	avg, err := tbl.Aggregate(basequery.AggAvg, "score", nil)
	if err != nil || avg.Float() != 2 {
		t.Fatalf("avg over nulls = %v", avg)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tbl, _ := s.CreateTable("X", attrs())
	err := tbl.Insert([]values.Value{values.NewString("notint"), values.NewString("c"), values.NewFloat(1), values.True})
	if err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestPersistedFilesExist(t *testing.T) {
	_, tbl, dir := load(t, 10)
	if tbl.MemBytes() == 0 {
		t.Fatal("no memory accounted")
	}
	// One file per column.
	for _, a := range attrs() {
		path := fmt.Sprintf("%s/T.%s.col", dir, a.Name)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("column file missing: %v", err)
		}
	}
}

func TestUnknownColumn(t *testing.T) {
	_, tbl, _ := load(t, 5)
	if _, err := tbl.Select([]basequery.Pred{{Col: "zz", Op: basequery.OpEq, Val: values.NewInt(1)}}); err == nil {
		t.Fatal("unknown predicate column accepted")
	}
	if err := tbl.Scan([]string{"zz"}, nil, func(values.Value) error { return nil }); err == nil {
		t.Fatal("unknown projection column accepted")
	}
	if _, err := tbl.Aggregate(basequery.AggSum, "zz", nil); err == nil {
		t.Fatal("unknown aggregate column accepted")
	}
}
