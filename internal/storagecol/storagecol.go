// Package storagecol implements the column-store baseline of the paper's
// evaluation (its stand-in for MonetDB, DESIGN.md substitutions): fully
// loaded, typed column vectors — dictionary-encoded strings included —
// scanned column-at-a-time with selection vectors, persisted as one
// binary file per column. Loading converts every value up front, which is
// exactly the preparation cost Figure 5 charges against warehouse
// approaches; once loaded, its scans are the fastest in this repository,
// the bar ViDa's cache-hit latency is measured against (experiment E4).
package storagecol

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vida/internal/basequery"
	"vida/internal/sdg"
	"vida/internal/values"
)

// Store is a column-store database instance rooted in a directory.
type Store struct {
	mu     sync.Mutex
	dir    string
	tables map[string]*Table
}

// Table is one loaded relation.
type Table struct {
	Name  string
	Attrs []sdg.Attr
	cols  []column
	byNam map[string]int
	rows  int
}

// column is one typed vector. Nulls are a side bitset.
type column interface {
	appendVal(v values.Value) error
	get(i int) values.Value
	// isNull avoids boxing in selection loops.
	isNull(i int) bool
	save(path string) error
	memBytes() int64
}

// Open creates (or reuses) a store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, tables: map[string]*Table{}}, nil
}

// CreateTable registers a relation; unlike the row store there is no
// attribute limit (column files are independent).
func (s *Store) CreateTable(name string, attrs []sdg.Attr) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("storagecol: table %q exists", name)
	}
	t := &Table{Name: name, Attrs: attrs, byNam: map[string]int{}}
	for i, a := range attrs {
		t.byNam[a.Name] = i
		switch a.Type.Kind {
		case sdg.TInt:
			t.cols = append(t.cols, &intColumn{})
		case sdg.TFloat:
			t.cols = append(t.cols, &floatColumn{})
		case sdg.TBool:
			t.cols = append(t.cols, &boolColumn{})
		default:
			t.cols = append(t.cols, newStringColumn())
		}
	}
	s.tables[name] = t
	return t, nil
}

// Table returns a registered relation.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	return t, ok
}

// Tables lists relations.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert appends one row (values in schema order).
func (t *Table) Insert(row []values.Value) error {
	if len(row) != len(t.Attrs) {
		return fmt.Errorf("storagecol: row arity %d != schema %d", len(row), len(t.Attrs))
	}
	for i, v := range row {
		if err := t.cols[i].appendVal(v); err != nil {
			return fmt.Errorf("storagecol: column %s: %w", t.Attrs[i].Name, err)
		}
	}
	t.rows++
	return nil
}

// InsertRecord appends a record value, matching fields by name.
func (t *Table) InsertRecord(rec values.Value) error {
	row := make([]values.Value, len(t.Attrs))
	for i, a := range t.Attrs {
		v, _ := rec.Get(a.Name)
		row[i] = v
	}
	return t.Insert(row)
}

// FinishLoad persists every column to its binary file (part of the
// warehouse preparation cost).
func (t *Table) FinishLoad(dir string) error {
	for i, c := range t.cols {
		path := filepath.Join(dir, fmt.Sprintf("%s.%s.col", sanitize(t.Name), sanitize(t.Attrs[i].Name)))
		if err := c.save(path); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, name)
}

// NumRows returns the loaded row count.
func (t *Table) NumRows() int { return t.rows }

// MemBytes reports the in-memory column footprint.
func (t *Table) MemBytes() int64 {
	var total int64
	for _, c := range t.cols {
		total += c.memBytes()
	}
	return total
}

// Scan streams records column-at-a-time: predicates first narrow a
// selection vector per column, then only the selected positions of the
// projected columns materialize.
func (t *Table) Scan(fields []string, preds []basequery.Pred, yield func(values.Value) error) error {
	sel, err := t.Select(preds)
	if err != nil {
		return err
	}
	if fields == nil {
		fields = make([]string, len(t.Attrs))
		for i, a := range t.Attrs {
			fields[i] = a.Name
		}
	}
	cols := make([]column, len(fields))
	for i, f := range fields {
		ci, ok := t.byNam[f]
		if !ok {
			return fmt.Errorf("storagecol: %s has no column %q", t.Name, f)
		}
		cols[i] = t.cols[ci]
	}
	for _, row := range sel {
		fs := make([]values.Field, len(fields))
		for i, c := range cols {
			fs[i] = values.Field{Name: fields[i], Val: c.get(row)}
		}
		if err := yield(values.NewRecord(fs...)); err != nil {
			return err
		}
	}
	return nil
}

// Select evaluates the predicates column-at-a-time and returns the
// selection vector (all row positions when preds is empty).
func (t *Table) Select(preds []basequery.Pred) ([]int, error) {
	sel := make([]int, t.rows)
	for i := range sel {
		sel[i] = i
	}
	for _, p := range preds {
		ci, ok := t.byNam[p.Col]
		if !ok {
			return nil, fmt.Errorf("storagecol: %s has no column %q", t.Name, p.Col)
		}
		col := t.cols[ci]
		out := sel[:0]
		for _, row := range sel {
			if col.isNull(row) {
				continue
			}
			if p.Eval(col.get(row)) {
				out = append(out, row)
			}
		}
		sel = out
	}
	return sel, nil
}

// Aggregate computes one aggregate over the selected rows of a column —
// the columnar fast path used by the Figure 5 warehouse runs.
func (t *Table) Aggregate(kind basequery.AggKind, col string, preds []basequery.Pred) (values.Value, error) {
	sel, err := t.Select(preds)
	if err != nil {
		return values.Null, err
	}
	acc := basequery.Accumulator{Kind: kind}
	if kind == basequery.AggCount {
		for range sel {
			acc.Add(values.Null)
		}
		return acc.Result(), nil
	}
	ci, ok := t.byNam[col]
	if !ok {
		return values.Null, fmt.Errorf("storagecol: %s has no column %q", t.Name, col)
	}
	c := t.cols[ci]
	for _, row := range sel {
		if c.isNull(row) {
			continue
		}
		acc.Add(c.get(row))
	}
	return acc.Result(), nil
}

// ---------------------------------------------------------------------------
// Concrete columns
// ---------------------------------------------------------------------------

type nullBits struct{ bits []uint64 }

func (n *nullBits) set(i int) {
	for len(n.bits) <= i/64 {
		n.bits = append(n.bits, 0)
	}
	n.bits[i/64] |= 1 << (i % 64)
}

func (n *nullBits) get(i int) bool {
	if i/64 >= len(n.bits) {
		return false
	}
	return n.bits[i/64]&(1<<(i%64)) != 0
}

type intColumn struct {
	vals  []int64
	nulls nullBits
}

func (c *intColumn) appendVal(v values.Value) error {
	if v.IsNull() {
		c.nulls.set(len(c.vals))
		c.vals = append(c.vals, 0)
		return nil
	}
	if v.Kind() != values.KindInt {
		return fmt.Errorf("want int, got %s", v.Kind())
	}
	c.vals = append(c.vals, v.Int())
	return nil
}

func (c *intColumn) get(i int) values.Value {
	if c.nulls.get(i) {
		return values.Null
	}
	return values.NewInt(c.vals[i])
}
func (c *intColumn) isNull(i int) bool { return c.nulls.get(i) }
func (c *intColumn) memBytes() int64   { return int64(len(c.vals)*8 + len(c.nulls.bits)*8) }
func (c *intColumn) save(path string) error {
	buf := make([]byte, 0, len(c.vals)*8+16)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.vals)))
	for _, v := range c.vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	for _, b := range c.nulls.bits {
		buf = binary.LittleEndian.AppendUint64(buf, b)
	}
	return os.WriteFile(path, buf, 0o644)
}

type floatColumn struct {
	vals  []float64
	nulls nullBits
}

func (c *floatColumn) appendVal(v values.Value) error {
	if v.IsNull() {
		c.nulls.set(len(c.vals))
		c.vals = append(c.vals, 0)
		return nil
	}
	if !v.IsNumeric() {
		return fmt.Errorf("want float, got %s", v.Kind())
	}
	c.vals = append(c.vals, v.Float())
	return nil
}

func (c *floatColumn) get(i int) values.Value {
	if c.nulls.get(i) {
		return values.Null
	}
	return values.NewFloat(c.vals[i])
}
func (c *floatColumn) isNull(i int) bool { return c.nulls.get(i) }
func (c *floatColumn) memBytes() int64   { return int64(len(c.vals)*8 + len(c.nulls.bits)*8) }
func (c *floatColumn) save(path string) error {
	buf := make([]byte, 0, len(c.vals)*8+16)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.vals)))
	for _, v := range c.vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, b := range c.nulls.bits {
		buf = binary.LittleEndian.AppendUint64(buf, b)
	}
	return os.WriteFile(path, buf, 0o644)
}

type boolColumn struct {
	vals  []bool
	nulls nullBits
}

func (c *boolColumn) appendVal(v values.Value) error {
	if v.IsNull() {
		c.nulls.set(len(c.vals))
		c.vals = append(c.vals, false)
		return nil
	}
	if v.Kind() != values.KindBool {
		return fmt.Errorf("want bool, got %s", v.Kind())
	}
	c.vals = append(c.vals, v.Bool())
	return nil
}

func (c *boolColumn) get(i int) values.Value {
	if c.nulls.get(i) {
		return values.Null
	}
	return values.NewBool(c.vals[i])
}
func (c *boolColumn) isNull(i int) bool { return c.nulls.get(i) }
func (c *boolColumn) memBytes() int64   { return int64(len(c.vals) + len(c.nulls.bits)*8) }
func (c *boolColumn) save(path string) error {
	buf := make([]byte, 0, len(c.vals)+16)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.vals)))
	for _, v := range c.vals {
		if v {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return os.WriteFile(path, buf, 0o644)
}

// stringColumn is dictionary-encoded: distinct strings live once in dict,
// rows store int32 codes (-1 = null).
type stringColumn struct {
	dict  []string
	codes []int32
	index map[string]int32
}

func newStringColumn() *stringColumn {
	return &stringColumn{index: map[string]int32{}}
}

func (c *stringColumn) appendVal(v values.Value) error {
	if v.IsNull() {
		c.codes = append(c.codes, -1)
		return nil
	}
	if v.Kind() != values.KindString {
		return fmt.Errorf("want string, got %s", v.Kind())
	}
	s := v.Str()
	code, ok := c.index[s]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, s)
		c.index[s] = code
	}
	c.codes = append(c.codes, code)
	return nil
}

func (c *stringColumn) get(i int) values.Value {
	code := c.codes[i]
	if code < 0 {
		return values.Null
	}
	return values.NewString(c.dict[code])
}
func (c *stringColumn) isNull(i int) bool { return c.codes[i] < 0 }
func (c *stringColumn) memBytes() int64 {
	total := int64(len(c.codes) * 4)
	for _, s := range c.dict {
		total += int64(len(s)) + 16
	}
	return total
}
func (c *stringColumn) save(path string) error {
	buf := make([]byte, 0, len(c.codes)*4+64)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.dict)))
	for _, s := range c.dict {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.codes)))
	for _, code := range c.codes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(code))
	}
	return os.WriteFile(path, buf, 0o644)
}

// DictSize reports the dictionary cardinality of a string column (tests).
func (t *Table) DictSize(col string) (int, error) {
	ci, ok := t.byNam[col]
	if !ok {
		return 0, fmt.Errorf("storagecol: no column %q", col)
	}
	sc, ok := t.cols[ci].(*stringColumn)
	if !ok {
		return 0, fmt.Errorf("storagecol: %q is not a string column", col)
	}
	return len(sc.dict), nil
}
