package mcl

import (
	"fmt"
	"strings"

	"vida/internal/monoid"
	"vida/internal/sdg"
	"vida/internal/values"
)

// TypeError is a static typing error.
type TypeError struct{ Msg string }

func (e *TypeError) Error() string { return "mcl: type: " + e.Msg }

func typeErrf(format string, args ...any) error {
	return &TypeError{Msg: fmt.Sprintf(format, args...)}
}

// TypeEnv maps variables (data sources and comprehension bindings) to
// their structural types.
type TypeEnv struct {
	vars   map[string]*sdg.Type
	parent *TypeEnv
}

// NewTypeEnv builds a root type environment.
func NewTypeEnv(vars map[string]*sdg.Type) *TypeEnv {
	if vars == nil {
		vars = map[string]*sdg.Type{}
	}
	return &TypeEnv{vars: vars}
}

// Bind returns a child environment with one extra binding.
func (e *TypeEnv) Bind(name string, t *sdg.Type) *TypeEnv {
	return &TypeEnv{vars: map[string]*sdg.Type{name: t}, parent: e}
}

// Lookup resolves a variable's type.
func (e *TypeEnv) Lookup(name string) (*sdg.Type, bool) {
	for env := e; env != nil; env = env.parent {
		if t, ok := env.vars[name]; ok {
			return t, true
		}
	}
	return nil, false
}

// Check type-checks an expression, returning its inferred type. Gradual
// typing: sources without full schemas contribute Unknown, which unifies
// with everything (raw JSON objects routinely have open schemas). Check
// also resolves the monoid of untyped ++ merges in place.
func Check(e Expr, env *TypeEnv) (*sdg.Type, error) {
	switch n := e.(type) {
	case *NullExpr:
		return sdg.Unknown, nil
	case *ConstExpr:
		switch n.Val.Kind() {
		case values.KindBool:
			return sdg.Bool, nil
		case values.KindInt:
			return sdg.Int, nil
		case values.KindFloat:
			return sdg.Float, nil
		case values.KindString:
			return sdg.String, nil
		}
		return sdg.Unknown, nil
	case *VarExpr:
		t, ok := env.Lookup(n.Name)
		if !ok {
			return nil, typeErrf("unbound variable %q", n.Name)
		}
		return t, nil
	case *ParamExpr:
		// Bind parameters are typed holes: they unify with anything at
		// prepare time and are constrained only when a value is bound.
		return sdg.Unknown, nil
	case *ProjExpr:
		rt, err := Check(n.Rec, env)
		if err != nil {
			return nil, err
		}
		switch rt.Kind {
		case sdg.TUnknown:
			return sdg.Unknown, nil
		case sdg.TRecord:
			if a, ok := rt.Attr(n.Attr); ok {
				return a.Type, nil
			}
			return nil, typeErrf("record %s has no attribute %q", abbreviate(rt), n.Attr)
		}
		return nil, typeErrf("projection .%s on %s", n.Attr, rt)
	case *RecordExpr:
		attrs := make([]sdg.Attr, len(n.Fields))
		for i, f := range n.Fields {
			ft, err := Check(f.Val, env)
			if err != nil {
				return nil, err
			}
			attrs[i] = sdg.Attr{Name: f.Name, Type: ft}
		}
		return sdg.Record(attrs...), nil
	case *IfExpr:
		ct, err := Check(n.Cond, env)
		if err != nil {
			return nil, err
		}
		if ct.Kind != sdg.TBool && ct.Kind != sdg.TUnknown {
			return nil, typeErrf("if condition must be bool, got %s", ct)
		}
		tt, err := Check(n.Then, env)
		if err != nil {
			return nil, err
		}
		et, err := Check(n.Else, env)
		if err != nil {
			return nil, err
		}
		u, ok := unify(tt, et)
		if !ok {
			return nil, typeErrf("if branches have incompatible types %s and %s", tt, et)
		}
		return u, nil
	case *BinExpr:
		return checkBin(n, env)
	case *NotExpr:
		t, err := Check(n.E, env)
		if err != nil {
			return nil, err
		}
		if t.Kind != sdg.TBool && t.Kind != sdg.TUnknown {
			return nil, typeErrf("not needs bool, got %s", t)
		}
		return sdg.Bool, nil
	case *NegExpr:
		t, err := Check(n.E, env)
		if err != nil {
			return nil, err
		}
		if !t.IsNumeric() && t.Kind != sdg.TUnknown {
			return nil, typeErrf("negation needs numeric, got %s", t)
		}
		return t, nil
	case *LambdaExpr:
		// Lambdas appear only in bind qualifiers and direct application;
		// they have no first-class structural type.
		if _, err := Check(n.Body, env.Bind(n.Param, sdg.Unknown)); err != nil {
			return nil, err
		}
		return sdg.Unknown, nil
	case *ApplyExpr:
		if _, err := Check(n.Arg, env); err != nil {
			return nil, err
		}
		if lam, ok := n.Fn.(*LambdaExpr); ok {
			at, err := Check(n.Arg, env)
			if err != nil {
				return nil, err
			}
			return Check(lam.Body, env.Bind(lam.Param, at))
		}
		return sdg.Unknown, nil
	case *CallExpr:
		return checkCall(n, env)
	case *ZeroExpr:
		return monoidResultType(n.M, sdg.Unknown)
	case *SingletonExpr:
		et, err := Check(n.E, env)
		if err != nil {
			return nil, err
		}
		return monoidResultType(n.M, et)
	case *MergeExpr:
		lt, err := Check(n.L, env)
		if err != nil {
			return nil, err
		}
		rt, err := Check(n.R, env)
		if err != nil {
			return nil, err
		}
		u, ok := unify(lt, rt)
		if !ok {
			return nil, typeErrf("++ operands have incompatible types %s and %s", lt, rt)
		}
		if n.M == nil {
			switch u.Kind {
			case sdg.TList, sdg.TUnknown:
				n.M = monoid.List
			case sdg.TBag:
				n.M = monoid.Bag
			case sdg.TSet:
				n.M = monoid.Set
			case sdg.TArray:
				n.M = monoid.Array
			default:
				return nil, typeErrf("++ needs collection operands, got %s", u)
			}
		}
		return u, nil
	case *IndexExpr:
		at, err := Check(n.Arr, env)
		if err != nil {
			return nil, err
		}
		for _, ix := range n.Idxs {
			it, err := Check(ix, env)
			if err != nil {
				return nil, err
			}
			if it.Kind != sdg.TInt && it.Kind != sdg.TUnknown {
				return nil, typeErrf("array index must be int, got %s", it)
			}
		}
		switch at.Kind {
		case sdg.TUnknown:
			return sdg.Unknown, nil
		case sdg.TArray:
			if len(n.Idxs) != len(at.Dims) {
				return nil, typeErrf("index rank %d != array rank %d", len(n.Idxs), len(at.Dims))
			}
			return at.Elem, nil
		case sdg.TList:
			if len(n.Idxs) != 1 {
				return nil, typeErrf("list index must be one-dimensional")
			}
			return at.Elem, nil
		}
		return nil, typeErrf("cannot index %s", at)
	case *Comprehension:
		return checkComprehension(n, env)
	}
	return nil, typeErrf("unknown expression %T", e)
}

func checkBin(n *BinExpr, env *TypeEnv) (*sdg.Type, error) {
	lt, err := Check(n.L, env)
	if err != nil {
		return nil, err
	}
	rt, err := Check(n.R, env)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe:
		if _, ok := unify(lt, rt); !ok {
			return nil, typeErrf("cannot compare %s with %s", lt, rt)
		}
		return sdg.Bool, nil
	case OpAnd, OpOr:
		for _, t := range []*sdg.Type{lt, rt} {
			if t.Kind != sdg.TBool && t.Kind != sdg.TUnknown {
				return nil, typeErrf("%s needs bool operands, got %s", n.Op, t)
			}
		}
		return sdg.Bool, nil
	case OpAdd:
		if lt.Kind == sdg.TString && rt.Kind == sdg.TString {
			return sdg.String, nil
		}
		fallthrough
	case OpSub, OpMul, OpDiv:
		return numericResult(n.Op, lt, rt)
	case OpMod:
		for _, t := range []*sdg.Type{lt, rt} {
			if t.Kind != sdg.TInt && t.Kind != sdg.TUnknown {
				return nil, typeErrf("%% needs int operands, got %s", t)
			}
		}
		return sdg.Int, nil
	}
	return nil, typeErrf("unknown operator %s", n.Op)
}

func numericResult(op BinOp, lt, rt *sdg.Type) (*sdg.Type, error) {
	for _, t := range []*sdg.Type{lt, rt} {
		if !t.IsNumeric() && t.Kind != sdg.TUnknown {
			return nil, typeErrf("%s needs numeric operands, got %s", op, t)
		}
	}
	if lt.Kind == sdg.TUnknown || rt.Kind == sdg.TUnknown {
		return sdg.Unknown, nil
	}
	if lt.Kind == sdg.TInt && rt.Kind == sdg.TInt {
		return sdg.Int, nil
	}
	return sdg.Float, nil
}

func checkCall(n *CallExpr, env *TypeEnv) (*sdg.Type, error) {
	argTypes := make([]*sdg.Type, len(n.Args))
	for i, a := range n.Args {
		t, err := Check(a, env)
		if err != nil {
			return nil, err
		}
		argTypes[i] = t
	}
	requireString := func(i int) error {
		if argTypes[i].Kind != sdg.TString && argTypes[i].Kind != sdg.TUnknown {
			return typeErrf("%s argument %d must be string, got %s", n.Name, i+1, argTypes[i])
		}
		return nil
	}
	switch n.Name {
	case "len":
		return sdg.Int, nil
	case "abs":
		if !argTypes[0].IsNumeric() && argTypes[0].Kind != sdg.TUnknown {
			return nil, typeErrf("abs needs numeric, got %s", argTypes[0])
		}
		return argTypes[0], nil
	case "sqrt", "floor", "ceil":
		if !argTypes[0].IsNumeric() && argTypes[0].Kind != sdg.TUnknown {
			return nil, typeErrf("%s needs numeric, got %s", n.Name, argTypes[0])
		}
		return sdg.Float, nil
	case "lower", "upper", "trim":
		if err := requireString(0); err != nil {
			return nil, err
		}
		return sdg.String, nil
	case "substr":
		if err := requireString(0); err != nil {
			return nil, err
		}
		return sdg.String, nil
	case "contains", "startswith", "endswith":
		if err := requireString(0); err != nil {
			return nil, err
		}
		if err := requireString(1); err != nil {
			return nil, err
		}
		return sdg.Bool, nil
	case "toint":
		return sdg.Int, nil
	case "tofloat":
		return sdg.Float, nil
	case "tostring":
		return sdg.String, nil
	}
	return nil, typeErrf("unknown builtin %q", n.Name)
}

func checkComprehension(c *Comprehension, env *TypeEnv) (*sdg.Type, error) {
	cur := env
	for _, q := range c.Qs {
		switch {
		case q.IsGenerator():
			st, err := Check(q.Src, cur)
			if err != nil {
				return nil, err
			}
			var elem *sdg.Type
			switch st.Kind {
			case sdg.TList, sdg.TBag, sdg.TSet:
				elem = st.Elem
			case sdg.TArray:
				elem = st.Elem
			case sdg.TUnknown:
				elem = sdg.Unknown
			default:
				return nil, typeErrf("generator %s <- needs a collection, got %s", q.Var, st)
			}
			cur = cur.Bind(q.Var, elem)
		case q.IsBind():
			bt, err := Check(q.Src, cur)
			if err != nil {
				return nil, err
			}
			cur = cur.Bind(q.Var, bt)
		default:
			pt, err := Check(q.Src, cur)
			if err != nil {
				return nil, err
			}
			if pt.Kind != sdg.TBool && pt.Kind != sdg.TUnknown {
				return nil, typeErrf("filter must be bool, got %s", pt)
			}
		}
	}
	if c.Grouped() {
		// Keys and aggregate inputs see the qualifier scope; Head, Having
		// and Order keys see the group scope: the OUTER environment plus
		// the key and aggregate names (qualifier variables are gone after
		// the fold).
		group := env
		for _, k := range c.GroupBy {
			kt, err := Check(k.E, cur)
			if err != nil {
				return nil, err
			}
			group = group.Bind(k.Name, kt)
		}
		for _, a := range c.Aggs {
			at, err := Check(a.E, cur)
			if err != nil {
				return nil, err
			}
			rt, err := monoidResultType(a.M, at)
			if err != nil {
				return nil, err
			}
			group = group.Bind(a.Name, rt)
		}
		if !monoid.IsCollection(c.M) {
			return nil, typeErrf("group by requires a collection monoid, not %s", c.M.Name())
		}
		if c.Having != nil {
			pt, err := Check(c.Having, group)
			if err != nil {
				return nil, err
			}
			if pt.Kind != sdg.TBool && pt.Kind != sdg.TUnknown {
				return nil, typeErrf("having must be bool, got %s", pt)
			}
		}
		cur = group
	}
	ht, err := Check(c.Head, cur)
	if err != nil {
		return nil, err
	}
	if c.HasBound() && !monoid.IsCollection(c.M) {
		return nil, typeErrf("order by/limit/offset require a collection monoid, not %s", c.M.Name())
	}
	// Order keys type-check in the qualifiers' scope (any comparable
	// type); limit/offset are outer-scope integers (or parameter holes).
	for _, k := range c.Order {
		if _, err := Check(k.E, cur); err != nil {
			return nil, err
		}
	}
	for _, bound := range []Expr{c.Limit, c.Offset} {
		if bound == nil {
			continue
		}
		bt, err := Check(bound, env)
		if err != nil {
			return nil, err
		}
		if bt.Kind != sdg.TInt && bt.Kind != sdg.TUnknown {
			return nil, typeErrf("limit/offset must be int, got %s", bt)
		}
	}
	rt, err := monoidResultType(c.M, ht)
	if err != nil {
		return nil, err
	}
	if c.IsOrdered() {
		// An ordered comprehension yields its elements as a list.
		return sdg.List(ht), nil
	}
	return rt, nil
}

// monoidResultType gives the type of yield ⊕ head given the head type.
func monoidResultType(m monoid.Monoid, head *sdg.Type) (*sdg.Type, error) {
	name := m.Name()
	switch name {
	case "sum", "prod":
		if !head.IsNumeric() && head.Kind != sdg.TUnknown {
			return nil, typeErrf("yield %s needs numeric head, got %s", name, head)
		}
		return head, nil
	case "count":
		return sdg.Int, nil
	case "max", "min":
		return head, nil
	case "avg", "median":
		if !head.IsNumeric() && head.Kind != sdg.TUnknown {
			return nil, typeErrf("yield %s needs numeric head, got %s", name, head)
		}
		return sdg.Float, nil
	case "and", "or":
		if head.Kind != sdg.TBool && head.Kind != sdg.TUnknown {
			return nil, typeErrf("yield %s needs bool head, got %s", name, head)
		}
		return sdg.Bool, nil
	case "list":
		return sdg.List(head), nil
	case "bag":
		return sdg.Bag(head), nil
	case "set":
		return sdg.Set(head), nil
	case "array":
		return sdg.Array([]sdg.Dim{{Name: "i", Type: sdg.Int}}, head), nil
	}
	if strings.HasPrefix(name, "top") {
		return sdg.List(head), nil
	}
	return nil, typeErrf("unknown monoid %q", name)
}

// unify merges two types under gradual typing: Unknown absorbs, numeric
// types widen to float, identical types pass through, and collections and
// records unify component-wise.
func unify(a, b *sdg.Type) (*sdg.Type, bool) {
	if a.Kind == sdg.TUnknown {
		return b, true
	}
	if b.Kind == sdg.TUnknown {
		return a, true
	}
	if a.Equal(b) {
		return a, true
	}
	if a.IsNumeric() && b.IsNumeric() {
		return sdg.Float, true
	}
	if a.Kind == b.Kind {
		switch a.Kind {
		case sdg.TList, sdg.TBag, sdg.TSet:
			if e, ok := unify(a.Elem, b.Elem); ok {
				return &sdg.Type{Kind: a.Kind, Elem: e}, true
			}
		case sdg.TRecord:
			if len(a.Attrs) != len(b.Attrs) {
				return nil, false
			}
			attrs := make([]sdg.Attr, len(a.Attrs))
			for i := range a.Attrs {
				if a.Attrs[i].Name != b.Attrs[i].Name {
					return nil, false
				}
				u, ok := unify(a.Attrs[i].Type, b.Attrs[i].Type)
				if !ok {
					return nil, false
				}
				attrs[i] = sdg.Attr{Name: a.Attrs[i].Name, Type: u}
			}
			return sdg.Record(attrs...), true
		}
	}
	return nil, false
}

func abbreviate(t *sdg.Type) string {
	s := t.String()
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
