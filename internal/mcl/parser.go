package mcl

import (
	"strconv"

	"vida/internal/monoid"
	"vida/internal/values"
)

// Parse parses a complete expression (usually a comprehension) and
// returns its AST.
func Parse(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, errf(p.tok.Pos, "unexpected %s after expression", p.tok)
	}
	return e, nil
}

// MustParse parses src or panics; intended for tests and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// parser is a recursive-descent parser with one token of lookahead plus an
// explicit peek buffer for the record-constructor ambiguity.
type parser struct {
	lx   *lexer
	tok  Token
	buf  []Token // pushback stack
	deep int     // recursion guard
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	return p, p.advance()
}

func (p *parser) advance() error {
	if n := len(p.buf); n > 0 {
		p.tok = p.buf[n-1]
		p.buf = p.buf[:n-1]
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peekAhead returns the next token without consuming the current one.
func (p *parser) peekAhead() (Token, error) {
	cur := p.tok
	if err := p.advance(); err != nil {
		return Token{}, err
	}
	next := p.tok
	p.buf = append(p.buf, next)
	p.tok = cur
	return next, nil
}

func (p *parser) expect(kind TokKind, what string) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", what, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokIdent && p.tok.Text == kw
}

const maxDepth = 512

func (p *parser) enter() error {
	p.deep++
	if p.deep > maxDepth {
		return errf(p.tok.Pos, "expression too deeply nested")
	}
	return nil
}

func (p *parser) leave() { p.deep-- }

// parseExpr := orExpr
func (p *parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.isKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[TokKind]BinOp{
	TokEq: OpEq, TokNeq: OpNeq, TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.tok.Kind]; ok {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

// parseConcat handles e1 ++ e2 (monoid merge; the monoid is resolved by
// the type checker from operand types, defaulting to list concatenation).
func (p *parser) parseConcat() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokConcat {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = &MergeExpr{M: nil, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		op := OpAdd
		if p.tok.Kind == TokMinus {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.tok.Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		case TokPercent:
			op = OpMod
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TokMinus {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals immediately.
		if c, ok := e.(*ConstExpr); ok {
			switch c.Val.Kind() {
			case values.KindInt:
				return &ConstExpr{Val: values.NewInt(-c.Val.Int())}, nil
			case values.KindFloat:
				return &ConstExpr{Val: values.NewFloat(-c.Val.Float())}, nil
			}
		}
		return &NegExpr{E: e}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.Kind {
		case TokDot:
			if err := p.advance(); err != nil {
				return nil, err
			}
			id, err := p.expect(TokIdent, "attribute name")
			if err != nil {
				return nil, err
			}
			e = &ProjExpr{Rec: e, Attr: id.Text}
		case TokLBracket:
			if err := p.advance(); err != nil {
				return nil, err
			}
			var idxs []Expr
			for {
				ix, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				idxs = append(idxs, ix)
				if p.tok.Kind == TokComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if _, err := p.expect(TokRBracket, "]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{Arr: e, Idxs: idxs}
		case TokLParen:
			// Postfix application: e(arg). Builtin calls are produced in
			// parsePrimary; this handles lambda application.
			if err := p.advance(); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen, ")"); err != nil {
				return nil, err
			}
			e = &ApplyExpr{Fn: e, Arg: arg}
		default:
			return e, nil
		}
	}
}

// builtinArity gives the arity of each builtin function.
var builtinArity = map[string]int{
	"len": 1, "abs": 1, "sqrt": 1, "floor": 1, "ceil": 1,
	"lower": 1, "upper": 1, "trim": 1,
	"substr": 3, "contains": 2, "startswith": 2, "endswith": 2,
	"toint": 1, "tofloat": 1, "tostring": 1,
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokInt:
		n, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, errf(p.tok.Pos, "bad integer %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ConstExpr{Val: values.NewInt(n)}, nil
	case TokFloat:
		f, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, errf(p.tok.Pos, "bad float %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ConstExpr{Val: values.NewFloat(f)}, nil
	case TokString:
		s := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ConstExpr{Val: values.NewString(s)}, nil
	case TokParam:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ParamExpr{Name: name}, nil
	case TokLambda:
		if err := p.advance(); err != nil {
			return nil, err
		}
		id, err := p.expect(TokIdent, "lambda parameter")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokFatArrow, "->"); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &LambdaExpr{Param: id.Text, Body: body}, nil
	case TokLParen:
		return p.parseParenOrRecord()
	case TokLBracket:
		// List literal [e1, ..., en].
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems []Expr
		if p.tok.Kind != TokRBracket {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.tok.Kind == TokComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
		}
		if _, err := p.expect(TokRBracket, "]"); err != nil {
			return nil, err
		}
		return collectionLiteral(monoid.List, elems), nil
	case TokIdent:
		return p.parseIdentLed()
	}
	return nil, errf(p.tok.Pos, "expected expression, found %s", p.tok)
}

// collectionLiteral desugars {e1,...,en} under monoid m into
// unit(e1) ⊕ ... ⊕ unit(en), or zero for the empty literal.
func collectionLiteral(m monoid.Monoid, elems []Expr) Expr {
	if len(elems) == 0 {
		return &ZeroExpr{M: m}
	}
	var out Expr = &SingletonExpr{M: m, E: elems[0]}
	for _, e := range elems[1:] {
		out = &MergeExpr{M: m, L: out, R: &SingletonExpr{M: m, E: e}}
	}
	return out
}

func (p *parser) parseIdentLed() (Expr, error) {
	name := p.tok.Text
	pos := p.tok.Pos
	switch name {
	case "true":
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ConstExpr{Val: values.True}, nil
	case "false":
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ConstExpr{Val: values.False}, nil
	case "null":
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NullExpr{}, nil
	case "if":
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.isKeyword("then") {
			return nil, errf(p.tok.Pos, "expected 'then', found %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.isKeyword("else") {
			return nil, errf(p.tok.Pos, "expected 'else', found %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &IfExpr{Cond: cond, Then: then, Else: els}, nil
	case "for":
		return p.parseComprehension()
	case "zero":
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLBracket, "["); err != nil {
			return nil, err
		}
		id, err := p.expect(TokIdent, "monoid name")
		if err != nil {
			return nil, err
		}
		m, err := monoid.ByName(id.Text)
		if err != nil {
			return nil, errf(id.Pos, "%v", err)
		}
		if _, err := p.expect(TokRBracket, "]"); err != nil {
			return nil, err
		}
		return &ZeroExpr{M: m}, nil
	case "unit":
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLBracket, "["); err != nil {
			return nil, err
		}
		id, err := p.expect(TokIdent, "monoid name")
		if err != nil {
			return nil, err
		}
		m, err := monoid.ByName(id.Text)
		if err != nil {
			return nil, errf(id.Pos, "%v", err)
		}
		if _, err := p.expect(TokRBracket, "]"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen, "("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return &SingletonExpr{M: m, E: e}, nil
	case "set", "bag", "list":
		// Collection literal set{...}, bag{...}, list{...}.
		next, err := p.peekAhead()
		if err != nil {
			return nil, err
		}
		if next.Kind == TokLBrace {
			m, _ := monoid.ByName(name)
			if err := p.advance(); err != nil { // consume keyword
				return nil, err
			}
			if err := p.advance(); err != nil { // consume {
				return nil, err
			}
			var elems []Expr
			if p.tok.Kind != TokRBrace {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					elems = append(elems, e)
					if p.tok.Kind == TokComma {
						if err := p.advance(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
			}
			if _, err := p.expect(TokRBrace, "}"); err != nil {
				return nil, err
			}
			return collectionLiteral(m, elems), nil
		}
	}
	if keywords[name] {
		return nil, errf(pos, "unexpected keyword %q", name)
	}
	// Builtin call?
	if arity, ok := builtinArity[name]; ok {
		next, err := p.peekAhead()
		if err != nil {
			return nil, err
		}
		if next.Kind == TokLParen {
			if err := p.advance(); err != nil { // consume name
				return nil, err
			}
			if err := p.advance(); err != nil { // consume (
				return nil, err
			}
			var args []Expr
			if p.tok.Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.tok.Kind == TokComma {
						if err := p.advance(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
			}
			if _, err := p.expect(TokRParen, ")"); err != nil {
				return nil, err
			}
			if len(args) != arity {
				return nil, errf(pos, "%s expects %d arguments, got %d", name, arity, len(args))
			}
			return &CallExpr{Name: name, Args: args}, nil
		}
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &VarExpr{Name: name}, nil
}

// parseParenOrRecord disambiguates "(" expr ")" from record construction
// "(" ident ":=" ... ")".
func (p *parser) parseParenOrRecord() (Expr, error) {
	if _, err := p.expect(TokLParen, "("); err != nil {
		return nil, err
	}
	if p.tok.Kind == TokIdent && !keywords[p.tok.Text] {
		next, err := p.peekAhead()
		if err != nil {
			return nil, err
		}
		if next.Kind == TokAssign {
			return p.parseRecordBody()
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parseRecordBody() (Expr, error) {
	var fields []FieldExpr
	for {
		id, err := p.expect(TokIdent, "field name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign, ":="); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fields = append(fields, FieldExpr{Name: id.Text, Val: v})
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	return &RecordExpr{Fields: fields}, nil
}

func (p *parser) parseComprehension() (Expr, error) {
	if err := p.advance(); err != nil { // consume "for"
		return nil, err
	}
	if _, err := p.expect(TokLBrace, "{"); err != nil {
		return nil, err
	}
	var qs []Qualifier
	for {
		q, err := p.parseQualifier()
		if err != nil {
			return nil, err
		}
		qs = append(qs, q)
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(TokRBrace, "}"); err != nil {
		return nil, err
	}
	// Optional grouping clause. "group", "by", "agg" and "having" are
	// contextual keywords, like the ordering clauses below.
	var groupBy []GroupKey
	var aggs []AggSpec
	var having Expr
	if p.isKeyword("group") {
		next, err := p.peekAhead()
		if err != nil {
			return nil, err
		}
		if next.Kind == TokIdent && next.Text == "by" {
			if err := p.advance(); err != nil { // group
				return nil, err
			}
			if err := p.advance(); err != nil { // by
				return nil, err
			}
			if _, err := p.expect(TokLBrace, "{"); err != nil {
				return nil, err
			}
			for {
				id, err := p.expect(TokIdent, "group key name")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokAssign, ":="); err != nil {
					return nil, err
				}
				ke, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				groupBy = append(groupBy, GroupKey{Name: id.Text, E: ke})
				if p.tok.Kind == TokComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if _, err := p.expect(TokRBrace, "}"); err != nil {
				return nil, err
			}
			if p.isKeyword("agg") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if _, err := p.expect(TokLBrace, "{"); err != nil {
					return nil, err
				}
				for {
					id, err := p.expect(TokIdent, "aggregate name")
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(TokAssign, ":="); err != nil {
						return nil, err
					}
					mid, err := p.expect(TokIdent, "aggregate monoid name")
					if err != nil {
						return nil, err
					}
					am, err := monoid.ByName(mid.Text)
					if err != nil {
						return nil, errf(mid.Pos, "%v", err)
					}
					ae, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					aggs = append(aggs, AggSpec{Name: id.Text, M: am, E: ae})
					if p.tok.Kind == TokComma {
						if err := p.advance(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
				if _, err := p.expect(TokRBrace, "}"); err != nil {
					return nil, err
				}
			}
			if p.isKeyword("having") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				having, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
		}
	}
	if !p.isKeyword("yield") {
		return nil, errf(p.tok.Pos, "expected 'yield', found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	id, err := p.expect(TokIdent, "monoid name")
	if err != nil {
		return nil, err
	}
	m, err := monoid.ByName(id.Text)
	if err != nil {
		return nil, errf(id.Pos, "%v", err)
	}
	head, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	comp := &Comprehension{M: m, Head: head, Qs: qs, GroupBy: groupBy, Aggs: aggs, Having: having}
	if comp.Grouped() && !monoid.IsCollection(m) {
		return nil, errf(id.Pos, "group by requires a collection monoid, not %s", m.Name())
	}
	seenNames := map[string]bool{}
	for _, k := range comp.GroupBy {
		if seenNames[k.Name] {
			return nil, errf(p.tok.Pos, "duplicate group-scope name %q", k.Name)
		}
		seenNames[k.Name] = true
	}
	for _, a := range comp.Aggs {
		if seenNames[a.Name] {
			return nil, errf(p.tok.Pos, "duplicate group-scope name %q", a.Name)
		}
		seenNames[a.Name] = true
	}
	// Optional ordering clauses. "order", "by", "limit", "offset", "asc"
	// and "desc" are contextual: they only act as keywords in this
	// position, so columns and variables may still use those names.
	if p.isKeyword("order") {
		next, err := p.peekAhead()
		if err != nil {
			return nil, err
		}
		if next.Kind == TokIdent && next.Text == "by" {
			if err := p.advance(); err != nil { // order
				return nil, err
			}
			if err := p.advance(); err != nil { // by
				return nil, err
			}
			for {
				ke, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				key := OrderKey{E: ke}
				if p.isKeyword("desc") {
					key.Desc = true
					if err := p.advance(); err != nil {
						return nil, err
					}
				} else if p.isKeyword("asc") {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
				comp.Order = append(comp.Order, key)
				if p.tok.Kind == TokComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
		}
	}
	if p.isKeyword("limit") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		le, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		comp.Limit = le
	}
	if p.isKeyword("offset") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		oe, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		comp.Offset = oe
	}
	if comp.HasBound() && !monoid.IsCollection(m) {
		return nil, errf(id.Pos, "order by/limit/offset require a collection monoid, not %s", m.Name())
	}
	if comp.HasBound() && m.Name() == "array" {
		return nil, errf(id.Pos, "order by/limit/offset are not supported for array comprehensions")
	}
	return comp, nil
}

func (p *parser) parseQualifier() (Qualifier, error) {
	if p.tok.Kind == TokIdent && !keywords[p.tok.Text] {
		next, err := p.peekAhead()
		if err != nil {
			return Qualifier{}, err
		}
		switch next.Kind {
		case TokArrow:
			name := p.tok.Text
			if err := p.advance(); err != nil { // ident
				return Qualifier{}, err
			}
			if err := p.advance(); err != nil { // <-
				return Qualifier{}, err
			}
			src, err := p.parseExpr()
			if err != nil {
				return Qualifier{}, err
			}
			return Qualifier{Var: name, Src: src}, nil
		case TokAssign:
			name := p.tok.Text
			if err := p.advance(); err != nil { // ident
				return Qualifier{}, err
			}
			if err := p.advance(); err != nil { // :=
				return Qualifier{}, err
			}
			src, err := p.parseExpr()
			if err != nil {
				return Qualifier{}, err
			}
			return Qualifier{Var: name, Bind: true, Src: src}, nil
		}
	}
	pred, err := p.parseExpr()
	if err != nil {
		return Qualifier{}, err
	}
	return Qualifier{Src: pred}, nil
}
