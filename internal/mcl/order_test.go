package mcl

import (
	"strings"
	"testing"

	"vida/internal/sdg"
	"vida/internal/values"
)

func evalOrderedSrc(t *testing.T, src string, bindings map[string]values.Value) values.Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(Normalize(e), NewEnv(bindings))
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func people() map[string]values.Value {
	mk := func(name string, age int64) values.Value {
		return values.NewRecord(
			values.Field{Name: "name", Val: values.NewString(name)},
			values.Field{Name: "age", Val: values.NewInt(age)},
		)
	}
	return map[string]values.Value{
		"People": values.NewBag(
			mk("ann", 41), mk("bob", 27), mk("cid", 35), mk("dee", 27), mk("eve", 52),
		),
	}
}

func TestParseOrderedComprehensionRoundTrip(t *testing.T) {
	srcs := []string{
		"for { p <- People } yield bag p.name order by p.age desc, p.name limit 3 offset 1",
		"for { p <- People } yield list p order by p.age",
		"for { p <- People } yield bag p limit 10",
		"for { p <- People } yield set p.name limit $1 offset $2",
		"for { p <- People } yield bag p offset 2",
	}
	for _, src := range srcs {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rendered := e.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("reparse of %q (rendered %q): %v", src, rendered, err)
		}
		if rendered != src {
			t.Fatalf("round-trip changed %q to %q", src, rendered)
		}
	}
}

func TestParseOrderRequiresCollectionMonoid(t *testing.T) {
	for _, src := range []string{
		"for { p <- People } yield sum p.age order by p.age",
		"for { p <- People } yield count p limit 3",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("parse %q: expected error", src)
		}
	}
}

func TestOrderNamesStayUsableAsIdentifiers(t *testing.T) {
	// "order", "limit", "desc" are contextual keywords only.
	bindings := map[string]values.Value{
		"Rows": values.NewBag(
			values.NewRecord(values.Field{Name: "limit", Val: values.NewInt(5)}),
			values.NewRecord(values.Field{Name: "limit", Val: values.NewInt(3)}),
		),
	}
	v := evalOrderedSrc(t, "for { r <- Rows } yield sum r.limit", bindings)
	if v.Int() != 8 {
		t.Fatalf("sum r.limit = %d, want 8", v.Int())
	}
}

func TestEvalOrderedComprehension(t *testing.T) {
	v := evalOrderedSrc(t, "for { p <- People } yield bag p.name order by p.age desc limit 2", people())
	if v.Kind() != values.KindList {
		t.Fatalf("ordered result kind = %s, want list", v.Kind())
	}
	got := make([]string, 0, v.Len())
	for _, e := range v.Elems() {
		got = append(got, e.Str())
	}
	if strings.Join(got, ",") != "eve,ann" {
		t.Fatalf("top-2 by age desc = %v", got)
	}
}

func TestEvalOrderedTieBreakDeterministic(t *testing.T) {
	// bob and dee both have age 27; the element tiebreak orders them.
	v := evalOrderedSrc(t, "for { p <- People } yield bag p.name order by p.age limit 2", people())
	got := make([]string, 0, v.Len())
	for _, e := range v.Elems() {
		got = append(got, e.Str())
	}
	if strings.Join(got, ",") != "bob,dee" {
		t.Fatalf("bottom-2 by age = %v", got)
	}
}

func TestEvalOrderedOffset(t *testing.T) {
	v := evalOrderedSrc(t, "for { p <- People } yield bag p.name order by p.age limit 2 offset 1", people())
	got := make([]string, 0, v.Len())
	for _, e := range v.Elems() {
		got = append(got, e.Str())
	}
	if strings.Join(got, ",") != "dee,cid" {
		t.Fatalf("offset 1 limit 2 by age = %v", got)
	}
}

func TestEvalOrderedSetDedupsBeforeLimit(t *testing.T) {
	v := evalOrderedSrc(t, "for { p <- People } yield set p.age order by p.age limit 3", people())
	got := make([]int64, 0, v.Len())
	for _, e := range v.Elems() {
		got = append(got, e.Int())
	}
	if len(got) != 3 || got[0] != 27 || got[1] != 35 || got[2] != 41 {
		t.Fatalf("distinct ages limit 3 = %v", got)
	}
}

func TestEvalBareLimitListPrefix(t *testing.T) {
	bindings := map[string]values.Value{
		"Xs": values.NewList(values.NewInt(9), values.NewInt(3), values.NewInt(7), values.NewInt(1)),
	}
	v := evalOrderedSrc(t, "for { x <- Xs } yield list x limit 2", bindings)
	if v.Kind() != values.KindList || v.Len() != 2 || v.Elems()[0].Int() != 9 || v.Elems()[1].Int() != 3 {
		t.Fatalf("list limit 2 = %s", v)
	}
}

func TestEvalLimitParam(t *testing.T) {
	e := MustParse("for { p <- People } yield bag p.name order by p.age limit $n")
	bound := BindParams(Normalize(e), map[string]values.Value{"n": values.NewInt(1)})
	v, err := Eval(bound, NewEnv(people()))
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if v.Len() != 1 || v.Elems()[0].Str() != "bob" {
		t.Fatalf("limit $n=1 = %s", v)
	}
	if got := Params(e); len(got) != 1 || got[0] != "n" {
		t.Fatalf("Params = %v", got)
	}
}

func TestEvalNegativeLimitRejected(t *testing.T) {
	e := MustParse("for { p <- People } yield bag p limit $n")
	bound := BindParams(e, map[string]values.Value{"n": values.NewInt(-1)})
	if _, err := Eval(bound, NewEnv(people())); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestNormalizePreservesOrderThroughBindInline(t *testing.T) {
	// The v := p.age bind is inlined; the order key referencing v must
	// follow the substitution.
	src := "for { p <- People, v := p.age } yield bag p.name order by v desc limit 1"
	v := evalOrderedSrc(t, src, people())
	if v.Len() != 1 || v.Elems()[0].Str() != "eve" {
		t.Fatalf("order through bind inline = %s", v)
	}
}

func TestNormalizeNoUnnestOfBoundedInner(t *testing.T) {
	// The inner ordered/limited comprehension must not be flattened into
	// the outer one.
	src := "for { x <- for { p <- People } yield bag p.name order by p.age limit 2 } yield count x"
	v := evalOrderedSrc(t, src, people())
	if v.Int() != 2 {
		t.Fatalf("count over limited inner = %d, want 2", v.Int())
	}
}

func TestTypeCheckOrderedComprehension(t *testing.T) {
	personT := sdg.Record(
		sdg.Attr{Name: "name", Type: sdg.String},
		sdg.Attr{Name: "age", Type: sdg.Int},
	)
	env := NewTypeEnv(map[string]*sdg.Type{"People": sdg.Bag(personT)})

	e := MustParse("for { p <- People } yield bag p.name order by p.age limit 2")
	typ, err := Check(e, env)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if typ.Kind != sdg.TList || typ.Elem.Kind != sdg.TString {
		t.Fatalf("ordered type = %s, want list(string)", typ)
	}

	if _, err := Check(MustParse(`for { p <- People } yield bag p limit "x"`), env); err == nil {
		t.Fatal("string limit accepted")
	}
	if _, err := Check(MustParse("for { p <- People } yield bag p limit $1"), env); err != nil {
		t.Fatalf("param limit rejected: %v", err)
	}
}

func TestNormalizeBindInlineDoesNotCaptureLimit(t *testing.T) {
	// Limit/offset are outer-scope: the inner bind n := 7 must not be
	// substituted into `limit n`, which refers to the enclosing n := 2.
	bindings := map[string]values.Value{
		"S": values.NewBag(
			values.NewInt(1), values.NewInt(2), values.NewInt(3),
			values.NewInt(4), values.NewInt(5),
		),
	}
	src := "for { n := 2, y <- for { m := 7, x <- S, x != m } yield bag x limit n } yield bag y"
	raw, err := Eval(MustParse(src), NewEnv(bindings))
	if err != nil {
		t.Fatalf("raw eval: %v", err)
	}
	norm := evalOrderedSrc(t, src, bindings)
	if raw.Len() != 2 || norm.Len() != 2 {
		t.Fatalf("limit n (outer n=2): raw %d rows, normalized %d rows, want 2", raw.Len(), norm.Len())
	}
	// The reviewer's shape: the inner bind shares the limit's name.
	src = "for { n := 2, y <- for { n := 7, x <- S } yield bag x limit n } yield bag y"
	norm = evalOrderedSrc(t, src, bindings)
	if norm.Len() != 2 {
		t.Fatalf("shadowing bind captured the limit: %d rows, want 2", norm.Len())
	}
}
