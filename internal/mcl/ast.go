package mcl

import (
	"fmt"
	"strings"

	"vida/internal/monoid"
	"vida/internal/values"
)

// Expr is a node of the monoid comprehension calculus (paper Table 1).
type Expr interface {
	// String renders the expression in concrete syntax.
	String() string
	exprNode()
}

// NullExpr is the NULL literal.
type NullExpr struct{}

// ConstExpr is a constant (bool, int, float or string).
type ConstExpr struct{ Val values.Value }

// VarExpr is a variable reference υ.
type VarExpr struct{ Name string }

// ParamExpr is a bind-parameter placeholder $name: a typed hole filled
// with a constant at execution time, without re-running the query
// frontend. Positional parameters ($1, $2, ... and SQL's ?) use their
// ordinal as the name. Parameters type-check as Unknown and survive
// normalization untouched; executors reject plans whose parameters were
// never bound.
type ParamExpr struct{ Name string }

// ProjExpr is record projection e.A.
type ProjExpr struct {
	Rec  Expr
	Attr string
}

// FieldExpr is one component of a record construction.
type FieldExpr struct {
	Name string
	Val  Expr
}

// RecordExpr is record construction ⟨A1 = e1, ..., An = en⟩; concrete
// syntax (A1 := e1, ..., An := en).
type RecordExpr struct{ Fields []FieldExpr }

// IfExpr is if e1 then e2 else e3.
type IfExpr struct{ Cond, Then, Else Expr }

// BinOp enumerates primitive binary functions.
type BinOp uint8

// The binary operators.
const (
	OpEq BinOp = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNeq: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "and", OpOr: "or",
}

// String returns the operator's concrete syntax.
func (op BinOp) String() string { return binOpNames[op] }

// BinExpr is e1 op e2.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// NotExpr is boolean negation.
type NotExpr struct{ E Expr }

// NegExpr is numeric negation.
type NegExpr struct{ E Expr }

// LambdaExpr is function abstraction λυ.e; concrete syntax \v -> e.
type LambdaExpr struct {
	Param string
	Body  Expr
}

// ApplyExpr is function application e1(e2).
type ApplyExpr struct {
	Fn  Expr
	Arg Expr
}

// CallExpr invokes a builtin function by name (len, abs, lower, ...).
type CallExpr struct {
	Name string
	Args []Expr
}

// ZeroExpr is Z⊕, the zero element of a monoid.
type ZeroExpr struct{ M monoid.Monoid }

// SingletonExpr is U⊕(e), singleton construction.
type SingletonExpr struct {
	M monoid.Monoid
	E Expr
}

// MergeExpr is e1 ⊕ e2, merging under an explicit monoid.
type MergeExpr struct {
	M    monoid.Monoid
	L, R Expr
}

// IndexExpr is array subscripting e[i1, ..., in], the array-model access
// primitive ViDa adds for matrix data.
type IndexExpr struct {
	Arr  Expr
	Idxs []Expr
}

// Qualifier is one qi of a comprehension: a generator v <- e, a let
// binding v := e, or a filter predicate.
type Qualifier struct {
	Var  string // generator/bind variable; empty for filters
	Bind bool   // true for v := e
	Src  Expr   // generator source, bind value, or filter predicate
}

// IsGenerator reports whether q is v <- e.
func (q Qualifier) IsGenerator() bool { return q.Var != "" && !q.Bind }

// IsBind reports whether q is v := e.
func (q Qualifier) IsBind() bool { return q.Var != "" && q.Bind }

// IsFilter reports whether q is a predicate.
func (q Qualifier) IsFilter() bool { return q.Var == "" }

// OrderKey is one ORDER BY component of an ordered comprehension: a key
// expression over the comprehension's bound variables, with direction.
type OrderKey struct {
	E    Expr
	Desc bool
}

// GroupKey is one grouping key of a grouped comprehension: a named
// expression over the qualifier bindings. Rows with equal key tuples
// (values.Equal; nulls group together) form one group, and the name is
// bound to the key value in the group scope.
type GroupKey struct {
	Name string
	E    Expr
}

// AggSpec is one per-group aggregate of a grouped comprehension: the
// expression E is evaluated per qualifier binding and folded under M
// within each group; the name is bound to the finalized aggregate in
// the group scope.
type AggSpec struct {
	Name string
	M    monoid.Monoid
	E    Expr
}

// Comprehension is ⊕{ e | q1, ..., qn }; concrete syntax
// for { q1, ..., qn } yield ⊕ e.
//
// Collection comprehensions (list/bag/set) may additionally carry an
// ordering clause:
//
//	for { q1, ..., qn } yield ⊕ e order by k1 desc, k2 limit 10 offset 2
//
// Order keys are expressions in the scope of the qualifiers (evaluated
// per binding, like the head); Limit and Offset are outer-scope integer
// expressions (constants or bind parameters). An ordered comprehension
// (len(Order) > 0) yields a list — its elements sorted ascending (or
// descending per key) under the total order of values.Compare, ties
// broken by the element value — regardless of ⊕, which still fixes the
// accumulation semantics (bag keeps duplicates, set dedups before
// offset/limit apply). Limit/Offset without Order keep the collection
// kind of ⊕ and bound its size; for the commutative bag which n elements
// survive is unspecified (executors stop producers early), while a list
// takes its first n elements in order.
// Grouped comprehensions carry a grouping clause between the
// qualifiers and the yield:
//
//	for { q1, ..., qn }
//	group by { k1 := e1, ... } agg { a1 := ⊕1 f1, ... } having h
//	yield ⊕ head [order by ... limit ... offset ...]
//
// Qualifier bindings are partitioned by the key tuple (e1, ...); per
// group each aggregate folds its fi values under ⊕i. Head, Having and
// Order keys are evaluated once per GROUP in the group scope — the
// outer scope extended with the key and aggregate names — where the
// qualifier variables are no longer visible. ⊕ must be a collection
// monoid. Groups surface in first-occurrence order of their keys.
type Comprehension struct {
	M       monoid.Monoid
	Head    Expr
	Qs      []Qualifier
	GroupBy []GroupKey // non-empty = grouped comprehension
	Aggs    []AggSpec  // grouped only: per-group aggregates
	Having  Expr       // grouped only: group-scope filter; nil = none
	Order   []OrderKey // empty = unordered
	Limit   Expr       // nil = unbounded
	Offset  Expr       // nil = 0
}

// IsOrdered reports whether the comprehension carries order keys.
func (e *Comprehension) IsOrdered() bool { return len(e.Order) > 0 }

// Grouped reports whether the comprehension carries a group-by clause.
func (e *Comprehension) Grouped() bool { return len(e.GroupBy) > 0 }

// HasBound reports whether the comprehension carries any of order, limit
// or offset.
func (e *Comprehension) HasBound() bool {
	return len(e.Order) > 0 || e.Limit != nil || e.Offset != nil
}

func (*NullExpr) exprNode()      {}
func (*ConstExpr) exprNode()     {}
func (*VarExpr) exprNode()       {}
func (*ParamExpr) exprNode()     {}
func (*ProjExpr) exprNode()      {}
func (*RecordExpr) exprNode()    {}
func (*IfExpr) exprNode()        {}
func (*BinExpr) exprNode()       {}
func (*NotExpr) exprNode()       {}
func (*NegExpr) exprNode()       {}
func (*LambdaExpr) exprNode()    {}
func (*ApplyExpr) exprNode()     {}
func (*CallExpr) exprNode()      {}
func (*ZeroExpr) exprNode()      {}
func (*SingletonExpr) exprNode() {}
func (*MergeExpr) exprNode()     {}
func (*IndexExpr) exprNode()     {}
func (*Comprehension) exprNode() {}

func (e *NullExpr) String() string  { return "null" }
func (e *ConstExpr) String() string { return e.Val.String() }
func (e *VarExpr) String() string   { return e.Name }
func (e *ParamExpr) String() string { return "$" + e.Name }
func (e *ProjExpr) String() string  { return fmt.Sprintf("%s.%s", e.Rec, e.Attr) }

func (e *RecordExpr) String() string {
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = fmt.Sprintf("%s := %s", f.Name, f.Val)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (e *IfExpr) String() string {
	return fmt.Sprintf("if %s then %s else %s", e.Cond, e.Then, e.Else)
}

func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e *NotExpr) String() string    { return fmt.Sprintf("not %s", e.E) }
func (e *NegExpr) String() string    { return fmt.Sprintf("-%s", e.E) }
func (e *LambdaExpr) String() string { return fmt.Sprintf("\\%s -> %s", e.Param, e.Body) }
func (e *ApplyExpr) String() string  { return fmt.Sprintf("%s(%s)", e.Fn, e.Arg) }

func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ", "))
}

func (e *ZeroExpr) String() string      { return fmt.Sprintf("zero[%s]", e.M.Name()) }
func (e *SingletonExpr) String() string { return fmt.Sprintf("unit[%s](%s)", e.M.Name(), e.E) }

func (e *MergeExpr) String() string {
	name := "?" // monoid not yet inferred by the type checker
	if e.M != nil {
		name = e.M.Name()
	}
	return fmt.Sprintf("(%s ++[%s] %s)", e.L, name, e.R)
}

func (e *IndexExpr) String() string {
	parts := make([]string, len(e.Idxs))
	for i, ix := range e.Idxs {
		parts[i] = ix.String()
	}
	return fmt.Sprintf("%s[%s]", e.Arr, strings.Join(parts, ", "))
}

func (e *Comprehension) String() string {
	parts := make([]string, len(e.Qs))
	for i, q := range e.Qs {
		switch {
		case q.IsGenerator():
			parts[i] = fmt.Sprintf("%s <- %s", q.Var, q.Src)
		case q.IsBind():
			parts[i] = fmt.Sprintf("%s := %s", q.Var, q.Src)
		default:
			parts[i] = q.Src.String()
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "for { %s }", strings.Join(parts, ", "))
	if e.Grouped() {
		keys := make([]string, len(e.GroupBy))
		for i, k := range e.GroupBy {
			keys[i] = fmt.Sprintf("%s := %s", k.Name, k.E)
		}
		fmt.Fprintf(&sb, " group by { %s }", strings.Join(keys, ", "))
		if len(e.Aggs) > 0 {
			aggs := make([]string, len(e.Aggs))
			for i, a := range e.Aggs {
				aggs[i] = fmt.Sprintf("%s := %s %s", a.Name, a.M.Name(), a.E)
			}
			fmt.Fprintf(&sb, " agg { %s }", strings.Join(aggs, ", "))
		}
		if e.Having != nil {
			fmt.Fprintf(&sb, " having %s", e.Having)
		}
	}
	fmt.Fprintf(&sb, " yield %s %s", e.M.Name(), e.Head)
	for i, k := range e.Order {
		if i == 0 {
			sb.WriteString(" order by ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(k.E.String())
		if k.Desc {
			sb.WriteString(" desc")
		}
	}
	if e.Limit != nil {
		fmt.Fprintf(&sb, " limit %s", e.Limit)
	}
	if e.Offset != nil {
		fmt.Fprintf(&sb, " offset %s", e.Offset)
	}
	return sb.String()
}

// Walk visits e and all its children in depth-first pre-order; if fn
// returns false the node's children are skipped.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *ProjExpr:
		Walk(n.Rec, fn)
	case *RecordExpr:
		for _, f := range n.Fields {
			Walk(f.Val, fn)
		}
	case *IfExpr:
		Walk(n.Cond, fn)
		Walk(n.Then, fn)
		Walk(n.Else, fn)
	case *BinExpr:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *NotExpr:
		Walk(n.E, fn)
	case *NegExpr:
		Walk(n.E, fn)
	case *LambdaExpr:
		Walk(n.Body, fn)
	case *ApplyExpr:
		Walk(n.Fn, fn)
		Walk(n.Arg, fn)
	case *CallExpr:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *SingletonExpr:
		Walk(n.E, fn)
	case *MergeExpr:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *IndexExpr:
		Walk(n.Arr, fn)
		for _, ix := range n.Idxs {
			Walk(ix, fn)
		}
	case *Comprehension:
		for _, q := range n.Qs {
			Walk(q.Src, fn)
		}
		for _, k := range n.GroupBy {
			Walk(k.E, fn)
		}
		for _, a := range n.Aggs {
			Walk(a.E, fn)
		}
		Walk(n.Having, fn)
		Walk(n.Head, fn)
		for _, k := range n.Order {
			Walk(k.E, fn)
		}
		Walk(n.Limit, fn)
		Walk(n.Offset, fn)
	}
}

// FreeVars returns the free variables of e in first-occurrence order.
func FreeVars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	freeVars(e, map[string]bool{}, seen, &out)
	return out
}

func freeVars(e Expr, bound map[string]bool, seen map[string]bool, out *[]string) {
	switch n := e.(type) {
	case nil:
	case *VarExpr:
		if !bound[n.Name] && !seen[n.Name] {
			seen[n.Name] = true
			*out = append(*out, n.Name)
		}
	case *LambdaExpr:
		inner := copyBound(bound)
		inner[n.Param] = true
		freeVars(n.Body, inner, seen, out)
	case *Comprehension:
		inner := copyBound(bound)
		for _, q := range n.Qs {
			freeVars(q.Src, inner, seen, out)
			if q.Var != "" {
				inner[q.Var] = true
			}
		}
		if n.Grouped() {
			// Keys and aggregates see the qualifier scope; Head, Having
			// and Order keys see the group scope (outer scope plus key
			// and aggregate names, qualifier variables hidden).
			for _, k := range n.GroupBy {
				freeVars(k.E, inner, seen, out)
			}
			for _, a := range n.Aggs {
				freeVars(a.E, inner, seen, out)
			}
			group := copyBound(bound)
			for _, k := range n.GroupBy {
				group[k.Name] = true
			}
			for _, a := range n.Aggs {
				group[a.Name] = true
			}
			freeVars(n.Having, group, seen, out)
			freeVars(n.Head, group, seen, out)
			for _, k := range n.Order {
				freeVars(k.E, group, seen, out)
			}
			freeVars(n.Limit, bound, seen, out)
			freeVars(n.Offset, bound, seen, out)
			return
		}
		freeVars(n.Head, inner, seen, out)
		// Order keys share the head's scope; limit/offset are outer-scope.
		for _, k := range n.Order {
			freeVars(k.E, inner, seen, out)
		}
		freeVars(n.Limit, bound, seen, out)
		freeVars(n.Offset, bound, seen, out)
	case *ProjExpr:
		freeVars(n.Rec, bound, seen, out)
	case *RecordExpr:
		for _, f := range n.Fields {
			freeVars(f.Val, bound, seen, out)
		}
	case *IfExpr:
		freeVars(n.Cond, bound, seen, out)
		freeVars(n.Then, bound, seen, out)
		freeVars(n.Else, bound, seen, out)
	case *BinExpr:
		freeVars(n.L, bound, seen, out)
		freeVars(n.R, bound, seen, out)
	case *NotExpr:
		freeVars(n.E, bound, seen, out)
	case *NegExpr:
		freeVars(n.E, bound, seen, out)
	case *ApplyExpr:
		freeVars(n.Fn, bound, seen, out)
		freeVars(n.Arg, bound, seen, out)
	case *CallExpr:
		for _, a := range n.Args {
			freeVars(a, bound, seen, out)
		}
	case *SingletonExpr:
		freeVars(n.E, bound, seen, out)
	case *MergeExpr:
		freeVars(n.L, bound, seen, out)
		freeVars(n.R, bound, seen, out)
	case *IndexExpr:
		freeVars(n.Arr, bound, seen, out)
		for _, ix := range n.Idxs {
			freeVars(ix, bound, seen, out)
		}
	}
}

func copyBound(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Params returns the bind-parameter names of e in first-occurrence order.
func Params(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	Walk(e, func(n Expr) bool {
		if p, ok := n.(*ParamExpr); ok && !seen[p.Name] {
			seen[p.Name] = true
			out = append(out, p.Name)
		}
		return true
	})
	return out
}
