package mcl

import (
	"fmt"
	"math"
	"strings"

	"vida/internal/monoid"
	"vida/internal/values"
)

// Env is an evaluation environment binding variables to values or, for
// let-bound lambdas, to closures. Environments form a persistent chain so
// binding is O(1) inside comprehension loops.
type Env struct {
	name string
	val  values.Value
	fn   *closure
	next *Env
}

type closure struct {
	param string
	body  Expr
	env   *Env
}

// NewEnv builds an environment from a map of top-level bindings (typically
// the registered data sources as collection values).
func NewEnv(bindings map[string]values.Value) *Env {
	var env *Env
	for name, v := range bindings {
		env = &Env{name: name, val: v, next: env}
	}
	return env
}

// Bind returns a child environment with one extra variable.
func (e *Env) Bind(name string, v values.Value) *Env {
	return &Env{name: name, val: v, next: e}
}

func (e *Env) bindFn(name string, cl *closure) *Env {
	return &Env{name: name, fn: cl, next: e}
}

// Lookup resolves a variable.
func (e *Env) Lookup(name string) (values.Value, bool) {
	for env := e; env != nil; env = env.next {
		if env.name == name {
			return env.val, env.fn == nil
		}
	}
	return values.Null, false
}

func (e *Env) lookupFn(name string) (*closure, bool) {
	for env := e; env != nil; env = env.next {
		if env.name == name {
			return env.fn, env.fn != nil
		}
	}
	return nil, false
}

// EvalError is a runtime evaluation error.
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "mcl: eval: " + e.Msg }

func evalErrf(format string, args ...any) error {
	return &EvalError{Msg: fmt.Sprintf(format, args...)}
}

// Eval evaluates an expression in the given environment. It is the
// reference interpreter defining the semantics of the calculus: executors
// (static and JIT) are tested against it.
//
// Null handling: arithmetic with a null operand yields null; comparisons
// with a null operand yield false; a filter evaluating to null rejects the
// binding; a generator over null iterates zero times.
func Eval(e Expr, env *Env) (values.Value, error) {
	switch n := e.(type) {
	case *NullExpr:
		return values.Null, nil
	case *ConstExpr:
		return n.Val, nil
	case *VarExpr:
		v, ok := env.Lookup(n.Name)
		if !ok {
			if _, isFn := env.lookupFn(n.Name); isFn {
				return values.Null, evalErrf("variable %q is a function, not a value", n.Name)
			}
			return values.Null, evalErrf("unbound variable %q", n.Name)
		}
		return v, nil
	case *ParamExpr:
		// Parameters are substituted before execution (BindParams); one
		// surviving to evaluation was never bound.
		return values.Null, evalErrf("unbound parameter $%s", n.Name)
	case *ProjExpr:
		rec, err := Eval(n.Rec, env)
		if err != nil {
			return values.Null, err
		}
		if rec.IsNull() {
			return values.Null, nil
		}
		if rec.Kind() != values.KindRecord {
			return values.Null, evalErrf("projection .%s on %s", n.Attr, rec.Kind())
		}
		v, ok := rec.Get(n.Attr)
		if !ok {
			// Missing attributes read as null: raw JSON objects are
			// frequently heterogeneous (paper §3.1).
			return values.Null, nil
		}
		return v, nil
	case *RecordExpr:
		fields := make([]values.Field, len(n.Fields))
		for i, f := range n.Fields {
			v, err := Eval(f.Val, env)
			if err != nil {
				return values.Null, err
			}
			fields[i] = values.Field{Name: f.Name, Val: v}
		}
		return values.NewRecord(fields...), nil
	case *IfExpr:
		cond, err := Eval(n.Cond, env)
		if err != nil {
			return values.Null, err
		}
		if truthy(cond) {
			return Eval(n.Then, env)
		}
		return Eval(n.Else, env)
	case *BinExpr:
		return evalBin(n, env)
	case *NotExpr:
		v, err := Eval(n.E, env)
		if err != nil {
			return values.Null, err
		}
		return values.NewBool(!truthy(v)), nil
	case *NegExpr:
		v, err := Eval(n.E, env)
		if err != nil {
			return values.Null, err
		}
		switch v.Kind() {
		case values.KindNull:
			return values.Null, nil
		case values.KindInt:
			return values.NewInt(-v.Int()), nil
		case values.KindFloat:
			return values.NewFloat(-v.Float()), nil
		}
		return values.Null, evalErrf("negation of %s", v.Kind())
	case *LambdaExpr:
		return values.Null, evalErrf("function value used where a data value is required")
	case *ApplyExpr:
		return evalApply(n, env)
	case *CallExpr:
		return evalCall(n, env)
	case *ZeroExpr:
		return n.M.Zero(), nil
	case *SingletonExpr:
		v, err := Eval(n.E, env)
		if err != nil {
			return values.Null, err
		}
		return n.M.Unit(v), nil
	case *MergeExpr:
		l, err := Eval(n.L, env)
		if err != nil {
			return values.Null, err
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return values.Null, err
		}
		m := n.M
		if m == nil {
			m, err = inferMergeMonoid(l)
			if err != nil {
				return values.Null, err
			}
		}
		return m.Merge(l, r), nil
	case *IndexExpr:
		return evalIndex(n, env)
	case *Comprehension:
		return evalComprehension(n, env)
	}
	return values.Null, evalErrf("unknown expression %T", e)
}

func inferMergeMonoid(l values.Value) (monoid.Monoid, error) {
	switch l.Kind() {
	case values.KindList:
		return monoid.List, nil
	case values.KindBag:
		return monoid.Bag, nil
	case values.KindSet:
		return monoid.Set, nil
	case values.KindArray:
		return monoid.Array, nil
	}
	return nil, evalErrf("++ needs collection operands, got %s", l.Kind())
}

func truthy(v values.Value) bool {
	return v.Kind() == values.KindBool && v.Bool()
}

func evalBin(n *BinExpr, env *Env) (values.Value, error) {
	// and/or short-circuit.
	if n.Op == OpAnd || n.Op == OpOr {
		l, err := Eval(n.L, env)
		if err != nil {
			return values.Null, err
		}
		lt := truthy(l)
		if n.Op == OpAnd && !lt {
			return values.False, nil
		}
		if n.Op == OpOr && lt {
			return values.True, nil
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return values.Null, err
		}
		return values.NewBool(truthy(r)), nil
	}
	l, err := Eval(n.L, env)
	if err != nil {
		return values.Null, err
	}
	r, err := Eval(n.R, env)
	if err != nil {
		return values.Null, err
	}
	return ApplyBinOp(n.Op, l, r)
}

// ApplyBinOp applies a binary operator to two values; it is shared with
// the executors so operator semantics live in exactly one place.
func ApplyBinOp(op BinOp, l, r values.Value) (values.Value, error) {
	switch op {
	case OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe:
		if l.IsNull() || r.IsNull() {
			return values.False, nil
		}
		c := values.Compare(l, r)
		switch op {
		case OpEq:
			return values.NewBool(c == 0), nil
		case OpNeq:
			return values.NewBool(c != 0), nil
		case OpLt:
			return values.NewBool(c < 0), nil
		case OpLe:
			return values.NewBool(c <= 0), nil
		case OpGt:
			return values.NewBool(c > 0), nil
		default:
			return values.NewBool(c >= 0), nil
		}
	case OpAnd:
		return values.NewBool(truthy(l) && truthy(r)), nil
	case OpOr:
		return values.NewBool(truthy(l) || truthy(r)), nil
	}
	// Arithmetic.
	if l.IsNull() || r.IsNull() {
		return values.Null, nil
	}
	if op == OpAdd && l.Kind() == values.KindString && r.Kind() == values.KindString {
		return values.NewString(l.Str() + r.Str()), nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return values.Null, evalErrf("operator %s needs numeric operands, got %s and %s", op, l.Kind(), r.Kind())
	}
	bothInt := l.Kind() == values.KindInt && r.Kind() == values.KindInt
	switch op {
	case OpAdd:
		if bothInt {
			return values.NewInt(l.Int() + r.Int()), nil
		}
		return values.NewFloat(l.Float() + r.Float()), nil
	case OpSub:
		if bothInt {
			return values.NewInt(l.Int() - r.Int()), nil
		}
		return values.NewFloat(l.Float() - r.Float()), nil
	case OpMul:
		if bothInt {
			return values.NewInt(l.Int() * r.Int()), nil
		}
		return values.NewFloat(l.Float() * r.Float()), nil
	case OpDiv:
		if bothInt {
			if r.Int() == 0 {
				return values.Null, evalErrf("integer division by zero")
			}
			return values.NewInt(l.Int() / r.Int()), nil
		}
		return values.NewFloat(l.Float() / r.Float()), nil
	case OpMod:
		if !bothInt {
			return values.Null, evalErrf("%% needs integer operands")
		}
		if r.Int() == 0 {
			return values.Null, evalErrf("modulo by zero")
		}
		return values.NewInt(l.Int() % r.Int()), nil
	}
	return values.Null, evalErrf("unknown operator %s", op)
}

func evalApply(n *ApplyExpr, env *Env) (values.Value, error) {
	arg, err := Eval(n.Arg, env)
	if err != nil {
		return values.Null, err
	}
	switch fn := n.Fn.(type) {
	case *LambdaExpr:
		return Eval(fn.Body, env.Bind(fn.Param, arg))
	case *VarExpr:
		cl, ok := env.lookupFn(fn.Name)
		if !ok {
			return values.Null, evalErrf("%q is not a function", fn.Name)
		}
		return Eval(cl.body, cl.env.Bind(cl.param, arg))
	case *ApplyExpr:
		return values.Null, evalErrf("curried application is not supported")
	}
	return values.Null, evalErrf("cannot apply %T", n.Fn)
}

func evalIndex(n *IndexExpr, env *Env) (values.Value, error) {
	arr, err := Eval(n.Arr, env)
	if err != nil {
		return values.Null, err
	}
	if arr.IsNull() {
		return values.Null, nil
	}
	idxs := make([]int, len(n.Idxs))
	for i, ix := range n.Idxs {
		v, err := Eval(ix, env)
		if err != nil {
			return values.Null, err
		}
		if v.Kind() != values.KindInt {
			return values.Null, evalErrf("array index must be int, got %s", v.Kind())
		}
		idxs[i] = int(v.Int())
	}
	switch arr.Kind() {
	case values.KindArray:
		if len(idxs) != len(arr.Dims()) {
			return values.Null, evalErrf("index rank %d != array rank %d", len(idxs), len(arr.Dims()))
		}
		for d, i := range idxs {
			if i < 0 || i >= arr.Dims()[d] {
				return values.Null, evalErrf("index %d out of range for dim %d", i, d)
			}
		}
		return arr.At(idxs...), nil
	case values.KindList:
		if len(idxs) != 1 {
			return values.Null, evalErrf("list index must be one-dimensional")
		}
		i := idxs[0]
		if i < 0 || i >= arr.Len() {
			return values.Null, evalErrf("list index %d out of range", i)
		}
		return arr.Elems()[i], nil
	}
	return values.Null, evalErrf("cannot index %s", arr.Kind())
}

func evalComprehension(c *Comprehension, env *Env) (values.Value, error) {
	if c.Grouped() {
		return evalGroupedComprehension(c, env)
	}
	if c.HasBound() {
		return evalBoundedComprehension(c, env)
	}
	acc := monoid.NewCollector(c.M)
	err := forEachBinding(c.Qs, env, func(env *Env) error {
		h, err := Eval(c.Head, env)
		if err != nil {
			return err
		}
		acc.Add(h)
		return nil
	})
	if err != nil {
		return values.Null, err
	}
	return acc.Result(), nil
}

// forEachBinding drives the qualifier list, invoking fn once per
// surviving binding environment.
func forEachBinding(qs []Qualifier, env *Env, fn func(env *Env) error) error {
	var rec func(i int, env *Env) error
	rec = func(i int, env *Env) error {
		if i == len(qs) {
			return fn(env)
		}
		q := qs[i]
		switch {
		case q.IsGenerator():
			src, err := Eval(q.Src, env)
			if err != nil {
				return err
			}
			if src.IsNull() {
				return nil
			}
			if !src.IsCollection() && src.Kind() != values.KindArray {
				return evalErrf("generator %s <- needs a collection, got %s", q.Var, src.Kind())
			}
			for _, e := range src.Elems() {
				if err := rec(i+1, env.Bind(q.Var, e)); err != nil {
					return err
				}
			}
			return nil
		case q.IsBind():
			if lam, ok := q.Src.(*LambdaExpr); ok {
				return rec(i+1, env.bindFn(q.Var, &closure{param: lam.Param, body: lam.Body, env: env}))
			}
			v, err := Eval(q.Src, env)
			if err != nil {
				return err
			}
			return rec(i+1, env.Bind(q.Var, v))
		default:
			p, err := Eval(q.Src, env)
			if err != nil {
				return err
			}
			if truthy(p) {
				return rec(i+1, env)
			}
			return nil
		}
	}
	return rec(0, env)
}

// GroupHash combines the hashes of a group-key tuple. Null keys hash to
// a fixed constant so rows with null keys land in one group (grouping
// treats nulls as equal, unlike comparisons).
func GroupHash(keys []values.Value) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, k := range keys {
		kh := uint64(0x9e3779b97f4a7c15) // null-key marker
		if !k.IsNull() {
			kh = k.Hash()
		}
		h ^= kh
		h *= 1099511628211 // FNV prime
	}
	return h
}

// GroupKeysEqual compares two group-key tuples under grouping equality:
// nulls equal each other, everything else compares by values.Equal.
func GroupKeysEqual(a, b []values.Value) bool {
	for i := range a {
		if a[i].IsNull() || b[i].IsNull() {
			if a[i].IsNull() != b[i].IsNull() {
				return false
			}
			continue
		}
		if !values.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// evalGroupedComprehension is the reference semantics of the grouping
// form, in one scan: qualifier bindings are partitioned by their key
// tuple (first-occurrence order), each group folds its aggregate inputs,
// and Having/Head/Order run once per group in the group scope.
func evalGroupedComprehension(c *Comprehension, env *Env) (values.Value, error) {
	type group struct {
		keys []values.Value
		accs []*monoid.Collector
	}
	var groups []*group
	index := map[uint64][]int{}
	err := forEachBinding(c.Qs, env, func(benv *Env) error {
		keys := make([]values.Value, len(c.GroupBy))
		for i, k := range c.GroupBy {
			kv, err := Eval(k.E, benv)
			if err != nil {
				return err
			}
			keys[i] = kv
		}
		h := GroupHash(keys)
		var g *group
		for _, gi := range index[h] {
			if GroupKeysEqual(groups[gi].keys, keys) {
				g = groups[gi]
				break
			}
		}
		if g == nil {
			g = &group{keys: keys, accs: make([]*monoid.Collector, len(c.Aggs))}
			for i, a := range c.Aggs {
				g.accs[i] = monoid.NewCollector(a.M)
			}
			index[h] = append(index[h], len(groups))
			groups = append(groups, g)
		}
		for i, a := range c.Aggs {
			av, err := Eval(a.E, benv)
			if err != nil {
				return err
			}
			monoid.AggAdd(g.accs[i], av)
		}
		return nil
	})
	if err != nil {
		return values.Null, err
	}
	// Per group: bind key and aggregate names over the OUTER scope, filter
	// with Having, then run the ordinary comprehension root (fold, or
	// top-k / limit slicing) over the group rows.
	eachGroup := func(fn func(genv *Env) error) error {
		for _, g := range groups {
			genv := env
			for i, k := range c.GroupBy {
				genv = genv.Bind(k.Name, g.keys[i])
			}
			for i := range c.Aggs {
				genv = genv.Bind(c.Aggs[i].Name, g.accs[i].Result())
			}
			if c.Having != nil {
				hv, err := Eval(c.Having, genv)
				if err != nil {
					return err
				}
				if !truthy(hv) {
					continue
				}
			}
			if err := fn(genv); err != nil {
				return err
			}
		}
		return nil
	}
	if !c.HasBound() {
		acc := monoid.NewCollector(c.M)
		if err := eachGroup(func(genv *Env) error {
			h, err := Eval(c.Head, genv)
			if err != nil {
				return err
			}
			acc.Add(h)
			return nil
		}); err != nil {
			return values.Null, err
		}
		return acc.Result(), nil
	}
	limit, err := EvalExtent(c.Limit, env, "limit", -1)
	if err != nil {
		return values.Null, err
	}
	offset, err := EvalExtent(c.Offset, env, "offset", 0)
	if err != nil {
		return values.Null, err
	}
	dedup := c.M.Name() == "set"
	if len(c.Order) == 0 {
		acc := monoid.NewCollector(c.M)
		if err := eachGroup(func(genv *Env) error {
			h, err := Eval(c.Head, genv)
			if err != nil {
				return err
			}
			acc.Add(h)
			return nil
		}); err != nil {
			return values.Null, err
		}
		elems := acc.Result().Elems()
		if offset > 0 {
			if offset >= len(elems) {
				elems = nil
			} else {
				elems = elems[offset:]
			}
		}
		if limit >= 0 && limit < len(elems) {
			elems = elems[:limit]
		}
		switch c.M.Name() {
		case "list":
			return values.NewList(elems...), nil
		case "set":
			return values.NewSet(elems...), nil
		default:
			return values.NewBag(elems...), nil
		}
	}
	desc := make([]bool, len(c.Order))
	for i, k := range c.Order {
		desc[i] = k.Desc
	}
	keep := -1
	if limit >= 0 && !dedup {
		keep = offset + limit
	}
	acc := monoid.NewTopKAcc(desc, keep)
	if err := eachGroup(func(genv *Env) error {
		keys := make([]values.Value, len(c.Order))
		for i, k := range c.Order {
			kv, err := Eval(k.E, genv)
			if err != nil {
				return err
			}
			keys[i] = kv
		}
		h, err := Eval(c.Head, genv)
		if err != nil {
			return err
		}
		acc.Add(keys, h)
		return nil
	}); err != nil {
		return values.Null, err
	}
	return values.NewList(acc.Finalize(offset, limit, dedup)...), nil
}

// EvalExtent evaluates a limit/offset expression to a non-negative int.
// A nil expression returns the provided default; executors share this so
// every engine rejects the same malformed bounds.
func EvalExtent(e Expr, env *Env, what string, def int) (int, error) {
	if e == nil {
		return def, nil
	}
	v, err := Eval(e, env)
	if err != nil {
		return 0, err
	}
	if v.Kind() != values.KindInt {
		return 0, evalErrf("%s must be an integer, got %s", what, v.Kind())
	}
	n := v.Int()
	if n < 0 {
		return 0, evalErrf("%s must be non-negative, got %d", what, n)
	}
	return int(n), nil
}

// evalBoundedComprehension handles order by / limit / offset. Ordered
// comprehensions fold a keyed top-k (bounded to offset+limit entries
// when a limit is present) and yield a list; bare limit/offset slice the
// declared collection after accumulation. Set semantics deduplicate
// before offset/limit apply.
func evalBoundedComprehension(c *Comprehension, env *Env) (values.Value, error) {
	limit, err := EvalExtent(c.Limit, env, "limit", -1)
	if err != nil {
		return values.Null, err
	}
	offset, err := EvalExtent(c.Offset, env, "offset", 0)
	if err != nil {
		return values.Null, err
	}
	dedup := c.M.Name() == "set"
	if len(c.Order) == 0 {
		// Bare limit/offset: accumulate under the declared monoid (its
		// Result canonicalizes bags/sets), then slice.
		acc := monoid.NewCollector(c.M)
		err := forEachBinding(c.Qs, env, func(env *Env) error {
			h, err := Eval(c.Head, env)
			if err != nil {
				return err
			}
			acc.Add(h)
			return nil
		})
		if err != nil {
			return values.Null, err
		}
		elems := acc.Result().Elems()
		if offset > 0 {
			if offset >= len(elems) {
				elems = nil
			} else {
				elems = elems[offset:]
			}
		}
		if limit >= 0 && limit < len(elems) {
			elems = elems[:limit]
		}
		switch c.M.Name() {
		case "list":
			return values.NewList(elems...), nil
		case "set":
			return values.NewSet(elems...), nil
		default:
			return values.NewBag(elems...), nil
		}
	}
	desc := make([]bool, len(c.Order))
	for i, k := range c.Order {
		desc[i] = k.Desc
	}
	keep := -1
	if limit >= 0 && !dedup {
		keep = offset + limit
	}
	acc := monoid.NewTopKAcc(desc, keep)
	err = forEachBinding(c.Qs, env, func(env *Env) error {
		keys := make([]values.Value, len(c.Order))
		for i, k := range c.Order {
			kv, err := Eval(k.E, env)
			if err != nil {
				return err
			}
			keys[i] = kv
		}
		h, err := Eval(c.Head, env)
		if err != nil {
			return err
		}
		acc.Add(keys, h)
		return nil
	})
	if err != nil {
		return values.Null, err
	}
	return values.NewList(acc.Finalize(offset, limit, dedup)...), nil
}

func evalCall(n *CallExpr, env *Env) (values.Value, error) {
	args := make([]values.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := Eval(a, env)
		if err != nil {
			return values.Null, err
		}
		args[i] = v
	}
	return ApplyBuiltin(n.Name, args)
}

// ApplyBuiltin applies a builtin function; shared with the executors.
// Builtins are null-propagating: any null argument yields null.
func ApplyBuiltin(name string, args []values.Value) (values.Value, error) {
	for _, a := range args {
		if a.IsNull() {
			return values.Null, nil
		}
	}
	switch name {
	case "len":
		a := args[0]
		switch a.Kind() {
		case values.KindString, values.KindList, values.KindBag, values.KindSet, values.KindArray, values.KindRecord:
			return values.NewInt(int64(a.Len())), nil
		}
		return values.Null, evalErrf("len of %s", a.Kind())
	case "abs":
		a := args[0]
		switch a.Kind() {
		case values.KindInt:
			if a.Int() < 0 {
				return values.NewInt(-a.Int()), nil
			}
			return a, nil
		case values.KindFloat:
			return values.NewFloat(math.Abs(a.Float())), nil
		}
		return values.Null, evalErrf("abs of %s", a.Kind())
	case "sqrt":
		return values.NewFloat(math.Sqrt(args[0].Float())), nil
	case "floor":
		return values.NewFloat(math.Floor(args[0].Float())), nil
	case "ceil":
		return values.NewFloat(math.Ceil(args[0].Float())), nil
	case "lower":
		return values.NewString(strings.ToLower(args[0].Str())), nil
	case "upper":
		return values.NewString(strings.ToUpper(args[0].Str())), nil
	case "trim":
		return values.NewString(strings.TrimSpace(args[0].Str())), nil
	case "substr":
		s := args[0].Str()
		from, to := int(args[1].Int()), int(args[2].Int())
		if from < 0 {
			from = 0
		}
		if to > len(s) {
			to = len(s)
		}
		if from > to {
			from = to
		}
		return values.NewString(s[from:to]), nil
	case "contains":
		return values.NewBool(strings.Contains(args[0].Str(), args[1].Str())), nil
	case "startswith":
		return values.NewBool(strings.HasPrefix(args[0].Str(), args[1].Str())), nil
	case "endswith":
		return values.NewBool(strings.HasSuffix(args[0].Str(), args[1].Str())), nil
	case "toint":
		a := args[0]
		switch a.Kind() {
		case values.KindInt:
			return a, nil
		case values.KindFloat:
			return values.NewInt(int64(a.Float())), nil
		case values.KindString:
			var n int64
			if _, err := fmt.Sscanf(strings.TrimSpace(a.Str()), "%d", &n); err != nil {
				return values.Null, nil
			}
			return values.NewInt(n), nil
		case values.KindBool:
			if a.Bool() {
				return values.NewInt(1), nil
			}
			return values.NewInt(0), nil
		}
		return values.Null, evalErrf("toint of %s", a.Kind())
	case "tofloat":
		a := args[0]
		switch a.Kind() {
		case values.KindInt, values.KindFloat:
			return values.NewFloat(a.Float()), nil
		case values.KindString:
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(a.Str()), "%g", &f); err != nil {
				return values.Null, nil
			}
			return values.NewFloat(f), nil
		}
		return values.Null, evalErrf("tofloat of %s", a.Kind())
	case "tostring":
		a := args[0]
		if a.Kind() == values.KindString {
			return a, nil
		}
		return values.NewString(a.String()), nil
	}
	return values.Null, evalErrf("unknown builtin %q", name)
}
