package mcl

import "vida/internal/values"

// BindParams returns e with every ParamExpr whose name appears in params
// replaced by the bound constant. Parameters not present in the map are
// left in place (callers validate completeness separately). The input
// expression is never mutated: shared subtrees are safe, which is what
// lets one cached plan serve concurrent executions with different
// bindings.
func BindParams(e Expr, params map[string]values.Value) Expr {
	if e == nil || len(params) == 0 {
		return e
	}
	switch n := e.(type) {
	case *NullExpr, *ConstExpr, *VarExpr, *ZeroExpr:
		return e
	case *ParamExpr:
		v, ok := params[n.Name]
		if !ok {
			return e
		}
		if v.IsNull() {
			return &NullExpr{}
		}
		return &ConstExpr{Val: v}
	case *ProjExpr:
		return &ProjExpr{Rec: BindParams(n.Rec, params), Attr: n.Attr}
	case *RecordExpr:
		fields := make([]FieldExpr, len(n.Fields))
		for i, f := range n.Fields {
			fields[i] = FieldExpr{Name: f.Name, Val: BindParams(f.Val, params)}
		}
		return &RecordExpr{Fields: fields}
	case *IfExpr:
		return &IfExpr{
			Cond: BindParams(n.Cond, params),
			Then: BindParams(n.Then, params),
			Else: BindParams(n.Else, params),
		}
	case *BinExpr:
		return &BinExpr{Op: n.Op, L: BindParams(n.L, params), R: BindParams(n.R, params)}
	case *NotExpr:
		return &NotExpr{E: BindParams(n.E, params)}
	case *NegExpr:
		return &NegExpr{E: BindParams(n.E, params)}
	case *LambdaExpr:
		return &LambdaExpr{Param: n.Param, Body: BindParams(n.Body, params)}
	case *ApplyExpr:
		return &ApplyExpr{Fn: BindParams(n.Fn, params), Arg: BindParams(n.Arg, params)}
	case *CallExpr:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = BindParams(a, params)
		}
		return &CallExpr{Name: n.Name, Args: args}
	case *SingletonExpr:
		return &SingletonExpr{M: n.M, E: BindParams(n.E, params)}
	case *MergeExpr:
		return &MergeExpr{M: n.M, L: BindParams(n.L, params), R: BindParams(n.R, params)}
	case *IndexExpr:
		idxs := make([]Expr, len(n.Idxs))
		for i, ix := range n.Idxs {
			idxs[i] = BindParams(ix, params)
		}
		return &IndexExpr{Arr: BindParams(n.Arr, params), Idxs: idxs}
	case *Comprehension:
		qs := make([]Qualifier, len(n.Qs))
		for i, q := range n.Qs {
			qs[i] = Qualifier{Var: q.Var, Bind: q.Bind, Src: BindParams(q.Src, params)}
		}
		order := make([]OrderKey, len(n.Order))
		for i, k := range n.Order {
			order[i] = OrderKey{E: BindParams(k.E, params), Desc: k.Desc}
		}
		groupBy := make([]GroupKey, len(n.GroupBy))
		for i, k := range n.GroupBy {
			groupBy[i] = GroupKey{Name: k.Name, E: BindParams(k.E, params)}
		}
		aggs := make([]AggSpec, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = AggSpec{Name: a.Name, M: a.M, E: BindParams(a.E, params)}
		}
		return &Comprehension{
			M: n.M, Head: BindParams(n.Head, params), Qs: qs,
			GroupBy: groupBy, Aggs: aggs,
			Having: BindParams(n.Having, params),
			Order:  order,
			Limit:  BindParams(n.Limit, params),
			Offset: BindParams(n.Offset, params),
		}
	}
	return e
}
