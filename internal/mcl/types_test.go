package mcl

import (
	"testing"

	"vida/internal/sdg"
)

func empType() *sdg.Type {
	return sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "name", Type: sdg.String},
		sdg.Attr{Name: "deptNo", Type: sdg.Int},
		sdg.Attr{Name: "salary", Type: sdg.Float},
	))
}

func deptType() *sdg.Type {
	return sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "deptName", Type: sdg.String},
	))
}

func checkSrc(t *testing.T, src string) (*sdg.Type, error) {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	env := NewTypeEnv(map[string]*sdg.Type{
		"Employees":   empType(),
		"Departments": deptType(),
		"Raw":         sdg.Unknown,
	})
	return Check(e, env)
}

func mustCheck(t *testing.T, src string) *sdg.Type {
	t.Helper()
	typ, err := checkSrc(t, src)
	if err != nil {
		t.Fatalf("check %q: %v", src, err)
	}
	return typ
}

func TestCheckPaperQuery(t *testing.T) {
	typ := mustCheck(t, `for { e <- Employees, d <- Departments,
	        e.deptNo = d.id, d.deptName = "HR"} yield sum 1`)
	if typ.Kind != sdg.TInt {
		t.Fatalf("count type = %s", typ)
	}
}

func TestCheckCollectionResult(t *testing.T) {
	typ := mustCheck(t, "for { e <- Employees } yield set (n := e.name)")
	if typ.Kind != sdg.TSet || typ.Elem.Kind != sdg.TRecord {
		t.Fatalf("type = %s", typ)
	}
	if a, ok := typ.Elem.Attr("n"); !ok || a.Type.Kind != sdg.TString {
		t.Fatalf("elem type = %s", typ.Elem)
	}
}

func TestCheckNumericPromotion(t *testing.T) {
	if typ := mustCheck(t, "for { e <- Employees } yield sum e.id"); typ.Kind != sdg.TInt {
		t.Fatalf("sum int = %s", typ)
	}
	if typ := mustCheck(t, "for { e <- Employees } yield sum e.salary"); typ.Kind != sdg.TFloat {
		t.Fatalf("sum float = %s", typ)
	}
	if typ := mustCheck(t, "for { e <- Employees } yield avg e.id"); typ.Kind != sdg.TFloat {
		t.Fatalf("avg = %s", typ)
	}
	if typ := mustCheck(t, "1 + 2.0"); typ.Kind != sdg.TFloat {
		t.Fatalf("1+2.0 = %s", typ)
	}
}

func TestCheckGradualTyping(t *testing.T) {
	// Unknown sources type-check everywhere (raw JSON with open schema).
	typ := mustCheck(t, "for { x <- Raw, x.field > 3 } yield sum x.other")
	if typ.Kind != sdg.TUnknown {
		t.Fatalf("unknown propagation = %s", typ)
	}
}

func TestCheckMergeResolution(t *testing.T) {
	e := MustParse("(for { e <- Employees } yield set e.id) ++ (for { d <- Departments } yield set d.id)")
	env := NewTypeEnv(map[string]*sdg.Type{"Employees": empType(), "Departments": deptType()})
	if _, err := Check(e, env); err != nil {
		t.Fatal(err)
	}
	m := e.(*MergeExpr)
	if m.M == nil || m.M.Name() != "set" {
		t.Fatalf("++ monoid = %v", m.M)
	}
}

func TestCheckErrors(t *testing.T) {
	bad := []string{
		"nosuchvar",
		"for { e <- Employees } yield sum e.name",       // sum of string
		"for { e <- Employees, e.name } yield count e",  // non-bool filter
		"for { e <- Employees } yield sum e.nosuchattr", // unknown attr
		"for { x <- 42 } yield sum x",                   // non-collection generator
		`1 + "a"`,                                       // numeric + string
		`if 1 then 2 else 3`,                            // non-bool condition
		`if true then 1 else "x"`,                       // branch mismatch
		"for { e <- Employees } yield and e.id",         // and over non-bool
		"Employees.name",                                // projection on collection
		"not 5",                                         // not of int
		"5 % 2.0",                                       // mod of float
		"upper(5)",                                      // wrong builtin arg
	}
	for _, src := range bad {
		if _, err := checkSrc(t, src); err == nil {
			t.Fatalf("Check(%q) should fail", src)
		}
	}
}

func TestCheckBindTyping(t *testing.T) {
	typ := mustCheck(t, "for { e <- Employees, b := e.salary * 2, b > 10.0 } yield max b")
	if typ.Kind != sdg.TFloat {
		t.Fatalf("bind type = %s", typ)
	}
}

func TestCheckRecordProjection(t *testing.T) {
	typ := mustCheck(t, "for { e <- Employees } yield list (x := e.id, y := e.salary)")
	if typ.Kind != sdg.TList {
		t.Fatalf("type = %s", typ)
	}
	ax, _ := typ.Elem.Attr("x")
	ay, _ := typ.Elem.Attr("y")
	if ax.Type.Kind != sdg.TInt || ay.Type.Kind != sdg.TFloat {
		t.Fatalf("elem = %s", typ.Elem)
	}
}

func TestCheckIndexing(t *testing.T) {
	env := NewTypeEnv(map[string]*sdg.Type{
		"M": sdg.Array([]sdg.Dim{{Name: "i", Type: sdg.Int}, {Name: "j", Type: sdg.Int}}, sdg.Float),
	})
	e := MustParse("M[0, 1]")
	typ, err := Check(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if typ.Kind != sdg.TFloat {
		t.Fatalf("index type = %s", typ)
	}
	// Rank mismatch must be rejected.
	if _, err := Check(MustParse("M[0]"), env); err == nil {
		t.Fatal("rank mismatch should fail")
	}
}

func TestCheckNestedComprehension(t *testing.T) {
	typ := mustCheck(t, `for { d <- Departments }
	        yield list (dep := d.deptName,
	                    staff := for { e <- Employees, e.deptNo = d.id } yield count e)`)
	if typ.Kind != sdg.TList {
		t.Fatalf("type = %s", typ)
	}
	staff, ok := typ.Elem.Attr("staff")
	if !ok || staff.Type.Kind != sdg.TInt {
		t.Fatalf("staff type = %v", staff.Type)
	}
}
