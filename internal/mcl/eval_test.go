package mcl

import (
	"testing"

	"vida/internal/values"
)

// testEnv builds the Employees/Departments environment used by the
// paper's running examples.
func testEnv() *Env {
	emp := func(id int64, name string, deptNo int64, salary float64) values.Value {
		return values.NewRecord(
			values.Field{Name: "id", Val: values.NewInt(id)},
			values.Field{Name: "name", Val: values.NewString(name)},
			values.Field{Name: "deptNo", Val: values.NewInt(deptNo)},
			values.Field{Name: "salary", Val: values.NewFloat(salary)},
		)
	}
	dept := func(id int64, name string) values.Value {
		return values.NewRecord(
			values.Field{Name: "id", Val: values.NewInt(id)},
			values.Field{Name: "deptName", Val: values.NewString(name)},
		)
	}
	return NewEnv(map[string]values.Value{
		"Employees": values.NewList(
			emp(1, "ada", 10, 100),
			emp(2, "bob", 10, 80),
			emp(3, "eve", 20, 120),
			emp(4, "dan", 30, 90),
		),
		"Departments": values.NewList(
			dept(10, "HR"),
			dept(20, "Eng"),
			dept(30, "Ops"),
		),
	})
}

func evalSrc(t *testing.T, src string, env *Env) values.Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalPaperCountQuery(t *testing.T) {
	src := `for { e <- Employees, d <- Departments,
	        e.deptNo = d.id, d.deptName = "HR"} yield sum 1`
	if got := evalSrc(t, src, testEnv()); got.Int() != 2 {
		t.Fatalf("HR count = %v, want 2", got)
	}
}

func TestEvalScalarExpressions(t *testing.T) {
	env := NewEnv(nil)
	cases := map[string]values.Value{
		"1 + 2 * 3":                  values.NewInt(7),
		"(1 + 2) * 3":                values.NewInt(9),
		"7 / 2":                      values.NewInt(3),
		"7.0 / 2":                    values.NewFloat(3.5),
		"7 % 3":                      values.NewInt(1),
		`"a" + "b"`:                  values.NewString("ab"),
		"1 < 2":                      values.True,
		"2 <= 1":                     values.False,
		`"abc" = "abc"`:              values.True,
		"not (1 = 1)":                values.False,
		"true and false":             values.False,
		"true or false":              values.True,
		"if 2 > 1 then 10 else 20":   values.NewInt(10),
		"-(3 + 4)":                   values.NewInt(-7),
		"null":                       values.Null,
		"len(\"hello\")":             values.NewInt(5),
		"abs(-4)":                    values.NewInt(4),
		"sqrt(9.0)":                  values.NewFloat(3),
		"lower(\"AbC\")":             values.NewString("abc"),
		"substr(\"hello\", 1, 3)":    values.NewString("el"),
		"contains(\"vida\", \"id\")": values.True,
		"toint(\"42\")":              values.NewInt(42),
		"tofloat(\"2.5\")":           values.NewFloat(2.5),
		"tostring(12)":               values.NewString("12"),
	}
	for src, want := range cases {
		if got := evalSrc(t, src, env); !values.Equal(got, want) {
			t.Fatalf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalNullSemantics(t *testing.T) {
	env := NewEnv(map[string]values.Value{"x": values.Null})
	// Arithmetic propagates null.
	if got := evalSrc(t, "x + 1", env); !got.IsNull() {
		t.Fatalf("null + 1 = %v", got)
	}
	// Comparison with null is false.
	if got := evalSrc(t, "x = 1", env); got.Truth() {
		t.Fatalf("null = 1 should be false")
	}
	// Projection on null is null.
	if got := evalSrc(t, "x.field", env); !got.IsNull() {
		t.Fatalf("null.field = %v", got)
	}
	// Missing record attribute reads as null.
	env2 := NewEnv(map[string]values.Value{
		"r": values.NewRecord(values.Field{Name: "a", Val: values.NewInt(1)}),
	})
	if got := evalSrc(t, "r.missing", env2); !got.IsNull() {
		t.Fatalf("missing attr = %v", got)
	}
	// Generators over null iterate zero times.
	env3 := NewEnv(map[string]values.Value{"Xs": values.Null})
	if got := evalSrc(t, "for { x <- Xs } yield count x", env3); got.Int() != 0 {
		t.Fatalf("count over null = %v", got)
	}
}

func TestEvalAggregates(t *testing.T) {
	env := testEnv()
	cases := map[string]values.Value{
		"for { e <- Employees } yield count e":          values.NewInt(4),
		"for { e <- Employees } yield sum e.salary":     values.NewFloat(390),
		"for { e <- Employees } yield max e.salary":     values.NewFloat(120),
		"for { e <- Employees } yield min e.salary":     values.NewFloat(80),
		"for { e <- Employees } yield avg e.salary":     values.NewFloat(97.5),
		"for { e <- Employees } yield and e.salary > 0": values.True,
		"for { e <- Employees } yield or e.deptNo = 20": values.True,
	}
	for src, want := range cases {
		if got := evalSrc(t, src, env); !values.Equal(got, want) {
			t.Fatalf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalCollections(t *testing.T) {
	env := testEnv()
	got := evalSrc(t, "for { e <- Employees, e.deptNo = 10 } yield set e.name", env)
	want := values.NewSet(values.NewString("ada"), values.NewString("bob"))
	if !values.Equal(got, want) {
		t.Fatalf("set = %v, want %v", got, want)
	}
	got = evalSrc(t, "for { e <- Employees } yield list e.id", env)
	if got.Kind() != values.KindList || got.Len() != 4 || got.Elems()[0].Int() != 1 {
		t.Fatalf("list = %v", got)
	}
}

func TestEvalPaperNestedQuery(t *testing.T) {
	src := `for { e <- Employees, d <- Departments, e.deptNo = d.id}
	        yield set (emp := e.name,
	                   depList := for {d2 <- Departments, d.id = d2.id}
	                              yield set d2)`
	got := evalSrc(t, src, testEnv())
	if got.Kind() != values.KindSet || got.Len() != 4 {
		t.Fatalf("nested result = %v", got)
	}
	// Every element must carry a singleton depList.
	for _, e := range got.Elems() {
		dl := e.MustGet("depList")
		if dl.Kind() != values.KindSet || dl.Len() != 1 {
			t.Fatalf("depList = %v", dl)
		}
	}
}

func TestEvalBindQualifier(t *testing.T) {
	env := testEnv()
	src := "for { e <- Employees, bonus := e.salary * 0.1, bonus > 9 } yield count e"
	if got := evalSrc(t, src, env); got.Int() != 2 {
		t.Fatalf("bind count = %v, want 2", got)
	}
}

func TestEvalLambdaBindAndApply(t *testing.T) {
	env := testEnv()
	src := "for { double := \\x -> x * 2, e <- Employees } yield sum double(e.salary)"
	if got := evalSrc(t, src, env); got.Float() != 780 {
		t.Fatalf("lambda sum = %v", got)
	}
}

func TestEvalDirectApply(t *testing.T) {
	env := NewEnv(nil)
	if got := evalSrc(t, `(\x -> x + 1)(41)`, env); got.Int() != 42 {
		t.Fatalf("apply = %v", got)
	}
}

func TestEvalArrayIndexing(t *testing.T) {
	elems := make([]values.Value, 6)
	for i := range elems {
		elems[i] = values.NewInt(int64(i * 10))
	}
	env := NewEnv(map[string]values.Value{
		"M": values.NewArray([]int{2, 3}, elems),
	})
	if got := evalSrc(t, "M[1, 2]", env); got.Int() != 50 {
		t.Fatalf("M[1,2] = %v", got)
	}
	// Arrays are generable collections.
	if got := evalSrc(t, "for { x <- M } yield sum x", env); got.Int() != 150 {
		t.Fatalf("sum over array = %v", got)
	}
}

func TestEvalCollectionConversion(t *testing.T) {
	// The same data virtualized as different collection kinds (paper
	// §3.2: results can be exported as bags while inputs are lists).
	env := NewEnv(map[string]values.Value{
		"Xs": values.NewList(values.NewInt(2), values.NewInt(1), values.NewInt(2)),
	})
	if got := evalSrc(t, "for { x <- Xs } yield bag x", env); got.Kind() != values.KindBag || got.Len() != 3 {
		t.Fatalf("bag virtualization = %v", got)
	}
	if got := evalSrc(t, "for { x <- Xs } yield set x", env); got.Len() != 2 {
		t.Fatalf("set virtualization = %v", got)
	}
}

func TestEvalMergeAndLiterals(t *testing.T) {
	env := NewEnv(nil)
	got := evalSrc(t, "[1, 2] ++ [3]", env)
	if got.Kind() != values.KindList || got.Len() != 3 {
		t.Fatalf("concat = %v", got)
	}
	got = evalSrc(t, "set{1, 2} ++ set{2, 3}", env)
	if got.Len() != 3 {
		t.Fatalf("set union = %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	env := testEnv()
	bad := []string{
		"nosuchvar",
		"for { x <- 42 } yield sum x",
		"1 / 0",
		`"a" * 2`,
		"Employees[0, 1]",
	}
	for _, src := range bad {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Eval(e, env); err == nil {
			t.Fatalf("Eval(%q) should fail", src)
		}
	}
}

func TestEvalExistentialUniversal(t *testing.T) {
	env := testEnv()
	// "Does every department have an employee?" — universal via and.
	src := `for { d <- Departments }
	        yield and (for { e <- Employees, e.deptNo = d.id } yield or true)`
	if got := evalSrc(t, src, env); !got.Bool() {
		t.Fatalf("universal = %v", got)
	}
}
