package mcl

import (
	"fmt"
	"sync/atomic"

	"vida/internal/monoid"
	"vida/internal/values"
)

// Normalization implements the Fegaras–Maier rewrite system that puts
// comprehensions into canonical form before algebra translation (paper
// §4: "After applying a series of rewrite rules to optimize the query ...
// the partially optimized query is translated to a form of nested
// relational algebra"). The rules:
//
//	(beta)  (λv.e1)(e2)                    → e1[v := e2]
//	(proj)  ⟨..., A = e, ...⟩.A            → e
//	(if)    if true then e2 else e3        → e2   (and the false dual)
//	(bind)  for {..., v := e, Q} yield ⊕ h → substitute e for v in Q, h
//	(zero)  for {q*, v <- zero, Q} ...     → zero[⊕]
//	(unit)  for {q*, v <- unit(e), Q} ...  → for {q*, v := e, Q} ...
//	(merge) for {q*, v <- e1 ++ e2, Q} ... → split into ⊕ of two
//	        comprehensions — only when no generator precedes v or ⊕ is
//	        commutative (splitting reorders the outer iteration).
//	(unnest) for {q*, v <- for {Q2} yield ⊕2 h2, Q} yield ⊕ h
//	        → for {q*, Q2, v := h2, Q} yield ⊕ h — only when the inner
//	        collection's properties are dominated by ⊕: list always;
//	        bag requires ⊕ commutative; set requires ⊕ commutative and
//	        idempotent (dedup is dropped).
//	(true)  filter true                    → dropped
//	(false) filter false                   → whole comprehension is zero
//	(split) filter (p1 and p2)             → two filters
//
// All substitutions are capture-avoiding.

var freshCounter atomic.Uint64

// freshVar returns a variable name that cannot collide with user
// variables (user identifiers cannot contain '$').
func freshVar(hint string) string {
	return fmt.Sprintf("%s$%d", hint, freshCounter.Add(1))
}

// Subst returns e with free occurrences of name replaced by repl,
// avoiding variable capture by alpha-renaming binders when needed.
func Subst(e Expr, name string, repl Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *NullExpr, *ConstExpr, *ZeroExpr, *ParamExpr:
		return e
	case *VarExpr:
		if n.Name == name {
			return repl
		}
		return e
	case *ProjExpr:
		return &ProjExpr{Rec: Subst(n.Rec, name, repl), Attr: n.Attr}
	case *RecordExpr:
		fields := make([]FieldExpr, len(n.Fields))
		for i, f := range n.Fields {
			fields[i] = FieldExpr{Name: f.Name, Val: Subst(f.Val, name, repl)}
		}
		return &RecordExpr{Fields: fields}
	case *IfExpr:
		return &IfExpr{
			Cond: Subst(n.Cond, name, repl),
			Then: Subst(n.Then, name, repl),
			Else: Subst(n.Else, name, repl),
		}
	case *BinExpr:
		return &BinExpr{Op: n.Op, L: Subst(n.L, name, repl), R: Subst(n.R, name, repl)}
	case *NotExpr:
		return &NotExpr{E: Subst(n.E, name, repl)}
	case *NegExpr:
		return &NegExpr{E: Subst(n.E, name, repl)}
	case *LambdaExpr:
		if n.Param == name {
			return e
		}
		if occursFree(repl, n.Param) {
			fresh := freshVar(n.Param)
			body := Subst(n.Body, n.Param, &VarExpr{Name: fresh})
			return &LambdaExpr{Param: fresh, Body: Subst(body, name, repl)}
		}
		return &LambdaExpr{Param: n.Param, Body: Subst(n.Body, name, repl)}
	case *ApplyExpr:
		return &ApplyExpr{Fn: Subst(n.Fn, name, repl), Arg: Subst(n.Arg, name, repl)}
	case *CallExpr:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Subst(a, name, repl)
		}
		return &CallExpr{Name: n.Name, Args: args}
	case *SingletonExpr:
		return &SingletonExpr{M: n.M, E: Subst(n.E, name, repl)}
	case *MergeExpr:
		return &MergeExpr{M: n.M, L: Subst(n.L, name, repl), R: Subst(n.R, name, repl)}
	case *IndexExpr:
		idxs := make([]Expr, len(n.Idxs))
		for i, ix := range n.Idxs {
			idxs[i] = Subst(ix, name, repl)
		}
		return &IndexExpr{Arr: Subst(n.Arr, name, repl), Idxs: idxs}
	case *Comprehension:
		if n.Grouped() {
			return substGrouped(n, name, repl)
		}
		// Work on copies: substitution must not mutate shared subtrees.
		// Order keys live in the head's scope and follow it through every
		// renaming; limit/offset are outer-scope and substitute directly.
		qs := append([]Qualifier{}, n.Qs...)
		head := n.Head
		order := append([]OrderKey{}, n.Order...)
		substKeys := func(name string, repl Expr) {
			for i := range order {
				order[i].E = Subst(order[i].E, name, repl)
			}
		}
		shadowed := false
		for i := range qs {
			if shadowed {
				continue
			}
			qs[i].Src = Subst(qs[i].Src, name, repl)
			if qs[i].Var == "" {
				continue
			}
			if qs[i].Var == name {
				// Subsequent occurrences refer to this binder.
				shadowed = true
				continue
			}
			if occursFree(repl, qs[i].Var) {
				// Rename the binder out of the way of repl's free vars.
				old := qs[i].Var
				fresh := freshVar(old)
				for j := i + 1; j < len(qs); j++ {
					qs[j].Src = Subst(qs[j].Src, old, &VarExpr{Name: fresh})
				}
				head = Subst(head, old, &VarExpr{Name: fresh})
				substKeys(old, &VarExpr{Name: fresh})
				qs[i].Var = fresh
			}
		}
		if !shadowed {
			head = Subst(head, name, repl)
			substKeys(name, repl)
		}
		return &Comprehension{
			M: n.M, Head: head, Qs: qs, Order: order,
			Limit:  Subst(n.Limit, name, repl),
			Offset: Subst(n.Offset, name, repl),
		}
	}
	panic(fmt.Sprintf("mcl: Subst on %T", e))
}

// substGrouped substitutes into a grouped comprehension. Group keys and
// aggregate inputs are in qualifier scope, so they follow qualifier
// binders and their renames; Head/Having/Order are in group scope, where
// the key and aggregate names are the binders and qualifier variables
// are hidden. Limit/offset stay outer-scope.
func substGrouped(n *Comprehension, name string, repl Expr) Expr {
	qs := append([]Qualifier{}, n.Qs...)
	groupBy := append([]GroupKey{}, n.GroupBy...)
	aggs := append([]AggSpec{}, n.Aggs...)
	substInner := func(name string, repl Expr) {
		for i := range groupBy {
			groupBy[i].E = Subst(groupBy[i].E, name, repl)
		}
		for i := range aggs {
			aggs[i].E = Subst(aggs[i].E, name, repl)
		}
	}
	shadowed := false
	for i := range qs {
		if shadowed {
			continue
		}
		qs[i].Src = Subst(qs[i].Src, name, repl)
		if qs[i].Var == "" {
			continue
		}
		if qs[i].Var == name {
			shadowed = true
			continue
		}
		if occursFree(repl, qs[i].Var) {
			old := qs[i].Var
			fresh := freshVar(old)
			for j := i + 1; j < len(qs); j++ {
				qs[j].Src = Subst(qs[j].Src, old, &VarExpr{Name: fresh})
			}
			substInner(old, &VarExpr{Name: fresh})
			qs[i].Var = fresh
		}
	}
	if !shadowed {
		substInner(name, repl)
	}
	head, having := n.Head, n.Having
	order := append([]OrderKey{}, n.Order...)
	substGroupScope := func(name string, repl Expr) {
		head = Subst(head, name, repl)
		having = Subst(having, name, repl)
		for i := range order {
			order[i].E = Subst(order[i].E, name, repl)
		}
	}
	groupShadowed := false
	for i := range groupBy {
		if groupBy[i].Name == name {
			groupShadowed = true
		} else if occursFree(repl, groupBy[i].Name) {
			fresh := freshVar(groupBy[i].Name)
			substGroupScope(groupBy[i].Name, &VarExpr{Name: fresh})
			groupBy[i].Name = fresh
		}
	}
	for i := range aggs {
		if aggs[i].Name == name {
			groupShadowed = true
		} else if occursFree(repl, aggs[i].Name) {
			fresh := freshVar(aggs[i].Name)
			substGroupScope(aggs[i].Name, &VarExpr{Name: fresh})
			aggs[i].Name = fresh
		}
	}
	if !groupShadowed {
		substGroupScope(name, repl)
	}
	return &Comprehension{
		M: n.M, Head: head, Qs: qs,
		GroupBy: groupBy, Aggs: aggs, Having: having,
		Order:  order,
		Limit:  Subst(n.Limit, name, repl),
		Offset: Subst(n.Offset, name, repl),
	}
}

func occursFree(e Expr, name string) bool {
	for _, v := range FreeVars(e) {
		if v == name {
			return true
		}
	}
	return false
}

// Normalize rewrites e to normal form, applying the rule set to fixpoint
// (bounded to guard against pathological inputs).
func Normalize(e Expr) Expr {
	for i := 0; i < 200; i++ {
		next, changed := rewrite(e)
		e = next
		if !changed {
			break
		}
	}
	return e
}

// rewrite applies one bottom-up pass; changed reports progress.
func rewrite(e Expr) (Expr, bool) {
	switch n := e.(type) {
	case nil, *NullExpr, *ConstExpr, *VarExpr, *ZeroExpr, *ParamExpr:
		return e, false
	case *ProjExpr:
		rec, ch := rewrite(n.Rec)
		// (proj) projection on a record constructor.
		if rc, ok := rec.(*RecordExpr); ok {
			for _, f := range rc.Fields {
				if f.Name == n.Attr {
					return f.Val, true
				}
			}
		}
		return &ProjExpr{Rec: rec, Attr: n.Attr}, ch
	case *RecordExpr:
		fields := make([]FieldExpr, len(n.Fields))
		any := false
		for i, f := range n.Fields {
			v, ch := rewrite(f.Val)
			fields[i] = FieldExpr{Name: f.Name, Val: v}
			any = any || ch
		}
		return &RecordExpr{Fields: fields}, any
	case *IfExpr:
		cond, c1 := rewrite(n.Cond)
		then, c2 := rewrite(n.Then)
		els, c3 := rewrite(n.Else)
		// (if) constant condition folds.
		if cc, ok := cond.(*ConstExpr); ok && cc.Val.Kind() == values.KindBool {
			if cc.Val.Bool() {
				return then, true
			}
			return els, true
		}
		return &IfExpr{Cond: cond, Then: then, Else: els}, c1 || c2 || c3
	case *BinExpr:
		l, c1 := rewrite(n.L)
		r, c2 := rewrite(n.R)
		out := &BinExpr{Op: n.Op, L: l, R: r}
		if folded, ok := constFold(out); ok {
			return folded, true
		}
		return out, c1 || c2
	case *NotExpr:
		inner, ch := rewrite(n.E)
		if cc, ok := inner.(*ConstExpr); ok && cc.Val.Kind() == values.KindBool {
			return &ConstExpr{Val: values.NewBool(!cc.Val.Bool())}, true
		}
		if nn, ok := inner.(*NotExpr); ok {
			return nn.E, true
		}
		return &NotExpr{E: inner}, ch
	case *NegExpr:
		inner, ch := rewrite(n.E)
		return &NegExpr{E: inner}, ch
	case *LambdaExpr:
		body, ch := rewrite(n.Body)
		return &LambdaExpr{Param: n.Param, Body: body}, ch
	case *ApplyExpr:
		fn, c1 := rewrite(n.Fn)
		arg, c2 := rewrite(n.Arg)
		// (beta) reduction.
		if lam, ok := fn.(*LambdaExpr); ok {
			return Subst(lam.Body, lam.Param, arg), true
		}
		return &ApplyExpr{Fn: fn, Arg: arg}, c1 || c2
	case *CallExpr:
		args := make([]Expr, len(n.Args))
		any := false
		for i, a := range n.Args {
			v, ch := rewrite(a)
			args[i] = v
			any = any || ch
		}
		return &CallExpr{Name: n.Name, Args: args}, any
	case *SingletonExpr:
		inner, ch := rewrite(n.E)
		return &SingletonExpr{M: n.M, E: inner}, ch
	case *MergeExpr:
		l, c1 := rewrite(n.L)
		r, c2 := rewrite(n.R)
		// zero ++ e → e and e ++ zero → e.
		if z, ok := l.(*ZeroExpr); ok && sameMonoid(z.M, n.M) {
			return r, true
		}
		if z, ok := r.(*ZeroExpr); ok && sameMonoid(z.M, n.M) {
			return l, true
		}
		// Constant operands fold (valid for identity-finalize monoids,
		// whose accumulation domain is the value domain).
		if n.M != nil && finalizeIsIdentity(n.M) {
			lc, lok := l.(*ConstExpr)
			rc, rok := r.(*ConstExpr)
			if lok && rok {
				return &ConstExpr{Val: n.M.Merge(lc.Val, rc.Val)}, true
			}
		}
		return &MergeExpr{M: n.M, L: l, R: r}, c1 || c2
	case *IndexExpr:
		arr, c1 := rewrite(n.Arr)
		idxs := make([]Expr, len(n.Idxs))
		any := c1
		for i, ix := range n.Idxs {
			v, ch := rewrite(ix)
			idxs[i] = v
			any = any || ch
		}
		return &IndexExpr{Arr: arr, Idxs: idxs}, any
	case *Comprehension:
		return rewriteComprehension(n)
	}
	panic(fmt.Sprintf("mcl: rewrite on %T", e))
}

func sameMonoid(a, b monoid.Monoid) bool {
	return a != nil && b != nil && a.Name() == b.Name()
}

// finalizeIsIdentity reports whether m's Finalize is the identity, which
// gates rules that splice comprehension results into merges (avg/median
// accumulate auxiliary state that only Finalize collapses).
func finalizeIsIdentity(m monoid.Monoid) bool {
	z := m.Zero()
	return values.Equal(m.Finalize(z), z)
}

// zeroResult builds the expression a zero-iteration comprehension under m
// evaluates to: Finalize(Zero), folded to a literal where possible.
func zeroResult(m monoid.Monoid) Expr {
	z := m.Finalize(m.Zero())
	if values.Equal(z, m.Zero()) {
		return &ZeroExpr{M: m}
	}
	if z.IsNull() {
		return &NullExpr{}
	}
	return &ConstExpr{Val: z}
}

func constFold(n *BinExpr) (Expr, bool) {
	lc, lok := n.L.(*ConstExpr)
	rc, rok := n.R.(*ConstExpr)
	if !lok || !rok {
		return nil, false
	}
	v, err := ApplyBinOp(n.Op, lc.Val, rc.Val)
	if err != nil {
		return nil, false
	}
	return &ConstExpr{Val: v}, true
}

func rewriteComprehension(c *Comprehension) (Expr, bool) {
	if c.Grouped() {
		return rewriteGroupedChildren(c)
	}
	changed := false

	// Rewrite child expressions first.
	qs := make([]Qualifier, 0, len(c.Qs))
	for _, q := range c.Qs {
		src, ch := rewrite(q.Src)
		q.Src = src
		changed = changed || ch
		qs = append(qs, q)
	}
	head, ch := rewrite(c.Head)
	changed = changed || ch
	order := append([]OrderKey{}, c.Order...)
	for i := range order {
		ke, ch := rewrite(order[i].E)
		order[i].E = ke
		changed = changed || ch
	}
	var limit, offset Expr
	if c.Limit != nil {
		limit, ch = rewrite(c.Limit)
		changed = changed || ch
	}
	if c.Offset != nil {
		offset, ch = rewrite(c.Offset)
		changed = changed || ch
	}
	// with rebuilds the comprehension around new qualifiers/head, keeping
	// the ordering clause: every rule below that fires preserves the
	// multiset of produced bindings, so order/limit/offset still apply
	// identically to the rewritten form.
	with := func(head Expr, qs []Qualifier) *Comprehension {
		return &Comprehension{M: c.M, Head: head, Qs: qs, Order: order, Limit: limit, Offset: offset}
	}
	// empty is what a zero-iteration comprehension evaluates to. Ordered
	// comprehensions yield lists, so their empty result is the empty list,
	// not Z⊕ of the declared monoid.
	empty := func() Expr {
		if len(order) > 0 {
			return &ZeroExpr{M: monoid.List}
		}
		return zeroResult(c.M)
	}

	for i, q := range qs {
		switch {
		case q.IsBind():
			// (bind) inline the definition downstream. Lambdas stay: the
			// evaluator applies them; beta reduction handles direct
			// applications.
			if _, isLam := q.Src.(*LambdaExpr); isLam {
				continue
			}
			rest := with(head, append([]Qualifier{}, qs[i+1:]...))
			restSub := Subst(rest, q.Var, q.Src).(*Comprehension)
			out := &Comprehension{
				M:     c.M,
				Head:  restSub.Head,
				Qs:    append(append([]Qualifier{}, qs[:i]...), restSub.Qs...),
				Order: restSub.Order,
				// Limit/Offset are outer-scope: the comprehension's own
				// binds are not in their scope, so the inlined definition
				// must not substitute into them (order keys are
				// inner-scope and correctly follow restSub).
				Limit:  limit,
				Offset: offset,
			}
			return out, true
		case q.IsGenerator():
			switch src := q.Src.(type) {
			case *ZeroExpr:
				// (zero) the comprehension iterates zero times; ordering
				// and bounding an empty collection is still empty.
				return empty(), true
			case *SingletonExpr:
				// (unit) generator over singleton becomes a bind.
				nq := append([]Qualifier{}, qs...)
				nq[i] = Qualifier{Var: q.Var, Bind: true, Src: src.E}
				return with(head, nq), true
			case *MergeExpr:
				// (merge) split — see side condition in the header; the
				// split also merges two already-finalized results, so the
				// outer Finalize must be the identity. An ordering clause
				// blocks the split: a per-half limit would drop the wrong
				// rows, and ⊕ of two sorted halves is not sorted.
				if len(order) > 0 || limit != nil || offset != nil {
					break
				}
				if !finalizeIsIdentity(c.M) {
					break
				}
				if generatorBefore(qs[:i]) && !c.M.Commutative() {
					break
				}
				left := &Comprehension{M: c.M, Head: head, Qs: replaceQual(qs, i, src.L)}
				right := &Comprehension{M: c.M, Head: head, Qs: replaceQual(qs, i, src.R)}
				return &MergeExpr{M: c.M, L: left, R: right}, true
			case *Comprehension:
				// (unnest) flatten a nested comprehension generator — only
				// when the inner comprehension carries no ordering clause
				// (flattening would lose its sort and bound) and no grouping
				// (splicing its qualifiers would re-aggregate per outer row).
				if src.HasBound() || src.Grouped() || !unnestLegal(src.M, c.M) {
					break
				}
				inner := alphaRename(src, qs, head)
				nq := make([]Qualifier, 0, len(qs)+len(inner.Qs))
				nq = append(nq, qs[:i]...)
				nq = append(nq, inner.Qs...)
				nq = append(nq, Qualifier{Var: q.Var, Bind: true, Src: inner.Head})
				nq = append(nq, qs[i+1:]...)
				return with(head, nq), true
			}
		default: // filter
			if cc, ok := q.Src.(*ConstExpr); ok && cc.Val.Kind() == values.KindBool {
				if cc.Val.Bool() {
					// (true) drop the filter. A comprehension with no
					// remaining qualifiers evaluates its head exactly once
					// (and still applies Finalize), so it stays as-is.
					nq := append(append([]Qualifier{}, qs[:i]...), qs[i+1:]...)
					return with(head, nq), true
				}
				// (false) the comprehension iterates zero times.
				return empty(), true
			}
			// (split) conjunctive filters become separate qualifiers.
			if b, ok := q.Src.(*BinExpr); ok && b.Op == OpAnd {
				nq := make([]Qualifier, 0, len(qs)+1)
				nq = append(nq, qs[:i]...)
				nq = append(nq, Qualifier{Src: b.L}, Qualifier{Src: b.R})
				nq = append(nq, qs[i+1:]...)
				return with(head, nq), true
			}
		}
	}
	// A qualifier-free comprehension with a constant head evaluates
	// statically: Finalize(Zero ⊕ Unit(c)). An ordering clause blocks the
	// fold (limit 0 of a singleton is empty, and the params of limit/offset
	// may not be bound yet).
	if len(qs) == 0 && len(order) == 0 && limit == nil && offset == nil {
		if cc, ok := head.(*ConstExpr); ok {
			v := c.M.Finalize(c.M.Merge(c.M.Zero(), c.M.Unit(cc.Val)))
			if v.IsNull() {
				return &NullExpr{}, true
			}
			return &ConstExpr{Val: v}, true
		}
	}
	return with(head, qs), changed
}

// rewriteGroupedChildren rewrites only the child expressions of a grouped
// comprehension. The structural rules (bind inlining, merge split, unnest)
// redistribute the qualifier stream and would change which rows fold into
// which group, so a grouped comprehension is a rewrite boundary: its
// children normalize, the grouping form stays intact.
func rewriteGroupedChildren(c *Comprehension) (Expr, bool) {
	changed := false
	qs := make([]Qualifier, 0, len(c.Qs))
	for _, q := range c.Qs {
		src, ch := rewrite(q.Src)
		q.Src = src
		changed = changed || ch
		qs = append(qs, q)
	}
	groupBy := append([]GroupKey{}, c.GroupBy...)
	for i := range groupBy {
		e, ch := rewrite(groupBy[i].E)
		groupBy[i].E = e
		changed = changed || ch
	}
	aggs := append([]AggSpec{}, c.Aggs...)
	for i := range aggs {
		e, ch := rewrite(aggs[i].E)
		aggs[i].E = e
		changed = changed || ch
	}
	var having Expr
	if c.Having != nil {
		h, ch := rewrite(c.Having)
		having = h
		changed = changed || ch
	}
	head, ch := rewrite(c.Head)
	changed = changed || ch
	order := append([]OrderKey{}, c.Order...)
	for i := range order {
		ke, ch := rewrite(order[i].E)
		order[i].E = ke
		changed = changed || ch
	}
	var limit, offset Expr
	if c.Limit != nil {
		limit, ch = rewrite(c.Limit)
		changed = changed || ch
	}
	if c.Offset != nil {
		offset, ch = rewrite(c.Offset)
		changed = changed || ch
	}
	return &Comprehension{
		M: c.M, Head: head, Qs: qs,
		GroupBy: groupBy, Aggs: aggs, Having: having,
		Order: order, Limit: limit, Offset: offset,
	}, changed
}

// generatorBefore reports whether any generator qualifier appears in qs.
func generatorBefore(qs []Qualifier) bool {
	for _, q := range qs {
		if q.IsGenerator() {
			return true
		}
	}
	return false
}

func replaceQual(qs []Qualifier, i int, src Expr) []Qualifier {
	out := append([]Qualifier{}, qs...)
	out[i] = Qualifier{Var: qs[i].Var, Src: src}
	return out
}

// unnestLegal encodes the Fegaras–Maier side conditions for flattening a
// generator over an inner comprehension with monoid inner into an outer
// comprehension with monoid outer.
func unnestLegal(inner, outer monoid.Monoid) bool {
	if !monoid.IsCollection(inner) {
		return false
	}
	switch inner.Name() {
	case "list", "array":
		return true
	case "bag":
		return outer.Commutative()
	case "set":
		return outer.Commutative() && outer.Idempotent()
	}
	return false
}

// alphaRename renames the inner comprehension's bound variables away from
// anything free in the outer qualifiers or head, so splicing is safe.
func alphaRename(inner *Comprehension, outerQs []Qualifier, outerHead Expr) *Comprehension {
	used := map[string]bool{}
	for _, q := range outerQs {
		for _, v := range FreeVars(q.Src) {
			used[v] = true
		}
		if q.Var != "" {
			used[q.Var] = true
		}
	}
	for _, v := range FreeVars(outerHead) {
		used[v] = true
	}
	out := &Comprehension{M: inner.M, Head: inner.Head, Qs: append([]Qualifier{}, inner.Qs...)}
	for i, q := range out.Qs {
		if q.Var == "" || !used[q.Var] {
			continue
		}
		fresh := freshVar(q.Var)
		for j := i + 1; j < len(out.Qs); j++ {
			out.Qs[j].Src = Subst(out.Qs[j].Src, q.Var, &VarExpr{Name: fresh})
		}
		out.Head = Subst(out.Head, q.Var, &VarExpr{Name: fresh})
		out.Qs[i].Var = fresh
	}
	return out
}
