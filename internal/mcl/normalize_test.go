package mcl

import (
	"fmt"
	"math/rand"
	"testing"

	"vida/internal/values"
)

func TestNormalizeBetaReduction(t *testing.T) {
	e := MustParse(`(\x -> x + 1)(41)`)
	n := Normalize(e)
	c, ok := n.(*ConstExpr)
	if !ok || c.Val.Int() != 42 {
		t.Fatalf("normalized = %s", n)
	}
}

func TestNormalizeProjectionOnConstructor(t *testing.T) {
	e := MustParse("(a := 1, b := 2).b")
	n := Normalize(e)
	c, ok := n.(*ConstExpr)
	if !ok || c.Val.Int() != 2 {
		t.Fatalf("normalized = %s", n)
	}
}

func TestNormalizeIfFolding(t *testing.T) {
	e := MustParse("if 1 < 2 then 10 else 20")
	n := Normalize(e)
	c, ok := n.(*ConstExpr)
	if !ok || c.Val.Int() != 10 {
		t.Fatalf("normalized = %s", n)
	}
}

func TestNormalizeBindInlining(t *testing.T) {
	e := MustParse("for { x <- Xs, y := x.a, y > 1 } yield sum y")
	n := Normalize(e).(*Comprehension)
	for _, q := range n.Qs {
		if q.IsBind() {
			t.Fatalf("bind survived normalization: %s", n)
		}
	}
}

func TestNormalizeFilterSplitting(t *testing.T) {
	e := MustParse("for { x <- Xs, x.a > 1 and x.b < 2 } yield count x")
	n := Normalize(e).(*Comprehension)
	filters := 0
	for _, q := range n.Qs {
		if q.IsFilter() {
			filters++
		}
	}
	if filters != 2 {
		t.Fatalf("want 2 split filters, got %d: %s", filters, n)
	}
}

func TestNormalizeFalseFilter(t *testing.T) {
	e := MustParse("for { x <- Xs, 1 > 2 } yield sum x")
	n := Normalize(e)
	if z, ok := n.(*ZeroExpr); !ok || z.M.Name() != "sum" {
		t.Fatalf("normalized = %s", n)
	}
	// avg has non-identity finalize: empty avg is null, not zero.
	e = MustParse("for { x <- Xs, 1 > 2 } yield avg x")
	n = Normalize(e)
	if _, ok := n.(*NullExpr); !ok {
		t.Fatalf("empty avg normalized to %s, want null", n)
	}
}

func TestNormalizeUnnesting(t *testing.T) {
	// Generator over an inner bag comprehension must flatten (outer sum
	// is commutative).
	e := MustParse(`for { y <- (for { x <- Xs, x.a > 0 } yield bag x.b) } yield sum y`)
	n := Normalize(e)
	c, ok := n.(*Comprehension)
	if !ok {
		t.Fatalf("normalized to %T: %s", n, n)
	}
	for _, q := range c.Qs {
		if q.IsGenerator() {
			if _, nested := q.Src.(*Comprehension); nested {
				t.Fatalf("nested generator survived: %s", n)
			}
		}
	}
}

func TestNormalizeUnnestingBlockedForList(t *testing.T) {
	// Inner set into outer list would drop dedup; must NOT flatten.
	e := MustParse(`for { y <- (for { x <- Xs } yield set x.b) } yield list y`)
	n := Normalize(e)
	c, ok := n.(*Comprehension)
	if !ok {
		t.Fatalf("normalized to %T", n)
	}
	found := false
	for _, q := range c.Qs {
		if q.IsGenerator() {
			if _, nested := q.Src.(*Comprehension); nested {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("set-into-list was illegally unnested: %s", n)
	}
}

func TestNormalizeGeneratorOverLiteral(t *testing.T) {
	e := MustParse("for { x <- [1, 2, 3] } yield sum x")
	n := Normalize(e)
	// Fully static: should fold all the way to the constant 6.
	if c, ok := n.(*ConstExpr); !ok || c.Val.Int() != 6 {
		t.Fatalf("normalized = %s", n)
	}
}

func TestSubstCaptureAvoidance(t *testing.T) {
	// Substituting x := y into a comprehension that binds y must rename
	// the inner binder, not capture.
	e := MustParse("for { y <- Ys } yield sum x + y")
	out := Subst(e, "x", &VarExpr{Name: "y"})
	c := out.(*Comprehension)
	if c.Qs[0].Var == "y" {
		t.Fatalf("binder not renamed: %s", out)
	}
	fv := FreeVars(out)
	foundY := false
	for _, v := range fv {
		if v == "y" {
			foundY = true
		}
	}
	if !foundY {
		t.Fatalf("substituted y not free: %s (free: %v)", out, fv)
	}
}

func TestSubstShadowing(t *testing.T) {
	// x is rebound by the generator; only the free occurrence before it
	// may be substituted.
	e := MustParse("for { ok := x > 0, x <- Xs } yield sum x")
	out := Subst(e, "x", &ConstExpr{Val: values.NewInt(5)})
	c := out.(*Comprehension)
	// Head x must still reference the generator, not the constant.
	if _, isConst := c.Head.(*ConstExpr); isConst {
		t.Fatalf("shadowed occurrence substituted: %s", out)
	}
	if c.Qs[0].Src.String() != "(5 > 0)" {
		t.Fatalf("free occurrence not substituted: %s", out)
	}
}

// randomSources builds a small random environment for the preservation
// property test.
func randomSources(r *rand.Rand) map[string]values.Value {
	mkRec := func() values.Value {
		return values.NewRecord(
			values.Field{Name: "a", Val: values.NewInt(int64(r.Intn(5)))},
			values.Field{Name: "b", Val: values.NewInt(int64(r.Intn(5)))},
		)
	}
	n := r.Intn(6)
	xs := make([]values.Value, n)
	for i := range xs {
		xs[i] = mkRec()
	}
	m := r.Intn(4)
	ys := make([]values.Value, m)
	for i := range ys {
		ys[i] = mkRec()
	}
	return map[string]values.Value{
		"Xs": values.NewList(xs...),
		"Ys": values.NewList(ys...),
	}
}

// TestNormalizePreservesEvaluation is the core correctness property: for a
// corpus of query shapes and random data, Eval(e) == Eval(Normalize(e)).
func TestNormalizePreservesEvaluation(t *testing.T) {
	queries := []string{
		"for { x <- Xs, x.a > 1 } yield sum x.b",
		"for { x <- Xs, y <- Ys, x.a = y.a } yield count x",
		"for { x <- Xs, b := x.a + 1, b > 2 } yield bag x.b",
		"for { x <- Xs, x.a > 0 and x.b < 4 } yield set x.a",
		"for { y <- (for { x <- Xs, x.a > 0 } yield bag x.b) } yield sum y",
		"for { y <- (for { x <- Xs } yield list x.a), y > 1 } yield list y",
		"for { x <- Xs, 1 > 2 } yield avg x.a",
		"for { x <- Xs } yield avg x.a",
		"for { x <- Xs, x.a > 1 or x.b > 1 } yield count x",
		"for { x <- [1, 2, 3], y <- Xs } yield sum x * y.a",
		"for { x <- Xs } yield max (if x.a > x.b then x.a else x.b)",
		"for { x <- Xs, y <- Ys } yield list (p := x.a, q := y.b)",
		`for { d <- Ys } yield and (for { x <- Xs, x.a = d.a } yield or true)`,
		"for { x <- Xs } yield median x.a",
		"for { x <- Xs } yield top3 x.b",
	}
	r := rand.New(rand.NewSource(314))
	for _, src := range queries {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		norm := Normalize(e)
		for trial := 0; trial < 30; trial++ {
			env := NewEnv(randomSources(r))
			want, err1 := Eval(e, env)
			got, err2 := Eval(norm, env)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%q: error divergence: %v vs %v", src, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !values.Equal(got, want) {
				t.Fatalf("%q: normalization changed result:\noriginal:   %v\nnormalized: %v\nnorm form: %s",
					src, want, got, norm)
			}
		}
	}
}

// TestNormalizeIdempotent checks Normalize(Normalize(e)) == Normalize(e)
// syntactically for the corpus above.
func TestNormalizeIdempotent(t *testing.T) {
	queries := []string{
		"for { x <- Xs, x.a > 1 and x.b < 2 } yield sum x.b",
		"for { y <- (for { x <- Xs, x.a > 0 } yield bag x.b) } yield sum y",
		"for { x <- Xs, b := x.a + 1, b > 2 } yield bag x.b",
	}
	for _, src := range queries {
		n1 := Normalize(MustParse(src))
		n2 := Normalize(n1)
		if fmt.Sprint(n1) != fmt.Sprint(n2) {
			t.Fatalf("not idempotent:\n1: %s\n2: %s", n1, n2)
		}
	}
}
