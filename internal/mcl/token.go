// Package mcl implements ViDa's internal "wrapping" query language: the
// monoid comprehension calculus of Fegaras and Maier in the concrete
// syntax the paper uses (§3.2):
//
//	for { e <- Employees, d <- Departments,
//	      e.deptNo = d.id, d.deptName = "HR" } yield sum 1
//
// The package provides the lexer, parser, abstract syntax (Table 1 of the
// paper), a structural type checker over sdg types, the Fegaras–Maier
// normalization rules, and a reference evaluator that defines the
// semantics every ViDa executor must agree with.
package mcl

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokDot
	TokArrow    // <-
	TokAssign   // :=
	TokEq       // =
	TokNeq      // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokLambda   // \
	TokFatArrow // ->
	TokConcat   // ++ (merge e1 ⊕ e2 in collection form)
	TokParam    // $name / $1 bind parameter (Text holds the bare name)
)

// Keywords recognized by the lexer; they arrive as TokIdent with the
// keyword spelled in Text and are distinguished by the parser.
var keywords = map[string]bool{
	"for": true, "yield": true, "if": true, "then": true, "else": true,
	"true": true, "false": true, "null": true, "not": true,
	"and": true, "or": true, "in": true, "zero": true, "unit": true,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  int // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokIdent, TokInt, TokFloat:
		return fmt.Sprintf("%q", t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	case TokParam:
		return fmt.Sprintf("parameter $%s", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// SyntaxError is a parse or lex error with position information.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("mcl: offset %d: %s", e.Pos, e.Msg)
}

func errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
