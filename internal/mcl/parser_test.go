package mcl

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`for { e <- Emp, e.id >= 10 } yield sum 1`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{
		TokIdent, TokLBrace, TokIdent, TokArrow, TokIdent, TokComma,
		TokIdent, TokDot, TokIdent, TokGe, TokInt, TokRBrace,
		TokIdent, TokIdent, TokInt, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
}

func TestLexOperatorsAndLiterals(t *testing.T) {
	toks, err := Lex(`:= <- <= >= != <> ++ -> 3.14 2e3 .5 "a\nb" 'c'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokAssign, TokArrow, TokLe, TokGe, TokNeq, TokNeq, TokConcat,
		TokFatArrow, TokFloat, TokFloat, TokFloat, TokString, TokString, TokEOF,
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
	if toks[11].Text != "a\nb" {
		t.Fatalf("escape handling: %q", toks[11].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("1 # trailing\n// line\n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "1" || toks[1].Text != "2" {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `'unterminated`, "a ! b", "a : b", "@", `"bad \q escape"`} {
		if _, err := Lex(src); err == nil {
			t.Fatalf("Lex(%q) should fail", src)
		}
	}
}

func TestParsePaperCountQuery(t *testing.T) {
	// The paper's §3.2 aggregate example, verbatim modulo whitespace.
	src := `for { e <- Employees, d <- Departments,
	        e.deptNo = d.id, d.deptName = "HR"} yield sum 1`
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*Comprehension)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if c.M.Name() != "sum" {
		t.Fatalf("monoid = %s", c.M.Name())
	}
	if len(c.Qs) != 4 {
		t.Fatalf("qualifiers = %d", len(c.Qs))
	}
	if !c.Qs[0].IsGenerator() || c.Qs[0].Var != "e" {
		t.Fatalf("q0 = %+v", c.Qs[0])
	}
	if !c.Qs[2].IsFilter() {
		t.Fatalf("q2 = %+v", c.Qs[2])
	}
}

func TestParsePaperNestedQuery(t *testing.T) {
	// The paper's §3.2 nested example with a record head and inner
	// comprehension.
	src := `for { e <- Employees, d <- Departments, e.deptNo = d.id}
	        yield set (emp := e.name,
	                   depList := for {d2 <- Departments, d.id = d2.id}
	                              yield set d2)`
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*Comprehension)
	rec, ok := c.Head.(*RecordExpr)
	if !ok {
		t.Fatalf("head = %T", c.Head)
	}
	if len(rec.Fields) != 2 || rec.Fields[1].Name != "depList" {
		t.Fatalf("record fields = %+v", rec.Fields)
	}
	if _, ok := rec.Fields[1].Val.(*Comprehension); !ok {
		t.Fatalf("depList should be a comprehension, got %T", rec.Fields[1].Val)
	}
}

func TestParsePrecedence(t *testing.T) {
	e := MustParse("1 + 2 * 3 = 7 and not false")
	// ((1 + (2*3)) = 7) and (not false)
	want := "(((1 + (2 * 3)) = 7) and not false)"
	if e.String() != want {
		t.Fatalf("got %s, want %s", e, want)
	}
}

func TestParseIfThenElse(t *testing.T) {
	e := MustParse("if x > 0 then x else -x")
	if _, ok := e.(*IfExpr); !ok {
		t.Fatalf("got %T", e)
	}
}

func TestParseLambdaAndApply(t *testing.T) {
	e := MustParse(`(\x -> x + 1)(41)`)
	app, ok := e.(*ApplyExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if _, ok := app.Fn.(*LambdaExpr); !ok {
		t.Fatalf("fn = %T", app.Fn)
	}
}

func TestParseCollectionLiterals(t *testing.T) {
	e := MustParse("[1, 2, 3]")
	if m, ok := e.(*MergeExpr); !ok || m.M.Name() != "list" {
		t.Fatalf("list literal = %s", e)
	}
	e = MustParse("set{1, 2}")
	if m, ok := e.(*MergeExpr); !ok || m.M.Name() != "set" {
		t.Fatalf("set literal = %s", e)
	}
	e = MustParse("bag{}")
	if z, ok := e.(*ZeroExpr); !ok || z.M.Name() != "bag" {
		t.Fatalf("empty bag literal = %s", e)
	}
}

func TestParseArrayIndexing(t *testing.T) {
	e := MustParse("m[i, j+1]")
	ix, ok := e.(*IndexExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(ix.Idxs) != 2 {
		t.Fatalf("idxs = %d", len(ix.Idxs))
	}
}

func TestParseZeroUnit(t *testing.T) {
	e := MustParse("zero[set]")
	if z, ok := e.(*ZeroExpr); !ok || z.M.Name() != "set" {
		t.Fatalf("zero = %s", e)
	}
	e = MustParse("unit[bag](5)")
	if u, ok := e.(*SingletonExpr); !ok || u.M.Name() != "bag" {
		t.Fatalf("unit = %s", e)
	}
}

func TestParseBuiltinCalls(t *testing.T) {
	e := MustParse(`contains(lower(name), "ada")`)
	c, ok := e.(*CallExpr)
	if !ok || c.Name != "contains" {
		t.Fatalf("got %s", e)
	}
	if _, err := Parse("substr(s, 1)"); err == nil {
		t.Fatal("wrong arity should fail")
	}
}

func TestParseBindQualifier(t *testing.T) {
	e := MustParse("for { x <- Xs, y := x.a + 1, y > 2 } yield list y")
	c := e.(*Comprehension)
	if !c.Qs[1].IsBind() || c.Qs[1].Var != "y" {
		t.Fatalf("q1 = %+v", c.Qs[1])
	}
}

func TestParseTopK(t *testing.T) {
	e := MustParse("for { x <- Xs } yield top3 x")
	c := e.(*Comprehension)
	if c.M.Name() != "top3" {
		t.Fatalf("monoid = %s", c.M.Name())
	}
}

func TestParseConcat(t *testing.T) {
	e := MustParse("xs ++ ys")
	if _, ok := e.(*MergeExpr); !ok {
		t.Fatalf("got %T", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "for { } yield sum 1", "for { x <- } yield sum 1",
		"for { x <- Xs } yield", "for { x <- Xs } yield frob x",
		"(a := 1", "if x then y", "1 +", "x.", "m[", "zero[nope]",
		"for { x <- Xs yield sum x", "1 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := Parse("for { x <- Xs } yield sum !")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`for { e <- Emp, e.age > 30 } yield sum e.salary`,
		`for { x <- Xs, y <- x.items } yield bag (a := x.id, b := y)`,
		`if a = b then 1 else 2`,
		`for { p <- Ps, g <- Gs, p.id = g.id } yield bag (v := p.x)`,
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-parse of %q (%q): %v", src, e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Fatalf("round trip drift:\n%s\n%s", e1, e2)
		}
	}
}

func TestFreeVars(t *testing.T) {
	e := MustParse("for { x <- Xs, x.a = y } yield sum x.b + z")
	fv := FreeVars(e)
	want := map[string]bool{"Xs": true, "y": true, "z": true}
	if len(fv) != len(want) {
		t.Fatalf("free vars = %v", fv)
	}
	for _, v := range fv {
		if !want[v] {
			t.Fatalf("unexpected free var %q in %v", v, fv)
		}
	}
}
