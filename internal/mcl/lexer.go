package mcl

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer turns source text into tokens. It is a simple single-pass scanner;
// errors surface as SyntaxError values from next().
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// Lex tokenizes the whole input, primarily for tests and tooling.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return Token{TokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return Token{TokRParen, ")", start}, nil
	case c == '{':
		l.pos++
		return Token{TokLBrace, "{", start}, nil
	case c == '}':
		l.pos++
		return Token{TokRBrace, "}", start}, nil
	case c == '[':
		l.pos++
		return Token{TokLBracket, "[", start}, nil
	case c == ']':
		l.pos++
		return Token{TokRBracket, "]", start}, nil
	case c == ',':
		l.pos++
		return Token{TokComma, ",", start}, nil
	case c == '.':
		// Distinguish projection dot from float literals like ".5"
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.number()
		}
		l.pos++
		return Token{TokDot, ".", start}, nil
	case c == '\\':
		l.pos++
		return Token{TokLambda, "\\", start}, nil
	case c == '$':
		return l.param()
	case c == '+':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '+' {
			l.pos += 2
			return Token{TokConcat, "++", start}, nil
		}
		l.pos++
		return Token{TokPlus, "+", start}, nil
	case c == '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return Token{TokFatArrow, "->", start}, nil
		}
		l.pos++
		return Token{TokMinus, "-", start}, nil
	case c == '*':
		l.pos++
		return Token{TokStar, "*", start}, nil
	case c == '/':
		l.pos++
		return Token{TokSlash, "/", start}, nil
	case c == '%':
		l.pos++
		return Token{TokPercent, "%", start}, nil
	case c == '=':
		l.pos++
		return Token{TokEq, "=", start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return Token{TokNeq, "!=", start}, nil
		}
		return Token{}, errf(start, "unexpected %q (did you mean !=?)", "!")
	case c == ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return Token{TokAssign, ":=", start}, nil
		}
		return Token{}, errf(start, "unexpected %q (did you mean :=?)", ":")
	case c == '<':
		if l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case '-':
				l.pos += 2
				return Token{TokArrow, "<-", start}, nil
			case '=':
				l.pos += 2
				return Token{TokLe, "<=", start}, nil
			case '>':
				l.pos += 2
				return Token{TokNeq, "<>", start}, nil
			}
		}
		l.pos++
		return Token{TokLt, "<", start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return Token{TokGe, ">=", start}, nil
		}
		l.pos++
		return Token{TokGt, ">", start}, nil
	case c == '"' || c == '\'':
		return l.stringLit(c)
	case isDigit(c):
		return l.number()
	default:
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if unicode.IsLetter(r) || r == '_' {
			return l.ident()
		}
		return Token{}, errf(start, "unexpected character %q", string(r))
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) ident() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		// '$' continues identifiers so that generated names (normalizer
		// fresh variables, SQL translation keys) stay re-parseable.
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$' {
			l.pos += sz
		} else {
			break
		}
	}
	return Token{TokIdent, l.src[start:l.pos], start}, nil
}

// param lexes a bind parameter: '$' followed by an identifier or an
// ordinal ($limit, $1). The Text holds the name without the '$'.
func (l *lexer) param() (Token, error) {
	start := l.pos
	l.pos++ // consume '$'
	nameStart := l.pos
	for l.pos < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			l.pos += sz
		} else {
			break
		}
	}
	if l.pos == nameStart {
		return Token{}, errf(start, "expected parameter name after '$'")
	}
	return Token{TokParam, l.src[nameStart:l.pos], start}, nil
}

func (l *lexer) number() (Token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	} else if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos == start {
		// leading-dot float like .5
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	if isFloat || strings.ContainsAny(text, ".eE") {
		return Token{TokFloat, text, start}, nil
	}
	return Token{TokInt, text, start}, nil
}

func (l *lexer) stringLit(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // consume quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return Token{TokString, sb.String(), start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return Token{}, errf(start, "unterminated string")
			}
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case '\'':
				sb.WriteByte('\'')
			default:
				return Token{}, errf(l.pos, "unknown escape \\%c", l.src[l.pos])
			}
			l.pos++
		case '\n':
			return Token{}, errf(start, "unterminated string")
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return Token{}, errf(start, "unterminated string")
}
