package mcl

import (
	"testing"

	"vida/internal/values"
)

func TestParseParams(t *testing.T) {
	e, err := Parse(`for { p <- People, p.age > $min, p.name = $1 } yield bag p.id`)
	if err != nil {
		t.Fatal(err)
	}
	got := Params(e)
	if len(got) != 2 || got[0] != "min" || got[1] != "1" {
		t.Fatalf("Params = %v, want [min 1]", got)
	}
	// Round-trip: the rendering re-parses to the same parameters.
	e2, err := Parse(e.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", e.String(), err)
	}
	got2 := Params(e2)
	if len(got2) != 2 || got2[0] != "min" || got2[1] != "1" {
		t.Fatalf("re-parsed Params = %v", got2)
	}
}

func TestParamLexErrors(t *testing.T) {
	if _, err := Parse(`for { p <- T, p.x > $ } yield sum 1`); err == nil {
		t.Fatal("bare $ should fail to lex")
	}
}

func TestParamsTypeCheckAsHoles(t *testing.T) {
	e := MustParse(`for { p <- People, p.age > $min } yield sum 1`)
	env := NewTypeEnv(nil)
	// People unbound → error mentions People, not the parameter.
	if _, err := Check(e, env); err == nil {
		t.Fatal("unbound source should fail")
	}
}

func TestBindParamsSubstitutes(t *testing.T) {
	e := MustParse(`for { p <- People, p.age > $min } yield bag ($min + p.age)`)
	bound := BindParams(e, map[string]values.Value{"min": values.NewInt(40)})
	if len(Params(bound)) != 0 {
		t.Fatalf("parameters survive binding: %s", bound)
	}
	// The original is untouched (shared plans must stay reusable).
	if len(Params(e)) != 1 {
		t.Fatalf("BindParams mutated its input: %s", e)
	}
	// Null binds to the null literal.
	e2 := MustParse(`for { p <- People, p.age = $x } yield sum 1`)
	bound2 := BindParams(e2, map[string]values.Value{"x": values.Null})
	if len(Params(bound2)) != 0 {
		t.Fatalf("null binding left a hole: %s", bound2)
	}
}

func TestNormalizePreservesParams(t *testing.T) {
	e := MustParse(`for { p <- People, p.age > $min and p.id < $max } yield sum 1`)
	n := Normalize(e)
	got := Params(n)
	if len(got) != 2 {
		t.Fatalf("normalization dropped parameters: %v in %s", got, n)
	}
	// Unbound parameters surviving to evaluation error out clearly.
	if _, err := Eval(&ParamExpr{Name: "min"}, NewEnv(nil)); err == nil {
		t.Fatal("evaluating an unbound parameter should fail")
	}
}
