package basequery

import (
	"testing"

	"vida/internal/values"
)

func TestPredEval(t *testing.T) {
	cases := []struct {
		p    Pred
		v    values.Value
		want bool
	}{
		{Pred{"a", OpEq, values.NewInt(3)}, values.NewInt(3), true},
		{Pred{"a", OpEq, values.NewInt(3)}, values.NewInt(4), false},
		{Pred{"a", OpNe, values.NewInt(3)}, values.NewInt(4), true},
		{Pred{"a", OpLt, values.NewInt(3)}, values.NewInt(2), true},
		{Pred{"a", OpLe, values.NewInt(3)}, values.NewInt(3), true},
		{Pred{"a", OpGt, values.NewFloat(1.5)}, values.NewFloat(2.0), true},
		{Pred{"a", OpGe, values.NewFloat(1.5)}, values.NewFloat(1.5), true},
		{Pred{"a", OpEq, values.NewString("x")}, values.NewString("x"), true},
		// Nulls never match, either side.
		{Pred{"a", OpEq, values.NewInt(3)}, values.Null, false},
		{Pred{"a", OpNe, values.Null}, values.NewInt(3), false},
		// Cross-kind numeric comparison.
		{Pred{"a", OpEq, values.NewFloat(3.0)}, values.NewInt(3), true},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.v); got != c.want {
			t.Fatalf("%s against %v = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestMatchRecord(t *testing.T) {
	row := values.NewRecord(
		values.Field{Name: "a", Val: values.NewInt(5)},
		values.Field{Name: "b", Val: values.NewString("x")},
	)
	if !MatchRecord(row, []Pred{
		{"a", OpGt, values.NewInt(1)},
		{"b", OpEq, values.NewString("x")},
	}) {
		t.Fatal("conjunction should match")
	}
	if MatchRecord(row, []Pred{
		{"a", OpGt, values.NewInt(1)},
		{"missing", OpEq, values.NewInt(1)},
	}) {
		t.Fatal("missing column should fail the match")
	}
}

func TestAccumulators(t *testing.T) {
	feed := func(kind AggKind, vals ...values.Value) values.Value {
		a := Accumulator{Kind: kind}
		for _, v := range vals {
			a.Add(v)
		}
		return a.Result()
	}
	if got := feed(AggCount, values.NewInt(1), values.Null, values.NewInt(3)); got.Int() != 3 {
		t.Fatalf("count = %v", got)
	}
	if got := feed(AggSum, values.NewInt(1), values.Null, values.NewInt(3)); got.Float() != 4 {
		t.Fatalf("sum = %v (nulls must be skipped)", got)
	}
	if got := feed(AggAvg, values.NewInt(2), values.NewInt(4)); got.Float() != 3 {
		t.Fatalf("avg = %v", got)
	}
	if got := feed(AggAvg); !got.IsNull() {
		t.Fatalf("empty avg = %v", got)
	}
	if got := feed(AggMin, values.NewInt(5), values.NewInt(2), values.Null); got.Int() != 2 {
		t.Fatalf("min = %v", got)
	}
	if got := feed(AggMax, values.NewInt(5), values.NewInt(9)); got.Int() != 9 {
		t.Fatalf("max = %v", got)
	}
	if got := feed(AggMax); !got.IsNull() {
		t.Fatalf("empty max = %v", got)
	}
}

func sliceScan(rows []values.Value) ScanFn {
	return func(fields []string, preds []Pred, yield func(values.Value) error) error {
		for _, r := range rows {
			if !MatchRecord(r, preds) {
				continue
			}
			if len(fields) > 0 {
				fs := make([]values.Field, len(fields))
				for i, f := range fields {
					v, _ := r.Get(f)
					fs[i] = values.Field{Name: f, Val: v}
				}
				r = values.NewRecord(fs...)
			}
			if err := yield(r); err != nil {
				return err
			}
		}
		return nil
	}
}

func rec(pairs ...any) values.Value {
	var fs []values.Field
	for i := 0; i < len(pairs); i += 2 {
		var v values.Value
		switch x := pairs[i+1].(type) {
		case int:
			v = values.NewInt(int64(x))
		case string:
			v = values.NewString(x)
		}
		fs = append(fs, values.Field{Name: pairs[i].(string), Val: v})
	}
	return values.NewRecord(fs...)
}

func TestExecuteJoinThreeWay(t *testing.T) {
	a := []values.Value{rec("id", 1, "x", 10), rec("id", 2, "x", 20), rec("id", 3, "x", 30)}
	b := []values.Value{rec("aid", 1, "y", 100), rec("aid", 2, "y", 200), rec("aid", 2, "y", 201)}
	c := []values.Value{rec("bid", 100, "z", 7), rec("bid", 200, "z", 8)}
	q := &JoinQuery{
		Tables: []TableTerm{{Table: "A"}, {Table: "B"}, {Table: "C"}},
		Joins: []JoinOn{
			{LTable: "A", LCol: "id", RTable: "B", RCol: "aid"},
			{LTable: "B", LCol: "y", RTable: "C", RCol: "bid"},
		},
		Agg: &AggSpec{Kind: AggSum, Table: "C", Col: "z"},
	}
	scans := map[string]ScanFn{"A": sliceScan(a), "B": sliceScan(b), "C": sliceScan(c)}
	got, err := ExecuteJoin(q, scans)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: (1,100,7) and (2,200,8) → 15.
	if got.Float() != 15 {
		t.Fatalf("3-way sum = %v", got)
	}
}

func TestExecuteJoinProjectionAliases(t *testing.T) {
	a := []values.Value{rec("id", 1, "x", 10)}
	b := []values.Value{rec("aid", 1, "y", 100)}
	q := &JoinQuery{
		Tables:  []TableTerm{{Table: "A"}, {Table: "B"}},
		Joins:   []JoinOn{{LTable: "A", LCol: "id", RTable: "B", RCol: "aid"}},
		Project: []ProjCol{{Table: "A", Col: "x", As: "ax"}, {Table: "B", Col: "y"}},
	}
	got, err := ExecuteJoin(q, map[string]ScanFn{"A": sliceScan(a), "B": sliceScan(b)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("rows = %d", got.Len())
	}
	row := got.Elems()[0]
	if row.MustGet("ax").Int() != 10 || row.MustGet("y").Int() != 100 {
		t.Fatalf("row = %v", row)
	}
}

func TestExecuteJoinSingleTableCount(t *testing.T) {
	a := []values.Value{rec("id", 1), rec("id", 2)}
	q := &JoinQuery{
		Tables: []TableTerm{{Table: "A"}},
		Agg:    &AggSpec{Kind: AggCount, Table: "A", Col: "id"},
	}
	got, err := ExecuteJoin(q, map[string]ScanFn{"A": sliceScan(a)})
	if err != nil || got.Int() != 2 {
		t.Fatalf("count = %v, %v", got, err)
	}
}

func TestExecuteJoinNullKeysDrop(t *testing.T) {
	a := []values.Value{
		values.NewRecord(values.Field{Name: "id", Val: values.Null}),
		rec("id", 1),
	}
	b := []values.Value{
		values.NewRecord(values.Field{Name: "aid", Val: values.Null}),
		rec("aid", 1),
	}
	q := &JoinQuery{
		Tables: []TableTerm{{Table: "A"}, {Table: "B"}},
		Joins:  []JoinOn{{LTable: "A", LCol: "id", RTable: "B", RCol: "aid"}},
		Agg:    &AggSpec{Kind: AggCount},
	}
	got, err := ExecuteJoin(q, map[string]ScanFn{"A": sliceScan(a), "B": sliceScan(b)})
	if err != nil || got.Int() != 1 {
		t.Fatalf("null-key join count = %v, %v", got, err)
	}
}

func TestExecuteJoinErrors(t *testing.T) {
	if _, err := ExecuteJoin(&JoinQuery{}, nil); err == nil {
		t.Fatal("empty query accepted")
	}
	q := &JoinQuery{Tables: []TableTerm{{Table: "A"}}}
	if _, err := ExecuteJoin(q, map[string]ScanFn{}); err == nil {
		t.Fatal("missing scan accepted")
	}
}
