package basequery

import (
	"fmt"

	"vida/internal/values"
)

// TableTerm is one relation term of a join query: local predicates plus
// the fields the rest of the query needs from it.
type TableTerm struct {
	Table  string
	Preds  []Pred
	Fields []string
}

// JoinOn is one equi-join edge between two tables' columns.
type JoinOn struct {
	LTable, LCol string
	RTable, RCol string
}

// AggSpec is the optional aggregate finishing a query.
type AggSpec struct {
	Kind  AggKind
	Table string // ignored for COUNT(*)
	Col   string
}

// JoinQuery is the neutral multi-table query the baseline stores and the
// integration layer execute: left-deep equi-joins in table order, local
// predicates pushed to the scans, then either an aggregate or a
// projection of qualified columns.
type JoinQuery struct {
	Tables  []TableTerm
	Joins   []JoinOn
	Agg     *AggSpec
	Project []ProjCol // used when Agg is nil
}

// ProjCol is one projected column of a join result.
type ProjCol struct {
	Table, Col, As string
}

// ScanFn is a store's native scan entry point.
type ScanFn func(fields []string, preds []Pred, yield func(values.Value) error) error

// ExecuteJoin runs the query against per-table scan functions, returning
// the aggregate value or a bag of projected records. Joins are hash
// joins: each table after the first is built into a hash table on its
// join column; the first table streams and probes.
func ExecuteJoin(q *JoinQuery, scans map[string]ScanFn) (values.Value, error) {
	if len(q.Tables) == 0 {
		return values.Null, fmt.Errorf("basequery: no tables")
	}
	for _, t := range q.Tables {
		if scans[t.Table] == nil {
			return values.Null, fmt.Errorf("basequery: no scan for table %q", t.Table)
		}
	}
	// Resolve which fields each table must produce: requested fields,
	// join columns, aggregate column.
	need := map[string]map[string]bool{}
	addField := func(table, col string) {
		if need[table] == nil {
			need[table] = map[string]bool{}
		}
		need[table][col] = true
	}
	for _, t := range q.Tables {
		for _, f := range t.Fields {
			addField(t.Table, f)
		}
	}
	for _, j := range q.Joins {
		addField(j.LTable, j.LCol)
		addField(j.RTable, j.RCol)
	}
	if q.Agg != nil && q.Agg.Col != "" && q.Agg.Table != "" {
		addField(q.Agg.Table, q.Agg.Col)
	}
	for _, p := range q.Project {
		addField(p.Table, p.Col)
	}
	fieldsOf := func(table string) []string {
		m := need[table]
		out := make([]string, 0, len(m))
		for f := range m {
			out = append(out, f)
		}
		return out
	}

	// Build hash tables for tables[1:].
	type built struct {
		term  TableTerm
		key   string // join col probed against the accumulated side
		probe struct {
			table, col string
		}
		rows map[uint64][]values.Value
	}
	builds := make([]*built, 0, len(q.Tables)-1)
	for _, term := range q.Tables[1:] {
		b := &built{term: term, rows: map[uint64][]values.Value{}}
		// Find the join edge connecting this table to any earlier table.
		found := false
		for _, j := range q.Joins {
			if j.RTable == term.Table {
				b.key, b.probe.table, b.probe.col = j.RCol, j.LTable, j.LCol
				found = true
				break
			}
			if j.LTable == term.Table {
				b.key, b.probe.table, b.probe.col = j.LCol, j.RTable, j.RCol
				found = true
				break
			}
		}
		if !found {
			return values.Null, fmt.Errorf("basequery: table %q has no join edge", term.Table)
		}
		err := scans[term.Table](fieldsOf(term.Table), term.Preds, func(row values.Value) error {
			k, _ := row.Get(b.key)
			if k.IsNull() {
				return nil
			}
			b.rows[k.Hash()] = append(b.rows[k.Hash()], row)
			return nil
		})
		if err != nil {
			return values.Null, err
		}
		builds = append(builds, b)
	}

	// Stream the first table, probing each build in turn.
	var acc *Accumulator
	if q.Agg != nil {
		acc = &Accumulator{Kind: q.Agg.Kind}
	}
	var out []values.Value
	driver := q.Tables[0]
	err := scans[driver.Table](fieldsOf(driver.Table), driver.Preds, func(row values.Value) error {
		// Current bound rows per table.
		bound := map[string]values.Value{driver.Table: row}
		var rec func(i int) error
		rec = func(i int) error {
			if i == len(builds) {
				if acc != nil {
					if q.Agg.Kind == AggCount {
						acc.Add(values.Null)
					} else {
						v, _ := bound[q.Agg.Table].Get(q.Agg.Col)
						acc.Add(v)
					}
					return nil
				}
				fields := make([]values.Field, len(q.Project))
				for k, p := range q.Project {
					v, _ := bound[p.Table].Get(p.Col)
					name := p.As
					if name == "" {
						name = p.Col
					}
					fields[k] = values.Field{Name: name, Val: v}
				}
				out = append(out, values.NewRecord(fields...))
				return nil
			}
			b := builds[i]
			probeRow, ok := bound[b.probe.table]
			if !ok {
				return fmt.Errorf("basequery: probe table %q not bound yet", b.probe.table)
			}
			pk, _ := probeRow.Get(b.probe.col)
			if pk.IsNull() {
				return nil
			}
			for _, cand := range b.rows[pk.Hash()] {
				ck, _ := cand.Get(b.key)
				if values.Compare(ck, pk) != 0 {
					continue
				}
				bound[b.term.Table] = cand
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			delete(bound, b.term.Table)
			return nil
		}
		return rec(0)
	})
	if err != nil {
		return values.Null, err
	}
	if acc != nil {
		return acc.Result(), nil
	}
	return values.NewBag(out...), nil
}
