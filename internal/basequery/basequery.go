// Package basequery defines the minimal physical query vocabulary shared
// by the baseline stores (row store, column store, document store) and the
// integration layer: column predicates, projections and aggregates. The
// baselines deliberately do NOT use ViDa's calculus or executors — they
// are the self-contained comparison systems of the paper's evaluation —
// so this small neutral vocabulary is their query interface.
package basequery

import (
	"fmt"

	"vida/internal/values"
)

// Op is a comparison operator.
type Op uint8

// The comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Pred is one column-vs-constant predicate.
type Pred struct {
	Col string
	Op  Op
	Val values.Value
}

// Eval applies the predicate to a column value. Null never matches.
func (p Pred) Eval(v values.Value) bool {
	if v.IsNull() || p.Val.IsNull() {
		return false
	}
	c := values.Compare(v, p.Val)
	switch p.Op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// String renders the predicate.
func (p Pred) String() string { return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Val) }

// MatchRecord applies all predicates to a record row.
func MatchRecord(row values.Value, preds []Pred) bool {
	for _, p := range preds {
		v, _ := row.Get(p.Col)
		if !p.Eval(v) {
			return false
		}
	}
	return true
}

// AggKind is an aggregate function.
type AggKind uint8

// The aggregates.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("agg(%d)", uint8(a))
	}
}

// Accumulator folds one aggregate.
type Accumulator struct {
	Kind  AggKind
	count int64
	sum   float64
	min   values.Value
	max   values.Value
}

// Add feeds one value (nulls are ignored, SQL-style, except COUNT which
// counts rows).
func (a *Accumulator) Add(v values.Value) {
	if a.Kind == AggCount {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	a.count++
	switch a.Kind {
	case AggSum, AggAvg:
		a.sum += v.Float()
	case AggMin:
		if a.min.IsNull() || values.Compare(v, a.min) < 0 {
			a.min = v
		}
	case AggMax:
		if a.max.IsNull() || values.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
}

// Result returns the final aggregate value.
func (a *Accumulator) Result() values.Value {
	switch a.Kind {
	case AggCount:
		return values.NewInt(a.count)
	case AggSum:
		return values.NewFloat(a.sum)
	case AggAvg:
		if a.count == 0 {
			return values.Null
		}
		return values.NewFloat(a.sum / float64(a.count))
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	}
	return values.Null
}
