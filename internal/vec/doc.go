// Package vec defines the column-vector batch format shared by the JIT
// execution pipeline and the access paths that feed it (internal/jit,
// internal/rawcsv, internal/cache). A Batch carries a fixed-capacity run
// of rows decomposed into per-slot column vectors; typed columns hold
// int64/float64/string payloads directly, so scan→select→project chains
// move primitive slices instead of boxed values.Value structs, boxing
// only at monoid-reduce boundaries.
//
// # Column representations
//
// A Col is tagged with its physical representation: Int64, Float64 and
// Str carry unboxed payload slices with an optional validity mask
// (Nulls[i] == true marks row i null; a nil mask means "no nulls");
// Boxed is the generic fallback, one values.Value per row, used for
// bools, nested records/collections and columns whose rows mix types.
// Col.Value boxes a single row on demand — it is the typed→generic
// boundary, and kernels that stay on the payload slices never cross it.
//
// # Batch and selection-vector invariants
//
// A Batch holds N physical rows. Sel, when non-nil, is the ordered list
// of physical row indices that survived upstream filters; nil means all
// N rows are live. The invariants every producer and consumer relies on:
//
//   - Sel is strictly increasing and every element is in [0, N).
//   - Filters refine Sel only — they never reorder, duplicate, or
//     compact column storage. Batch.Len()/Index(k) are the only
//     sanctioned ways to enumerate live rows.
//   - Column storage is never mutated by consumers. Producers may reuse
//     it between emissions, so a consumer that retains data must copy
//     (Retain/Compact) unless the batch is marked Stable.
//
// # Zero-copy stability
//
// Batches are transient by default: the producer owns the column
// storage and overwrites it on the next emission. A producer that
// guarantees the storage is immutable for the life of the process state
// it came from — the columnar cache serving slice windows of its
// published entries is the canonical case — sets Stable = true, and
// consumers (join build sides, cursors) may then retain column slices
// with a header-level copy and no payload copy. Retain on a transient
// batch performs one bulk typed copy per column; Compact additionally
// drops unselected rows (re-indexing the result). Anything downstream
// of a mutation point (Packer, Bind extension columns) must clear
// Stable.
package vec
