package vec

import (
	"testing"

	"vida/internal/values"
)

func TestColTypedAppendAndValue(t *testing.T) {
	var c Col
	c.Reset(Int64)
	c.AppendInt(4)
	c.AppendNull()
	c.AppendInt(9)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Value(0).Int() != 4 || !c.Value(1).IsNull() || c.Value(2).Int() != 9 {
		t.Fatalf("values: %v %v %v", c.Value(0), c.Value(1), c.Value(2))
	}
	// The mask materialized lazily but covers earlier rows.
	if c.Nulls == nil || c.Nulls[0] || !c.Nulls[1] || c.Nulls[2] {
		t.Fatalf("nulls mask: %v", c.Nulls)
	}

	var f Col
	f.Reset(Float64)
	f.AppendFloat(1.25)
	if f.Value(0).Float() != 1.25 {
		t.Fatal("float column")
	}
	var s Col
	s.Reset(Str)
	s.AppendStr("hi")
	s.AppendNull()
	if s.Value(0).Str() != "hi" || !s.Value(1).IsNull() {
		t.Fatal("string column")
	}
}

func TestBatchSelection(t *testing.T) {
	b := New(1)
	for i := 0; i < 5; i++ {
		b.AppendRow([]values.Value{values.NewInt(int64(i))})
	}
	if b.Len() != 5 || b.Index(3) != 3 {
		t.Fatal("unselected batch")
	}
	b.Sel = []int{1, 4}
	if b.Len() != 2 || b.Index(0) != 1 || b.Index(1) != 4 {
		t.Fatal("selected batch")
	}
	b.Reset()
	if b.Len() != 0 || b.Sel != nil || b.Cols[0].Len() != 0 {
		t.Fatal("reset")
	}
}

func TestRetain(t *testing.T) {
	// Transient batch: retained copy must survive producer reuse.
	b := NewTyped([]Tag{Int64}, 4)
	b.Cols[0].AppendInt(1)
	b.Cols[0].AppendInt(2)
	b.N = 2
	kept := b.Retain()
	b.Reset()
	b.Cols[0].AppendInt(99)
	b.N = 1
	if kept.N != 2 || kept.Cols[0].Value(0).Int() != 1 || kept.Cols[0].Value(1).Int() != 2 {
		t.Fatalf("retained copy corrupted by producer reuse: %+v", kept.Cols[0])
	}
	// Stable batch: retention shares storage.
	st := &Batch{Cols: []Col{{Tag: Boxed, Boxed: []values.Value{values.NewInt(7)}}}, N: 1, Stable: true}
	shared := st.Retain()
	if &shared.Cols[0].Boxed[0] != &st.Cols[0].Boxed[0] {
		t.Fatal("stable retention should share backing storage")
	}
}
