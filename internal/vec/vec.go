package vec

import "vida/internal/values"

// DefaultBatchSize is the default number of rows per pipeline batch.
const DefaultBatchSize = 1024

// Tag discriminates the physical representation of a column.
type Tag uint8

// The column representations. Boxed is the generic fallback: one
// values.Value per row. The typed tags carry unboxed payloads with an
// optional validity mask.
const (
	Boxed Tag = iota
	Int64
	Float64
	Str
	// StrDict is a dictionary-compressed string column: Codes holds one
	// index per row into the shared, lexicographically sorted Dict. The
	// sort order is load-bearing — comparing codes compares strings, which
	// is what lets filters run on codes before any string materializes.
	StrDict
)

// String returns the tag name.
func (t Tag) String() string {
	switch t {
	case Boxed:
		return "boxed"
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case Str:
		return "string"
	case StrDict:
		return "strdict"
	default:
		return "tag(?)"
	}
}

// Col is one column vector of a batch. Exactly one payload slice is
// populated, per Tag. Nulls, when non-nil, marks null rows of a typed
// column (boxed columns represent nulls as values.Null directly).
type Col struct {
	Tag    Tag
	Boxed  []values.Value
	Ints   []int64
	Floats []float64
	Strs   []string
	// Codes/Dict carry the StrDict representation. Dict is immutable and
	// shared freely across windows and retained copies.
	Codes []uint32
	Dict  []string
	Nulls []bool
}

// Len returns the number of rows stored in the column.
func (c *Col) Len() int {
	switch c.Tag {
	case Int64:
		return len(c.Ints)
	case Float64:
		return len(c.Floats)
	case Str:
		return len(c.Strs)
	case StrDict:
		return len(c.Codes)
	default:
		return len(c.Boxed)
	}
}

// StrAt returns the string payload of row i of a Str or StrDict column
// (callers have already excluded null rows and checked the tag).
func (c *Col) StrAt(i int) string {
	if c.Tag == StrDict {
		return c.Dict[c.Codes[i]]
	}
	return c.Strs[i]
}

// Value boxes row i of the column into a values.Value. This is the
// typed→generic boundary: operators that cannot run vectorized call it
// row by row, everything else stays on the primitive slices.
func (c *Col) Value(i int) values.Value {
	if c.Nulls != nil && c.Nulls[i] {
		return values.Null
	}
	switch c.Tag {
	case Int64:
		return values.NewInt(c.Ints[i])
	case Float64:
		return values.NewFloat(c.Floats[i])
	case Str:
		return values.NewString(c.Strs[i])
	case StrDict:
		return values.NewString(c.Dict[c.Codes[i]])
	default:
		return c.Boxed[i]
	}
}

// Slice returns the [lo, hi) window of the column, sharing its storage.
// The window is only as immutable as the parent: cache entries hand out
// windows of published (immutable) columns, which is what makes warm
// scans zero-copy.
func (c *Col) Slice(lo, hi int) Col {
	out := Col{Tag: c.Tag}
	switch c.Tag {
	case Int64:
		out.Ints = c.Ints[lo:hi]
	case Float64:
		out.Floats = c.Floats[lo:hi]
	case Str:
		out.Strs = c.Strs[lo:hi]
	case StrDict:
		out.Codes = c.Codes[lo:hi]
		out.Dict = c.Dict
	default:
		out.Boxed = c.Boxed[lo:hi]
	}
	if c.Nulls != nil {
		out.Nulls = c.Nulls[lo:hi]
	}
	return out
}

// SizeBytes approximates the resident payload size of the column. Boxed
// values count their struct header plus string payload; nested values
// are estimated by the cache's deep walk, not here.
func (c *Col) SizeBytes() int64 {
	var total int64
	switch c.Tag {
	case Int64:
		total = int64(len(c.Ints)) * 8
	case Float64:
		total = int64(len(c.Floats)) * 8
	case Str:
		for _, s := range c.Strs {
			total += int64(len(s)) + 16
		}
	case StrDict:
		total = int64(len(c.Codes)) * 4
		for _, s := range c.Dict {
			total += int64(len(s)) + 16
		}
	default:
		total = int64(len(c.Boxed)) * 16
	}
	return total + int64(len(c.Nulls))
}

// Reset truncates the column in place (keeping capacity) and sets its tag.
func (c *Col) Reset(tag Tag) {
	c.Tag = tag
	c.Boxed = c.Boxed[:0]
	c.Ints = c.Ints[:0]
	c.Floats = c.Floats[:0]
	c.Strs = c.Strs[:0]
	c.Codes = c.Codes[:0]
	c.Dict = nil
	c.Nulls = nil
}

// grownNulls materializes the validity mask up to length n (all valid).
func (c *Col) grownNulls(n int) []bool {
	m := c.Nulls
	for len(m) < n {
		m = append(m, false)
	}
	return m
}

// AppendInt appends a non-null int64 row. The column must be Int64.
func (c *Col) AppendInt(v int64) {
	c.Ints = append(c.Ints, v)
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
}

// AppendFloat appends a non-null float64 row. The column must be Float64.
func (c *Col) AppendFloat(v float64) {
	c.Floats = append(c.Floats, v)
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
}

// AppendStr appends a non-null string row. The column must be Str.
func (c *Col) AppendStr(v string) {
	c.Strs = append(c.Strs, v)
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
}

// AppendValue appends a boxed row. The column must be Boxed.
func (c *Col) AppendValue(v values.Value) {
	c.Boxed = append(c.Boxed, v)
}

// AppendNull appends a null row to a column of any tag, materializing the
// validity mask for typed columns on first use.
func (c *Col) AppendNull() {
	switch c.Tag {
	case Int64:
		c.Nulls = append(c.grownNulls(len(c.Ints)), true)
		c.Ints = append(c.Ints, 0)
	case Float64:
		c.Nulls = append(c.grownNulls(len(c.Floats)), true)
		c.Floats = append(c.Floats, 0)
	case Str:
		c.Nulls = append(c.grownNulls(len(c.Strs)), true)
		c.Strs = append(c.Strs, "")
	case StrDict:
		c.Nulls = append(c.grownNulls(len(c.Codes)), true)
		c.Codes = append(c.Codes, 0)
	default:
		c.Boxed = append(c.Boxed, values.Null)
	}
}

// Batch is one fixed-capacity run of rows in columnar layout. N is the
// physical row count; Sel, when non-nil, is the ordered list of physical
// row indices that survived upstream filters (nil = all N rows live).
type Batch struct {
	Cols []Col
	N    int
	Sel  []int
	// Stable marks column storage that the producer never reuses or
	// overwrites (cache-owned slices): consumers may retain it zero-copy.
	Stable bool
}

// New returns a batch with width empty boxed columns.
func New(width int) *Batch {
	b := &Batch{Cols: make([]Col, width)}
	for i := range b.Cols {
		b.Cols[i].Tag = Boxed
	}
	return b
}

// NewWithCap returns a boxed batch whose columns are pre-allocated for
// rows appends, so fill loops never grow mid-batch.
func NewWithCap(width, rows int) *Batch {
	b := New(width)
	for i := range b.Cols {
		b.Cols[i].Boxed = make([]values.Value, 0, rows)
	}
	return b
}

// NewTyped returns a batch with the given column tags, pre-allocated for
// rows appends per tag.
func NewTyped(tags []Tag, rows int) *Batch {
	b := &Batch{Cols: make([]Col, len(tags))}
	for i, t := range tags {
		c := &b.Cols[i]
		c.Tag = t
		switch t {
		case Int64:
			c.Ints = make([]int64, 0, rows)
		case Float64:
			c.Floats = make([]float64, 0, rows)
		case Str:
			c.Strs = make([]string, 0, rows)
		case StrDict:
			c.Codes = make([]uint32, 0, rows)
		default:
			c.Boxed = make([]values.Value, 0, rows)
		}
	}
	return b
}

// Len returns the number of live (selected) rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Index maps the k-th live row to its physical row index.
func (b *Batch) Index(k int) int {
	if b.Sel != nil {
		return b.Sel[k]
	}
	return k
}

// Reset truncates all columns in place, keeping their tags and capacity.
func (b *Batch) Reset() {
	for i := range b.Cols {
		c := &b.Cols[i]
		c.Reset(c.Tag)
	}
	b.N = 0
	b.Sel = nil
}

// Retain returns a batch safe to hold after the producer moves on:
// stable batches share their column storage (header-level copy only),
// transient ones get a bulk per-column payload copy — typed columns stay
// typed, so retained build sides cost 8 bytes per int instead of a boxed
// Value. The selection vector is not retained; callers keep physical row
// indices.
func (b *Batch) Retain() Batch {
	out := Batch{Cols: append([]Col(nil), b.Cols...), N: b.N, Stable: true}
	if b.Stable {
		return out
	}
	for i := range out.Cols {
		c := &out.Cols[i]
		switch c.Tag {
		case Int64:
			c.Ints = append([]int64(nil), c.Ints...)
		case Float64:
			c.Floats = append([]float64(nil), c.Floats...)
		case Str:
			c.Strs = append([]string(nil), c.Strs...)
		case StrDict:
			c.Codes = append([]uint32(nil), c.Codes...)
		default:
			c.Boxed = append([]values.Value(nil), c.Boxed...)
		}
		if c.Nulls != nil {
			c.Nulls = append([]bool(nil), c.Nulls...)
		}
	}
	return out
}

// Compact returns a batch holding only b's live (selected) rows, in
// selection order, with typed columns kept typed. Unlike Retain it
// re-indexes: physical row k of the result is the k-th live row of b,
// and the result has no selection vector. Build sides of joins use it so
// a heavily filtered transient batch retains len(Sel) rows instead of N.
func (b *Batch) Compact() Batch {
	n := b.Len()
	out := Batch{Cols: make([]Col, len(b.Cols)), N: n, Stable: true}
	for ci := range b.Cols {
		src := &b.Cols[ci]
		dst := &out.Cols[ci]
		dst.Tag = src.Tag
		switch src.Tag {
		case Int64:
			dst.Ints = make([]int64, n)
			for k := 0; k < n; k++ {
				dst.Ints[k] = src.Ints[b.Index(k)]
			}
		case Float64:
			dst.Floats = make([]float64, n)
			for k := 0; k < n; k++ {
				dst.Floats[k] = src.Floats[b.Index(k)]
			}
		case Str:
			dst.Strs = make([]string, n)
			for k := 0; k < n; k++ {
				dst.Strs[k] = src.Strs[b.Index(k)]
			}
		case StrDict:
			dst.Codes = make([]uint32, n)
			for k := 0; k < n; k++ {
				dst.Codes[k] = src.Codes[b.Index(k)]
			}
			dst.Dict = src.Dict
		default:
			dst.Boxed = make([]values.Value, n)
			for k := 0; k < n; k++ {
				dst.Boxed[k] = src.Boxed[b.Index(k)]
			}
		}
		if src.Nulls != nil {
			dst.Nulls = make([]bool, n)
			for k := 0; k < n; k++ {
				dst.Nulls[k] = src.Nulls[b.Index(k)]
			}
		}
	}
	return out
}

// MemoryBytes approximates the resident size of the batch's column
// storage (payload slices; boxed values count their header only).
func (b *Batch) MemoryBytes() int64 {
	var total int64
	for i := range b.Cols {
		c := &b.Cols[i]
		total += int64(cap(c.Ints))*8 + int64(cap(c.Floats))*8 + int64(cap(c.Boxed))*16 + int64(cap(c.Codes))*4
		for _, s := range c.Strs[:cap(c.Strs)] {
			total += int64(len(s)) + 16
		}
		for _, s := range c.Dict {
			total += int64(len(s)) + 16
		}
		total += int64(cap(c.Nulls))
	}
	return total
}

// AppendRow appends one boxed row across all columns (columns must be
// Boxed; used by generic packers and row-exploding operators).
func (b *Batch) AppendRow(row []values.Value) {
	for i := range b.Cols {
		b.Cols[i].Boxed = append(b.Cols[i].Boxed, row[i])
	}
	b.N++
}

// Packer accumulates rows into a reused boxed batch and emits it to Sink
// when full (and on Flush), optionally refining the selection through
// Filter first. It adapts row-at-a-time producers — slot sources, record
// sources, exploding operators — to the batch pipeline.
type Packer struct {
	b      Batch
	size   int
	filter func(*Batch) error // may be nil
	sink   func(*Batch) error
}

// NewPacker returns a packer of width boxed columns emitting batches of
// up to size rows. Column capacity is pre-allocated modestly; steady
// state reuses the storage across flushes.
func NewPacker(width, size int, filter, sink func(*Batch) error) *Packer {
	p := &Packer{size: size, filter: filter, sink: sink}
	p.b.Cols = make([]Col, width)
	cap := min(size, 128)
	for i := range p.b.Cols {
		p.b.Cols[i].Tag = Boxed
		p.b.Cols[i].Boxed = make([]values.Value, 0, cap)
	}
	return p
}

// Add appends one row, flushing when the batch is full. The row is
// copied; the caller may reuse it.
func (p *Packer) Add(row []values.Value) error {
	p.b.AppendRow(row)
	if p.b.N >= p.size {
		return p.Flush()
	}
	return nil
}

// Flush emits any buffered rows and resets the batch for reuse.
func (p *Packer) Flush() error {
	if p.b.N == 0 {
		return nil
	}
	p.b.Sel = nil
	if p.filter != nil {
		if err := p.filter(&p.b); err != nil {
			return err
		}
	}
	var err error
	if p.b.Len() > 0 {
		err = p.sink(&p.b)
	}
	p.b.Reset()
	return err
}
