package vec

import "vida/internal/values"

// ColBuilder accumulates one output column across pipeline batches,
// keeping the payload typed for as long as every input batch agrees on
// the representation and falling back to boxed values otherwise. The
// raw-scan harvest uses one builder per projected field so the typed
// vectors a scan already produced are retained as typed cache columns —
// no box/unbox round trip between the access path and the cache.
type ColBuilder struct {
	col     Col
	hint    int
	decided bool
}

// NewColBuilder returns a builder whose first append pre-allocates the
// payload for hint rows (0: grow on demand).
func NewColBuilder(hint int) *ColBuilder {
	return &ColBuilder{hint: hint}
}

// Len returns the number of rows accumulated so far.
func (cb *ColBuilder) Len() int { return cb.col.Len() }

// Append copies the live rows of src (one column of batch b) into the
// builder. The first append adopts src's representation; a later batch
// arriving under a different tag demotes the whole column to boxed —
// the mixed-type fallback — after which all appends box row by row.
func (cb *ColBuilder) Append(src *Col, b *Batch) {
	n := b.Len()
	if n == 0 {
		return
	}
	// Dictionary windows harvest as plain strings: the builder's output is
	// published as an independent cache column, which must not alias the
	// source entry's dictionary.
	srcTag := src.Tag
	if srcTag == StrDict {
		srcTag = Str
	}
	if !cb.decided {
		cb.decided = true
		cb.col.Tag = srcTag
		switch srcTag {
		case Int64:
			cb.col.Ints = make([]int64, 0, cb.hint)
		case Float64:
			cb.col.Floats = make([]float64, 0, cb.hint)
		case Str:
			cb.col.Strs = make([]string, 0, cb.hint)
		default:
			cb.col.Boxed = make([]values.Value, 0, cb.hint)
		}
	}
	if srcTag != cb.col.Tag {
		cb.boxify()
	}
	if cb.col.Tag == Boxed {
		for k := 0; k < n; k++ {
			cb.col.Boxed = append(cb.col.Boxed, src.Value(b.Index(k)))
		}
		return
	}
	if b.Sel == nil {
		// Bulk path: the whole physical batch is live.
		if src.Nulls != nil {
			cb.col.Nulls = cb.col.grownNulls(cb.col.Len())
			cb.col.Nulls = append(cb.col.Nulls, src.Nulls[:b.N]...)
		} else if cb.col.Nulls != nil {
			for i := 0; i < b.N; i++ {
				cb.col.Nulls = append(cb.col.Nulls, false)
			}
		}
		switch cb.col.Tag {
		case Int64:
			cb.col.Ints = append(cb.col.Ints, src.Ints[:b.N]...)
		case Float64:
			cb.col.Floats = append(cb.col.Floats, src.Floats[:b.N]...)
		case Str:
			if src.Tag == StrDict {
				for i := 0; i < b.N; i++ {
					cb.col.Strs = append(cb.col.Strs, src.Dict[src.Codes[i]])
				}
			} else {
				cb.col.Strs = append(cb.col.Strs, src.Strs[:b.N]...)
			}
		}
		return
	}
	for _, i := range b.Sel {
		if src.Nulls != nil && src.Nulls[i] {
			cb.col.AppendNull()
			continue
		}
		switch cb.col.Tag {
		case Int64:
			cb.col.AppendInt(src.Ints[i])
		case Float64:
			cb.col.AppendFloat(src.Floats[i])
		case Str:
			cb.col.AppendStr(src.StrAt(i))
		}
	}
}

// AppendValue boxes one row into the builder, demoting a typed column.
// Row-at-a-time harvest paths (slot sources) use it.
func (cb *ColBuilder) AppendValue(v values.Value) {
	if !cb.decided {
		cb.decided = true
		cb.col.Tag = Boxed
		cb.col.Boxed = make([]values.Value, 0, cb.hint)
	}
	if cb.col.Tag != Boxed {
		cb.boxify()
	}
	cb.col.Boxed = append(cb.col.Boxed, v)
}

// boxify converts the accumulated typed payload to boxed values.
func (cb *ColBuilder) boxify() {
	if cb.col.Tag == Boxed {
		return
	}
	n := cb.col.Len()
	boxed := make([]values.Value, n)
	for i := 0; i < n; i++ {
		boxed[i] = cb.col.Value(i)
	}
	cb.col = Col{Tag: Boxed, Boxed: boxed}
}

// Finish returns the accumulated column. The builder must not be used
// afterwards; the column owns its storage exclusively, so callers may
// publish it as immutable.
func (cb *ColBuilder) Finish() Col {
	if !cb.decided {
		cb.col.Tag = Boxed
	}
	return cb.col
}
