package vec

import (
	"testing"

	"vida/internal/values"
)

func intBatch(vals ...int64) *Batch {
	b := &Batch{Cols: make([]Col, 1), N: len(vals)}
	b.Cols[0] = Col{Tag: Int64, Ints: vals}
	return b
}

func TestColBuilderTypedBulk(t *testing.T) {
	cb := NewColBuilder(8)
	cb.Append(&intBatch(1, 2, 3).Cols[0], intBatch(1, 2, 3))
	cb.Append(&intBatch(4, 5).Cols[0], intBatch(4, 5))
	col := cb.Finish()
	if col.Tag != Int64 || len(col.Ints) != 5 || col.Ints[4] != 5 {
		t.Fatalf("col = %+v", col)
	}
	if col.Nulls != nil {
		t.Fatal("no nulls expected")
	}
}

func TestColBuilderSelectionAndNulls(t *testing.T) {
	b := intBatch(10, 20, 30, 40)
	b.Cols[0].Nulls = []bool{false, true, false, false}
	b.Sel = []int{0, 1, 3}
	cb := NewColBuilder(0)
	cb.Append(&b.Cols[0], b)
	col := cb.Finish()
	if col.Tag != Int64 || col.Len() != 3 {
		t.Fatalf("col = %+v", col)
	}
	if col.Nulls == nil || !col.Nulls[1] || col.Nulls[0] || col.Nulls[2] {
		t.Fatalf("nulls = %v", col.Nulls)
	}
	if col.Ints[0] != 10 || col.Ints[2] != 40 {
		t.Fatalf("ints = %v", col.Ints)
	}
}

func TestColBuilderNullsAfterCleanBulk(t *testing.T) {
	// A mask arriving after mask-free batches must backfill valid rows.
	cb := NewColBuilder(0)
	cb.Append(&intBatch(1, 2).Cols[0], intBatch(1, 2))
	b := intBatch(3, 4)
	b.Cols[0].Nulls = []bool{true, false}
	cb.Append(&b.Cols[0], b)
	col := cb.Finish()
	if col.Len() != 4 || len(col.Nulls) != 4 {
		t.Fatalf("col = %+v", col)
	}
	if col.Nulls[0] || col.Nulls[1] || !col.Nulls[2] || col.Nulls[3] {
		t.Fatalf("nulls = %v", col.Nulls)
	}
	// And the reverse: a mask-free batch after a masked one extends the
	// mask with valid rows.
	cb2 := NewColBuilder(0)
	cb2.Append(&b.Cols[0], b)
	cb2.Append(&intBatch(5).Cols[0], intBatch(5))
	col2 := cb2.Finish()
	if len(col2.Nulls) != 3 || col2.Nulls[2] {
		t.Fatalf("nulls = %v", col2.Nulls)
	}
}

func TestColBuilderMixedTagFallsBackToBoxed(t *testing.T) {
	cb := NewColBuilder(0)
	cb.Append(&intBatch(1, 2).Cols[0], intBatch(1, 2))
	fb := &Batch{Cols: []Col{{Tag: Float64, Floats: []float64{2.5}}}, N: 1}
	cb.Append(&fb.Cols[0], fb)
	col := cb.Finish()
	if col.Tag != Boxed || col.Len() != 3 {
		t.Fatalf("col = %+v", col)
	}
	if col.Boxed[0].Int() != 1 || col.Boxed[2].Float() != 2.5 {
		t.Fatalf("boxed = %v", col.Boxed)
	}
}

func TestColBuilderAppendValueDemotes(t *testing.T) {
	cb := NewColBuilder(0)
	cb.Append(&intBatch(7).Cols[0], intBatch(7))
	cb.AppendValue(values.NewString("s"))
	col := cb.Finish()
	if col.Tag != Boxed || col.Len() != 2 || col.Boxed[1].Str() != "s" {
		t.Fatalf("col = %+v", col)
	}
}

func TestColBuilderEmptyFinishesBoxed(t *testing.T) {
	col := NewColBuilder(4).Finish()
	if col.Tag != Boxed || col.Len() != 0 {
		t.Fatalf("col = %+v", col)
	}
}

func TestColSliceSharesStorage(t *testing.T) {
	c := Col{Tag: Int64, Ints: []int64{1, 2, 3, 4}, Nulls: []bool{false, true, false, false}}
	w := c.Slice(1, 3)
	if w.Len() != 2 || w.Ints[0] != 2 || !w.Nulls[0] || w.Nulls[1] {
		t.Fatalf("window = %+v", w)
	}
	if &w.Ints[0] != &c.Ints[1] {
		t.Fatal("window must alias parent storage (zero-copy)")
	}
	s := Col{Tag: Str, Strs: []string{"a", "b"}}
	if sw := s.Slice(1, 2); sw.Strs[0] != "b" || &sw.Strs[0] != &s.Strs[1] {
		t.Fatal("string window must alias parent storage")
	}
}

func TestColSizeBytes(t *testing.T) {
	ints := Col{Tag: Int64, Ints: make([]int64, 10)}
	if ints.SizeBytes() != 80 {
		t.Fatalf("int col size = %d", ints.SizeBytes())
	}
	strs := Col{Tag: Str, Strs: []string{"abcd", ""}}
	if strs.SizeBytes() != 4+16*2 {
		t.Fatalf("str col size = %d", strs.SizeBytes())
	}
	masked := Col{Tag: Float64, Floats: make([]float64, 4), Nulls: make([]bool, 4)}
	if masked.SizeBytes() != 32+4 {
		t.Fatalf("masked col size = %d", masked.SizeBytes())
	}
}
