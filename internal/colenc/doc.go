// Package colenc implements the encoded columnar representation behind
// the cache's second tier: self-describing, checksummed blocks that hold
// 5-10x more rows per byte than flat vectors, live either encoded in
// memory (eviction then accounts the encoded size) or spilled to a cache
// directory from which a restarted engine rehydrates without touching
// the raw file.
//
// # Column encodings
//
// Each column encodes independently under one of five schemes, chosen
// from the vector's tag and value distribution at encode time:
//
//	EncDelta  int64: per block, zig-zag varint of the first value
//	          followed by zig-zag varint deltas. Sequential IDs and
//	          near-sorted measures collapse to ~1 byte/row.
//	EncFloat  float64: raw 8-byte little-endian passthrough.
//	EncDict   strings, low cardinality: the block payload is one varint
//	          dictionary code per row; the dictionary itself (sorted
//	          ascending, so code order IS string order) is stored once
//	          per column. Decoding yields vec.StrDict windows, and
//	          filters compare codes against one binary-searched pivot
//	          before any string materializes.
//	EncStr    strings, high cardinality: varint length + bytes per row.
//	EncBoxed  mixed/generic columns: varint length + bsonlite document
//	          per row (raw passthrough — no compression is attempted).
//
// A column picks EncDict when its cardinality is at most MaxDictSize
// and at most half its row count; otherwise strings stay EncStr.
//
// # Block format
//
// Rows split into fixed runs of BlockRows, so a scan can decode exactly
// the blocks a morsel range touches. Every block carries its payload
// with a leading flags byte:
//
//	block := flags(u8) [nullBitmap] payload
//	flags bit0: a null bitmap of ceil(rows/8) bytes follows; bit i of
//	            byte i/8 marks row i null. Null rows still occupy a
//	            zero-valued payload slot, keeping delta chains and row
//	            offsets uniform.
//
// Each block stores a CRC-32C (Castagnoli) checksum of its bytes.
// Checksums are verified when a spill file is read back (a mismatch
// quarantines the whole file); the in-memory decode path trusts blocks
// it encoded itself and skips the check.
//
// # Spill file format
//
// One file holds one dataset's encoded columnar entry (little-endian):
//
//	file   := magic "VCSP" | version u16 | headerLen u32 | header
//	        | headerCRC u32 | blockData*
//	header := str dataset | str generation | uvarint rows | uvarint ncols
//	        | column*
//	column := str name | tag u8 | enc u8 | uvarint dictLen | str*
//	        | uvarint nblocks | (uvarint rows, uvarint dataLen, crc u32)*
//	str    := uvarint length | bytes
//
// Block payloads follow the header in column order, then block order.
// The generation string keys the file to one raw-file generation
// (content hash), so a source Refresh makes the file stale and the
// cache layer deletes rather than rehydrates it. Truncated or
// checksum-failing files never crash a reader: every parse returns an
// error the caller turns into a .bad quarantine.
package colenc
