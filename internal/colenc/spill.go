package colenc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"vida/internal/vec"
)

// spillMagic and spillVersion gate spill files: an unknown magic or
// version is a parse error, which callers treat as corruption.
var spillMagic = []byte("VCSP")

const spillVersion = 1

// SpillMeta identifies what a spill file holds: the dataset and the raw
// file generation (content hash) it was encoded from.
type SpillMeta struct {
	Dataset    string
	Generation string
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// WriteSpillFile atomically writes the encoded table to path (temp file
// + rename, so readers never observe a half-written spill).
func WriteSpillFile(path string, meta SpillMeta, t *Table) error {
	header := make([]byte, 0, 256)
	header = appendStr(header, meta.Dataset)
	header = appendStr(header, meta.Generation)
	header = binary.AppendUvarint(header, uint64(t.N))
	header = binary.AppendUvarint(header, uint64(len(t.Cols)))
	var names []string
	for name := range t.Cols {
		names = append(names, name)
	}
	// Deterministic column order keeps the file byte-stable across writes.
	sortStrings(names)
	var body []byte
	for _, name := range names {
		c := t.Cols[name]
		header = appendStr(header, name)
		header = append(header, byte(c.Tag), byte(c.Enc))
		header = binary.AppendUvarint(header, uint64(len(c.Dict)))
		for _, s := range c.Dict {
			header = appendStr(header, s)
		}
		header = binary.AppendUvarint(header, uint64(len(c.Blocks)))
		for i := range c.Blocks {
			b := &c.Blocks[i]
			header = binary.AppendUvarint(header, uint64(b.Rows))
			header = binary.AppendUvarint(header, uint64(len(b.Data)))
			header = binary.LittleEndian.AppendUint32(header, b.CRC)
			body = append(body, b.Data...)
		}
	}
	buf := make([]byte, 0, len(spillMagic)+2+4+len(header)+4+len(body))
	buf = append(buf, spillMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, spillVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(header)))
	buf = append(buf, header...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(header, castagnoli))
	buf = append(buf, body...)

	tmp, err := os.CreateTemp(filepath.Dir(path), ".spill-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadSpillFile parses and fully validates a spill file: magic, version,
// header checksum, and every block checksum. Any deviation — truncation,
// bit rot, unknown layout — returns an error without panicking, so the
// cache layer can quarantine the file.
func ReadSpillFile(path string) (SpillMeta, *Table, error) {
	var meta SpillMeta
	raw, err := os.ReadFile(path)
	if err != nil {
		return meta, nil, err
	}
	if len(raw) < len(spillMagic)+6 || string(raw[:len(spillMagic)]) != string(spillMagic) {
		return meta, nil, fmt.Errorf("colenc: %s: not a spill file", path)
	}
	off := len(spillMagic)
	if v := binary.LittleEndian.Uint16(raw[off:]); v != spillVersion {
		return meta, nil, fmt.Errorf("colenc: %s: unsupported spill version %d", path, v)
	}
	off += 2
	hlen := int(binary.LittleEndian.Uint32(raw[off:]))
	off += 4
	if hlen < 0 || len(raw) < off+hlen+4 {
		return meta, nil, fmt.Errorf("colenc: %s: truncated header", path)
	}
	header := raw[off : off+hlen]
	off += hlen
	if got := binary.LittleEndian.Uint32(raw[off:]); got != crc32.Checksum(header, castagnoli) {
		return meta, nil, fmt.Errorf("colenc: %s: header checksum mismatch", path)
	}
	off += 4

	pos := 0
	uv := func() (uint64, error) {
		v, w := binary.Uvarint(header[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("colenc: %s: truncated header varint", path)
		}
		pos += w
		return v, nil
	}
	str := func() (string, error) {
		n, err := uv()
		if err != nil {
			return "", err
		}
		if uint64(len(header)-pos) < n {
			return "", fmt.Errorf("colenc: %s: truncated header string", path)
		}
		s := string(header[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	if meta.Dataset, err = str(); err != nil {
		return meta, nil, err
	}
	if meta.Generation, err = str(); err != nil {
		return meta, nil, err
	}
	nRows, err := uv()
	if err != nil {
		return meta, nil, err
	}
	nCols, err := uv()
	if err != nil {
		return meta, nil, err
	}
	if nCols > 1<<20 {
		return meta, nil, fmt.Errorf("colenc: %s: implausible column count %d", path, nCols)
	}
	t := &Table{N: int(nRows), Cols: make(map[string]*Col, nCols)}
	for ci := uint64(0); ci < nCols; ci++ {
		name, err := str()
		if err != nil {
			return meta, nil, err
		}
		if pos+2 > len(header) {
			return meta, nil, fmt.Errorf("colenc: %s: truncated column header", path)
		}
		c := &Col{Tag: vec.Tag(header[pos]), Enc: Encoding(header[pos+1]), N: int(nRows)}
		pos += 2
		nDict, err := uv()
		if err != nil {
			return meta, nil, err
		}
		if nDict > MaxDictSize {
			return meta, nil, fmt.Errorf("colenc: %s: implausible dictionary size %d", path, nDict)
		}
		for di := uint64(0); di < nDict; di++ {
			s, err := str()
			if err != nil {
				return meta, nil, err
			}
			c.Dict = append(c.Dict, s)
		}
		nBlocks, err := uv()
		if err != nil {
			return meta, nil, err
		}
		rows := 0
		for bi := uint64(0); bi < nBlocks; bi++ {
			r, err := uv()
			if err != nil {
				return meta, nil, err
			}
			dlen, err := uv()
			if err != nil {
				return meta, nil, err
			}
			if pos+4 > len(header) {
				return meta, nil, fmt.Errorf("colenc: %s: truncated block header", path)
			}
			crc := binary.LittleEndian.Uint32(header[pos:])
			pos += 4
			if uint64(len(raw)-off) < dlen {
				return meta, nil, fmt.Errorf("colenc: %s: truncated block data", path)
			}
			data := raw[off : off+int(dlen)]
			off += int(dlen)
			if crc32.Checksum(data, castagnoli) != crc {
				return meta, nil, fmt.Errorf("colenc: %s: block checksum mismatch (column %q block %d)", path, name, bi)
			}
			c.Blocks = append(c.Blocks, Block{Rows: int(r), Data: data, CRC: crc})
			rows += int(r)
		}
		if rows != int(nRows) {
			return meta, nil, fmt.Errorf("colenc: %s: column %q holds %d rows, want %d", path, name, rows, nRows)
		}
		t.Cols[name] = c
	}
	return meta, t, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
