package colenc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"vida/internal/bsonlite"
	"vida/internal/values"
	"vida/internal/vec"
)

// BlockRows is the fixed row count per encoded block (the last block of
// a column may be shorter). 4096 keeps a decoded block within a couple
// of pipeline batches while amortizing per-block overhead.
const BlockRows = 4096

// MaxDictSize caps the dictionary cardinality: columns with more
// distinct strings encode as raw length-prefixed strings instead.
const MaxDictSize = 4096

// Encoding identifies a column's block payload scheme.
type Encoding uint8

// The column encodings (see the package comment for layouts).
const (
	EncDelta Encoding = iota
	EncFloat
	EncDict
	EncStr
	EncBoxed
)

// String returns the encoding name.
func (e Encoding) String() string {
	switch e {
	case EncDelta:
		return "delta"
	case EncFloat:
		return "float"
	case EncDict:
		return "dict"
	case EncStr:
		return "str"
	case EncBoxed:
		return "boxed"
	default:
		return fmt.Sprintf("enc(%d)", uint8(e))
	}
}

// castagnoli is the CRC-32C table shared by block and header checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Block is one checksummed run of encoded rows.
type Block struct {
	Rows int
	Data []byte
	CRC  uint32
}

// Col is one encoded column: the decoded tag, the payload scheme, and
// the block sequence. Dict is populated for EncDict only.
type Col struct {
	Tag    vec.Tag
	Enc    Encoding
	N      int
	Dict   []string
	Blocks []Block
}

// Table is a dataset's encoded columnar entry.
type Table struct {
	N    int
	Cols map[string]*Col
}

// SizeBytes returns the resident footprint of the encoded column.
func (c *Col) SizeBytes() int64 {
	var total int64
	for i := range c.Blocks {
		total += int64(len(c.Blocks[i].Data)) + 16
	}
	for _, s := range c.Dict {
		total += int64(len(s)) + 16
	}
	return total
}

// NumBlocks returns the block count.
func (c *Col) NumBlocks() int { return len(c.Blocks) }

// SizeBytes returns the resident footprint of all encoded columns.
func (t *Table) SizeBytes() int64 {
	var total int64
	for _, c := range t.Cols {
		total += c.SizeBytes()
	}
	return total
}

// NumBlocks returns the total block count across columns.
func (t *Table) NumBlocks() int {
	n := 0
	for _, c := range t.Cols {
		n += len(c.Blocks)
	}
	return n
}

// HasColumns reports whether every requested field is encoded.
func (t *Table) HasColumns(fields []string) bool {
	for _, f := range fields {
		if _, ok := t.Cols[f]; !ok {
			return false
		}
	}
	return true
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeColumns encodes a full columnar entry of n rows.
func EncodeColumns(cols map[string]vec.Col, n int) (*Table, error) {
	t := &Table{N: n, Cols: make(map[string]*Col, len(cols))}
	for name, col := range cols {
		ec, err := EncodeCol(&col)
		if err != nil {
			return nil, fmt.Errorf("colenc: column %q: %w", name, err)
		}
		t.Cols[name] = ec
	}
	return t, nil
}

// EncodeCol encodes one column vector into checksummed blocks.
func EncodeCol(c *vec.Col) (*Col, error) {
	n := c.Len()
	out := &Col{Tag: c.Tag, N: n}
	switch c.Tag {
	case vec.Int64:
		out.Enc = EncDelta
	case vec.Float64:
		out.Enc = EncFloat
	case vec.Str, vec.StrDict:
		out.Tag = vec.Str
		dict, codes := buildDict(c, n)
		if dict != nil {
			out.Enc, out.Dict = EncDict, dict
			return encodeBlocks(out, c, n, func(buf []byte, lo, hi int) ([]byte, error) {
				for i := lo; i < hi; i++ {
					buf = binary.AppendUvarint(buf, uint64(codes[i]))
				}
				return buf, nil
			})
		}
		out.Enc = EncStr
	case vec.Boxed:
		out.Enc = EncBoxed
	default:
		return nil, fmt.Errorf("unencodable tag %s", c.Tag)
	}
	return encodeBlocks(out, c, n, func(buf []byte, lo, hi int) ([]byte, error) {
		switch out.Enc {
		case EncDelta:
			prev := int64(0)
			for i := lo; i < hi; i++ {
				v := int64(0)
				if c.Nulls == nil || !c.Nulls[i] {
					v = c.Ints[i]
				}
				if i == lo {
					buf = binary.AppendUvarint(buf, zigzag(v))
				} else {
					buf = binary.AppendUvarint(buf, zigzag(v-prev))
				}
				prev = v
			}
		case EncFloat:
			for i := lo; i < hi; i++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Floats[i]))
			}
		case EncStr:
			for i := lo; i < hi; i++ {
				s := c.StrAt(i)
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
		case EncBoxed:
			for i := lo; i < hi; i++ {
				doc, err := bsonlite.Marshal(c.Boxed[i])
				if err != nil {
					return nil, err
				}
				buf = binary.AppendUvarint(buf, uint64(len(doc)))
				buf = append(buf, doc...)
			}
		}
		return buf, nil
	})
}

// buildDict returns the sorted dictionary and per-row codes of a string
// column, or nil when its cardinality disqualifies dictionary encoding.
func buildDict(c *vec.Col, n int) ([]string, []uint32) {
	if c.Tag == vec.StrDict {
		// Already dictionary-shaped: reuse the sorted dictionary as-is.
		if len(c.Dict) <= MaxDictSize && len(c.Dict)*2 <= n {
			return c.Dict, c.Codes
		}
		return nil, nil
	}
	uniq := make(map[string]struct{}, 64)
	for _, s := range c.Strs {
		uniq[s] = struct{}{}
		if len(uniq) > MaxDictSize {
			return nil, nil
		}
	}
	if len(uniq)*2 > n {
		return nil, nil
	}
	dict := make([]string, 0, len(uniq))
	for s := range uniq {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	idx := make(map[string]uint32, len(dict))
	for i, s := range dict {
		idx[s] = uint32(i)
	}
	codes := make([]uint32, n)
	for i, s := range c.Strs {
		codes[i] = idx[s]
	}
	return dict, codes
}

// encodeBlocks splits [0,n) into BlockRows runs, prepending the flags
// byte + null bitmap and checksumming each block.
func encodeBlocks(out *Col, c *vec.Col, n int, payload func(buf []byte, lo, hi int) ([]byte, error)) (*Col, error) {
	for lo := 0; lo < n || (n == 0 && lo == 0); lo += BlockRows {
		hi := lo + BlockRows
		if hi > n {
			hi = n
		}
		rows := hi - lo
		buf := make([]byte, 0, rows+1)
		if c.Nulls != nil {
			buf = append(buf, 1)
			bitmap := make([]byte, (rows+7)/8)
			for i := lo; i < hi; i++ {
				if c.Nulls[i] {
					bitmap[(i-lo)/8] |= 1 << uint((i-lo)%8)
				}
			}
			buf = append(buf, bitmap...)
		} else {
			buf = append(buf, 0)
		}
		buf, err := payload(buf, lo, hi)
		if err != nil {
			return nil, err
		}
		out.Blocks = append(out.Blocks, Block{Rows: rows, Data: buf, CRC: crc32.Checksum(buf, castagnoli)})
		if n == 0 {
			break
		}
	}
	return out, nil
}

// VerifyBlock recomputes the checksum of block bi.
func (c *Col) VerifyBlock(bi int) error {
	b := &c.Blocks[bi]
	if got := crc32.Checksum(b.Data, castagnoli); got != b.CRC {
		return fmt.Errorf("colenc: block %d checksum mismatch (got %08x want %08x)", bi, got, b.CRC)
	}
	return nil
}

// DecodeBlock decodes block bi into dst, replacing its contents. Dict
// columns decode to vec.StrDict sharing the column's dictionary; all
// other encodings decode to their original tag. The destination keeps
// its payload capacity across calls, so a scan reusing one dst per
// column allocates only on the first (and largest) block.
func (c *Col) DecodeBlock(bi int, dst *vec.Col) error {
	if bi < 0 || bi >= len(c.Blocks) {
		return fmt.Errorf("colenc: block %d out of range [0,%d)", bi, len(c.Blocks))
	}
	b := &c.Blocks[bi]
	data := b.Data
	if len(data) < 1 {
		return fmt.Errorf("colenc: block %d: empty data", bi)
	}
	tag := c.Tag
	if c.Enc == EncDict {
		tag = vec.StrDict
	}
	dst.Reset(tag)
	dst.Dict = nil
	flags, data := data[0], data[1:]
	var nulls []byte
	if flags&1 != 0 {
		nb := (b.Rows + 7) / 8
		if len(data) < nb {
			return fmt.Errorf("colenc: block %d: truncated null bitmap", bi)
		}
		nulls, data = data[:nb], data[nb:]
		mask := make([]bool, b.Rows)
		for i := 0; i < b.Rows; i++ {
			mask[i] = nulls[i/8]&(1<<uint(i%8)) != 0
		}
		dst.Nulls = mask
	}
	pos := 0
	uv := func() (uint64, error) {
		v, w := binary.Uvarint(data[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("colenc: block %d: truncated varint at offset %d", bi, pos)
		}
		pos += w
		return v, nil
	}
	switch c.Enc {
	case EncDelta:
		prev := int64(0)
		for i := 0; i < b.Rows; i++ {
			u, err := uv()
			if err != nil {
				return err
			}
			v := unzigzag(u)
			if i > 0 {
				v += prev
			}
			prev = v
			dst.Ints = append(dst.Ints, v)
		}
	case EncFloat:
		if len(data) < b.Rows*8 {
			return fmt.Errorf("colenc: block %d: truncated float payload", bi)
		}
		for i := 0; i < b.Rows; i++ {
			dst.Floats = append(dst.Floats, math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:])))
		}
	case EncDict:
		for i := 0; i < b.Rows; i++ {
			u, err := uv()
			if err != nil {
				return err
			}
			if u >= uint64(len(c.Dict)) {
				return fmt.Errorf("colenc: block %d: code %d outside dictionary of %d", bi, u, len(c.Dict))
			}
			dst.Codes = append(dst.Codes, uint32(u))
		}
		dst.Dict = c.Dict
	case EncStr:
		for i := 0; i < b.Rows; i++ {
			u, err := uv()
			if err != nil {
				return err
			}
			if uint64(len(data)-pos) < u {
				return fmt.Errorf("colenc: block %d: truncated string payload", bi)
			}
			dst.Strs = append(dst.Strs, string(data[pos:pos+int(u)]))
			pos += int(u)
		}
	case EncBoxed:
		for i := 0; i < b.Rows; i++ {
			u, err := uv()
			if err != nil {
				return err
			}
			if uint64(len(data)-pos) < u {
				return fmt.Errorf("colenc: block %d: truncated document payload", bi)
			}
			var v values.Value
			if dst.Nulls != nil && dst.Nulls[i] {
				v = values.Null
			} else {
				var derr error
				v, derr = bsonlite.Unmarshal(data[pos : pos+int(u)])
				if derr != nil {
					return fmt.Errorf("colenc: block %d row %d: %w", bi, i, derr)
				}
			}
			pos += int(u)
			dst.Boxed = append(dst.Boxed, v)
		}
	default:
		return fmt.Errorf("colenc: unknown encoding %d", c.Enc)
	}
	return nil
}

// Decode materializes the whole column back into a flat vector (used
// when an encoded entry must merge with fresh hot columns).
func (c *Col) Decode() (vec.Col, error) {
	var out vec.Col
	out.Tag = c.Tag
	if c.Enc == EncDict {
		out.Tag = vec.StrDict
	}
	var blk vec.Col
	first := true
	for bi := range c.Blocks {
		if err := c.DecodeBlock(bi, &blk); err != nil {
			return vec.Col{}, err
		}
		if first {
			out = blk
			blk = vec.Col{}
			first = false
			continue
		}
		n := out.Len()
		if blk.Nulls != nil {
			out.Nulls = append(growNulls(out.Nulls, n), blk.Nulls...)
		} else if out.Nulls != nil {
			out.Nulls = append(out.Nulls, make([]bool, blk.Len())...)
		}
		out.Ints = append(out.Ints, blk.Ints...)
		out.Floats = append(out.Floats, blk.Floats...)
		out.Strs = append(out.Strs, blk.Strs...)
		out.Codes = append(out.Codes, blk.Codes...)
		out.Boxed = append(out.Boxed, blk.Boxed...)
		blk = vec.Col{}
	}
	return out, nil
}

// DecodeAll materializes every column (tier-2 → hot promotion on merge).
func (t *Table) DecodeAll() (map[string]vec.Col, error) {
	cols := make(map[string]vec.Col, len(t.Cols))
	for name, c := range t.Cols {
		col, err := c.Decode()
		if err != nil {
			return nil, fmt.Errorf("colenc: column %q: %w", name, err)
		}
		cols[name] = col
	}
	return cols, nil
}

func growNulls(m []bool, n int) []bool {
	for len(m) < n {
		m = append(m, false)
	}
	return m
}
