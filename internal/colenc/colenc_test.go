package colenc

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vida/internal/values"
	"vida/internal/vec"
)

// decodeFull round-trips a column through Decode and compares row by row
// against the original via the boxing boundary.
func assertRoundTrip(t *testing.T, orig *vec.Col) {
	t.Helper()
	ec, err := EncodeCol(orig)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := ec.Decode()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Len() != orig.Len() {
		t.Fatalf("decoded %d rows, want %d", dec.Len(), orig.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		if !values.Equal(dec.Value(i), orig.Value(i)) {
			t.Fatalf("row %d: got %v want %v", i, dec.Value(i), orig.Value(i))
		}
	}
}

func TestIntDeltaRoundTrip(t *testing.T) {
	c := vec.Col{Tag: vec.Int64}
	for i := 0; i < 3*BlockRows+17; i++ {
		c.AppendInt(int64(i*3 - 5000))
	}
	c.AppendNull()
	c.AppendInt(-1 << 40)
	assertRoundTrip(t, &c)
}

func TestFloatRoundTrip(t *testing.T) {
	c := vec.Col{Tag: vec.Float64}
	for i := 0; i < BlockRows+5; i++ {
		c.AppendFloat(float64(i) * 0.25)
	}
	c.AppendNull()
	assertRoundTrip(t, &c)
}

func TestDictRoundTrip(t *testing.T) {
	c := vec.Col{Tag: vec.Str}
	cities := []string{"geneva", "lausanne", "zurich", "bern"}
	for i := 0; i < 2*BlockRows; i++ {
		c.AppendStr(cities[i%len(cities)])
	}
	ec, err := EncodeCol(&c)
	if err != nil {
		t.Fatal(err)
	}
	if ec.Enc != EncDict {
		t.Fatalf("encoding = %s, want dict", ec.Enc)
	}
	if len(ec.Dict) != len(cities) {
		t.Fatalf("dict size = %d, want %d", len(ec.Dict), len(cities))
	}
	for i := 1; i < len(ec.Dict); i++ {
		if ec.Dict[i-1] >= ec.Dict[i] {
			t.Fatalf("dictionary not sorted: %v", ec.Dict)
		}
	}
	var blk vec.Col
	if err := ec.DecodeBlock(0, &blk); err != nil {
		t.Fatal(err)
	}
	if blk.Tag != vec.StrDict {
		t.Fatalf("decoded tag = %s, want strdict", blk.Tag)
	}
	assertRoundTrip(t, &c)
}

func TestHighCardinalityStaysRawStr(t *testing.T) {
	c := vec.Col{Tag: vec.Str}
	for i := 0; i < 1000; i++ {
		c.AppendStr(fmt.Sprintf("unique-%d", i))
	}
	ec, err := EncodeCol(&c)
	if err != nil {
		t.Fatal(err)
	}
	if ec.Enc != EncStr {
		t.Fatalf("encoding = %s, want str", ec.Enc)
	}
	assertRoundTrip(t, &c)
}

func TestBoxedRoundTrip(t *testing.T) {
	c := vec.Col{Tag: vec.Boxed}
	c.AppendValue(values.NewRecord(values.Field{Name: "x", Val: values.NewInt(1)}))
	c.AppendValue(values.Null)
	c.AppendValue(values.NewString("plain"))
	c.AppendValue(values.NewFloat(2.5))
	assertRoundTrip(t, &c)
}

func TestEncodedSmallerThanFlat(t *testing.T) {
	// The headline compression claim on representative demo data:
	// sequential ints and low-cardinality strings must encode at least
	// 5x smaller than their flat vector footprint.
	n := 100_000
	ints := vec.Col{Tag: vec.Int64}
	strs := vec.Col{Tag: vec.Str}
	conds := []string{"healthy", "mild", "severe", "chronic", "acute"}
	for i := 0; i < n; i++ {
		ints.AppendInt(int64(i))
		strs.AppendStr(conds[i%len(conds)])
	}
	for _, c := range []*vec.Col{&ints, &strs} {
		ec, err := EncodeCol(c)
		if err != nil {
			t.Fatal(err)
		}
		flat, enc := c.SizeBytes(), ec.SizeBytes()
		if enc*5 > flat {
			t.Fatalf("tag %s: encoded %dB vs flat %dB — less than 5x", c.Tag, enc, flat)
		}
	}
}

func TestSpillRoundTrip(t *testing.T) {
	n := BlockRows + 100
	cols := map[string]vec.Col{}
	ic := vec.Col{Tag: vec.Int64}
	sc := vec.Col{Tag: vec.Str}
	for i := 0; i < n; i++ {
		ic.AppendInt(int64(i * 7))
		sc.AppendStr([]string{"a", "b", "c"}[i%3])
	}
	cols["id"], cols["grade"] = ic, sc
	tab, err := EncodeColumns(cols, n)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.vspill")
	meta := SpillMeta{Dataset: "Patients", Generation: "gen-1"}
	if err := WriteSpillFile(path, meta, tab); err != nil {
		t.Fatal(err)
	}
	meta2, tab2, err := ReadSpillFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != meta {
		t.Fatalf("meta = %+v, want %+v", meta2, meta)
	}
	if tab2.N != n || len(tab2.Cols) != 2 {
		t.Fatalf("table shape: n=%d cols=%d", tab2.N, len(tab2.Cols))
	}
	for name := range cols {
		orig := cols[name]
		dec, err := tab2.Cols[name].Decode()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if !values.Equal(dec.Value(i), orig.Value(i)) {
				t.Fatalf("%s row %d: got %v want %v", name, i, dec.Value(i), orig.Value(i))
			}
		}
	}
}

func TestSpillCorruptionDetected(t *testing.T) {
	n := 500
	c := vec.Col{Tag: vec.Int64}
	for i := 0; i < n; i++ {
		c.AppendInt(int64(i))
	}
	tab, err := EncodeColumns(map[string]vec.Col{"id": c}, n)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "x.vspill")
	if err := WriteSpillFile(path, SpillMeta{Dataset: "D", Generation: "g"}, tab); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad magic", func(b []byte) []byte { b = append([]byte(nil), b...); b[0] ^= 0xff; return b }},
		{"flipped header bit", func(b []byte) []byte { b = append([]byte(nil), b...); b[12] ^= 0x01; return b }},
		{"flipped body bit", func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)-3] ^= 0x40; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, "bad.vspill")
			if err := os.WriteFile(p, tc.mutate(good), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := ReadSpillFile(p); err == nil {
				t.Fatal("corrupted spill file read back without error")
			}
		})
	}
}
