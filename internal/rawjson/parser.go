// Package rawjson implements ViDa's JSON access path: queries run
// directly over raw JSON files, supported by a structural semi-index
// (paper §5, [Ottaviano & Grossi, CIKM 2011]) that records the byte spans
// of top-level objects and of individual fields. Once a field's spans are
// known, later queries parse exactly the bytes of the values they need —
// and queries that only carry a large object through a plan can carry its
// (start,end) positions instead of materializing it (paper Figure 4d).
package rawjson

import (
	"fmt"
	"strconv"
	"strings"

	"vida/internal/values"
)

// ParseError reports malformed JSON with a byte offset.
type ParseError struct {
	Off int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rawjson: offset %d: %s", e.Off, e.Msg)
}

func perr(off int, format string, args ...any) error {
	return &ParseError{Off: off, Msg: fmt.Sprintf(format, args...)}
}

func skipWS(data []byte, pos int) int {
	for pos < len(data) {
		switch data[pos] {
		case ' ', '\t', '\n', '\r':
			pos++
		default:
			return pos
		}
	}
	return pos
}

// ParseValue parses one JSON value starting at pos, returning the value
// and the offset just past it. Objects become records (field order
// preserved), arrays become lists, integral numbers become ints.
func ParseValue(data []byte, pos int) (values.Value, int, error) {
	pos = skipWS(data, pos)
	if pos >= len(data) {
		return values.Null, pos, perr(pos, "unexpected end of input")
	}
	switch c := data[pos]; {
	case c == '{':
		return parseObject(data, pos, nil, nil)
	case c == '[':
		return parseArray(data, pos)
	case c == '"':
		s, next, err := parseString(data, pos)
		if err != nil {
			return values.Null, pos, err
		}
		return values.NewString(s), next, nil
	case c == 't':
		if hasPrefix(data, pos, "true") {
			return values.True, pos + 4, nil
		}
		return values.Null, pos, perr(pos, "bad literal")
	case c == 'f':
		if hasPrefix(data, pos, "false") {
			return values.False, pos + 5, nil
		}
		return values.Null, pos, perr(pos, "bad literal")
	case c == 'n':
		if hasPrefix(data, pos, "null") {
			return values.Null, pos + 4, nil
		}
		return values.Null, pos, perr(pos, "bad literal")
	case c == '-' || (c >= '0' && c <= '9'):
		return parseNumber(data, pos)
	}
	return values.Null, pos, perr(pos, "unexpected character %q", string(data[pos]))
}

func hasPrefix(data []byte, pos int, s string) bool {
	return pos+len(s) <= len(data) && string(data[pos:pos+len(s)]) == s
}

// parseObject parses an object. When want is non-nil, only the listed
// top-level keys are materialized (others are skipped), and spans — if
// also non-nil — receives the [start,end) byte span of every top-level
// field value, keyed by field name, with offsets absolute in data.
func parseObject(data []byte, pos int, want map[string]bool, spans map[string][2]int) (values.Value, int, error) {
	if data[pos] != '{' {
		return values.Null, pos, perr(pos, "expected '{'")
	}
	pos++
	var fields []values.Field
	pos = skipWS(data, pos)
	if pos < len(data) && data[pos] == '}' {
		return values.NewRecord(), pos + 1, nil
	}
	for {
		pos = skipWS(data, pos)
		key, next, err := parseString(data, pos)
		if err != nil {
			return values.Null, pos, err
		}
		pos = skipWS(data, next)
		if pos >= len(data) || data[pos] != ':' {
			return values.Null, pos, perr(pos, "expected ':'")
		}
		pos = skipWS(data, pos+1)
		vStart := pos
		if want == nil || want[key] {
			v, next, err := ParseValue(data, pos)
			if err != nil {
				return values.Null, pos, err
			}
			fields = append(fields, values.Field{Name: key, Val: v})
			pos = next
		} else {
			next, err := SkipValue(data, pos)
			if err != nil {
				return values.Null, pos, err
			}
			pos = next
		}
		if spans != nil {
			spans[key] = [2]int{vStart, pos}
		}
		pos = skipWS(data, pos)
		if pos >= len(data) {
			return values.Null, pos, perr(pos, "unterminated object")
		}
		switch data[pos] {
		case ',':
			pos++
		case '}':
			return values.NewRecord(fields...), pos + 1, nil
		default:
			return values.Null, pos, perr(pos, "expected ',' or '}'")
		}
	}
}

func parseArray(data []byte, pos int) (values.Value, int, error) {
	pos++ // consume '['
	var elems []values.Value
	pos = skipWS(data, pos)
	if pos < len(data) && data[pos] == ']' {
		return values.NewList(), pos + 1, nil
	}
	for {
		v, next, err := ParseValue(data, pos)
		if err != nil {
			return values.Null, pos, err
		}
		elems = append(elems, v)
		pos = skipWS(data, next)
		if pos >= len(data) {
			return values.Null, pos, perr(pos, "unterminated array")
		}
		switch data[pos] {
		case ',':
			pos++
		case ']':
			return values.NewList(elems...), pos + 1, nil
		default:
			return values.Null, pos, perr(pos, "expected ',' or ']'")
		}
	}
}

func parseString(data []byte, pos int) (string, int, error) {
	if pos >= len(data) || data[pos] != '"' {
		return "", pos, perr(pos, "expected string")
	}
	pos++
	start := pos
	// Fast path: no escapes.
	for pos < len(data) {
		c := data[pos]
		if c == '"' {
			return string(data[start:pos]), pos + 1, nil
		}
		if c == '\\' {
			return parseStringSlow(data, start, pos)
		}
		pos++
	}
	return "", pos, perr(start-1, "unterminated string")
}

func parseStringSlow(data []byte, start, pos int) (string, int, error) {
	var sb strings.Builder
	sb.Write(data[start:pos])
	for pos < len(data) {
		c := data[pos]
		switch c {
		case '"':
			return sb.String(), pos + 1, nil
		case '\\':
			pos++
			if pos >= len(data) {
				return "", pos, perr(pos, "unterminated escape")
			}
			switch data[pos] {
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			case '/':
				sb.WriteByte('/')
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case 'b':
				sb.WriteByte('\b')
			case 'f':
				sb.WriteByte('\f')
			case 'u':
				if pos+4 >= len(data) {
					return "", pos, perr(pos, "bad \\u escape")
				}
				n, err := strconv.ParseUint(string(data[pos+1:pos+5]), 16, 32)
				if err != nil {
					return "", pos, perr(pos, "bad \\u escape")
				}
				sb.WriteRune(rune(n))
				pos += 4
			default:
				return "", pos, perr(pos, "unknown escape \\%c", data[pos])
			}
			pos++
		default:
			sb.WriteByte(c)
			pos++
		}
	}
	return "", pos, perr(pos, "unterminated string")
}

func parseNumber(data []byte, pos int) (values.Value, int, error) {
	start := pos
	if data[pos] == '-' {
		pos++
	}
	isFloat := false
	for pos < len(data) {
		c := data[pos]
		if c >= '0' && c <= '9' {
			pos++
		} else if c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			isFloat = true
			pos++
		} else {
			break
		}
	}
	text := string(data[start:pos])
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return values.Null, pos, perr(start, "bad number %q", text)
		}
		return values.NewFloat(f), pos, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		// Overflowing integers degrade to float.
		f, ferr := strconv.ParseFloat(text, 64)
		if ferr != nil {
			return values.Null, pos, perr(start, "bad number %q", text)
		}
		return values.NewFloat(f), pos, nil
	}
	return values.NewInt(n), pos, nil
}

// SkipValue advances past one JSON value without materializing it — the
// cheap structural navigation the semi-index is built from.
func SkipValue(data []byte, pos int) (int, error) {
	pos = skipWS(data, pos)
	if pos >= len(data) {
		return pos, perr(pos, "unexpected end of input")
	}
	switch c := data[pos]; {
	case c == '{' || c == '[':
		open, close := c, byte('}')
		if c == '[' {
			close = ']'
		}
		depth := 0
		for pos < len(data) {
			switch data[pos] {
			case open:
				depth++
			case close:
				depth--
				if depth == 0 {
					return pos + 1, nil
				}
			case '"':
				_, next, err := parseString(data, pos)
				if err != nil {
					return pos, err
				}
				pos = next
				continue
			}
			pos++
		}
		return pos, perr(pos, "unterminated %c", open)
	case c == '"':
		_, next, err := parseString(data, pos)
		return next, err
	case c == 't':
		return pos + 4, nil
	case c == 'f':
		return pos + 5, nil
	case c == 'n':
		return pos + 4, nil
	default:
		for pos < len(data) {
			switch data[pos] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return pos, nil
			}
			pos++
		}
		return pos, nil
	}
}
