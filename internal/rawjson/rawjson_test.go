package rawjson

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vida/internal/sdg"
	"vida/internal/values"
)

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func open(t *testing.T, content string) *Reader {
	t.Helper()
	d := sdg.DefaultDescription("j", sdg.FormatJSON, writeFile(t, content), sdg.Bag(sdg.Unknown))
	r, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseScalars(t *testing.T) {
	cases := map[string]values.Value{
		`42`:     values.NewInt(42),
		`-7`:     values.NewInt(-7),
		`3.5`:    values.NewFloat(3.5),
		`-2e3`:   values.NewFloat(-2000),
		`"hi"`:   values.NewString("hi"),
		`"a\nb"`: values.NewString("a\nb"),
		`"A"`:    values.NewString("A"),
		`true`:   values.True,
		`false`:  values.False,
		`null`:   values.Null,
	}
	for src, want := range cases {
		v, _, err := ParseValue([]byte(src), 0)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", src, err)
		}
		if !values.Equal(v, want) {
			t.Fatalf("ParseValue(%q) = %v, want %v", src, v, want)
		}
	}
}

func TestParseNested(t *testing.T) {
	src := `{"id": 1, "tags": ["a", "b"], "geo": {"x": 1.5, "y": -2}}`
	v, _, err := ParseValue([]byte(src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.MustGet("id").Int() != 1 {
		t.Fatalf("id = %v", v)
	}
	tags := v.MustGet("tags")
	if tags.Kind() != values.KindList || tags.Len() != 2 {
		t.Fatalf("tags = %v", tags)
	}
	if v.MustGet("geo").MustGet("y").Int() != -2 {
		t.Fatalf("geo = %v", v.MustGet("geo"))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{``, `{`, `{"a"}`, `{"a":}`, `[1,`, `"unterminated`, `tru`, `{"a":1,}x`, `nul`}
	for _, src := range bad {
		if _, _, err := ParseValue([]byte(src), 0); err == nil {
			t.Fatalf("ParseValue(%q) should fail", src)
		}
	}
}

func TestSkipValueMatchesParse(t *testing.T) {
	srcs := []string{
		`{"a": [1, {"b": "}]"}], "c": "x"}`,
		`[[[1],[2]],3]`,
		`"plain"`,
		`12345`,
		`{"deep": {"deeper": {"deepest": [true, false, null]}}}`,
	}
	for _, src := range srcs {
		_, pEnd, err := ParseValue([]byte(src), 0)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		sEnd, err := SkipValue([]byte(src), 0)
		if err != nil {
			t.Fatalf("skip %q: %v", src, err)
		}
		if pEnd != sEnd {
			t.Fatalf("skip/parse end mismatch for %q: %d vs %d", src, sEnd, pEnd)
		}
	}
}

const arrayFile = `[
  {"id": 1, "name": "r1", "volume": 10.5, "meta": {"algo": "x", "pass": 1}},
  {"id": 2, "name": "r2", "volume": 20.0, "meta": {"algo": "y", "pass": 2}},
  {"id": 3, "name": "r3", "volume": 30.25}
]`

const ndjsonFile = `{"id": 1, "name": "r1"}
{"id": 2, "name": "r2"}
{"id": 3, "name": "r3"}`

func TestIterateArrayFile(t *testing.T) {
	r := open(t, arrayFile)
	var rows []values.Value
	if err := r.Iterate(nil, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].MustGet("meta").MustGet("algo").Str() != "y" {
		t.Fatalf("row 1 = %v", rows[1])
	}
}

func TestIterateNDJSON(t *testing.T) {
	r := open(t, ndjsonFile)
	n, err := r.NumObjects()
	if err != nil || n != 3 {
		t.Fatalf("NumObjects = %d, %v", n, err)
	}
}

func TestProjectionAndSemiIndex(t *testing.T) {
	r := open(t, arrayFile)
	var first []values.Value
	if err := r.Iterate([]string{"id", "volume"}, func(v values.Value) error {
		first = append(first, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := r.StatsSnapshot()["partial_parses"]; got != 3 {
		t.Fatalf("partial_parses = %d", got)
	}
	if !r.SemiIndex().HasField("id") || !r.SemiIndex().HasField("volume") {
		t.Fatal("semi-index not populated")
	}
	// Second scan: served from the index.
	var second []values.Value
	if err := r.Iterate([]string{"id", "volume"}, func(v values.Value) error {
		second = append(second, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := r.StatsSnapshot()["indexed_reads"]; got == 0 {
		t.Fatal("indexed scan did not use the index")
	}
	for i := range first {
		if !values.Equal(first[i], second[i]) {
			t.Fatalf("indexed scan diverged at %d: %v vs %v", i, first[i], second[i])
		}
	}
	// Projections keep requested order and null-fill absent fields.
	if first[0].Fields()[0].Name != "id" || first[0].Fields()[1].Name != "volume" {
		t.Fatalf("projection order: %v", first[0])
	}
}

func TestProjectionMissingField(t *testing.T) {
	r := open(t, arrayFile)
	var rows []values.Value
	if err := r.Iterate([]string{"meta"}, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Object 3 has no meta: null.
	if !rows[2].MustGet("meta").IsNull() {
		t.Fatalf("missing field should be null: %v", rows[2])
	}
	// Indexed path must agree.
	var again []values.Value
	if err := r.Iterate([]string{"meta"}, func(v values.Value) error {
		again = append(again, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !values.Equal(rows[2], again[2]) {
		t.Fatalf("indexed missing-field mismatch: %v vs %v", rows[2], again[2])
	}
}

func TestObjectSpanAndBytes(t *testing.T) {
	r := open(t, arrayFile)
	s, e, err := r.ObjectSpan(0)
	if err != nil {
		t.Fatal(err)
	}
	if e <= s {
		t.Fatalf("span = [%d,%d)", s, e)
	}
	b, err := r.ObjectBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), `{"id": 1`) {
		t.Fatalf("object bytes = %q", b)
	}
	v, err := r.ParseObject(2)
	if err != nil || v.MustGet("id").Int() != 3 {
		t.Fatalf("ParseObject(2) = %v, %v", v, err)
	}
	if _, _, err := r.ObjectSpan(17); err == nil {
		t.Fatal("out of range span should fail")
	}
}

func TestExtractPath(t *testing.T) {
	r := open(t, arrayFile)
	v, err := r.ExtractPath(1, "meta.algo")
	if err != nil || v.Str() != "y" {
		t.Fatalf("ExtractPath = %v, %v", v, err)
	}
	v, err = r.ExtractPath(2, "meta.algo") // absent
	if err != nil || !v.IsNull() {
		t.Fatalf("absent path = %v, %v", v, err)
	}
	v, err = r.ExtractPath(0, "volume")
	if err != nil || v.Float() != 10.5 {
		t.Fatalf("scalar path = %v, %v", v, err)
	}
}

func TestRefreshDropsIndex(t *testing.T) {
	path := writeFile(t, ndjsonFile)
	d := sdg.DefaultDescription("j", sdg.FormatJSON, path, sdg.Bag(sdg.Unknown))
	r, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NumObjects(); err != nil {
		t.Fatal(err)
	}
	fired := false
	r.SetInvalidateHook(func() { fired = true })
	if err := os.WriteFile(path, []byte(ndjsonFile+"\n{\"id\": 4, \"name\": \"r4\"}"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	bump := fi.ModTime().Add(2_000_000_000)
	if err := os.Chtimes(path, bump, bump); err != nil {
		t.Fatal(err)
	}
	changed, err := r.Refresh()
	if err != nil || !changed {
		t.Fatalf("Refresh = %v, %v", changed, err)
	}
	if !fired {
		t.Fatal("invalidate hook not fired")
	}
	n, err := r.NumObjects()
	if err != nil || n != 4 {
		t.Fatalf("NumObjects after refresh = %d, %v", n, err)
	}
}

// TestRandomRoundTrip: values marshaled through Go's formatting and parsed
// back must match, across deep random structures.
func TestRandomObjects(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var render func(v values.Value, sb *strings.Builder)
	render = func(v values.Value, sb *strings.Builder) {
		switch v.Kind() {
		case values.KindNull:
			sb.WriteString("null")
		case values.KindBool:
			fmt.Fprintf(sb, "%v", v.Bool())
		case values.KindInt:
			fmt.Fprintf(sb, "%d", v.Int())
		case values.KindFloat:
			fmt.Fprintf(sb, "%g", v.Float())
		case values.KindString:
			fmt.Fprintf(sb, "%q", v.Str())
		case values.KindRecord:
			sb.WriteByte('{')
			for i, f := range v.Fields() {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(sb, "%q:", f.Name)
				render(f.Val, sb)
			}
			sb.WriteByte('}')
		case values.KindList:
			sb.WriteByte('[')
			for i, e := range v.Elems() {
				if i > 0 {
					sb.WriteByte(',')
				}
				render(e, sb)
			}
			sb.WriteByte(']')
		}
	}
	var randomVal func(depth int) values.Value
	randomVal = func(depth int) values.Value {
		k := r.Intn(7)
		if depth <= 0 && k >= 5 {
			k = r.Intn(5)
		}
		switch k {
		case 0:
			return values.Null
		case 1:
			return values.NewBool(r.Intn(2) == 0)
		case 2:
			return values.NewInt(int64(r.Intn(2000) - 1000))
		case 3:
			return values.NewFloat(float64(r.Intn(1000)) / 4)
		case 4:
			return values.NewString(fmt.Sprintf("s%d", r.Intn(100)))
		case 5:
			n := r.Intn(4)
			fs := make([]values.Field, n)
			for i := range fs {
				fs[i] = values.Field{Name: fmt.Sprintf("f%d", i), Val: randomVal(depth - 1)}
			}
			return values.NewRecord(fs...)
		default:
			n := r.Intn(4)
			es := make([]values.Value, n)
			for i := range es {
				es[i] = randomVal(depth - 1)
			}
			return values.NewList(es...)
		}
	}
	for trial := 0; trial < 200; trial++ {
		want := randomVal(3)
		var sb strings.Builder
		render(want, &sb)
		got, _, err := ParseValue([]byte(sb.String()), 0)
		if err != nil {
			t.Fatalf("parse of %q: %v", sb.String(), err)
		}
		if !values.Equal(got, want) {
			t.Fatalf("round trip %q: %v vs %v", sb.String(), got, want)
		}
	}
}

const dirtyNDJSON = `{"id": 1, "v": 10}
this is not json at all
{"id": 2, "v": 20}
{"id": 3, "v":}
{"id": 4, "v": 40}`

func TestMalformedObjectsSkipped(t *testing.T) {
	r := open(t, dirtyNDJSON)
	// Full parse: the unparseable line resyncs during indexing; the
	// structurally-balanced-but-invalid object skips at parse time.
	var full []values.Value
	if err := r.Iterate(nil, func(v values.Value) error {
		full = append(full, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(full) != 3 {
		t.Fatalf("good objects = %d, want 3 (stats %v)", len(full), r.StatsSnapshot())
	}
	if r.StatsSnapshot()["objects_skipped"] == 0 {
		t.Fatal("skips not counted")
	}
	// Projected pass must agree on the row count, as must the indexed
	// re-scan.
	for pass := 0; pass < 2; pass++ {
		var proj []values.Value
		if err := r.Iterate([]string{"v"}, func(v values.Value) error {
			proj = append(proj, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(proj) != 3 {
			t.Fatalf("pass %d: projected rows = %d, want 3", pass, len(proj))
		}
		sum := int64(0)
		for _, p := range proj {
			sum += p.MustGet("v").Int()
		}
		if sum != 70 {
			t.Fatalf("pass %d: sum = %d, want 70", pass, sum)
		}
	}
}

func TestMalformedObjectsFailPolicy(t *testing.T) {
	d := sdg.DefaultDescription("j", sdg.FormatJSON, writeFile(t, dirtyNDJSON), sdg.Bag(sdg.Unknown))
	d.Options = map[string]string{"onerror": "fail"}
	r, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Iterate(nil, func(values.Value) error { return nil }); err == nil {
		t.Fatal("fail policy should surface malformed objects")
	}
}
