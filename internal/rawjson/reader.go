package rawjson

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vida/internal/faultinject"
	"vida/internal/sdg"
	"vida/internal/values"
)

// Stats counts reader work for the optimizer and experiments.
type Stats struct {
	FullParses     atomic.Int64 // objects fully parsed
	PartialParses  atomic.Int64 // objects parsed with field skipping
	IndexedReads   atomic.Int64 // field values read via the semi-index
	ObjectsSkipped atomic.Int64 // malformed objects skipped (onerror=skip)
	BytesRead      atomic.Int64
	Builds         atomic.Int64 // skip-scan builds of the object index
	BuildNanos     atomic.Int64 // wall time spent in those builds
}

// span is a [start,end) byte range within the file.
type span struct{ start, end int64 }

// SemiIndex is the structural index of one JSON file: spans of top-level
// objects plus spans of touched top-level fields per object. It grows
// adaptively and drops on file change, like the CSV positional map.
type SemiIndex struct {
	mu      sync.RWMutex
	objects []span
	fields  map[string][]span // field -> per-object value span; {-1,-1} = absent
	bad     []bool            // objects discovered malformed (skipped everywhere)
}

// markBad flags object i as malformed; every later pass skips it.
func (ix *SemiIndex) markBad(i int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for len(ix.bad) <= i {
		ix.bad = append(ix.bad, false)
	}
	ix.bad[i] = true
}

func (ix *SemiIndex) isBad(i int) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return i < len(ix.bad) && ix.bad[i]
}

func newSemiIndex() *SemiIndex { return &SemiIndex{fields: map[string][]span{}} }

// HasObjects reports whether object spans are recorded.
func (ix *SemiIndex) HasObjects() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.objects != nil
}

// NumObjects returns the number of top-level objects.
func (ix *SemiIndex) NumObjects() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.objects)
}

// HasField reports whether the named field's spans are recorded.
func (ix *SemiIndex) HasField(name string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.fields[name] != nil
}

// Fields returns the recorded field names.
func (ix *SemiIndex) Fields() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.fields))
	for f := range ix.fields {
		out = append(out, f)
	}
	return out
}

// Drop discards the index.
func (ix *SemiIndex) Drop() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.objects = nil
	ix.fields = map[string][]span{}
	ix.bad = nil
}

// MemoryBytes estimates the index footprint.
func (ix *SemiIndex) MemoryBytes() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	total := int64(len(ix.objects) * 16)
	for _, s := range ix.fields {
		total += int64(len(s) * 16)
	}
	return total
}

// jsonState is one immutable generation of the file: its bytes, their
// modification time and the semi-index built over exactly those bytes.
// Scans load the pointer once, so a concurrent Refresh can never hand a
// scan spans into bytes they were not computed from.
type jsonState struct {
	data  []byte
	mtime time.Time
	ix    *SemiIndex
}

// Reader provides query access to one raw JSON file holding either a
// top-level array of objects or newline-delimited objects. It implements
// algebra.Source. Readers are safe for concurrent scans and for scans
// concurrent with Refresh.
type Reader struct {
	desc  *sdg.Description
	state atomic.Pointer[jsonState]
	// buildMu single-flights the object-index skip scan so concurrent
	// cold queries don't all walk the whole file.
	buildMu      sync.Mutex
	stats        Stats
	failOnBad    bool
	onInvalidate func()
}

// Open loads the JSON file described by desc. The "onerror" option
// ("skip" default, "fail") selects what happens to malformed objects —
// the paper's conservative cleaning strategy skips them (§7).
func Open(desc *sdg.Description) (*Reader, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if desc.Format != sdg.FormatJSON {
		return nil, fmt.Errorf("rawjson: %s is not a JSON source", desc.Name)
	}
	data, err := os.ReadFile(desc.Path)
	if err != nil {
		return nil, fmt.Errorf("rawjson: %s: %w", desc.Name, err)
	}
	fi, err := os.Stat(desc.Path)
	if err != nil {
		return nil, err
	}
	r := &Reader{desc: desc}
	r.state.Store(&jsonState{data: data, mtime: fi.ModTime(), ix: newSemiIndex()})
	if desc.Option("onerror", "skip") == "fail" {
		r.failOnBad = true
	}
	return r, nil
}

// Name implements algebra.Source.
func (r *Reader) Name() string { return r.desc.Name }

// SemiIndex exposes the structural index of the current file generation.
func (r *Reader) SemiIndex() *SemiIndex { return r.state.Load().ix }

// SizeBytes returns the raw file size.
func (r *Reader) SizeBytes() int64 { return int64(len(r.state.Load().data)) }

// StatsSnapshot returns a copy of the counters.
func (r *Reader) StatsSnapshot() map[string]int64 {
	return map[string]int64{
		"full_parses":     r.stats.FullParses.Load(),
		"partial_parses":  r.stats.PartialParses.Load(),
		"indexed_reads":   r.stats.IndexedReads.Load(),
		"objects_skipped": r.stats.ObjectsSkipped.Load(),
		"bytes_read":      r.stats.BytesRead.Load(),
		"builds":          r.stats.Builds.Load(),
		"build_nanos":     r.stats.BuildNanos.Load(),
	}
}

// BuildStats returns the cumulative count and wall time of object-index
// builds, diffed by the engine's tracer around a scan.
func (r *Reader) BuildStats() (builds, nanos int64) {
	return r.stats.Builds.Load(), r.stats.BuildNanos.Load()
}

// SetInvalidateHook registers a callback fired when Refresh drops state.
func (r *Reader) SetInvalidateHook(fn func()) { r.onInvalidate = fn }

// Refresh re-checks the file, replacing the whole generation (bytes plus
// a fresh semi-index) on change.
func (r *Reader) Refresh() (changed bool, err error) {
	st := r.state.Load()
	fi, err := os.Stat(r.desc.Path)
	if err != nil {
		return false, err
	}
	if fi.ModTime().Equal(st.mtime) && fi.Size() == int64(len(st.data)) {
		return false, nil
	}
	data, err := os.ReadFile(r.desc.Path)
	if err != nil {
		return false, err
	}
	r.state.Store(&jsonState{data: data, mtime: fi.ModTime(), ix: newSemiIndex()})
	if r.onInvalidate != nil {
		r.onInvalidate()
	}
	return true, nil
}

// buildObjectIndex records the span of every top-level object using the
// skip scanner (no materialization). Concurrent builders single-flight:
// the first walks the file, the rest find the index installed.
func (r *Reader) buildObjectIndex(st *jsonState) error {
	if st.ix.HasObjects() {
		return nil
	}
	r.buildMu.Lock()
	defer r.buildMu.Unlock()
	if st.ix.HasObjects() {
		return nil
	}
	// This caller pays the skip scan; record its cost for tracing.
	start := time.Now()
	defer func() {
		r.stats.Builds.Add(1)
		r.stats.BuildNanos.Add(int64(time.Since(start)))
	}()
	data := st.data
	var objs []span
	pos := skipWS(data, 0)
	arrayFile := pos < len(data) && data[pos] == '['
	if arrayFile {
		pos++
	}
	for {
		pos = skipWS(data, pos)
		if pos >= len(data) {
			break
		}
		if arrayFile && data[pos] == ']' {
			break
		}
		if data[pos] == ',' {
			pos++
			continue
		}
		start := pos
		next, err := SkipValue(data, pos)
		if err != nil {
			if r.failOnBad {
				return err
			}
			// Structural resync: jump to the next line and keep going
			// (newline-delimited layouts recover; array files usually
			// fail to the end, which truncates cleanly).
			r.stats.ObjectsSkipped.Add(1)
			nl := -1
			for i := start; i < len(data); i++ {
				if data[i] == '\n' {
					nl = i
					break
				}
			}
			if nl < 0 {
				break
			}
			pos = nl + 1
			continue
		}
		objs = append(objs, span{start: int64(start), end: int64(next)})
		pos = next
	}
	st.ix.mu.Lock()
	st.ix.objects = objs
	st.ix.mu.Unlock()
	r.stats.BytesRead.Add(int64(len(data)))
	return nil
}

// NumObjects returns the number of top-level objects.
func (r *Reader) NumObjects() (int, error) {
	st := r.state.Load()
	if err := r.buildObjectIndex(st); err != nil {
		return 0, err
	}
	return st.ix.NumObjects(), nil
}

// Iterate implements algebra.Source: one record per top-level object,
// materializing only the requested top-level fields (all when empty). The
// first pass over a projection records field spans; later passes parse
// exactly the spans.
func (r *Reader) Iterate(fields []string, yield func(values.Value) error) error {
	st := r.state.Load()
	if err := r.buildObjectIndex(st); err != nil {
		return err
	}
	// Chaos point: JSONRead fires once per delivered object (read error
	// or delay mid-scan). A single disarmed atomic load in production.
	inner := yield
	yield = func(v values.Value) error {
		if err := faultinject.Hit(faultinject.JSONRead); err != nil {
			return err
		}
		return inner(v)
	}
	if len(fields) == 0 {
		return r.iterateFull(st, yield)
	}
	if allFieldsIndexed(st.ix, fields) {
		return r.iterateIndexed(st, fields, yield)
	}
	return r.iteratePartial(st, fields, yield)
}

func allFieldsIndexed(ix *SemiIndex, fields []string) bool {
	for _, f := range fields {
		if !ix.HasField(f) {
			return false
		}
	}
	return true
}

func objects(ix *SemiIndex) []span {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.objects
}

func (r *Reader) iterateFull(st *jsonState, yield func(values.Value) error) error {
	for i, o := range objects(st.ix) {
		if st.ix.isBad(i) {
			continue
		}
		r.stats.FullParses.Add(1)
		v, _, err := ParseValue(st.data, int(o.start))
		if err != nil {
			if r.failOnBad {
				return err
			}
			r.stats.ObjectsSkipped.Add(1)
			st.ix.markBad(i)
			continue
		}
		if err := yield(v); err != nil {
			return err
		}
	}
	return nil
}

// iteratePartial parses each object skipping unrequested fields, and
// records the spans of the requested ones into the semi-index.
func (r *Reader) iteratePartial(st *jsonState, fields []string, yield func(values.Value) error) error {
	want := make(map[string]bool, len(fields))
	for _, f := range fields {
		want[f] = true
	}
	objs := objects(st.ix)
	newSpans := make(map[string][]span, len(fields))
	for _, f := range fields {
		newSpans[f] = make([]span, 0, len(objs))
	}
	for i, o := range objs {
		if st.ix.isBad(i) {
			for _, f := range fields {
				newSpans[f] = append(newSpans[f], span{start: -1, end: -1})
			}
			continue
		}
		r.stats.PartialParses.Add(1)
		spans := map[string][2]int{}
		v, _, err := parseObject(st.data, int(o.start), want, spans)
		if err != nil {
			if r.failOnBad {
				return err
			}
			r.stats.ObjectsSkipped.Add(1)
			st.ix.markBad(i)
			for _, f := range fields {
				newSpans[f] = append(newSpans[f], span{start: -1, end: -1})
			}
			continue
		}
		for _, f := range fields {
			if s, ok := spans[f]; ok {
				newSpans[f] = append(newSpans[f], span{start: int64(s[0]), end: int64(s[1])})
			} else {
				newSpans[f] = append(newSpans[f], span{start: -1, end: -1})
			}
		}
		if err := yield(projectInOrder(v, fields)); err != nil {
			return err
		}
	}
	st.ix.mu.Lock()
	for f, s := range newSpans {
		st.ix.fields[f] = s
	}
	st.ix.mu.Unlock()
	return nil
}

// iterateIndexed serves the projection straight from recorded spans.
func (r *Reader) iterateIndexed(st *jsonState, fields []string, yield func(values.Value) error) error {
	objs := objects(st.ix)
	fieldSpans := make([][]span, len(fields))
	st.ix.mu.RLock()
	for i, f := range fields {
		fieldSpans[i] = st.ix.fields[f]
	}
	st.ix.mu.RUnlock()
	for objIdx := range objs {
		if st.ix.isBad(objIdx) {
			continue
		}
		recFields := make([]values.Field, len(fields))
		for i, f := range fields {
			s := fieldSpans[i][objIdx]
			if s.start < 0 {
				recFields[i] = values.Field{Name: f, Val: values.Null}
				continue
			}
			r.stats.IndexedReads.Add(1)
			v, _, err := ParseValue(st.data, int(s.start))
			if err != nil {
				return err
			}
			recFields[i] = values.Field{Name: f, Val: v}
		}
		if err := yield(values.NewRecord(recFields...)); err != nil {
			return err
		}
	}
	return nil
}

// projectInOrder rebuilds the record with fields in the requested order,
// inserting nulls for absent fields (raw JSON objects are heterogeneous).
func projectInOrder(v values.Value, fields []string) values.Value {
	out := make([]values.Field, len(fields))
	for i, f := range fields {
		if fv, ok := v.Get(f); ok {
			out[i] = values.Field{Name: f, Val: fv}
		} else {
			out[i] = values.Field{Name: f, Val: values.Null}
		}
	}
	return values.NewRecord(out...)
}

// ObjectSpan returns the [start,end) byte span of object i — the
// positional-range representation of Figure 4(d): a query can carry these
// two integers through evaluation and assemble the object only at result
// projection.
func (r *Reader) ObjectSpan(i int) (start, end int64, err error) {
	st := r.state.Load()
	_, s, err := r.objectSpanState(st, i)
	if err != nil {
		return 0, 0, err
	}
	return s.start, s.end, nil
}

// objectSpanState resolves object i within one generation, so callers
// can apply the span to the very bytes it indexes.
func (r *Reader) objectSpanState(st *jsonState, i int) (*jsonState, span, error) {
	if err := r.buildObjectIndex(st); err != nil {
		return st, span{}, err
	}
	objs := objects(st.ix)
	if i < 0 || i >= len(objs) {
		return st, span{}, fmt.Errorf("rawjson: object %d out of range", i)
	}
	return st, objs[i], nil
}

// ObjectBytes returns the raw bytes of object i (Figure 4a layout).
func (r *Reader) ObjectBytes(i int) ([]byte, error) {
	st, s, err := r.objectSpanState(r.state.Load(), i)
	if err != nil {
		return nil, err
	}
	return st.data[s.start:s.end], nil
}

// ParseObject fully parses object i (Figure 4c layout).
func (r *Reader) ParseObject(i int) (values.Value, error) {
	st, s, err := r.objectSpanState(r.state.Load(), i)
	if err != nil {
		return values.Null, err
	}
	r.stats.FullParses.Add(1)
	v, _, err := ParseValue(st.data, int(s.start))
	return v, err
}

// ExtractPath parses only the value at a dotted path ("coords.x") within
// object i, skipping everything else.
func (r *Reader) ExtractPath(i int, path string) (values.Value, error) {
	st := r.state.Load()
	if err := r.buildObjectIndex(st); err != nil {
		return values.Null, err
	}
	objs := objects(st.ix)
	if i < 0 || i >= len(objs) {
		return values.Null, fmt.Errorf("rawjson: object %d out of range", i)
	}
	parts := strings.Split(path, ".")
	pos := int(objs[i].start)
	for depth, part := range parts {
		vpos, ok, err := findField(st.data, pos, part)
		if err != nil {
			return values.Null, err
		}
		if !ok {
			return values.Null, nil
		}
		if depth == len(parts)-1 {
			v, _, err := ParseValue(st.data, vpos)
			return v, err
		}
		pos = vpos
	}
	return values.Null, nil
}

// findField scans the object starting at pos for the named top-level key,
// returning the offset of its value.
func findField(data []byte, pos int, name string) (int, bool, error) {
	pos = skipWS(data, pos)
	if pos >= len(data) || data[pos] != '{' {
		return 0, false, nil
	}
	pos++
	for {
		pos = skipWS(data, pos)
		if pos >= len(data) {
			return 0, false, perr(pos, "unterminated object")
		}
		if data[pos] == '}' {
			return 0, false, nil
		}
		if data[pos] == ',' {
			pos++
			continue
		}
		key, next, err := parseString(data, pos)
		if err != nil {
			return 0, false, err
		}
		pos = skipWS(data, next)
		if pos >= len(data) || data[pos] != ':' {
			return 0, false, perr(pos, "expected ':'")
		}
		pos = skipWS(data, pos+1)
		if key == name {
			return pos, true, nil
		}
		pos, err = SkipValue(data, pos)
		if err != nil {
			return 0, false, err
		}
	}
}
