// Package integration implements the "different systems under a data
// integration layer" baseline of the paper's evaluation (Figure 5's
// "Col.Store+Mongo" and "RowStore+Mongo" bars): a mediator routes each
// table term of a query to the system holding it, per-system wrappers
// stream rows back across a serialization boundary (every row is encoded
// to the wire format and decoded in the mediator — the integration tax
// the paper observes), and the mediator joins the streams itself.
package integration

import (
	"fmt"

	"vida/internal/basequery"
	"vida/internal/bsonlite"
	"vida/internal/docstore"
	"vida/internal/storagecol"
	"vida/internal/storagerow"
	"vida/internal/values"
)

// Wrapper exposes one backend system's tables to the mediator.
type Wrapper interface {
	// System names the backend (diagnostics).
	System() string
	// Scan streams the table through the wire-format boundary.
	Scan(table string, fields []string, preds []basequery.Pred, yield func(values.Value) error) error
}

// boundary serializes a row to the wire format and back — the marshaling
// work any cross-system transfer performs.
func boundary(row values.Value, yield func(values.Value) error) error {
	wire, err := bsonlite.Marshal(row)
	if err != nil {
		return err
	}
	back, err := bsonlite.Unmarshal(wire)
	if err != nil {
		return err
	}
	return yield(back)
}

// RowStoreWrapper adapts a storagerow.Store.
type RowStoreWrapper struct{ Store *storagerow.Store }

// System implements Wrapper.
func (w *RowStoreWrapper) System() string { return "rowstore" }

// Scan implements Wrapper.
func (w *RowStoreWrapper) Scan(table string, fields []string, preds []basequery.Pred, yield func(values.Value) error) error {
	t, ok := w.Store.Table(table)
	if !ok {
		return fmt.Errorf("integration: rowstore has no table %q", table)
	}
	return t.Scan(fields, preds, func(v values.Value) error { return boundary(v, yield) })
}

// ColStoreWrapper adapts a storagecol.Store.
type ColStoreWrapper struct{ Store *storagecol.Store }

// System implements Wrapper.
func (w *ColStoreWrapper) System() string { return "colstore" }

// Scan implements Wrapper.
func (w *ColStoreWrapper) Scan(table string, fields []string, preds []basequery.Pred, yield func(values.Value) error) error {
	t, ok := w.Store.Table(table)
	if !ok {
		return fmt.Errorf("integration: colstore has no table %q", table)
	}
	return t.Scan(fields, preds, func(v values.Value) error { return boundary(v, yield) })
}

// DocStoreWrapper adapts a docstore.Store.
type DocStoreWrapper struct{ Store *docstore.Store }

// System implements Wrapper.
func (w *DocStoreWrapper) System() string { return "docstore" }

// Scan implements Wrapper.
func (w *DocStoreWrapper) Scan(table string, fields []string, preds []basequery.Pred, yield func(values.Value) error) error {
	c, ok := w.Store.Collection(table)
	if !ok {
		return fmt.Errorf("integration: docstore has no collection %q", table)
	}
	return c.Find(fields, preds, func(v values.Value) error { return boundary(v, yield) })
}

// Mediator routes tables to wrappers and executes cross-system joins.
type Mediator struct {
	wrappers map[string]Wrapper // table -> wrapper
	rows     int64              // rows transferred across boundaries
}

// NewMediator creates an empty mediator.
func NewMediator() *Mediator {
	return &Mediator{wrappers: map[string]Wrapper{}}
}

// Mount assigns a table to a backend wrapper.
func (m *Mediator) Mount(table string, w Wrapper) { m.wrappers[table] = w }

// RowsTransferred reports how many rows crossed system boundaries.
func (m *Mediator) RowsTransferred() int64 { return m.rows }

// Execute runs a join query: every table term is scanned through its
// system's wrapper, the mediator joins and aggregates.
func (m *Mediator) Execute(q *basequery.JoinQuery) (values.Value, error) {
	scans := map[string]basequery.ScanFn{}
	for _, term := range q.Tables {
		w, ok := m.wrappers[term.Table]
		if !ok {
			return values.Null, fmt.Errorf("integration: table %q is not mounted", term.Table)
		}
		table := term.Table
		wrapper := w
		scans[table] = func(fields []string, preds []basequery.Pred, yield func(values.Value) error) error {
			return wrapper.Scan(table, fields, preds, func(v values.Value) error {
				m.rows++
				return yield(v)
			})
		}
	}
	return basequery.ExecuteJoin(q, scans)
}

// Systems lists the mounted (table, system) pairs.
func (m *Mediator) Systems() map[string]string {
	out := make(map[string]string, len(m.wrappers))
	for t, w := range m.wrappers {
		out[t] = w.System()
	}
	return out
}
