package integration

import (
	"fmt"
	"testing"

	"vida/internal/basequery"
	"vida/internal/docstore"
	"vida/internal/sdg"
	"vida/internal/storagecol"
	"vida/internal/storagerow"
	"vida/internal/values"
)

// buildSystems loads Patients into a relational store and Regions into
// the docstore, mirroring the paper's "different systems" setup.
func buildSystems(t *testing.T) (*storagerow.Store, *storagecol.Store, *docstore.Store) {
	t.Helper()
	rs, err := storagerow.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := storagecol.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	attrs := []sdg.Attr{
		{Name: "id", Type: sdg.Int},
		{Name: "age", Type: sdg.Int},
		{Name: "city", Type: sdg.String},
	}
	rt, err := rs.CreateTable("Patients", attrs)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := cs.CreateTable("Patients", attrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row := []values.Value{
			values.NewInt(int64(i)),
			values.NewInt(int64(20 + i%60)),
			values.NewString(fmt.Sprintf("c%d", i%5)),
		}
		if err := rt.Insert(row); err != nil {
			t.Fatal(err)
		}
		if err := ct.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.FinishLoad(); err != nil {
		t.Fatal(err)
	}

	ds, err := docstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coll, err := ds.CreateCollection("Regions")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		doc := values.NewRecord(
			values.Field{Name: "id", Val: values.NewInt(int64(i))},
			values.Field{Name: "volume", Val: values.NewFloat(float64(i) * 2)},
		)
		if err := coll.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	return rs, cs, ds
}

// hbpQuery is the paper's template: join patients with regions, filter,
// aggregate.
func hbpQuery() *basequery.JoinQuery {
	return &basequery.JoinQuery{
		Tables: []basequery.TableTerm{
			{Table: "Patients", Preds: []basequery.Pred{
				{Col: "age", Op: basequery.OpGt, Val: values.NewInt(40)},
			}},
			{Table: "Regions"},
		},
		Joins: []basequery.JoinOn{
			{LTable: "Patients", LCol: "id", RTable: "Regions", RCol: "id"},
		},
		Agg: &basequery.AggSpec{Kind: basequery.AggSum, Table: "Regions", Col: "volume"},
	}
}

func expected(t *testing.T) float64 {
	t.Helper()
	// age = 20 + i%60 > 40 → i%60 > 20; volume = 2i.
	want := 0.0
	for i := 0; i < 100; i++ {
		if 20+i%60 > 40 {
			want += float64(i) * 2
		}
	}
	return want
}

func TestMediatorRowStorePlusDocstore(t *testing.T) {
	rs, _, ds := buildSystems(t)
	m := NewMediator()
	m.Mount("Patients", &RowStoreWrapper{Store: rs})
	m.Mount("Regions", &DocStoreWrapper{Store: ds})
	got, err := m.Execute(hbpQuery())
	if err != nil {
		t.Fatal(err)
	}
	if got.Float() != expected(t) {
		t.Fatalf("sum = %v, want %v", got, expected(t))
	}
	if m.RowsTransferred() == 0 {
		t.Fatal("no boundary transfers counted")
	}
	sys := m.Systems()
	if sys["Patients"] != "rowstore" || sys["Regions"] != "docstore" {
		t.Fatalf("systems = %v", sys)
	}
}

func TestMediatorColStorePlusDocstore(t *testing.T) {
	_, cs, ds := buildSystems(t)
	m := NewMediator()
	m.Mount("Patients", &ColStoreWrapper{Store: cs})
	m.Mount("Regions", &DocStoreWrapper{Store: ds})
	got, err := m.Execute(hbpQuery())
	if err != nil {
		t.Fatal(err)
	}
	if got.Float() != expected(t) {
		t.Fatalf("sum = %v, want %v", got, expected(t))
	}
}

func TestMediatorProjectionQuery(t *testing.T) {
	rs, _, ds := buildSystems(t)
	m := NewMediator()
	m.Mount("Patients", &RowStoreWrapper{Store: rs})
	m.Mount("Regions", &DocStoreWrapper{Store: ds})
	q := &basequery.JoinQuery{
		Tables: []basequery.TableTerm{
			{Table: "Patients", Preds: []basequery.Pred{
				{Col: "id", Op: basequery.OpLt, Val: values.NewInt(5)},
			}},
			{Table: "Regions"},
		},
		Joins: []basequery.JoinOn{
			{LTable: "Patients", LCol: "id", RTable: "Regions", RCol: "id"},
		},
		Project: []basequery.ProjCol{
			{Table: "Patients", Col: "city"},
			{Table: "Regions", Col: "volume", As: "vol"},
		},
	}
	got, err := m.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Fatalf("rows = %d", got.Len())
	}
	if _, ok := got.Elems()[0].Get("vol"); !ok {
		t.Fatalf("projection alias lost: %v", got.Elems()[0])
	}
}

func TestMediatorErrors(t *testing.T) {
	m := NewMediator()
	if _, err := m.Execute(hbpQuery()); err == nil {
		t.Fatal("unmounted tables accepted")
	}
	rs, _, _ := buildSystems(t)
	m.Mount("Patients", &RowStoreWrapper{Store: rs})
	if _, err := m.Execute(hbpQuery()); err == nil {
		t.Fatal("partially mounted query accepted")
	}
	// Unknown table inside a wrapper.
	w := &RowStoreWrapper{Store: rs}
	if err := w.Scan("NoSuch", nil, nil, func(values.Value) error { return nil }); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestExecuteJoinValidation(t *testing.T) {
	if _, err := basequery.ExecuteJoin(&basequery.JoinQuery{}, nil); err == nil {
		t.Fatal("empty query accepted")
	}
	q := &basequery.JoinQuery{
		Tables: []basequery.TableTerm{{Table: "A"}, {Table: "B"}},
		// no join edge for B
		Agg: &basequery.AggSpec{Kind: basequery.AggCount},
	}
	scans := map[string]basequery.ScanFn{
		"A": func(fields []string, preds []basequery.Pred, yield func(values.Value) error) error { return nil },
		"B": func(fields []string, preds []basequery.Pred, yield func(values.Value) error) error { return nil },
	}
	if _, err := basequery.ExecuteJoin(q, scans); err == nil {
		t.Fatal("missing join edge accepted")
	}
}
