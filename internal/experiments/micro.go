package experiments

import (
	"fmt"
	"path/filepath"
	"time"

	"vida/internal/algebra"
	"vida/internal/bsonlite"
	"vida/internal/cache"
	"vida/internal/docstore"
	"vida/internal/etl"
	"vida/internal/jit"
	"vida/internal/mcl"
	"vida/internal/optimizer"
	"vida/internal/rawcsv"
	"vida/internal/rawjson"
	"vida/internal/sdg"
	"vida/internal/storagerow"
	"vida/internal/values"
	"vida/internal/workload"
)

// ---------------------------------------------------------------------------
// E3 — Figure 4: layouts for a tuple carrying a JSON object
// ---------------------------------------------------------------------------

// Fig4Row is one layout's cost profile.
type Fig4Row struct {
	Layout        string
	BuildSec      float64 // materializing the cache entry
	QuerySec      float64 // running the repeated query workload
	ResidentBytes int64   // cache footprint
}

// RunFig4 compares the four layouts of Figure 4 for a query that filters
// regions on a scalar and finally projects the carried pipeline object:
// (a) raw JSON text, (b) binary JSON, (c) parsed objects, (d) byte
// positions into the raw file. Queries repeat to model reuse.
func RunFig4(dir string, sc workload.Scale, repeats int, seed int64) ([]Fig4Row, error) {
	regionsPath := filepath.Join(dir, "regions_fig4.json")
	if err := workload.GenerateBrainRegions(regionsPath, sc, seed); err != nil {
		return nil, err
	}
	desc := sdg.DefaultDescription("Regions", sdg.FormatJSON, regionsPath, sdg.Bag(sdg.Unknown))
	rd, err := rawjson.Open(desc)
	if err != nil {
		return nil, err
	}
	n, err := rd.NumObjects()
	if err != nil {
		return nil, err
	}

	// The query: for objects with volume > threshold, read intensity and
	// materialize the pipeline object of qualifying rows.
	threshold := 2500.0
	var rows []Fig4Row

	// (a) JSON text: keep each object's raw bytes; parse per use.
	t0 := time.Now()
	texts := make([][]byte, n)
	var textBytes int64
	for i := 0; i < n; i++ {
		b, err := rd.ObjectBytes(i)
		if err != nil {
			return nil, err
		}
		texts[i] = b
		textBytes += int64(len(b))
	}
	build := time.Since(t0).Seconds()
	t0 = time.Now()
	for rep := 0; rep < repeats; rep++ {
		for i := 0; i < n; i++ {
			obj, _, err := rawjson.ParseValue(texts[i], 0)
			if err != nil {
				return nil, err
			}
			if vol, ok := obj.Get("volume"); ok && vol.Float() > threshold {
				_ = obj.MustGet("intensity")
				_, _ = obj.Get("pipeline")
			}
		}
	}
	rows = append(rows, Fig4Row{Layout: "json-text", BuildSec: build, QuerySec: time.Since(t0).Seconds(), ResidentBytes: textBytes})

	// (b) BSON: encode once; navigate fields without full decode.
	t0 = time.Now()
	docs := make([][]byte, n)
	var bsonBytes int64
	for i := 0; i < n; i++ {
		obj, err := rd.ParseObject(i)
		if err != nil {
			return nil, err
		}
		d, err := bsonlite.Marshal(obj)
		if err != nil {
			return nil, err
		}
		docs[i] = d
		bsonBytes += int64(len(d))
	}
	build = time.Since(t0).Seconds()
	t0 = time.Now()
	for rep := 0; rep < repeats; rep++ {
		for i := 0; i < n; i++ {
			vol, _, err := bsonlite.GetField(docs[i], "volume")
			if err != nil {
				return nil, err
			}
			if !vol.IsNull() && vol.Float() > threshold {
				if _, _, err := bsonlite.GetField(docs[i], "intensity"); err != nil {
					return nil, err
				}
				if _, _, err := bsonlite.GetField(docs[i], "pipeline"); err != nil {
					return nil, err
				}
			}
		}
	}
	rows = append(rows, Fig4Row{Layout: "bson", BuildSec: build, QuerySec: time.Since(t0).Seconds(), ResidentBytes: bsonBytes})

	// (c) parsed objects: full materialization once; direct access.
	t0 = time.Now()
	objs := make([]values.Value, n)
	var objBytes int64
	for i := 0; i < n; i++ {
		obj, err := rd.ParseObject(i)
		if err != nil {
			return nil, err
		}
		objs[i] = obj
		objBytes += cache.EstimateValueBytes(obj)
	}
	build = time.Since(t0).Seconds()
	t0 = time.Now()
	for rep := 0; rep < repeats; rep++ {
		for i := 0; i < n; i++ {
			if vol, ok := objs[i].Get("volume"); ok && vol.Float() > threshold {
				_ = objs[i].MustGet("intensity")
				_, _ = objs[i].Get("pipeline")
			}
		}
	}
	rows = append(rows, Fig4Row{Layout: "object", BuildSec: build, QuerySec: time.Since(t0).Seconds(), ResidentBytes: objBytes})

	// (d) positions: carry (start,end) plus the scalar columns; assemble
	// the pipeline object from the raw file only for qualifying rows.
	t0 = time.Now()
	spans := make([]cache.Span, n)
	vols := make([]float64, n)
	for i := 0; i < n; i++ {
		s, e, err := rd.ObjectSpan(i)
		if err != nil {
			return nil, err
		}
		spans[i] = cache.Span{Start: s, End: e}
		v, err := rd.ExtractPath(i, "volume")
		if err != nil {
			return nil, err
		}
		vols[i] = v.Float()
	}
	build = time.Since(t0).Seconds()
	t0 = time.Now()
	for rep := 0; rep < repeats; rep++ {
		for i := 0; i < n; i++ {
			if vols[i] > threshold {
				if _, err := rd.ExtractPath(i, "intensity"); err != nil {
					return nil, err
				}
				if _, err := rd.ExtractPath(i, "pipeline"); err != nil {
					return nil, err
				}
			}
		}
	}
	rows = append(rows, Fig4Row{Layout: "positions", BuildSec: build, QuerySec: time.Since(t0).Seconds(), ResidentBytes: int64(n*16) + int64(n*8)})
	return rows, nil
}

// ---------------------------------------------------------------------------
// E5 — document-store import space amplification
// ---------------------------------------------------------------------------

// MongoSpaceResult compares raw JSON size with the imported footprint.
type MongoSpaceResult struct {
	RawJSONBytes   int64
	ImportedBytes  int64
	ImportSec      float64
	Amplification  float64
	ImportedDocs   int
	SourceObjCount int
}

// RunMongoSpace imports the BrainRegions JSON into the document store and
// reports the size blow-up (paper: 12 GB from a 5.3 GB raw file).
func RunMongoSpace(dir string, sc workload.Scale, seed int64) (*MongoSpaceResult, error) {
	regionsPath := filepath.Join(dir, "regions_space.json")
	if err := workload.GenerateBrainRegions(regionsPath, sc, seed); err != nil {
		return nil, err
	}
	iter, rawBytes, err := jsonIterator(regionsPath)
	if err != nil {
		return nil, err
	}
	ds, err := docstore.Open(filepath.Join(dir, "docstore_space"))
	if err != nil {
		return nil, err
	}
	coll, err := ds.CreateCollection("Regions")
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	nObjs := 0
	if err := iter(func(v values.Value) error {
		nObjs++
		return coll.Insert(v)
	}); err != nil {
		return nil, err
	}
	if err := coll.FinishLoad(); err != nil {
		return nil, err
	}
	importSec := time.Since(t0).Seconds()
	return &MongoSpaceResult{
		RawJSONBytes:   rawBytes,
		ImportedBytes:  coll.SizeBytes(),
		ImportSec:      importSec,
		Amplification:  float64(coll.SizeBytes()) / float64(rawBytes),
		ImportedDocs:   coll.NumDocs(),
		SourceObjCount: nObjs,
	}, nil
}

// ---------------------------------------------------------------------------
// E6 — JIT generated operators vs static pre-cooked operators
// ---------------------------------------------------------------------------

// JITvsStaticRow is one plan's timing on both engines.
type JITvsStaticRow struct {
	Plan      string
	JITSec    float64
	StaticSec float64
	Ratio     float64 // static / jit
}

// RunJITvsStatic runs representative plans on the generated-operator
// engine and on the channel-pipelined generic engine (the paper's own
// static Go executor).
func RunJITvsStatic(dir string, sc workload.Scale, repeats int, seed int64) ([]JITvsStaticRow, error) {
	paths, err := workload.GenerateAll(dir, sc, seed)
	if err != nil {
		return nil, err
	}
	pt, err := sdg.ParseSchema(workload.PatientsSchema(sc))
	if err != nil {
		return nil, err
	}
	pDesc := sdg.DefaultDescription("Patients", sdg.FormatCSV, paths.Patients, sdg.Bag(pt))
	pr, err := rawcsv.Open(pDesc)
	if err != nil {
		return nil, err
	}
	gt, err := sdg.ParseSchema(workload.GeneticsSchema(sc))
	if err != nil {
		return nil, err
	}
	gDesc := sdg.DefaultDescription("Genetics", sdg.FormatCSV, paths.Genetics, sdg.Bag(gt))
	gr, err := rawcsv.Open(gDesc)
	if err != nil {
		return nil, err
	}
	cat := &expCatalog{
		sources: map[string]algebra.Source{"Patients": pr, "Genetics": gr},
		descs:   map[string]*sdg.Description{"Patients": pDesc, "Genetics": gDesc},
	}
	queries := []struct {
		name string
		text string
	}{
		{"scan-filter-agg", `for { p <- Patients, p.age > 40 } yield sum p.bmi`},
		{"scan-project", `for { p <- Patients, p.age > 60 } yield bag (a := p.age, b := p.bmi)`},
		{"join-agg", `for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 50 } yield count 1`},
	}
	var rows []JITvsStaticRow
	for _, q := range queries {
		expr, err := mcl.Parse(q.text)
		if err != nil {
			return nil, err
		}
		plan, err := algebra.Translate(mcl.Normalize(expr), map[string]bool{"Patients": true, "Genetics": true})
		if err != nil {
			return nil, err
		}
		opt := optimizer.Optimize(plan, nil)
		// Warm the positional maps so both engines measure pure
		// execution, not first-touch raw parsing.
		if _, err := (jit.Executor{}).Run(opt, cat); err != nil {
			return nil, err
		}
		var want values.Value
		t0 := time.Now()
		for i := 0; i < repeats; i++ {
			v, err := (jit.Executor{}).Run(opt, cat)
			if err != nil {
				return nil, err
			}
			want = v
		}
		jitSec := time.Since(t0).Seconds()
		t0 = time.Now()
		for i := 0; i < repeats; i++ {
			v, err := (jit.StaticExecutor{}).Run(opt, cat)
			if err != nil {
				return nil, err
			}
			if !values.Equal(v, want) {
				return nil, fmt.Errorf("engines diverge on %s: %v vs %v", q.name, v, want)
			}
		}
		staticSec := time.Since(t0).Seconds()
		rows = append(rows, JITvsStaticRow{
			Plan: q.name, JITSec: jitSec, StaticSec: staticSec, Ratio: staticSec / jitSec,
		})
	}
	return rows, nil
}

type expCatalog struct {
	sources map[string]algebra.Source
	descs   map[string]*sdg.Description
}

func (c *expCatalog) Source(name string) (algebra.Source, bool) {
	s, ok := c.sources[name]
	return s, ok
}

func (c *expCatalog) Description(name string) (*sdg.Description, bool) {
	d, ok := c.descs[name]
	return d, ok
}

// ---------------------------------------------------------------------------
// E7 — positional maps: repeated access cost vs attribute position
// ---------------------------------------------------------------------------

// PosmapRow is one attribute-position measurement.
type PosmapRow struct {
	ColumnIndex int
	ColdSec     float64 // first access (tokenize whole prefix)
	WarmSec     float64 // repeat access via positional map
	Speedup     float64
}

// RunPosmap sweeps attribute positions in a wide CSV: the first access
// pays tokenization up to the column; repeats jump via the positional
// map. The paper's cost model says CSV cost varies with attribute
// distance — this measures it.
func RunPosmap(dir string, sc workload.Scale, seed int64) ([]PosmapRow, error) {
	path := filepath.Join(dir, "genetics_posmap.csv")
	if err := workload.GenerateGenetics(path, sc, seed); err != nil {
		return nil, err
	}
	gt, err := sdg.ParseSchema(workload.GeneticsSchema(sc))
	if err != nil {
		return nil, err
	}
	cols := workload.GeneticsColumns(sc)
	positions := []int{1, len(cols) / 4, len(cols) / 2, len(cols) - 1}
	var rows []PosmapRow
	for _, pos := range positions {
		// Fresh reader per position: cold state.
		desc := sdg.DefaultDescription("G", sdg.FormatCSV, path, sdg.Bag(gt))
		r, err := rawcsv.Open(desc)
		if err != nil {
			return nil, err
		}
		field := cols[pos]
		t0 := time.Now()
		if err := r.Iterate([]string{field}, func(values.Value) error { return nil }); err != nil {
			return nil, err
		}
		cold := time.Since(t0).Seconds()
		t0 = time.Now()
		if err := r.Iterate([]string{field}, func(values.Value) error { return nil }); err != nil {
			return nil, err
		}
		warm := time.Since(t0).Seconds()
		rows = append(rows, PosmapRow{ColumnIndex: pos, ColdSec: cold, WarmSec: warm, Speedup: cold / warm})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// E9 — vertical partitioning of the Genetics-shaped relation
// ---------------------------------------------------------------------------

// VPartResult reports the partitioning a wide load forces and the
// query-time stitching cost.
type VPartResult struct {
	Columns        int
	Partitions     int
	LoadSec        float64
	CrossPartSec   float64 // scan projecting columns from distinct partitions
	SinglePartSec  float64 // scan projecting columns from one partition
	RowsScanned    int
	StitchOverhead float64 // cross / single
}

// RunVPart loads a Genetics-shaped relation into the row store and
// measures the cross-partition re-join cost the paper notes for
// PostgreSQL. The width is held near the paper's (the phenomenon only
// exists for very wide relations); rows are capped to keep the load
// bounded.
func RunVPart(dir string, sc workload.Scale, seed int64) (*VPartResult, error) {
	if sc.GeneticsCols < 1800 {
		sc.GeneticsCols = 1800
	}
	if sc.GeneticsRows > 500 {
		sc.GeneticsRows = 500
	}
	path := filepath.Join(dir, "genetics_vpart.csv")
	if err := workload.GenerateGenetics(path, sc, seed); err != nil {
		return nil, err
	}
	iter, attrs, err := csvIterator(path, workload.GeneticsSchema(sc), "Genetics")
	if err != nil {
		return nil, err
	}
	store, err := storagerow.Open(filepath.Join(dir, "rowstore_vpart"))
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	rep, err := etl.LoadIntoRowStore(store, "Genetics", attrs, iter)
	if err != nil {
		return nil, err
	}
	loadSec := time.Since(t0).Seconds()
	tbl, _ := store.Table("Genetics")
	cols := workload.GeneticsColumns(sc)

	// Columns from far-apart partitions vs adjacent columns.
	cross := []string{cols[1], cols[len(cols)/2], cols[len(cols)-1]}
	single := []string{cols[1], cols[2], cols[3]}
	measure := func(fields []string) (float64, int, error) {
		n := 0
		t0 := time.Now()
		err := tbl.Scan(fields, nil, func(values.Value) error { n++; return nil })
		return time.Since(t0).Seconds(), n, err
	}
	crossSec, n, err := measure(cross)
	if err != nil {
		return nil, err
	}
	singleSec, _, err := measure(single)
	if err != nil {
		return nil, err
	}
	return &VPartResult{
		Columns:        len(attrs),
		Partitions:     rep.Partitions,
		LoadSec:        loadSec,
		CrossPartSec:   crossSec,
		SinglePartSec:  singleSec,
		RowsScanned:    n,
		StitchOverhead: crossSec / singleSec,
	}, nil
}

// ---------------------------------------------------------------------------
// E10 — flattening cost and redundancy
// ---------------------------------------------------------------------------

// FlattenResult reports the flattening step in both modes.
type FlattenResult struct {
	FullSec          float64
	FullRedundancy   float64 // output rows per input object with arrays exploded
	FullBytesRatio   float64 // output bytes / input bytes
	ScalarSec        float64
	ScalarRedundancy float64
	InputObjects     int
	FullOutputRows   int
	ScalarOutputRows int
}

// RunFlatten measures JSON→CSV flattening with arrays exploded (the
// faithful, redundant encoding) and with arrays skipped (the pragmatic
// schema used for the Figure 5 warehouse).
func RunFlatten(dir string, sc workload.Scale, seed int64) (*FlattenResult, error) {
	path := filepath.Join(dir, "regions_flattenexp.json")
	if err := workload.GenerateBrainRegions(path, sc, seed); err != nil {
		return nil, err
	}
	out := &FlattenResult{}
	iter, rawBytes, err := jsonIterator(path)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	full, err := etl.FlattenWith(iter, rawBytes, filepath.Join(dir, "flat_full.csv"), etl.Options{})
	if err != nil {
		return nil, err
	}
	out.FullSec = time.Since(t0).Seconds()
	out.FullRedundancy = full.RedundancyFactor()
	out.FullBytesRatio = float64(full.OutputBytes) / float64(full.InputBytes)
	out.InputObjects = full.InputObjects
	out.FullOutputRows = full.OutputRows

	iter2, rawBytes2, err := jsonIterator(path)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	scalar, err := etl.FlattenWith(iter2, rawBytes2, filepath.Join(dir, "flat_scalar.csv"), etl.Options{SkipArrays: true})
	if err != nil {
		return nil, err
	}
	out.ScalarSec = time.Since(t0).Seconds()
	out.ScalarRedundancy = scalar.RedundancyFactor()
	out.ScalarOutputRows = scalar.OutputRows
	return out, nil
}
