package experiments

import (
	"vida"
	"vida/internal/workload"
)

// CacheBudgetRow is one cache-budget setting's outcome (ablation E11:
// how the cache byte budget trades memory for the Figure 5 win).
type CacheBudgetRow struct {
	BudgetBytes int64 // 0 = unlimited, -1 = caching disabled
	HitRate     float64
	TotalSec    float64
	Evictions   int64
	CacheBytes  int64
}

// RunCacheBudget replays the workload under several cache budgets,
// including caching disabled, measuring hit rate and cumulative time.
// Shrinking the budget forces evictions, which turn would-be cache hits
// back into raw accesses.
func RunCacheBudget(dir string, sc workload.Scale, nQueries int, seed int64, budgets []int64) ([]CacheBudgetRow, error) {
	paths, err := workload.GenerateAll(dir, sc, seed)
	if err != nil {
		return nil, err
	}
	w := workload.Generate(nQueries, sc, seed)
	var out []CacheBudgetRow
	for _, budget := range budgets {
		var opts []vida.Option
		switch {
		case budget < 0:
			opts = append(opts, vida.WithoutCaching())
		case budget > 0:
			opts = append(opts, vida.WithCacheBudget(budget))
		}
		row, hits, _, stats, err := runViDaOpts(paths, sc, w, opts...)
		if err != nil {
			return nil, err
		}
		nHit := 0
		for _, h := range hits {
			if h {
				nHit++
			}
		}
		out = append(out, CacheBudgetRow{
			BudgetBytes: budget,
			HitRate:     float64(nHit) / float64(len(hits)),
			TotalSec:    row.TotalSec,
			Evictions:   stats.Cache.Evictions,
			CacheBytes:  stats.Cache.BytesUsed,
		})
	}
	return out, nil
}
