// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) plus the ablations DESIGN.md calls out. Each RunXxx
// function is deterministic given (scale, seed), returns printable result
// rows, and is shared by cmd/vidabench and the bench_test.go harness.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vida"
	"vida/internal/basequery"
	"vida/internal/core"
	"vida/internal/docstore"
	"vida/internal/etl"
	"vida/internal/integration"
	"vida/internal/rawcsv"
	"vida/internal/rawjson"
	"vida/internal/sdg"
	"vida/internal/storagecol"
	"vida/internal/storagerow"
	"vida/internal/values"
	"vida/internal/workload"
)

// Fig5Row is one system's cumulative-time breakdown (one bar of Figure 5).
type Fig5Row struct {
	System     string
	FlattenSec float64
	LoadSec    float64
	QuerySec   float64
	TotalSec   float64
	// PerQuerySec are the individual query times (ViDa rows also carry
	// CacheHit flags via Fig5Result).
	PerQuerySec []float64
}

// Fig5Result is the full experiment outcome.
type Fig5Result struct {
	Rows []Fig5Row
	// CacheHits flags, per query, whether ViDa served it without raw
	// access (experiment E4 reads this).
	CacheHits []bool
	// Answers holds each system's query results for cross-checking.
	Answers map[string][]values.Value
	Scale   workload.Scale
	N       int
}

// Speedup returns total(worst baseline) / total(ViDa).
func (r *Fig5Result) Speedup() float64 {
	var vida, worst float64
	for _, row := range r.Rows {
		if row.System == "ViDa" {
			vida = row.TotalSec
		} else if row.TotalSec > worst {
			worst = row.TotalSec
		}
	}
	if vida == 0 {
		return 0
	}
	return worst / vida
}

// CacheHitRate returns the fraction of queries ViDa served from caches.
func (r *Fig5Result) CacheHitRate() float64 {
	if len(r.CacheHits) == 0 {
		return 0
	}
	hits := 0
	for _, h := range r.CacheHits {
		if h {
			hits++
		}
	}
	return float64(hits) / float64(len(r.CacheHits))
}

// RunFig5 reproduces Figure 5: the cumulative time to prepare (flatten +
// load) and run the query sequence on each of the five systems. All five
// compute identical answers (verified by the caller or tests via
// Answers).
func RunFig5(dir string, sc workload.Scale, nQueries int, seed int64) (*Fig5Result, error) {
	paths, err := workload.GenerateAll(dir, sc, seed)
	if err != nil {
		return nil, err
	}
	w := workload.Generate(nQueries, sc, seed)
	res := &Fig5Result{Answers: map[string][]values.Value{}, Scale: sc, N: nQueries}

	vidaRow, hits, vidaAnswers, err := runViDa(paths, sc, w)
	if err != nil {
		return nil, fmt.Errorf("fig5 ViDa: %w", err)
	}
	res.Rows = append(res.Rows, *vidaRow)
	res.CacheHits = hits
	res.Answers["ViDa"] = vidaAnswers

	for _, warehouse := range []string{"Col.Store", "RowStore"} {
		row, answers, err := runWarehouse(dir, warehouse, paths, sc, w)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", warehouse, err)
		}
		res.Rows = append(res.Rows, *row)
		res.Answers[warehouse] = answers
	}
	for _, combo := range []string{"Col.Store+Mongo", "RowStore+Mongo"} {
		row, answers, err := runIntegrated(dir, combo, paths, sc, w)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", combo, err)
		}
		res.Rows = append(res.Rows, *row)
		res.Answers[combo] = answers
	}
	return res, nil
}

// runViDa executes the workload directly over the raw files: no
// preparation phase at all.
func runViDa(paths *workload.Paths, sc workload.Scale, w *workload.Workload) (*Fig5Row, []bool, []values.Value, error) {
	row, hits, answers, _, err := runViDaOpts(paths, sc, w)
	return row, hits, answers, err
}

// runViDaOpts is runViDa with engine options (ablations: cache budget,
// executor choice, caching off) and final engine stats.
func runViDaOpts(paths *workload.Paths, sc workload.Scale, w *workload.Workload, opts ...vida.Option) (*Fig5Row, []bool, []values.Value, core.Stats, error) {
	eng := vida.New(opts...)
	if err := eng.RegisterCSV("Patients", paths.Patients, workload.PatientsSchema(sc), nil); err != nil {
		return nil, nil, nil, core.Stats{}, err
	}
	if err := eng.RegisterCSV("Genetics", paths.Genetics, workload.GeneticsSchema(sc), nil); err != nil {
		return nil, nil, nil, core.Stats{}, err
	}
	if err := eng.RegisterJSON("BrainRegions", paths.Regions, ""); err != nil {
		return nil, nil, nil, core.Stats{}, err
	}
	row := &Fig5Row{System: "ViDa"}
	var hits []bool
	var answers []values.Value
	for _, q := range w.Queries {
		before := eng.Stats()
		t0 := time.Now()
		r, err := eng.Query(q.Comprehension())
		if err != nil {
			return nil, nil, nil, core.Stats{}, fmt.Errorf("query %d (%s): %w", q.ID, q.Comprehension(), err)
		}
		d := time.Since(t0).Seconds()
		after := eng.Stats()
		row.PerQuerySec = append(row.PerQuerySec, d)
		row.QuerySec += d
		hits = append(hits, after.QueriesFromCache > before.QueriesFromCache)
		answers = append(answers, normalizeAnswer(r))
	}
	row.TotalSec = row.QuerySec
	return row, hits, answers, eng.Stats(), nil
}

// normalizeAnswer reduces a result to a comparable value: aggregates
// compare directly; projections compare as canonical bags.
func normalizeAnswer(r *vida.Result) values.Value {
	rows := r.Rows()
	if len(rows) == 1 && !rows[0].IsCollection() && rows[0].Kind() != "record" {
		return publicToInternal(rows[0])
	}
	out := make([]values.Value, len(rows))
	for i, row := range rows {
		out[i] = publicToInternal(row)
	}
	return values.NewBag(out...)
}

// publicToInternal converts the public facade value back to the internal
// representation for comparison.
func publicToInternal(v vida.Value) values.Value {
	switch v.Kind() {
	case "null":
		return values.Null
	case "bool":
		return values.NewBool(v.Bool())
	case "int":
		return values.NewInt(v.Int())
	case "float":
		return values.NewFloat(v.Float())
	case "string":
		return values.NewString(v.Str())
	case "record":
		fs := v.Fields()
		out := make([]values.Field, len(fs))
		for i, f := range fs {
			out[i] = values.Field{Name: f.Name, Val: publicToInternal(f.Val)}
		}
		return values.NewRecord(out...)
	default:
		es := v.Elems()
		out := make([]values.Value, len(es))
		for i, e := range es {
			out[i] = publicToInternal(e)
		}
		return values.NewBag(out...)
	}
}

// loadAllSources parses the raw files once for loading (shared by the
// warehouse paths). The JSON hierarchy is flattened (arrays projected
// away — see EXPERIMENTS.md) before relational loading.
func regionAttrs() []sdg.Attr {
	return []sdg.Attr{
		{Name: "coords.x", Type: sdg.Float},
		{Name: "coords.y", Type: sdg.Float},
		{Name: "coords.z", Type: sdg.Float},
		{Name: "id", Type: sdg.Int},
		{Name: "intensity", Type: sdg.Float},
		{Name: "laterality", Type: sdg.String},
		{Name: "pipeline.algo", Type: sdg.String},
		{Name: "pipeline.pass", Type: sdg.Int},
		{Name: "pipeline.quality", Type: sdg.Float},
		{Name: "region", Type: sdg.String},
		{Name: "volume", Type: sdg.Float},
	}
}

func csvIterator(path, schema, name string) (func(func(values.Value) error) error, []sdg.Attr, error) {
	t, err := sdg.ParseSchema(schema)
	if err != nil {
		return nil, nil, err
	}
	desc := sdg.DefaultDescription(name, sdg.FormatCSV, path, sdg.Bag(t))
	r, err := rawcsv.Open(desc)
	if err != nil {
		return nil, nil, err
	}
	return func(yield func(values.Value) error) error {
		return r.Iterate(nil, yield)
	}, t.Attrs, nil
}

func jsonIterator(path string) (func(func(values.Value) error) error, int64, error) {
	desc := sdg.DefaultDescription("Regions", sdg.FormatJSON, path, sdg.Bag(sdg.Unknown))
	r, err := rawjson.Open(desc)
	if err != nil {
		return nil, 0, err
	}
	return func(yield func(values.Value) error) error {
		return r.Iterate(nil, yield)
	}, r.SizeBytes(), nil
}

// flattenedRegionIterator yields flattened region rows from the flattened
// CSV (already written during the flatten phase).
func flattenedRegionIterator(path string) (func(func(values.Value) error) error, error) {
	attrs := regionAttrs()
	var sb []byte
	sb = append(sb, "Record("...)
	for i, a := range attrs {
		if i > 0 {
			sb = append(sb, ", "...)
		}
		kind := "float"
		switch a.Type.Kind {
		case sdg.TInt:
			kind = "int"
		case sdg.TString:
			kind = "string"
		}
		sb = append(sb, fmt.Sprintf("Att(%s, %s)", a.Name, kind)...)
	}
	sb = append(sb, ')')
	_ = sb
	// rawcsv needs attribute names without dots? They are plain strings
	// in the schema struct; build the description directly.
	rowType := sdg.Record(attrs...)
	desc := sdg.DefaultDescription("RegionsFlat", sdg.FormatCSV, path, sdg.Bag(rowType))
	r, err := rawcsv.Open(desc)
	if err != nil {
		return nil, err
	}
	return func(yield func(values.Value) error) error {
		return r.Iterate(nil, yield)
	}, nil
}

// runWarehouse is the "single data warehouse" path: flatten the JSON,
// load everything into one store, then query it natively.
func runWarehouse(dir, system string, paths *workload.Paths, sc workload.Scale, w *workload.Workload) (*Fig5Row, []values.Value, error) {
	row := &Fig5Row{System: system}

	// Phase 1: flatten the JSON hierarchy to CSV.
	jsonIter, jsonBytes, err := jsonIterator(paths.Regions)
	if err != nil {
		return nil, nil, err
	}
	flatPath := filepath.Join(dir, "regions_flat_"+sanitizeName(system)+".csv")
	t0 := time.Now()
	if _, err := etl.FlattenWith(jsonIter, jsonBytes, flatPath, etl.Options{SkipArrays: true}); err != nil {
		return nil, nil, err
	}
	row.FlattenSec = time.Since(t0).Seconds()

	// Phase 2: load all three relations.
	pIter, pAttrs, err := csvIterator(paths.Patients, workload.PatientsSchema(sc), "Patients")
	if err != nil {
		return nil, nil, err
	}
	gIter, gAttrs, err := csvIterator(paths.Genetics, workload.GeneticsSchema(sc), "Genetics")
	if err != nil {
		return nil, nil, err
	}
	rIter, err := flattenedRegionIterator(flatPath)
	if err != nil {
		return nil, nil, err
	}

	scans := map[string]basequery.ScanFn{}
	t0 = time.Now()
	switch system {
	case "Col.Store":
		store, err := storagecol.Open(filepath.Join(dir, "colstore"))
		if err != nil {
			return nil, nil, err
		}
		for _, spec := range []struct {
			name  string
			attrs []sdg.Attr
			iter  func(func(values.Value) error) error
		}{
			{"Patients", pAttrs, pIter}, {"Genetics", gAttrs, gIter}, {"Regions", regionAttrs(), rIter},
		} {
			if _, err := etl.LoadIntoColStore(store, filepath.Join(dir, "colstore"), spec.name, spec.attrs, spec.iter); err != nil {
				return nil, nil, err
			}
			tbl, _ := store.Table(spec.name)
			scans[spec.name] = tbl.Scan
		}
	case "RowStore":
		store, err := storagerow.Open(filepath.Join(dir, "rowstore"))
		if err != nil {
			return nil, nil, err
		}
		for _, spec := range []struct {
			name  string
			attrs []sdg.Attr
			iter  func(func(values.Value) error) error
		}{
			{"Patients", pAttrs, pIter}, {"Genetics", gAttrs, gIter}, {"Regions", regionAttrs(), rIter},
		} {
			if _, err := etl.LoadIntoRowStore(store, spec.name, spec.attrs, spec.iter); err != nil {
				return nil, nil, err
			}
			tbl, _ := store.Table(spec.name)
			scans[spec.name] = tbl.Scan
		}
	default:
		return nil, nil, fmt.Errorf("unknown warehouse %q", system)
	}
	row.LoadSec = time.Since(t0).Seconds()

	// Phase 3: run the query sequence natively.
	answers, qsec, perQ, err := runBaselineQueries(w, scans)
	if err != nil {
		return nil, nil, err
	}
	row.QuerySec = qsec
	row.PerQuerySec = perQ
	row.TotalSec = row.FlattenSec + row.LoadSec + row.QuerySec
	return row, answers, nil
}

// runIntegrated is the "different systems + integration layer" path: the
// relational data loads into a store, the JSON imports into the document
// store (no flattening), and a mediator joins across them.
func runIntegrated(dir, system string, paths *workload.Paths, sc workload.Scale, w *workload.Workload) (*Fig5Row, []values.Value, error) {
	row := &Fig5Row{System: system}
	pIter, pAttrs, err := csvIterator(paths.Patients, workload.PatientsSchema(sc), "Patients")
	if err != nil {
		return nil, nil, err
	}
	gIter, gAttrs, err := csvIterator(paths.Genetics, workload.GeneticsSchema(sc), "Genetics")
	if err != nil {
		return nil, nil, err
	}

	med := integration.NewMediator()
	t0 := time.Now()
	switch system {
	case "Col.Store+Mongo":
		store, err := storagecol.Open(filepath.Join(dir, "colstore_integ"))
		if err != nil {
			return nil, nil, err
		}
		if _, err := etl.LoadIntoColStore(store, filepath.Join(dir, "colstore_integ"), "Patients", pAttrs, pIter); err != nil {
			return nil, nil, err
		}
		if _, err := etl.LoadIntoColStore(store, filepath.Join(dir, "colstore_integ"), "Genetics", gAttrs, gIter); err != nil {
			return nil, nil, err
		}
		med.Mount("Patients", &integration.ColStoreWrapper{Store: store})
		med.Mount("Genetics", &integration.ColStoreWrapper{Store: store})
	case "RowStore+Mongo":
		store, err := storagerow.Open(filepath.Join(dir, "rowstore_integ"))
		if err != nil {
			return nil, nil, err
		}
		if _, err := etl.LoadIntoRowStore(store, "Patients", pAttrs, pIter); err != nil {
			return nil, nil, err
		}
		if _, err := etl.LoadIntoRowStore(store, "Genetics", gAttrs, gIter); err != nil {
			return nil, nil, err
		}
		med.Mount("Patients", &integration.RowStoreWrapper{Store: store})
		med.Mount("Genetics", &integration.RowStoreWrapper{Store: store})
	default:
		return nil, nil, fmt.Errorf("unknown integrated system %q", system)
	}
	dbDir := filepath.Join(dir, "docstore_"+sanitizeName(system))
	ds, err := docstore.Open(dbDir)
	if err != nil {
		return nil, nil, err
	}
	coll, err := ds.CreateCollection("Regions")
	if err != nil {
		return nil, nil, err
	}
	jsonIter, _, err := jsonIterator(paths.Regions)
	if err != nil {
		return nil, nil, err
	}
	// Import the JSON into the document store (time- and
	// space-consuming, §6).
	if err := jsonIter(func(v values.Value) error { return coll.Insert(v) }); err != nil {
		return nil, nil, err
	}
	if err := coll.FinishLoad(); err != nil {
		return nil, nil, err
	}
	med.Mount("Regions", &integration.DocStoreWrapper{Store: ds})
	row.LoadSec = time.Since(t0).Seconds()

	scans := map[string]basequery.ScanFn{}
	for _, tbl := range []string{"Patients", "Genetics", "Regions"} {
		scans[tbl] = mediatorScan(med, tbl)
	}
	answers, qsec, perQ, err := runBaselineQueries(w, scans)
	if err != nil {
		return nil, nil, err
	}
	row.QuerySec = qsec
	row.PerQuerySec = perQ
	row.TotalSec = row.LoadSec + row.QuerySec
	return row, answers, nil
}

// mediatorScan adapts one mediator-mounted table to a ScanFn so the
// shared query driver can use it (each scan crosses the wire boundary).
func mediatorScan(m *integration.Mediator, table string) basequery.ScanFn {
	return func(fields []string, preds []basequery.Pred, yield func(values.Value) error) error {
		q := &basequery.JoinQuery{Tables: []basequery.TableTerm{{Table: table, Preds: preds, Fields: fields}}}
		for _, f := range fields {
			q.Project = append(q.Project, basequery.ProjCol{Table: table, Col: f})
		}
		if len(fields) == 0 {
			return fmt.Errorf("experiments: mediator scan needs explicit fields")
		}
		out, err := m.Execute(q)
		if err != nil {
			return err
		}
		for _, r := range out.Elems() {
			if err := yield(r); err != nil {
				return err
			}
		}
		return nil
	}
}

// runBaselineQueries executes the neutral workload on a store's scans.
func runBaselineQueries(w *workload.Workload, scans map[string]basequery.ScanFn) ([]values.Value, float64, []float64, error) {
	var answers []values.Value
	var total float64
	var perQ []float64
	for _, q := range w.Queries {
		jq := q.JoinQuery()
		t0 := time.Now()
		v, err := basequery.ExecuteJoin(jq, scans)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("query %d: %w", q.ID, err)
		}
		d := time.Since(t0).Seconds()
		total += d
		perQ = append(perQ, d)
		answers = append(answers, v)
	}
	return answers, total, perQ, nil
}

func sanitizeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}

// Table2Row is one dataset's characteristics (paper Table 2).
type Table2Row struct {
	Relation   string
	Tuples     int
	Attributes int
	SizeBytes  int64
	Type       string
}

// RunTable2 generates the datasets and reports their shapes.
func RunTable2(dir string, sc workload.Scale, seed int64) ([]Table2Row, error) {
	paths, err := workload.GenerateAll(dir, sc, seed)
	if err != nil {
		return nil, err
	}
	return []Table2Row{
		{"Patients", sc.PatientsRows, sc.PatientsCols, workload.FileSize(paths.Patients), "CSV"},
		{"Genetics", sc.GeneticsRows, sc.GeneticsCols, workload.FileSize(paths.Genetics), "CSV"},
		{"BrainRegions", sc.RegionsObjects, -1, workload.FileSize(paths.Regions), "JSON"},
	}, nil
}

// cleanupDir removes experiment scratch space, tolerating absence.
func cleanupDir(dir string) { _ = os.RemoveAll(dir) }
