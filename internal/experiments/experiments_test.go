package experiments

import (
	"testing"

	"vida/internal/workload"
)

// tinyScale keeps the end-to-end experiment tests fast.
func tinyScale() workload.Scale {
	return workload.Scale{
		PatientsRows:   300,
		PatientsCols:   24,
		GeneticsRows:   350,
		GeneticsCols:   30,
		RegionsObjects: 120,
	}
}

func TestFig5EndToEnd(t *testing.T) {
	dir := t.TempDir()
	res, err := RunFig5(dir, tinyScale(), 40, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("systems = %d, want 5", len(res.Rows))
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		names[row.System] = true
		if row.TotalSec <= 0 {
			t.Fatalf("%s total = %v", row.System, row.TotalSec)
		}
		if len(row.PerQuerySec) != 40 {
			t.Fatalf("%s per-query samples = %d", row.System, len(row.PerQuerySec))
		}
	}
	for _, want := range []string{"ViDa", "Col.Store", "RowStore", "Col.Store+Mongo", "RowStore+Mongo"} {
		if !names[want] {
			t.Fatalf("missing system %q (have %v)", want, names)
		}
	}
	// ViDa has no preparation phase.
	for _, row := range res.Rows {
		if row.System == "ViDa" && (row.FlattenSec != 0 || row.LoadSec != 0) {
			t.Fatalf("ViDa should have no prep: %+v", row)
		}
		if row.System != "ViDa" && row.LoadSec <= 0 {
			t.Fatalf("%s paid no load cost", row.System)
		}
	}
	// THE headline check: all five systems agree on every answer.
	if err := VerifyAnswersAgree(res); err != nil {
		t.Fatal(err)
	}
	// Cache-hit tagging exists and some queries hit.
	if res.CacheHitRate() <= 0 {
		t.Fatalf("no cache hits recorded: %v", res.CacheHitRate())
	}
}

func TestTable2(t *testing.T) {
	dir := t.TempDir()
	rows, err := RunTable2(dir, tinyScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SizeBytes <= 0 || r.Tuples <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
	}
	if rows[0].Relation != "Patients" || rows[2].Type != "JSON" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestFig4Layouts(t *testing.T) {
	dir := t.TempDir()
	rows, err := RunFig4(dir, tinyScale(), 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("layouts = %d", len(rows))
	}
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Layout] = r
		if r.QuerySec <= 0 {
			t.Fatalf("%s query time = %v", r.Layout, r.QuerySec)
		}
	}
	// Structural expectations (robust at any speed):
	// positions is the smallest resident footprint, text the largest or
	// near it; object answers queries faster than re-parsing text.
	if byName["positions"].ResidentBytes >= byName["object"].ResidentBytes {
		t.Fatalf("positions should be smallest: %+v", rows)
	}
	if byName["object"].QuerySec >= byName["json-text"].QuerySec {
		t.Fatalf("parsed objects should beat re-parsing text: object=%v text=%v",
			byName["object"].QuerySec, byName["json-text"].QuerySec)
	}
}

func TestMongoSpace(t *testing.T) {
	dir := t.TempDir()
	res, err := RunMongoSpace(dir, tinyScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImportedDocs != res.SourceObjCount {
		t.Fatalf("doc count mismatch: %+v", res)
	}
	// The paper reports ~2x; our binary format plus framing must at
	// least amplify beyond 1x.
	if res.Amplification <= 1.0 {
		t.Fatalf("no amplification: %+v", res)
	}
}

func TestJITvsStatic(t *testing.T) {
	dir := t.TempDir()
	rows, err := RunJITvsStatic(dir, tinyScale(), 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("plans = %d", len(rows))
	}
	for _, r := range rows {
		if r.JITSec <= 0 || r.StaticSec <= 0 {
			t.Fatalf("bad timings: %+v", r)
		}
	}
}

func TestPosmapSweep(t *testing.T) {
	dir := t.TempDir()
	rows, err := RunPosmap(dir, tinyScale(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("positions = %d", len(rows))
	}
	for _, r := range rows {
		if r.ColdSec <= 0 || r.WarmSec <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
	}
}

func TestVPart(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	sc.GeneticsCols = 1200 // wide enough to force several partitions
	sc.GeneticsRows = 120
	res, err := RunVPart(dir, sc, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 2 {
		t.Fatalf("no partitioning forced: %+v", res)
	}
	if res.RowsScanned != sc.GeneticsRows {
		t.Fatalf("rows scanned = %d", res.RowsScanned)
	}
}

func TestFlattenExperiment(t *testing.T) {
	dir := t.TempDir()
	res, err := RunFlatten(dir, tinyScale(), 17)
	if err != nil {
		t.Fatal(err)
	}
	// Arrays explode rows: redundancy strictly above 1; scalar mode keeps
	// one row per object.
	if res.FullRedundancy <= 1.0 {
		t.Fatalf("no redundancy from arrays: %+v", res)
	}
	if res.ScalarRedundancy != 1.0 {
		t.Fatalf("scalar flatten should be 1:1: %+v", res)
	}
	if res.FullOutputRows <= res.ScalarOutputRows {
		t.Fatalf("full flatten should emit more rows: %+v", res)
	}
}

func TestCacheHitsExperiment(t *testing.T) {
	dir := t.TempDir()
	res, err := RunCacheHits(dir, tinyScale(), 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Fatalf("no cache hits: %+v", res)
	}
	if res.MeanHitSec <= 0 || res.MeanColStoreSec <= 0 {
		t.Fatalf("bad means: %+v", res)
	}
}

func TestColdWarm(t *testing.T) {
	dir := t.TempDir()
	res, err := RunColdWarm(dir, tinyScale(), 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawQueries == 0 || res.RawQueries == res.Queries {
		t.Fatalf("degenerate split: %+v", res)
	}
	if len(res.CumulativeSecs) != 30 {
		t.Fatalf("timeline length = %d", len(res.CumulativeSecs))
	}
	// Cumulative must be nondecreasing.
	for i := 1; i < len(res.CumulativeSecs); i++ {
		if res.CumulativeSecs[i] < res.CumulativeSecs[i-1] {
			t.Fatalf("timeline decreases at %d", i)
		}
	}
}

func TestCacheBudgetAblation(t *testing.T) {
	dir := t.TempDir()
	rows, err := RunCacheBudget(dir, tinyScale(), 40, 42, []int64{-1, 32 << 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	disabled, tiny, unlimited := rows[0], rows[1], rows[2]
	if disabled.HitRate != 0 {
		t.Fatalf("disabled caching still hit: %+v", disabled)
	}
	if unlimited.HitRate <= tiny.HitRate {
		t.Fatalf("unlimited budget should hit at least as often as a tiny one: %+v vs %+v",
			unlimited, tiny)
	}
	if tiny.Evictions == 0 {
		t.Fatalf("tiny budget should evict: %+v", tiny)
	}
}
