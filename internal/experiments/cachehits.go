package experiments

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"vida/internal/basequery"
	"vida/internal/etl"
	"vida/internal/storagecol"
	"vida/internal/values"
	"vida/internal/workload"
)

// CacheHitsResult captures experiment E4: the share of the workload ViDa
// serves from its caches and how cache-hit latency compares with the
// loaded column store running the same queries.
type CacheHitsResult struct {
	Queries          int
	CacheHits        int
	HitRate          float64
	MeanHitSec       float64
	MeanMissSec      float64
	MeanColStoreSec  float64
	HitOverColFactor float64 // mean hit latency / mean col-store latency
}

// RunCacheHits replays the 150-query workload on ViDa (tagging each query
// cache-hit or raw) and on a pre-loaded column store, then compares
// latencies. The paper's claims: ~80% of queries hit the caches, and for
// those "the execution time was comparable to that of the loaded column
// store".
func RunCacheHits(dir string, sc workload.Scale, nQueries int, seed int64) (*CacheHitsResult, error) {
	paths, err := workload.GenerateAll(dir, sc, seed)
	if err != nil {
		return nil, err
	}
	w := workload.Generate(nQueries, sc, seed)

	// ViDa run with per-query hit tags.
	vidaRow, hits, _, err := runViDa(paths, sc, w)
	if err != nil {
		return nil, err
	}

	// Column store: pay loading, then run the same queries natively.
	jsonIter, jsonBytes, err := jsonIterator(paths.Regions)
	if err != nil {
		return nil, err
	}
	flatPath := filepath.Join(dir, "regions_flat_cachehits.csv")
	if _, err := etl.FlattenWith(jsonIter, jsonBytes, flatPath, etl.Options{SkipArrays: true}); err != nil {
		return nil, err
	}
	store, err := storagecol.Open(filepath.Join(dir, "colstore_cachehits"))
	if err != nil {
		return nil, err
	}
	pIter, pAttrs, err := csvIterator(paths.Patients, workload.PatientsSchema(sc), "Patients")
	if err != nil {
		return nil, err
	}
	gIter, gAttrs, err := csvIterator(paths.Genetics, workload.GeneticsSchema(sc), "Genetics")
	if err != nil {
		return nil, err
	}
	rIter, err := flattenedRegionIterator(flatPath)
	if err != nil {
		return nil, err
	}
	scans := map[string]basequery.ScanFn{}
	if _, err := etl.LoadIntoColStore(store, dir, "Patients", pAttrs, pIter); err != nil {
		return nil, err
	}
	if _, err := etl.LoadIntoColStore(store, dir, "Genetics", gAttrs, gIter); err != nil {
		return nil, err
	}
	if _, err := etl.LoadIntoColStore(store, dir, "Regions", regionAttrs(), rIter); err != nil {
		return nil, err
	}
	for _, name := range []string{"Patients", "Genetics", "Regions"} {
		tbl, _ := store.Table(name)
		scans[name] = tbl.Scan
	}
	_, _, colPerQ, err := runBaselineQueries(w, scans)
	if err != nil {
		return nil, err
	}

	res := &CacheHitsResult{Queries: nQueries}
	var hitSum, missSum, colSum float64
	nHit, nMiss := 0, 0
	for i, h := range hits {
		if h {
			nHit++
			hitSum += vidaRow.PerQuerySec[i]
		} else {
			nMiss++
			missSum += vidaRow.PerQuerySec[i]
		}
		colSum += colPerQ[i]
	}
	res.CacheHits = nHit
	res.HitRate = float64(nHit) / float64(nQueries)
	if nHit > 0 {
		res.MeanHitSec = hitSum / float64(nHit)
	}
	if nMiss > 0 {
		res.MeanMissSec = missSum / float64(nMiss)
	}
	res.MeanColStoreSec = colSum / float64(nQueries)
	if res.MeanColStoreSec > 0 {
		res.HitOverColFactor = res.MeanHitSec / res.MeanColStoreSec
	}
	return res, nil
}

// ColdWarmResult captures experiment E8: how much of ViDa's cumulative
// time the initial raw accesses consume.
type ColdWarmResult struct {
	Queries           int
	RawQueries        int
	RawSecTotal       float64
	CacheSecTotal     float64
	RawShareOfTotal   float64
	FirstTouchSec     float64 // the very first query against each dataset
	MedianWarmSec     float64
	SlowestQueryID    int
	SlowestQuerySec   float64
	CumulativeSecs    []float64 // running total per query (the timeline)
	PerQueryCacheHits []bool
}

// RunColdWarm replays the workload on ViDa and splits cumulative time
// between raw-touching and cache-served queries (paper: "the majority of
// ViDa's cumulative execution time is actually spent in the initial
// accesses to the three datasets").
func RunColdWarm(dir string, sc workload.Scale, nQueries int, seed int64) (*ColdWarmResult, error) {
	paths, err := workload.GenerateAll(dir, sc, seed)
	if err != nil {
		return nil, err
	}
	w := workload.Generate(nQueries, sc, seed)
	row, hits, _, err := runViDa(paths, sc, w)
	if err != nil {
		return nil, err
	}
	res := &ColdWarmResult{Queries: nQueries, PerQueryCacheHits: hits}
	var warmTimes []float64
	cum := 0.0
	for i, d := range row.PerQuerySec {
		cum += d
		res.CumulativeSecs = append(res.CumulativeSecs, cum)
		if hits[i] {
			res.CacheSecTotal += d
			warmTimes = append(warmTimes, d)
		} else {
			res.RawQueries++
			res.RawSecTotal += d
		}
		if d > res.SlowestQuerySec {
			res.SlowestQuerySec = d
			res.SlowestQueryID = i + 1
		}
	}
	if i := firstFalse(hits); i >= 0 {
		res.FirstTouchSec = row.PerQuerySec[i]
	}
	total := res.RawSecTotal + res.CacheSecTotal
	if total > 0 {
		res.RawShareOfTotal = res.RawSecTotal / total
	}
	if len(warmTimes) > 0 {
		sort.Float64s(warmTimes)
		res.MedianWarmSec = warmTimes[len(warmTimes)/2]
	}
	return res, nil
}

func firstFalse(hits []bool) int {
	for i, h := range hits {
		if !h {
			return i
		}
	}
	return -1
}

// VerifyAnswersAgree cross-checks that every system computed the same
// answer for every query of a Fig5 run (floats compared with relative
// tolerance: execution orders differ across engines).
func VerifyAnswersAgree(res *Fig5Result) error {
	ref, ok := res.Answers["ViDa"]
	if !ok {
		return fmt.Errorf("experiments: no ViDa answers")
	}
	for system, answers := range res.Answers {
		if system == "ViDa" {
			continue
		}
		if len(answers) != len(ref) {
			return fmt.Errorf("experiments: %s answered %d queries, ViDa %d", system, len(answers), len(ref))
		}
		for i := range answers {
			if !answersEquivalent(ref[i], answers[i]) {
				return fmt.Errorf("experiments: query %d disagrees between ViDa and %s:\nViDa: %v\n%s: %v",
					i+1, system, ref[i], system, answers[i])
			}
		}
	}
	return nil
}

// answersEquivalent compares values with relative float tolerance.
func answersEquivalent(a, b values.Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		fa, fb := a.Float(), b.Float()
		diff := fa - fb
		if diff < 0 {
			diff = -diff
		}
		scale := fa
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		return diff <= 1e-6*scale
	}
	if a.Kind() != b.Kind() {
		return values.Equal(a, b)
	}
	switch a.Kind() {
	case values.KindRecord:
		if a.Len() != b.Len() {
			return false
		}
		for _, f := range a.Fields() {
			bv, ok := b.Get(f.Name)
			if !ok || !answersEquivalent(f.Val, bv) {
				return false
			}
		}
		return true
	case values.KindList, values.KindBag, values.KindSet:
		if a.Len() != b.Len() {
			return false
		}
		// Canonical order makes positional comparison meaningful for
		// bags/sets; numeric jitter can reorder, so fall back to greedy
		// matching.
		bs := append([]values.Value{}, b.Elems()...)
		for _, ae := range a.Elems() {
			found := -1
			for j, be := range bs {
				if answersEquivalent(ae, be) {
					found = j
					break
				}
			}
			if found < 0 {
				return false
			}
			bs = append(bs[:found], bs[found+1:]...)
		}
		return true
	}
	return values.Equal(a, b)
}

// Timer is a tiny helper for CLI-level measurements.
func Timer() func() float64 {
	t0 := time.Now()
	return func() float64 { return time.Since(t0).Seconds() }
}
