package rawxls

import (
	"os"
	"path/filepath"
	"testing"

	"vida/internal/sdg"
	"vida/internal/values"
)

func writeSheet(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.vxls")
	s := &Sheet{
		ColNames: []string{"id", "label", "amount", "flag"},
		ColTypes: []ColType{ColInt, ColString, ColFloat, ColBool},
	}
	rows := [][]values.Value{
		{values.NewInt(1), values.NewString("alpha"), values.NewFloat(10.5), values.True},
		{values.NewInt(2), values.Null, values.NewFloat(-3.25), values.False},
		{values.NewInt(3), values.NewString("gamma"), values.Null, values.True},
	}
	if err := Write(path, s, rows); err != nil {
		t.Fatal(err)
	}
	return path
}

func sheetDesc(path string) *sdg.Description {
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "label", Type: sdg.String},
		sdg.Attr{Name: "amount", Type: sdg.Float},
		sdg.Attr{Name: "flag", Type: sdg.Bool},
	))
	return sdg.DefaultDescription("sheet", sdg.FormatXLS, path, schema)
}

func TestRoundTrip(t *testing.T) {
	r, err := Open(sheetDesc(writeSheet(t)))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 3 {
		t.Fatalf("rows = %d", r.NumRows())
	}
	var rows []values.Value
	if err := r.Iterate(nil, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows[0].MustGet("label").Str() != "alpha" || rows[0].MustGet("amount").Float() != 10.5 {
		t.Fatalf("row 0 = %v", rows[0])
	}
	if !rows[1].MustGet("label").IsNull() {
		t.Fatalf("null cell lost: %v", rows[1])
	}
	if !rows[2].MustGet("amount").IsNull() {
		t.Fatalf("null cell lost: %v", rows[2])
	}
}

func TestProjection(t *testing.T) {
	r, err := Open(sheetDesc(writeSheet(t)))
	if err != nil {
		t.Fatal(err)
	}
	row, err := r.Row(2, []string{"id", "flag"})
	if err != nil {
		t.Fatal(err)
	}
	if row.Len() != 2 || row.MustGet("id").Int() != 3 || !row.MustGet("flag").Bool() {
		t.Fatalf("projected row = %v", row)
	}
	if _, err := r.Row(0, []string{"nope"}); err == nil {
		t.Fatal("unknown column should fail")
	}
	if _, err := r.Row(9, nil); err == nil {
		t.Fatal("out of range row should fail")
	}
}

func TestCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"short":  []byte("VX"),
		"magic":  []byte("NOPE\x01\x00\x01\x00"),
		"vers":   []byte("VXLS\x09\x00\x01\x00"),
		"trunc":  []byte("VXLS\x01\x00\x02\x00\x02ab"),
		"norows": append([]byte("VXLS\x01\x00\x01\x00\x01a\x00"), 5, 0, 0, 0),
	}
	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(&sdg.Description{Name: name, Format: sdg.FormatXLS, Path: p}); err == nil {
			t.Fatalf("%s should fail", name)
		}
	}
}

func TestWriteValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.vxls")
	s := &Sheet{ColNames: []string{"a"}, ColTypes: []ColType{ColInt, ColBool}}
	if err := Write(path, s, nil); err == nil {
		t.Fatal("mismatched sheet should fail")
	}
	s = &Sheet{ColNames: []string{"a"}, ColTypes: []ColType{ColInt}}
	rows := [][]values.Value{{values.NewInt(1), values.NewInt(2)}}
	if err := Write(path, s, rows); err == nil {
		t.Fatal("wrong row arity should fail")
	}
}
