// Package rawxls implements ViDa's spreadsheet access path. The paper's
// prototype "supports queries over JSON, CSV, XLS, ROOT, and files
// containing binary arrays" (§6); real XLS is a proprietary OLE compound
// format, so this package defines a small binary sheet format with typed
// cells (the simulation substitute per DESIGN.md) exercising the same
// plugin machinery: typed columns, nullable cells, row-unit access.
//
// File layout (little-endian):
//
//	magic "VXLS" | version u16 | ncols u16
//	cols : ncols × { nameLen u8, name, type u8 (0=int,1=float,2=string,3=bool) }
//	nrows u32
//	rows : cells in column order; each cell = tag u8 (0=null, 1=value)
//	       followed by the value encoding (i64 | f64 | u32 len + bytes | u8)
package rawxls

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"vida/internal/sdg"
	"vida/internal/values"
)

const magic = "VXLS"

// ColType is the declared type of a sheet column.
type ColType uint8

// The column types.
const (
	ColInt ColType = iota
	ColFloat
	ColString
	ColBool
)

// Sheet describes a spreadsheet's columns.
type Sheet struct {
	ColNames []string
	ColTypes []ColType
}

// Write creates a sheet file; next is called once per row and returns the
// row's cell values (values.Null for empty cells), or false to finish.
func Write(path string, s *Sheet, rows [][]values.Value) error {
	if len(s.ColNames) != len(s.ColTypes) {
		return fmt.Errorf("rawxls: column names/types mismatch")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 0, 1024)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, 1)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.ColNames)))
	for i, n := range s.ColNames {
		buf = append(buf, byte(len(n)))
		buf = append(buf, n...)
		buf = append(buf, byte(s.ColTypes[i]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	for _, row := range rows {
		if len(row) != len(s.ColNames) {
			return fmt.Errorf("rawxls: row has %d cells, want %d", len(row), len(s.ColNames))
		}
		for c, v := range row {
			if v.IsNull() {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 1)
			switch s.ColTypes[c] {
			case ColInt:
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
			case ColFloat:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
			case ColString:
				str := v.Str()
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(str)))
				buf = append(buf, str...)
			case ColBool:
				if v.Bool() {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
		}
	}
	_, err = f.Write(buf)
	return err
}

// Reader provides row-unit access to one sheet file; it implements
// algebra.Source.
type Reader struct {
	desc    *sdg.Description
	sheet   Sheet
	rowOffs []int
	data    []byte
	colIdx  map[string]int
}

// Open loads the sheet file described by desc.
func Open(desc *sdg.Description) (*Reader, error) {
	raw, err := os.ReadFile(desc.Path)
	if err != nil {
		return nil, fmt.Errorf("rawxls: %s: %w", desc.Name, err)
	}
	if len(raw) < 8 || string(raw[:4]) != magic {
		return nil, fmt.Errorf("rawxls: %s: bad magic", desc.Name)
	}
	pos := 4
	if v := binary.LittleEndian.Uint16(raw[pos:]); v != 1 {
		return nil, fmt.Errorf("rawxls: %s: unsupported version %d", desc.Name, v)
	}
	pos += 2
	ncols := int(binary.LittleEndian.Uint16(raw[pos:]))
	pos += 2
	r := &Reader{desc: desc, data: raw, colIdx: map[string]int{}}
	for i := 0; i < ncols; i++ {
		if pos >= len(raw) {
			return nil, fmt.Errorf("rawxls: %s: truncated columns", desc.Name)
		}
		n := int(raw[pos])
		pos++
		if pos+n+1 > len(raw) {
			return nil, fmt.Errorf("rawxls: %s: truncated column name", desc.Name)
		}
		r.sheet.ColNames = append(r.sheet.ColNames, string(raw[pos:pos+n]))
		pos += n
		r.sheet.ColTypes = append(r.sheet.ColTypes, ColType(raw[pos]))
		pos++
	}
	if pos+4 > len(raw) {
		return nil, fmt.Errorf("rawxls: %s: truncated row count", desc.Name)
	}
	nrows := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	// Index row offsets up front: cells are variable width (strings).
	for i := 0; i < nrows; i++ {
		r.rowOffs = append(r.rowOffs, pos)
		for c := 0; c < ncols; c++ {
			if pos >= len(raw) {
				return nil, fmt.Errorf("rawxls: %s: truncated row %d", desc.Name, i)
			}
			tag := raw[pos]
			pos++
			if tag == 0 {
				continue
			}
			switch r.sheet.ColTypes[c] {
			case ColInt, ColFloat:
				pos += 8
			case ColString:
				if pos+4 > len(raw) {
					return nil, fmt.Errorf("rawxls: %s: truncated string cell", desc.Name)
				}
				pos += 4 + int(binary.LittleEndian.Uint32(raw[pos:]))
			case ColBool:
				pos++
			}
			if pos > len(raw) {
				return nil, fmt.Errorf("rawxls: %s: truncated cell payload", desc.Name)
			}
		}
	}
	for i, n := range r.sheet.ColNames {
		r.colIdx[n] = i
	}
	return r, nil
}

// Name implements algebra.Source.
func (r *Reader) Name() string { return r.desc.Name }

// NumRows returns the sheet's row count.
func (r *Reader) NumRows() int { return len(r.rowOffs) }

// Columns returns the sheet header.
func (r *Reader) Columns() Sheet { return r.sheet }

// Row decodes row i, optionally projecting the named fields.
func (r *Reader) Row(i int, fields []string) (values.Value, error) {
	if i < 0 || i >= len(r.rowOffs) {
		return values.Null, fmt.Errorf("rawxls: row %d out of range", i)
	}
	need := map[int]bool{}
	if len(fields) == 0 {
		for c := range r.sheet.ColNames {
			need[c] = true
		}
	} else {
		for _, f := range fields {
			c, ok := r.colIdx[f]
			if !ok {
				return values.Null, fmt.Errorf("rawxls: %s has no column %q", r.desc.Name, f)
			}
			need[c] = true
		}
	}
	pos := r.rowOffs[i]
	out := make([]values.Field, 0, len(need))
	for c := 0; c < len(r.sheet.ColNames); c++ {
		tag := r.data[pos]
		pos++
		var v values.Value
		width := 0
		if tag != 0 {
			switch r.sheet.ColTypes[c] {
			case ColInt:
				v = values.NewInt(int64(binary.LittleEndian.Uint64(r.data[pos:])))
				width = 8
			case ColFloat:
				v = values.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(r.data[pos:])))
				width = 8
			case ColString:
				n := int(binary.LittleEndian.Uint32(r.data[pos:]))
				v = values.NewString(string(r.data[pos+4 : pos+4+n]))
				width = 4 + n
			case ColBool:
				v = values.NewBool(r.data[pos] != 0)
				width = 1
			}
		}
		if need[c] {
			out = append(out, values.Field{Name: r.sheet.ColNames[c], Val: v})
		}
		pos += width
	}
	return values.NewRecord(out...), nil
}

// Iterate implements algebra.Source.
func (r *Reader) Iterate(fields []string, yield func(values.Value) error) error {
	for i := range r.rowOffs {
		v, err := r.Row(i, fields)
		if err != nil {
			return err
		}
		if err := yield(v); err != nil {
			return err
		}
	}
	return nil
}

// SizeBytes returns the file size.
func (r *Reader) SizeBytes() int64 { return int64(len(r.data)) }
