package clean

import (
	"testing"

	"vida/internal/values"
)

func rec(pairs ...any) values.Value {
	var fs []values.Field
	for i := 0; i < len(pairs); i += 2 {
		var v values.Value
		switch x := pairs[i+1].(type) {
		case int:
			v = values.NewInt(int64(x))
		case float64:
			v = values.NewFloat(x)
		case string:
			v = values.NewString(x)
		case values.Value:
			v = x
		}
		fs = append(fs, values.Field{Name: pairs[i].(string), Val: v})
	}
	return values.NewRecord(fs...)
}

func TestDictionaryValidation(t *testing.T) {
	r := Rule{Attr: "city", Dictionary: []string{"geneva", "lausanne"}}
	if !r.Valid(values.NewString("geneva")) {
		t.Fatal("valid dictionary entry rejected")
	}
	if r.Valid(values.NewString("genvea")) {
		t.Fatal("typo accepted")
	}
	if r.Valid(values.NewInt(3)) {
		t.Fatal("non-string accepted under dictionary")
	}
	if !r.Valid(values.Null) {
		t.Fatal("null rejected (cleaning does not enforce nullability)")
	}
}

func TestRangeValidation(t *testing.T) {
	r := Rule{Attr: "age", Min: Float(0), Max: Float(120)}
	if !r.Valid(values.NewInt(45)) {
		t.Fatal("in-range rejected")
	}
	if r.Valid(values.NewInt(-3)) || r.Valid(values.NewInt(200)) {
		t.Fatal("out-of-range accepted")
	}
	if r.Valid(values.NewString("x")) {
		t.Fatal("non-numeric accepted under range")
	}
	open := Rule{Attr: "n", Min: Float(0)}
	if !open.Valid(values.NewFloat(1e12)) {
		t.Fatal("open upper bound rejected")
	}
}

func TestNearestDictionaryHamming(t *testing.T) {
	// Same-length typo: Hamming picks the right city.
	r := Rule{Attr: "city", Policy: Nearest, Dictionary: []string{"geneva", "zurich"}}
	v, keep := r.Repair(values.NewString("genEva"))
	if !keep || v.Str() != "geneva" {
		t.Fatalf("nearest = %v, %v", v, keep)
	}
	// Different length: edit distance takes over.
	v, _ = r.Repair(values.NewString("zurch"))
	if v.Str() != "zurich" {
		t.Fatalf("edit-distance nearest = %v", v)
	}
}

func TestNearestRangeClamps(t *testing.T) {
	r := Rule{Attr: "age", Policy: Nearest, Min: Float(0), Max: Float(120)}
	v, keep := r.Repair(values.NewInt(250))
	if !keep || v.Int() != 120 {
		t.Fatalf("clamp high = %v", v)
	}
	v, _ = r.Repair(values.NewFloat(-4.5))
	if v.Float() != 0 {
		t.Fatalf("clamp low = %v", v)
	}
}

func TestPolicies(t *testing.T) {
	skip := Rule{Attr: "a", Policy: SkipRow, Min: Float(0)}
	if _, keep := skip.Repair(values.NewInt(-1)); keep {
		t.Fatal("skip policy kept the row")
	}
	null := Rule{Attr: "a", Policy: NullField, Min: Float(0)}
	v, keep := null.Repair(values.NewInt(-1))
	if !keep || !v.IsNull() {
		t.Fatalf("null policy = %v, %v", v, keep)
	}
}

func TestCleanerApply(t *testing.T) {
	c := New(
		Rule{Attr: "age", Policy: Nearest, Min: Float(0), Max: Float(120)},
		Rule{Attr: "city", Policy: NullField, Dictionary: []string{"geneva", "bern"}},
		Rule{Attr: "id", Policy: SkipRow, Min: Float(0)},
	)
	// Clean row passes untouched.
	row := rec("id", 1, "age", 44, "city", "bern")
	out, keep := c.Apply(row)
	if !keep || !values.Equal(out, row) {
		t.Fatalf("clean row mangled: %v", out)
	}
	// Repairable row: age clamps, city nulls.
	out, keep = c.Apply(rec("id", 2, "age", 300, "city", "romulus"))
	if !keep {
		t.Fatal("repairable row dropped")
	}
	if out.MustGet("age").Int() != 120 || !out.MustGet("city").IsNull() {
		t.Fatalf("repaired = %v", out)
	}
	// Skip-policy violation drops the row.
	if _, keep := c.Apply(rec("id", -5, "age", 30, "city", "bern")); keep {
		t.Fatal("skip row kept")
	}
	st := c.Stats()
	if st.RowsChecked != 3 || st.RowsSkipped != 1 || st.FieldsFixed != 1 || st.FieldsNulled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWrapIterate(t *testing.T) {
	rows := []values.Value{
		rec("age", 30),
		rec("age", 999),
		rec("age", 40),
	}
	c := New(Rule{Attr: "age", Policy: SkipRow, Max: Float(120)})
	iter := c.WrapIterate(func(fields []string, yield func(values.Value) error) error {
		for _, r := range rows {
			if err := yield(r); err != nil {
				return err
			}
		}
		return nil
	})
	var out []values.Value
	if err := iter(nil, func(v values.Value) error {
		out = append(out, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("cleaned stream = %d rows", len(out))
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "abc", 3},
		{"kitten", "sitting", 3}, {"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Fatalf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
