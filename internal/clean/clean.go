// Package clean implements the data-cleaning extension the paper sketches
// as future work (§7): per-source domain knowledge — acceptable value
// ranges and dictionaries of valid values — incorporated into the input
// plugin, with pluggable policies for offending values: skip the entry,
// null the field, or transform it to the nearest acceptable value under a
// distance metric (the paper names Hamming distance [25]; edit distance
// handles unequal lengths).
package clean

import (
	"fmt"

	"vida/internal/values"
)

// Policy selects what happens to a value that violates its rule.
type Policy uint8

// The repair policies.
const (
	// SkipRow drops the whole row (the paper's conservative strategy:
	// "the code generated for subsequent queries can explicitly skip
	// processing of the problematic entries").
	SkipRow Policy = iota
	// NullField keeps the row but nulls the offending field.
	NullField
	// Nearest replaces the value with the nearest acceptable one.
	Nearest
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case SkipRow:
		return "skip"
	case NullField:
		return "null"
	case Nearest:
		return "nearest"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Rule validates one attribute.
type Rule struct {
	Attr   string
	Policy Policy
	// Dictionary lists the valid string values (nil = not dictionary
	// constrained).
	Dictionary []string
	// Min/Max bound numeric values (nil = unbounded on that side).
	Min, Max *float64
}

// Float returns a *float64 for rule literals.
func Float(f float64) *float64 { return &f }

// Valid reports whether v satisfies the rule.
func (r *Rule) Valid(v values.Value) bool {
	if v.IsNull() {
		return true // nullability is the schema's business, not cleaning's
	}
	if len(r.Dictionary) > 0 {
		if v.Kind() != values.KindString {
			return false
		}
		for _, d := range r.Dictionary {
			if v.Str() == d {
				return true
			}
		}
		return false
	}
	if r.Min != nil || r.Max != nil {
		if !v.IsNumeric() {
			return false
		}
		f := v.Float()
		if r.Min != nil && f < *r.Min {
			return false
		}
		if r.Max != nil && f > *r.Max {
			return false
		}
	}
	return true
}

// Repair maps an invalid value per the rule's policy. ok=false means the
// row must be skipped.
func (r *Rule) Repair(v values.Value) (values.Value, bool) {
	switch r.Policy {
	case SkipRow:
		return values.Null, false
	case NullField:
		return values.Null, true
	case Nearest:
		return r.nearest(v), true
	}
	return values.Null, false
}

// nearest picks the closest acceptable value: dictionary entries by
// Hamming/edit distance for strings, range clamping for numerics.
func (r *Rule) nearest(v values.Value) values.Value {
	if len(r.Dictionary) > 0 {
		s := ""
		if v.Kind() == values.KindString {
			s = v.Str()
		} else {
			s = v.String()
		}
		best, bestDist := r.Dictionary[0], distance(s, r.Dictionary[0])
		for _, d := range r.Dictionary[1:] {
			if dd := distance(s, d); dd < bestDist {
				best, bestDist = d, dd
			}
		}
		return values.NewString(best)
	}
	if v.IsNumeric() {
		f := v.Float()
		if r.Min != nil && f < *r.Min {
			f = *r.Min
		}
		if r.Max != nil && f > *r.Max {
			f = *r.Max
		}
		if v.Kind() == values.KindInt {
			return values.NewInt(int64(f))
		}
		return values.NewFloat(f)
	}
	return values.Null
}

// distance is Hamming distance for equal-length strings (the paper's
// metric) and Levenshtein edit distance otherwise.
func distance(a, b string) int {
	if len(a) == len(b) {
		d := 0
		for i := 0; i < len(a); i++ {
			if a[i] != b[i] {
				d++
			}
		}
		return d
	}
	return levenshtein(a, b)
}

func levenshtein(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Stats counts cleaning activity.
type Stats struct {
	RowsChecked  int64
	RowsSkipped  int64
	FieldsNulled int64
	FieldsFixed  int64
}

// Cleaner applies a rule set to record rows; it wraps a source's stream
// (the "specialized input plugin" of §7).
type Cleaner struct {
	rules map[string]*Rule
	stats Stats
}

// New builds a Cleaner from rules (one per attribute).
func New(rules ...Rule) *Cleaner {
	c := &Cleaner{rules: map[string]*Rule{}}
	for i := range rules {
		r := rules[i]
		c.rules[r.Attr] = &r
	}
	return c
}

// Stats returns a snapshot of the counters.
func (c *Cleaner) Stats() Stats { return c.stats }

// Apply validates and repairs one record. ok=false means the row is
// dropped (SkipRow policy fired).
func (c *Cleaner) Apply(row values.Value) (values.Value, bool) {
	c.stats.RowsChecked++
	if row.Kind() != values.KindRecord {
		return row, true
	}
	var fixed []values.Field
	changed := false
	for _, f := range row.Fields() {
		rule, ok := c.rules[f.Name]
		if !ok || rule.Valid(f.Val) {
			fixed = append(fixed, f)
			continue
		}
		repaired, keep := rule.Repair(f.Val)
		if !keep {
			c.stats.RowsSkipped++
			return values.Null, false
		}
		if repaired.IsNull() {
			c.stats.FieldsNulled++
		} else {
			c.stats.FieldsFixed++
		}
		fixed = append(fixed, values.Field{Name: f.Name, Val: repaired})
		changed = true
	}
	if !changed {
		return row, true
	}
	return values.NewRecord(fixed...), true
}

// WrapIterate decorates a source's Iterate with cleaning.
func (c *Cleaner) WrapIterate(iterate func(fields []string, yield func(values.Value) error) error) func(fields []string, yield func(values.Value) error) error {
	return func(fields []string, yield func(values.Value) error) error {
		return iterate(fields, func(v values.Value) error {
			out, keep := c.Apply(v)
			if !keep {
				return nil
			}
			return yield(out)
		})
	}
}
