// Package optimizer implements ViDa's raw-data-aware query optimizer
// (paper §5). It extends classical rewrites — selection pushdown,
// equi-join extraction, join ordering, projection pruning — with a cost
// model in which the price of fetching an attribute depends on where the
// data lives right now: ViDa's caches are nearly free, binary formats are
// cheap, CSV is cheap only where the positional map already covers the
// requested columns, and JSON is the most expensive to navigate cold. The
// per-format "wrappers" normalize these costs (paper §5, after Garlic), so
// the ordering logic itself stays format-agnostic.
package optimizer

import (
	"vida/internal/cache"
)

// CostModel supplies the optimizer's per-source estimates. Engine code
// implements it against live reader state (posmap coverage, semi-index
// coverage, cache residency); tests use StaticCostModel.
type CostModel interface {
	// SourceRows estimates the cardinality of a source.
	SourceRows(name string) int64
	// PerTupleCost estimates the relative cost of producing one datum of
	// the source restricted to the given fields. The unit is "one
	// attribute fetch from a loaded DBMS buffer pool" (paper §5's
	// const_cost); e.g. a cold CSV row costs ≈ 3 × fields.
	PerTupleCost(name string, fields []string) float64
	// CheapestField names the cheapest single attribute of the source,
	// used when a query needs row counts but no attribute values.
	CheapestField(name string) (string, bool)
}

// Reference per-attribute costs, relative to a loaded DBMS attribute
// fetch = 1.0 (paper §5 gives "3 × const_cost" for cold CSV).
const (
	CostCache      = 0.05
	CostTable      = 1.0
	CostArray      = 0.3
	CostCSVMapped  = 0.6
	CostCSVCold    = 3.0
	CostJSONMapped = 1.5
	CostJSONCold   = 4.0
	CostXLS        = 0.8
)

// StaticCostModel is a fixed-table CostModel for tests and tools.
type StaticCostModel struct {
	Rows     map[string]int64
	PerTuple map[string]float64
	Cheapest map[string]string
}

// SourceRows implements CostModel (default 1000).
func (m *StaticCostModel) SourceRows(name string) int64 {
	if m != nil && m.Rows != nil {
		if r, ok := m.Rows[name]; ok {
			return r
		}
	}
	return 1000
}

// PerTupleCost implements CostModel (default 1.0 per field).
func (m *StaticCostModel) PerTupleCost(name string, fields []string) float64 {
	per := 1.0
	if m != nil && m.PerTuple != nil {
		if c, ok := m.PerTuple[name]; ok {
			per = c
		}
	}
	n := len(fields)
	if n == 0 {
		n = 1
	}
	return per * float64(n)
}

// CheapestField implements CostModel.
func (m *StaticCostModel) CheapestField(name string) (string, bool) {
	if m != nil && m.Cheapest != nil {
		f, ok := m.Cheapest[name]
		return f, ok
	}
	return "", false
}

// OutputNeeds describes what a query does with a materialized result; the
// layout decision of Figure 4 is a function of these.
type OutputNeeds struct {
	// BinaryJSONRequested: the consumer wants binary JSON (e.g. a RESTful
	// service layer, paper §5).
	BinaryJSONRequested bool
	// CarriesLargeObjects: the plan carries deep hierarchies it does not
	// inspect — only their identity/extent matters until projection.
	CarriesLargeObjects bool
	// InspectsCarriedObjects: predicates or heads actually look inside
	// the carried objects.
	InspectsCarriedObjects bool
	// ProjectedFields is the width of the scalar projection.
	ProjectedFields int
	// ReuseLikely: workload locality suggests future queries will touch
	// this data again.
	ReuseLikely bool
}

// ChooseLayout picks the cache layout for a materialized intermediate
// (paper Figure 4: JSON text / BSON / parsed object / byte positions).
func ChooseLayout(n OutputNeeds) cache.Layout {
	switch {
	case n.CarriesLargeObjects && !n.InspectsCarriedObjects:
		// Carry (start,end) positions; assemble at projection (Fig 4d:
		// avoids polluting the caches with huge objects).
		return cache.LayoutSpans
	case n.BinaryJSONRequested:
		// Serve binary JSON directly (Fig 4b).
		return cache.LayoutBSON
	case n.ProjectedFields > 0 && n.ProjectedFields <= 8:
		// Narrow scalar projections re-shape best as typed columns (§5
		// "cache replicas of tabular, row-oriented data in a columnar
		// format").
		return cache.LayoutColumns
	default:
		// Wide or structural access: parsed objects (Fig 4c).
		return cache.LayoutRows
	}
}
