package optimizer

import (
	"sort"

	"vida/internal/algebra"
	"vida/internal/mcl"
)

// defaultFilterSelectivity scales row estimates per pushed-down filter
// conjunct when no measured selectivity is available.
const defaultFilterSelectivity = 0.25

// Optimize rewrites a translated plan:
//
//  1. The linear qualifier chain is decomposed into scans, dependent
//     generators/binds and filter conjuncts.
//  2. Single-source conjuncts become Scan.Filter (evaluated inside the
//     generated access path).
//  3. Equality conjuncts linking two sides become hash-join keys;
//     Product+Select collapses into Join.
//  4. Scans are reordered by the raw-access cost model: the most
//     expensive stream drives the pipeline once (it is scanned exactly
//     once), cheaper/smaller sources become hash-join build sides.
//  5. Scan.Fields is set to exactly the attributes the plan touches
//     (projection pruning — the lever that lets raw access paths skip
//     tokenizing unused bytes, paper §5).
//
// Plans whose shape the decomposition does not recognize (already
// optimized, hand-built) are returned unchanged apart from projection
// pruning.
func Optimize(p *algebra.Reduce, cm CostModel) *algebra.Reduce {
	if cm == nil {
		cm = &StaticCostModel{}
	}
	out := p
	if units, ok := flatten(p); ok {
		sel := map[*algebra.Scan]float64{}
		rebuilt := rebuild(units, cm, sel, nil)
		out = &algebra.Reduce{
			Input: rebuilt, M: p.M, Head: p.Head, Pred: p.Pred, Order: p.Order,
			GroupBy: p.GroupBy, Aggs: p.Aggs,
		}
	} else {
		out = algebra.Clone(p).(*algebra.Reduce)
	}
	pruneProjections(out, cm)
	return out
}

// unit is one step of the decomposed qualifier chain.
type unit struct {
	scan   *algebra.Scan
	gen    *algebra.Generate
	bind   *algebra.Bind
	filter mcl.Expr
}

// flatten decomposes a left-deep Translate-shaped plan into units. It
// reports ok=false for shapes it does not recognize.
func flatten(p *algebra.Reduce) ([]unit, bool) {
	var units []unit
	var walk func(p algebra.Plan) bool
	walk = func(p algebra.Plan) bool {
		switch n := p.(type) {
		case nil:
			return true
		case *algebra.Scan:
			s := *n // copy so rewrites don't mutate the input plan
			units = append(units, unit{scan: &s})
			return true
		case *algebra.Select:
			if !walk(n.Input) {
				return false
			}
			units = append(units, unit{filter: n.Pred})
			return true
		case *algebra.Bind:
			if !walk(n.Input) {
				return false
			}
			b := *n
			b.Input = nil
			units = append(units, unit{bind: &b})
			return true
		case *algebra.Generate:
			if n.Input != nil && !walk(n.Input) {
				return false
			}
			g := *n
			g.Input = nil
			units = append(units, unit{gen: &g})
			return true
		case *algebra.Product:
			if !walk(n.L) {
				return false
			}
			return walk(n.R)
		default:
			return false
		}
	}
	if !walk(p.Input) {
		return nil, false
	}
	return units, true
}

// scanVarsOf returns the variables bound by scans/gens/binds in units.
func boundVarSet(units []unit) map[string]bool {
	out := map[string]bool{}
	for _, u := range units {
		switch {
		case u.scan != nil:
			out[u.scan.Var] = true
		case u.gen != nil:
			out[u.gen.Var] = true
		case u.bind != nil:
			out[u.bind.Var] = true
		}
	}
	return out
}

// deps returns the plan variables an expression depends on (free vars
// restricted to variables bound in this plan; catalog sources referenced
// by correlated subqueries resolve via the base environment instead).
func deps(e mcl.Expr, bound map[string]bool) []string {
	var out []string
	for _, v := range mcl.FreeVars(e) {
		if bound[v] {
			out = append(out, v)
		}
	}
	return out
}

func subset(vars []string, have map[string]bool) bool {
	for _, v := range vars {
		if !have[v] {
			return false
		}
	}
	return true
}

// rebuild reorders and reassembles the units into a join tree. measured
// maps scans to observed filter selectivities (from adaptive sampling);
// extraSel supplies per-scan selectivity defaults when absent.
func rebuild(units []unit, cm CostModel, measured map[*algebra.Scan]float64, _ interface{}) algebra.Plan {
	all := boundVarSet(units)

	// Partition units.
	var scans []*algebra.Scan
	var depUnits []unit // gens and binds, original order
	var filters []mcl.Expr
	for _, u := range units {
		switch {
		case u.scan != nil:
			scans = append(scans, u.scan)
		case u.gen != nil, u.bind != nil:
			depUnits = append(depUnits, u)
		case u.filter != nil:
			filters = append(filters, u.filter)
		}
	}

	// Attach single-scan conjuncts as Scan.Filter and estimate effective
	// rows per scan.
	var remaining []mcl.Expr
	scanSel := map[*algebra.Scan]float64{}
	for _, s := range scans {
		scanSel[s] = 1.0
	}
	scanByVar := map[string]*algebra.Scan{}
	for _, s := range scans {
		scanByVar[s.Var] = s
	}
	for _, f := range filters {
		d := deps(f, all)
		if len(d) == 1 {
			if s, ok := scanByVar[d[0]]; ok {
				if s.Filter == nil {
					s.Filter = f
				} else {
					s.Filter = &mcl.BinExpr{Op: mcl.OpAnd, L: s.Filter, R: f}
				}
				if m, ok := measured[s]; ok {
					scanSel[s] = m
				} else {
					scanSel[s] *= defaultFilterSelectivity
				}
				continue
			}
		}
		remaining = append(remaining, f)
	}

	effRows := func(s *algebra.Scan) float64 {
		return float64(cm.SourceRows(s.Source)) * scanSel[s]
	}

	// Order scans. The driver (streamed once through every probe) is the
	// scan with the highest total access cost — it must not be re-read or
	// hash-built. Subsequent scans are chosen greedily among those
	// CONNECTED to the already-placed set by an equi-join edge (smallest
	// effective rows first, keeping build tables small); unconnected
	// scans wait, so cross products only appear when the join graph is
	// genuinely disconnected.
	if len(scans) > 1 {
		driver := 0
		driverCost := -1.0
		for i, s := range scans {
			c := effRows(s) * cm.PerTupleCost(s.Source, s.Fields)
			if c > driverCost {
				driver, driverCost = i, c
			}
		}
		// connected reports whether scan s has an equality conjunct
		// linking it to any var in the placed set.
		connected := func(s *algebra.Scan, placed map[string]bool) bool {
			sv := map[string]bool{s.Var: true}
			for _, f := range remaining {
				b, ok := f.(*mcl.BinExpr)
				if !ok || b.Op != mcl.OpEq {
					continue
				}
				ld, rd := deps(b.L, all), deps(b.R, all)
				if len(ld) == 0 || len(rd) == 0 {
					continue
				}
				if (subset(ld, placed) && subset(rd, sv)) || (subset(rd, placed) && subset(ld, sv)) {
					return true
				}
			}
			return false
		}
		ordered := []*algebra.Scan{scans[driver]}
		placed := map[string]bool{scans[driver].Var: true}
		rest := append(append([]*algebra.Scan{}, scans[:driver]...), scans[driver+1:]...)
		for len(rest) > 0 {
			best := -1
			bestConnected := false
			for i, s := range rest {
				conn := connected(s, placed)
				switch {
				case best < 0,
					conn && !bestConnected,
					conn == bestConnected && effRows(s) < effRows(rest[best]):
					best, bestConnected = i, conn
				}
			}
			ordered = append(ordered, rest[best])
			placed[rest[best].Var] = true
			rest = append(rest[:best], rest[best+1:]...)
		}
		scans = ordered
	}

	// Assemble.
	bound := map[string]bool{}
	var plan algebra.Plan
	usedFilter := make([]bool, len(remaining))
	usedDep := make([]bool, len(depUnits))

	applyReady := func() {
		for progress := true; progress; {
			progress = false
			// Filters first: they shrink streams.
			for i, f := range remaining {
				if usedFilter[i] || !subset(deps(f, all), bound) {
					continue
				}
				plan = &algebra.Select{Input: plan, Pred: f}
				usedFilter[i] = true
				progress = true
			}
			// Then dependent generators/binds in original order.
			for i, u := range depUnits {
				if usedDep[i] {
					continue
				}
				var e mcl.Expr
				var v string
				if u.gen != nil {
					e, v = u.gen.E, u.gen.Var
				} else {
					e, v = u.bind.E, u.bind.Var
				}
				if !subset(deps(e, all), bound) {
					continue
				}
				if u.gen != nil {
					plan = &algebra.Generate{Input: plan, Var: v, E: e}
				} else {
					plan = &algebra.Bind{Input: plan, Var: v, E: e}
				}
				bound[v] = true
				usedDep[i] = true
				progress = true
			}
		}
	}

	for _, s := range scans {
		if plan == nil {
			plan = s
			bound[s.Var] = true
			applyReady()
			continue
		}
		// Find equi-conjuncts connecting bound vars to this scan.
		var on []algebra.EquiPair
		newVar := map[string]bool{s.Var: true}
		for i, f := range remaining {
			if usedFilter[i] {
				continue
			}
			b, ok := f.(*mcl.BinExpr)
			if !ok || b.Op != mcl.OpEq {
				continue
			}
			ld, rd := deps(b.L, all), deps(b.R, all)
			switch {
			case subset(ld, bound) && len(rd) > 0 && subset(rd, newVar):
				on = append(on, algebra.EquiPair{LExpr: b.L, RExpr: b.R})
				usedFilter[i] = true
			case subset(rd, bound) && len(ld) > 0 && subset(ld, newVar):
				on = append(on, algebra.EquiPair{LExpr: b.R, RExpr: b.L})
				usedFilter[i] = true
			}
		}
		if len(on) > 0 {
			plan = &algebra.Join{L: plan, R: s, On: on}
		} else {
			plan = &algebra.Product{L: plan, R: s}
		}
		bound[s.Var] = true
		applyReady()
	}
	if plan == nil && len(depUnits) > 0 {
		// Pure generator/bind chains (no catalog scans).
		applyReady()
	}
	// Any leftover filters (e.g. depending on gens placed late).
	for i, f := range remaining {
		if !usedFilter[i] {
			plan = &algebra.Select{Input: plan, Pred: f}
		}
	}
	return plan
}

// pruneProjections installs Scan.Fields from the attributes the plan
// actually touches.
func pruneProjections(p *algebra.Reduce, cm CostModel) {
	var scans []*algebra.Scan
	var walk func(algebra.Plan)
	walk = func(p algebra.Plan) {
		if s, ok := p.(*algebra.Scan); ok {
			scans = append(scans, s)
		}
		for _, in := range p.Inputs() {
			walk(in)
		}
	}
	walk(p)
	for _, s := range scans {
		fields, usedWhole := algebra.UsedSourceFields(p, s.Var)
		if usedWhole {
			s.Fields = nil // whole record needed
			continue
		}
		if len(fields) == 0 {
			// Row-count-only scans need one (cheapest) attribute.
			if f, ok := cm.CheapestField(s.Source); ok {
				s.Fields = []string{f}
			}
			continue
		}
		sort.Strings(fields)
		s.Fields = fields
	}
}
