package optimizer

import (
	"errors"

	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/values"
)

// Adaptive optimization (paper §5: "at runtime ViDa both makes some
// decisions and may change some of the initial ones based on feedback it
// receives during query execution"). Before committing to a join order,
// the optimizer samples a prefix of each scan, measures the true
// selectivity of its pushed-down filter, and re-runs ordering with the
// measured numbers — a one-round feedback loop standing in for full
// mid-query re-generation.

// SampleSize is the default number of rows sampled per scan.
const SampleSize = 256

var errStopSampling = errors.New("optimizer: sampling complete")

// MeasureSelectivity runs the scan's filter over the first limit rows and
// returns the observed pass fraction (1.0 when the scan has no filter or
// the source is empty).
func MeasureSelectivity(cat algebra.Catalog, s *algebra.Scan, limit int) (float64, error) {
	if s.Filter == nil {
		return 1.0, nil
	}
	src, ok := cat.Source(s.Source)
	if !ok {
		return 1.0, nil
	}
	seen, passed := 0, 0
	err := src.Iterate(s.Fields, func(v values.Value) error {
		seen++
		env := mcl.NewEnv(map[string]values.Value{s.Var: v})
		pv, err := mcl.Eval(s.Filter, env)
		if err != nil {
			return err
		}
		if pv.Kind() == values.KindBool && pv.Bool() {
			passed++
		}
		if seen >= limit {
			return errStopSampling
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopSampling) {
		return 1.0, err
	}
	if seen == 0 {
		return 1.0, nil
	}
	return float64(passed) / float64(seen), nil
}

// AdaptiveOptimize is Optimize with a sampling round: the measured
// selectivities replace the static defaults before join ordering. The
// cost of the sampling pass is bounded by SampleSize rows per scan.
func AdaptiveOptimize(p *algebra.Reduce, cat algebra.Catalog, cm CostModel) (*algebra.Reduce, error) {
	if cm == nil {
		cm = &StaticCostModel{}
	}
	units, ok := flatten(p)
	if !ok {
		out := algebra.Clone(p).(*algebra.Reduce)
		pruneProjections(out, cm)
		return out, nil
	}
	// First pass: attach filters so there is something to measure. The
	// cheap trick: run the static rebuild, collect its scans (which now
	// carry filters), sample them, then rebuild again with measurements.
	staticPlan := rebuild(units, cm, map[*algebra.Scan]float64{}, nil)
	var scans []*algebra.Scan
	var walk func(algebra.Plan)
	walk = func(pl algebra.Plan) {
		if s, ok := pl.(*algebra.Scan); ok {
			scans = append(scans, s)
		}
		for _, in := range pl.Inputs() {
			walk(in)
		}
	}
	walk(staticPlan)
	bySource := map[string]float64{}
	for _, s := range scans {
		sel, err := MeasureSelectivity(cat, s, SampleSize)
		if err != nil {
			return nil, err
		}
		bySource[s.Source+"\x00"+s.Var] = sel
	}
	// Re-flatten (fresh copies) and rebuild with the measurements keyed
	// back onto the fresh scan nodes.
	units2, _ := flatten(p)
	// Pre-attach filters to know which scan gets which selectivity.
	// rebuild() keys measured by *Scan pointer, so align by source+var.
	pre := map[*algebra.Scan]float64{}
	for _, u := range units2 {
		if u.scan != nil {
			if sel, ok := bySource[u.scan.Source+"\x00"+u.scan.Var]; ok {
				pre[u.scan] = sel
			}
		}
	}
	rebuilt := rebuild(units2, cm, pre, nil)
	out := &algebra.Reduce{
		Input: rebuilt, M: p.M, Head: p.Head, Pred: p.Pred, Order: p.Order,
		GroupBy: p.GroupBy, Aggs: p.Aggs,
	}
	pruneProjections(out, cm)
	return out, nil
}
