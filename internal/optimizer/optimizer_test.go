package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"vida/internal/algebra"
	"vida/internal/cache"
	"vida/internal/jit"
	"vida/internal/mcl"
	"vida/internal/values"
)

func rec(pairs ...any) values.Value {
	var fs []values.Field
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		var v values.Value
		switch x := pairs[i+1].(type) {
		case int:
			v = values.NewInt(int64(x))
		case float64:
			v = values.NewFloat(x)
		case string:
			v = values.NewString(x)
		default:
			panic("bad pair")
		}
		fs = append(fs, values.Field{Name: name, Val: v})
	}
	return values.NewRecord(fs...)
}

func testCatalog(r *rand.Rand, nBig, nSmall int) algebra.MapCatalog {
	big := make([]values.Value, nBig)
	for i := range big {
		big[i] = rec("id", i, "grp", r.Intn(10), "v", r.Intn(100))
	}
	small := make([]values.Value, nSmall)
	for i := range small {
		small[i] = rec("gid", i%10, "label", "g", "w", r.Intn(50))
	}
	return algebra.MapCatalog{
		"Big":   &algebra.SliceSource{SrcName: "Big", Rows: big},
		"Small": &algebra.SliceSource{SrcName: "Small", Rows: small},
	}
}

func translate(t *testing.T, src string, sources map[string]bool) *algebra.Reduce {
	t.Helper()
	e, err := mcl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := algebra.Translate(mcl.Normalize(e), sources)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func srcSet(names ...string) map[string]bool {
	out := map[string]bool{}
	for _, n := range names {
		out[n] = true
	}
	return out
}

func TestOptimizeProducesJoin(t *testing.T) {
	plan := translate(t, `for { b <- Big, s <- Small, b.grp = s.gid, b.v > 50 } yield sum s.w`,
		srcSet("Big", "Small"))
	opt := Optimize(plan, &StaticCostModel{Rows: map[string]int64{"Big": 10000, "Small": 10}})
	s := algebra.Format(opt)
	if !strings.Contains(s, "Join(") {
		t.Fatalf("no join produced:\n%s", s)
	}
	if strings.Contains(s, "Product") {
		t.Fatalf("product survived:\n%s", s)
	}
	// Big must drive (left), Small builds (right).
	if !strings.Contains(s, "Join(b.grp = s.gid)") {
		t.Fatalf("join keys wrong:\n%s", s)
	}
}

func TestOptimizePushesFilterIntoScan(t *testing.T) {
	plan := translate(t, `for { b <- Big, b.v > 50, b.grp = 3 } yield count b`, srcSet("Big"))
	opt := Optimize(plan, nil)
	s := algebra.Format(opt)
	if !strings.Contains(s, "filter=") {
		t.Fatalf("scan filter not installed:\n%s", s)
	}
	if strings.Contains(s, "Select(") {
		t.Fatalf("single-source filters should move into the scan:\n%s", s)
	}
}

func TestOptimizePrunesProjection(t *testing.T) {
	plan := translate(t, `for { b <- Big, b.v > 50 } yield sum b.v`, srcSet("Big"))
	opt := Optimize(plan, nil)
	s := algebra.Format(opt)
	if !strings.Contains(s, "fields=[v]") {
		t.Fatalf("projection not pruned to [v]:\n%s", s)
	}
}

func TestOptimizeWholeRecordKeepsAllFields(t *testing.T) {
	plan := translate(t, `for { b <- Big } yield bag b`, srcSet("Big"))
	opt := Optimize(plan, nil)
	s := algebra.Format(opt)
	if strings.Contains(s, "fields=") {
		t.Fatalf("whole-record use must not prune:\n%s", s)
	}
}

func TestOptimizeCountOnlyUsesCheapestField(t *testing.T) {
	plan := translate(t, `for { b <- Big } yield count b`, srcSet("Big"))
	opt := Optimize(plan, &StaticCostModel{Cheapest: map[string]string{"Big": "id"}})
	s := algebra.Format(opt)
	// "count b" uses b whole? count's Unit ignores the value but the head
	// references b... head = b means usedWhole. Accept either pruned or
	// not — assert it still runs; the real check is in the count-star
	// variant below.
	_ = s
	plan2 := translate(t, `for { b <- Big } yield count 1`, srcSet("Big"))
	opt2 := Optimize(plan2, &StaticCostModel{Cheapest: map[string]string{"Big": "id"}})
	s2 := algebra.Format(opt2)
	if !strings.Contains(s2, "fields=[id]") {
		t.Fatalf("count-star scan should read one cheap field:\n%s", s2)
	}
}

func TestOptimizeDriverSelection(t *testing.T) {
	// The expensive big source must be the stream (left), regardless of
	// qualifier order in the query.
	plan := translate(t, `for { s <- Small, b <- Big, b.grp = s.gid } yield count 1`,
		srcSet("Big", "Small"))
	opt := Optimize(plan, &StaticCostModel{Rows: map[string]int64{"Big": 100000, "Small": 10}})
	var join *algebra.Join
	var walk func(algebra.Plan)
	walk = func(p algebra.Plan) {
		if j, ok := p.(*algebra.Join); ok {
			join = j
		}
		for _, in := range p.Inputs() {
			walk(in)
		}
	}
	walk(opt)
	if join == nil {
		t.Fatalf("no join:\n%s", algebra.Format(opt))
	}
	l, ok := join.L.(*algebra.Scan)
	if !ok || l.Source != "Big" {
		t.Fatalf("driver is not Big:\n%s", algebra.Format(opt))
	}
}

// TestOptimizePreservesResults is the core property: optimization must
// never change query results.
func TestOptimizePreservesResults(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	queries := []string{
		`for { b <- Big, s <- Small, b.grp = s.gid, b.v > 50 } yield sum s.w`,
		`for { b <- Big, b.v > 90 } yield set b.grp`,
		`for { b <- Big, s <- Small, b.grp = s.gid, s.w > 25, b.v % 2 = 0 } yield count 1`,
		`for { s <- Small, b <- Big, b.grp = s.gid } yield bag (w := s.w, v := b.v)`,
		`for { b <- Big, x := b.v * 2, x > 100 } yield list x`,
		`for { b <- Big, s <- Small, b.grp = s.gid, b.v > s.w } yield count 1`,
		`for { b <- Big } yield avg b.v`,
	}
	for trial := 0; trial < 10; trial++ {
		cat := testCatalog(r, 50+r.Intn(100), 10+r.Intn(20))
		cm := &StaticCostModel{Rows: map[string]int64{"Big": 100, "Small": 15}}
		for _, q := range queries {
			plan := translate(t, q, srcSet("Big", "Small"))
			want, err := algebra.Reference{}.Run(plan, cat)
			if err != nil {
				t.Fatalf("%q: %v", q, err)
			}
			opt := Optimize(plan, cm)
			got, err := algebra.Reference{}.Run(opt, cat)
			if err != nil {
				t.Fatalf("optimized %q: %v", q, err)
			}
			if !values.Equal(got, want) {
				t.Fatalf("%q: optimization changed result:\nwas:  %v\nnow:  %v\nplan:\n%s",
					q, want, got, algebra.Format(opt))
			}
			// And the JIT engine agrees on the optimized plan.
			gotJIT, err := jit.Executor{}.Run(opt, cat)
			if err != nil {
				t.Fatalf("jit on optimized %q: %v", q, err)
			}
			if !values.Equal(gotJIT, want) {
				t.Fatalf("%q: jit on optimized plan diverged: %v vs %v", q, gotJIT, want)
			}
		}
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	plan := translate(t, `for { b <- Big, b.v > 50 } yield sum b.v`, srcSet("Big"))
	before := algebra.Format(plan)
	Optimize(plan, nil)
	after := algebra.Format(plan)
	if before != after {
		t.Fatalf("input plan mutated:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestAdaptiveOptimizeUsesMeasuredSelectivity(t *testing.T) {
	// Big has a filter that passes almost nothing; Small has none. With
	// static defaults Big (10k rows × 0.25) still looks biggest and
	// drives; the measured selectivity (≈0) should flip the driver to
	// Small... but only if sampling actually ran. We assert the join
	// order changes between static and adaptive optimization.
	r := rand.New(rand.NewSource(3))
	big := make([]values.Value, 2000)
	for i := range big {
		big[i] = rec("id", i, "grp", r.Intn(10), "v", r.Intn(100))
	}
	small := make([]values.Value, 500)
	for i := range small {
		small[i] = rec("gid", i%10, "w", r.Intn(50))
	}
	cat := algebra.MapCatalog{
		"Big":   &algebra.SliceSource{SrcName: "Big", Rows: big},
		"Small": &algebra.SliceSource{SrcName: "Small", Rows: small},
	}
	cm := &StaticCostModel{Rows: map[string]int64{"Big": 2000, "Small": 500}}
	q := `for { b <- Big, s <- Small, b.grp = s.gid, b.v > 99 } yield count 1`
	plan := translate(t, q, srcSet("Big", "Small"))

	staticPlan := Optimize(plan, cm)
	adaptivePlan, err := AdaptiveOptimize(plan, cat, cm)
	if err != nil {
		t.Fatal(err)
	}
	driverOf := func(p *algebra.Reduce) string {
		var join *algebra.Join
		var walk func(algebra.Plan)
		walk = func(pl algebra.Plan) {
			if j, ok := pl.(*algebra.Join); ok {
				join = j
			}
			for _, in := range pl.Inputs() {
				walk(in)
			}
		}
		walk(p)
		if join == nil {
			return ""
		}
		if s, ok := join.L.(*algebra.Scan); ok {
			return s.Source
		}
		return ""
	}
	if driverOf(staticPlan) != "Big" {
		t.Fatalf("static driver = %s, want Big", driverOf(staticPlan))
	}
	if driverOf(adaptivePlan) != "Small" {
		t.Fatalf("adaptive driver = %s, want Small (measured selectivity ~1%%):\n%s",
			driverOf(adaptivePlan), algebra.Format(adaptivePlan))
	}
	// Both must return identical results.
	want, err := algebra.Reference{}.Run(staticPlan, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := algebra.Reference{}.Run(adaptivePlan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !values.Equal(got, want) {
		t.Fatalf("adaptive plan diverged: %v vs %v", got, want)
	}
}

func TestMeasureSelectivity(t *testing.T) {
	rows := make([]values.Value, 100)
	for i := range rows {
		rows[i] = rec("v", i)
	}
	cat := algebra.MapCatalog{"X": &algebra.SliceSource{SrcName: "X", Rows: rows}}
	s := &algebra.Scan{Source: "X", Var: "x", Filter: mcl.MustParse("x.v < 25")}
	sel, err := MeasureSelectivity(cat, s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0.2 || sel > 0.3 {
		t.Fatalf("selectivity = %v, want ~0.25", sel)
	}
	// No filter: selectivity 1.
	s2 := &algebra.Scan{Source: "X", Var: "x"}
	if sel, _ := MeasureSelectivity(cat, s2, 10); sel != 1.0 {
		t.Fatalf("no-filter selectivity = %v", sel)
	}
}

func TestChooseLayout(t *testing.T) {
	cases := []struct {
		needs OutputNeeds
		want  cache.Layout
	}{
		{OutputNeeds{CarriesLargeObjects: true}, cache.LayoutSpans},
		{OutputNeeds{CarriesLargeObjects: true, InspectsCarriedObjects: true, ProjectedFields: 20}, cache.LayoutRows},
		{OutputNeeds{BinaryJSONRequested: true}, cache.LayoutBSON},
		{OutputNeeds{ProjectedFields: 3}, cache.LayoutColumns},
		{OutputNeeds{ProjectedFields: 40}, cache.LayoutRows},
	}
	for _, c := range cases {
		if got := ChooseLayout(c.needs); got != c.want {
			t.Fatalf("ChooseLayout(%+v) = %s, want %s", c.needs, got, c.want)
		}
	}
}

func TestCostModelDefaults(t *testing.T) {
	var m *StaticCostModel
	if m.SourceRows("x") != 1000 {
		t.Fatal("nil model default rows")
	}
	if m.PerTupleCost("x", nil) != 1.0 {
		t.Fatal("nil model default cost")
	}
	if _, ok := m.CheapestField("x"); ok {
		t.Fatal("nil model should have no cheapest field")
	}
}

// TestOptimizeAvoidsCrossProducts is the regression test for the join
// ordering bug where a chain query (A-B, B-C edges, no A-C edge) placed
// the two unconnected scans first, yielding a cross product: ordering
// must follow join-graph connectivity.
func TestOptimizeAvoidsCrossProducts(t *testing.T) {
	plan := translate(t, `for { a <- A, b <- B, c <- C, a.k = b.k, b.j = c.j } yield count 1`,
		srcSet("A", "B", "C"))
	// Make the two endpoint relations the big ones so naive cost ordering
	// would pick them adjacently.
	cm := &StaticCostModel{Rows: map[string]int64{"A": 100000, "B": 10, "C": 90000}}
	opt := Optimize(plan, cm)
	s := algebra.Format(opt)
	if strings.Contains(s, "Product") {
		t.Fatalf("cross product in a connected join graph:\n%s", s)
	}
	if strings.Count(s, "Join(") != 2 {
		t.Fatalf("want 2 joins:\n%s", s)
	}
}

// TestOptimizeDisconnectedGraphStillWorks: genuinely disconnected graphs
// must still plan (with a Product) and compute correctly.
func TestOptimizeDisconnectedGraph(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	cat := testCatalog(r, 20, 5)
	plan := translate(t, `for { b <- Big, s <- Small } yield count 1`, srcSet("Big", "Small"))
	opt := Optimize(plan, nil)
	s := algebra.Format(opt)
	if !strings.Contains(s, "Product") {
		t.Fatalf("disconnected graph needs a product:\n%s", s)
	}
	want, err := algebra.Reference{}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := algebra.Reference{}.Run(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !values.Equal(got, want) {
		t.Fatalf("cross product result changed: %v vs %v", got, want)
	}
}
