// Package sqlfront implements the SQL "syntactic sugar" layer of paper
// §3.2: a SQL subset is parsed and translated into monoid comprehensions,
// so SQL users query raw heterogeneous files without knowing the internal
// language. Supported: SELECT [DISTINCT] with expressions, aliases and
// aggregates (COUNT/SUM/AVG/MIN/MAX), FROM with comma joins and
// INNER JOIN ... ON, WHERE with the usual predicates, GROUP BY, and
// HAVING. ORDER BY/LIMIT are not part of the calculus' unordered bag
// semantics and are rejected with a clear error.
package sqlfront

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tSymbol // punctuation and operators
	tParam  // $N / $name bind parameter (text holds the bare name)
)

type token struct {
	kind tokKind
	text string // identifiers are lower-cased; upper preserved in orig
	orig string
	pos  int
}

// Error is a SQL parse/translate error.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func lex(src string) ([]token, error) {
	var out []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			orig := src[start:i]
			out = append(out, token{kind: tIdent, text: strings.ToLower(orig), orig: orig, pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			out = append(out, token{kind: tNumber, text: src[start:i], orig: src[start:i], pos: start})
		case c == '$':
			start := i
			i++
			nameStart := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			if i == nameStart {
				return nil, errf(start, "expected parameter name after '$'")
			}
			out = append(out, token{kind: tParam, text: src[nameStart:i], orig: src[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, errf(start, "unterminated string literal")
			}
			out = append(out, token{kind: tString, text: sb.String(), orig: sb.String(), pos: start})
		default:
			start := i
			// Multi-char operators first.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=":
				out = append(out, token{kind: tSymbol, text: two, orig: two, pos: start})
				i += 2
				continue
			}
			switch c {
			case ',', '(', ')', '=', '<', '>', '+', '-', '*', '/', '.', '%', '?':
				out = append(out, token{kind: tSymbol, text: string(c), orig: string(c), pos: start})
				i++
			default:
				return nil, errf(start, "unexpected character %q", string(c))
			}
		}
	}
	out = append(out, token{kind: tEOF, pos: len(src)})
	return out, nil
}
