package sqlfront

import (
	"fmt"
	"strings"

	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/values"
)

// Translate parses a SQL SELECT and returns the equivalent monoid
// comprehension (paper §3.2: "monoid comprehensions ... [are] sufficient
// to express relational SQL queries"). The mapping:
//
//	FROM T a, U b        → generators a <- T, b <- U
//	JOIN ... ON c        → generator + filter c
//	WHERE p              → filter p
//	SELECT x AS n, ...   → yield bag (n := x, ...)    (set under DISTINCT)
//	SELECT AGG(x)        → yield sum/avg/min/max x    (count → sum 1)
//	GROUP BY g           → grouped comprehension (group by { k := g }
//	                       agg { a := m x }): one scan, one hash fold
//	HAVING h             → having clause over the group scope
func Translate(src string) (mcl.Expr, error) {
	stmt, err := parseSelect(src)
	if err != nil {
		return nil, err
	}
	tr := &translator{stmt: stmt}
	return tr.translate()
}

type translator struct {
	stmt *selectStmt
}

// aliasVar maps a SQL table alias to the comprehension variable name.
// Aliases are used verbatim; they are valid identifiers in both languages.
func aliasVar(alias string) string { return alias }

// generators builds the qualifier list from FROM+WHERE, with varSuffix
// appended to every variable (used to alpha-separate the inner
// comprehension of a GROUP BY from the outer key query).
func (tr *translator) generators(varSuffix string) ([]mcl.Qualifier, map[string]string, error) {
	aliases := map[string]string{}
	var qs []mcl.Qualifier
	for _, t := range tr.stmt.from {
		v := aliasVar(t.alias) + varSuffix
		if _, dup := aliases[strings.ToLower(t.alias)]; dup {
			return nil, nil, fmt.Errorf("sql: duplicate table alias %q", t.alias)
		}
		aliases[strings.ToLower(t.alias)] = v
		qs = append(qs, mcl.Qualifier{Var: v, Src: &mcl.VarExpr{Name: t.name}})
		if t.on != nil {
			cond, err := tr.toMCL(t.on, aliases, false)
			if err != nil {
				return nil, nil, err
			}
			qs = append(qs, mcl.Qualifier{Src: cond})
		}
	}
	if tr.stmt.where != nil {
		w, err := tr.toMCL(tr.stmt.where, aliases, false)
		if err != nil {
			return nil, nil, err
		}
		qs = append(qs, mcl.Qualifier{Src: w})
	}
	return qs, aliases, nil
}

func (tr *translator) translate() (mcl.Expr, error) {
	hasAgg := false
	for _, item := range tr.stmt.items {
		if item.star {
			continue
		}
		if containsAgg(item.expr) {
			hasAgg = true
		}
	}
	if len(tr.stmt.groupBy) > 0 {
		return tr.translateGroupBy()
	}
	if tr.stmt.having != nil {
		return nil, fmt.Errorf("sql: HAVING requires GROUP BY")
	}
	if hasAgg {
		if tr.hasBound() {
			return nil, fmt.Errorf("sql: ORDER BY / LIMIT need a row result, not a single aggregate")
		}
		return tr.translateAggregate()
	}
	return tr.translateProjection()
}

// hasBound reports whether the statement carries ORDER BY, LIMIT or
// OFFSET.
func (tr *translator) hasBound() bool {
	return len(tr.stmt.orderBy) > 0 || tr.stmt.limit != nil || tr.stmt.offset != nil
}

// limitToMCL converts a LIMIT/OFFSET operand (literal or parameter).
func limitToMCL(e sqlExpr) mcl.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *sqlParam:
		return &mcl.ParamExpr{Name: n.name}
	case *sqlLit:
		return &mcl.ConstExpr{Val: n.val}
	}
	return nil
}

// orderOrdinal resolves ORDER BY <k> (a positive integer literal) to the
// index of the k-th select item, per the SQL convention. ok is false
// when the expression is not an ordinal.
func (tr *translator) orderOrdinal(e sqlExpr) (int, bool, error) {
	lit, isLit := e.(*sqlLit)
	if !isLit || lit.val.Kind() != values.KindInt {
		return 0, false, nil
	}
	k := lit.val.Int()
	if k < 1 || int(k) > len(tr.stmt.items) {
		return 0, false, fmt.Errorf("sql: ORDER BY position %d is out of range", k)
	}
	if tr.stmt.items[k-1].star {
		return 0, false, fmt.Errorf("sql: ORDER BY position %d refers to *", k)
	}
	return int(k) - 1, true, nil
}

// aliasItem resolves a bare unqualified column against the explicit
// select-item aliases (output names take precedence over input columns,
// as in SQL). Unaliased items need no entry: their output name IS the
// input column, so plain column resolution finds the same expression.
func (tr *translator) aliasItem(e sqlExpr) (selectItem, bool) {
	col, isCol := e.(*sqlCol)
	if !isCol || col.table != "" {
		return selectItem{}, false
	}
	for _, item := range tr.stmt.items {
		if !item.star && item.alias != "" && strings.EqualFold(item.alias, col.col) {
			return item, true
		}
	}
	return selectItem{}, false
}

// translateOrderKeys converts the ORDER BY list for a non-grouped query:
// ordinals and select aliases resolve to their item expressions, the rest
// translate against the FROM aliases directly.
func (tr *translator) translateOrderKeys(aliases map[string]string) ([]mcl.OrderKey, error) {
	var keys []mcl.OrderKey
	for _, o := range tr.stmt.orderBy {
		expr := o.expr
		if idx, ok, err := tr.orderOrdinal(expr); err != nil {
			return nil, err
		} else if ok {
			expr = tr.stmt.items[idx].expr
		} else if item, ok := tr.aliasItem(expr); ok {
			expr = item.expr
		}
		if containsAgg(expr) {
			return nil, errf(o.pos, "aggregate in ORDER BY requires GROUP BY")
		}
		ke, err := tr.toMCL(expr, aliases, false)
		if err != nil {
			return nil, err
		}
		keys = append(keys, mcl.OrderKey{E: ke, Desc: o.desc})
	}
	return keys, nil
}

// translateProjection handles plain SELECT (no aggregates).
func (tr *translator) translateProjection() (mcl.Expr, error) {
	qs, aliases, err := tr.generators("")
	if err != nil {
		return nil, err
	}
	head, err := tr.buildHead(tr.stmt.items, aliases)
	if err != nil {
		return nil, err
	}
	m := monoid.Bag
	if tr.stmt.distinct {
		m = monoid.Set
	}
	comp := &mcl.Comprehension{M: m, Head: head, Qs: qs}
	comp.Order, err = tr.translateOrderKeys(aliases)
	if err != nil {
		return nil, err
	}
	comp.Limit = limitToMCL(tr.stmt.limit)
	comp.Offset = limitToMCL(tr.stmt.offset)
	return comp, nil
}

// buildHead constructs the yield record (or single expression for SELECT *
// over one table).
func (tr *translator) buildHead(items []selectItem, aliases map[string]string) (mcl.Expr, error) {
	if len(items) == 1 && items[0].star {
		if len(tr.stmt.from) == 1 {
			return &mcl.VarExpr{Name: aliases[strings.ToLower(tr.stmt.from[0].alias)]}, nil
		}
		return nil, fmt.Errorf("sql: SELECT * over multiple tables is ambiguous; project columns explicitly")
	}
	var fields []mcl.FieldExpr
	for i, item := range items {
		if item.star {
			return nil, fmt.Errorf("sql: cannot mix * with other select items")
		}
		e, err := tr.toMCL(item.expr, aliases, false)
		if err != nil {
			return nil, err
		}
		name := item.alias
		if name == "" {
			if col, ok := item.expr.(*sqlCol); ok {
				name = col.col
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		fields = append(fields, mcl.FieldExpr{Name: name, Val: e})
	}
	if len(fields) == 1 {
		return fields[0].Val, nil
	}
	return &mcl.RecordExpr{Fields: fields}, nil
}

// translateAggregate handles SELECT with aggregates and no GROUP BY. A
// single bare aggregate becomes one comprehension (the paper's COUNT
// example); multiple aggregates become a record of comprehensions.
func (tr *translator) translateAggregate() (mcl.Expr, error) {
	buildOne := func(agg *sqlAgg) (mcl.Expr, error) {
		qs, aliases, err := tr.generators("")
		if err != nil {
			return nil, err
		}
		m, head, err := tr.aggMonoidAndHead(agg, aliases)
		if err != nil {
			return nil, err
		}
		return &mcl.Comprehension{M: m, Head: head, Qs: qs}, nil
	}
	if len(tr.stmt.items) == 1 && !tr.stmt.items[0].star {
		if agg, ok := tr.stmt.items[0].expr.(*sqlAgg); ok {
			return buildOne(agg)
		}
	}
	var fields []mcl.FieldExpr
	for i, item := range tr.stmt.items {
		agg, ok := item.expr.(*sqlAgg)
		if !ok {
			return nil, fmt.Errorf("sql: non-aggregate select item %d requires GROUP BY", i+1)
		}
		e, err := buildOne(agg)
		if err != nil {
			return nil, err
		}
		name := item.alias
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		fields = append(fields, mcl.FieldExpr{Name: name, Val: e})
	}
	return &mcl.RecordExpr{Fields: fields}, nil
}

func (tr *translator) aggMonoidAndHead(agg *sqlAgg, aliases map[string]string) (monoid.Monoid, mcl.Expr, error) {
	switch agg.kind {
	case aggCountStar, aggCount:
		// COUNT(e) ≡ sum 1, the paper's own example mapping.
		return monoid.Sum, &mcl.ConstExpr{Val: values.NewInt(1)}, nil
	case aggSum, aggAvg, aggMin, aggMax:
		head, err := tr.toMCL(agg.arg, aliases, false)
		if err != nil {
			return nil, nil, err
		}
		switch agg.kind {
		case aggSum:
			return monoid.Sum, head, nil
		case aggAvg:
			return monoid.Avg, head, nil
		case aggMin:
			return monoid.Min, head, nil
		default:
			return monoid.Max, head, nil
		}
	}
	return nil, nil, fmt.Errorf("sql: unsupported aggregate")
}

// translateGroupBy lowers GROUP BY to the grouped comprehension form —
// one scan, one hash-aggregation fold:
//
//	for { gens, where } group by { k$i := key_i } agg { a$j := m_j e_j }
//	having h yield bag head [order by ...] [limit/offset]
//
// Grouping keys and aggregate inputs are evaluated in qualifier scope;
// the head, HAVING and ORDER BY keys run per group over the key/agg
// bindings. The k$/a$ names cannot collide with SQL identifiers.
func (tr *translator) translateGroupBy() (mcl.Expr, error) {
	qs, aliases, err := tr.generators("")
	if err != nil {
		return nil, err
	}
	groupBy := make([]mcl.GroupKey, len(tr.stmt.groupBy))
	for i, col := range tr.stmt.groupBy {
		e, err := tr.toMCL(col, aliases, false)
		if err != nil {
			return nil, err
		}
		groupBy[i] = mcl.GroupKey{Name: fmt.Sprintf("k$%d", i), E: e}
	}
	keyValue := func(i int) mcl.Expr {
		return &mcl.VarExpr{Name: groupBy[i].Name}
	}
	// aggVar registers one aggregate slot and returns its group-scope
	// variable. Each occurrence gets its own slot; all slots fold in the
	// same single pass.
	var aggs []mcl.AggSpec
	aggVar := func(agg *sqlAgg) (mcl.Expr, error) {
		m, e, err := tr.aggMonoidAndHead(agg, aliases)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("a$%d", len(aggs))
		aggs = append(aggs, mcl.AggSpec{Name: name, M: m, E: e})
		return &mcl.VarExpr{Name: name}, nil
	}

	// Head record: grouping columns become key references, aggregates
	// become aggregate references.
	var fields []mcl.FieldExpr
	itemExprs := make([]mcl.Expr, len(tr.stmt.items))
	for i, item := range tr.stmt.items {
		if item.star {
			return nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY")
		}
		name := item.alias
		switch e := item.expr.(type) {
		case *sqlCol:
			gi := -1
			for j, g := range tr.stmt.groupBy {
				if strings.EqualFold(g.col, e.col) && (e.table == "" || strings.EqualFold(e.table, g.table) || g.table == "") {
					gi = j
					break
				}
			}
			if gi < 0 {
				return nil, fmt.Errorf("sql: column %q is neither aggregated nor in GROUP BY", e.col)
			}
			if name == "" {
				name = e.col
			}
			fields = append(fields, mcl.FieldExpr{Name: name, Val: keyValue(gi)})
			itemExprs[i] = keyValue(gi)
		case *sqlAgg:
			av, err := aggVar(e)
			if err != nil {
				return nil, err
			}
			if name == "" {
				name = fmt.Sprintf("col%d", i+1)
			}
			fields = append(fields, mcl.FieldExpr{Name: name, Val: av})
			itemExprs[i] = av
		default:
			return nil, fmt.Errorf("sql: GROUP BY select items must be grouping columns or aggregates")
		}
	}
	var head mcl.Expr = &mcl.RecordExpr{Fields: fields}
	if len(fields) == 1 {
		head = fields[0].Val
	}

	var having mcl.Expr
	if tr.stmt.having != nil {
		having, err = tr.groupScopeExpr(tr.stmt.having, aggVar, keyValue)
		if err != nil {
			return nil, err
		}
	}
	m := monoid.Bag
	if tr.stmt.distinct {
		m = monoid.Set
	}
	comp := &mcl.Comprehension{M: m, Head: head, Qs: qs, GroupBy: groupBy, Aggs: aggs, Having: having}
	// ORDER BY over grouped results: ordinals and output aliases resolve
	// to the select items' group-scope expressions; anything else maps
	// into group scope directly (aggregates become aggregate slots,
	// grouping columns become key references).
	for _, o := range tr.stmt.orderBy {
		var ke mcl.Expr
		if idx, ok, err := tr.orderOrdinal(o.expr); err != nil {
			return nil, err
		} else if ok {
			ke = itemExprs[idx]
		}
		if ke == nil {
			if col, isCol := o.expr.(*sqlCol); isCol && col.table == "" {
				for i, item := range tr.stmt.items {
					name := item.alias
					if name == "" {
						if c, ok := item.expr.(*sqlCol); ok {
							name = c.col
						}
					}
					if name != "" && strings.EqualFold(name, col.col) {
						ke = itemExprs[i]
						break
					}
				}
			}
		}
		if ke == nil {
			ke, err = tr.groupScopeExpr(o.expr, aggVar, keyValue)
			if err != nil {
				return nil, err
			}
		}
		comp.Order = append(comp.Order, mcl.OrderKey{E: ke, Desc: o.desc})
	}
	// HAVING and ORDER BY may have registered aggregate slots of their
	// own (e.g. ORDER BY COUNT(*) with no COUNT in the select list); pick
	// up the final slice.
	comp.Aggs = aggs
	comp.Limit = limitToMCL(tr.stmt.limit)
	comp.Offset = limitToMCL(tr.stmt.offset)
	return comp, nil
}

// groupScopeExpr rewrites a HAVING or grouped-ORDER BY expression into
// group scope: aggregates become aggregate slots (folded in the same
// single pass as the select list), grouping columns become key
// references.
func (tr *translator) groupScopeExpr(e sqlExpr, aggVar func(*sqlAgg) (mcl.Expr, error), keyValue func(int) mcl.Expr) (mcl.Expr, error) {
	switch n := e.(type) {
	case *sqlAgg:
		return aggVar(n)
	case *sqlCol:
		for j, g := range tr.stmt.groupBy {
			if strings.EqualFold(g.col, n.col) {
				return keyValue(j), nil
			}
		}
		return nil, fmt.Errorf("sql: column %q is not in GROUP BY", n.col)
	case *sqlLit:
		if n.val.IsNull() {
			return &mcl.NullExpr{}, nil
		}
		return &mcl.ConstExpr{Val: n.val}, nil
	case *sqlParam:
		return &mcl.ParamExpr{Name: n.name}, nil
	case *sqlBin:
		l, err := tr.groupScopeExpr(n.l, aggVar, keyValue)
		if err != nil {
			return nil, err
		}
		r, err := tr.groupScopeExpr(n.r, aggVar, keyValue)
		if err != nil {
			return nil, err
		}
		op, ok := mclOps[n.op]
		if !ok {
			return nil, fmt.Errorf("sql: operator %q not supported here", n.op)
		}
		return &mcl.BinExpr{Op: op, L: l, R: r}, nil
	case *sqlNot:
		inner, err := tr.groupScopeExpr(n.e, aggVar, keyValue)
		if err != nil {
			return nil, err
		}
		return &mcl.NotExpr{E: inner}, nil
	}
	return nil, fmt.Errorf("sql: unsupported grouped expression")
}

// toMCL converts a SQL expression to the calculus. Bare columns resolve
// against the single FROM table, or error when ambiguous.
func (tr *translator) toMCL(e sqlExpr, aliases map[string]string, inAgg bool) (mcl.Expr, error) {
	switch n := e.(type) {
	case *sqlLit:
		if n.val.IsNull() {
			return &mcl.NullExpr{}, nil
		}
		return &mcl.ConstExpr{Val: n.val}, nil
	case *sqlCol:
		if n.table != "" {
			v, ok := aliases[strings.ToLower(n.table)]
			if !ok {
				return nil, errf(n.pos, "unknown table alias %q", n.table)
			}
			return &mcl.ProjExpr{Rec: &mcl.VarExpr{Name: v}, Attr: n.col}, nil
		}
		if len(tr.stmt.from) != 1 {
			return nil, errf(n.pos, "column %q must be qualified (multiple tables in FROM)", n.col)
		}
		v := aliases[strings.ToLower(tr.stmt.from[0].alias)]
		return &mcl.ProjExpr{Rec: &mcl.VarExpr{Name: v}, Attr: n.col}, nil
	case *sqlBin:
		if n.op == "like" {
			return tr.likeToMCL(n, aliases)
		}
		l, err := tr.toMCL(n.l, aliases, inAgg)
		if err != nil {
			return nil, err
		}
		r, err := tr.toMCL(n.r, aliases, inAgg)
		if err != nil {
			return nil, err
		}
		op, ok := mclOps[n.op]
		if !ok {
			return nil, fmt.Errorf("sql: unsupported operator %q", n.op)
		}
		return &mcl.BinExpr{Op: op, L: l, R: r}, nil
	case *sqlNot:
		inner, err := tr.toMCL(n.e, aliases, inAgg)
		if err != nil {
			return nil, err
		}
		return &mcl.NotExpr{E: inner}, nil
	case *sqlCall:
		args := make([]mcl.Expr, len(n.args))
		for i, a := range n.args {
			ae, err := tr.toMCL(a, aliases, inAgg)
			if err != nil {
				return nil, err
			}
			args[i] = ae
		}
		return &mcl.CallExpr{Name: n.name, Args: args}, nil
	case *sqlParam:
		return &mcl.ParamExpr{Name: n.name}, nil
	case *sqlAgg:
		return nil, errf(n.pos, "aggregate in a scalar context (did you mean GROUP BY?)")
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", e)
}

// likeToMCL lowers the common LIKE shapes onto string builtins:
// '%x%' → contains, 'x%' → startswith, '%x' → endswith, 'x' → equality.
func (tr *translator) likeToMCL(n *sqlBin, aliases map[string]string) (mcl.Expr, error) {
	lit, ok := n.r.(*sqlLit)
	if !ok || lit.val.Kind() != values.KindString {
		return nil, fmt.Errorf("sql: LIKE needs a string literal pattern")
	}
	pat := lit.val.Str()
	l, err := tr.toMCL(n.l, aliases, false)
	if err != nil {
		return nil, err
	}
	mk := func(fn, arg string) mcl.Expr {
		return &mcl.CallExpr{Name: fn, Args: []mcl.Expr{l, &mcl.ConstExpr{Val: values.NewString(arg)}}}
	}
	switch {
	case strings.HasPrefix(pat, "%") && strings.HasSuffix(pat, "%") && len(pat) >= 2:
		return mk("contains", strings.Trim(pat, "%")), nil
	case strings.HasSuffix(pat, "%"):
		return mk("startswith", strings.TrimSuffix(pat, "%")), nil
	case strings.HasPrefix(pat, "%"):
		return mk("endswith", strings.TrimPrefix(pat, "%")), nil
	default:
		if strings.Contains(pat, "%") || strings.Contains(pat, "_") {
			return nil, fmt.Errorf("sql: only prefix/suffix/substring LIKE patterns are supported")
		}
		return &mcl.BinExpr{Op: mcl.OpEq, L: l, R: &mcl.ConstExpr{Val: values.NewString(pat)}}, nil
	}
}

func containsAgg(e sqlExpr) bool {
	switch n := e.(type) {
	case *sqlAgg:
		return true
	case *sqlBin:
		return containsAgg(n.l) || containsAgg(n.r)
	case *sqlNot:
		return containsAgg(n.e)
	case *sqlCall:
		for _, a := range n.args {
			if containsAgg(a) {
				return true
			}
		}
	}
	return false
}
