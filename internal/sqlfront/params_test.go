package sqlfront

import (
	"testing"

	"vida/internal/mcl"
)

func TestSQLPositionalParams(t *testing.T) {
	comp, err := Translate("SELECT id FROM People WHERE age > $1 AND id < $2")
	if err != nil {
		t.Fatal(err)
	}
	got := mcl.Params(comp)
	if len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("params = %v, want [1 2]", got)
	}
}

func TestSQLQuestionMarkParams(t *testing.T) {
	comp, err := Translate("SELECT id FROM People WHERE age > ? AND name = ?")
	if err != nil {
		t.Fatal(err)
	}
	got := mcl.Params(comp)
	if len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("? params = %v, want auto-numbered [1 2]", got)
	}
}

func TestSQLNamedParams(t *testing.T) {
	comp, err := Translate("SELECT COUNT(*) FROM People WHERE age > $min")
	if err != nil {
		t.Fatal(err)
	}
	got := mcl.Params(comp)
	if len(got) != 1 || got[0] != "min" {
		t.Fatalf("params = %v, want [min]", got)
	}
	// The comprehension rendering re-parses with the hole intact (the
	// serve layer round-trips query text through TranslateSQL).
	reparsed, err := mcl.Parse(comp.String())
	if err != nil {
		t.Fatal(err)
	}
	if p := mcl.Params(reparsed); len(p) != 1 || p[0] != "min" {
		t.Fatalf("re-parsed params = %v", p)
	}
}

func TestSQLParamInHaving(t *testing.T) {
	comp, err := Translate(
		"SELECT city, COUNT(*) FROM People GROUP BY city HAVING COUNT(*) > $n")
	if err != nil {
		t.Fatal(err)
	}
	if p := mcl.Params(comp); len(p) != 1 || p[0] != "n" {
		t.Fatalf("HAVING params = %v, want [n]", p)
	}
}

func TestSQLBareDollarRejected(t *testing.T) {
	if _, err := Translate("SELECT id FROM People WHERE age > $"); err == nil {
		t.Fatal("bare $ should fail")
	}
}

func TestSQLMixedPlaceholdersRejected(t *testing.T) {
	// ?'s auto-numbering counts from 1 just like explicit ordinals, so
	// mixing the two styles would silently alias parameters.
	for _, q := range []string{
		"SELECT id FROM People WHERE age > $1 AND id < ?",
		"SELECT id FROM People WHERE age > ? AND id < $1",
	} {
		if _, err := Translate(q); err == nil {
			t.Fatalf("Translate(%q) should reject mixed placeholders", q)
		}
	}
	// Named parameters mix freely with ? (no numbering overlap).
	comp, err := Translate("SELECT id FROM People WHERE age > $min AND id < ?")
	if err != nil {
		t.Fatal(err)
	}
	if p := mcl.Params(comp); len(p) != 2 {
		t.Fatalf("params = %v", p)
	}
}
