package sqlfront

import (
	"strings"
	"testing"

	"vida/internal/mcl"
	"vida/internal/values"
)

func names(t *testing.T, v values.Value) string {
	t.Helper()
	parts := make([]string, 0, v.Len())
	for _, e := range v.Elems() {
		if e.Kind() == values.KindRecord {
			n, _ := e.Get("name")
			parts = append(parts, n.Str())
		} else {
			parts = append(parts, e.String())
		}
	}
	return strings.Join(parts, ",")
}

func TestOrderByLimit(t *testing.T) {
	v := run(t, `SELECT e.name FROM Employees e ORDER BY e.salary DESC LIMIT 2`)
	if v.Kind() != values.KindList {
		t.Fatalf("ordered result kind = %s", v.Kind())
	}
	if got := names(t, v); got != `"eve","ada"` {
		t.Fatalf("top-2 by salary = %s", got)
	}
}

func TestOrderByAliasAndOrdinal(t *testing.T) {
	// Output alias resolution.
	v := run(t, `SELECT e.name AS n, e.salary AS s FROM Employees e ORDER BY s LIMIT 1`)
	got, _ := v.Elems()[0].Get("n")
	if got.Str() != "bob" {
		t.Fatalf("order by alias: %s", v)
	}
	// Ordinal resolution.
	v = run(t, `SELECT e.name, e.salary FROM Employees e ORDER BY 2 DESC LIMIT 1`)
	got, _ = v.Elems()[0].Get("name")
	if got.Str() != "eve" {
		t.Fatalf("order by ordinal: %s", v)
	}
}

func TestOrderByMultiKey(t *testing.T) {
	v := run(t, `SELECT e.name FROM Employees e ORDER BY e.deptNo ASC, e.salary DESC`)
	if got := names(t, v); got != `"ada","bob","eve","dan"` {
		t.Fatalf("multi-key order = %s", got)
	}
}

func TestLimitOffset(t *testing.T) {
	v := run(t, `SELECT e.name FROM Employees e ORDER BY e.salary LIMIT 2 OFFSET 1`)
	if got := names(t, v); got != `"dan","ada"` {
		t.Fatalf("limit 2 offset 1 = %s", got)
	}
}

func TestBareLimitBoundsRows(t *testing.T) {
	v := run(t, `SELECT e.name FROM Employees e LIMIT 3`)
	if v.Len() != 3 {
		t.Fatalf("bare limit kept %d rows", v.Len())
	}
}

func TestOrderByExpressionNotInSelect(t *testing.T) {
	v := run(t, `SELECT e.name FROM Employees e ORDER BY e.salary * -1 LIMIT 1`)
	if got := names(t, v); got != `"eve"` {
		t.Fatalf("order by expression = %s", got)
	}
}

func TestOrderByParamLimit(t *testing.T) {
	comp, err := Translate(`SELECT e.name FROM Employees e ORDER BY e.salary DESC LIMIT $1 OFFSET $2`)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	bound := mcl.BindParams(comp, map[string]values.Value{
		"1": values.NewInt(1), "2": values.NewInt(1),
	})
	v, err := mcl.Eval(bound, env())
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if got := names(t, v); got != `"ada"` {
		t.Fatalf("limit $1 offset $2 = %s", got)
	}
}

func TestGroupByOrderByAggregate(t *testing.T) {
	v := run(t, `SELECT e.deptNo, SUM(e.salary) AS total FROM Employees e GROUP BY e.deptNo ORDER BY total DESC LIMIT 2`)
	if v.Len() != 2 {
		t.Fatalf("group-by order kept %d rows", v.Len())
	}
	first, _ := v.Elems()[0].Get("deptNo")
	second, _ := v.Elems()[1].Get("deptNo")
	if first.Int() != 10 || second.Int() != 20 {
		t.Fatalf("group totals order = %s", v)
	}
}

func TestGroupByOrderByAggregateNotInSelect(t *testing.T) {
	v := run(t, `SELECT e.deptNo FROM Employees e GROUP BY e.deptNo ORDER BY COUNT(*) DESC, e.deptNo LIMIT 1`)
	if v.Elems()[0].Int() != 10 {
		t.Fatalf("order by count(*) = %s", v)
	}
}

func TestDistinctOrderByLimit(t *testing.T) {
	v := run(t, `SELECT DISTINCT e.deptNo FROM Employees e ORDER BY e.deptNo DESC LIMIT 2`)
	if v.Len() != 2 || v.Elems()[0].Int() != 30 || v.Elems()[1].Int() != 20 {
		t.Fatalf("distinct order = %s", v)
	}
}

func TestOrderedTranslationIsParseableText(t *testing.T) {
	sqls := []string{
		`SELECT e.name FROM Employees e ORDER BY e.salary DESC, e.name LIMIT 3 OFFSET 1`,
		`SELECT e.name FROM Employees e LIMIT $1`,
		`SELECT e.deptNo, COUNT(*) AS c FROM Employees e GROUP BY e.deptNo ORDER BY c DESC LIMIT 2`,
	}
	for _, sql := range sqls {
		comp, err := Translate(sql)
		if err != nil {
			t.Fatalf("Translate(%q): %v", sql, err)
		}
		if _, err := mcl.Parse(comp.String()); err != nil {
			t.Fatalf("rendered comprehension for %q is not parseable: %v\n%s", sql, err, comp)
		}
	}
}

func TestOffsetWithoutLimit(t *testing.T) {
	v := run(t, `SELECT e.name FROM Employees e ORDER BY e.salary OFFSET 3`)
	if got := names(t, v); got != `"eve"` {
		t.Fatalf("offset without limit = %s", got)
	}
}

func TestGroupByOrderByOrdinal(t *testing.T) {
	v := run(t, `SELECT e.deptNo, SUM(e.salary) AS total FROM Employees e GROUP BY e.deptNo ORDER BY 2 ASC LIMIT 1`)
	if v.Len() != 1 {
		t.Fatalf("grouped ordinal order kept %d rows", v.Len())
	}
	d, _ := v.Elems()[0].Get("deptNo")
	if d.Int() != 30 {
		t.Fatalf("order by ordinal over group = %s", v)
	}
}

func TestGroupByOrderByKeyAlias(t *testing.T) {
	v := run(t, `SELECT e.deptNo AS d, COUNT(*) AS c FROM Employees e GROUP BY e.deptNo ORDER BY d DESC`)
	got := make([]int64, 0, v.Len())
	for _, e := range v.Elems() {
		d, _ := e.Get("d")
		got = append(got, d.Int())
	}
	if len(got) != 3 || got[0] != 30 || got[1] != 20 || got[2] != 10 {
		t.Fatalf("order by key alias over group = %v", got)
	}
}

func TestGroupByParamLimit(t *testing.T) {
	comp, err := Translate(`SELECT e.deptNo, SUM(e.salary) AS total FROM Employees e GROUP BY e.deptNo ORDER BY total DESC LIMIT $1 OFFSET $2`)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	bound := mcl.BindParams(comp, map[string]values.Value{
		"1": values.NewInt(1), "2": values.NewInt(1),
	})
	v, err := mcl.Eval(bound, env())
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if v.Len() != 1 {
		t.Fatalf("grouped limit $1 offset $2 kept %d rows", v.Len())
	}
	d, _ := v.Elems()[0].Get("deptNo")
	if d.Int() != 20 {
		t.Fatalf("grouped limit $1 offset $2 = %s", v)
	}
}
