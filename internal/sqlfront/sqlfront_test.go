package sqlfront

import (
	"strings"
	"testing"

	"vida/internal/mcl"
	"vida/internal/values"
)

// env sets up the paper's Employees/Departments data for end-to-end
// SQL-vs-comprehension equivalence checks.
func env() *mcl.Env {
	emp := func(id int64, name string, deptNo int64, salary float64) values.Value {
		return values.NewRecord(
			values.Field{Name: "id", Val: values.NewInt(id)},
			values.Field{Name: "name", Val: values.NewString(name)},
			values.Field{Name: "deptNo", Val: values.NewInt(deptNo)},
			values.Field{Name: "salary", Val: values.NewFloat(salary)},
		)
	}
	dept := func(id int64, name string) values.Value {
		return values.NewRecord(
			values.Field{Name: "id", Val: values.NewInt(id)},
			values.Field{Name: "deptName", Val: values.NewString(name)},
		)
	}
	return mcl.NewEnv(map[string]values.Value{
		"Employees": values.NewList(
			emp(1, "ada", 10, 100),
			emp(2, "bob", 10, 80),
			emp(3, "eve", 20, 120),
			emp(4, "dan", 30, 90),
		),
		"Departments": values.NewList(
			dept(10, "HR"),
			dept(20, "Eng"),
			dept(30, "Ops"),
		),
	})
}

func run(t *testing.T, sql string) values.Value {
	t.Helper()
	comp, err := Translate(sql)
	if err != nil {
		t.Fatalf("Translate(%q): %v", sql, err)
	}
	v, err := mcl.Eval(comp, env())
	if err != nil {
		t.Fatalf("eval of %q (%s): %v", sql, comp, err)
	}
	return v
}

func TestPaperCountQuery(t *testing.T) {
	// The exact SQL from paper §3.2.
	sql := `SELECT COUNT(e.id)
	        FROM Employees e JOIN Departments d ON (e.deptNo = d.id)
	        WHERE d.deptName = 'HR'`
	comp, err := Translate(sql)
	if err != nil {
		t.Fatal(err)
	}
	// The paper maps it to sum 1.
	c, ok := comp.(*mcl.Comprehension)
	if !ok || c.M.Name() != "sum" {
		t.Fatalf("translation = %s", comp)
	}
	if got := run(t, sql); got.Int() != 2 {
		t.Fatalf("HR count = %v, want 2", got)
	}
}

func TestProjection(t *testing.T) {
	got := run(t, `SELECT e.name AS n, e.salary FROM Employees e WHERE e.salary > 85`)
	if got.Kind() != values.KindBag || got.Len() != 3 {
		t.Fatalf("projection = %v", got)
	}
	if _, ok := got.Elems()[0].Get("n"); !ok {
		t.Fatalf("alias lost: %v", got.Elems()[0])
	}
	if _, ok := got.Elems()[0].Get("salary"); !ok {
		t.Fatalf("default name lost: %v", got.Elems()[0])
	}
}

func TestSelectStarSingleTable(t *testing.T) {
	got := run(t, `SELECT * FROM Departments`)
	if got.Len() != 3 {
		t.Fatalf("star = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	got := run(t, `SELECT DISTINCT e.deptNo FROM Employees e`)
	if got.Kind() != values.KindSet || got.Len() != 3 {
		t.Fatalf("distinct = %v", got)
	}
}

func TestUnqualifiedColumnsSingleTable(t *testing.T) {
	got := run(t, `SELECT name FROM Employees WHERE salary >= 100`)
	if got.Len() != 2 {
		t.Fatalf("unqualified = %v", got)
	}
}

func TestCommaJoin(t *testing.T) {
	got := run(t, `SELECT e.name FROM Employees e, Departments d
	               WHERE e.deptNo = d.id AND d.deptName = 'Eng'`)
	if got.Len() != 1 || got.Elems()[0].Str() != "eve" {
		t.Fatalf("comma join = %v", got)
	}
}

func TestMultipleAggregates(t *testing.T) {
	got := run(t, `SELECT COUNT(*) AS c, SUM(e.salary) AS s, AVG(e.salary) AS a,
	               MIN(e.salary) AS lo, MAX(e.salary) AS hi FROM Employees e`)
	if got.MustGet("c").Int() != 4 {
		t.Fatalf("count = %v", got)
	}
	if got.MustGet("s").Float() != 390 {
		t.Fatalf("sum = %v", got)
	}
	if got.MustGet("a").Float() != 97.5 {
		t.Fatalf("avg = %v", got)
	}
	if got.MustGet("lo").Float() != 80 || got.MustGet("hi").Float() != 120 {
		t.Fatalf("min/max = %v", got)
	}
}

func TestGroupBy(t *testing.T) {
	got := run(t, `SELECT e.deptNo, COUNT(*) AS c, SUM(e.salary) AS s
	               FROM Employees e GROUP BY e.deptNo`)
	if got.Len() != 3 {
		t.Fatalf("groups = %v", got)
	}
	byDept := map[int64]values.Value{}
	for _, g := range got.Elems() {
		byDept[g.MustGet("deptNo").Int()] = g
	}
	if byDept[10].MustGet("c").Int() != 2 || byDept[10].MustGet("s").Float() != 180 {
		t.Fatalf("dept 10 = %v", byDept[10])
	}
	if byDept[20].MustGet("c").Int() != 1 {
		t.Fatalf("dept 20 = %v", byDept[20])
	}
}

func TestGroupByWithJoinAndWhere(t *testing.T) {
	got := run(t, `SELECT d.deptName, COUNT(*) AS c
	               FROM Employees e JOIN Departments d ON e.deptNo = d.id
	               WHERE e.salary > 85
	               GROUP BY d.deptName`)
	names := map[string]int64{}
	for _, g := range got.Elems() {
		names[g.MustGet("deptName").Str()] = g.MustGet("c").Int()
	}
	if names["HR"] != 1 || names["Eng"] != 1 || names["Ops"] != 1 {
		t.Fatalf("grouped join = %v", got)
	}
}

func TestHaving(t *testing.T) {
	got := run(t, `SELECT e.deptNo, COUNT(*) AS c FROM Employees e
	               GROUP BY e.deptNo HAVING COUNT(*) > 1`)
	if got.Len() != 1 {
		t.Fatalf("having = %v", got)
	}
	if got.Elems()[0].MustGet("deptNo").Int() != 10 {
		t.Fatalf("having group = %v", got)
	}
}

func TestLike(t *testing.T) {
	if got := run(t, `SELECT name FROM Employees WHERE name LIKE 'a%'`); got.Len() != 1 {
		t.Fatalf("prefix like = %v", got)
	}
	if got := run(t, `SELECT name FROM Employees WHERE name LIKE '%a%'`); got.Len() != 2 {
		t.Fatalf("contains like = %v", got)
	}
	if got := run(t, `SELECT name FROM Employees WHERE name LIKE '%b'`); got.Len() != 1 {
		t.Fatalf("suffix like = %v", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	got := run(t, `SELECT UPPER(name) AS u FROM Employees WHERE LENGTH(name) = 3 AND id = 1`)
	if got.Len() != 1 || got.Elems()[0].Str() != "ADA" {
		t.Fatalf("functions = %v", got)
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	got := run(t, `SELECT e.name FROM Employees e WHERE e.salary * 2 >= 200 AND e.id <> 3`)
	if got.Len() != 1 || got.Elems()[0].Str() != "ada" {
		t.Fatalf("arith = %v", got)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM T`,
		`SELECT x FROM`,
		`SELECT a.x FROM T t WHERE`,
		`SELECT x FROM T ORDER BY`,               // missing key
		`SELECT x FROM T LIMIT`,                  // missing count
		`SELECT x FROM T LIMIT -1`,               // negative limit
		`SELECT x FROM T LIMIT 2.5`,              // fractional limit
		`SELECT x FROM T LIMIT x`,                // column limit
		`SELECT x FROM T ORDER BY 9`,             // ordinal out of range
		`SELECT COUNT(*) FROM T ORDER BY 1`,      // aggregate result has no rows to order
		`SELECT COUNT(*) FROM T LIMIT 3`,         // aggregate result has no rows to bound
		`SELECT x FROM T ORDER BY COUNT(*)`,      // aggregate key without GROUP BY
		`SELECT x, COUNT(*) FROM T`,              // non-aggregate without GROUP BY
		`SELECT x FROM T GROUP BY y`,             // x not grouped
		`SELECT * FROM A a, B b`,                 // ambiguous star
		`SELECT q.x FROM T t`,                    // unknown alias
		`SELECT x FROM A a, B b`,                 // unqualified with two tables
		`SELECT x FROM T t HAVING COUNT(*) > 1`,  // HAVING without GROUP BY
		`SELECT x FROM T WHERE name LIKE 'a%b'`,  // unsupported pattern
		`SELECT x FROM T WHERE 'unterminated`,    // lex error
		`SELECT COUNT(*) extra_tokens FROM T, ,`, // junk
	}
	for _, sql := range bad {
		if _, err := Translate(sql); err == nil {
			t.Fatalf("Translate(%q) should fail", sql)
		}
	}
}

func TestTranslationIsParseableText(t *testing.T) {
	// The rendered comprehension must round-trip through the mcl parser
	// (this is how Engine.QuerySQL consumes it).
	sqls := []string{
		`SELECT COUNT(e.id) FROM Employees e JOIN Departments d ON (e.deptNo = d.id) WHERE d.deptName = 'HR'`,
		`SELECT e.name AS n FROM Employees e WHERE e.salary > 85`,
		`SELECT e.deptNo, COUNT(*) AS c FROM Employees e GROUP BY e.deptNo`,
		`SELECT DISTINCT e.deptNo FROM Employees e`,
	}
	for _, sql := range sqls {
		comp, err := Translate(sql)
		if err != nil {
			t.Fatal(err)
		}
		text := comp.String()
		if _, err := mcl.Parse(text); err != nil {
			t.Fatalf("rendered translation unparseable for %q:\n%s\n%v", sql, text, err)
		}
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	got := run(t, `select e.name from Employees e where e.id = 1`)
	if got.Len() != 1 {
		t.Fatalf("lowercase keywords = %v", got)
	}
}

func TestStringEscapes(t *testing.T) {
	comp, err := Translate(`SELECT name FROM T WHERE name = 'O''Brien'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(comp.String(), `O'Brien`) {
		t.Fatalf("escaped quote lost: %s", comp)
	}
}
