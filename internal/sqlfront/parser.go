package sqlfront

import (
	"strconv"
	"strings"

	"vida/internal/mcl"
	"vida/internal/values"
)

// selectItem is one projection of the SELECT list.
type selectItem struct {
	expr  sqlExpr
	alias string
	star  bool // SELECT *
}

// tableRef is one FROM entry.
type tableRef struct {
	name  string // original-case table name
	alias string
	on    sqlExpr // join condition for JOIN ... ON entries (nil for first)
}

// aggKind classifies aggregate calls.
type aggKind uint8

const (
	aggNone aggKind = iota
	aggCount
	aggCountStar
	aggSum
	aggAvg
	aggMin
	aggMax
)

// sqlExpr is the SQL-side expression tree (converted to mcl later, once
// alias resolution context is known).
type sqlExpr interface{ sqlNode() }

type sqlCol struct {
	table string // may be empty (unqualified)
	col   string
	pos   int
}
type sqlLit struct{ val values.Value }
type sqlBin struct {
	op   string
	l, r sqlExpr
}
type sqlNot struct{ e sqlExpr }
type sqlAgg struct {
	kind aggKind
	arg  sqlExpr // nil for COUNT(*)
	pos  int
}
type sqlCall struct {
	name string
	args []sqlExpr
	pos  int
}

// sqlParam is a bind-parameter placeholder: $1..$n (positional, name is
// the ordinal), $name (named), or ? (auto-numbered left to right).
type sqlParam struct {
	name string
	pos  int
}

func (*sqlCol) sqlNode()   {}
func (*sqlLit) sqlNode()   {}
func (*sqlBin) sqlNode()   {}
func (*sqlNot) sqlNode()   {}
func (*sqlAgg) sqlNode()   {}
func (*sqlCall) sqlNode()  {}
func (*sqlParam) sqlNode() {}

// orderItem is one ORDER BY component.
type orderItem struct {
	expr sqlExpr
	desc bool
	pos  int
}

// selectStmt is a parsed SELECT.
type selectStmt struct {
	distinct bool
	items    []selectItem
	from     []tableRef
	where    sqlExpr
	groupBy  []*sqlCol
	having   sqlExpr
	orderBy  []orderItem
	limit    sqlExpr // nil = none
	offset   sqlExpr // nil = none
}

type parser struct {
	toks      []token
	pos       int
	qpos      int // count of '?' placeholders seen, for auto-numbering
	sawDollar bool
	dollarPos int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) isKw(kw string) bool {
	return p.cur().kind == tIdent && p.cur().text == kw
}

func (p *parser) eatKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.eatKw(kw) {
		return errf(p.cur().pos, "expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) isSym(s string) bool {
	return p.cur().kind == tSymbol && p.cur().text == s
}

func (p *parser) eatSym(s string) bool {
	if p.isSym(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.eatSym(s) {
		return errf(p.cur().pos, "expected %q", s)
	}
	return nil
}

var reservedKw = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "offset": true,
	"join": true, "inner": true,
	"on": true, "and": true, "or": true, "not": true, "as": true,
	"distinct": true, "null": true, "true": true, "false": true, "like": true,
}

func parseSelect(src string) (*selectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, errf(p.cur().pos, "unexpected %q after statement", p.cur().orig)
	}
	return stmt, nil
}

func (p *parser) parseSelectStmt() (*selectStmt, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	stmt := &selectStmt{}
	stmt.distinct = p.eatKw("distinct")

	// Select list.
	for {
		if p.isSym("*") {
			p.pos++
			stmt.items = append(stmt.items, selectItem{star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := selectItem{expr: e}
			if p.eatKw("as") {
				if p.cur().kind != tIdent {
					return nil, errf(p.cur().pos, "expected alias after AS")
				}
				item.alias = p.next().orig
			} else if p.cur().kind == tIdent && !reservedKw[p.cur().text] {
				item.alias = p.next().orig
			}
			stmt.items = append(stmt.items, item)
		}
		if !p.eatSym(",") {
			break
		}
	}

	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	// FROM list: table [alias] { (, table [alias]) | (JOIN table [alias] ON cond) }*
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.from = append(stmt.from, first)
	for {
		if p.eatSym(",") {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.from = append(stmt.from, tr)
			continue
		}
		if p.eatKw("inner") {
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
		} else if !p.eatKw("join") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		tr.on = cond
		stmt.from = append(stmt.from, tr)
	}

	if p.eatKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.where = w
	}
	if p.eatKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			col, ok := e.(*sqlCol)
			if !ok {
				return nil, errf(p.cur().pos, "GROUP BY supports column references only")
			}
			stmt.groupBy = append(stmt.groupBy, col)
			if !p.eatSym(",") {
				break
			}
		}
	}
	if p.eatKw("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.having = h
	}
	if p.eatKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			pos := p.cur().pos
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := orderItem{expr: e, pos: pos}
			if p.eatKw("desc") {
				item.desc = true
			} else {
				p.eatKw("asc")
			}
			stmt.orderBy = append(stmt.orderBy, item)
			if !p.eatSym(",") {
				break
			}
		}
	}
	if p.eatKw("limit") {
		e, err := p.parseLimitExpr("LIMIT")
		if err != nil {
			return nil, err
		}
		stmt.limit = e
	}
	if p.eatKw("offset") {
		e, err := p.parseLimitExpr("OFFSET")
		if err != nil {
			return nil, err
		}
		stmt.offset = e
	}
	return stmt, nil
}

// parseLimitExpr parses a LIMIT/OFFSET operand: a non-negative integer
// literal or a bind parameter.
func (p *parser) parseLimitExpr(what string) (sqlExpr, error) {
	pos := p.cur().pos
	e, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	switch n := e.(type) {
	case *sqlParam:
		return e, nil
	case *sqlLit:
		if n.val.Kind() == values.KindInt && n.val.Int() >= 0 {
			return e, nil
		}
	}
	return nil, errf(pos, "%s expects a non-negative integer or a bind parameter", what)
}

func (p *parser) parseTableRef() (tableRef, error) {
	if p.cur().kind != tIdent || reservedKw[p.cur().text] {
		return tableRef{}, errf(p.cur().pos, "expected table name")
	}
	tr := tableRef{name: p.next().orig}
	tr.alias = tr.name
	if p.cur().kind == tIdent && !reservedKw[p.cur().text] {
		tr.alias = p.next().orig
	} else if p.eatKw("as") {
		if p.cur().kind != tIdent {
			return tableRef{}, errf(p.cur().pos, "expected alias after AS")
		}
		tr.alias = p.next().orig
	}
	return tr, nil
}

// Expression grammar: or / and / not / cmp / add / mul / postfix / primary.
func (p *parser) parseExpr() (sqlExpr, error) { return p.parseOr() }

func (p *parser) parseOr() (sqlExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &sqlBin{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (sqlExpr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eatKw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &sqlBin{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot() (sqlExpr, error) {
	if p.eatKw("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlNot{e: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (sqlExpr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tSymbol {
		switch p.cur().text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			op := p.next().text
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &sqlBin{op: op, l: l, r: r}, nil
		}
	}
	if p.isKw("like") {
		p.pos++
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &sqlBin{op: "like", l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (sqlExpr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &sqlBin{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseMul() (sqlExpr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tSymbol && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		op := p.next().text
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		l = &sqlBin{op: op, l: l, r: r}
	}
	return l, nil
}

var aggNames = map[string]aggKind{
	"count": aggCount, "sum": aggSum, "avg": aggAvg, "min": aggMin, "max": aggMax,
}

var sqlBuiltins = map[string]string{
	"lower": "lower", "upper": "upper", "length": "len", "abs": "abs",
	"trim": "trim", "substr": "substr", "sqrt": "sqrt",
}

func (p *parser) parsePostfix() (sqlExpr, error) {
	t := p.cur()
	switch t.kind {
	case tParam:
		p.pos++
		if isOrdinal(t.text) {
			// Mixing $n with ? would make ?'s auto-numbering collide with
			// the explicit ordinals (both count from 1); forbid it, as the
			// PostgreSQL drivers do.
			if p.qpos > 0 {
				return nil, errf(t.pos, "cannot mix $%s with ? placeholders in one statement", t.text)
			}
			p.sawDollar, p.dollarPos = true, t.pos
		}
		return &sqlParam{name: t.text, pos: t.pos}, nil
	case tNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, errf(t.pos, "bad number %q", t.text)
			}
			return &sqlLit{val: values.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.pos, "bad number %q", t.text)
		}
		return &sqlLit{val: values.NewInt(n)}, nil
	case tString:
		p.pos++
		return &sqlLit{val: values.NewString(t.text)}, nil
	case tSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.pos++
			e, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			return &sqlBin{op: "-", l: &sqlLit{val: values.NewInt(0)}, r: e}, nil
		}
		if t.text == "?" {
			if p.sawDollar {
				return nil, errf(t.pos, "cannot mix ? with $n placeholders in one statement (first $n at offset %d)", p.dollarPos)
			}
			p.pos++
			p.qpos++
			return &sqlParam{name: strconv.Itoa(p.qpos), pos: t.pos}, nil
		}
		return nil, errf(t.pos, "unexpected %q", t.orig)
	case tIdent:
		switch t.text {
		case "null":
			p.pos++
			return &sqlLit{val: values.Null}, nil
		case "true":
			p.pos++
			return &sqlLit{val: values.True}, nil
		case "false":
			p.pos++
			return &sqlLit{val: values.False}, nil
		}
		// Aggregate?
		if kind, isAgg := aggNames[t.text]; isAgg && p.toks[p.pos+1].kind == tSymbol && p.toks[p.pos+1].text == "(" {
			p.pos += 2
			if kind == aggCount && p.isSym("*") {
				p.pos++
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return &sqlAgg{kind: aggCountStar, pos: t.pos}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &sqlAgg{kind: kind, arg: arg, pos: t.pos}, nil
		}
		// Scalar function?
		if fn, isFn := sqlBuiltins[t.text]; isFn && p.toks[p.pos+1].kind == tSymbol && p.toks[p.pos+1].text == "(" {
			p.pos += 2
			var args []sqlExpr
			if !p.isSym(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.eatSym(",") {
						break
					}
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &sqlCall{name: fn, args: args, pos: t.pos}, nil
		}
		if reservedKw[t.text] {
			return nil, errf(t.pos, "unexpected keyword %q", t.orig)
		}
		p.pos++
		// Qualified column a.b ?
		if p.eatSym(".") {
			if p.cur().kind != tIdent {
				return nil, errf(p.cur().pos, "expected column after '.'")
			}
			col := p.next().orig
			return &sqlCol{table: t.orig, col: col, pos: t.pos}, nil
		}
		return &sqlCol{col: t.orig, pos: t.pos}, nil
	}
	return nil, errf(t.pos, "unexpected end of expression")
}

// isOrdinal reports whether a parameter name is positional ($1..$n).
func isOrdinal(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] < '0' || name[i] > '9' {
			return false
		}
	}
	return true
}

// mclOps maps SQL operators to calculus operators.
var mclOps = map[string]mcl.BinOp{
	"=": mcl.OpEq, "<>": mcl.OpNeq, "!=": mcl.OpNeq,
	"<": mcl.OpLt, "<=": mcl.OpLe, ">": mcl.OpGt, ">=": mcl.OpGe,
	"+": mcl.OpAdd, "-": mcl.OpSub, "*": mcl.OpMul, "/": mcl.OpDiv, "%": mcl.OpMod,
	"and": mcl.OpAnd, "or": mcl.OpOr,
}
