// Package docstore implements the document-store baseline of the paper's
// evaluation (its stand-in for MongoDB, DESIGN.md substitutions):
// collections of binary-JSON documents persisted to an append-only file,
// equality/range filters with optional projection, and a hash index per
// field. Importing JSON re-encodes every document into the binary format
// — the time- AND space-consuming step the paper observed ("the imported
// JSON data reached 12GB, twice the space of the raw JSON dataset"),
// reproduced here as experiment E5.
package docstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vida/internal/basequery"
	"vida/internal/bsonlite"
	"vida/internal/values"
)

// Store is a document database instance rooted in a directory.
type Store struct {
	mu          sync.Mutex
	dir         string
	collections map[string]*Collection
}

// Collection holds the encoded documents of one dataset.
type Collection struct {
	Name    string
	docs    [][]byte
	indexes map[string]map[uint64][]int // field -> value hash -> doc ids
	path    string
}

// Open creates (or reuses) a store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, collections: map[string]*Collection{}}, nil
}

// CreateCollection registers an empty collection.
func (s *Store) CreateCollection(name string) (*Collection, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.collections[name]; dup {
		return nil, fmt.Errorf("docstore: collection %q exists", name)
	}
	c := &Collection{
		Name:    name,
		indexes: map[string]map[uint64][]int{},
		path:    filepath.Join(s.dir, sanitize(name)+".docs"),
	}
	s.collections[name] = c
	return c, nil
}

// Collection returns a registered collection.
func (s *Store) Collection(name string) (*Collection, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[name]
	return c, ok
}

// Collections lists collection names.
func (s *Store) Collections() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.collections))
	for n := range s.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, name)
}

// Insert encodes and appends one document.
func (c *Collection) Insert(doc values.Value) error {
	b, err := bsonlite.Marshal(doc)
	if err != nil {
		return err
	}
	id := len(c.docs)
	c.docs = append(c.docs, b)
	for field, ix := range c.indexes {
		v, ok, err := bsonlite.GetField(b, field)
		if err != nil {
			return err
		}
		if ok && !v.IsNull() {
			ix[v.Hash()] = append(ix[v.Hash()], id)
		}
	}
	return nil
}

// recordSize is the storage footprint of one document: MongoDB's
// classic record allocation rounds each record up to a power of two so
// documents can grow in place — a large part of why the paper saw the
// imported JSON reach twice its raw size.
func recordSize(docLen int) int64 {
	need := docLen + 16 // record header (length, next/prev offsets)
	size := 32
	for size < need {
		size <<= 1
	}
	return int64(size)
}

// FinishLoad persists the collection file: each document occupies its
// padded power-of-two record.
func (c *Collection) FinishLoad() error {
	f, err := os.Create(c.path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, 16)
	for _, d := range c.docs {
		rec := recordSize(len(d))
		binary.LittleEndian.PutUint32(hdr, uint32(len(d)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(rec))
		if _, err := f.Write(hdr); err != nil {
			return err
		}
		if _, err := f.Write(d); err != nil {
			return err
		}
		if pad := rec - int64(len(d)) - 16; pad > 0 {
			if _, err := f.Write(make([]byte, pad)); err != nil {
				return err
			}
		}
	}
	return nil
}

// NumDocs returns the document count.
func (c *Collection) NumDocs() int { return len(c.docs) }

// SizeBytes reports the allocated storage footprint (padded records) —
// compare with the raw JSON size for the paper's 2× observation.
func (c *Collection) SizeBytes() int64 {
	var total int64
	for _, d := range c.docs {
		total += recordSize(len(d))
	}
	return total
}

// EnsureIndex builds a hash index on a top-level field.
func (c *Collection) EnsureIndex(field string) error {
	if _, ok := c.indexes[field]; ok {
		return nil
	}
	ix := map[uint64][]int{}
	for id, d := range c.docs {
		v, ok, err := bsonlite.GetField(d, field)
		if err != nil {
			return err
		}
		if ok && !v.IsNull() {
			ix[v.Hash()] = append(ix[v.Hash()], id)
		}
	}
	c.indexes[field] = ix
	return nil
}

// Find streams documents matching all predicates, projecting the given
// top-level fields (nil = whole documents). An equality predicate on an
// indexed field narrows the candidate set before filtering.
func (c *Collection) Find(fields []string, preds []basequery.Pred, yield func(values.Value) error) error {
	candidates := -1 // -1 = full scan
	var ids []int
	for _, p := range preds {
		if p.Op != basequery.OpEq {
			continue
		}
		if ix, ok := c.indexes[p.Col]; ok {
			ids = ix[p.Val.Hash()]
			candidates = len(ids)
			break
		}
	}
	emit := func(id int) error {
		d := c.docs[id]
		for _, p := range preds {
			v, _, err := bsonlite.GetField(d, p.Col)
			if err != nil {
				return err
			}
			if !p.Eval(v) {
				return nil
			}
		}
		var rec values.Value
		if fields == nil {
			v, err := bsonlite.Unmarshal(d)
			if err != nil {
				return err
			}
			rec = v
		} else {
			fs := make([]values.Field, len(fields))
			for i, f := range fields {
				v, _, err := bsonlite.GetField(d, f)
				if err != nil {
					return err
				}
				fs[i] = values.Field{Name: f, Val: v}
			}
			rec = values.NewRecord(fs...)
		}
		return yield(rec)
	}
	if candidates >= 0 {
		for _, id := range ids {
			if err := emit(id); err != nil {
				return err
			}
		}
		return nil
	}
	for id := range c.docs {
		if err := emit(id); err != nil {
			return err
		}
	}
	return nil
}

// Doc decodes one document by id (tests, integration wrappers).
func (c *Collection) Doc(id int) (values.Value, error) {
	if id < 0 || id >= len(c.docs) {
		return values.Null, fmt.Errorf("docstore: doc %d out of range", id)
	}
	return bsonlite.Unmarshal(c.docs[id])
}
