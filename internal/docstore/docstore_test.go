package docstore

import (
	"fmt"
	"os"
	"testing"

	"vida/internal/basequery"
	"vida/internal/values"
)

func doc(id int64, name string, vol float64) values.Value {
	return values.NewRecord(
		values.Field{Name: "id", Val: values.NewInt(id)},
		values.Field{Name: "name", Val: values.NewString(name)},
		values.Field{Name: "volume", Val: values.NewFloat(vol)},
		values.Field{Name: "meta", Val: values.NewRecord(
			values.Field{Name: "algo", Val: values.NewString("a")},
		)},
	)
}

func load(t *testing.T, n int) (*Store, *Collection) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateCollection("regions")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.Insert(doc(int64(i%10), fmt.Sprintf("r%d", i), float64(i)*1.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	return s, c
}

func TestInsertFind(t *testing.T) {
	_, c := load(t, 100)
	if c.NumDocs() != 100 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
	var out []values.Value
	preds := []basequery.Pred{{Col: "volume", Op: basequery.OpGt, Val: values.NewFloat(140)}}
	if err := c.Find(nil, preds, func(v values.Value) error {
		out = append(out, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// volume = i*1.5 > 140 → i >= 94 → 6 docs.
	if len(out) != 6 {
		t.Fatalf("matches = %d", len(out))
	}
	// Whole docs decode with nested structure.
	if out[0].MustGet("meta").MustGet("algo").Str() != "a" {
		t.Fatalf("nested lost: %v", out[0])
	}
}

func TestProjection(t *testing.T) {
	_, c := load(t, 10)
	var out []values.Value
	if err := c.Find([]string{"id"}, nil, func(v values.Value) error {
		out = append(out, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if out[0].Len() != 1 {
		t.Fatalf("projection leaked: %v", out[0])
	}
}

func TestIndexNarrowsEquality(t *testing.T) {
	_, c := load(t, 1000)
	if err := c.EnsureIndex("id"); err != nil {
		t.Fatal(err)
	}
	var out []values.Value
	preds := []basequery.Pred{{Col: "id", Op: basequery.OpEq, Val: values.NewInt(3)}}
	if err := c.Find([]string{"name"}, preds, func(v values.Value) error {
		out = append(out, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("indexed find = %d, want 100", len(out))
	}
	// Index must agree with full scan.
	var full []values.Value
	c2 := &Collection{docs: c.docs, indexes: map[string]map[uint64][]int{}}
	if err := c2.Find([]string{"name"}, preds, func(v values.Value) error {
		full = append(full, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(full) != len(out) {
		t.Fatalf("index diverges from scan: %d vs %d", len(out), len(full))
	}
}

func TestIndexMaintainedAcrossInserts(t *testing.T) {
	s, _ := Open(t.TempDir())
	c, _ := s.CreateCollection("x")
	if err := c.EnsureIndex("id"); err != nil {
		t.Fatal(err)
	}
	_ = c.Insert(doc(7, "later", 1))
	var out []values.Value
	preds := []basequery.Pred{{Col: "id", Op: basequery.OpEq, Val: values.NewInt(7)}}
	_ = c.Find(nil, preds, func(v values.Value) error { out = append(out, v); return nil })
	if len(out) != 1 {
		t.Fatalf("index missed post-index insert: %d", len(out))
	}
}

func TestSizeAmplification(t *testing.T) {
	// The encoded size must exceed a compact raw-JSON rendering: field
	// names repeat per document plus framing overhead (paper: Mongo
	// import reached 2x the raw JSON size).
	_, c := load(t, 500)
	var rawJSON int64
	for i := 0; i < 500; i++ {
		rawJSON += int64(len(fmt.Sprintf(`{"id":%d,"name":"r%d","volume":%g,"meta":{"algo":"a"}}`, i%10, i, float64(i)*1.5)))
	}
	if c.SizeBytes() <= rawJSON {
		t.Fatalf("no space amplification: encoded=%d raw=%d", c.SizeBytes(), rawJSON)
	}
}

func TestPersistedFile(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	c, _ := s.CreateCollection("r")
	_ = c.Insert(doc(1, "x", 2))
	if err := c.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(dir + "/r.docs")
	if err != nil || fi.Size() == 0 {
		t.Fatalf("collection file missing: %v", err)
	}
}

func TestDocAccess(t *testing.T) {
	_, c := load(t, 5)
	v, err := c.Doc(2)
	if err != nil || v.MustGet("name").Str() != "r2" {
		t.Fatalf("Doc(2) = %v, %v", v, err)
	}
	if _, err := c.Doc(99); err == nil {
		t.Fatal("out of range doc accepted")
	}
}

func TestDuplicateCollection(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.CreateCollection("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateCollection("c"); err == nil {
		t.Fatal("duplicate collection accepted")
	}
	if got := s.Collections(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("collections = %v", got)
	}
}
