// Package sched implements the shared morsel scheduler: one fixed pool
// of workers that executes the morsels of every in-flight query. Before
// this pool existed each query fanned out its own GOMAXPROCS goroutines,
// so N concurrent queries oversubscribed the machine with N×cores
// runnable goroutines; now all queries share the same workers and each
// worker round-robins between the active jobs, which keeps the CPU
// saturated without oversubscription and gives short queries a share of
// the machine even while a long scan is running (morsel-driven
// scheduling in the style of Leis et al., applied across queries).
package sched

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"vida/internal/faultinject"
)

// ErrClosed is returned by Run when the pool has been shut down.
var ErrClosed = errors.New("sched: pool closed")

// PanicError is a panic recovered at a goroutine boundary (a pool
// worker, a streaming producer), converted into the owning query's
// error so one poisoned pipeline cannot take the process — or the
// shared worker pool — down with it. Stack holds the panicking
// goroutine's stack at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is logged at recovery, not
// repeated in the message.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic recovered: %v", e.Value)
}

// Pool is a fixed set of workers executing tasks from every submitted
// job. Jobs are dispatched round-robin one task at a time, so concurrent
// jobs interleave at morsel granularity instead of queuing behind each
// other.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []*job // jobs that still have undispatched tasks
	rr     int    // next ring slot to serve
	closed bool
	wg     sync.WaitGroup

	workers int
	jobs    atomic.Int64 // jobs completed
	tasks   atomic.Int64 // tasks executed
	panics  atomic.Int64 // task panics recovered
}

// job is one Run call: n independent tasks plus completion bookkeeping.
// next/inFlight/failed are guarded by the pool mutex.
type job struct {
	ctx      context.Context
	run      func(task int) error
	n        int
	next     int
	inFlight int
	failed   bool
	err      error
	done     chan struct{}
}

// NewPool starts a pool with the given number of workers (<=0 means
// runtime.GOMAXPROCS(0)).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

var (
	defaultPool *Pool
	defaultOnce sync.Once
)

// Default returns the process-wide shared pool, created lazily with
// GOMAXPROCS workers. Library callers that never configure a pool all
// land here, which is what makes the scheduler global: every engine's
// parallel scans draw from the same workers.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Stats is a snapshot of pool activity.
type Stats struct {
	Workers         int   `json:"workers"`
	ActiveJobs      int   `json:"active_jobs"`
	JobsRun         int64 `json:"jobs_run"`
	TasksRun        int64 `json:"tasks_run"`
	PanicsRecovered int64 `json:"panics_recovered"`
}

// StatsSnapshot returns pool counters.
func (p *Pool) StatsSnapshot() Stats {
	p.mu.Lock()
	active := len(p.ring)
	p.mu.Unlock()
	return Stats{
		Workers:         p.workers,
		ActiveJobs:      active,
		JobsRun:         p.jobs.Load(),
		TasksRun:        p.tasks.Load(),
		PanicsRecovered: p.panics.Load(),
	}
}

// Run executes tasks 0..n-1 on the pool workers and blocks until all
// dispatched tasks have finished. The first task error stops dispatch of
// the remaining tasks and is returned; ctx cancellation stops dispatch
// and returns the ctx error. Tasks of concurrent Run calls interleave.
func (p *Pool) Run(ctx context.Context, n int, run func(task int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{ctx: ctx, run: run, n: n, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.ring = append(p.ring, j)
	p.mu.Unlock()
	p.cond.Broadcast()
	<-j.done
	p.jobs.Add(1)
	if j.err != nil {
		return j.err
	}
	return ctx.Err()
}

// Close stops the workers. In-flight tasks finish; jobs with
// undispatched tasks fail with ErrClosed. Close must not be called on
// the Default pool.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, j := range p.ring {
		j.failed = true
		if j.err == nil {
			j.err = ErrClosed
		}
		j.maybeCompleteLocked()
	}
	p.ring = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		j, task, ok := p.take()
		if !ok {
			return
		}
		err := p.runTask(j, task)
		p.tasks.Add(1)
		p.finish(j, err)
	}
}

// runTask executes one morsel inside a recover barrier: a panicking
// task fails its own job with a PanicError instead of crashing the
// worker (which would kill every in-flight query and, once all workers
// died, the whole service). The stack is logged once at recovery.
func (p *Pool) runTask(j *job, task int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			perr := &PanicError{Value: r, Stack: debug.Stack()}
			slog.Error("recovered panic in task",
				"component", "sched", "task", task, "panic", fmt.Sprint(r), "stack", string(perr.Stack))
			err = perr
		}
	}()
	if err := faultinject.Hit(faultinject.PoolStall); err != nil {
		return err
	}
	return j.run(task)
}

// take hands out the next task, rotating between active jobs. Jobs whose
// dispatch is over (exhausted, failed or cancelled) are retired from the
// ring on the way; completion fires once their in-flight tasks drain.
func (p *Pool) take() (*job, int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, 0, false
		}
		for len(p.ring) > 0 {
			idx := p.rr % len(p.ring)
			j := p.ring[idx]
			if j.failed || j.next >= j.n || j.ctx.Err() != nil {
				// Dispatch is over for this job: retire it (the swap keeps
				// the ring compact) and re-examine the slot.
				p.ring[idx] = p.ring[len(p.ring)-1]
				p.ring = p.ring[:len(p.ring)-1]
				j.maybeCompleteLocked()
				continue
			}
			task := j.next
			j.next++
			j.inFlight++
			p.rr = idx + 1
			return j, task, true
		}
		p.cond.Wait()
	}
}

// finish retires one executed task and records its error (first error
// wins and stops further dispatch).
func (p *Pool) finish(j *job, err error) {
	p.mu.Lock()
	j.inFlight--
	if err != nil && !j.failed {
		j.failed = true
		j.err = err
	}
	j.maybeCompleteLocked()
	p.mu.Unlock()
}

// maybeCompleteLocked closes the job's done channel once no more tasks
// will be dispatched and none are in flight. Safe to call repeatedly.
func (j *job) maybeCompleteLocked() {
	if j.inFlight != 0 {
		return
	}
	if j.next < j.n && !j.failed && j.ctx.Err() == nil {
		return
	}
	select {
	case <-j.done:
	default:
		close(j.done)
	}
}
