package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var hit [100]atomic.Int32
	if err := p.Run(context.Background(), len(hit), func(i int) error {
		hit[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hit {
		if got := hit[i].Load(); got != 1 {
			t.Fatalf("task %d executed %d times", i, got)
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if err := p.Run(context.Background(), 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorStopsDispatch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	boom := errors.New("boom")
	var ran atomic.Int32
	err := p.Run(context.Background(), 1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("dispatch did not stop: %d tasks ran", n)
	}
}

func TestCancellationStopsDispatch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := p.Run(ctx, 100000, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100000 {
		t.Fatalf("dispatch did not stop: %d tasks ran", n)
	}
}

func TestCancelledBeforeDispatch(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.Run(ctx, 10, func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConcurrentJobsInterleave verifies that a short job completes while
// a long job is still running: dispatch must rotate between jobs rather
// than draining one before starting the next.
func TestConcurrentJobsInterleave(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	longDone := make(chan struct{})
	shortDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.Run(context.Background(), 400, func(int) error {
			select {
			case <-shortDone:
			default:
				time.Sleep(time.Millisecond)
			}
			return nil
		})
		close(longDone)
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // let the long job occupy the pool
		p.Run(context.Background(), 4, func(int) error { return nil })
		close(shortDone)
	}()
	select {
	case <-shortDone:
	case <-longDone:
		t.Fatal("long job finished before the short job was served")
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock")
	}
	wg.Wait()
}

func TestManyConcurrentJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for q := 0; q < 16; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(context.Background(), 50, func(int) error {
				total.Add(1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 16*50 {
		t.Fatalf("ran %d tasks, want %d", got, 16*50)
	}
	st := p.StatsSnapshot()
	if st.JobsRun != 16 || st.TasksRun < 16*50 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCloseFailsPendingJobs(t *testing.T) {
	p := NewPool(1)
	started := make(chan struct{})
	release := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- p.Run(context.Background(), 100, func(i int) error {
			if i == 0 {
				close(started)
				<-release
			}
			return nil
		})
	}()
	<-started
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	p.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := p.Run(context.Background(), 1, func(int) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
}
