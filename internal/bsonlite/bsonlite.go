// Package bsonlite implements a compact binary JSON serialization modeled
// on BSON. ViDa uses it in three places: as the docstore baseline's on-disk
// document format (reproducing MongoDB's import behaviour, including its
// space overhead relative to raw JSON), as one of the candidate cache
// layouts for JSON-carrying attributes (paper Figure 4b), and as the
// intermediate-result format chosen when downstream queries want binary
// JSON (paper §5 "Re-using and re-shaping results").
//
// Wire format (little-endian, BSON-inspired):
//
//	document := int32 totalSize, element*, 0x00
//	element  := typeByte, cstring name, payload
//	types    := 0x01 float64 | 0x02 string(int32 len, bytes, 0x00)
//	          | 0x03 document | 0x04 array(document with "0","1",... keys)
//	          | 0x08 bool(byte) | 0x0A null | 0x12 int64
//
// Unlike encoding/json round trips, decoding reproduces the original
// values.Value exactly (ints stay ints).
package bsonlite

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"vida/internal/values"
)

// Element type tags (BSON-compatible where overlapping).
const (
	tagFloat  = 0x01
	tagString = 0x02
	tagDoc    = 0x03
	tagArray  = 0x04
	tagBool   = 0x08
	tagNull   = 0x0A
	tagInt    = 0x12
)

// Marshal encodes a record value as a document. Non-record roots are
// wrapped in a single-field document {"": v} so any value round-trips.
func Marshal(v values.Value) ([]byte, error) {
	buf := make([]byte, 0, 64)
	return appendDoc(buf, v)
}

func appendDoc(buf []byte, v values.Value) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // size placeholder
	var err error
	switch v.Kind() {
	case values.KindRecord:
		for _, f := range v.Fields() {
			buf, err = appendElement(buf, f.Name, f.Val)
			if err != nil {
				return nil, err
			}
		}
	case values.KindList, values.KindBag, values.KindSet, values.KindArray:
		for i, e := range v.Elems() {
			buf, err = appendElement(buf, strconv.Itoa(i), e)
			if err != nil {
				return nil, err
			}
		}
	default:
		buf, err = appendElement(buf, "", v)
		if err != nil {
			return nil, err
		}
	}
	buf = append(buf, 0)
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start))
	return buf, nil
}

func appendElement(buf []byte, name string, v values.Value) ([]byte, error) {
	switch v.Kind() {
	case values.KindNull:
		buf = append(buf, tagNull)
		buf = appendCString(buf, name)
	case values.KindBool:
		buf = append(buf, tagBool)
		buf = appendCString(buf, name)
		if v.Bool() {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case values.KindInt:
		buf = append(buf, tagInt)
		buf = appendCString(buf, name)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
	case values.KindFloat:
		buf = append(buf, tagFloat)
		buf = appendCString(buf, name)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	case values.KindString:
		buf = append(buf, tagString)
		buf = appendCString(buf, name)
		s := v.Str()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)+1))
		buf = append(buf, s...)
		buf = append(buf, 0)
	case values.KindRecord:
		buf = append(buf, tagDoc)
		buf = appendCString(buf, name)
		return appendDoc(buf, v)
	case values.KindList, values.KindBag, values.KindSet, values.KindArray:
		buf = append(buf, tagArray)
		buf = appendCString(buf, name)
		return appendDoc(buf, v)
	default:
		return nil, fmt.Errorf("bsonlite: cannot encode kind %s", v.Kind())
	}
	return buf, nil
}

func appendCString(buf []byte, s string) []byte {
	buf = append(buf, s...)
	return append(buf, 0)
}

// Unmarshal decodes a document produced by Marshal back into a Value.
// Documents whose only element has an empty name decode to that element
// (undoing the wrapping Marshal applies to non-record roots). Array
// documents (all-numeric ascending keys starting at "0" — and at least one
// element) decode to lists.
func Unmarshal(doc []byte) (values.Value, error) {
	v, _, err := readDoc(doc, 0)
	return v, err
}

func readDoc(buf []byte, off int) (values.Value, int, error) {
	if off+4 > len(buf) {
		return values.Null, 0, fmt.Errorf("bsonlite: truncated document header at %d", off)
	}
	size := int(binary.LittleEndian.Uint32(buf[off:]))
	end := off + size
	if size < 5 || end > len(buf) {
		return values.Null, 0, fmt.Errorf("bsonlite: bad document size %d at %d", size, off)
	}
	pos := off + 4
	var fields []values.Field
	arrayLike := true
	for pos < end-1 {
		tag := buf[pos]
		pos++
		name, npos, err := readCString(buf, pos, end-1)
		if err != nil {
			return values.Null, 0, err
		}
		pos = npos
		v, vpos, err := readPayload(buf, pos, tag)
		if err != nil {
			return values.Null, 0, err
		}
		pos = vpos
		if name != strconv.Itoa(len(fields)) {
			arrayLike = false
		}
		fields = append(fields, values.Field{Name: name, Val: v})
	}
	if buf[end-1] != 0 {
		return values.Null, 0, fmt.Errorf("bsonlite: document missing terminator at %d", end-1)
	}
	// Unwrap single anonymous element.
	if len(fields) == 1 && fields[0].Name == "" {
		return fields[0].Val, end, nil
	}
	if arrayLike && len(fields) > 0 {
		elems := make([]values.Value, len(fields))
		for i, f := range fields {
			elems[i] = f.Val
		}
		return values.NewList(elems...), end, nil
	}
	return values.NewRecord(fields...), end, nil
}

func readPayload(buf []byte, pos int, tag byte) (values.Value, int, error) {
	switch tag {
	case tagNull:
		return values.Null, pos, nil
	case tagBool:
		if pos >= len(buf) {
			return values.Null, 0, fmt.Errorf("bsonlite: truncated bool at %d", pos)
		}
		return values.NewBool(buf[pos] != 0), pos + 1, nil
	case tagInt:
		if pos+8 > len(buf) {
			return values.Null, 0, fmt.Errorf("bsonlite: truncated int at %d", pos)
		}
		return values.NewInt(int64(binary.LittleEndian.Uint64(buf[pos:]))), pos + 8, nil
	case tagFloat:
		if pos+8 > len(buf) {
			return values.Null, 0, fmt.Errorf("bsonlite: truncated float at %d", pos)
		}
		return values.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))), pos + 8, nil
	case tagString:
		if pos+4 > len(buf) {
			return values.Null, 0, fmt.Errorf("bsonlite: truncated string header at %d", pos)
		}
		n := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if n < 1 || pos+n > len(buf) {
			return values.Null, 0, fmt.Errorf("bsonlite: bad string length %d at %d", n, pos)
		}
		return values.NewString(string(buf[pos : pos+n-1])), pos + n, nil
	case tagDoc, tagArray:
		return readDoc(buf, pos)
	}
	return values.Null, 0, fmt.Errorf("bsonlite: unknown tag 0x%02x at %d", tag, pos)
}

func readCString(buf []byte, pos, limit int) (string, int, error) {
	for i := pos; i < limit; i++ {
		if buf[i] == 0 {
			return string(buf[pos:i]), i + 1, nil
		}
	}
	return "", 0, fmt.Errorf("bsonlite: unterminated cstring at %d", pos)
}

// GetField extracts a single top-level field from an encoded document
// without decoding the rest — the cheap navigation that makes binary JSON
// an attractive cache layout (paper Figure 4b). It returns false if the
// field is absent.
func GetField(doc []byte, name string) (values.Value, bool, error) {
	if len(doc) < 5 {
		return values.Null, false, fmt.Errorf("bsonlite: document too short")
	}
	size := int(binary.LittleEndian.Uint32(doc))
	if size > len(doc) {
		return values.Null, false, fmt.Errorf("bsonlite: bad document size")
	}
	end := size
	pos := 4
	for pos < end-1 {
		tag := doc[pos]
		pos++
		fname, npos, err := readCString(doc, pos, end-1)
		if err != nil {
			return values.Null, false, err
		}
		pos = npos
		if fname == name {
			v, _, err := readPayload(doc, pos, tag)
			if err != nil {
				return values.Null, false, err
			}
			return v, true, nil
		}
		// Skip payload without decoding.
		skip, err := payloadSize(doc, pos, tag)
		if err != nil {
			return values.Null, false, err
		}
		pos += skip
	}
	return values.Null, false, nil
}

func payloadSize(buf []byte, pos int, tag byte) (int, error) {
	switch tag {
	case tagNull:
		return 0, nil
	case tagBool:
		return 1, nil
	case tagInt, tagFloat:
		return 8, nil
	case tagString:
		if pos+4 > len(buf) {
			return 0, fmt.Errorf("bsonlite: truncated string header at %d", pos)
		}
		return 4 + int(binary.LittleEndian.Uint32(buf[pos:])), nil
	case tagDoc, tagArray:
		if pos+4 > len(buf) {
			return 0, fmt.Errorf("bsonlite: truncated subdocument at %d", pos)
		}
		return int(binary.LittleEndian.Uint32(buf[pos:])), nil
	}
	return 0, fmt.Errorf("bsonlite: unknown tag 0x%02x at %d", tag, pos)
}

// DocSize returns the total encoded size of the document starting at the
// beginning of doc, letting callers slice documents out of larger buffers.
func DocSize(doc []byte) (int, error) {
	if len(doc) < 4 {
		return 0, fmt.Errorf("bsonlite: document too short")
	}
	return int(binary.LittleEndian.Uint32(doc)), nil
}
