package bsonlite

import (
	"math/rand"
	"testing"

	"vida/internal/values"
)

func roundTrip(t *testing.T, v values.Value) values.Value {
	t.Helper()
	b, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", v, err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", v, err)
	}
	return got
}

func TestScalarRoundTrips(t *testing.T) {
	for _, v := range []values.Value{
		values.Null,
		values.True,
		values.False,
		values.NewInt(-42),
		values.NewInt(1 << 60),
		values.NewFloat(3.14159),
		values.NewString(""),
		values.NewString("hello\x00world"[0:5] + "world"),
		values.NewString("unicode: héllo"),
	} {
		if got := roundTrip(t, v); !values.Equal(got, v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestIntStaysInt(t *testing.T) {
	got := roundTrip(t, values.NewInt(7))
	if got.Kind() != values.KindInt {
		t.Fatalf("int decoded as %s", got.Kind())
	}
}

func TestRecordRoundTrip(t *testing.T) {
	v := values.NewRecord(
		values.Field{Name: "id", Val: values.NewInt(9)},
		values.Field{Name: "name", Val: values.NewString("ada")},
		values.Field{Name: "nested", Val: values.NewRecord(
			values.Field{Name: "x", Val: values.NewFloat(1.5)},
		)},
		values.Field{Name: "tags", Val: values.NewList(values.NewString("a"), values.NewString("b"))},
	)
	got := roundTrip(t, v)
	if !values.Equal(got, v) {
		t.Fatalf("record round trip: %v -> %v", v, got)
	}
}

func TestEmptyRecord(t *testing.T) {
	v := values.NewRecord()
	got := roundTrip(t, v)
	if got.Kind() != values.KindRecord || got.Len() != 0 {
		t.Fatalf("empty record -> %v", got)
	}
}

func TestListDecodesAsList(t *testing.T) {
	v := values.NewList(values.NewInt(1), values.NewInt(2), values.NewInt(3))
	got := roundTrip(t, v)
	if got.Kind() != values.KindList || got.Len() != 3 {
		t.Fatalf("list -> %v", got)
	}
}

func TestGetFieldSkipsWithoutDecoding(t *testing.T) {
	v := values.NewRecord(
		values.Field{Name: "big", Val: values.NewString(string(make([]byte, 10_000)))},
		values.Field{Name: "id", Val: values.NewInt(5)},
		values.Field{Name: "obj", Val: values.NewRecord(values.Field{Name: "k", Val: values.NewInt(1)})},
	)
	doc, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := GetField(doc, "id")
	if err != nil || !ok || got.Int() != 5 {
		t.Fatalf("GetField(id) = %v, %v, %v", got, ok, err)
	}
	got, ok, err = GetField(doc, "obj")
	if err != nil || !ok {
		t.Fatalf("GetField(obj) = %v, %v, %v", got, ok, err)
	}
	if x, _ := got.Get("k"); x.Int() != 1 {
		t.Fatalf("nested field wrong: %v", got)
	}
	if _, ok, _ = GetField(doc, "missing"); ok {
		t.Fatal("GetField(missing) should be absent")
	}
}

func TestDocSize(t *testing.T) {
	v := values.NewRecord(values.Field{Name: "a", Val: values.NewInt(1)})
	doc, _ := Marshal(v)
	n, err := DocSize(doc)
	if err != nil || n != len(doc) {
		t.Fatalf("DocSize = %d, %v; want %d", n, err, len(doc))
	}
}

func TestCorruptInputs(t *testing.T) {
	v := values.NewRecord(
		values.Field{Name: "a", Val: values.NewInt(1)},
		values.Field{Name: "s", Val: values.NewString("xyz")},
	)
	doc, _ := Marshal(v)
	// Truncations at every length must error, not panic.
	for i := 0; i < len(doc); i++ {
		if _, err := Unmarshal(doc[:i]); err == nil {
			t.Fatalf("truncation at %d silently accepted", i)
		}
	}
	// Corrupt tag byte.
	bad := append([]byte{}, doc...)
	bad[4] = 0x7F
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("corrupt tag accepted")
	}
}

func randomValue(r *rand.Rand, depth int) values.Value {
	k := r.Intn(8)
	if depth <= 0 && k >= 5 {
		k = r.Intn(5)
	}
	switch k {
	case 0:
		return values.Null
	case 1:
		return values.NewBool(r.Intn(2) == 0)
	case 2:
		return values.NewInt(r.Int63() - (1 << 62))
	case 3:
		return values.NewFloat(r.NormFloat64())
	case 4:
		b := make([]byte, r.Intn(12))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return values.NewString(string(b))
	case 5:
		n := r.Intn(4)
		fs := make([]values.Field, n)
		for i := range fs {
			fs[i] = values.Field{Name: string(rune('a' + i)), Val: randomValue(r, depth-1)}
		}
		return values.NewRecord(fs...)
	default:
		n := r.Intn(4)
		es := make([]values.Value, n)
		for i := range es {
			es[i] = randomValue(r, depth-1)
		}
		return values.NewList(es...)
	}
}

// TestRandomRoundTrips property-checks Marshal/Unmarshal over random
// value trees. Empty lists legitimately decode as empty records (the wire
// format cannot distinguish them), so they are normalized before compare.
func TestRandomRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		v := randomValue(r, 3)
		b, err := Marshal(v)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", v, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", v, err)
		}
		if !equivalent(got, v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

// equivalent treats empty list == empty record, the one admissible loss.
func equivalent(a, b values.Value) bool {
	if values.Equal(a, b) {
		return true
	}
	isEmptyContainer := func(v values.Value) bool {
		return (v.Kind() == values.KindRecord || v.IsCollection()) && v.Len() == 0
	}
	if isEmptyContainer(a) && isEmptyContainer(b) {
		return true
	}
	if a.Kind() == values.KindRecord && b.Kind() == values.KindRecord && a.Len() == b.Len() {
		fa, fb := a.Fields(), b.Fields()
		for i := range fa {
			if fa[i].Name != fb[i].Name || !equivalent(fa[i].Val, fb[i].Val) {
				return false
			}
		}
		return true
	}
	if a.IsCollection() && b.IsCollection() && a.Len() == b.Len() {
		ea, eb := a.Elems(), b.Elems()
		for i := range ea {
			if !equivalent(ea[i], eb[i]) {
				return false
			}
		}
		return true
	}
	return false
}
