// Package values implements the dynamic value system shared by every layer
// of ViDa: the comprehension evaluator, the raw-format plugins, the caches
// and the baseline stores. A Value is a small tagged struct covering the
// scalar types, records, the three collection kinds of the monoid calculus
// (list, bag, set) and N-dimensional arrays.
//
// Values are immutable by convention: code that receives a Value must not
// mutate its nested slices. Constructors copy only when canonicalization
// requires it (sets and bags).
package values

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the runtime type of a Value.
type Kind uint8

// The value kinds. Collections deliberately mirror the monoid calculus:
// lists are ordered, bags are unordered with duplicates, sets are unordered
// without duplicates. Arrays carry explicit dimensions.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindRecord
	KindList
	KindBag
	KindSet
	KindArray
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindRecord:
		return "record"
	case KindList:
		return "list"
	case KindBag:
		return "bag"
	case KindSet:
		return "set"
	case KindArray:
		return "array"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Field is one named component of a record value.
type Field struct {
	Name string
	Val  Value
}

// Value is a dynamically-typed datum. The zero Value is null.
type Value struct {
	kind   Kind
	b      bool
	i      int64
	f      float64
	s      string
	fields []Field
	elems  []Value
	dims   []int
}

// Null is the null value.
var Null = Value{kind: KindNull}

// True and False are the boolean constants.
var (
	True  = Value{kind: KindBool, b: true}
	False = Value{kind: KindBool, b: false}
)

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	if b {
		return True
	}
	return False
}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewRecord returns a record with the given fields. Field order is
// significant for projection-by-position but not for equality.
func NewRecord(fields ...Field) Value {
	return Value{kind: KindRecord, fields: fields}
}

// NewList returns an ordered collection.
func NewList(elems ...Value) Value { return Value{kind: KindList, elems: elems} }

// NewBag returns an unordered collection with duplicates. The elements are
// canonicalized (sorted) so that equal bags compare equal.
func NewBag(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	sortValues(cp)
	return Value{kind: KindBag, elems: cp}
}

// NewSet returns an unordered collection without duplicates. Duplicates in
// elems are removed; the result is canonicalized.
func NewSet(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	sortValues(cp)
	out := cp[:0]
	for i, e := range cp {
		if i == 0 || Compare(cp[i-1], e) != 0 {
			out = append(out, e)
		}
	}
	return Value{kind: KindSet, elems: out}
}

// NewArray returns an N-dimensional array in row-major order. The product
// of dims must equal len(elems).
func NewArray(dims []int, elems []Value) Value {
	n := 1
	for _, d := range dims {
		n *= d
	}
	if n != len(elems) {
		panic(fmt.Sprintf("values: array dims %v imply %d elems, got %d", dims, n, len(elems)))
	}
	return Value{kind: KindArray, dims: dims, elems: elems}
}

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; it panics on other kinds.
func (v Value) Bool() bool {
	v.mustBe(KindBool)
	return v.b
}

// Int returns the integer payload; it panics on other kinds.
func (v Value) Int() int64 {
	v.mustBe(KindInt)
	return v.i
}

// Float returns the float payload. Integers are widened so that numeric
// code can treat int and float uniformly.
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	v.mustBe(KindFloat)
	return v.f
}

// Str returns the string payload; it panics on other kinds.
func (v Value) Str() string {
	v.mustBe(KindString)
	return v.s
}

// Fields returns the record fields; it panics on other kinds.
func (v Value) Fields() []Field {
	v.mustBe(KindRecord)
	return v.fields
}

// Elems returns the elements of a collection or array; it panics otherwise.
func (v Value) Elems() []Value {
	switch v.kind {
	case KindList, KindBag, KindSet, KindArray:
		return v.elems
	}
	panic(fmt.Sprintf("values: Elems on %s", v.kind))
}

// Dims returns the dimensions of an array value.
func (v Value) Dims() []int {
	v.mustBe(KindArray)
	return v.dims
}

// Len returns the number of elements in a collection, array or record.
func (v Value) Len() int {
	switch v.kind {
	case KindList, KindBag, KindSet, KindArray:
		return len(v.elems)
	case KindRecord:
		return len(v.fields)
	case KindString:
		return len(v.s)
	}
	panic(fmt.Sprintf("values: Len on %s", v.kind))
}

// Get returns the named record field and whether it exists.
func (v Value) Get(name string) (Value, bool) {
	if v.kind != KindRecord {
		return Null, false
	}
	for _, f := range v.fields {
		if f.Name == name {
			return f.Val, true
		}
	}
	return Null, false
}

// MustGet returns the named record field or panics.
func (v Value) MustGet(name string) Value {
	val, ok := v.Get(name)
	if !ok {
		panic(fmt.Sprintf("values: record has no field %q", name))
	}
	return val
}

// At returns the array element at the given multi-dimensional index.
func (v Value) At(idx ...int) Value {
	v.mustBe(KindArray)
	if len(idx) != len(v.dims) {
		panic(fmt.Sprintf("values: index rank %d != array rank %d", len(idx), len(v.dims)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= v.dims[d] {
			panic(fmt.Sprintf("values: index %d out of range for dim %d (size %d)", i, d, v.dims[d]))
		}
		off = off*v.dims[d] + i
	}
	return v.elems[off]
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// IsCollection reports whether v is a list, bag or set.
func (v Value) IsCollection() bool {
	return v.kind == KindList || v.kind == KindBag || v.kind == KindSet
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("values: want %s, have %s", k, v.kind))
	}
}

// Compare imposes a total order across all values. Values of different
// kinds order by kind; nulls sort first. Records compare field-by-field in
// declaration order (names first, then values); collections compare
// lexicographically over canonical element order.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		// Numeric cross-kind comparison keeps int/float interoperable.
		if a.IsNumeric() && b.IsNumeric() {
			return compareFloat(a.Float(), b.Float())
		}
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool:
		if a.b == b.b {
			return 0
		}
		if !a.b {
			return -1
		}
		return 1
	case KindInt:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindFloat:
		return compareFloat(a.f, b.f)
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindRecord:
		for i := 0; i < len(a.fields) && i < len(b.fields); i++ {
			if c := strings.Compare(a.fields[i].Name, b.fields[i].Name); c != 0 {
				return c
			}
			if c := Compare(a.fields[i].Val, b.fields[i].Val); c != 0 {
				return c
			}
		}
		return len(a.fields) - len(b.fields)
	case KindList, KindBag, KindSet:
		return compareSlices(a.elems, b.elems)
	case KindArray:
		for i := 0; i < len(a.dims) && i < len(b.dims); i++ {
			if a.dims[i] != b.dims[i] {
				return a.dims[i] - b.dims[i]
			}
		}
		if d := len(a.dims) - len(b.dims); d != 0 {
			return d
		}
		return compareSlices(a.elems, b.elems)
	}
	panic(fmt.Sprintf("values: Compare on %s", a.kind))
}

// CompareFloats orders two float64s exactly as Compare orders float
// values (NaNs sort before non-NaNs). Vectorized kernels use it to match
// the boxed comparison semantics without constructing values.
func CompareFloats(a, b float64) int { return compareFloat(a, b) }

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	}
	return 0
}

func compareSlices(a, b []Value) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

func sortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
}

// Hash returns a hash of the value, consistent with Equal: equal values
// hash identically (int/float numeric equality included). Scalars take a
// fast single-mix path — they are the overwhelmingly common join keys —
// while composites use an FNV-1a tree walk.
func (v Value) Hash() uint64 {
	switch v.kind {
	case KindNull:
		return 0x9e3779b97f4a7c15
	case KindBool:
		if v.b {
			return mix64(0xbf58476d1ce4e5b9)
		}
		return mix64(0x94d049bb133111eb)
	case KindInt:
		return HashInt(v.i)
	case KindFloat:
		return HashFloat(v.f)
	case KindString:
		return HashString(v.s)
	}
	h := uint64(14695981039346656037)
	v.hashInto(&h)
	return h
}

// HashInt hashes an int64 exactly as NewInt(i).Hash() would — ints hash
// through their float64 image so 1 and 1.0 collide, matching Compare.
// Vectorized join-key kernels use these scalar helpers to hash typed
// column payloads without boxing.
func HashInt(i int64) uint64 { return mix64(math.Float64bits(float64(i))) }

// HashFloat hashes a float64 exactly as NewFloat(f).Hash() would.
func HashFloat(f float64) uint64 { return mix64(math.Float64bits(f)) }

// HashString hashes a string exactly as NewString(s).Hash() would
// (FNV-1a over the bytes).
func HashString(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashByte(h *uint64, b byte) {
	*h ^= uint64(b)
	*h *= 1099511628211
}

func hashUint64(h *uint64, u uint64) {
	for i := 0; i < 8; i++ {
		hashByte(h, byte(u>>(8*i)))
	}
}

func hashString(h *uint64, s string) {
	for i := 0; i < len(s); i++ {
		hashByte(h, s[i])
	}
}

func (v Value) hashInto(h *uint64) {
	switch v.kind {
	case KindNull:
		hashByte(h, 0)
	case KindBool:
		hashByte(h, 1)
		if v.b {
			hashByte(h, 1)
		} else {
			hashByte(h, 0)
		}
	case KindInt:
		// Hash ints as floats so 1 and 1.0 collide, matching Compare.
		hashByte(h, 2)
		hashUint64(h, math.Float64bits(float64(v.i)))
	case KindFloat:
		hashByte(h, 2)
		hashUint64(h, math.Float64bits(v.f))
	case KindString:
		hashByte(h, 3)
		hashString(h, v.s)
	case KindRecord:
		hashByte(h, 4)
		for _, f := range v.fields {
			hashString(h, f.Name)
			f.Val.hashInto(h)
		}
	case KindList, KindBag, KindSet:
		hashByte(h, byte(4+v.kind-KindList+1))
		for _, e := range v.elems {
			e.hashInto(h)
		}
	case KindArray:
		hashByte(h, 9)
		for _, d := range v.dims {
			hashUint64(h, uint64(d))
		}
		for _, e := range v.elems {
			e.hashInto(h)
		}
	}
}

// String renders the value in a compact human-readable syntax used by the
// CLI and tests: records as (a := 1, b := "x"), bags as bag{...}, etc.
func (v Value) String() string {
	var sb strings.Builder
	v.format(&sb)
	return sb.String()
}

func (v Value) format(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteString("null")
	case KindBool:
		sb.WriteString(strconv.FormatBool(v.b))
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
	case KindString:
		sb.WriteString(strconv.Quote(v.s))
	case KindRecord:
		sb.WriteByte('(')
		for i, f := range v.fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Name)
			sb.WriteString(" := ")
			f.Val.format(sb)
		}
		sb.WriteByte(')')
	case KindList, KindBag, KindSet:
		sb.WriteString(v.kind.String())
		sb.WriteByte('{')
		for i, e := range v.elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.format(sb)
		}
		sb.WriteByte('}')
	case KindArray:
		fmt.Fprintf(sb, "array%v[", v.dims)
		for i, e := range v.elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.format(sb)
		}
		sb.WriteByte(']')
	}
}

// Truth converts a value to a boolean for predicate contexts: booleans are
// themselves, null is false.
func (v Value) Truth() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindNull:
		return false
	}
	panic(fmt.Sprintf("values: Truth on %s", v.kind))
}

// AsCollection converts a collection value to kind k, re-canonicalizing as
// needed. This implements the "virtualize the output to the requested
// collection type" capability of the calculus (paper §3.2).
func (v Value) AsCollection(k Kind) Value {
	elems := v.Elems()
	switch k {
	case KindList:
		cp := make([]Value, len(elems))
		copy(cp, elems)
		return NewList(cp...)
	case KindBag:
		return NewBag(elems...)
	case KindSet:
		return NewSet(elems...)
	}
	panic(fmt.Sprintf("values: AsCollection to %s", k))
}

// Append returns a collection of the same kind with x added, preserving the
// kind's invariants (lists append, bags insert sorted, sets dedupe). It is
// the Unit/Merge building block used by collection monoids.
func (v Value) Append(x Value) Value {
	switch v.kind {
	case KindList:
		out := make([]Value, 0, len(v.elems)+1)
		out = append(out, v.elems...)
		out = append(out, x)
		return Value{kind: KindList, elems: out}
	case KindBag:
		out := insertSorted(v.elems, x, true)
		return Value{kind: KindBag, elems: out}
	case KindSet:
		out := insertSorted(v.elems, x, false)
		return Value{kind: KindSet, elems: out}
	}
	panic(fmt.Sprintf("values: Append on %s", v.kind))
}

func insertSorted(elems []Value, x Value, allowDup bool) []Value {
	i := sort.Search(len(elems), func(i int) bool { return Compare(elems[i], x) >= 0 })
	if !allowDup && i < len(elems) && Compare(elems[i], x) == 0 {
		return elems
	}
	out := make([]Value, 0, len(elems)+1)
	out = append(out, elems[:i]...)
	out = append(out, x)
	out = append(out, elems[i:]...)
	return out
}
