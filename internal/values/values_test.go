package values

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestScalars(t *testing.T) {
	if !NewBool(true).Bool() {
		t.Fatal("bool payload lost")
	}
	if NewInt(42).Int() != 42 {
		t.Fatal("int payload lost")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Fatal("float payload lost")
	}
	if NewString("hi").Str() != "hi" {
		t.Fatal("string payload lost")
	}
	if !Null.IsNull() {
		t.Fatal("Null is not null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value is not null")
	}
}

func TestIntWidensToFloat(t *testing.T) {
	if NewInt(3).Float() != 3.0 {
		t.Fatal("int did not widen")
	}
}

func TestRecordAccess(t *testing.T) {
	r := NewRecord(Field{"a", NewInt(1)}, Field{"b", NewString("x")})
	if v, ok := r.Get("a"); !ok || v.Int() != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if v, ok := r.Get("b"); !ok || v.Str() != "x" {
		t.Fatalf("Get(b) = %v, %v", v, ok)
	}
	if _, ok := r.Get("c"); ok {
		t.Fatal("Get(c) should miss")
	}
	if r.Len() != 2 {
		t.Fatalf("record Len = %d", r.Len())
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on missing field did not panic")
		}
	}()
	NewRecord().MustGet("nope")
}

func TestSetDeduplicates(t *testing.T) {
	s := NewSet(NewInt(2), NewInt(1), NewInt(2), NewInt(1))
	if s.Len() != 2 {
		t.Fatalf("set has %d elems, want 2", s.Len())
	}
	if s.Elems()[0].Int() != 1 || s.Elems()[1].Int() != 2 {
		t.Fatalf("set not canonicalized: %v", s)
	}
}

func TestBagCanonicalEquality(t *testing.T) {
	a := NewBag(NewInt(1), NewInt(2), NewInt(2))
	b := NewBag(NewInt(2), NewInt(1), NewInt(2))
	if !Equal(a, b) {
		t.Fatalf("equal bags compare unequal: %v vs %v", a, b)
	}
	c := NewBag(NewInt(1), NewInt(2))
	if Equal(a, c) {
		t.Fatal("bags with different multiplicity compare equal")
	}
}

func TestListOrderMatters(t *testing.T) {
	a := NewList(NewInt(1), NewInt(2))
	b := NewList(NewInt(2), NewInt(1))
	if Equal(a, b) {
		t.Fatal("lists with different order compare equal")
	}
}

func TestArrayIndexing(t *testing.T) {
	// 2x3 matrix 0..5 in row-major order.
	elems := make([]Value, 6)
	for i := range elems {
		elems[i] = NewInt(int64(i))
	}
	a := NewArray([]int{2, 3}, elems)
	if a.At(0, 0).Int() != 0 || a.At(0, 2).Int() != 2 || a.At(1, 0).Int() != 3 || a.At(1, 2).Int() != 5 {
		t.Fatalf("row-major indexing broken: %v", a)
	}
}

func TestArrayDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dims/elems mismatch did not panic")
		}
	}()
	NewArray([]int{2, 2}, []Value{NewInt(1)})
}

func TestNumericCrossKindCompare(t *testing.T) {
	if Compare(NewInt(1), NewFloat(1.0)) != 0 {
		t.Fatal("1 != 1.0")
	}
	if Compare(NewInt(1), NewFloat(1.5)) >= 0 {
		t.Fatal("1 >= 1.5")
	}
	if Compare(NewFloat(2.5), NewInt(2)) <= 0 {
		t.Fatal("2.5 <= 2")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(1), NewFloat(1.0)},
		{NewBag(NewInt(1), NewInt(2)), NewBag(NewInt(2), NewInt(1))},
		{NewSet(NewInt(1), NewInt(1)), NewSet(NewInt(1))},
		{NewRecord(Field{"a", NewInt(1)}), NewRecord(Field{"a", NewInt(1)})},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("pair %v expected equal", p)
		}
		if p[0].Hash() != p[1].Hash() {
			t.Fatalf("equal values hash differently: %v %v", p[0], p[1])
		}
	}
}

func TestStringFormat(t *testing.T) {
	v := NewRecord(
		Field{"name", NewString("ada")},
		Field{"scores", NewList(NewInt(1), NewFloat(2.5))},
	)
	got := v.String()
	want := `(name := "ada", scores := list{1, 2.5})`
	if got != want {
		t.Fatalf("String() = %s, want %s", got, want)
	}
}

func TestAsCollection(t *testing.T) {
	l := NewList(NewInt(2), NewInt(1), NewInt(2))
	if got := l.AsCollection(KindSet); got.Len() != 2 {
		t.Fatalf("list->set = %v", got)
	}
	if got := l.AsCollection(KindBag); got.Len() != 3 {
		t.Fatalf("list->bag = %v", got)
	}
	if got := l.AsCollection(KindList); !Equal(got, l) {
		t.Fatalf("list->list = %v", got)
	}
}

func TestAppendPreservesInvariants(t *testing.T) {
	s := NewSet(NewInt(1))
	s = s.Append(NewInt(1))
	if s.Len() != 1 {
		t.Fatalf("set append allowed dup: %v", s)
	}
	b := NewBag(NewInt(2))
	b = b.Append(NewInt(1))
	if b.Elems()[0].Int() != 1 {
		t.Fatalf("bag append lost sort order: %v", b)
	}
	l := NewList(NewInt(2))
	l = l.Append(NewInt(1))
	if l.Elems()[1].Int() != 1 {
		t.Fatalf("list append reordered: %v", l)
	}
}

func TestTruth(t *testing.T) {
	if !True.Truth() || False.Truth() {
		t.Fatal("bool truth broken")
	}
	if Null.Truth() {
		t.Fatal("null should be false")
	}
}

// randomValue builds an arbitrary value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(10)
	if depth <= 0 && k >= 5 {
		k = r.Intn(5)
	}
	switch k {
	case 0:
		return Null
	case 1:
		return NewBool(r.Intn(2) == 0)
	case 2:
		return NewInt(int64(r.Intn(21) - 10))
	case 3:
		return NewFloat(float64(r.Intn(21)-10) / 2)
	case 4:
		return NewString(string(rune('a' + r.Intn(4))))
	case 5:
		n := r.Intn(3)
		fs := make([]Field, n)
		for i := range fs {
			fs[i] = Field{Name: string(rune('a' + i)), Val: randomValue(r, depth-1)}
		}
		return NewRecord(fs...)
	case 6, 7, 8:
		n := r.Intn(4)
		es := make([]Value, n)
		for i := range es {
			es[i] = randomValue(r, depth-1)
		}
		switch k {
		case 6:
			return NewList(es...)
		case 7:
			return NewBag(es...)
		default:
			return NewSet(es...)
		}
	default:
		n := r.Intn(3) + 1
		es := make([]Value, n)
		for i := range es {
			es[i] = randomValue(r, depth-1)
		}
		return NewArray([]int{n}, es)
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, _ *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(randomValue(r, 3))
			}
		},
	}
	// Antisymmetry: sign(Compare(a,b)) == -sign(Compare(b,a)).
	anti := func(a, b Value) bool {
		return sign(Compare(a, b)) == -sign(Compare(b, a))
	}
	if err := quick.Check(anti, cfg); err != nil {
		t.Fatalf("antisymmetry: %v", err)
	}
	// Reflexivity: Compare(a,a) == 0.
	refl := func(a, b Value) bool { return Compare(a, a) == 0 }
	if err := quick.Check(refl, cfg); err != nil {
		t.Fatalf("reflexivity: %v", err)
	}
	// Hash consistency: Equal implies same hash.
	hashOK := func(a, b Value) bool {
		if Equal(a, b) {
			return a.Hash() == b.Hash()
		}
		return true
	}
	if err := quick.Check(hashOK, cfg); err != nil {
		t.Fatalf("hash consistency: %v", err)
	}
}

func TestCompareTransitivitySampled(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a, b, c := randomValue(r, 2), randomValue(r, 2), randomValue(r, 2)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but a > c", a, b, c)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestStringOfKinds(t *testing.T) {
	for k := KindNull; k <= KindArray; k++ {
		if strings.Contains(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
