// Package etl implements the warehouse preparation pipeline the paper's
// baselines must pay for (Figure 5's "Flattening" and "Loading" bars):
// flattening hierarchical JSON into relational rows — which multiplies
// rows for nested arrays, the redundancy the paper calls out — and bulk
// loading into the row/column stores.
package etl

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"vida/internal/sdg"
	"vida/internal/storagecol"
	"vida/internal/storagerow"
	"vida/internal/values"
)

// FlattenReport summarizes one flattening run.
type FlattenReport struct {
	InputObjects int
	OutputRows   int
	InputBytes   int64
	OutputBytes  int64
	Columns      []string
}

// RedundancyFactor is output rows per input object (>1 when arrays
// exploded).
func (r *FlattenReport) RedundancyFactor() float64 {
	if r.InputObjects == 0 {
		return 0
	}
	return float64(r.OutputRows) / float64(r.InputObjects)
}

// Options configures flattening.
type Options struct {
	// SkipArrays projects away list-valued fields instead of exploding
	// them into rows. Full explosion is the faithful (and redundant)
	// relational encoding; skipping is the pragmatic schema choice that
	// keeps warehouse query results multiplicity-compatible with the
	// hierarchical original (used for the Figure 5 warehouse runs; see
	// EXPERIMENTS.md).
	SkipArrays bool
}

// FlattenObject turns one hierarchical record into flat rows: nested
// record fields become dotted columns, and each list explodes into one
// row per element (lists multiply — the relational encoding of a
// hierarchy is redundant).
func FlattenObject(v values.Value) []map[string]values.Value {
	return FlattenObjectWith(v, Options{})
}

// FlattenObjectWith is FlattenObject with explicit options.
func FlattenObjectWith(v values.Value, opts Options) []map[string]values.Value {
	rows := []map[string]values.Value{{}}
	flattenInto("", v, &rows, opts)
	return rows
}

func flattenInto(prefix string, v values.Value, rows *[]map[string]values.Value, opts Options) {
	switch v.Kind() {
	case values.KindRecord:
		for _, f := range v.Fields() {
			key := f.Name
			if prefix != "" {
				key = prefix + "." + f.Name
			}
			flattenInto(key, f.Val, rows, opts)
		}
	case values.KindList, values.KindBag, values.KindSet, values.KindArray:
		if opts.SkipArrays {
			return
		}
		elems := v.Elems()
		if len(elems) == 0 {
			return
		}
		// Cross-product: every current row is replicated per element.
		var out []map[string]values.Value
		for _, row := range *rows {
			for i, e := range elems {
				cp := make(map[string]values.Value, len(row)+1)
				for k, val := range row {
					cp[k] = val
				}
				sub := []map[string]values.Value{cp}
				key := prefix
				if key == "" {
					key = fmt.Sprintf("elem%d", i)
				}
				flattenInto(key, e, &sub, opts)
				out = append(out, sub...)
			}
		}
		*rows = out
	default:
		for _, row := range *rows {
			row[prefix] = v
		}
	}
}

// Flatten streams objects from iterate, writes the flattened relation as
// CSV to outPath (header included, union schema across all objects) and
// returns the report. Values render in CSV-compatible text; strings with
// separators are not quoted (the workload generator avoids them), matching
// the simple tokenizer in rawcsv.
func Flatten(iterate func(yield func(values.Value) error) error, inputBytes int64, outPath string) (*FlattenReport, error) {
	return FlattenWith(iterate, inputBytes, outPath, Options{})
}

// FlattenWith is Flatten with explicit options.
func FlattenWith(iterate func(yield func(values.Value) error) error, inputBytes int64, outPath string, opts Options) (*FlattenReport, error) {
	var flat []map[string]values.Value
	colSet := map[string]bool{}
	objects := 0
	err := iterate(func(v values.Value) error {
		objects++
		rows := FlattenObjectWith(v, opts)
		for _, r := range rows {
			for k := range r {
				colSet[k] = true
			}
		}
		flat = append(flat, rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)

	f, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var sb strings.Builder
	sb.WriteString(strings.Join(cols, ","))
	sb.WriteByte('\n')
	var written int64
	flush := func() error {
		n, err := f.WriteString(sb.String())
		written += int64(n)
		sb.Reset()
		return err
	}
	for _, row := range flat {
		for i, c := range cols {
			if i > 0 {
				sb.WriteByte(',')
			}
			if v, ok := row[c]; ok && !v.IsNull() {
				sb.WriteString(renderCSV(v))
			}
		}
		sb.WriteByte('\n')
		if sb.Len() > 1<<20 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return &FlattenReport{
		InputObjects: objects,
		OutputRows:   len(flat),
		InputBytes:   inputBytes,
		OutputBytes:  written,
		Columns:      cols,
	}, nil
}

func renderCSV(v values.Value) string {
	switch v.Kind() {
	case values.KindString:
		return v.Str()
	case values.KindBool:
		if v.Bool() {
			return "true"
		}
		return "false"
	default:
		return strings.TrimSuffix(strings.TrimPrefix(v.String(), "\""), "\"")
	}
}

// LoadReport summarizes a bulk load.
type LoadReport struct {
	Rows       int
	Partitions int // row store vertical partitions
	Bytes      int64
}

// LoadIntoRowStore bulk-inserts a record stream into a new row-store
// table (vertical partitioning applies automatically above the column
// limit).
func LoadIntoRowStore(store *storagerow.Store, table string, attrs []sdg.Attr,
	iterate func(yield func(values.Value) error) error) (*LoadReport, error) {
	t, err := store.CreateTable(table, attrs)
	if err != nil {
		return nil, err
	}
	err = iterate(func(v values.Value) error { return t.InsertRecord(v) })
	if err != nil {
		return nil, err
	}
	if err := t.FinishLoad(); err != nil {
		return nil, err
	}
	return &LoadReport{Rows: t.NumRows(), Partitions: t.Partitions(), Bytes: t.SizeBytes()}, nil
}

// LoadIntoColStore bulk-inserts a record stream into a new column-store
// table, persisting columns at the end.
func LoadIntoColStore(store *storagecol.Store, dir, table string, attrs []sdg.Attr,
	iterate func(yield func(values.Value) error) error) (*LoadReport, error) {
	t, err := store.CreateTable(table, attrs)
	if err != nil {
		return nil, err
	}
	err = iterate(func(v values.Value) error { return t.InsertRecord(v) })
	if err != nil {
		return nil, err
	}
	if err := t.FinishLoad(dir); err != nil {
		return nil, err
	}
	return &LoadReport{Rows: t.NumRows(), Partitions: 1, Bytes: t.MemBytes()}, nil
}

// AttrsFromColumns derives a relational schema for flattened columns:
// names as-is, all typed by sniffing the given sample rows (int < float <
// string; bool recognized exactly).
func AttrsFromColumns(cols []string, sample []map[string]values.Value) []sdg.Attr {
	attrs := make([]sdg.Attr, len(cols))
	for i, c := range cols {
		t := sdg.Unknown
		for _, row := range sample {
			v, ok := row[c]
			if !ok || v.IsNull() {
				continue
			}
			t = widen(t, typeOf(v))
		}
		if t == sdg.Unknown {
			t = sdg.String
		}
		attrs[i] = sdg.Attr{Name: c, Type: t}
	}
	return attrs
}

func typeOf(v values.Value) *sdg.Type {
	switch v.Kind() {
	case values.KindInt:
		return sdg.Int
	case values.KindFloat:
		return sdg.Float
	case values.KindBool:
		return sdg.Bool
	default:
		return sdg.String
	}
}

func widen(a, b *sdg.Type) *sdg.Type {
	if a == sdg.Unknown {
		return b
	}
	if a == b {
		return a
	}
	if a.IsNumeric() && b.IsNumeric() {
		return sdg.Float
	}
	return sdg.String
}
