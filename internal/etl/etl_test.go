package etl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vida/internal/basequery"
	"vida/internal/sdg"
	"vida/internal/storagecol"
	"vida/internal/storagerow"
	"vida/internal/values"
)

func rec(fields ...values.Field) values.Value { return values.NewRecord(fields...) }
func f(n string, v values.Value) values.Field { return values.Field{Name: n, Val: v} }

func TestFlattenObjectNested(t *testing.T) {
	v := rec(
		f("id", values.NewInt(1)),
		f("geo", rec(f("x", values.NewFloat(1.5)), f("y", values.NewFloat(2.5)))),
	)
	rows := FlattenObject(v)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0]["geo.x"].Float() != 1.5 || rows[0]["id"].Int() != 1 {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestFlattenObjectArrayExplodes(t *testing.T) {
	// One object with a 3-element array flattens to 3 rows: the
	// redundancy the paper attributes to flattening.
	v := rec(
		f("id", values.NewInt(1)),
		f("tags", values.NewList(values.NewString("a"), values.NewString("b"), values.NewString("c"))),
	)
	rows := FlattenObject(v)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r["id"].Int() != 1 {
			t.Fatalf("id not replicated: %v", r)
		}
	}
}

func TestFlattenObjectTwoArraysCross(t *testing.T) {
	v := rec(
		f("a", values.NewList(values.NewInt(1), values.NewInt(2))),
		f("b", values.NewList(values.NewInt(10), values.NewInt(20), values.NewInt(30))),
	)
	rows := FlattenObject(v)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 2x3", len(rows))
	}
}

func TestFlattenToCSV(t *testing.T) {
	objs := []values.Value{
		rec(f("id", values.NewInt(1)), f("m", rec(f("v", values.NewFloat(2.5))))),
		rec(f("id", values.NewInt(2)), f("tags", values.NewList(values.NewString("x"), values.NewString("y")))),
	}
	out := filepath.Join(t.TempDir(), "flat.csv")
	rep, err := Flatten(func(yield func(values.Value) error) error {
		for _, o := range objs {
			if err := yield(o); err != nil {
				return err
			}
		}
		return nil
	}, 100, out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputObjects != 2 || rep.OutputRows != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.RedundancyFactor() != 1.5 {
		t.Fatalf("redundancy = %v", rep.RedundancyFactor())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("csv lines = %d:\n%s", len(lines), data)
	}
	if lines[0] != "id,m.v,tags" {
		t.Fatalf("header = %q", lines[0])
	}
}

func iterObjs(objs []values.Value) func(func(values.Value) error) error {
	return func(yield func(values.Value) error) error {
		for _, o := range objs {
			if err := yield(o); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestLoadIntoRowStore(t *testing.T) {
	store, err := storagerow.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	attrs := []sdg.Attr{{Name: "id", Type: sdg.Int}, {Name: "v", Type: sdg.Float}}
	objs := []values.Value{
		rec(f("id", values.NewInt(1)), f("v", values.NewFloat(2))),
		rec(f("id", values.NewInt(2)), f("v", values.NewFloat(4))),
	}
	rep, err := LoadIntoRowStore(store, "T", attrs, iterObjs(objs))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 2 || rep.Partitions != 1 || rep.Bytes == 0 {
		t.Fatalf("report = %+v", rep)
	}
	tbl, _ := store.Table("T")
	n := 0
	_ = tbl.Scan(nil, nil, func(values.Value) error { n++; return nil })
	if n != 2 {
		t.Fatalf("loaded rows = %d", n)
	}
}

func TestLoadIntoColStore(t *testing.T) {
	dir := t.TempDir()
	store, err := storagecol.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	attrs := []sdg.Attr{{Name: "id", Type: sdg.Int}, {Name: "v", Type: sdg.Float}}
	objs := []values.Value{
		rec(f("id", values.NewInt(1)), f("v", values.NewFloat(2))),
		rec(f("id", values.NewInt(2)), f("v", values.NewFloat(4))),
	}
	rep, err := LoadIntoColStore(store, dir, "T", attrs, iterObjs(objs))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 2 {
		t.Fatalf("report = %+v", rep)
	}
	tbl, _ := store.Table("T")
	sum, err := tbl.Aggregate(basequery.AggSum, "v", nil)
	if err != nil || sum.Float() != 6 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
}

func TestAttrsFromColumns(t *testing.T) {
	sample := []map[string]values.Value{
		{"a": values.NewInt(1), "b": values.NewString("x"), "c": values.NewInt(1)},
		{"a": values.NewFloat(2.5), "b": values.NewString("y"), "c": values.NewBool(true)},
	}
	attrs := AttrsFromColumns([]string{"a", "b", "c", "d"}, sample)
	if attrs[0].Type != sdg.Float {
		t.Fatalf("a widened to %s", attrs[0].Type)
	}
	if attrs[1].Type != sdg.String {
		t.Fatalf("b = %s", attrs[1].Type)
	}
	if attrs[2].Type != sdg.String { // int vs bool conflict → string
		t.Fatalf("c = %s", attrs[2].Type)
	}
	if attrs[3].Type != sdg.String { // unseen column defaults to string
		t.Fatalf("d = %s", attrs[3].Type)
	}
}
