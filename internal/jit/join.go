package jit

import (
	"vida/internal/faultinject"
	"vida/internal/trace"
	"vida/internal/values"
	"vida/internal/vec"
)

// This file is the partitioned parallel hash join. The serial join of
// the earlier engine kept one monolithic chain table built by a single
// scan; here the build side is scanned morsel-parallel into per-morsel
// radix-partitioned entry lists, the partitions are sealed into a
// shared immutable index, and probe morsels run in parallel against it.
// Determinism is structural, not synchronized:
//
//   - Each build entry's partition is a pure function of its key hash
//     (the top log2(P) bits), so all candidates for one probe key live
//     in exactly one partition regardless of which worker built it.
//   - Sealing concatenates each partition's per-morsel entry lists in
//     morsel order, which is build-scan order — the same order the
//     serial build appends entries in.
//   - Per-partition bucket chains insert in reverse so a chain lists
//     its entries in build order, making every probe row emit its
//     matches in exactly the serial engine's order.
//
// Probe morsels then merge at the root in morsel order (the grouped
// fold's discipline), so results are byte-identical to the serial plan
// across any worker and partition count — including for the
// non-commutative list monoid.

// DefaultJoinPartitions is the default radix partition count for the
// hash-join build. Partitioning exists for parallel-build locality (each
// morsel appends to its own partition lists; sealing never rehashes), so
// a modest power of two suffices.
const DefaultJoinPartitions = 16

// maxJoinPartitions bounds the partition count: past this the per-
// partition fixed overhead (head arrays) dominates small builds.
const maxJoinPartitions = 1024

// joinState is the compile-time staging of one hash join: everything
// both the serial run path and the morsel-parallel openRange path share.
type joinState struct {
	l, r         *compiledPlan
	lSlot, rSlot int // slot-reference key fast path; -1 = expression keys
	lKeys, rKeys []compiledExpr
	residual     compiledExpr
	lw, rw       int
	opts         Options
	parts        int  // partition count, power of two
	shift        uint // 64 - log2(parts); partition = hash >> shift
}

// joinPartial is one build morsel's output: the batches it retained and,
// per radix partition, the entries it contributed. Entries reference
// (batch, row) within the morsel's own retained list; sealing rebases
// batch indices into the global list.
type joinPartial struct {
	retained []vec.Batch
	parts    []joinPartChunk
}

type joinPartChunk struct {
	hashes []uint64
	batch  []int32
	row    []int32
	keys   []values.Value // boxed keys, expression-key case only
}

// joinIndex is the sealed immutable build index shared by all probe
// morsels. No field is mutated after seal.
type joinIndex struct {
	retained []vec.Batch
	parts    []joinIndexPart
	entries  int64
	bytes    int64 // retained batches + index arrays + boxed keys
}

// joinIndexPart is one sealed radix partition: its entries in global
// build order plus a power-of-two bucket chain table over them.
type joinIndexPart struct {
	hashes []uint64
	batch  []int32
	row    []int32
	keys   []values.Value
	head   []int32 // 1-based entry, 0 = empty
	next   []int32
	mask   uint64
}

// joinKeyOf evaluates a key tuple over a filled row; ok is false when
// any component is null (null keys never join).
func joinKeyOf(row []values.Value, exprs []compiledExpr) (values.Value, bool, error) {
	if len(exprs) == 1 {
		v, err := exprs[0](row)
		if err != nil || v.IsNull() {
			return values.Null, false, err
		}
		return v, true, nil
	}
	parts := make([]values.Value, len(exprs))
	for i, e := range exprs {
		v, err := e(row)
		if err != nil {
			return values.Null, false, err
		}
		if v.IsNull() {
			return values.Null, false, nil
		}
		parts[i] = v
	}
	return values.NewList(parts...), true, nil
}

func (js *joinState) newPartial() *joinPartial {
	return &joinPartial{parts: make([]joinPartChunk, js.parts)}
}

// mkBuildAbsorb returns a batchSink accumulating partitioned build
// entries into part. The sink owns its scratch — one per morsel (or one
// for the whole serial build). bsp receives the entry count.
func (js *joinState) mkBuildAbsorb(part *joinPartial, bsp *trace.Span) batchSink {
	rrow := make([]values.Value, js.rw)
	var hs []uint64 // per-batch key-hash scratch (vectorized pass)
	var hsValid []bool
	reserve := js.opts.MemReserve
	return func(b *vec.Batch) error {
		cnt := b.Len()
		if cnt == 0 {
			return nil
		}
		if err := faultinject.Hit(faultinject.JoinBuildStall); err != nil {
			return err
		}
		bi := int32(len(part.retained))
		stored, compacted := retainForBuild(b)
		if reserve != nil {
			// The build side is the join's dominant allocator: charge
			// every retained batch against the query budget.
			if err := reserve(stored.MemoryBytes()); err != nil {
				return err
			}
		}
		part.retained = append(part.retained, stored)
		var appended int64
		if js.rSlot >= 0 {
			// Vectorized build: the key column hashes in one
			// tag-dispatched pass — typed payloads never box.
			hs, hsValid = hashLiveCol(&b.Cols[js.rSlot], b, hs[:0], hsValid[:0])
			for k := 0; k < cnt; k++ {
				if !hsValid[k] {
					continue
				}
				// A compacted batch re-indexes: its physical row k is
				// the k-th live row of b.
				si := b.Index(k)
				if compacted {
					si = k
				}
				h := hs[k]
				ch := &part.parts[h>>js.shift]
				ch.hashes = append(ch.hashes, h)
				ch.batch = append(ch.batch, bi)
				ch.row = append(ch.row, int32(si))
				appended++
			}
		} else {
			for k := 0; k < cnt; k++ {
				i := b.Index(k)
				si := i
				if compacted {
					si = k
				}
				fillRow(b, i, rrow)
				kv, ok, err := joinKeyOf(rrow, js.rKeys)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				h := kv.Hash()
				ch := &part.parts[h>>js.shift]
				ch.hashes = append(ch.hashes, h)
				ch.batch = append(ch.batch, bi)
				ch.row = append(ch.row, int32(si))
				ch.keys = append(ch.keys, kv)
				appended++
			}
		}
		bsp.AddRows(appended)
		return nil
	}
}

// seal concatenates the morsel partials — in morsel order, which is
// build-scan order — into the shared immutable index and builds each
// partition's bucket chains. The index arrays are charged against the
// query budget here (the retained batches were charged as they arrived).
func (js *joinState) seal(partials []*joinPartial) (*joinIndex, error) {
	idx := &joinIndex{parts: make([]joinIndexPart, js.parts)}
	base := make([]int32, len(partials))
	var retainedBytes int64
	for mi, m := range partials {
		if m == nil {
			continue
		}
		base[mi] = int32(len(idx.retained))
		idx.retained = append(idx.retained, m.retained...)
		for i := range m.retained {
			retainedBytes += m.retained[i].MemoryBytes()
		}
	}
	var indexBytes int64
	for pi := range idx.parts {
		total := 0
		for _, m := range partials {
			if m != nil {
				total += len(m.parts[pi].hashes)
			}
		}
		part := &idx.parts[pi]
		if total > 0 {
			part.hashes = make([]uint64, 0, total)
			part.batch = make([]int32, 0, total)
			part.row = make([]int32, 0, total)
		}
		for mi, m := range partials {
			if m == nil {
				continue
			}
			ch := &m.parts[pi]
			for k := range ch.hashes {
				part.hashes = append(part.hashes, ch.hashes[k])
				part.batch = append(part.batch, base[mi]+ch.batch[k])
				part.row = append(part.row, ch.row[k])
			}
			if js.rSlot < 0 {
				part.keys = append(part.keys, ch.keys...)
				for _, kv := range ch.keys {
					indexBytes += approxValueBytes(kv)
				}
			}
		}
		// Power-of-two bucket heads plus per-entry chains, inserted in
		// reverse so each chain lists entries in build order (probe
		// results match the row-at-a-time engines exactly).
		n := len(part.hashes)
		tableSize := 1
		for tableSize < n*2 {
			tableSize *= 2
		}
		part.mask = uint64(tableSize - 1)
		part.head = make([]int32, tableSize)
		part.next = make([]int32, n)
		for e := n - 1; e >= 0; e-- {
			slot := part.hashes[e] & part.mask
			part.next[e] = part.head[slot]
			part.head[slot] = int32(e + 1)
		}
		idx.entries += int64(n)
		indexBytes += int64(n)*(8+4+4+4) + int64(tableSize)*4
	}
	if reserve := js.opts.MemReserve; reserve != nil && indexBytes > 0 {
		if err := reserve(indexBytes); err != nil {
			return nil, err
		}
	}
	idx.bytes = retainedBytes + indexBytes
	return idx, nil
}

// buildIndex drives the build side to a sealed index under a
// `fold kind=join` span. The build scan goes morsel-parallel when the
// build side is partitionable and at least JoinBuildThreshold rows;
// below that it stays serial (same partitioned structures, one morsel).
// buildIndex always runs on the query's main goroutine — openRange
// callers invoke it eagerly before dispatching probe morsels, so the
// pool never nests Run inside its own workers.
func (js *joinState) buildIndex() (*joinIndex, *trace.Span, error) {
	opts := js.opts
	fold := opts.Trace.Child("fold")
	fold.SetAttr("kind", "join")
	fold.SetAttr("partitions", js.parts)
	bsp := fold.Child("join_build")
	var partials []*joinPartial
	var err error
	parallel := false
	if opts.Workers > 1 && js.r.openRange != nil {
		if scan, n, ok := js.r.openRange(); ok && n >= opts.JoinBuildThreshold {
			parallel = true
			workers := opts.Workers
			morselRows := (n + workers*4 - 1) / (workers * 4)
			if morselRows < opts.BatchSize {
				morselRows = opts.BatchSize
			}
			numMorsels := (n + morselRows - 1) / morselRows
			bsp.SetAttr("morsels", numMorsels)
			bsp.SetAttr("workers", workers)
			partials = make([]*joinPartial, numMorsels)
			err = opts.Pool.Run(opts.Ctx, numMorsels, func(i int) error {
				if err := opts.Ctx.Err(); err != nil {
					return err
				}
				lo := i * morselRows
				hi := lo + morselRows
				if hi > n {
					hi = n
				}
				part := js.newPartial()
				if err := scan(lo, hi, js.mkBuildAbsorb(part, bsp)); err != nil {
					return err
				}
				partials[i] = part
				return nil
			})
		}
	}
	if !parallel {
		part := js.newPartial()
		err = js.r.run(js.mkBuildAbsorb(part, bsp))
		partials = []*joinPartial{part}
	}
	fold.SetAttr("parallel_build", parallel)
	bsp.End()
	if err != nil {
		fold.End()
		return nil, nil, err
	}
	ssp := fold.Child("join_seal")
	idx, err := js.seal(partials)
	ssp.End()
	if err != nil {
		fold.End()
		return nil, nil, err
	}
	fold.SetAttr("build_rows", idx.entries)
	fold.SetAttr("table_bytes", idx.bytes)
	fold.End()
	if js.opts.JoinStats != nil {
		js.opts.JoinStats(1, idx.entries, 0, idx.bytes)
	}
	return idx, fold, nil
}

// mkProber stages one probe pipeline over the sealed index: a batchSink
// probing each live row and packing matches into sink. All scratch
// (packer, row buffer, hash vectors) is per-prober, so one prober serves
// one serial run or one probe-morsel scan invocation. matched counts the
// rows this prober emitted (for the delta-style JoinStats hook); psp
// accumulates the same count atomically across concurrent probers.
func (js *joinState) mkProber(idx *joinIndex, psp *trace.Span, sink batchSink) (probe batchSink, pk *vec.Packer, matched *int64) {
	pk = vec.NewPacker(js.lw+js.rw, js.opts.BatchSize, nil, sink)
	buf := make([]values.Value, js.lw+js.rw)
	var hs []uint64
	var hsValid []bool
	matched = new(int64)
	lSlot, rSlot := js.lSlot, js.rSlot
	// entryMatches verifies key equality on a hash match. With slot keys
	// on both sides the comparison runs typed (colValEqual, no boxing);
	// a boxed side boxes only on hash matches, never per probed row.
	entryMatches := func(part *joinIndexPart, e int, b *vec.Batch, i int, kv values.Value) bool {
		if rSlot >= 0 {
			rb := &idx.retained[part.batch[e]]
			ri := int(part.row[e])
			if lSlot >= 0 {
				return colValEqual(&b.Cols[lSlot], i, &rb.Cols[rSlot], ri)
			}
			return values.Equal(kv, rb.Cols[rSlot].Value(ri))
		}
		if lSlot >= 0 {
			return values.Equal(b.Cols[lSlot].Value(i), part.keys[e])
		}
		return values.Equal(kv, part.keys[e])
	}
	probe = func(b *vec.Batch) error {
		cnt := b.Len()
		if lSlot >= 0 {
			// Vectorized probe: hash the key column once per batch.
			hs, hsValid = hashLiveCol(&b.Cols[lSlot], b, hs[:0], hsValid[:0])
		}
		var delta int64
		for k := 0; k < cnt; k++ {
			i := b.Index(k)
			var kv values.Value
			var h uint64
			if lSlot >= 0 {
				if !hsValid[k] {
					continue
				}
				h = hs[k]
			} else {
				fillRow(b, i, buf[:js.lw])
				var ok bool
				var err error
				kv, ok, err = joinKeyOf(buf[:js.lw], js.lKeys)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				h = kv.Hash()
			}
			part := &idx.parts[h>>js.shift]
			filled := lSlot < 0
			for e := part.head[h&part.mask]; e != 0; e = part.next[e-1] {
				ei := int(e - 1)
				if part.hashes[ei] != h || !entryMatches(part, ei, b, i, kv) {
					continue
				}
				if !filled {
					fillRow(b, i, buf[:js.lw])
					filled = true
				}
				rb := &idx.retained[part.batch[ei]]
				ri := int(part.row[ei])
				for s := 0; s < js.rw; s++ {
					buf[js.lw+s] = rb.Cols[s].Value(ri)
				}
				if js.residual != nil {
					pv, err := js.residual(buf)
					if err != nil {
						return err
					}
					if !(pv.Kind() == values.KindBool && pv.Bool()) {
						continue
					}
				}
				delta++
				if err := pk.Add(buf); err != nil {
					return err
				}
			}
		}
		if delta != 0 {
			psp.AddRows(delta)
			*matched += delta
		}
		return nil
	}
	return probe, pk, matched
}

// plan assembles the compiledPlan for a staged join: a serial run path
// (build may still go parallel; the probe is one pipeline) and, when the
// probe side is partitionable, an openRange path probing morsel-parallel
// against the eagerly sealed index.
func (js *joinState) plan(f *frame) *compiledPlan {
	cp := &compiledPlan{frame: f}
	cp.run = func(sink batchSink) error {
		idx, fold, err := js.buildIndex()
		if err != nil {
			return err
		}
		psp := fold.Child("join_probe")
		probe, pk, matched := js.mkProber(idx, psp, sink)
		err = js.l.run(probe)
		if err == nil {
			err = pk.Flush()
		}
		psp.End()
		if js.opts.JoinStats != nil {
			js.opts.JoinStats(0, 0, *matched, 0)
		}
		return err
	}
	if js.l.openRange == nil {
		return cp
	}
	cp.openRange = func() (func(lo, hi int, sink batchSink) error, int, bool) {
		pscan, n, ok := js.l.openRange()
		if !ok || n < js.opts.ParallelThreshold {
			// Below the root's own parallel gate the caller would fall
			// back to run() anyway; declining here avoids building the
			// index twice.
			return nil, 0, false
		}
		// Eager build: openRange is called on the query's main goroutine
		// before any probe morsel is dispatched, so a parallel build's
		// Pool.Run never nests inside pool workers. A build failure is
		// stashed and surfaces from every probe morsel, preserving typed
		// errors (e.g. the memory-budget kill) through the scheduler.
		idx, fold, err := js.buildIndex()
		var psp *trace.Span
		if err == nil {
			psp = fold.Child("join_probe")
			psp.SetAttr("parallel", true)
			// psp stays open: probe morsels AddRows concurrently until
			// the root finishes, and the tracer's Finish settles it.
		}
		return func(lo, hi int, sink batchSink) error {
			if err != nil {
				return err
			}
			probe, pk, matched := js.mkProber(idx, psp, sink)
			if perr := pscan(lo, hi, probe); perr != nil {
				return perr
			}
			if perr := pk.Flush(); perr != nil {
				return perr
			}
			if js.opts.JoinStats != nil {
				js.opts.JoinStats(0, 0, *matched, 0)
			}
			return nil
		}, n, true
	}
	return cp
}
