package jit

import (
	"context"
	"fmt"
	"sync"

	"vida/internal/algebra"
	"vida/internal/values"
	"vida/internal/vec"
)

// This file implements the pull-sink execution mode: instead of folding
// the root reduce into a monoid collector, collection-rooted plans emit
// their head values in chunks to a caller-supplied sink, so a consumer
// can process (or abandon) a large result batch-at-a-time with bounded
// memory. See doc.go for how this mode relates to the collect mode.

// StreamSink receives one chunk of head values. Ownership of the slice
// transfers to the sink: the producer allocates a fresh chunk per
// emission, so sinks may retain or hand it to another goroutine without
// copying. Under morsel-parallel streaming the sink is invoked
// concurrently from pool workers and must be safe for concurrent calls
// (a channel send qualifies).
type StreamSink func(chunk []values.Value) error

// CanStream reports whether the plan's root monoid supports pull-based
// streaming: the collection monoids whose fold is just element
// accumulation. Scalar aggregates (count/sum/...), avg/median (which
// finalize auxiliary state) and array construction stay on the collect
// path.
func CanStream(p *algebra.Reduce) bool {
	switch p.M.Name() {
	case "list", "bag", "set":
		return true
	}
	return false
}

// RunStream executes a collection-rooted plan in pull-sink mode,
// emitting head-value chunks to emit instead of collecting them. Chunk
// order follows the serial pipeline for the list monoid; for the
// commutative bag and set monoids large scans go morsel-parallel and
// chunks arrive in completion order (the result is a bag — element
// order is not part of its semantics). Set deduplication is the
// consumer's concern: the raw element stream is emitted.
func (e Executor) RunStream(ctx context.Context, p *algebra.Reduce, cat algebra.Catalog, emit StreamSink) error {
	opts := e.Opts
	opts.Ctx = ctx
	prog, err := CompileStream(p, cat, opts)
	if err != nil {
		return err
	}
	return prog(emit)
}

// CompileStream stages a collection-rooted plan into a pull-sink
// program. Compilation is identical to CompileWith up to the root: the
// same staged pipeline feeds a streamConsumer that evaluates the reduce
// head per live row and flushes fixed-size chunks, rather than a
// reduceConsumer folding into a collector.
func CompileStream(p *algebra.Reduce, cat algebra.Catalog, opts Options) (func(emit StreamSink) error, error) {
	if !CanStream(p) {
		return nil, fmt.Errorf("jit: cannot stream %s-monoid results", p.M.Name())
	}
	opts = opts.withDefaults()
	c := &compiler{cat: cat, opts: opts}
	if sc, ok := cat.(SchemaCatalog); ok {
		c.schemas = sc
	}
	env, err := c.materializeFreeSources(p)
	if err != nil {
		return nil, err
	}
	c.baseEnv = env

	input, err := c.compilePlan(p.Input)
	if err != nil {
		return nil, err
	}
	// Grouped reduces fold the input into the group table first (single
	// scan), then stream group rows through the unchanged root consumers
	// with the grouping clause stripped (Pred is HAVING).
	if p.Grouped() {
		input, err = c.compileGroupAgg(p, input)
		if err != nil {
			return nil, err
		}
		p = shadowGrouped(p)
	}
	// Ordered plans are blocking at the root: the keyed top-k fold runs
	// to completion (morsel-parallel, O(offset+limit) retained per
	// worker when a limit is present), then the sorted, deduplicated,
	// offset/limit-applied elements stream out in chunks — the NDJSON
	// path emits ordered output without buffering beyond the heap.
	if p.Order.Ordered() {
		mkCons, desc, err := c.compileOrderedConsumer(p, input)
		if err != nil {
			return nil, err
		}
		return c.reportKernelsStream(func(emit StreamSink) error {
			sp := opts.Trace.Child("fold")
			sp.SetAttr("kind", "topk")
			defer sp.End()
			limit, offset, keep, dedup, err := resolveOrder(p)
			if err != nil {
				return err
			}
			acc, err := runTopK(opts.Ctx, input, mkCons, desc, keep, opts)
			if err != nil {
				return err
			}
			return emitChunks(acc.Finalize(offset, limit, dedup), opts.BatchSize, emit)
		}, nil)
	}
	mkCons, err := c.compileStreamConsumer(p, input)
	if err != nil {
		return nil, err
	}
	commutative := p.M.Commutative()
	// A bare LIMIT/OFFSET pushes a row quota into the stream: offset
	// rows are dropped, at most limit rows emitted, and the remaining
	// producers are cancelled through the scheduler. Set plans dedup
	// before the quota, so LIMIT bounds distinct elements.
	if p.Order != nil {
		name := p.M.Name()
		return c.reportKernelsStream(func(emit StreamSink) error {
			sp := opts.Trace.Child("fold")
			sp.SetAttr("kind", "limit")
			defer sp.End()
			return runBoundedStream(p, input, mkCons, commutative, name, emit, opts)
		}, nil)
	}
	return c.reportKernelsStream(func(emit StreamSink) error {
		sp := opts.Trace.Child("fold")
		sp.SetAttr("kind", "stream")
		defer sp.End()
		if opts.Workers > 1 && commutative && input.openRange != nil {
			if scan, n, ok := input.openRange(); ok && n >= opts.ParallelThreshold {
				popts := opts
				popts.Trace = sp
				sp.SetAttr("parallel", true)
				return runParallelStream(popts.Ctx, scan, n, mkCons, emit, popts)
			}
		}
		sc := mkCons(emit)
		if err := input.run(sc.consume); err != nil {
			return err
		}
		return sc.flush()
	}, nil)
}

// reportKernelsStream mirrors reportKernels for pull-sink programs.
func (c *compiler) reportKernelsStream(prog func(StreamSink) error, err error) (func(StreamSink) error, error) {
	if err != nil {
		return nil, err
	}
	if c.opts.KernelStats != nil {
		c.opts.KernelStats(c.vecStages, c.boxedStages)
	}
	if sp := c.opts.Trace; sp != nil {
		sp.SetAttr("kernels_vectorized", c.vecStages)
		sp.SetAttr("kernels_boxed", c.boxedStages)
		sp.SetAttr("boxed_fallback", c.boxedStages > 0)
	}
	return prog, nil
}

// DedupSink decorates a sink with set-monoid deduplication: each
// element is forwarded at most once across all producers, first
// occurrence wins (hash index with equality chains, mutex-guarded
// because morsel workers emit concurrently). Note the memory contract:
// streaming distinct requires remembering every distinct element seen,
// so a deduped stream is O(distinct result) resident — unlike list/bag
// streams, which are O(channel buffer). The cursor layer applies it to
// plain set streams; bounded set plans dedup inside the quota pipeline
// so LIMIT counts distinct elements. Because the dedup table is exactly
// that O(distinct) resident state, reserve (when non-nil, the query's
// memory-budget charge; see Options.MemReserve) is charged for every
// element the table remembers.
func DedupSink(next StreamSink, reserve func(delta int64) error) StreamSink {
	var mu sync.Mutex
	seen := map[uint64][]values.Value{}
	return func(chunk []values.Value) error {
		mu.Lock()
		fresh := make([]values.Value, 0, len(chunk))
		var freshBytes int64
		for _, v := range chunk {
			h := v.Hash()
			dup := false
			for _, o := range seen[h] {
				if values.Equal(v, o) {
					dup = true
					break
				}
			}
			if !dup {
				seen[h] = append(seen[h], v)
				fresh = append(fresh, v)
				if reserve != nil {
					freshBytes += approxValueBytes(v)
				}
			}
		}
		mu.Unlock()
		if reserve != nil && freshBytes > 0 {
			if err := reserve(freshBytes); err != nil {
				return err
			}
		}
		if len(fresh) == 0 {
			return nil
		}
		return next(fresh)
	}
}

// emitChunks streams a materialized element slice to a sink in
// size-bounded chunks (each chunk freshly allocated: ownership transfers
// to the sink).
func emitChunks(elems []values.Value, size int, emit StreamSink) error {
	for len(elems) > 0 {
		n := size
		if n > len(elems) {
			n = len(elems)
		}
		chunk := make([]values.Value, n)
		copy(chunk, elems[:n])
		elems = elems[n:]
		if err := emit(chunk); err != nil {
			return err
		}
	}
	return nil
}

// runParallelStream drives a partitionable pipeline morsel-parallel with
// every worker emitting finished chunks straight to the shared sink.
// Unlike runParallelReduce there is no merge stage: the sink (typically
// a bounded channel) is the merge point, and backpressure from a slow
// consumer blocks workers in emit, which in turn stalls morsel dispatch
// — bounded memory end to end.
func runParallelStream(ctx context.Context, scan func(lo, hi int, sink batchSink) error, n int, mkCons func(StreamSink) *streamConsumer, emit StreamSink, opts Options) error {
	workers := opts.Workers
	morselRows := (n + workers*4 - 1) / (workers * 4)
	if morselRows < opts.BatchSize {
		morselRows = opts.BatchSize
	}
	numMorsels := (n + morselRows - 1) / morselRows
	return opts.Pool.Run(ctx, numMorsels, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		// One consumer per morsel: its chunk buffers are handed off to
		// the sink, so pooling them would not help.
		sc := mkCons(emit)
		lo := i * morselRows
		hi := lo + morselRows
		if hi > n {
			hi = n
		}
		if err := scan(lo, hi, sc.consume); err != nil {
			return err
		}
		return sc.flush()
	})
}

// streamConsumer turns pipeline batches into chunks of evaluated head
// values. One consumer serves one serial run or one morsel.
type streamConsumer struct {
	filter     batchFilter // may be nil
	headIdx    int         // >= 0: head is this slot (no per-row evaluation)
	headKernel vecExpr     // non-nil: head computed per batch by a kernel
	head       compiledExpr
	row        []values.Value
	chunk      []values.Value
	size       int
	emit       StreamSink
}

func (sc *streamConsumer) consume(b *vec.Batch) error {
	if sc.filter != nil {
		if err := sc.filter(b); err != nil {
			return err
		}
	}
	n := b.Len()
	var headCol *vec.Col
	if sc.headKernel != nil && n > 0 {
		var err error
		headCol, err = sc.headKernel(b)
		if err != nil {
			return err
		}
	}
	for k := 0; k < n; k++ {
		i := b.Index(k)
		var v values.Value
		switch {
		case sc.headIdx >= 0:
			v = b.Cols[sc.headIdx].Value(i)
		case headCol != nil:
			v = headCol.Value(i)
		default:
			fillRow(b, i, sc.row)
			var err error
			v, err = sc.head(sc.row)
			if err != nil {
				return err
			}
		}
		sc.chunk = append(sc.chunk, v)
		if len(sc.chunk) >= sc.size {
			if err := sc.flush(); err != nil {
				return err
			}
		}
	}
	// Flush at every input-batch boundary: a slow or sparse producer must
	// not sit on buffered rows until the chunk fills — first-row latency
	// tracks the scan, not the result density.
	return sc.flush()
}

// flush emits the buffered chunk (ownership transfers) and starts a new
// one. Safe to call with an empty buffer.
func (sc *streamConsumer) flush() error {
	if len(sc.chunk) == 0 {
		return nil
	}
	chunk := sc.chunk
	sc.chunk = make([]values.Value, 0, sc.size)
	return sc.emit(chunk)
}

// compileStreamConsumer stages the root of a streaming plan: optional
// inline predicate, head evaluation (slot fast path when the head is a
// pure slot reference) and chunk assembly.
func (c *compiler) compileStreamConsumer(p *algebra.Reduce, input *compiledPlan) (func(StreamSink) *streamConsumer, error) {
	var mkFilter func() batchFilter
	var err error
	if p.Pred != nil {
		mkFilter, err = c.compileFilter(p.Pred, input.frame)
		if err != nil {
			return nil, err
		}
	}
	headIdx := slotOf(p.Head, input.frame)
	var mkHeadKernel func() vecExpr
	var head compiledExpr
	if headIdx < 0 {
		if !c.opts.NoExprKernels {
			mkHeadKernel = compileVecExpr(p.Head, input.frame)
		}
		if mkHeadKernel == nil {
			head, err = c.compileExpr(p.Head, input.frame)
			if err != nil {
				return nil, err
			}
		}
	}
	width := input.frame.width()
	size := c.opts.BatchSize
	return func(emit StreamSink) *streamConsumer {
		sc := &streamConsumer{headIdx: headIdx, head: head, size: size, emit: emit}
		sc.chunk = make([]values.Value, 0, size)
		if mkHeadKernel != nil {
			sc.headKernel = mkHeadKernel()
		} else if headIdx < 0 {
			sc.row = make([]values.Value, width)
		}
		if mkFilter != nil {
			sc.filter = mkFilter()
		}
		return sc
	}, nil
}
