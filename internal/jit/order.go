package jit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vida/internal/algebra"
	"vida/internal/monoid"
	"vida/internal/values"
	"vida/internal/vec"
)

// This file implements ORDER BY / LIMIT / OFFSET pushdown: the root
// reduce of an ordered plan becomes a keyed top-k fold (bounded to
// offset+limit entries when a limit is present) executed serially or
// morsel-parallel with per-worker partial heaps merged at the root, and
// a bare LIMIT on a collection plan becomes a row quota that cancels the
// remaining producers through the scheduler the moment enough rows have
// been emitted — a cold 300k-row scan with LIMIT 10 stops mid-file.

// errLimitReached is the internal control-flow sentinel a quota sink
// returns to stop its pipeline. It never escapes to callers: the
// execution roots translate it (and the cancellations it triggers in
// sibling morsel workers) into successful early completion.
var errLimitReached = errors.New("jit: row limit reached")

// orderedConsumer evaluates sort keys and the head per live row and
// folds them into a keyed top-k accumulator. One consumer serves one
// serial run or one morsel; reset swaps the accumulator between morsels.
type orderedConsumer struct {
	acc         *monoid.TopKAcc
	filter      batchFilter // may be nil
	keyIdxs     []int       // per key: >= 0 slot fast path, -1 via kernel/expr
	keyKernels  []vecExpr   // per key: non-nil vectorized kernel
	keyCols     []*vec.Col  // per-batch kernel outputs (scratch)
	keyEs       []compiledExpr
	headIdx     int // >= 0: head is this slot
	head        compiledExpr
	row         []values.Value
	keys        []values.Value // reusable key scratch (fresh after retention)
	needRowKeys bool
	needRowHead bool
}

func (oc *orderedConsumer) reset(acc *monoid.TopKAcc) { oc.acc = acc }

func (oc *orderedConsumer) consume(b *vec.Batch) error {
	if oc.filter != nil {
		if err := oc.filter(b); err != nil {
			return err
		}
	}
	n := b.Len()
	if n == 0 {
		return nil
	}
	// Kernel keys evaluate once per batch; rows then box only the key
	// values they feed into the competitiveness check.
	for j, kk := range oc.keyKernels {
		if kk == nil {
			continue
		}
		kc, err := kk(b)
		if err != nil {
			return err
		}
		oc.keyCols[j] = kc
	}
	for k := 0; k < n; k++ {
		i := b.Index(k)
		if oc.needRowKeys {
			fillRow(b, i, oc.row)
		}
		if oc.keys == nil {
			oc.keys = make([]values.Value, len(oc.keyIdxs))
		}
		keys := oc.keys
		for j, idx := range oc.keyIdxs {
			if idx >= 0 {
				keys[j] = b.Cols[idx].Value(i)
				continue
			}
			if oc.keyCols[j] != nil {
				keys[j] = oc.keyCols[j].Value(i)
				continue
			}
			kv, err := oc.keyEs[j](oc.row)
			if err != nil {
				return err
			}
			keys[j] = kv
		}
		// Keys-only pre-check: rows that cannot place skip row
		// materialization and head evaluation (the record build is the
		// per-row cost of wide selects) and reuse the key buffer — the
		// steady state of a large scan under a small limit folds
		// allocation-free.
		if !oc.acc.Competitive(keys) {
			continue
		}
		var h values.Value
		if oc.headIdx >= 0 {
			h = b.Cols[oc.headIdx].Value(i)
		} else {
			if oc.needRowHead && !oc.needRowKeys {
				fillRow(b, i, oc.row)
			}
			var err error
			h, err = oc.head(oc.row)
			if err != nil {
				return err
			}
		}
		if oc.acc.Offer(keys, h) {
			oc.keys = nil
		}
	}
	return nil
}

// compileOrderedConsumer stages the keyed top-k root: optional inline
// predicate, per-key slot fast paths, head evaluation.
func (c *compiler) compileOrderedConsumer(p *algebra.Reduce, input *compiledPlan) (func() *orderedConsumer, []bool, error) {
	var mkFilter func() batchFilter
	var err error
	if p.Pred != nil {
		mkFilter, err = c.compileFilter(p.Pred, input.frame)
		if err != nil {
			return nil, nil, err
		}
	}
	keys := p.Order.Keys
	desc := make([]bool, len(keys))
	keyIdxs := make([]int, len(keys))
	mkKeyKernels := make([]func() vecExpr, len(keys))
	keyEs := make([]compiledExpr, len(keys))
	needRowKeys := false
	for i, k := range keys {
		desc[i] = k.Desc
		keyIdxs[i] = slotOf(k.E, input.frame)
		if keyIdxs[i] < 0 {
			if !c.opts.NoExprKernels {
				mkKeyKernels[i] = compileVecExpr(k.E, input.frame)
			}
			if mkKeyKernels[i] != nil {
				continue
			}
			keyEs[i], err = c.compileExpr(k.E, input.frame)
			if err != nil {
				return nil, nil, err
			}
			needRowKeys = true
		}
	}
	headIdx := slotOf(p.Head, input.frame)
	var head compiledExpr
	needRowHead := false
	if headIdx < 0 {
		head, err = c.compileExpr(p.Head, input.frame)
		if err != nil {
			return nil, nil, err
		}
		needRowHead = true
	}
	width := input.frame.width()
	return func() *orderedConsumer {
		oc := &orderedConsumer{
			keyIdxs: keyIdxs, keyEs: keyEs, headIdx: headIdx, head: head,
			needRowKeys: needRowKeys, needRowHead: needRowHead,
			keyKernels: make([]vecExpr, len(keys)),
			keyCols:    make([]*vec.Col, len(keys)),
		}
		for i, mk := range mkKeyKernels {
			if mk != nil {
				oc.keyKernels[i] = mk()
			}
		}
		if needRowKeys || needRowHead {
			oc.row = make([]values.Value, width)
		}
		if mkFilter != nil {
			oc.filter = mkFilter()
		}
		return oc
	}, desc, nil
}

// runTopK executes an ordered plan's fold: morsel-parallel over a
// partitionable input (partial heaps merged at the root — sound for any
// collection monoid, since the final sort's total order is independent
// of input order), serial otherwise. It returns the accumulator, ready
// to Finalize.
func runTopK(ctx context.Context, input *compiledPlan, mkCons func() *orderedConsumer, desc []bool, keep int, opts Options) (*monoid.TopKAcc, error) {
	if opts.Workers > 1 && input.openRange != nil {
		if scan, n, ok := input.openRange(); ok && n >= opts.ParallelThreshold {
			return runParallelTopK(ctx, scan, n, mkCons, desc, keep, opts)
		}
	}
	acc := monoid.NewTopKAcc(desc, keep)
	oc := mkCons()
	oc.reset(acc)
	if err := input.run(oc.consume); err != nil {
		return nil, err
	}
	return acc, nil
}

// runParallelTopK is runParallelReduce for the keyed top-k fold: each
// morsel folds its rows into a bounded partial heap, and partials merge
// at the root. Keeping every partial bounded to keep entries makes the
// whole parallel fold O(workers × keep) resident.
func runParallelTopK(ctx context.Context, scan func(lo, hi int, sink batchSink) error, n int, mkCons func() *orderedConsumer, desc []bool, keep int, opts Options) (*monoid.TopKAcc, error) {
	workers := opts.Workers
	morselRows := (n + workers*4 - 1) / (workers * 4)
	if morselRows < opts.BatchSize {
		morselRows = opts.BatchSize
	}
	numMorsels := (n + morselRows - 1) / morselRows

	partials := make([]*monoid.TopKAcc, numMorsels)
	consumers := sync.Pool{New: func() any { return mkCons() }}
	err := opts.Pool.Run(ctx, numMorsels, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		oc := consumers.Get().(*orderedConsumer)
		defer consumers.Put(oc)
		lo := i * morselRows
		hi := lo + morselRows
		if hi > n {
			hi = n
		}
		acc := monoid.NewTopKAcc(desc, keep)
		oc.reset(acc)
		if err := scan(lo, hi, oc.consume); err != nil {
			return err
		}
		partials[i] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	root := monoid.NewTopKAcc(desc, keep)
	for _, part := range partials {
		if part != nil {
			root.MergeFrom(part)
		}
	}
	return root, nil
}

// rowQuota is the shared countdown of a bare-LIMIT stream: concurrent
// sinks reserve rows from it, and whoever takes the last row cancels the
// producers. offset rows are swallowed before any reach the consumer
// (bag semantics: which rows survive is unspecified under parallelism).
type rowQuota struct {
	skip   atomic.Int64 // rows still to drop (offset)
	left   atomic.Int64 // rows still to emit; negative once exhausted
	bound  bool         // false: unlimited (offset-only quota)
	failed atomic.Bool  // a sink error surfaced: never report completion
	cancel context.CancelFunc
}

func newRowQuota(limit, offset int, cancel context.CancelFunc) *rowQuota {
	q := &rowQuota{bound: limit >= 0, cancel: cancel}
	q.skip.Store(int64(offset))
	if limit >= 0 {
		q.left.Store(int64(limit))
	}
	return q
}

// admit reserves up to n rows: it returns how many of the next n rows to
// drop from the front (offset) and how many to emit after that. done
// reports that the quota is now exhausted and producers should stop.
func (q *rowQuota) admit(n int) (drop, emit int, done bool) {
	// Reserve from skip with a CAS loop: a racy double-decrement would
	// over-drop and return fewer than limit rows when the source has no
	// surplus beyond offset+limit.
	for {
		s := q.skip.Load()
		if s <= 0 {
			drop = 0
			break
		}
		taken := int64(n)
		if taken > s {
			taken = s
		}
		if q.skip.CompareAndSwap(s, s-taken) {
			drop = int(taken)
			break
		}
	}
	n -= drop
	if !q.bound {
		return drop, n, false
	}
	if n == 0 {
		return drop, 0, q.left.Load() <= 0
	}
	got := q.left.Add(int64(-n))
	switch {
	case got > 0:
		return drop, n, false
	case got+int64(n) > 0:
		// This reservation crossed zero: emit the remainder, then stop.
		return drop, int(got) + n, true
	default:
		return drop, 0, true
	}
}

// exhausted reports whether the quota has been fully served.
func (q *rowQuota) exhausted() bool {
	return q.bound && q.left.Load() <= 0
}

// wrap decorates a stream sink with the quota: chunks are trimmed to the
// remaining budget and the pipeline is stopped (errLimitReached plus
// context cancellation, which halts morsel dispatch in the scheduler)
// once the budget is spent.
func (q *rowQuota) wrap(next StreamSink) StreamSink {
	return func(chunk []values.Value) error {
		drop, emit, done := q.admit(len(chunk))
		if emit > 0 {
			if err := next(chunk[drop : drop+emit]); err != nil {
				// The budget was reserved before delivery: mark the
				// quota failed so an already-exhausted budget cannot
				// masquerade as successful completion downstream.
				q.failed.Store(true)
				return err
			}
		}
		if done {
			if q.cancel != nil {
				q.cancel()
			}
			return errLimitReached
		}
		return nil
	}
}

// swallowLimit maps quota-triggered terminations to success: the sentinel
// directly, or a cancellation that the quota itself caused. outer is the
// caller's context — if IT was cancelled, the cancellation is real.
func swallowLimit(err error, q *rowQuota, outer context.Context) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, errLimitReached) {
		return nil
	}
	if q != nil && q.exhausted() && !q.failed.Load() && outer.Err() == nil {
		// A sibling worker observed the quota's cancel before the sentinel
		// could surface; the stream is complete.
		return nil
	}
	return err
}

// resolveOrder evaluates an order spec against the options: concrete
// limit/offset plus the derived retention bound.
func resolveOrder(p *algebra.Reduce) (limit, offset, keep int, dedup bool, err error) {
	limit, offset, err = algebra.ResolveExtents(p.Order)
	if err != nil {
		return 0, 0, 0, false, err
	}
	dedup = p.M.Name() == "set"
	keep = -1
	if limit >= 0 && !dedup {
		keep = offset + limit
	}
	return limit, offset, keep, dedup, nil
}

// compileOrdered stages the execution root of an ordered plan (keys
// present) in collect mode.
func (c *compiler) compileOrdered(p *algebra.Reduce, input *compiledPlan) (func() (values.Value, error), error) {
	mkCons, desc, err := c.compileOrderedConsumer(p, input)
	if err != nil {
		return nil, err
	}
	opts := c.opts
	return func() (values.Value, error) {
		sp := opts.Trace.Child("fold")
		sp.SetAttr("kind", "topk")
		defer sp.End()
		limit, offset, keep, dedup, err := resolveOrder(p)
		if err != nil {
			return values.Null, err
		}
		acc, err := runTopK(opts.Ctx, input, mkCons, desc, keep, opts)
		if err != nil {
			return values.Null, err
		}
		return values.NewList(acc.Finalize(offset, limit, dedup)...), nil
	}, nil
}

// compileBareBound stages the execution root of a collection plan with a
// bare LIMIT/OFFSET (no sort keys) in collect mode: the streaming quota
// path runs underneath and the chunks are gathered into the declared
// collection, so the early-stop machinery is shared with cursors.
func (c *compiler) compileBareBound(p *algebra.Reduce, input *compiledPlan) (func() (values.Value, error), error) {
	if !monoid.IsCollection(p.M) || p.M.Name() == "array" {
		return nil, fmt.Errorf("jit: limit/offset on %s-monoid results", p.M.Name())
	}
	mkCons, err := c.compileStreamConsumer(p, input)
	if err != nil {
		return nil, err
	}
	opts := c.opts
	name := p.M.Name()
	commutative := p.M.Commutative()
	return func() (values.Value, error) {
		sp := opts.Trace.Child("fold")
		sp.SetAttr("kind", "limit")
		defer sp.End()
		var mu sync.Mutex
		var elems []values.Value
		collect := func(chunk []values.Value) error {
			mu.Lock()
			elems = append(elems, chunk...)
			mu.Unlock()
			return nil
		}
		if err := runBoundedStream(p, input, mkCons, commutative, name, collect, opts); err != nil {
			return values.Null, err
		}
		switch name {
		case "list":
			return values.NewList(elems...), nil
		case "set":
			return values.NewSet(elems...), nil
		default:
			return values.NewBag(elems...), nil
		}
	}, nil
}

// runBoundedStream drives a collection pipeline with the row quota
// applied: offset rows dropped, at most limit rows delivered to emit,
// producers cancelled as soon as the quota fills. Set plans dedup before
// the quota so LIMIT counts distinct elements.
func runBoundedStream(p *algebra.Reduce, input *compiledPlan, mkCons func(StreamSink) *streamConsumer, commutative bool, name string, emit StreamSink, opts Options) error {
	limit, offset, err := algebra.ResolveExtents(p.Order)
	if err != nil {
		return err
	}
	qctx, cancel := context.WithCancel(opts.Ctx)
	defer cancel()
	q := newRowQuota(limit, offset, cancel)
	sink := q.wrap(emit)
	if name == "set" {
		sink = DedupSink(sink, opts.MemReserve)
	}
	if opts.Workers > 1 && commutative && input.openRange != nil {
		if scan, n, ok := input.openRange(); ok && n >= opts.ParallelThreshold {
			err := runParallelStream(qctx, scan, n, mkCons, sink, opts)
			return swallowLimit(err, q, opts.Ctx)
		}
	}
	sc := mkCons(sink)
	if err := input.run(sc.consume); err != nil {
		return swallowLimit(err, q, opts.Ctx)
	}
	return swallowLimit(sc.flush(), q, opts.Ctx)
}
