package jit

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vida/internal/algebra"
	"vida/internal/rawcsv"
	"vida/internal/sdg"
	"vida/internal/values"
)

// csvCatalog registers one CSV file of n rows (id int, score int, bmi
// float) and returns the catalog plus the reader.
func csvCatalog(t *testing.T, n int) (*schemaCat, *rawcsv.Reader) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("id,score,bmi\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d.5\n", i, i%7, 20+i%11)
	}
	path := filepath.Join(t.TempDir(), "rows.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "score", Type: sdg.Int},
		sdg.Attr{Name: "bmi", Type: sdg.Float},
	))
	desc := sdg.DefaultDescription("R", sdg.FormatCSV, path, schema)
	rd, err := rawcsv.Open(desc)
	if err != nil {
		t.Fatal(err)
	}
	return &schemaCat{
		MapCatalog: algebra.MapCatalog{"R": rd},
		descs:      map[string]*sdg.Description{"R": desc},
	}, rd
}

// TestBatchBoundaryCorrectness sweeps row counts around the batch size —
// empty sources, single rows, exact multiples, one-over — against the
// reference executor, on both the cold (tokenizing) and warm (positional
// map) scan paths.
func TestBatchBoundaryCorrectness(t *testing.T) {
	queries := []string{
		`for { r <- R } yield count r`,
		`for { r <- R, r.score > 3 } yield sum r.id`,
		`for { r <- R, r.score > 3 } yield avg r.bmi`,
		`for { r <- R } yield list r.id`,
		`for { r <- R, r.score = 2 } yield bag (i := r.id)`,
	}
	for _, n := range []int{0, 1, 15, 16, 17, 31, 33, 64} {
		cat, _ := csvCatalog(t, n)
		for _, q := range queries {
			plan := planFor2(t, q, cat)
			want, err := algebra.Reference{}.Run(plan, cat)
			if err != nil {
				t.Fatalf("n=%d ref %q: %v", n, q, err)
			}
			ex := Executor{Opts: Options{BatchSize: 16}}
			for pass := 0; pass < 2; pass++ { // cold, then posmap-backed
				got, err := ex.Run(plan, cat)
				if err != nil {
					t.Fatalf("n=%d pass=%d jit %q: %v", n, pass, q, err)
				}
				if !values.Equal(got, want) {
					t.Fatalf("n=%d pass=%d %q diverged:\njit: %v\nref: %v", n, pass, q, got, want)
				}
			}
		}
	}
}

// TestSingleRowFile pins the smallest non-empty source.
func TestSingleRowFile(t *testing.T) {
	cat, _ := csvCatalog(t, 1)
	plan := planFor2(t, `for { r <- R } yield sum r.id`, cat)
	got, err := Executor{}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 0 {
		t.Fatalf("sum of single row ids = %v, want 0", got)
	}
}

// TestParallelMorselDeterminism asserts that morsel-parallel scans
// produce exactly the serial results for every collection monoid —
// including the non-commutative list, whose order the in-order partial
// merge must preserve — and the exact scalar monoids.
func TestParallelMorselDeterminism(t *testing.T) {
	cat, rd := csvCatalog(t, 5000)
	queries := []string{
		`for { r <- R, r.score > 1 } yield list r.id`,
		`for { r <- R } yield bag r.score`,
		`for { r <- R } yield set r.score`,
		`for { r <- R, r.score > 2 } yield sum r.id`,
		`for { r <- R } yield count r`,
		`for { r <- R } yield max r.id`,
		`for { r <- R, r.score = 3 } yield min r.id`,
	}
	serial := Executor{Opts: Options{Workers: 1}}
	parallel := Executor{Opts: Options{Workers: 8, ParallelThreshold: 1, BatchSize: 64}}
	for _, q := range queries {
		plan := planFor2(t, q, cat)
		want, err := serial.Run(plan, cat) // first run also builds the posmap
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		for trial := 0; trial < 3; trial++ {
			got, err := parallel.Run(plan, cat)
			if err != nil {
				t.Fatalf("parallel %q: %v", q, err)
			}
			if !values.Equal(got, want) {
				t.Fatalf("parallel %q diverged (trial %d):\npar: %v\nser: %v", q, trial, got, want)
			}
		}
	}
	if rd.StatsSnapshot()["posmap_scans"] == 0 {
		t.Fatal("parallel runs never touched the positional map fast path")
	}
}

// TestParallelErrorPropagation: a failure inside one morsel must surface
// as the query error, not hang or get lost.
func TestParallelErrorPropagation(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("id,score\n")
	for i := 0; i < 4000; i++ {
		sb.WriteString(fmt.Sprintf("%d,%d\n", i, i))
	}
	path := filepath.Join(t.TempDir(), "rows.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "score", Type: sdg.Int},
	))
	desc := sdg.DefaultDescription("R", sdg.FormatCSV, path, schema)
	rd, err := rawcsv.Open(desc)
	if err != nil {
		t.Fatal(err)
	}
	cat := &schemaCat{
		MapCatalog: algebra.MapCatalog{"R": rd},
		descs:      map[string]*sdg.Description{"R": desc},
	}
	// A head whose projection fails on every row: r.id.x projects through
	// an int.
	plan := planFor2(t, `for { r <- R } yield list r.id.x`, cat)
	serial := Executor{Opts: Options{Workers: 1}}
	if _, err := serial.Run(plan, cat); err == nil {
		t.Fatal("serial run should fail")
	}
	parallel := Executor{Opts: Options{Workers: 8, ParallelThreshold: 1, BatchSize: 64}}
	if _, err := parallel.Run(plan, cat); err == nil {
		t.Fatal("parallel run should fail")
	}
}

// TestVectorizedFilterShapes exercises the kernel shapes (const compare,
// flipped const, slot-vs-slot, conjunction, string compare) against the
// reference executor.
func TestVectorizedFilterShapes(t *testing.T) {
	rows := []values.Value{}
	names := []string{"ada", "bob", "eve", "dan", "zoe"}
	for i := 0; i < 37; i++ {
		rows = append(rows, rec("a", i%9, "b", float64(i%5)+0.5, "s", names[i%len(names)]))
	}
	xsType := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "a", Type: sdg.Int},
		sdg.Attr{Name: "b", Type: sdg.Float},
		sdg.Attr{Name: "s", Type: sdg.String},
	))
	cat := &schemaCat{
		MapCatalog: algebra.MapCatalog{"Xs": &algebra.SliceSource{SrcName: "Xs", Rows: rows}},
		descs:      map[string]*sdg.Description{"Xs": {Name: "Xs", Format: sdg.FormatTable, Schema: xsType}},
	}
	queries := []string{
		`for { x <- Xs, x.a > 4 } yield count x`,
		`for { x <- Xs, x.a >= 4 } yield count x`,
		`for { x <- Xs, x.a != 4 } yield count x`,
		`for { x <- Xs, 4 < x.a } yield count x`,
		`for { x <- Xs, x.a > 2.5 } yield count x`,
		`for { x <- Xs, x.b <= 2.5 } yield sum x.a`,
		`for { x <- Xs, x.s = "eve" } yield count x`,
		`for { x <- Xs, x.s < "dan" } yield count x`,
		`for { x <- Xs, x.a > 2, x.b < 3.0 } yield count x`,
		`for { x <- Xs, x.a > x.b } yield count x`,
	}
	for _, q := range queries {
		plan := planFor2(t, q, cat)
		want, err := algebra.Reference{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("ref %q: %v", q, err)
		}
		got, err := Executor{Opts: Options{BatchSize: 8}}.Run(plan, cat)
		if err != nil {
			t.Fatalf("jit %q: %v", q, err)
		}
		if !values.Equal(got, want) {
			t.Fatalf("%q diverged: jit=%v ref=%v", q, got, want)
		}
	}
}
