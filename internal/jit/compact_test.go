package jit

import (
	"testing"

	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/values"
	"vida/internal/vec"
)

// TestRetainForBuildCompactsSparseSelections is the regression test for
// the build-side retention bug: a heavily filtered transient batch used
// to retain every physical row; it must now retain only the survivors.
func TestRetainForBuildCompactsSparseSelections(t *testing.T) {
	const n = 1024
	b := &vec.Batch{Cols: make([]vec.Col, 2), N: n}
	b.Cols[0].Tag = vec.Int64
	b.Cols[1].Tag = vec.Str
	for i := 0; i < n; i++ {
		b.Cols[0].AppendInt(int64(i))
		b.Cols[1].AppendStr("payload-payload-payload")
	}
	b.Sel = []int{5, 99, 1000} // 3 of 1024 rows survive the filter

	stored, compacted := retainForBuild(b)
	if !compacted {
		t.Fatal("sparse transient batch was not compacted")
	}
	if stored.N != 3 {
		t.Fatalf("compacted batch has %d rows, want 3", stored.N)
	}
	full := b.Retain()
	if got, was := stored.MemoryBytes(), full.MemoryBytes(); got*10 > was {
		t.Fatalf("retained bytes did not shrink: compacted %d vs full %d", got, was)
	}
	// Row contents survive re-indexing.
	for k, want := range []int64{5, 99, 1000} {
		if got := stored.Cols[0].Value(k).Int(); got != want {
			t.Fatalf("compacted row %d = %d, want %d", k, got, want)
		}
	}

	// Dense selections and stable batches keep the zero/bulk-copy path.
	b.Sel = nil
	if _, compacted := retainForBuild(b); compacted {
		t.Fatal("dense batch was compacted")
	}
	b.Sel = []int{1}
	b.Stable = true
	if _, compacted := retainForBuild(b); compacted {
		t.Fatal("stable batch was compacted")
	}
}

// TestJoinWithSparseBuildSide proves the compacted build side still
// probes correctly (values, not indices, drive the join).
func TestJoinWithSparseBuildSide(t *testing.T) {
	mkRow := func(id int64, tag string) values.Value {
		return values.NewRecord(
			values.Field{Name: "id", Val: values.NewInt(id)},
			values.Field{Name: "tag", Val: values.NewString(tag)},
		)
	}
	var left, right []values.Value
	for i := int64(0); i < 3000; i++ {
		left = append(left, mkRow(i, "L"))
		right = append(right, mkRow(i, "R"))
	}
	cat := algebra.MapCatalog{
		"L": &algebra.SliceSource{SrcName: "L", Rows: left},
		"R": &algebra.SliceSource{SrcName: "R", Rows: right},
	}
	// Build side keeps ~1/1000 of rows: compaction triggers per batch.
	plan := &algebra.Reduce{
		M: bagM,
		Input: &algebra.Join{
			L: &algebra.Scan{Source: "L", Var: "l", Fields: []string{"id"}},
			R: &algebra.Select{
				Input: &algebra.Scan{Source: "R", Var: "r", Fields: []string{"id"}},
				Pred: &mcl.BinExpr{
					Op: mcl.OpEq,
					L:  &mcl.BinExpr{Op: mcl.OpMod, L: &mcl.ProjExpr{Rec: &mcl.VarExpr{Name: "r"}, Attr: "id"}, R: &mcl.ConstExpr{Val: values.NewInt(1000)}},
					R:  &mcl.ConstExpr{Val: values.NewInt(7)},
				},
			},
			On: []algebra.EquiPair{{
				LExpr: &mcl.ProjExpr{Rec: &mcl.VarExpr{Name: "l"}, Attr: "id"},
				RExpr: &mcl.ProjExpr{Rec: &mcl.VarExpr{Name: "r"}, Attr: "id"},
			}},
		},
		Head: &mcl.ProjExpr{Rec: &mcl.VarExpr{Name: "l"}, Attr: "id"},
	}
	v, err := Executor{}.Run(plan, cat)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v.Len() != 3 {
		t.Fatalf("join produced %d rows, want 3 (ids 7, 1007, 2007): %s", v.Len(), v)
	}
	want := map[int64]bool{7: true, 1007: true, 2007: true}
	for _, e := range v.Elems() {
		if !want[e.Int()] {
			t.Fatalf("unexpected join row %s", e)
		}
	}
}
