// Package jit implements ViDa's two execution engines over the algebra.
//
// # The just-in-time executor
//
// Every operator is generated at query time by composing specialized
// closures (paper §4). Attribute references are resolved to frame-slot
// indices at compile time, scan plugins decode only the attributes the
// query touches, non-blocking operator chains are fused into a single
// loop, and generic branches (type checks, record lookups) are eliminated
// where the schema is known. Closure staging is this reproduction's
// substitute for the paper's LLVM code generation — it removes the same
// interpretation overheads relative to the static engine.
//
// # Batch format
//
// The staged pipeline moves data batch-at-a-time rather than row-at-a-
// time: a vec.Batch is a fixed-capacity run of rows (default 1024)
// decomposed into per-slot column vectors. Columns are typed where the
// source schema allows — int64/float64/string payloads parsed straight
// from raw bytes, with an optional validity mask — and boxed
// ([]values.Value) otherwise. Filters refine a selection vector (Sel)
// instead of copying survivors, which lets columnar cache entries serve
// their slices zero-copy; values are boxed only at the typed→generic
// boundaries: interpreted expressions, join build sides, and the
// monoid-reduce root when no unboxed kernel applies.
//
// Scan plugins plug into the batch pipeline through three contracts, in
// preference order: BatchSource (column vectors, typed fast path),
// SlotSource (slot rows, packed into boxed batches), and plain
// algebra.Source (records, exploded into slots). Warm scans of
// previously-touched fields come from the typed columnar cache, which
// serves slice windows of its published vectors zero-copy.
//
// # Vectorized kernels
//
// Three kernel families keep hot paths off values.Value entirely; each
// dispatches on the columns' runtime representation once per batch, so
// the same staged pipeline serves typed CSV vectors, zero-copy cache
// slices and boxed fallback batches:
//
//   - Comparison filters refine the selection vector: slot⊕const,
//     slot⊕slot and conjunctions, with typed int/float/string loops.
//   - Expression kernels (vecexpr.go) stage arithmetic/projection
//     trees — + - * / % and negation over slots, numeric constants
//     folded into the kernel — into per-batch column loops. They feed
//     comparison filters over computed values, reduce heads, ORDER BY
//     key extraction, stream heads and Bind extension columns (which
//     then stay typed for everything downstream). Inputs that arrive
//     boxed at run time take a row-wise mcl.ApplyBinOp loop inside the
//     kernel, so semantics (null propagation, int/float promotion,
//     division-by-zero errors, string concatenation) are byte-identical
//     with the row engine. Options.NoExprKernels disables this family
//     for A/B benchmarks and fallback-equivalence tests.
//   - Join-key kernels (hash.go) hash the key column of each build and
//     probe batch in one tag-dispatched pass using the scalar hash
//     helpers of internal/values (typed rows hash identically to their
//     boxed forms), and verify hash matches with typed equality —
//     slot-keyed hash joins never box a key row.
//
// Unboxed reduce kernels cover the count/sum/avg/min/max monoids over
// slot or kernel heads; every other shape falls back to the row-wise
// compiled closures, batch by batch.
//
// # Grouped aggregation
//
// A Reduce carrying GroupBy keys stages a vectorized hash-aggregation
// consumer (groupagg.go) instead of a scalar fold: an open-addressing
// table maps key tuples to dense group indices, and each aggregate
// folds into a typed per-group accumulator array (count/sum/avg/
// min/max), with one boxed Collector per group as the generic
// fallback. Key hashing and aggregate-head evaluation run per batch
// through the same kernel families as ungrouped reduces; the per-row
// key equality check on a hash match compares column payloads against
// unpacked primitive mirrors of the stored keys, so the probe loop
// never touches a boxed values.Value. Partitionable scans fold
// morsel-parallel with per-worker tables merged at the root in morsel
// order, which keeps unordered group output in deterministic
// first-occurrence order. HAVING applies post-fold over the group
// scope, and the table's growth is charged against the query memory
// budget.
//
// # Morsel-parallel scans
//
// When the access path can serve arbitrary row ranges (RangeBatchSource —
// the CSV plugin over a built positional map, columnar cache entries) and
// the operator chain above it is per-row independent (scan, select, bind,
// generate), the root reduce runs the scan morsel-parallel: the row range
// is split into morsels handed out to Options.Workers workers, each
// worker drives a thread-local clone of the staged pipeline, and the
// per-morsel partial aggregates are merged at the root in morsel order.
// Merging partials with the monoid's associative ⊕ keeps results exactly
// equal to the serial fold, including for the non-commutative list
// monoid. Sources below Options.ParallelThreshold rows stay serial.
//
// # Partitioned parallel hash join
//
// Equi-joins (join.go) extend the same morsel machinery to both join
// sides. The build side scans morsel-parallel: each morsel hashes its
// key column with the join-key kernels, radix-partitions rows by the
// top hash bits into Options.JoinPartitions private chunks (null keys
// dropped — NULL = NULL never matches), and retains the batch,
// compacting it first when a selective filter left few survivors. A
// seal step concatenates the per-morsel partials in morsel order into
// one immutable index — per partition a power-of-two bucket-head array
// over entry chains that enumerate entries in build-scan order — after
// which probe morsels share the index without synchronization and
// produce output byte-identical to the serial join for any worker or
// partition count (pinned by the differential fuzzer in
// join_diff_test.go). Retained batches and index arrays charge the
// query memory budget; builds under Options.JoinBuildThreshold rows
// stay serial over an identical index layout. The join traces as a
// fold span (kind=join) with join_build/join_seal/join_probe children.
//
// # Pull-sink streaming mode
//
// Collection-rooted plans (list/bag/set reduces) have a second execution
// mode next to collect-into-a-Collector: CompileStream stages the same
// pipeline but replaces the root reduceConsumer with a streamConsumer
// that evaluates the head per live row and emits fixed-size chunks of
// head values to a caller-supplied StreamSink. Nothing above the root
// changes — the same scan plugins, vectorized filters and frames serve
// both modes. The sink owns each emitted chunk, so a cursor layer can
// hand chunks across a bounded channel without copying; backpressure
// from a slow consumer blocks the producer inside emit, which keeps
// resident memory at O(channel capacity × chunk size) regardless of
// result cardinality, and gives first-row latency independent of total
// result size. For the commutative bag and set monoids, large
// partitionable scans stream morsel-parallel with workers emitting
// chunks in completion order; the non-commutative list monoid streams
// serially so element order matches the collect mode exactly. Scalar
// aggregates keep the collect mode: their value is only known after the
// full fold, so there is nothing to stream.
//
// # ORDER BY / LIMIT / OFFSET pushdown
//
// An ordered plan (Reduce.Order with sort keys) replaces the root fold
// with a keyed top-k accumulator (monoid.TopKAcc): per live row the sort
// keys are evaluated (slot fast paths where they are pure column
// references) and the entry offered to a bounded heap retaining at most
// offset+limit entries — heap memory is O(offset+limit), never O(rows).
// A keys-only competitiveness pre-check rejects rows that cannot place
// before their head expression is evaluated, so a wide SELECT under a
// small LIMIT folds allocation-free in the steady state. The fold runs
// morsel-parallel over partitionable scans: each worker keeps its own
// bounded partial heap and partials merge at the root — sound for any
// collection monoid because the final sort's total order (keys, then the
// element value as tiebreaker) does not depend on input order, which
// also makes parallel top-k results deterministic across worker counts.
// Set plans deduplicate at finalize (first entry in key order wins), so
// DISTINCT + ORDER BY + LIMIT bounds distinct elements; dedup disables
// the heap bound. In stream mode the fold is blocking: chunks of the
// sorted, offset/limit-applied elements are emitted once the fold
// completes, so ordered NDJSON responses buffer nothing beyond the heap.
//
// A bare LIMIT/OFFSET (no sort keys) on a collection plan instead pushes
// a row quota into the stream: offset rows are dropped, at most limit
// rows emitted, and the moment the quota fills the remaining producers
// are cancelled — the sentinel stops the serial pipeline mid-scan and a
// context cancellation stops morsel dispatch in the shared scheduler, so
// a cold 300k-row scan under LIMIT 10 reads a few batches, not the file.
// Which rows survive a bare bag limit is unspecified (bag semantics);
// list plans take their in-order prefix. Collect mode shares the same
// quota machinery and gathers the surviving chunks into the declared
// collection.
//
// # The static executor
//
// Pre-cooked generic Volcano operators pipelined over Go channels,
// evaluating expressions by AST interpretation on every row. This mirrors
// the paper's own fallback engine ("the static executor is written in GO,
// exploiting GO's channels to offer pipelined execution") and serves as
// the baseline of the JIT-vs-static ablation (experiment E6).
package jit
