package jit

import (
	"fmt"

	"vida/internal/mcl"
	"vida/internal/values"
)

// frame describes the slot layout of rows flowing through a compiled
// pipeline. A slot is either one flattened attribute of a scan variable
// (fast path: projections compile to direct indexing) or a whole bound
// value (generic path: JSON objects, Generate/Bind results).
type frame struct {
	slots []slot
	index map[slotKey]int
}

type slotKey struct {
	varName string
	attr    string // empty = whole value
}

type slot struct {
	key slotKey
}

func newFrame() *frame {
	return &frame{index: map[slotKey]int{}}
}

// clone returns a copy that can be extended independently.
func (f *frame) clone() *frame {
	nf := newFrame()
	nf.slots = append(nf.slots, f.slots...)
	for k, v := range f.index {
		nf.index[k] = v
	}
	return nf
}

// add appends a slot and returns its index.
func (f *frame) add(varName, attr string) int {
	k := slotKey{varName: varName, attr: attr}
	if i, ok := f.index[k]; ok {
		return i
	}
	i := len(f.slots)
	f.slots = append(f.slots, slot{key: k})
	f.index[k] = i
	return i
}

// lookup finds a slot index.
func (f *frame) lookup(varName, attr string) (int, bool) {
	i, ok := f.index[slotKey{varName: varName, attr: attr}]
	return i, ok
}

// hasVar reports whether any slot belongs to varName.
func (f *frame) hasVar(name string) bool {
	for _, s := range f.slots {
		if s.key.varName == name {
			return true
		}
	}
	return false
}

// width returns the number of slots.
func (f *frame) width() int { return len(f.slots) }

// compiledExpr is an expression specialized against a frame.
type compiledExpr func(row []values.Value) (values.Value, error)

// compileExpr stages an expression into a closure over frame rows. Known
// shapes (slot references, arithmetic, comparisons, record construction,
// builtins) compile to direct closures with no AST interpretation; shapes
// the compiler does not specialize (nested comprehensions, lambdas) fall
// back to the calculus interpreter with an environment assembled from the
// row — mirroring how the paper's engine embeds subplans.
func (c *compiler) compileExpr(e mcl.Expr, f *frame) (compiledExpr, error) {
	switch n := e.(type) {
	case *mcl.NullExpr:
		return func([]values.Value) (values.Value, error) { return values.Null, nil }, nil
	case *mcl.ConstExpr:
		v := n.Val
		return func([]values.Value) (values.Value, error) { return v, nil }, nil
	case *mcl.VarExpr:
		if i, ok := f.lookup(n.Name, ""); ok {
			return func(row []values.Value) (values.Value, error) { return row[i], nil }, nil
		}
		if f.hasVar(n.Name) {
			// The variable was flattened into attribute slots; rebuild the
			// record on demand (rare: whole-record yield).
			var idxs []int
			var names []string
			for i, s := range f.slots {
				if s.key.varName == n.Name {
					idxs = append(idxs, i)
					names = append(names, s.key.attr)
				}
			}
			return func(row []values.Value) (values.Value, error) {
				fields := make([]values.Field, len(idxs))
				for k, i := range idxs {
					fields[k] = values.Field{Name: names[k], Val: row[i]}
				}
				return values.NewRecord(fields...), nil
			}, nil
		}
		// Free variable: a catalog source referenced inside the query.
		if v, ok := c.baseEnv.Lookup(n.Name); ok {
			return func([]values.Value) (values.Value, error) { return v, nil }, nil
		}
		return nil, fmt.Errorf("jit: unbound variable %q", n.Name)
	case *mcl.ProjExpr:
		if v, ok := n.Rec.(*mcl.VarExpr); ok {
			// Fast path: attribute slot resolved at compile time.
			if i, ok := f.lookup(v.Name, n.Attr); ok {
				return func(row []values.Value) (values.Value, error) { return row[i], nil }, nil
			}
			// Whole-value slot: runtime field lookup (open schemas).
			if i, ok := f.lookup(v.Name, ""); ok {
				attr := n.Attr
				return func(row []values.Value) (values.Value, error) {
					rec := row[i]
					if rec.IsNull() {
						return values.Null, nil
					}
					if rec.Kind() != values.KindRecord {
						return values.Null, fmt.Errorf("jit: projection .%s on %s", attr, rec.Kind())
					}
					out, _ := rec.Get(attr)
					return out, nil
				}, nil
			}
		}
		inner, err := c.compileExpr(n.Rec, f)
		if err != nil {
			return nil, err
		}
		attr := n.Attr
		return func(row []values.Value) (values.Value, error) {
			rec, err := inner(row)
			if err != nil {
				return values.Null, err
			}
			if rec.IsNull() {
				return values.Null, nil
			}
			if rec.Kind() != values.KindRecord {
				return values.Null, fmt.Errorf("jit: projection .%s on %s", attr, rec.Kind())
			}
			out, _ := rec.Get(attr)
			return out, nil
		}, nil
	case *mcl.RecordExpr:
		parts := make([]compiledExpr, len(n.Fields))
		names := make([]string, len(n.Fields))
		for i, fld := range n.Fields {
			ce, err := c.compileExpr(fld.Val, f)
			if err != nil {
				return nil, err
			}
			parts[i] = ce
			names[i] = fld.Name
		}
		return func(row []values.Value) (values.Value, error) {
			fields := make([]values.Field, len(parts))
			for i, p := range parts {
				v, err := p(row)
				if err != nil {
					return values.Null, err
				}
				fields[i] = values.Field{Name: names[i], Val: v}
			}
			return values.NewRecord(fields...), nil
		}, nil
	case *mcl.IfExpr:
		cond, err := c.compileExpr(n.Cond, f)
		if err != nil {
			return nil, err
		}
		then, err := c.compileExpr(n.Then, f)
		if err != nil {
			return nil, err
		}
		els, err := c.compileExpr(n.Else, f)
		if err != nil {
			return nil, err
		}
		return func(row []values.Value) (values.Value, error) {
			cv, err := cond(row)
			if err != nil {
				return values.Null, err
			}
			if cv.Kind() == values.KindBool && cv.Bool() {
				return then(row)
			}
			return els(row)
		}, nil
	case *mcl.BinExpr:
		return c.compileBin(n, f)
	case *mcl.NotExpr:
		inner, err := c.compileExpr(n.E, f)
		if err != nil {
			return nil, err
		}
		return func(row []values.Value) (values.Value, error) {
			v, err := inner(row)
			if err != nil {
				return values.Null, err
			}
			return values.NewBool(!(v.Kind() == values.KindBool && v.Bool())), nil
		}, nil
	case *mcl.NegExpr:
		inner, err := c.compileExpr(n.E, f)
		if err != nil {
			return nil, err
		}
		return func(row []values.Value) (values.Value, error) {
			v, err := inner(row)
			if err != nil {
				return values.Null, err
			}
			switch v.Kind() {
			case values.KindNull:
				return values.Null, nil
			case values.KindInt:
				return values.NewInt(-v.Int()), nil
			case values.KindFloat:
				return values.NewFloat(-v.Float()), nil
			}
			return values.Null, fmt.Errorf("jit: negation of %s", v.Kind())
		}, nil
	case *mcl.CallExpr:
		args := make([]compiledExpr, len(n.Args))
		for i, a := range n.Args {
			ce, err := c.compileExpr(a, f)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		name := n.Name
		return func(row []values.Value) (values.Value, error) {
			vals := make([]values.Value, len(args))
			for i, a := range args {
				v, err := a(row)
				if err != nil {
					return values.Null, err
				}
				vals[i] = v
			}
			return mcl.ApplyBuiltin(name, vals)
		}, nil
	case *mcl.ZeroExpr:
		m := n.M
		return func([]values.Value) (values.Value, error) { return m.Zero(), nil }, nil
	case *mcl.SingletonExpr:
		inner, err := c.compileExpr(n.E, f)
		if err != nil {
			return nil, err
		}
		m := n.M
		return func(row []values.Value) (values.Value, error) {
			v, err := inner(row)
			if err != nil {
				return values.Null, err
			}
			return m.Unit(v), nil
		}, nil
	case *mcl.MergeExpr:
		l, err := c.compileExpr(n.L, f)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(n.R, f)
		if err != nil {
			return nil, err
		}
		m := n.M
		return func(row []values.Value) (values.Value, error) {
			lv, err := l(row)
			if err != nil {
				return values.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return values.Null, err
			}
			mm := m
			if mm == nil {
				switch lv.Kind() {
				case values.KindList:
					mm = listM
				case values.KindBag:
					mm = bagM
				case values.KindSet:
					mm = setM
				default:
					return values.Null, fmt.Errorf("jit: ++ on %s", lv.Kind())
				}
			}
			return mm.Merge(lv, rv), nil
		}, nil
	case *mcl.IndexExpr:
		arr, err := c.compileExpr(n.Arr, f)
		if err != nil {
			return nil, err
		}
		idxs := make([]compiledExpr, len(n.Idxs))
		for i, ix := range n.Idxs {
			ce, err := c.compileExpr(ix, f)
			if err != nil {
				return nil, err
			}
			idxs[i] = ce
		}
		return func(row []values.Value) (values.Value, error) {
			av, err := arr(row)
			if err != nil {
				return values.Null, err
			}
			ii := make([]int, len(idxs))
			for k, ix := range idxs {
				v, err := ix(row)
				if err != nil {
					return values.Null, err
				}
				if v.Kind() != values.KindInt {
					return values.Null, fmt.Errorf("jit: index must be int")
				}
				ii[k] = int(v.Int())
			}
			switch av.Kind() {
			case values.KindArray:
				if len(ii) != len(av.Dims()) {
					return values.Null, fmt.Errorf("jit: index rank mismatch")
				}
				for d, i := range ii {
					if i < 0 || i >= av.Dims()[d] {
						return values.Null, fmt.Errorf("jit: index out of range")
					}
				}
				return av.At(ii...), nil
			case values.KindList:
				if len(ii) != 1 || ii[0] < 0 || ii[0] >= av.Len() {
					return values.Null, fmt.Errorf("jit: list index out of range")
				}
				return av.Elems()[ii[0]], nil
			case values.KindNull:
				return values.Null, nil
			}
			return values.Null, fmt.Errorf("jit: cannot index %s", av.Kind())
		}, nil
	case *mcl.Comprehension, *mcl.LambdaExpr, *mcl.ApplyExpr:
		// Generic fallback: correlated subplan evaluated by the calculus
		// interpreter against an environment assembled from the row.
		return c.interpreted(e, f), nil
	}
	return nil, fmt.Errorf("jit: cannot compile %T", e)
}

// interpreted builds the generic fallback closure for expression shapes
// the staged compiler does not specialize.
func (c *compiler) interpreted(e mcl.Expr, f *frame) compiledExpr {
	// Group slots per variable once, at compile time.
	type varSlots struct {
		whole int // -1 when flattened
		attrs []int
		names []string
	}
	groups := map[string]*varSlots{}
	order := []string{}
	for i, s := range f.slots {
		g := groups[s.key.varName]
		if g == nil {
			g = &varSlots{whole: -1}
			groups[s.key.varName] = g
			order = append(order, s.key.varName)
		}
		if s.key.attr == "" {
			g.whole = i
		} else {
			g.attrs = append(g.attrs, i)
			g.names = append(g.names, s.key.attr)
		}
	}
	base := c.baseEnv
	return func(row []values.Value) (values.Value, error) {
		env := base
		for _, name := range order {
			g := groups[name]
			if g.whole >= 0 {
				env = env.Bind(name, row[g.whole])
				continue
			}
			fields := make([]values.Field, len(g.attrs))
			for k, i := range g.attrs {
				fields[k] = values.Field{Name: g.names[k], Val: row[i]}
			}
			env = env.Bind(name, values.NewRecord(fields...))
		}
		return mcl.Eval(e, env)
	}
}

// compileBin stages binary operators, specializing the comparison and
// arithmetic dispatch once at compile time rather than per row.
func (c *compiler) compileBin(n *mcl.BinExpr, f *frame) (compiledExpr, error) {
	l, err := c.compileExpr(n.L, f)
	if err != nil {
		return nil, err
	}
	r, err := c.compileExpr(n.R, f)
	if err != nil {
		return nil, err
	}
	op := n.Op
	switch op {
	case mcl.OpAnd:
		return func(row []values.Value) (values.Value, error) {
			lv, err := l(row)
			if err != nil {
				return values.Null, err
			}
			if !(lv.Kind() == values.KindBool && lv.Bool()) {
				return values.False, nil
			}
			rv, err := r(row)
			if err != nil {
				return values.Null, err
			}
			return values.NewBool(rv.Kind() == values.KindBool && rv.Bool()), nil
		}, nil
	case mcl.OpOr:
		return func(row []values.Value) (values.Value, error) {
			lv, err := l(row)
			if err != nil {
				return values.Null, err
			}
			if lv.Kind() == values.KindBool && lv.Bool() {
				return values.True, nil
			}
			rv, err := r(row)
			if err != nil {
				return values.Null, err
			}
			return values.NewBool(rv.Kind() == values.KindBool && rv.Bool()), nil
		}, nil
	}
	return func(row []values.Value) (values.Value, error) {
		lv, err := l(row)
		if err != nil {
			return values.Null, err
		}
		rv, err := r(row)
		if err != nil {
			return values.Null, err
		}
		return mcl.ApplyBinOp(op, lv, rv)
	}, nil
}
