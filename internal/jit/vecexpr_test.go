package jit

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vida/internal/algebra"
	"vida/internal/rawcsv"
	"vida/internal/sdg"
	"vida/internal/values"
	"vida/internal/vec"
)

// kernelQueries exercise every staged kernel shape: arithmetic heads
// (int, float, mixed, constant-folded), computed filters against
// constants and against other computed columns, binds feeding typed
// extension columns, negation, integer division/modulo, string
// concatenation through the boxed kernel loop, and computed ORDER BY
// keys.
var kernelQueries = []string{
	`for { e <- Employees } yield sum (e.salary * 2.0 + 1.0)`,
	`for { e <- Employees } yield avg (e.id + e.deptNo)`,
	`for { e <- Employees } yield count (e.id + 1)`,
	`for { e <- Employees } yield min (-e.salary)`,
	`for { e <- Employees } yield sum (e.id % 3)`,
	`for { e <- Employees } yield sum (e.id / 2)`,
	`for { e <- Employees } yield sum (e.salary / 4.0)`,
	`for { e <- Employees } yield max (100 - e.id)`,
	`for { e <- Employees, e.salary + 10.0 > 95.0 } yield count e`,
	`for { e <- Employees, e.id * 100 > e.deptNo * 3 } yield count e`,
	`for { e <- Employees, e.salary * 0.5 > 40.0, e.id + 1 < 4 } yield sum e.salary`,
	`for { e <- Employees, b := e.id * 3 + 1, b > 5 } yield sum b`,
	`for { e <- Employees } yield list (e.name + e.name)`,
	`for { e <- Employees } yield bag (e.id * 2) order by e.salary * 2.0 desc limit 2`,
	`for { e <- Employees } yield list (e.id - e.deptNo) order by 0 - e.id limit 3`,
	`for { s <- Sparse, s.v + 1 > 2 } yield count s`,
	`for { s <- Sparse } yield bag (s.v * 2)`,
}

func sparseCatalog() *schemaCat {
	cat := testCatalog()
	// Sparse carries nulls in a numeric column: kernels must propagate
	// them exactly as mcl.ApplyBinOp (null arithmetic yields null, null
	// comparisons are false).
	cat.MapCatalog["Sparse"] = &algebra.SliceSource{SrcName: "Sparse", Rows: []values.Value{
		rec("k", 1, "v", 2),
		rec("k", 2, "v", values.Null),
		rec("k", 3, "v", 5),
	}}
	cat.descs["Sparse"] = &sdg.Description{Name: "Sparse", Format: sdg.FormatTable, Schema: sdg.Bag(sdg.Record(
		sdg.Attr{Name: "k", Type: sdg.Int},
		sdg.Attr{Name: "v", Type: sdg.Int},
	))}
	return cat
}

// TestVecExprKernelEquivalence pins the kernels to the row-wise
// fallback (NoExprKernels) and the reference executor: all three must
// agree on every kernel shape.
func TestVecExprKernelEquivalence(t *testing.T) {
	cat := sparseCatalog()
	for _, q := range kernelQueries {
		plan := planFor(t, q, cat)
		want, err := algebra.Reference{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		got, err := Executor{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("kernels %q: %v", q, err)
		}
		if !values.Equal(got, want) {
			t.Fatalf("kernels diverged on %q:\nkernels: %v\nref: %v", q, got, want)
		}
		fallback, err := Executor{Opts: Options{NoExprKernels: true}}.Run(plan, cat)
		if err != nil {
			t.Fatalf("fallback %q: %v", q, err)
		}
		if !values.Equal(fallback, want) {
			t.Fatalf("fallback diverged on %q:\nfallback: %v\nref: %v", q, fallback, want)
		}
	}
}

// TestVecExprKernelsOnTypedBatches runs the kernel shapes against a
// CSV-backed source (typed int64/float64/string column vectors with a
// validity mask from the empty null token), so the typed kernel loops —
// not just the boxed fallback — are exercised, including the second,
// posmap-served pass.
func TestVecExprKernelsOnTypedBatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	content := "id,score,name\n1,10.5,ada\n2,,bob\n3,30.25,eve\n4,12.0,dan\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "score", Type: sdg.Float},
		sdg.Attr{Name: "name", Type: sdg.String},
	))
	desc := sdg.DefaultDescription("M", sdg.FormatCSV, path, schema)
	rd, err := rawcsv.Open(desc)
	if err != nil {
		t.Fatal(err)
	}
	cat := &schemaCat{
		MapCatalog: algebra.MapCatalog{"M": rd},
		descs:      map[string]*sdg.Description{"M": desc},
	}
	queries := []string{
		`for { m <- M } yield sum (m.id * 10 + 1)`,
		`for { m <- M, m.score * 2.0 > 22.0 } yield count m`,
		`for { m <- M } yield bag (m.score + 0.5)`,
		`for { m <- M, m.id + m.id > 3 } yield list (m.name + m.name)`,
		`for { m <- M } yield list m.name order by 0 - m.id limit 2`,
	}
	for _, q := range queries {
		plan := planFor2(t, q, cat)
		want, err := algebra.Reference{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := Executor{}.Run(plan, cat)
			if err != nil {
				t.Fatalf("pass %d %q: %v", pass, q, err)
			}
			if !values.Equal(got, want) {
				t.Fatalf("pass %d diverged on %q:\ngot: %v\nref: %v", pass, q, got, want)
			}
		}
	}
}

// TestVecExprDivisionByZero checks the kernels surface the row engine's
// integer-division error.
func TestVecExprDivisionByZero(t *testing.T) {
	cat := testCatalog()
	plan := planFor(t, `for { e <- Employees } yield sum (e.id / (e.deptNo - e.deptNo))`, cat)
	_, kerr := Executor{}.Run(plan, cat)
	if kerr == nil || !strings.Contains(kerr.Error(), "division by zero") {
		t.Fatalf("kernel error = %v", kerr)
	}
	_, ferr := Executor{Opts: Options{NoExprKernels: true}}.Run(plan, cat)
	if ferr == nil || kerr.Error() != ferr.Error() {
		t.Fatalf("kernel error %q != fallback error %q", kerr, ferr)
	}
}

// TestHashLiveColMatchesBoxedHash pins the typed hash kernels to
// Value.Hash for every representation, including nulls and selection
// vectors.
func TestHashLiveColMatchesBoxedHash(t *testing.T) {
	b := &vec.Batch{Cols: make([]vec.Col, 4), N: 3, Sel: []int{0, 2}}
	b.Cols[0] = vec.Col{Tag: vec.Int64, Ints: []int64{7, -1, 42}}
	b.Cols[1] = vec.Col{Tag: vec.Float64, Floats: []float64{2.5, 0, math.NaN()}, Nulls: []bool{false, true, false}}
	b.Cols[2] = vec.Col{Tag: vec.Str, Strs: []string{"x", "", "yz"}}
	b.Cols[3] = vec.Col{Tag: vec.Boxed, Boxed: []values.Value{values.NewString("b"), values.Null, values.NewInt(9)}}
	for c := range b.Cols {
		hs, valid := hashLiveCol(&b.Cols[c], b, nil, nil)
		if len(hs) != 2 || len(valid) != 2 {
			t.Fatalf("col %d: %d hashes", c, len(hs))
		}
		for k, i := range b.Sel {
			v := b.Cols[c].Value(i)
			if v.IsNull() {
				if valid[k] {
					t.Fatalf("col %d row %d: null marked valid", c, i)
				}
				continue
			}
			if !valid[k] || hs[k] != v.Hash() {
				t.Fatalf("col %d row %d: hash %d != boxed %d", c, i, hs[k], v.Hash())
			}
		}
	}
}

// TestColValEqualCrossKind checks the typed equality used on hash
// matches agrees with values.Equal across representations.
func TestColValEqualCrossKind(t *testing.T) {
	ints := &vec.Col{Tag: vec.Int64, Ints: []int64{1, 3}}
	floats := &vec.Col{Tag: vec.Float64, Floats: []float64{1.0, 2.5}}
	strs := &vec.Col{Tag: vec.Str, Strs: []string{"a", "b"}}
	boxed := &vec.Col{Tag: vec.Boxed, Boxed: []values.Value{values.NewInt(1), values.NewString("b")}}
	if !colValEqual(ints, 0, floats, 0) {
		t.Fatal("1 != 1.0 (values.Equal says they match)")
	}
	if colValEqual(ints, 1, floats, 1) {
		t.Fatal("3 == 2.5")
	}
	if !colValEqual(strs, 1, strs, 1) || colValEqual(strs, 0, strs, 1) {
		t.Fatal("string equality broken")
	}
	if !colValEqual(ints, 0, boxed, 0) || !colValEqual(boxed, 1, strs, 1) {
		t.Fatal("boxed/typed equality broken")
	}
	nan := &vec.Col{Tag: vec.Float64, Floats: []float64{math.NaN()}}
	if !colValEqual(nan, 0, nan, 0) {
		t.Fatal("NaN must equal NaN (matching values.Compare)")
	}
}

// TestKernelNullConstFilterSurfacesErrors pins a review finding: a
// comparison of a computed expression against a null constant is
// uniformly false, but the computation itself must still run — the row
// engine evaluates both operands before comparing, so its errors (here
// an integer division by zero) must survive vectorization.
func TestKernelNullConstFilterSurfacesErrors(t *testing.T) {
	cat := sparseCatalog()
	plan := planFor(t, `for { e <- Employees, 100 / (e.id - 1) > null } yield bag e.id`, cat)
	_, refErr := algebra.Reference{}.Run(plan, cat)
	if refErr == nil {
		t.Fatal("reference must error (division by zero at e.id = 1)")
	}
	_, kerr := Executor{}.Run(plan, cat)
	if kerr == nil || kerr.Error() != refErr.Error() {
		t.Fatalf("kernel error %v, want %v", kerr, refErr)
	}
	// And when nothing errors, the null comparison filters everything.
	ok := planFor(t, `for { e <- Employees, e.id + 1 > null } yield count e`, cat)
	got, err := Executor{}.Run(ok, cat)
	if err != nil || got.Int() != 0 {
		t.Fatalf("null comparison: got %v, %v", got, err)
	}
}
