package jit

import (
	"vida/internal/values"
	"vida/internal/vec"
)

// This file holds the vectorized join-key kernels: hashing a key column
// for every live row of a batch in one tag-dispatched pass (no
// values.Value boxing on typed columns), and the typed key-equality
// check used on hash matches. The scalar hash helpers in
// internal/values guarantee a typed int64/float64/string row hashes
// identically to its boxed form, so typed and boxed batches of the same
// data land in the same hash-table buckets.

// hashLiveCol appends one hash per live row of col, in live order;
// valid[k] is false for null rows (null keys never join). The tag
// dispatch runs once per batch, the inner loops touch only the payload
// slices.
func hashLiveCol(col *vec.Col, b *vec.Batch, hs []uint64, valid []bool) ([]uint64, []bool) {
	n := b.Len()
	switch col.Tag {
	case vec.Int64:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if col.Nulls != nil && col.Nulls[i] {
				hs, valid = append(hs, 0), append(valid, false)
				continue
			}
			hs, valid = append(hs, values.HashInt(col.Ints[i])), append(valid, true)
		}
	case vec.Float64:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if col.Nulls != nil && col.Nulls[i] {
				hs, valid = append(hs, 0), append(valid, false)
				continue
			}
			hs, valid = append(hs, values.HashFloat(col.Floats[i])), append(valid, true)
		}
	case vec.Str:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if col.Nulls != nil && col.Nulls[i] {
				hs, valid = append(hs, 0), append(valid, false)
				continue
			}
			hs, valid = append(hs, values.HashString(col.Strs[i])), append(valid, true)
		}
	case vec.StrDict:
		// Dictionary keys hash their dictionary string so dict-encoded and
		// plain batches of the same data share hash-table buckets. The
		// per-code hash could be memoized, but dictionaries are small and
		// HashString is cheap relative to the probe that follows.
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if col.Nulls != nil && col.Nulls[i] {
				hs, valid = append(hs, 0), append(valid, false)
				continue
			}
			hs, valid = append(hs, values.HashString(col.Dict[col.Codes[i]])), append(valid, true)
		}
	default:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			v := col.Value(i)
			if v.IsNull() {
				hs, valid = append(hs, 0), append(valid, false)
				continue
			}
			hs, valid = append(hs, v.Hash()), append(valid, true)
		}
	}
	return hs, valid
}

// colValEqual compares row i of a against row j of b exactly as
// values.Equal compares their boxed forms — numeric cross-kind equality
// through the float image, NaN equal to NaN — without boxing for the
// typed tag pairings. Callers have already excluded null rows.
func colValEqual(a *vec.Col, i int, b *vec.Col, j int) bool {
	switch {
	case a.Tag == vec.Int64 && b.Tag == vec.Int64:
		return a.Ints[i] == b.Ints[j]
	case strTag(a.Tag) && strTag(b.Tag):
		return a.StrAt(i) == b.StrAt(j)
	case numericTag(a.Tag) && numericTag(b.Tag):
		return values.CompareFloats(numAt(a, i), numAt(b, j)) == 0
	}
	return values.Equal(a.Value(i), b.Value(j))
}
