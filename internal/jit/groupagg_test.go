package jit

import (
	"errors"
	"fmt"
	"testing"

	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/trace"
	"vida/internal/values"
)

// countingSource wraps a SliceSource and counts Iterate passes and rows
// yielded, so tests can assert the single-scan property of grouped
// aggregation.
type countingSource struct {
	algebra.SliceSource
	iterations int
	rowsRead   int
}

func (s *countingSource) Iterate(fields []string, yield func(values.Value) error) error {
	s.iterations++
	return s.SliceSource.Iterate(fields, func(v values.Value) error {
		s.rowsRead++
		return yield(v)
	})
}

func groupTestCatalog() algebra.MapCatalog {
	sales := []values.Value{
		rec("region", "east", "amount", 100.0, "units", 3),
		rec("region", "west", "amount", 50.0, "units", 1),
		rec("region", "east", "amount", 25.0, "units", 2),
		rec("region", "north", "amount", 70.0, "units", 4),
		rec("region", "west", "amount", 30.0, "units", 5),
		rec("region", "east", "amount", 10.0, "units", 1),
		rec("region", values.Null, "amount", 5.0, "units", 2),
		rec("region", values.Null, "amount", 7.0, "units", 3),
		rec("region", "north", "amount", values.Null, "units", 2),
	}
	return algebra.MapCatalog{
		"Sales": &algebra.SliceSource{SrcName: "Sales", Rows: sales},
		"Empty": &algebra.SliceSource{SrcName: "Empty"},
	}
}

func groupPlanFor(t *testing.T, src string, cat algebra.MapCatalog) *algebra.Reduce {
	t.Helper()
	e, err := mcl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sources := map[string]bool{}
	for k := range cat {
		sources[k] = true
	}
	plan, err := algebra.Translate(mcl.Normalize(e), sources)
	if err != nil {
		t.Fatalf("translate %q: %v", src, err)
	}
	return plan
}

var groupedQueries = []string{
	// Count / sum / avg / min / max, including a null aggregate input
	// (north has one null amount: skipped by sum/avg/min/max, counted by
	// count) and null group keys (two null regions share one group).
	`for { s <- Sales } group by { r := s.region } agg { n := count s } yield bag (r := r, n := n)`,
	`for { s <- Sales } group by { r := s.region } agg { t := sum s.amount } yield bag (r := r, t := t)`,
	`for { s <- Sales } group by { r := s.region } agg { a := avg s.amount } yield bag (r := r, a := a)`,
	`for { s <- Sales } group by { r := s.region } agg { lo := min s.amount, hi := max s.amount } yield bag (r := r, lo := lo, hi := hi)`,
	// Multi-key grouping with a computed key.
	`for { s <- Sales } group by { r := s.region, big := s.units > 2 } agg { n := count s } yield bag (r := r, big := big, n := n)`,
	// Integer sums stay integers; mixed int+null groups.
	`for { s <- Sales } group by { r := s.region } agg { u := sum s.units } yield bag (r := r, u := u)`,
	// HAVING filters groups, head computes over group scope.
	`for { s <- Sales } group by { r := s.region } agg { t := sum s.amount, n := count s } having n > 1 yield bag (r := r, per := t / n)`,
	// Qualifier filter before grouping (single-scan filter + fold).
	`for { s <- Sales, s.units > 1 } group by { r := s.region } agg { t := sum s.amount } yield bag (r := r, t := t)`,
	// Collection-monoid aggregate (boxed Collector fallback).
	`for { s <- Sales } group by { r := s.region } agg { xs := list s.units } yield bag (r := r, xs := xs)`,
	// Grouped ORDER BY / LIMIT over group-scope names.
	`for { s <- Sales } group by { r := s.region } agg { t := sum s.amount } yield list (r := r, t := t) order by t desc limit 2`,
	// Single group (constant key) and whole-table aggregate.
	`for { s <- Sales } group by { one := 1 } agg { n := count s, t := sum s.amount } yield list (n := n, t := t)`,
	// Empty input: no groups, empty result.
	`for { s <- Empty } group by { r := s.region } agg { n := count s } yield bag (r := r, n := n)`,
	// Set head over groups.
	`for { s <- Sales } group by { r := s.region } agg { n := count s } yield set (n := n)`,
}

// TestGroupedExecutorEquivalence pins all three executors to the
// interpreter's grouped semantics: same groups (nulls equal as keys),
// same per-monoid null handling, same first-occurrence order.
func TestGroupedExecutorEquivalence(t *testing.T) {
	cat := groupTestCatalog()
	for _, q := range groupedQueries {
		plan := groupPlanFor(t, q, cat)
		want, err := algebra.Reference{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		gotJIT, err := Executor{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("jit %q: %v", q, err)
		}
		if !values.Equal(gotJIT, want) {
			t.Fatalf("jit diverged on %q:\njit: %v\nref: %v", q, gotJIT, want)
		}
		gotStatic, err := StaticExecutor{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("static %q: %v", q, err)
		}
		if !values.Equal(gotStatic, want) {
			t.Fatalf("static diverged on %q:\nstatic: %v\nref: %v", q, gotStatic, want)
		}
	}
}

// TestGroupedSingleScan is the core acceptance property: a grouped
// aggregate reads its source exactly once, no matter how many groups
// come out.
func TestGroupedSingleScan(t *testing.T) {
	rows := make([]values.Value, 0, 1000)
	for i := 0; i < 1000; i++ {
		rows = append(rows, rec("k", i%37, "v", i))
	}
	src := &countingSource{SliceSource: algebra.SliceSource{SrcName: "T", Rows: rows}}
	cat := algebra.MapCatalog{"T": src}
	plan := groupPlanFor(t, `for { t <- T } group by { k := t.k } agg { s := sum t.v } yield bag (k := k, s := s)`, cat)
	got, err := Executor{Opts: Options{Workers: 1}}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Elems()) != 37 {
		t.Fatalf("got %d groups, want 37", len(got.Elems()))
	}
	if src.iterations != 1 {
		t.Fatalf("grouped aggregate iterated the source %d times, want exactly 1", src.iterations)
	}
	if src.rowsRead != 1000 {
		t.Fatalf("read %d rows, want 1000", src.rowsRead)
	}
}

// TestGroupedManyGroups pushes past 64k distinct keys so the
// open-addressing table grows through several doublings, and checks
// count totals survive the rehashes.
func TestGroupedManyGroups(t *testing.T) {
	const n = 70000
	rows := make([]values.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, rec("k", i, "v", 1))
	}
	cat := algebra.MapCatalog{"T": &algebra.SliceSource{SrcName: "T", Rows: rows}}
	plan := groupPlanFor(t, `for { t <- T } group by { k := t.k } agg { n := count t } yield bag (n := n)`, cat)
	got, err := Executor{}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Elems()) != n {
		t.Fatalf("got %d groups, want %d", len(got.Elems()), n)
	}
	for _, e := range got.Elems() {
		if c, ok := e.Get("n"); !ok || c.Int() != 1 {
			t.Fatalf("group count %v, want 1", c)
		}
	}
}

// TestGroupedParallelDeterminism runs the same grouped list query at
// several worker counts over a scan large enough to go morsel-parallel
// and requires bit-identical results: partials merge in morsel order,
// so group order is the serial first-occurrence order regardless of
// scheduling.
func TestGroupedParallelDeterminism(t *testing.T) {
	const n = 50000
	rows := make([]values.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, rec("k", (i*7919)%101, "v", i))
	}
	cat := algebra.MapCatalog{"T": &algebra.SliceSource{SrcName: "T", Rows: rows}}
	q := `for { t <- T } group by { k := t.k } agg { s := sum t.v, c := count t } yield list (k := k, s := s, c := c)`
	plan := groupPlanFor(t, q, cat)
	want, err := Executor{Opts: Options{Workers: 1}}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := Executor{Opts: Options{Workers: workers, ParallelThreshold: 1}}.Run(plan, cat)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !values.Equal(got, want) {
			t.Fatalf("workers=%d diverged:\ngot:  %v\nwant: %v", workers, got, want)
		}
	}
}

// TestGroupedMemoryBudget checks the group table charges the query
// budget and a high-cardinality GROUP BY aborts with the caller's
// budget error instead of growing without bound.
func TestGroupedMemoryBudget(t *testing.T) {
	const n = 100000
	rows := make([]values.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, rec("k", i, "v", i))
	}
	cat := algebra.MapCatalog{"T": &algebra.SliceSource{SrcName: "T", Rows: rows}}
	plan := groupPlanFor(t, `for { t <- T } group by { k := t.k } agg { s := sum t.v } yield bag (k := k, s := s)`, cat)
	budgetErr := errors.New("budget exceeded")
	var used int64
	opts := Options{
		Workers: 1,
		MemReserve: func(delta int64) error {
			used += delta
			if used > 1<<19 { // 512 KiB
				return budgetErr
			}
			return nil
		},
	}
	_, err := Executor{Opts: opts}.Run(plan, cat)
	if !errors.Is(err, budgetErr) {
		t.Fatalf("got err %v, want budget error", err)
	}
}

// TestGroupedStream routes a grouped plan through the streaming
// (pull-sink) compiler and checks it matches the collected result.
func TestGroupedStream(t *testing.T) {
	cat := groupTestCatalog()
	q := `for { s <- Sales } group by { r := s.region } agg { t := sum s.amount, n := count s } having n > 1 yield list (r := r, t := t)`
	plan := groupPlanFor(t, q, cat)
	want, err := algebra.Reference{}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	var got []values.Value
	prog, err := CompileStream(plan, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog(func(chunk []values.Value) error {
		got = append(got, chunk...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !values.Equal(values.NewList(got...), want) {
		t.Fatalf("stream diverged:\ngot:  %v\nwant: %v", values.NewList(got...), want)
	}
}

// TestGroupedTraceSpan asserts the grouped fold emits its span with the
// group-table attributes the explain/metrics surfaces consume.
func TestGroupedTraceSpan(t *testing.T) {
	cat := groupTestCatalog()
	plan := groupPlanFor(t, `for { s <- Sales } group by { r := s.region } agg { n := count s } yield bag (r := r, n := n)`, cat)
	tr := trace.New("q1", "query")
	_, err := Executor{Opts: Options{Trace: tr.Root()}}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	var fold *trace.SpanNode
	var walk func(n *trace.SpanNode)
	walk = func(n *trace.SpanNode) {
		if n == nil {
			return
		}
		if n.Name == "fold" && n.Attrs["kind"] == "groupagg" {
			fold = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tr.Snapshot())
	if fold == nil {
		t.Fatalf("no fold span with kind=groupagg recorded")
	}
	if g := fold.Attrs["groups"]; fmt.Sprint(g) != "4" {
		t.Fatalf("groups attr = %v, want 4", g)
	}
	if _, ok := fold.Attrs["table_bytes"]; !ok {
		t.Fatalf("missing table_bytes attr")
	}
}
