package jit

import (
	"errors"
	"testing"

	"vida/internal/values"
)

// TestBareLimitSinkErrorNotSwallowed pins a review finding: the row
// quota reserves budget before delivery, so a sink failure on the
// quota-crossing chunk must surface as an error — not be mistaken for
// successful completion because the budget already reads exhausted.
func TestBareLimitSinkErrorNotSwallowed(t *testing.T) {
	cat := testCatalog()
	plan := planFor(t, `for { e <- Employees } yield bag e.id limit 2`, cat)
	prog, err := CompileStream(plan, cat, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink exploded")
	err = prog(func(chunk []values.Value) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink error", err)
	}
}
