package jit

import (
	"fmt"
	"sync"

	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/values"
)

// StaticExecutor is the pre-cooked engine: generic Volcano operators, one
// goroutine per operator, rows (as interpreter environments) flowing
// through Go channels, and every expression evaluated by walking its AST.
// It is intentionally generic — the interpretation overhead it carries on
// every row is precisely what the paper's just-in-time generation removes
// (§4: "a 'pre-cooked' operator offering all these capabilities must be
// very generic, thus introducing significant interpretation overhead").
type StaticExecutor struct {
	// ChanBuf is the channel buffer size between operators (default 64).
	ChanBuf int
}

type staticCtx struct {
	cat     algebra.Catalog
	base    *mcl.Env
	buf     int
	mu      sync.Mutex
	err     error
	stopped chan struct{}
	once    sync.Once
}

func (sc *staticCtx) fail(err error) {
	sc.mu.Lock()
	if sc.err == nil {
		sc.err = err
	}
	sc.mu.Unlock()
	sc.once.Do(func() { close(sc.stopped) })
}

func (sc *staticCtx) failed() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.err
}

// send delivers a row unless the pipeline has been stopped.
func (sc *staticCtx) send(out chan<- *mcl.Env, row *mcl.Env) bool {
	select {
	case out <- row:
		return true
	case <-sc.stopped:
		return false
	}
}

// Run implements algebra.Executor.
func (s StaticExecutor) Run(p *algebra.Reduce, cat algebra.Catalog) (values.Value, error) {
	buf := s.ChanBuf
	if buf <= 0 {
		buf = 64
	}
	c := &compiler{cat: cat}
	base, err := c.materializeFreeSources(p)
	if err != nil {
		return values.Null, err
	}
	sc := &staticCtx{cat: cat, base: base, buf: buf, stopped: make(chan struct{})}

	rows := sc.launch(p.Input)
	if p.Grouped() {
		// Grouped reduce: a grouping operator drains the pipeline into
		// per-group accumulators and re-emits one row per group (keys and
		// aggregates as bindings), so the fold below — including Pred,
		// which carries HAVING — runs unchanged over group rows.
		rows = sc.groupRows(p, rows)
	}
	if p.Order.Ordered() {
		return s.runOrdered(p, sc, rows)
	}
	acc := monoid.NewCollector(p.M)
	for env := range rows {
		if p.Pred != nil {
			pv, err := mcl.Eval(p.Pred, env)
			if err != nil {
				sc.fail(err)
				break
			}
			if !(pv.Kind() == values.KindBool && pv.Bool()) {
				continue
			}
		}
		h, err := mcl.Eval(p.Head, env)
		if err != nil {
			sc.fail(err)
			break
		}
		acc.Add(h)
	}
	// Drain in case of early exit so upstream goroutines unblock.
	sc.once.Do(func() { close(sc.stopped) })
	for range rows {
	}
	if err := sc.failed(); err != nil {
		return values.Null, err
	}
	res := acc.Result()
	if p.Order != nil {
		// Bare LIMIT/OFFSET: the static executor materializes, then
		// slices (pushdown into the channel pipeline is a JIT feature).
		return algebra.SliceCollection(res, p.Order)
	}
	return res, nil
}

// runOrdered folds the channel pipeline's rows through the keyed top-k
// accumulator (ORDER BY/LIMIT/OFFSET under the static executor).
func (s StaticExecutor) runOrdered(p *algebra.Reduce, sc *staticCtx, rows <-chan *mcl.Env) (values.Value, error) {
	// Same retention rules as the JIT root (resolveOrder): keep =
	// offset+limit only with a limit present, set dedup disables the
	// heap bound.
	limit, offset, keep, dedup, err := resolveOrder(p)
	if err != nil {
		sc.once.Do(func() { close(sc.stopped) })
		for range rows {
		}
		return values.Null, err
	}
	desc := make([]bool, len(p.Order.Keys))
	for i, k := range p.Order.Keys {
		desc[i] = k.Desc
	}
	acc := monoid.NewTopKAcc(desc, keep)
	for env := range rows {
		if p.Pred != nil {
			pv, err := mcl.Eval(p.Pred, env)
			if err != nil {
				sc.fail(err)
				break
			}
			if !(pv.Kind() == values.KindBool && pv.Bool()) {
				continue
			}
		}
		keys := make([]values.Value, len(p.Order.Keys))
		failed := false
		for i, k := range p.Order.Keys {
			kv, err := mcl.Eval(k.E, env)
			if err != nil {
				sc.fail(err)
				failed = true
				break
			}
			keys[i] = kv
		}
		if failed {
			break
		}
		h, err := mcl.Eval(p.Head, env)
		if err != nil {
			sc.fail(err)
			break
		}
		acc.Add(keys, h)
	}
	sc.once.Do(func() { close(sc.stopped) })
	for range rows {
	}
	if err := sc.failed(); err != nil {
		return values.Null, err
	}
	return values.NewList(acc.Finalize(offset, limit, dedup)...), nil
}

// groupRows is the static executor's grouping operator: it blocks on
// the input channel building the group table (same hash/equality/null
// semantics as the interpreter's grouped fold), then emits one
// environment per group in first-occurrence order, binding each key and
// aggregate result by name on the base environment.
func (sc *staticCtx) groupRows(p *algebra.Reduce, in <-chan *mcl.Env) <-chan *mcl.Env {
	out := make(chan *mcl.Env, sc.buf)
	go func() {
		defer close(out)
		type group struct {
			keys []values.Value
			accs []*monoid.Collector
		}
		index := map[uint64][]int{}
		var groups []*group
		for env := range in {
			keys := make([]values.Value, len(p.GroupBy))
			failed := false
			for i, k := range p.GroupBy {
				kv, err := mcl.Eval(k.E, env)
				if err != nil {
					sc.fail(err)
					failed = true
					break
				}
				keys[i] = kv
			}
			if failed {
				break
			}
			h := mcl.GroupHash(keys)
			var g *group
			for _, gi := range index[h] {
				if mcl.GroupKeysEqual(groups[gi].keys, keys) {
					g = groups[gi]
					break
				}
			}
			if g == nil {
				g = &group{keys: keys, accs: make([]*monoid.Collector, len(p.Aggs))}
				for i, a := range p.Aggs {
					g.accs[i] = monoid.NewCollector(a.M)
				}
				index[h] = append(index[h], len(groups))
				groups = append(groups, g)
			}
			for i, a := range p.Aggs {
				av, err := mcl.Eval(a.E, env)
				if err != nil {
					sc.fail(err)
					failed = true
					break
				}
				monoid.AggAdd(g.accs[i], av)
			}
			if failed {
				break
			}
		}
		for range in {
		}
		if sc.failed() != nil {
			return
		}
		for _, g := range groups {
			genv := sc.base
			for i, k := range p.GroupBy {
				genv = genv.Bind(k.Name, g.keys[i])
			}
			for i, a := range p.Aggs {
				genv = genv.Bind(a.Name, g.accs[i].Result())
			}
			if !sc.send(out, genv) {
				return
			}
		}
	}()
	return out
}

// launch starts the operator goroutine for a plan node and returns its
// output channel. A nil plan produces the single base row.
func (sc *staticCtx) launch(p algebra.Plan) <-chan *mcl.Env {
	out := make(chan *mcl.Env, sc.buf)
	switch n := p.(type) {
	case nil:
		go func() {
			defer close(out)
			sc.send(out, sc.base)
		}()
	case *algebra.Scan:
		go sc.runScan(n, out)
	case *algebra.Select:
		in := sc.launch(n.Input)
		go sc.runSelect(n, in, out)
	case *algebra.Bind:
		in := sc.launch(n.Input)
		go sc.runBind(n, in, out)
	case *algebra.Generate:
		var in <-chan *mcl.Env
		if n.Input != nil {
			in = sc.launch(n.Input)
		}
		go sc.runGenerate(n, in, out)
	case *algebra.Product:
		l := sc.launch(n.L)
		r := sc.launch(n.R)
		go sc.runProduct(n, l, r, out)
	case *algebra.Join:
		l := sc.launch(n.L)
		r := sc.launch(n.R)
		go sc.runJoin(n, l, r, out)
	default:
		go func() {
			defer close(out)
			sc.fail(fmt.Errorf("static: unknown plan node %T", p))
		}()
	}
	return out
}

func (sc *staticCtx) runScan(n *algebra.Scan, out chan<- *mcl.Env) {
	defer close(out)
	src, ok := sc.cat.Source(n.Source)
	if !ok {
		sc.fail(fmt.Errorf("static: unknown source %q", n.Source))
		return
	}
	stop := fmt.Errorf("static: stopped")
	err := src.Iterate(n.Fields, func(v values.Value) error {
		env := sc.base.Bind(n.Var, v)
		if n.Filter != nil {
			pv, err := mcl.Eval(n.Filter, env)
			if err != nil {
				return err
			}
			if !(pv.Kind() == values.KindBool && pv.Bool()) {
				return nil
			}
		}
		if !sc.send(out, env) {
			return stop
		}
		return nil
	})
	if err != nil && err != stop {
		sc.fail(err)
	}
}

func (sc *staticCtx) runSelect(n *algebra.Select, in <-chan *mcl.Env, out chan<- *mcl.Env) {
	defer close(out)
	for env := range in {
		pv, err := mcl.Eval(n.Pred, env)
		if err != nil {
			sc.fail(err)
			break
		}
		if pv.Kind() == values.KindBool && pv.Bool() {
			if !sc.send(out, env) {
				break
			}
		}
	}
	for range in {
	}
}

func (sc *staticCtx) runBind(n *algebra.Bind, in <-chan *mcl.Env, out chan<- *mcl.Env) {
	defer close(out)
	for env := range in {
		v, err := mcl.Eval(n.E, env)
		if err != nil {
			sc.fail(err)
			break
		}
		if !sc.send(out, env.Bind(n.Var, v)) {
			break
		}
	}
	for range in {
	}
}

func (sc *staticCtx) runGenerate(n *algebra.Generate, in <-chan *mcl.Env, out chan<- *mcl.Env) {
	defer close(out)
	process := func(env *mcl.Env) bool {
		coll, err := mcl.Eval(n.E, env)
		if err != nil {
			sc.fail(err)
			return false
		}
		if coll.IsNull() {
			return true
		}
		if !coll.IsCollection() && coll.Kind() != values.KindArray {
			sc.fail(fmt.Errorf("static: generate over %s", coll.Kind()))
			return false
		}
		for _, el := range coll.Elems() {
			if !sc.send(out, env.Bind(n.Var, el)) {
				return false
			}
		}
		return true
	}
	if in == nil {
		process(sc.base)
		return
	}
	for env := range in {
		if !process(env) {
			break
		}
	}
	for range in {
	}
}

func (sc *staticCtx) runProduct(n *algebra.Product, l, r <-chan *mcl.Env, out chan<- *mcl.Env) {
	defer close(out)
	rVars := algebra.BoundVars(n.R)
	var right []*mcl.Env
	for env := range r {
		right = append(right, env)
	}
	for lenv := range l {
		for _, renv := range right {
			env := lenv
			for _, v := range rVars {
				if val, ok := renv.Lookup(v); ok {
					env = env.Bind(v, val)
				}
			}
			if !sc.send(out, env) {
				goto done
			}
		}
	}
done:
	for range l {
	}
}

func (sc *staticCtx) runJoin(n *algebra.Join, l, r <-chan *mcl.Env, out chan<- *mcl.Env) {
	defer close(out)
	rVars := algebra.BoundVars(n.R)
	type bucket struct {
		keys []values.Value
		envs []*mcl.Env
	}
	keyOf := func(env *mcl.Env, exprs []mcl.Expr) (values.Value, bool, error) {
		parts := make([]values.Value, len(exprs))
		for i, e := range exprs {
			v, err := mcl.Eval(e, env)
			if err != nil {
				return values.Null, false, err
			}
			if v.IsNull() {
				return values.Null, false, nil
			}
			parts[i] = v
		}
		return values.NewList(parts...), true, nil
	}
	lExprs := make([]mcl.Expr, len(n.On))
	rExprs := make([]mcl.Expr, len(n.On))
	for i, on := range n.On {
		lExprs[i] = on.LExpr
		rExprs[i] = on.RExpr
	}
	table := map[uint64]*bucket{}
	for env := range r {
		k, ok, err := keyOf(env, rExprs)
		if err != nil {
			sc.fail(err)
			break
		}
		if !ok {
			continue
		}
		h := k.Hash()
		b := table[h]
		if b == nil {
			b = &bucket{}
			table[h] = b
		}
		b.keys = append(b.keys, k)
		b.envs = append(b.envs, env)
	}
	for lenv := range l {
		k, ok, err := keyOf(lenv, lExprs)
		if err != nil {
			sc.fail(err)
			break
		}
		if !ok {
			continue
		}
		b := table[k.Hash()]
		if b == nil {
			continue
		}
		for i, bk := range b.keys {
			if !values.Equal(k, bk) {
				continue
			}
			env := lenv
			for _, v := range rVars {
				if val, ok := b.envs[i].Lookup(v); ok {
					env = env.Bind(v, val)
				}
			}
			if n.Residual != nil {
				pv, err := mcl.Eval(n.Residual, env)
				if err != nil {
					sc.fail(err)
					goto done
				}
				if !(pv.Kind() == values.KindBool && pv.Bool()) {
					continue
				}
			}
			if !sc.send(out, env) {
				goto done
			}
		}
	}
done:
	for range l {
	}
	for range r {
	}
}
