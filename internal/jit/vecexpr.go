package jit

import (
	"fmt"

	"vida/internal/mcl"
	"vida/internal/values"
	"vida/internal/vec"
)

// This file implements vectorized expression kernels: arithmetic and
// projection expressions staged into per-batch column loops instead of
// per-row closure evaluation. A kernel computes one output column over
// the live rows of a batch — typed int64/float64 loops when the inputs
// are typed, a row-wise boxed loop (semantics identical to
// mcl.ApplyBinOp) otherwise — so filters over computed values, reduce
// heads, ORDER BY keys and Bind extension columns all stay unboxed when
// the data is. Constants fold into the kernels at compile time.

// vecExpr computes an expression over the live rows of a batch into a
// column indexed by physical row (dead rows hold stale values no
// consumer reads). The returned column is owned by the kernel and
// reused across batches; identity kernels alias an input column.
// Consumers must never mutate it and must finish with it before the
// next batch arrives.
type vecExpr func(b *vec.Batch) (*vec.Col, error)

// isArithOp reports the binary operators the kernels cover.
func isArithOp(op mcl.BinOp) bool {
	switch op {
	case mcl.OpAdd, mcl.OpSub, mcl.OpMul, mcl.OpDiv, mcl.OpMod:
		return true
	}
	return false
}

// compileVecExpr stages an expression as a vectorized column-kernel
// factory when its shape allows: slot references (identity), negation
// and + - * / % trees over slots with numeric constants folded in. nil
// means the caller must use the row-wise fallback. Each factory call
// returns a kernel with its own scratch, safe for one serial run or one
// morsel worker.
func compileVecExpr(e mcl.Expr, f *frame) func() vecExpr {
	switch n := e.(type) {
	case *mcl.VarExpr, *mcl.ProjExpr:
		idx := slotOf(e, f)
		if idx < 0 {
			return nil
		}
		return func() vecExpr {
			return func(b *vec.Batch) (*vec.Col, error) { return &b.Cols[idx], nil }
		}
	case *mcl.NegExpr:
		inner := compileVecExpr(n.E, f)
		if inner == nil {
			return nil
		}
		return negKernel(inner)
	case *mcl.BinExpr:
		if !isArithOp(n.Op) {
			return nil
		}
		lc, lok := constOf(n.L)
		rc, rok := constOf(n.R)
		switch {
		case lok && rok:
			return nil // constant folding is normalization's job
		case rok:
			if !rc.IsNumeric() {
				return nil
			}
			inner := compileVecExpr(n.L, f)
			if inner == nil {
				return nil
			}
			return arithColConst(n.Op, inner, rc, false)
		case lok:
			if !lc.IsNumeric() {
				return nil
			}
			inner := compileVecExpr(n.R, f)
			if inner == nil {
				return nil
			}
			return arithColConst(n.Op, inner, lc, true)
		default:
			l := compileVecExpr(n.L, f)
			if l == nil {
				return nil
			}
			r := compileVecExpr(n.R, f)
			if r == nil {
				return nil
			}
			return arithColCol(n.Op, l, r)
		}
	}
	return nil
}

// prepOut readies a kernel's scratch column: tag set, payload resized to
// n physical rows reusing capacity, validity mask resized when the
// inputs can produce nulls. Kernels write both mask branches at live
// rows, so the mask never needs zeroing.
func prepOut(out *vec.Col, tag vec.Tag, n int, withNulls bool) {
	out.Tag = tag
	switch tag {
	case vec.Int64:
		if cap(out.Ints) < n {
			out.Ints = make([]int64, n)
		} else {
			out.Ints = out.Ints[:n]
		}
	case vec.Float64:
		if cap(out.Floats) < n {
			out.Floats = make([]float64, n)
		} else {
			out.Floats = out.Floats[:n]
		}
	default:
		if cap(out.Boxed) < n {
			out.Boxed = make([]values.Value, n)
		} else {
			out.Boxed = out.Boxed[:n]
		}
	}
	if withNulls {
		if cap(out.Nulls) < n {
			out.Nulls = make([]bool, n)
		} else {
			out.Nulls = out.Nulls[:n]
		}
	} else {
		out.Nulls = nil
	}
}

// negKernel stages unary negation, mirroring the row path's semantics
// (null passes through, non-numerics error).
func negKernel(mk func() vecExpr) func() vecExpr {
	return func() vecExpr {
		inner := mk()
		out := &vec.Col{}
		return func(b *vec.Batch) (*vec.Col, error) {
			c, err := inner(b)
			if err != nil {
				return nil, err
			}
			n := b.Len()
			switch c.Tag {
			case vec.Int64:
				prepOut(out, vec.Int64, b.N, c.Nulls != nil)
				for k := 0; k < n; k++ {
					i := b.Index(k)
					if c.Nulls != nil {
						if out.Nulls[i] = c.Nulls[i]; out.Nulls[i] {
							continue
						}
					}
					out.Ints[i] = -c.Ints[i]
				}
			case vec.Float64:
				prepOut(out, vec.Float64, b.N, c.Nulls != nil)
				for k := 0; k < n; k++ {
					i := b.Index(k)
					if c.Nulls != nil {
						if out.Nulls[i] = c.Nulls[i]; out.Nulls[i] {
							continue
						}
					}
					out.Floats[i] = -c.Floats[i]
				}
			default:
				prepOut(out, vec.Boxed, b.N, false)
				for k := 0; k < n; k++ {
					i := b.Index(k)
					v := c.Value(i)
					switch v.Kind() {
					case values.KindNull:
						out.Boxed[i] = values.Null
					case values.KindInt:
						out.Boxed[i] = values.NewInt(-v.Int())
					case values.KindFloat:
						out.Boxed[i] = values.NewFloat(-v.Float())
					default:
						return nil, fmt.Errorf("jit: negation of %s", v.Kind())
					}
				}
			}
			return out, nil
		}
	}
}

// arithColConst stages col ⊕ const (or const ⊕ col when constLeft) with
// the constant folded into the kernel.
func arithColConst(op mcl.BinOp, mk func() vecExpr, cv values.Value, constLeft bool) func() vecExpr {
	return func() vecExpr {
		inner := mk()
		out := &vec.Col{}
		return func(b *vec.Batch) (*vec.Col, error) {
			c, err := inner(b)
			if err != nil {
				return nil, err
			}
			if err := runArithColConst(op, c, cv, constLeft, b, out); err != nil {
				return nil, err
			}
			return out, nil
		}
	}
}

func runArithColConst(op mcl.BinOp, c *vec.Col, cv values.Value, constLeft bool, b *vec.Batch, out *vec.Col) error {
	n := b.Len()
	bothInt := c.Tag == vec.Int64 && cv.Kind() == values.KindInt
	switch {
	case bothInt:
		ci := cv.Int()
		prepOut(out, vec.Int64, b.N, c.Nulls != nil)
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if c.Nulls != nil {
				if out.Nulls[i] = c.Nulls[i]; out.Nulls[i] {
					continue
				}
			}
			l, r := c.Ints[i], ci
			if constLeft {
				l, r = ci, l
			}
			v, err := intArith(op, l, r)
			if err != nil {
				return err
			}
			out.Ints[i] = v
		}
		return nil
	case (c.Tag == vec.Int64 || c.Tag == vec.Float64) && cv.IsNumeric() && op != mcl.OpMod:
		cf := cv.Float()
		prepOut(out, vec.Float64, b.N, c.Nulls != nil)
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if c.Nulls != nil {
				if out.Nulls[i] = c.Nulls[i]; out.Nulls[i] {
					continue
				}
			}
			var a float64
			if c.Tag == vec.Int64 {
				a = float64(c.Ints[i])
			} else {
				a = c.Floats[i]
			}
			l, r := a, cf
			if constLeft {
				l, r = cf, l
			}
			out.Floats[i] = floatArith(op, l, r)
		}
		return nil
	}
	// Boxed fallback: row-wise mcl.ApplyBinOp, so nulls, string
	// concatenation and type errors behave exactly as the row engine.
	prepOut(out, vec.Boxed, b.N, false)
	for k := 0; k < n; k++ {
		i := b.Index(k)
		l, r := c.Value(i), cv
		if constLeft {
			l, r = r, l
		}
		v, err := mcl.ApplyBinOp(op, l, r)
		if err != nil {
			return err
		}
		out.Boxed[i] = v
	}
	return nil
}

// arithColCol stages col ⊕ col.
func arithColCol(op mcl.BinOp, mkL, mkR func() vecExpr) func() vecExpr {
	return func() vecExpr {
		l, r := mkL(), mkR()
		out := &vec.Col{}
		return func(b *vec.Batch) (*vec.Col, error) {
			lc, err := l(b)
			if err != nil {
				return nil, err
			}
			rc, err := r(b)
			if err != nil {
				return nil, err
			}
			if err := runArithColCol(op, lc, rc, b, out); err != nil {
				return nil, err
			}
			return out, nil
		}
	}
}

func runArithColCol(op mcl.BinOp, lc, rc *vec.Col, b *vec.Batch, out *vec.Col) error {
	n := b.Len()
	withNulls := lc.Nulls != nil || rc.Nulls != nil
	nullAt := func(i int) bool {
		return (lc.Nulls != nil && lc.Nulls[i]) || (rc.Nulls != nil && rc.Nulls[i])
	}
	switch {
	case lc.Tag == vec.Int64 && rc.Tag == vec.Int64:
		prepOut(out, vec.Int64, b.N, withNulls)
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if withNulls {
				if out.Nulls[i] = nullAt(i); out.Nulls[i] {
					continue
				}
			}
			v, err := intArith(op, lc.Ints[i], rc.Ints[i])
			if err != nil {
				return err
			}
			out.Ints[i] = v
		}
		return nil
	case numericTag(lc.Tag) && numericTag(rc.Tag) && op != mcl.OpMod:
		prepOut(out, vec.Float64, b.N, withNulls)
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if withNulls {
				if out.Nulls[i] = nullAt(i); out.Nulls[i] {
					continue
				}
			}
			out.Floats[i] = floatArith(op, numAt(lc, i), numAt(rc, i))
		}
		return nil
	}
	// Boxed fallback: row-wise mcl.ApplyBinOp (see runArithColConst).
	prepOut(out, vec.Boxed, b.N, false)
	for k := 0; k < n; k++ {
		i := b.Index(k)
		v, err := mcl.ApplyBinOp(op, lc.Value(i), rc.Value(i))
		if err != nil {
			return err
		}
		out.Boxed[i] = v
	}
	return nil
}

func numericTag(t vec.Tag) bool { return t == vec.Int64 || t == vec.Float64 }

// numAt reads a numeric column's row as float64 (the widening the row
// engine applies for mixed int/float arithmetic).
func numAt(c *vec.Col, i int) float64 {
	if c.Tag == vec.Int64 {
		return float64(c.Ints[i])
	}
	return c.Floats[i]
}

// intArith applies one integer operation; division and modulo route
// their zero-divisor case through mcl.ApplyBinOp so the error is
// byte-identical with the row engine's.
func intArith(op mcl.BinOp, l, r int64) (int64, error) {
	switch op {
	case mcl.OpAdd:
		return l + r, nil
	case mcl.OpSub:
		return l - r, nil
	case mcl.OpMul:
		return l * r, nil
	case mcl.OpDiv:
		if r == 0 {
			_, err := mcl.ApplyBinOp(op, values.NewInt(l), values.NewInt(0))
			return 0, err
		}
		return l / r, nil
	default: // OpMod
		if r == 0 {
			_, err := mcl.ApplyBinOp(op, values.NewInt(l), values.NewInt(0))
			return 0, err
		}
		return l % r, nil
	}
}

func floatArith(op mcl.BinOp, l, r float64) float64 {
	switch op {
	case mcl.OpAdd:
		return l + r
	case mcl.OpSub:
		return l - r
	case mcl.OpMul:
		return l * r
	default: // OpDiv; OpMod never reaches the float loops
		return l / r
	}
}
