package jit

import (
	"errors"
	"sync"
	"sync/atomic"

	"vida/internal/monoid"
	"vida/internal/values"
	"vida/internal/vec"
)

// errStopped cancels in-flight morsels after another worker failed; it
// never escapes the scheduler.
var errStopped = errors.New("jit: parallel scan stopped")

// runParallelReduce executes a partitionable pipeline with morsel-driven
// parallelism (Leis et al., adopted here for raw scans): the row range is
// split into morsels handed out work-stealing-style to a fixed worker
// pool, each worker drives its own clone of the staged pipeline (scan is
// safe for concurrent disjoint ranges; filters and consumers are built
// per worker), and per-morsel partial aggregates are merged at the root
// in morsel order. Associativity of the monoid's ⊕ makes the merge exact
// — including for the non-commutative list monoid — which is the paper's
// algebra paying rent.
func runParallelReduce(scan func(lo, hi int, sink batchSink) error, n int, mkCons func() *reduceConsumer, m monoid.Monoid, opts Options) (values.Value, error) {
	workers := opts.Workers
	// Aim for a few morsels per worker so stealing evens out skew, but
	// never below one batch per morsel.
	morselRows := (n + workers*4 - 1) / (workers * 4)
	if morselRows < opts.BatchSize {
		morselRows = opts.BatchSize
	}
	numMorsels := (n + morselRows - 1) / morselRows
	if workers > numMorsels {
		workers = numMorsels
	}

	partials := make([]*monoid.Collector, numMorsels)
	errs := make([]error, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rc := mkCons()
			for !stop.Load() {
				i := int(next.Add(1) - 1)
				if i >= numMorsels {
					return
				}
				lo := i * morselRows
				hi := lo + morselRows
				if hi > n {
					hi = n
				}
				acc := monoid.NewCollector(m)
				rc.reset(acc)
				if err := scan(lo, hi, func(b *vec.Batch) error {
					if stop.Load() {
						return errStopped
					}
					return rc.consume(b)
				}); err != nil {
					if !errors.Is(err, errStopped) {
						errs[w] = err
					}
					stop.Store(true)
					return
				}
				rc.finish()
				partials[i] = acc
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return values.Null, err
		}
	}
	root := monoid.NewCollector(m)
	for _, part := range partials {
		if part != nil {
			root.MergeFrom(part)
		}
	}
	return root.Result(), nil
}
