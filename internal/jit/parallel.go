package jit

import (
	"context"
	"sync"

	"vida/internal/monoid"
	"vida/internal/values"
	"vida/internal/vec"
)

// runParallelReduce executes a partitionable pipeline with morsel-driven
// parallelism (Leis et al., adopted here for raw scans): the row range is
// split into morsels submitted as one job to the shared scheduler pool
// (sched.Pool), whose fixed workers interleave the morsels of every
// in-flight query — concurrent queries share cores instead of each
// fanning out GOMAXPROCS goroutines. Each morsel drives its own clone of
// the staged pipeline (scan is safe for concurrent disjoint ranges;
// filters and consumers come from a free list), and per-morsel partial
// aggregates are merged at the root in morsel order. Associativity of
// the monoid's ⊕ makes the merge exact — including for the
// non-commutative list monoid — which is the paper's algebra paying
// rent.
func runParallelReduce(ctx context.Context, scan func(lo, hi int, sink batchSink) error, n int, mkCons func() *reduceConsumer, m monoid.Monoid, opts Options) (values.Value, error) {
	workers := opts.Workers
	// Aim for a few morsels per worker so interleaving evens out skew,
	// but never below one batch per morsel.
	morselRows := (n + workers*4 - 1) / (workers * 4)
	if morselRows < opts.BatchSize {
		morselRows = opts.BatchSize
	}
	numMorsels := (n + morselRows - 1) / morselRows
	if sp := opts.Trace; sp != nil { // guard: avoid arg boxing when disarmed
		sp.SetAttr("morsels", numMorsels)
		sp.SetAttr("workers", workers)
	}

	partials := make([]*monoid.Collector, numMorsels)
	// Consumers carry per-run scratch (filter selection buffers, typed
	// accumulators); a free list bounds their number by the pool's
	// concurrency while letting morsels reuse them.
	consumers := sync.Pool{New: func() any { return mkCons() }}
	err := opts.Pool.Run(ctx, numMorsels, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		rc := consumers.Get().(*reduceConsumer)
		defer consumers.Put(rc)
		lo := i * morselRows
		hi := lo + morselRows
		if hi > n {
			hi = n
		}
		acc := monoid.NewCollector(m)
		rc.reset(acc)
		if err := scan(lo, hi, func(b *vec.Batch) error {
			return rc.consume(b)
		}); err != nil {
			return err
		}
		rc.finish()
		partials[i] = acc
		return nil
	})
	if err != nil {
		return values.Null, err
	}
	msp := opts.Trace.Child("merge")
	root := monoid.NewCollector(m)
	for _, part := range partials {
		if part != nil {
			root.MergeFrom(part)
		}
	}
	msp.End()
	return root.Result(), nil
}
