package jit

import (
	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/values"
	"vida/internal/vec"
)

// This file implements the vectorized hash-aggregation operator behind
// grouped reduces (GROUP BY): one pass over the input partitions rows
// into a compact open-addressing group table (key tuple → dense group
// index) and folds each aggregate into typed per-group accumulator
// arrays, with a boxed per-group Collector fallback for monoids the
// typed paths do not specialize. Group-key hashing reuses the join-key
// kernels (hashLiveCol): one tag-dispatched pass per key column per
// batch, typed payloads and vec.StrDict codes never boxing on the hash
// path. Under morsel parallelism each worker builds a partial table;
// partials merge into the root in morsel order, which — with groups
// kept in local first-occurrence order — reproduces the serial
// first-occurrence group order exactly.

// Group-tuple hash combine: FNV-1a over the per-key scalar hashes, with
// the same constants as mcl.GroupHash so a tuple hashes identically to
// its boxed form (nulls contribute a fixed marker — rows with null keys
// share a group).
const (
	groupHashBasis uint64 = 1469598103934665603
	groupHashPrime uint64 = 1099511628211
	nullKeyHash    uint64 = 0x9e3779b97f4a7c15
)

// groupTableInitSlots is the initial open-addressing table size; the
// table doubles (rehashing the dense group list) past 3/4 load.
const groupTableInitSlots = 256

// groupChargeChunk batches memory-budget charges for the group table:
// the governor is consulted once per this many accumulated bytes, not
// per group.
const groupChargeChunk = 256 << 10

// valGetter produces the value column of one expression for a batch:
// a slot reference returns its column untouched, a vectorized kernel
// computes a typed column, the boxed fallback evaluates row-wise into a
// reused boxed column (filled at physical indices, live rows only).
type valGetter func(b *vec.Batch) (*vec.Col, error)

// mkGetter stages an expression as a valGetter factory; each factory
// call returns a getter with its own scratch (one per consumer).
func (c *compiler) mkGetter(e mcl.Expr, f *frame) (func() valGetter, error) {
	if s := slotOf(e, f); s >= 0 {
		c.vecStages++
		return func() valGetter {
			return func(b *vec.Batch) (*vec.Col, error) { return &b.Cols[s], nil }
		}, nil
	}
	if !c.opts.NoExprKernels {
		if mk := compileVecExpr(e, f); mk != nil {
			c.vecStages++
			return func() valGetter {
				k := mk()
				return func(b *vec.Batch) (*vec.Col, error) { return k(b) }
			}, nil
		}
	}
	c.boxedStages++
	ce, err := c.compileExpr(e, f)
	if err != nil {
		return nil, err
	}
	width := f.width()
	return func() valGetter {
		row := make([]values.Value, width)
		out := &vec.Col{Tag: vec.Boxed}
		return func(b *vec.Batch) (*vec.Col, error) {
			if cap(out.Boxed) < b.N {
				out.Boxed = make([]values.Value, b.N)
			}
			out.Boxed = out.Boxed[:b.N]
			n := b.Len()
			for k := 0; k < n; k++ {
				i := b.Index(k)
				fillRow(b, i, row)
				v, err := ce(row)
				if err != nil {
					return nil, err
				}
				out.Boxed[i] = v
			}
			return out, nil
		}
	}, nil
}

// colNullAt reports whether row i of col is null.
func colNullAt(col *vec.Col, i int) bool {
	if col.Nulls != nil && col.Nulls[i] {
		return true
	}
	return col.Tag == vec.Boxed && col.Boxed[i].IsNull()
}

// groupAcc is one aggregate's per-group accumulator array. Implementors
// index state by dense group id; addBatch returns the approximate boxed
// bytes newly retained (zero for typed state, which bytes() reports).
type groupAcc interface {
	// grow ensures state exists for n groups.
	grow(n int)
	// addBatch folds the live rows of col into their groups (gidx is the
	// per-live-row group index, in live order).
	addBatch(col *vec.Col, b *vec.Batch, gidx []int32) (int64, error)
	// merge folds another consumer's partial state in: other's group og
	// lands in this table's group remap[og].
	merge(o groupAcc, remap []int32)
	// result finalizes one group's aggregate value.
	result(g int) values.Value
	// bytes approximates the typed state footprint.
	bytes() int64
}

// newGroupAcc selects the accumulator for a monoid: typed arrays for
// count/sum/avg, boxed best-value tracking for min/max, and a per-group
// Collector fallback (AggAdd null semantics) for everything else —
// collection monoids, median, prod, and/or.
func newGroupAcc(m monoid.Monoid) groupAcc {
	switch m.Name() {
	case "count":
		return &countAcc{}
	case "sum":
		return &sumAcc{}
	case "avg":
		return &avgAcc{}
	case "min":
		return &minmaxAcc{want: -1, zero: m.Finalize(m.Zero())}
	case "max":
		return &minmaxAcc{want: 1, zero: m.Finalize(m.Zero())}
	}
	charge := monoid.IsCollection(m) || m.Name() == "median"
	return &boxedAcc{m: m, charge: charge}
}

// countAcc counts every input binding per group (count's Unit ignores
// its argument, so nulls count too).
type countAcc struct{ cnt []int64 }

func (a *countAcc) grow(n int) {
	for len(a.cnt) < n {
		a.cnt = append(a.cnt, 0)
	}
}

func (a *countAcc) addBatch(col *vec.Col, b *vec.Batch, gidx []int32) (int64, error) {
	for _, g := range gidx {
		a.cnt[g]++
	}
	return 0, nil
}

func (a *countAcc) merge(o groupAcc, remap []int32) {
	oc := o.(*countAcc)
	for og, g := range remap {
		a.cnt[g] += oc.cnt[og]
	}
}

func (a *countAcc) result(g int) values.Value { return values.NewInt(a.cnt[g]) }
func (a *countAcc) bytes() int64              { return int64(len(a.cnt)) * 8 }

// sumAcc keeps int and float partial sums per group (sum of ints stays
// int, any float input widens the group's sum to float — the same
// promotion reduceConsumer applies). Null inputs are skipped; a group
// with only null inputs sums to the monoid zero, 0.
type sumAcc struct {
	isum []int64
	fsum []float64
	saw  []uint8 // bit 0: saw int, bit 1: saw float
}

func (a *sumAcc) grow(n int) {
	for len(a.isum) < n {
		a.isum = append(a.isum, 0)
		a.fsum = append(a.fsum, 0)
		a.saw = append(a.saw, 0)
	}
}

func (a *sumAcc) addBatch(col *vec.Col, b *vec.Batch, gidx []int32) (int64, error) {
	n := b.Len()
	switch col.Tag {
	case vec.Int64:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			g := gidx[k]
			a.isum[g] += col.Ints[i]
			a.saw[g] |= 1
		}
	case vec.Float64:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			g := gidx[k]
			a.fsum[g] += col.Floats[i]
			a.saw[g] |= 2
		}
	default:
		for k := 0; k < n; k++ {
			v := col.Value(b.Index(k))
			if v.IsNull() {
				continue
			}
			g := gidx[k]
			if v.Kind() == values.KindInt {
				a.isum[g] += v.Int()
				a.saw[g] |= 1
			} else {
				a.fsum[g] += v.Float()
				a.saw[g] |= 2
			}
		}
	}
	return 0, nil
}

func (a *sumAcc) merge(o groupAcc, remap []int32) {
	os := o.(*sumAcc)
	for og, g := range remap {
		a.isum[g] += os.isum[og]
		a.fsum[g] += os.fsum[og]
		a.saw[g] |= os.saw[og]
	}
}

func (a *sumAcc) result(g int) values.Value {
	switch a.saw[g] {
	case 1:
		return values.NewInt(a.isum[g])
	case 2:
		return values.NewFloat(a.fsum[g])
	case 3:
		return values.NewFloat(a.fsum[g] + float64(a.isum[g]))
	}
	return values.NewInt(0)
}

func (a *sumAcc) bytes() int64 { return int64(len(a.isum)) * 17 }

// avgAcc keeps the float sum and non-null count per group (matching
// avgMonoid's {sum, count} accumulation domain). An all-null group
// averages to null.
type avgAcc struct {
	fsum []float64
	cnt  []int64
}

func (a *avgAcc) grow(n int) {
	for len(a.fsum) < n {
		a.fsum = append(a.fsum, 0)
		a.cnt = append(a.cnt, 0)
	}
}

func (a *avgAcc) addBatch(col *vec.Col, b *vec.Batch, gidx []int32) (int64, error) {
	n := b.Len()
	switch col.Tag {
	case vec.Int64:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			g := gidx[k]
			a.fsum[g] += float64(col.Ints[i])
			a.cnt[g]++
		}
	case vec.Float64:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			g := gidx[k]
			a.fsum[g] += col.Floats[i]
			a.cnt[g]++
		}
	default:
		for k := 0; k < n; k++ {
			v := col.Value(b.Index(k))
			if v.IsNull() {
				continue
			}
			g := gidx[k]
			a.fsum[g] += v.Float()
			a.cnt[g]++
		}
	}
	return 0, nil
}

func (a *avgAcc) merge(o groupAcc, remap []int32) {
	oa := o.(*avgAcc)
	for og, g := range remap {
		a.fsum[g] += oa.fsum[og]
		a.cnt[g] += oa.cnt[og]
	}
}

func (a *avgAcc) result(g int) values.Value {
	if a.cnt[g] == 0 {
		return values.Null
	}
	return values.NewFloat(a.fsum[g] / float64(a.cnt[g]))
}

func (a *avgAcc) bytes() int64 { return int64(len(a.fsum)) * 16 }

// minmaxAcc tracks the best value per group under values.Compare (total
// order across numeric kinds and strings). Null inputs are skipped; an
// all-null group yields the monoid zero (null).
type minmaxAcc struct {
	want int // -1 min, 1 max
	zero values.Value
	best []values.Value
	has  []bool
}

func (a *minmaxAcc) grow(n int) {
	for len(a.best) < n {
		a.best = append(a.best, values.Null)
		a.has = append(a.has, false)
	}
}

func (a *minmaxAcc) addBatch(col *vec.Col, b *vec.Batch, gidx []int32) (int64, error) {
	n := b.Len()
	for k := 0; k < n; k++ {
		v := col.Value(b.Index(k))
		if v.IsNull() {
			continue
		}
		g := gidx[k]
		if !a.has[g] || values.Compare(v, a.best[g])*a.want > 0 {
			a.best[g] = v
			a.has[g] = true
		}
	}
	return 0, nil
}

func (a *minmaxAcc) merge(o groupAcc, remap []int32) {
	om := o.(*minmaxAcc)
	for og, g := range remap {
		if !om.has[og] {
			continue
		}
		if !a.has[g] || values.Compare(om.best[og], a.best[g])*a.want > 0 {
			a.best[g] = om.best[og]
			a.has[g] = true
		}
	}
}

func (a *minmaxAcc) result(g int) values.Value {
	if !a.has[g] {
		return a.zero
	}
	return a.best[g]
}

func (a *minmaxAcc) bytes() int64 { return int64(len(a.best)) * 24 }

// boxedAcc is the generic fallback: one Collector per group fed through
// monoid.AggAdd (grouped null semantics). Collection monoids and median
// retain their inputs, so those charge the memory budget per value.
type boxedAcc struct {
	m      monoid.Monoid
	charge bool
	cs     []*monoid.Collector
}

func (a *boxedAcc) grow(n int) {
	for len(a.cs) < n {
		a.cs = append(a.cs, monoid.NewCollector(a.m))
	}
}

func (a *boxedAcc) addBatch(col *vec.Col, b *vec.Batch, gidx []int32) (int64, error) {
	n := b.Len()
	var bytes int64
	for k := 0; k < n; k++ {
		v := col.Value(b.Index(k))
		monoid.AggAdd(a.cs[gidx[k]], v)
		if a.charge && !(v.IsNull() && monoid.AggSkipsNull(a.m)) {
			bytes += approxValueBytes(v)
		}
	}
	return bytes, nil
}

func (a *boxedAcc) merge(o groupAcc, remap []int32) {
	ob := o.(*boxedAcc)
	for og, g := range remap {
		a.cs[g].MergeFrom(ob.cs[og])
	}
}

func (a *boxedAcc) result(g int) values.Value { return a.cs[g].Result() }
func (a *boxedAcc) bytes() int64              { return int64(len(a.cs)) * 48 }

// groupConsumer folds pipeline batches into the group table. One
// consumer serves one serial run or one morsel worker; partial tables
// merge through absorb in morsel order.
type groupConsumer struct {
	nKeys  int
	keyGet []valGetter
	aggGet []valGetter
	aggs   []groupAcc

	// Dense group list (insertion order = first-occurrence order) plus
	// the open-addressing index: slots holds group+1, 0 = empty.
	hashes []uint64
	keys   []values.Value // boxed key tuples, nKeys per group
	slots  []int32
	mask   uint64

	// Unpacked mirrors of the stored keys (kind plus primitive payload
	// per key slot) for the per-row equality fast path: values.Value is
	// a large struct, and any method call on a stored key copies it, so
	// the hot compare never touches the boxed form. Non-primitive keys
	// fall back to values.Equal on the boxed tuple.
	keyKinds  []values.Kind
	keyInts   []int64
	keyFloats []float64
	keyStrs   []string

	rows          int64
	partialMerges int64

	reserve  func(int64) error
	charged  int64
	keyBytes int64
	boxed    int64 // accumulated boxed-accumulator bytes

	// Per-batch scratch.
	hs       []uint64
	valid    []bool
	combined []uint64
	gidx     []int32
	keyCols  []*vec.Col
}

func (gc *groupConsumer) numGroups() int { return len(gc.hashes) }

// tableBytes approximates the resident footprint of the group table and
// typed accumulator arrays (boxed accumulator bytes tally separately).
func (gc *groupConsumer) tableBytes() int64 {
	// 33 ≈ per-key cost of the unpacked mirrors (kind + int + float +
	// string header).
	b := int64(len(gc.slots))*4 + int64(len(gc.hashes))*8 + gc.keyBytes +
		int64(len(gc.keyKinds))*33
	for _, a := range gc.aggs {
		b += a.bytes()
	}
	return b
}

// maybeCharge settles the memory-budget balance in chunks; final forces
// any remainder through.
func (gc *groupConsumer) maybeCharge(final bool) error {
	if gc.reserve == nil {
		return nil
	}
	total := gc.tableBytes() + gc.boxed
	delta := total - gc.charged
	if delta >= groupChargeChunk || (final && delta > 0) {
		gc.charged = total
		return gc.reserve(delta)
	}
	return nil
}

func (gc *groupConsumer) growTable(size int) {
	gc.slots = make([]int32, size)
	gc.mask = uint64(size - 1)
	for g, h := range gc.hashes {
		s := h & gc.mask
		for gc.slots[s] != 0 {
			s = (s + 1) & gc.mask
		}
		gc.slots[s] = int32(g) + 1
	}
}

// rowKeyEqual compares group g's stored key tuple against physical row i
// of the current batch's key columns under grouping equality (nulls
// equal). This runs once per row on every hash match — i.e. on nearly
// every row once the groups exist — so typed columns compare their
// primitive payloads directly; boxing happens only for boxed columns and
// cross-representation ties.
func (gc *groupConsumer) rowKeyEqual(g int32, i int) bool {
	base := int(g) * gc.nKeys
	for j := 0; j < gc.nKeys; j++ {
		col := gc.keyCols[j]
		k := gc.keyKinds[base+j]
		null := colNullAt(col, i)
		if null != (k == values.KindNull) {
			return false
		}
		if null {
			continue
		}
		switch {
		case col.Tag == vec.Int64 && k == values.KindInt:
			if gc.keyInts[base+j] != col.Ints[i] {
				return false
			}
		case col.Tag == vec.Float64 && k == values.KindFloat:
			if gc.keyFloats[base+j] != col.Floats[i] {
				return false
			}
		case (col.Tag == vec.Str || col.Tag == vec.StrDict) && k == values.KindString:
			if gc.keyStrs[base+j] != col.StrAt(i) {
				return false
			}
		default:
			if !values.Equal(col.Value(i), gc.keys[base+j]) {
				return false
			}
		}
	}
	return true
}

// appendKey stores one group-key value, mirroring its primitive payload
// into the unpacked arrays the equality fast path reads.
func (gc *groupConsumer) appendKey(v values.Value) {
	gc.keys = append(gc.keys, v)
	gc.keyBytes += approxValueBytes(v)
	k := v.Kind()
	var i64 int64
	var f float64
	var s string
	switch k {
	case values.KindInt:
		i64 = v.Int()
	case values.KindFloat:
		f = v.Float()
	case values.KindString:
		s = v.Str()
	}
	gc.keyKinds = append(gc.keyKinds, k)
	gc.keyInts = append(gc.keyInts, i64)
	gc.keyFloats = append(gc.keyFloats, f)
	gc.keyStrs = append(gc.keyStrs, s)
}

// findOrAddRow locates (or creates) the group for physical row i of the
// current key columns, probing by the combined tuple hash.
func (gc *groupConsumer) findOrAddRow(h uint64, i int) int32 {
	if len(gc.slots) == 0 {
		gc.growTable(groupTableInitSlots)
	}
	for s := h & gc.mask; ; s = (s + 1) & gc.mask {
		e := gc.slots[s]
		if e == 0 {
			g := int32(gc.numGroups())
			gc.hashes = append(gc.hashes, h)
			for j := 0; j < gc.nKeys; j++ {
				gc.appendKey(gc.keyCols[j].Value(i))
			}
			for _, a := range gc.aggs {
				a.grow(int(g) + 1)
			}
			gc.slots[s] = g + 1
			if (gc.numGroups()+1)*4 > len(gc.slots)*3 {
				gc.growTable(len(gc.slots) * 2)
			}
			return g
		}
		g := e - 1
		if gc.hashes[g] == h && gc.rowKeyEqual(g, i) {
			return g
		}
	}
}

// findOrAddTuple is findOrAddRow for an already-boxed key tuple (the
// partial-merge path).
func (gc *groupConsumer) findOrAddTuple(h uint64, tuple []values.Value) int32 {
	if len(gc.slots) == 0 {
		gc.growTable(groupTableInitSlots)
	}
	for s := h & gc.mask; ; s = (s + 1) & gc.mask {
		e := gc.slots[s]
		if e == 0 {
			g := int32(gc.numGroups())
			gc.hashes = append(gc.hashes, h)
			for _, v := range tuple {
				gc.appendKey(v)
			}
			for _, a := range gc.aggs {
				a.grow(int(g) + 1)
			}
			gc.slots[s] = g + 1
			if (gc.numGroups()+1)*4 > len(gc.slots)*3 {
				gc.growTable(len(gc.slots) * 2)
			}
			return g
		}
		g := e - 1
		if gc.hashes[g] == h && mcl.GroupKeysEqual(gc.keys[int(g)*gc.nKeys:int(g+1)*gc.nKeys], tuple) {
			return g
		}
	}
}

// consume folds one pipeline batch: key columns are extracted and hashed
// in tag-dispatched passes, rows are mapped to dense group indices, and
// every aggregate folds its column into the per-group arrays.
func (gc *groupConsumer) consume(b *vec.Batch) error {
	n := b.Len()
	if n == 0 {
		return nil
	}
	gc.rows += int64(n)
	for j, get := range gc.keyGet {
		col, err := get(b)
		if err != nil {
			return err
		}
		gc.keyCols[j] = col
	}
	// Combined tuple hash per live row (mcl.GroupHash semantics: nulls
	// contribute a fixed marker, so null keys share a group).
	gc.combined = gc.combined[:0]
	for k := 0; k < n; k++ {
		gc.combined = append(gc.combined, groupHashBasis)
	}
	for _, col := range gc.keyCols {
		gc.hs, gc.valid = hashLiveCol(col, b, gc.hs[:0], gc.valid[:0])
		for k := 0; k < n; k++ {
			kh := nullKeyHash
			if gc.valid[k] {
				kh = gc.hs[k]
			}
			gc.combined[k] = (gc.combined[k] ^ kh) * groupHashPrime
		}
	}
	gc.gidx = gc.gidx[:0]
	for k := 0; k < n; k++ {
		gc.gidx = append(gc.gidx, gc.findOrAddRow(gc.combined[k], b.Index(k)))
	}
	for j, get := range gc.aggGet {
		col, err := get(b)
		if err != nil {
			return err
		}
		bytes, err := gc.aggs[j].addBatch(col, b, gc.gidx)
		if err != nil {
			return err
		}
		gc.boxed += bytes
	}
	return gc.maybeCharge(false)
}

// absorb merges a partial consumer's table into this one. Called in
// morsel order with each partial's groups visited in local insertion
// order, the root table ends up in global first-occurrence order — the
// serial semantics, deterministically, regardless of worker count.
func (gc *groupConsumer) absorb(o *groupConsumer) error {
	remap := make([]int32, o.numGroups())
	for og := 0; og < o.numGroups(); og++ {
		tuple := o.keys[og*o.nKeys : (og+1)*o.nKeys]
		remap[og] = gc.findOrAddTuple(o.hashes[og], tuple)
	}
	for j := range gc.aggs {
		gc.aggs[j].merge(o.aggs[j], remap)
	}
	gc.rows += o.rows
	gc.partialMerges++
	return gc.maybeCharge(false)
}

// emit streams the group table downstream as batches of group rows, one
// boxed column per key then per aggregate (slot order matches the group
// frame), in first-occurrence order.
func (gc *groupConsumer) emit(bs int, sink batchSink) error {
	nG := gc.numGroups()
	nk, na := gc.nKeys, len(gc.aggs)
	for lo := 0; lo < nG; lo += bs {
		hi := lo + bs
		if hi > nG {
			hi = nG
		}
		cols := make([]vec.Col, nk+na)
		for j := 0; j < nk; j++ {
			buf := make([]values.Value, hi-lo)
			for g := lo; g < hi; g++ {
				buf[g-lo] = gc.keys[g*nk+j]
			}
			cols[j] = vec.Col{Tag: vec.Boxed, Boxed: buf}
		}
		for j := 0; j < na; j++ {
			buf := make([]values.Value, hi-lo)
			for g := lo; g < hi; g++ {
				buf[g-lo] = gc.aggs[j].result(g)
			}
			cols[nk+j] = vec.Col{Tag: vec.Boxed, Boxed: buf}
		}
		if err := sink(&vec.Batch{Cols: cols, N: hi - lo}); err != nil {
			return err
		}
	}
	return nil
}

// compileGroupAgg stages the grouped fold as a synthesized pipeline
// stage: the input subtree feeds the group table (morsel-parallel when
// the scan partitions), and the finished groups stream out as batches
// over the group frame — one slot per key name, then per aggregate
// name. The root consumers (reduce/top-k/quota/stream) then run
// unchanged over group rows: HAVING is the root predicate, ORDER
// BY/LIMIT feed TopKAcc directly.
func (c *compiler) compileGroupAgg(p *algebra.Reduce, input *compiledPlan) (*compiledPlan, error) {
	nKeys := len(p.GroupBy)
	mkKeyGets := make([]func() valGetter, nKeys)
	for i, k := range p.GroupBy {
		g, err := c.mkGetter(k.E, input.frame)
		if err != nil {
			return nil, err
		}
		mkKeyGets[i] = g
	}
	mkAggGets := make([]func() valGetter, len(p.Aggs))
	aggMs := make([]monoid.Monoid, len(p.Aggs))
	for i, a := range p.Aggs {
		g, err := c.mkGetter(a.E, input.frame)
		if err != nil {
			return nil, err
		}
		mkAggGets[i] = g
		aggMs[i] = a.M
	}
	gf := newFrame()
	for _, k := range p.GroupBy {
		gf.add(k.Name, "")
	}
	for _, a := range p.Aggs {
		gf.add(a.Name, "")
	}
	opts := c.opts
	mkCons := func() *groupConsumer {
		gc := &groupConsumer{nKeys: nKeys, reserve: opts.MemReserve}
		gc.keyGet = make([]valGetter, nKeys)
		for i, mk := range mkKeyGets {
			gc.keyGet[i] = mk()
		}
		gc.aggGet = make([]valGetter, len(mkAggGets))
		for i, mk := range mkAggGets {
			gc.aggGet[i] = mk()
		}
		gc.aggs = make([]groupAcc, len(aggMs))
		for i, m := range aggMs {
			gc.aggs[i] = newGroupAcc(m)
		}
		gc.keyCols = make([]*vec.Col, nKeys)
		return gc
	}
	run := func(sink batchSink) error {
		sp := opts.Trace.Child("fold")
		sp.SetAttr("kind", "groupagg")
		root := mkCons()
		parallel := false
		if opts.Workers > 1 && input.openRange != nil {
			if scan, n, ok := input.openRange(); ok && n >= opts.ParallelThreshold {
				parallel = true
				sp.SetAttr("parallel", true)
				workers := opts.Workers
				morselRows := (n + workers*4 - 1) / (workers * 4)
				if morselRows < opts.BatchSize {
					morselRows = opts.BatchSize
				}
				numMorsels := (n + morselRows - 1) / morselRows
				sp.SetAttr("morsels", numMorsels)
				sp.SetAttr("workers", workers)
				partials := make([]*groupConsumer, numMorsels)
				err := opts.Pool.Run(opts.Ctx, numMorsels, func(i int) error {
					if err := opts.Ctx.Err(); err != nil {
						return err
					}
					gc := mkCons()
					lo := i * morselRows
					hi := lo + morselRows
					if hi > n {
						hi = n
					}
					if err := scan(lo, hi, gc.consume); err != nil {
						return err
					}
					partials[i] = gc
					return nil
				})
				if err != nil {
					sp.End()
					return err
				}
				msp := sp.Child("merge")
				for _, part := range partials {
					if part == nil {
						continue
					}
					if err := root.absorb(part); err != nil {
						msp.End()
						sp.End()
						return err
					}
				}
				msp.End()
			}
		}
		if !parallel {
			if err := input.run(root.consume); err != nil {
				sp.End()
				return err
			}
		}
		if err := root.maybeCharge(true); err != nil {
			sp.End()
			return err
		}
		sp.AddRows(root.rows)
		sp.SetAttr("groups", root.numGroups())
		sp.SetAttr("table_bytes", root.tableBytes()+root.boxed)
		sp.SetAttr("partial_merges", root.partialMerges)
		sp.End()
		if opts.GroupStats != nil {
			opts.GroupStats(int64(root.numGroups()), root.tableBytes()+root.boxed, root.partialMerges)
		}
		return root.emit(opts.BatchSize, sink)
	}
	return &compiledPlan{frame: gf, run: run}, nil
}

// shadowGrouped strips the grouping clause off a grouped reduce so the
// root consumers see a plain reduce over the (already folded) group
// rows: the predicate is HAVING, evaluated per group.
func shadowGrouped(p *algebra.Reduce) *algebra.Reduce {
	cp := *p
	cp.GroupBy, cp.Aggs = nil, nil
	return &cp
}
