package jit

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/rawcsv"
	"vida/internal/sdg"
	"vida/internal/values"
)

func rec(pairs ...any) values.Value {
	var fs []values.Field
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		var v values.Value
		switch x := pairs[i+1].(type) {
		case int:
			v = values.NewInt(int64(x))
		case float64:
			v = values.NewFloat(x)
		case string:
			v = values.NewString(x)
		case values.Value:
			v = x
		default:
			panic("bad pair")
		}
		fs = append(fs, values.Field{Name: name, Val: v})
	}
	return values.NewRecord(fs...)
}

// schemaCat is a MapCatalog that also serves descriptions.
type schemaCat struct {
	algebra.MapCatalog
	descs map[string]*sdg.Description
}

func (c *schemaCat) Description(name string) (*sdg.Description, bool) {
	d, ok := c.descs[name]
	return d, ok
}

func testCatalog() *schemaCat {
	emps := []values.Value{
		rec("id", 1, "name", "ada", "deptNo", 10, "salary", 100.0),
		rec("id", 2, "name", "bob", "deptNo", 10, "salary", 80.0),
		rec("id", 3, "name", "eve", "deptNo", 20, "salary", 120.0),
		rec("id", 4, "name", "dan", "deptNo", 30, "salary", 90.0),
	}
	depts := []values.Value{
		rec("id", 10, "deptName", "HR"),
		rec("id", 20, "deptName", "Eng"),
		rec("id", 30, "deptName", "Ops"),
	}
	orders := []values.Value{
		rec("eid", 1, "items", values.NewList(values.NewInt(5), values.NewInt(7))),
		rec("eid", 3, "items", values.NewList(values.NewInt(2))),
	}
	empType := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "name", Type: sdg.String},
		sdg.Attr{Name: "deptNo", Type: sdg.Int},
		sdg.Attr{Name: "salary", Type: sdg.Float},
	))
	deptType := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "deptName", Type: sdg.String},
	))
	return &schemaCat{
		MapCatalog: algebra.MapCatalog{
			"Employees":   &algebra.SliceSource{SrcName: "Employees", Rows: emps},
			"Departments": &algebra.SliceSource{SrcName: "Departments", Rows: depts},
			"Orders":      &algebra.SliceSource{SrcName: "Orders", Rows: orders},
		},
		descs: map[string]*sdg.Description{
			"Employees":   {Name: "Employees", Format: sdg.FormatTable, Schema: empType},
			"Departments": {Name: "Departments", Format: sdg.FormatTable, Schema: deptType},
			// Orders intentionally schemaless: exercises whole-value slots.
		},
	}
}

func planFor(t *testing.T, src string, cat *schemaCat) *algebra.Reduce {
	t.Helper()
	e, err := mcl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sources := map[string]bool{}
	for k := range cat.MapCatalog {
		sources[k] = true
	}
	plan, err := algebra.Translate(mcl.Normalize(e), sources)
	if err != nil {
		t.Fatalf("translate %q: %v", src, err)
	}
	return plan
}

var equivalenceQueries = []string{
	`for { e <- Employees } yield count e`,
	`for { e <- Employees, e.salary > 85 } yield sum e.salary`,
	`for { e <- Employees, d <- Departments, e.deptNo = d.id, d.deptName = "HR" } yield sum 1`,
	`for { e <- Employees, d <- Departments, e.deptNo = d.id } yield bag (n := e.name, dep := d.deptName)`,
	`for { o <- Orders, i <- o.items, i > 3 } yield list i`,
	`for { e <- Employees, b := e.salary * 0.1, b > 9.0 } yield set e.name`,
	`for { e <- Employees } yield max e.salary`,
	`for { e <- Employees } yield avg e.salary`,
	`for { e <- Employees, o <- Orders, e.id = o.eid, i <- o.items } yield sum i`,
	`for { d <- Departments } yield list (dep := d.deptName,
	     cnt := for { e <- Employees, e.deptNo = d.id } yield count e)`,
	`for { e <- Employees } yield bag e`,
	`for { e <- Employees, contains(e.name, "a") } yield count e`,
	`for { e <- Employees } yield list (tag := if e.salary > 95 then "hi" else "lo")`,
}

func TestExecutorEquivalence(t *testing.T) {
	cat := testCatalog()
	for _, q := range equivalenceQueries {
		plan := planFor(t, q, cat)
		want, err := algebra.Reference{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		gotJIT, err := Executor{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("jit %q: %v", q, err)
		}
		if !values.Equal(gotJIT, want) {
			t.Fatalf("jit diverged on %q:\njit: %v\nref: %v", q, gotJIT, want)
		}
		gotStatic, err := StaticExecutor{}.Run(plan, cat)
		if err != nil {
			t.Fatalf("static %q: %v", q, err)
		}
		if !values.Equal(gotStatic, want) {
			t.Fatalf("static diverged on %q:\nstatic: %v\nref: %v", q, gotStatic, want)
		}
	}
}

func TestExecutorsOnJoinPlans(t *testing.T) {
	// Exercise the Join operator (the optimizer's output) on all engines.
	cat := testCatalog()
	plan := &algebra.Reduce{
		M:    mustMonoid("bag"),
		Head: mcl.MustParse("(n := e.name, dep := d.deptName)"),
		Input: &algebra.Join{
			L:  &algebra.Scan{Source: "Employees", Var: "e"},
			R:  &algebra.Scan{Source: "Departments", Var: "d"},
			On: []algebra.EquiPair{{LExpr: mcl.MustParse("e.deptNo"), RExpr: mcl.MustParse("d.id")}},
		},
	}
	want, err := algebra.Reference{}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	for name, ex := range map[string]algebra.Executor{
		"jit": Executor{}, "static": StaticExecutor{},
	} {
		got, err := ex.Run(plan, cat)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !values.Equal(got, want) {
			t.Fatalf("%s join diverged: %v vs %v", name, got, want)
		}
	}
}

func TestJITUsesSlotSource(t *testing.T) {
	// A CSV-backed scan must go through IterateSlots (posmap fast path).
	dir := t.TempDir()
	path := filepath.Join(dir, "e.csv")
	content := "id,score\n1,10\n2,20\n3,30\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	schema := sdg.Bag(sdg.Record(
		sdg.Attr{Name: "id", Type: sdg.Int},
		sdg.Attr{Name: "score", Type: sdg.Int},
	))
	desc := sdg.DefaultDescription("E", sdg.FormatCSV, path, schema)
	rd, err := rawcsv.Open(desc)
	if err != nil {
		t.Fatal(err)
	}
	cat := &schemaCat{
		MapCatalog: algebra.MapCatalog{"E": rd},
		descs:      map[string]*sdg.Description{"E": desc},
	}
	plan := planFor2(t, "for { x <- E, x.score > 15 } yield sum x.score", cat)
	got, err := Executor{}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 50 {
		t.Fatalf("sum = %v", got)
	}
	// Run again: the posmap path must now serve it and agree.
	got2, err := Executor{}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !values.Equal(got, got2) {
		t.Fatalf("posmap run diverged: %v vs %v", got, got2)
	}
	if rd.StatsSnapshot()["posmap_scans"] == 0 {
		t.Fatal("JIT scan did not use the positional map on the second run")
	}
}

func planFor2(t *testing.T, src string, cat *schemaCat) *algebra.Reduce {
	t.Helper()
	e, err := mcl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]bool{}
	for k := range cat.MapCatalog {
		sources[k] = true
	}
	plan, err := algebra.Translate(mcl.Normalize(e), sources)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestErrorsPropagate(t *testing.T) {
	cat := testCatalog()
	// Generator over a scalar: runtime error in all engines.
	plan := &algebra.Reduce{
		M:    mustMonoid("count"),
		Head: mcl.MustParse("1"),
		Input: &algebra.Generate{
			Var: "x",
			E:   mcl.MustParse("42"),
		},
	}
	if _, err := (Executor{}).Run(plan, cat); err == nil {
		t.Fatal("jit should propagate the error")
	}
	if _, err := (StaticExecutor{}).Run(plan, cat); err == nil {
		t.Fatal("static should propagate the error")
	}
	// Unknown source.
	bad := &algebra.Reduce{
		M:     mustMonoid("count"),
		Head:  mcl.MustParse("1"),
		Input: &algebra.Scan{Source: "NoSuch", Var: "x"},
	}
	if _, err := (Executor{}).Run(bad, cat); err == nil {
		t.Fatal("jit should fail on unknown source")
	}
	if _, err := (StaticExecutor{}).Run(bad, cat); err == nil {
		t.Fatal("static should fail on unknown source")
	}
}

func TestRandomizedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	queries := []string{
		"for { x <- Xs, x.a > 2 } yield sum x.b",
		"for { x <- Xs, y <- Ys, x.a = y.a } yield count x",
		"for { x <- Xs, y <- Ys, x.a = y.a, x.b > y.b } yield bag (p := x.b, q := y.b)",
		"for { x <- Xs, v := x.a + x.b, v % 2 = 0 } yield list v",
		"for { x <- Xs } yield set x.a",
		"for { x <- Xs, x.a > 0 or x.b > 3 } yield count x",
		"for { x <- Xs } yield avg x.b",
	}
	xsType := sdg.Bag(sdg.Record(sdg.Attr{Name: "a", Type: sdg.Int}, sdg.Attr{Name: "b", Type: sdg.Int}))
	for trial := 0; trial < 20; trial++ {
		mk := func(n int) []values.Value {
			rows := make([]values.Value, n)
			for i := range rows {
				rows[i] = rec("a", r.Intn(5), "b", r.Intn(5))
			}
			return rows
		}
		cat := &schemaCat{
			MapCatalog: algebra.MapCatalog{
				"Xs": &algebra.SliceSource{SrcName: "Xs", Rows: mk(r.Intn(10))},
				"Ys": &algebra.SliceSource{SrcName: "Ys", Rows: mk(r.Intn(8))},
			},
			descs: map[string]*sdg.Description{
				"Xs": {Name: "Xs", Format: sdg.FormatTable, Schema: xsType},
				"Ys": {Name: "Ys", Format: sdg.FormatTable, Schema: xsType},
			},
		}
		for _, q := range queries {
			plan := planFor2(t, q, cat)
			want, err := algebra.Reference{}.Run(plan, cat)
			if err != nil {
				t.Fatalf("%q: %v", q, err)
			}
			gotJ, err := Executor{}.Run(plan, cat)
			if err != nil {
				t.Fatalf("jit %q: %v", q, err)
			}
			gotS, err := StaticExecutor{ChanBuf: 1 + r.Intn(8)}.Run(plan, cat)
			if err != nil {
				t.Fatalf("static %q: %v", q, err)
			}
			if !values.Equal(gotJ, want) || !values.Equal(gotS, want) {
				t.Fatalf("%q diverged: jit=%v static=%v ref=%v", q, gotJ, gotS, want)
			}
		}
	}
}

func TestStaticEarlyStopDoesNotDeadlock(t *testing.T) {
	// An error mid-stream must not leave upstream goroutines blocked.
	rows := make([]values.Value, 10000)
	for i := range rows {
		rows[i] = rec("a", i)
	}
	cat := &schemaCat{
		MapCatalog: algebra.MapCatalog{"Xs": &algebra.SliceSource{SrcName: "Xs", Rows: rows}},
		descs:      map[string]*sdg.Description{},
	}
	// x.a.b projects through an int: error at row 1.
	plan := planFor2(t, "for { x <- Xs, x.a.b > 0 } yield count x", cat)
	if _, err := (StaticExecutor{ChanBuf: 1}).Run(plan, cat); err == nil {
		t.Fatal("expected error")
	}
}

func mustMonoid(name string) monoid.Monoid {
	m, err := monoid.ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}
