package jit

import (
	"fmt"

	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/sdg"
	"vida/internal/values"
)

var (
	listM = monoid.List
	bagM  = monoid.Bag
	setM  = monoid.Set
)

// SchemaCatalog extends the executor catalog with the source descriptions
// the JIT compiler needs to flatten scans into typed slots.
type SchemaCatalog interface {
	algebra.Catalog
	Description(name string) (*sdg.Description, bool)
}

// SlotSource is implemented by access paths that can emit slot rows
// directly (no record construction): the CSV plugin over a positional map,
// columnar cache entries, etc. Slot order follows the fields argument.
type SlotSource interface {
	IterateSlots(fields []string, yield func([]values.Value) error) error
}

// rowSink receives pipeline rows. Rows are REUSED by the producer: a sink
// that retains a row must copy it.
type rowSink func(row []values.Value) error

// compiledPlan is one operator subtree staged into a closure.
type compiledPlan struct {
	frame *frame
	run   func(sink rowSink) error
}

// compiler holds per-query compilation state.
type compiler struct {
	cat     algebra.Catalog
	schemas SchemaCatalog // may be nil
	baseEnv *mcl.Env
}

// Executor is the just-in-time engine. The zero value is ready to use.
type Executor struct{}

// Run implements algebra.Executor: it generates the specialized pipeline
// for this exact plan ("database as a query") and runs it.
func (Executor) Run(p *algebra.Reduce, cat algebra.Catalog) (values.Value, error) {
	prog, err := Compile(p, cat)
	if err != nil {
		return values.Null, err
	}
	return prog()
}

// Compile stages the plan into an executable program. Compilation is the
// reproduction's analogue of the paper's per-query code generation: all
// schema resolution, slot layout, plugin selection and operator fusion
// happen here, once, leaving a closure chain with no per-row decisions.
func Compile(p *algebra.Reduce, cat algebra.Catalog) (func() (values.Value, error), error) {
	c := &compiler{cat: cat}
	if sc, ok := cat.(SchemaCatalog); ok {
		c.schemas = sc
	}
	env, err := c.materializeFreeSources(p)
	if err != nil {
		return nil, err
	}
	c.baseEnv = env

	input, err := c.compilePlan(p.Input)
	if err != nil {
		return nil, err
	}
	head, err := c.compileExpr(p.Head, input.frame)
	if err != nil {
		return nil, err
	}
	var pred compiledExpr
	if p.Pred != nil {
		pred, err = c.compileExpr(p.Pred, input.frame)
		if err != nil {
			return nil, err
		}
	}
	m := p.M
	return func() (values.Value, error) {
		acc := monoid.NewCollector(m)
		err := input.run(func(row []values.Value) error {
			if pred != nil {
				pv, err := pred(row)
				if err != nil {
					return err
				}
				if !(pv.Kind() == values.KindBool && pv.Bool()) {
					return nil
				}
			}
			h, err := head(row)
			if err != nil {
				return err
			}
			acc.Add(h)
			return nil
		})
		if err != nil {
			return values.Null, err
		}
		return acc.Result(), nil
	}, nil
}

// materializeFreeSources loads catalog sources referenced from inside
// expressions (correlated subqueries) into the base environment, as the
// reference executor does.
func (c *compiler) materializeFreeSources(p algebra.Plan) (*mcl.Env, error) {
	bound := map[string]bool{}
	for _, v := range algebra.BoundVars(p) {
		bound[v] = true
	}
	needed := map[string]bool{}
	collect := func(e mcl.Expr) {
		if e == nil {
			return
		}
		for _, v := range mcl.FreeVars(e) {
			if !bound[v] {
				if _, ok := c.cat.Source(v); ok {
					needed[v] = true
				}
			}
		}
	}
	var walk func(algebra.Plan)
	walk = func(p algebra.Plan) {
		switch n := p.(type) {
		case *algebra.Scan:
			collect(n.Filter)
		case *algebra.Generate:
			collect(n.E)
		case *algebra.Select:
			collect(n.Pred)
		case *algebra.Join:
			for _, on := range n.On {
				collect(on.LExpr)
				collect(on.RExpr)
			}
			collect(n.Residual)
		case *algebra.Bind:
			collect(n.E)
		case *algebra.Reduce:
			collect(n.Head)
			collect(n.Pred)
		}
		for _, in := range p.Inputs() {
			walk(in)
		}
	}
	walk(p)
	bindings := map[string]values.Value{}
	for name := range needed {
		v, err := algebra.Materialize(c.cat, name)
		if err != nil {
			return nil, err
		}
		bindings[name] = v
	}
	return mcl.NewEnv(bindings), nil
}

func (c *compiler) compilePlan(p algebra.Plan) (*compiledPlan, error) {
	if p == nil {
		// Unit input: one empty row.
		f := newFrame()
		return &compiledPlan{frame: f, run: func(sink rowSink) error {
			return sink(nil)
		}}, nil
	}
	switch n := p.(type) {
	case *algebra.Scan:
		return c.compileScan(n)
	case *algebra.Select:
		in, err := c.compilePlan(n.Input)
		if err != nil {
			return nil, err
		}
		pred, err := c.compileExpr(n.Pred, in.frame)
		if err != nil {
			return nil, err
		}
		// Fused: no operator boundary, just a branch inside the loop.
		return &compiledPlan{frame: in.frame, run: func(sink rowSink) error {
			return in.run(func(row []values.Value) error {
				pv, err := pred(row)
				if err != nil {
					return err
				}
				if pv.Kind() == values.KindBool && pv.Bool() {
					return sink(row)
				}
				return nil
			})
		}}, nil
	case *algebra.Bind:
		in, err := c.compilePlan(n.Input)
		if err != nil {
			return nil, err
		}
		f := in.frame.clone()
		idx := f.add(n.Var, "")
		e, err := c.compileExpr(n.E, in.frame)
		if err != nil {
			return nil, err
		}
		w := f.width()
		return &compiledPlan{frame: f, run: func(sink rowSink) error {
			buf := make([]values.Value, w)
			return in.run(func(row []values.Value) error {
				copy(buf, row)
				v, err := e(row)
				if err != nil {
					return err
				}
				buf[idx] = v
				return sink(buf)
			})
		}}, nil
	case *algebra.Generate:
		in, err := c.compilePlan(n.Input)
		if err != nil {
			return nil, err
		}
		f := in.frame.clone()
		idx := f.add(n.Var, "")
		e, err := c.compileExpr(n.E, in.frame)
		if err != nil {
			return nil, err
		}
		w := f.width()
		return &compiledPlan{frame: f, run: func(sink rowSink) error {
			buf := make([]values.Value, w)
			return in.run(func(row []values.Value) error {
				coll, err := e(row)
				if err != nil {
					return err
				}
				if coll.IsNull() {
					return nil
				}
				if !coll.IsCollection() && coll.Kind() != values.KindArray {
					return fmt.Errorf("jit: generate over %s", coll.Kind())
				}
				copy(buf, row)
				for _, el := range coll.Elems() {
					buf[idx] = el
					if err := sink(buf); err != nil {
						return err
					}
				}
				return nil
			})
		}}, nil
	case *algebra.Product:
		return c.compileProduct(n)
	case *algebra.Join:
		return c.compileJoin(n)
	case *algebra.Reduce:
		return nil, fmt.Errorf("jit: nested Reduce plans are not supported")
	}
	return nil, fmt.Errorf("jit: unknown plan node %T", p)
}

// compileScan selects the input plugin for the source format and stages a
// specialized scan loop. Sources that can emit slot rows (SlotSource) skip
// record construction entirely; generic sources are exploded into slots
// when the schema is known, or bound as whole values otherwise.
func (c *compiler) compileScan(n *algebra.Scan) (*compiledPlan, error) {
	src, ok := c.cat.Source(n.Source)
	if !ok {
		return nil, fmt.Errorf("jit: unknown source %q", n.Source)
	}

	// Determine the attribute list: explicit plan fields, else the full
	// schema when known, else whole-value binding.
	fields := n.Fields
	var rowType *sdg.Type
	if c.schemas != nil {
		if desc, ok := c.schemas.Description(n.Source); ok {
			rowType = desc.IterationType()
		}
	}
	if len(fields) == 0 && rowType != nil && rowType.Kind == sdg.TRecord {
		fields = rowType.AttrNames()
	}

	if len(fields) == 0 {
		// Open schema: one whole-value slot per datum (JSON objects).
		f := newFrame()
		idx := f.add(n.Var, "")
		var filter compiledExpr
		if n.Filter != nil {
			var err error
			filter, err = c.compileExpr(n.Filter, f)
			if err != nil {
				return nil, err
			}
		}
		w := f.width()
		return &compiledPlan{frame: f, run: func(sink rowSink) error {
			buf := make([]values.Value, w)
			return src.Iterate(nil, func(v values.Value) error {
				buf[idx] = v
				if filter != nil {
					pv, err := filter(buf)
					if err != nil {
						return err
					}
					if !(pv.Kind() == values.KindBool && pv.Bool()) {
						return nil
					}
				}
				return sink(buf)
			})
		}}, nil
	}

	// Flattened scan: one slot per attribute.
	f := newFrame()
	for _, fld := range fields {
		f.add(n.Var, fld)
	}
	var filter compiledExpr
	if n.Filter != nil {
		var err error
		filter, err = c.compileExpr(n.Filter, f)
		if err != nil {
			return nil, err
		}
	}
	w := f.width()
	emit := func(sink rowSink) func([]values.Value) error {
		return func(row []values.Value) error {
			if filter != nil {
				pv, err := filter(row)
				if err != nil {
					return err
				}
				if !(pv.Kind() == values.KindBool && pv.Bool()) {
					return nil
				}
			}
			return sink(row)
		}
	}
	if ss, ok := src.(SlotSource); ok {
		// Specialized plugin: the access path fills slots directly.
		return &compiledPlan{frame: f, run: func(sink rowSink) error {
			return ss.IterateSlots(fields, emit(sink))
		}}, nil
	}
	return &compiledPlan{frame: f, run: func(sink rowSink) error {
		buf := make([]values.Value, w)
		e := emit(sink)
		return src.Iterate(fields, func(v values.Value) error {
			for i, fld := range fields {
				fv, _ := v.Get(fld)
				buf[i] = fv
			}
			return e(buf)
		})
	}}, nil
}

func (c *compiler) compileProduct(n *algebra.Product) (*compiledPlan, error) {
	l, err := c.compilePlan(n.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compilePlan(n.R)
	if err != nil {
		return nil, err
	}
	f := l.frame.clone()
	for _, s := range r.frame.slots {
		f.add(s.key.varName, s.key.attr)
	}
	lw, rw := l.frame.width(), r.frame.width()
	return &compiledPlan{frame: f, run: func(sink rowSink) error {
		// Materialize the right side once (it restarts per left row).
		var right [][]values.Value
		if err := r.run(func(row []values.Value) error {
			right = append(right, append([]values.Value{}, row...))
			return nil
		}); err != nil {
			return err
		}
		buf := make([]values.Value, lw+rw)
		return l.run(func(lrow []values.Value) error {
			copy(buf, lrow)
			for _, rrow := range right {
				copy(buf[lw:], rrow)
				if err := sink(buf); err != nil {
					return err
				}
			}
			return nil
		})
	}}, nil
}

// compileJoin stages a hash join: the right side is the build side (its
// materialization is the operator's "output plugin" state), the left side
// probes. Null keys never match.
func (c *compiler) compileJoin(n *algebra.Join) (*compiledPlan, error) {
	l, err := c.compilePlan(n.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compilePlan(n.R)
	if err != nil {
		return nil, err
	}
	f := l.frame.clone()
	for _, s := range r.frame.slots {
		f.add(s.key.varName, s.key.attr)
	}
	lKeys := make([]compiledExpr, len(n.On))
	rKeys := make([]compiledExpr, len(n.On))
	for i, on := range n.On {
		if lKeys[i], err = c.compileExpr(on.LExpr, l.frame); err != nil {
			return nil, err
		}
		if rKeys[i], err = c.compileExpr(on.RExpr, r.frame); err != nil {
			return nil, err
		}
	}
	var residual compiledExpr
	if n.Residual != nil {
		if residual, err = c.compileExpr(n.Residual, f); err != nil {
			return nil, err
		}
	}
	lw, rw := l.frame.width(), r.frame.width()
	return &compiledPlan{frame: f, run: func(sink rowSink) error {
		type bucket struct {
			keys []values.Value
			rows [][]values.Value
		}
		table := map[uint64]*bucket{}
		// Single-expression keys — the overwhelmingly common case — are
		// used directly; multi-column keys wrap in a list. This is the
		// kind of decision the generated code specializes away.
		keyOf := func(row []values.Value, exprs []compiledExpr) (values.Value, bool, error) {
			if len(exprs) == 1 {
				v, err := exprs[0](row)
				if err != nil || v.IsNull() {
					return values.Null, false, err
				}
				return v, true, nil
			}
			parts := make([]values.Value, len(exprs))
			for i, e := range exprs {
				v, err := e(row)
				if err != nil {
					return values.Null, false, err
				}
				if v.IsNull() {
					return values.Null, false, nil
				}
				parts[i] = v
			}
			return values.NewList(parts...), true, nil
		}
		if err := r.run(func(row []values.Value) error {
			k, ok, err := keyOf(row, rKeys)
			if err != nil || !ok {
				return err
			}
			h := k.Hash()
			b := table[h]
			if b == nil {
				b = &bucket{}
				table[h] = b
			}
			b.keys = append(b.keys, k)
			b.rows = append(b.rows, append([]values.Value{}, row...))
			return nil
		}); err != nil {
			return err
		}
		buf := make([]values.Value, lw+rw)
		return l.run(func(lrow []values.Value) error {
			k, ok, err := keyOf(lrow, lKeys)
			if err != nil || !ok {
				return err
			}
			b := table[k.Hash()]
			if b == nil {
				return nil
			}
			copy(buf, lrow)
			for i, bk := range b.keys {
				if !values.Equal(k, bk) {
					continue
				}
				copy(buf[lw:], b.rows[i])
				if residual != nil {
					pv, err := residual(buf)
					if err != nil {
						return err
					}
					if !(pv.Kind() == values.KindBool && pv.Bool()) {
						continue
					}
				}
				if err := sink(buf); err != nil {
					return err
				}
			}
			return nil
		})
	}}, nil
}
